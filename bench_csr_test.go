// CSR-substrate benchmark: the graph-kernel workloads whose hot loops
// ride on the adjacency representation, on an unlabeled power-law
// (preferential-attachment) graph — the input whose degree skew the
// degree-balanced partitioner targets. `make bench-csr` runs this file
// and BENCH_csr.json records before/after numbers for adjacency-
// substrate changes (the [][]Edge -> CSR migration).
//
// Two benchmark families:
//
//   - BenchmarkCSRPageRank / BenchmarkCSRSSSP: wall-clock + allocs for
//     the traversal path through each engine, at 1 and 8 workers.
//   - BenchmarkCSRPartitionBalance: per-superstep load imbalance
//     (max_i w_i over mean_i w_i, averaged over supersteps) for each
//     partitioner at 8 workers, reported as the custom metric
//     "imbalance" — the max-w skew the BSP cost max(w, g·h, L) charges.
package vcgraph

import (
	"fmt"
	"testing"

	"vcgraph/internal/async"
	"vcgraph/internal/blockcentric"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	"vcgraph/internal/vc"
)

const (
	benchCSRAlpha = 0.85
	benchCSREps   = 1e-6
	benchCSRK     = 10
)

// benchCSRGraph is unlabeled and unweighted: every edge weight is 1, so
// the CSR snapshot stores no weight or label arrays at all.
func benchCSRGraph() *graph.Graph {
	return graph.PreferentialAttachment(20000, 8, 5)
}

func BenchmarkCSRPageRank(b *testing.B) {
	g := benchCSRGraph()
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("pregel/workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vc.PageRank(g, benchCSRAlpha, benchCSRK, vc.Config{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("gas/workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := gas.PageRank(g, benchCSRAlpha, benchCSREps, gas.Config{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("blockcentric/blocks-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := blockcentric.PageRank(g, benchCSRAlpha, benchCSRK, blockcentric.Config{Blocks: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("async/workers-1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := async.PageRank(g, benchCSRAlpha, benchCSREps, async.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCSRSSSP(b *testing.B) {
	g := benchCSRGraph()
	graph.RandomWeights(g, 11)
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("pregel/workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vc.SSSP(g, 0, vc.Config{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("gas/workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := gas.SSSP(g, 0, gas.Config{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("blockcentric/blocks-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := blockcentric.SSSP(g, 0, blockcentric.Config{Blocks: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("async/workers-1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := async.SSSP(g, 0, async.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// imbalance returns the mean over supersteps of max_i w_i / mean_i w_i
// (1.0 = perfectly balanced local work). Supersteps with no work are
// skipped.
func imbalance(sup []struct {
	max   int64
	total int64
	p     int
}) float64 {
	var sum float64
	var k int
	for _, s := range sup {
		if s.total == 0 {
			continue
		}
		mean := float64(s.total) / float64(s.p)
		sum += float64(s.max) / mean
		k++
	}
	if k == 0 {
		return 1
	}
	return sum / float64(k)
}

func BenchmarkCSRPartitionBalance(b *testing.B) {
	g := benchCSRGraph()
	const workers = 8
	for _, pc := range []struct {
		name string
		part pregel.Partitioner
	}{
		{"hash", pregel.PartitionHash},
		{"range", pregel.PartitionRange},
		{"degree", pregel.PartitionDegreeBalanced},
	} {
		b.Run(pc.name, func(b *testing.B) {
			var imb float64
			for i := 0; i < b.N; i++ {
				res, err := vc.PageRank(g, benchCSRAlpha, benchCSRK, vc.Config{Workers: workers, Partition: pc.part})
				if err != nil {
					b.Fatal(err)
				}
				rows := make([]struct {
					max   int64
					total int64
					p     int
				}, len(res.Stats.Supersteps))
				for j, ss := range res.Stats.Supersteps {
					rows[j].p = res.Stats.Workers
					rows[j].max = ss.MaxWork
					for _, wk := range ss.Work {
						rows[j].total += wk
					}
				}
				imb = imbalance(rows)
			}
			b.ReportMetric(imb, "imbalance")
		})
	}
}
