// Checkpoint compaction benchmark: total bytes captured by the
// checkpoint store over a run with per-superstep checkpointing, full
// snapshots every step (the legacy cadence) versus dirty-set delta
// chains with a full frame every 16th save. The workloads are
// sparse-frontier tails where compaction pays:
//
//   - SSSP on a 150x150 grid runs ~300 supersteps, but after the early
//     waves each superstep relaxes only the O(sqrt n) frontier, so a
//     full snapshot re-copies 22.5k distances to checkpoint a few
//     hundred writes.
//   - Hash-Min CC on a straggler graph — a 60x60 grid component (long
//     diameter, ~120 label waves) plus 36k vertices in two-vertex
//     components that converge by superstep 2 — keeps checkpointing
//     the whole graph for the straggler's sake while the converged
//     bulk never dirties again. (Hash-Min on a single grid is the
//     negative control: its label waves keep ~half the vertices dirty
//     on average, so compaction caps near 1.4x — recorded in
//     BENCH_checkpoint.json, not headlined.)
//
// `make bench-checkpoint` runs this file; BENCH_checkpoint.json records
// the numbers and declares the bytes headlines (delta cadence captures
// >=5x fewer checkpoint bytes) that cmd/benchguard enforces.
//
// The B/op of each sub-benchmark is overridden with the run's
// Stats.Recovery checkpoint byte account (full + delta frames) — a
// deterministic size estimate, identical across iterations — so the
// benchguard bytes_op ratio compares checkpoint traffic, not allocator
// churn.
package vcgraph

import (
	"testing"

	"vcgraph/internal/graph"
	"vcgraph/internal/vc"
)

func benchCheckpointCadences() []struct {
	name      string
	fullEvery int
} {
	return []struct {
		name      string
		fullEvery int
	}{
		{"full", 0},   // every save a full snapshot: the control
		{"delta", 16}, // dirty-set deltas, full frame every 16th save
	}
}

// checkpointBytes reports a run's total checkpoint capture through the
// benchmark's B/op column, plus how many frames were stored as deltas.
func checkpointBytes(b *testing.B, full, delta int64, deltaFrames int) {
	b.ReportMetric(float64(full+delta), "B/op")
	b.ReportMetric(float64(deltaFrames), "deltaframes")
}

// BenchmarkCheckpointSSSP checkpoints every superstep of a pregel SSSP
// whose frontier collapses to a sparse wave after the first few steps.
func BenchmarkCheckpointSSSP(b *testing.B) {
	g := graph.Grid(150, 150)
	graph.RandomWeights(g, 7)
	for _, c := range benchCheckpointCadences() {
		b.Run(c.name, func(b *testing.B) {
			var full, delta int64
			var frames int
			for i := 0; i < b.N; i++ {
				res, err := vc.SSSP(g, 0, vc.Config{CheckpointEvery: 1, FullSnapshotEvery: c.fullEvery})
				if err != nil {
					b.Fatal(err)
				}
				r := res.Stats.Recovery
				full, delta, frames = r.CheckpointBytesFull, r.CheckpointBytesDelta, r.DeltaCheckpointsSaved
			}
			checkpointBytes(b, full, delta, frames)
		})
	}
}

// stragglerGraph builds one side x side grid component — the
// long-diameter straggler that keeps the run alive — plus two-vertex
// components filling the ID space to n. Hash-Min settles the pairs by
// superstep 2, after which only the straggler's shrinking label
// boundary dirties, but a full snapshot still re-copies all n labels
// every superstep.
func stragglerGraph(side, n int) *graph.Graph {
	g := graph.New(n, false)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			id := graph.VertexID(r*side + c)
			if c+1 < side {
				g.AddEdge(id, id+1)
			}
			if r+1 < side {
				g.AddEdge(id, id+graph.VertexID(side))
			}
		}
	}
	for v := side * side; v+1 < n; v += 2 {
		g.AddEdge(graph.VertexID(v), graph.VertexID(v+1))
	}
	return g
}

// BenchmarkCheckpointCC checkpoints every superstep of Hash-Min
// connected components on the straggler graph: the converged bulk is
// dead weight in every full snapshot, the delta frames track only the
// grid component's label waves.
func BenchmarkCheckpointCC(b *testing.B) {
	g := stragglerGraph(60, 40000)
	for _, c := range benchCheckpointCadences() {
		b.Run(c.name, func(b *testing.B) {
			var full, delta int64
			var frames int
			for i := 0; i < b.N; i++ {
				res, err := vc.HashMinCC(g, vc.Config{CheckpointEvery: 1, FullSnapshotEvery: c.fullEvery})
				if err != nil {
					b.Fatal(err)
				}
				r := res.Stats.Recovery
				full, delta, frames = r.CheckpointBytesFull, r.CheckpointBytesDelta, r.DeltaCheckpointsSaved
			}
			checkpointBytes(b, full, delta, frames)
		})
	}
}
