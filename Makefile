# vcgraph — development targets.

GO ?= go

# Coverage profile location: a scratch path outside the working tree, so
# `make cover` never leaves a cover.out lying around to be committed.
# Override COVERPROFILE to keep the profile somewhere inspectable.
COVERDIR ?= $(shell $(GO) env GOTMPDIR)
ifeq ($(COVERDIR),)
COVERDIR := /tmp
endif
COVERPROFILE ?= $(COVERDIR)/vcgraph-cover.out

.PHONY: all build vet test race cover fuzz-smoke bench bench-csr bench-direction bench-service bench-incremental bench-planner bench-memory bench-checkpoint bench-guard table1 ext figures ablations examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the engines and the shared execution runtime. Scoped to
# internal/ (the concurrent code) so the tier-1 gate stays fast; part
# of the verification checklist alongside build/vet/test.
race:
	$(GO) test -race ./internal/...

# Statement coverage over the library packages, with a hard 70% floor.
# Part of the tier-1 gate: a PR that drops total coverage below the
# floor fails here.
cover:
	$(GO) test -count=1 -coverprofile=$(COVERPROFILE) -coverpkg=./internal/... ./...
	@$(GO) tool cover -func=$(COVERPROFILE) | awk '/^total:/ { pct = $$3; sub("%", "", pct); if (pct + 0 < 70) { printf "FAIL: total coverage %s below the 70%% floor\n", $$3; exit 1 } printf "total coverage %s (floor 70%%)\n", $$3 }'

# Ten seconds of coverage-guided fuzzing per generator target. The
# f.Add seed corpora also run on every plain `go test`.
fuzz-smoke:
	$(GO) test -fuzz='FuzzRandom$$' -fuzztime=10s -run='^$$' ./internal/graph
	$(GO) test -fuzz='FuzzPreferentialAttachment$$' -fuzztime=10s -run='^$$' ./internal/graph
	$(GO) test -fuzz='FuzzRandomTree$$' -fuzztime=10s -run='^$$' ./internal/graph
	$(GO) test -fuzz='FuzzCSRBuild$$' -fuzztime=10s -run='^$$' ./internal/graph
	$(GO) test -fuzz='FuzzMutationScript$$' -fuzztime=10s -run='^$$' ./internal/vc
	$(GO) test -fuzz='FuzzVarintBlockCodec$$' -fuzztime=10s -run='^$$' ./internal/graph

bench:
	$(GO) test -bench . -benchmem ./...

# CSR benchmark suite: PageRank/SSSP under every engine plus the
# partitioner balance sweep, with allocation counts. Raw output lands in
# /tmp; the committed record of before/after numbers is BENCH_csr.json.
bench-csr:
	$(GO) test -run='^$$' -bench='^BenchmarkCSR' -benchmem -benchtime=2x -count=1 . | tee /tmp/bench_csr.txt

# Direction-optimizing execution suite: PageRank/Hash-Min/k-core across
# push/pull/auto and worker counts. Raw output lands in /tmp; the
# committed record is BENCH_direction.json, whose headline ratios
# bench-guard enforces.
bench-direction:
	$(GO) test -run='^$$' -bench='^BenchmarkDirection' -benchmem -benchtime=3x -count=1 . | tee /tmp/bench_direction.txt

# Job-layer suite: driver setup cost (fresh pool vs shared-pool lease)
# and serving throughput at admission widths 1/4/16. Raw output lands
# in /tmp; the committed record is BENCH_service.json, whose setup-cost
# headline bench-guard enforces.
bench-service:
	$(GO) test -run='^$$' -bench='^BenchmarkJobSetup|^BenchmarkServiceJobs' -benchmem -benchtime=3x -count=1 . | tee /tmp/bench_service.txt

# Evolving-graph suite: incremental CC/SSSP/PageRank warm repair after
# seeded mutation batches versus cold recompute on the power-law graph.
# Raw output lands in /tmp; the committed record is
# BENCH_incremental.json, whose SSSP and CC headlines bench-guard
# enforces (PageRank's ~1x is a recorded negative result, no headline).
bench-incremental:
	$(GO) test -run='^$$' -bench='^BenchmarkIncremental' -benchmem -benchtime=3x -count=1 . | tee /tmp/bench_incremental.txt

# Adaptive plan layer suite: the planner-driven "auto" engine against
# fixed engine choices on chain-CC and power-law PageRank. Raw output
# lands in /tmp; the committed record is BENCH_planner.json, whose
# auto-vs-best and auto-vs-worst headlines bench-guard enforces.
bench-planner:
	$(GO) test -run='^$$' -bench='^BenchmarkPlanner' -benchmem -benchtime=3x -count=1 . | tee /tmp/bench_planner.txt

# Memory-lean substrate suite: resident edge bytes (EdgeBytes reported
# as B/op) and traversal cost of the varint-delta packed CSR vs the flat
# int32 one on the R-MAT power-law graph. Raw output lands in /tmp; the
# committed record is BENCH_memory.json, whose edges-per-GB and
# packed-tax headlines bench-guard enforces.
bench-memory:
	$(GO) test -run='^$$' -bench='^BenchmarkMemory' -benchmem -benchtime=3x -count=1 . | tee /tmp/bench_memory.txt

# Checkpoint compaction suite: total checkpoint bytes at
# checkpoint-every-superstep cadence, full snapshots versus dirty-set
# delta chains, on the sparse-frontier SSSP and straggler-CC tails. Raw
# output lands in /tmp; the committed record is BENCH_checkpoint.json,
# whose >=5x bytes headlines bench-guard enforces.
bench-checkpoint:
	$(GO) test -run='^$$' -bench='^BenchmarkCheckpoint(SSSP|CC)' -benchmem -benchtime=3x -count=1 . | tee /tmp/bench_checkpoint.txt

# Re-measure every headline ratio declared in BENCH_*.json and fail if
# any regressed beyond its tolerance/floor. Runs in CI after tier-1.
bench-guard:
	$(GO) run ./cmd/benchguard

table1:
	$(GO) run ./cmd/table1 -details

ext:
	$(GO) run ./cmd/table1 -ext

figures:
	$(GO) run ./cmd/figures

ablations:
	$(GO) run ./cmd/ablations

examples:
	@for ex in quickstart socialnetwork patternmatch roadnetwork treepipeline faulttolerance paradigms linkprediction; do \
		echo "=== examples/$$ex ==="; \
		$(GO) run ./examples/$$ex; \
	done

clean:
	$(GO) clean ./...
	rm -f cover.out $(COVERPROFILE)
