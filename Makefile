# vcgraph — development targets.

GO ?= go

.PHONY: all build vet test race bench table1 ext figures ablations examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the engines and the shared execution runtime. Scoped to
# internal/ (the concurrent code) so the tier-1 gate stays fast; part
# of the verification checklist alongside build/vet/test.
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench . -benchmem ./...

table1:
	$(GO) run ./cmd/table1 -details

ext:
	$(GO) run ./cmd/table1 -ext

figures:
	$(GO) run ./cmd/figures

ablations:
	$(GO) run ./cmd/ablations

examples:
	@for ex in quickstart socialnetwork patternmatch roadnetwork treepipeline faulttolerance paradigms linkprediction; do \
		echo "=== examples/$$ex ==="; \
		$(GO) run ./examples/$$ex; \
	done

clean:
	$(GO) clean ./...
