// Command benchguard enforces the committed benchmark headlines: every
// BENCH_*.json may declare a "headlines" object mapping a name to a
// {baseline, bench, metric, ratio} record, where baseline and bench are
// benchmark names runnable at HEAD and ratio is the committed
// baseline/bench improvement. The guard re-measures each pair and fails
// (exit 1) when a fresh ratio falls below the committed one by more
// than the tolerance (default 15%) — i.e. when a change erodes a
// headline speedup the repository advertises.
//
// Historical before/after records (BENCH files whose "before" side no
// longer exists at HEAD) simply declare no headlines and are skipped.
//
// Usage:
//
//	go run ./cmd/benchguard [-dir .] [-benchtime 3x] [-tolerance 0.85]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type headline struct {
	Baseline string  `json:"baseline"`
	Bench    string  `json:"bench"`
	Metric   string  `json:"metric"` // ns_op, bytes_op, or allocs_op
	Ratio    float64 `json:"ratio"`
	// Floor, when set, replaces ratio x tolerance as the enforced
	// minimum. Wall-clock headlines measured on crowded runners declare
	// an explicit floor wide enough to absorb scheduler noise while
	// still catching a speedup that collapses toward parity;
	// deterministic metrics (bytes_op, allocs_op) leave it unset.
	Floor float64 `json:"floor"`
}

type benchFile struct {
	Headlines map[string]headline `json:"headlines"`
}

func main() {
	dir := flag.String("dir", ".", "repository root holding the BENCH_*.json files")
	benchtime := flag.String("benchtime", "3x", "-benchtime passed to go test")
	tolerance := flag.Float64("tolerance", 0.85, "fail when fresh ratio < committed ratio x tolerance")
	flag.Parse()

	headlines, err := loadHeadlines(*dir)
	if err != nil {
		fatal(err)
	}
	if len(headlines) == 0 {
		fmt.Println("benchguard: no headlines declared in any BENCH_*.json, nothing to enforce")
		return
	}
	names := map[string]bool{}
	for _, h := range headlines {
		names[h.Baseline] = true
		names[h.Bench] = true
	}
	results, err := measure(*dir, *benchtime, names)
	if err != nil {
		fatal(err)
	}

	keys := make([]string, 0, len(headlines))
	for k := range headlines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	failed := false
	for _, k := range keys {
		h := headlines[k]
		base, okB := results[h.Baseline]
		bench, okN := results[h.Bench]
		if !okB || !okN {
			fmt.Printf("FAIL %-40s missing benchmark output (baseline %v, bench %v)\n", k, okB, okN)
			failed = true
			continue
		}
		bv, nv := base.metric(h.Metric), bench.metric(h.Metric)
		if bv <= 0 || nv <= 0 {
			fmt.Printf("FAIL %-40s metric %s not reported\n", k, h.Metric)
			failed = true
			continue
		}
		fresh := bv / nv
		floor := h.Ratio * *tolerance
		if h.Floor > 0 {
			floor = h.Floor
		}
		status := "ok  "
		if fresh < floor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-40s %-9s committed %.2fx  fresh %.2fx  floor %.2fx\n",
			status, k, h.Metric, h.Ratio, fresh, floor)
	}
	if failed {
		fmt.Println("benchguard: headline ratio regressed beyond tolerance")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

func loadHeadlines(dir string) (map[string]headline, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	out := map[string]headline{}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var f benchFile
		if err := json.Unmarshal(b, &f); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		for name, h := range f.Headlines {
			if h.Baseline == "" || h.Bench == "" || h.Ratio <= 0 {
				return nil, fmt.Errorf("%s: headline %q is incomplete", p, name)
			}
			if h.Metric == "" {
				h.Metric = "ns_op"
			}
			out[filepath.Base(p)+":"+name] = h
		}
	}
	return out, nil
}

type measurement struct {
	nsOp     float64
	bytesOp  float64
	allocsOp float64
}

func (m measurement) metric(name string) float64 {
	switch name {
	case "bytes_op":
		return m.bytesOp
	case "allocs_op":
		return m.allocsOp
	}
	return m.nsOp
}

// measure runs exactly the needed sub-benchmarks in one `go test`
// invocation: the -bench regex matches path segments, so the union of
// alternatives per segment position selects a (possibly slightly
// larger) cross product containing every requested name.
func measure(dir, benchtime string, names map[string]bool) (map[string]measurement, error) {
	bySegments := map[int][][]string{}
	for name := range names {
		segs := strings.Split(name, "/")
		bySegments[len(segs)] = append(bySegments[len(segs)], segs)
	}
	var patterns []string
	for n, group := range bySegments {
		parts := make([]string, n)
		for i := 0; i < n; i++ {
			alts := map[string]bool{}
			for _, segs := range group {
				alts[regexp.QuoteMeta(segs[i])] = true
			}
			sorted := make([]string, 0, len(alts))
			for a := range alts {
				sorted = append(sorted, a)
			}
			sort.Strings(sorted)
			parts[i] = "^(" + strings.Join(sorted, "|") + ")$"
		}
		patterns = append(patterns, strings.Join(parts, "/"))
	}
	sort.Strings(patterns)
	results := map[string]measurement{}
	for _, pat := range patterns {
		cmd := exec.Command("go", "test", "-run=^$", "-bench="+pat,
			"-benchmem", "-benchtime="+benchtime, "-count=1", ".")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("go test -bench=%s: %w\n%s", pat, err, out)
		}
		parseBenchOutput(string(out), results)
	}
	return results, nil
}

var procSuffix = regexp.MustCompile(`-\d+$`)

func parseBenchOutput(out string, results map[string]measurement) {
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		var m measurement
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.nsOp = v
			case "B/op":
				m.bytesOp = v
			case "allocs/op":
				m.allocsOp = v
			}
		}
		results[name] = m
	}
}
