// Command vcrun runs any of the library's vertex-centric algorithms on
// a generated graph and reports the result summary alongside the BSP
// cost metrics the paper is built on (supersteps, messages, local work,
// time-processor product, per-vertex balance ratios).
//
// Usage:
//
//	vcrun -algo pagerank -gen powerlaw -n 10000 -m 3 [-workers 4] [-seed 1] [-mode push|pull|auto]
//	vcrun -algo sssp -engine auto -gen path -n 100000
//
// -engine auto routes pagerank, sssp, and hashmin through the
// adaptive plan layer: a planner samples the graph, picks the initial
// engine/partition/mode, and may hand vertex state off to another
// engine live at a superstep barrier. Every decision is printed as a
// "plan:" line as it is taken.
//
// Algorithms: pagerank, prconverge, sssp, hashmin, sv, wcc, scc, bcc,
// diameter, doublesweep, euler, traversal, spanning, mcst, coloring,
// mis, matching, bipartite, betweenness, simulation, dualsim,
// strongsim, kcore, triangles, community, semicluster, hits, ppr, linkpred,
// blockcc (the block-centric engine), asynccc and asyncsssp (the
// asynchronous engine), gaspagerank (the GAS engine).
//
// Generators: random, connected, powerlaw, path, permpath, cycle,
// grid, star, tree, bintree, bipartite, directed, dcycle, sbm,
// smallworld.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vcgraph/internal/async"
	"vcgraph/internal/blockcentric"
	"vcgraph/internal/bsp"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/plan"
	"vcgraph/internal/runtime"
	"vcgraph/internal/vc"
)

func main() {
	algo := flag.String("algo", "pagerank", "algorithm to run")
	gen := flag.String("gen", "connected", "graph generator")
	n := flag.Int("n", 1000, "vertices (or rows/side for grid)")
	m := flag.Int("m", 3000, "edges (or attachment degree for powerlaw)")
	seed := flag.Int64("seed", 1, "generator seed")
	workers := flag.Int("workers", 4, "BSP workers")
	src := flag.Int("src", 0, "source vertex (sssp, betweenness single-source)")
	load := flag.String("load", "", "load the graph from a vcgraph edge-list file instead of generating")
	input := flag.String("input", "", "load a real dataset: a SNAP/TSV edge list, or an mmap-backed .vcsr snapshot (by extension)")
	inputDirected := flag.Bool("input-directed", false, "treat -input SNAP/TSV pairs as directed edges")
	encoding := flag.String("encoding", "int32", "CSR destination-array encoding: int32 (flat) or packed (varint-delta blocks)")
	packedState := flag.Bool("packed-state", false, "bit-packed vertex-state stores for the small-domain algorithms (hashmin, kcore, coloring)")
	save := flag.String("save", "", "write the (generated or loaded) graph to an edge-list file and continue")
	dot := flag.String("dot", "", "also write the graph in Graphviz DOT format to this file")
	checkpoint := flag.Int("checkpoint", 0, "checkpoint every k supersteps (0 = off)")
	fullSnapshot := flag.Int("full-snapshot-every", 0, "store only every Nth checkpoint full; the checkpoints between are dirty-set deltas (0 or 1 = every checkpoint full)")
	faults := flag.Int64("faults", 0, "inject a seeded random fault plan (0 = none); implies -checkpoint 2 unless set")
	modeFlag := flag.String("mode", "auto", "message direction: push, pull, or auto (pull dense supersteps when the algorithm has a combiner)")
	engine := flag.String("engine", "", "empty = the algorithm's own engine; \"auto\" = adaptive plan layer (pagerank, sssp, hashmin)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	mutations := flag.Int("mutations", 0, "after the run, apply this many seeded mutation batches and compare incremental recomputation against from-scratch (pagerank, sssp, hashmin)")
	mutBatch := flag.Int("mutbatch", 8, "mutations per batch in -mutations mode")
	mutSeed := flag.Int64("mutseed", 1, "mutation generator seed")
	flag.Parse()

	mode, err := runtime.ParseDirectionMode(*modeFlag)
	if err != nil {
		fail(err)
	}

	if *engine != "" && *engine != "auto" {
		fail(fmt.Errorf("unknown engine %q (empty or auto)", *engine))
	}

	var fplan *runtime.FaultPlan
	if *faults != 0 {
		fplan = runtime.NewFaultPlan(*faults)
		if *checkpoint == 0 {
			*checkpoint = 2
		}
	}

	var g *graph.Graph
	switch {
	case *input != "":
		g, err = loadInput(*input, *inputDirected)
	case *load != "":
		g, err = loadGraph(*load)
	default:
		g, err = makeGraph(*gen, *n, *m, *seed)
	}
	if err != nil {
		fail(err)
	}
	defer g.Close()
	switch *encoding {
	case "int32":
	case "packed":
		if !g.Adopted() { // a .vcsr snapshot is already packed
			g.Encoding = graph.EncodePacked
		}
	default:
		fail(fmt.Errorf("unknown encoding %q (int32 or packed)", *encoding))
	}
	if *save != "" {
		if err := saveGraph(*save, g); err != nil {
			fail(err)
		}
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fail(err)
		}
		if err := graph.WriteDOT(f, g, *algo); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	source := *gen
	if *load != "" {
		source = "file:" + *load
	}
	if *input != "" {
		source = "input:" + *input
	}
	// The run goes through the job-scoped runtime: one scheduler over a
	// shared pool, the run submitted as a job so -timeout cancellation
	// aborts it at a superstep barrier instead of killing the process.
	sched := runtime.NewScheduler(*workers, 1)
	defer sched.Close()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	share := *workers
	if strings.HasPrefix(*algo, "async") {
		share = 1 // the asynchronous engine is sequential
	}
	var summary string
	var stats *bsp.Stats
	start := time.Now()
	job := sched.Submit(ctx, *algo, share, func(j *runtime.Job) error {
		cfg := vc.Config{Workers: *workers, Seed: *seed, CheckpointEvery: *checkpoint, FullSnapshotEvery: *fullSnapshot, Faults: fplan, Mode: mode, Job: j, PackedState: *packedState}
		var err error
		if *engine == "auto" {
			summary, stats, err = runAutoEngine(*algo, g, graph.VertexID(*src), cfg, *seed)
		} else {
			summary, stats, err = run(*algo, g, graph.VertexID(*src), cfg, *seed)
		}
		return err
	})
	if err := job.Wait(); err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	if *mutations > 0 {
		defer func() {
			if err := evolve(g, *algo, graph.VertexID(*src), *mutations, *mutBatch, *mutSeed); err != nil {
				fail(err)
			}
		}()
	}

	fmt.Printf("algorithm:  %s\n", *algo)
	fmt.Printf("graph:      %s n=%d m=%d (seed %d)\n", source, g.N(), g.M(), *seed)
	fmt.Printf("result:     %s\n", summary)
	fmt.Printf("wall time:  %v\n", elapsed.Round(time.Microsecond))
	fmt.Println()
	fmt.Printf("supersteps:            %d (mode %s, %d pulled)\n",
		stats.NumSupersteps(), mode, stats.PulledSupersteps())
	fmt.Printf("messages:              %d\n", stats.TotalMessages)
	fmt.Printf("local work units:      %d\n", stats.TotalWork)
	fmt.Printf("time-processor product: %.0f (P=%d, g=%.0f, L=%.0f)\n",
		stats.MeasuredTPP(), stats.Workers, bsp.DefaultModel.G, bsp.DefaultModel.L)
	fmt.Printf("balance (per-vertex max / degree):\n")
	fmt.Printf("  state %.2f  compute %.2f  sent %.2f  recv %.2f\n",
		stats.MaxStatePerDeg, stats.MaxComputePerDeg, stats.MaxSentPerDeg, stats.MaxRecvPerDeg)
	fmt.Printf("memory:                heap %+.2f MiB  allocated %.2f MiB\n",
		float64(stats.HeapInuseDelta)/(1<<20), float64(stats.TotalAllocDelta)/(1<<20))
	if rec := stats.Recovery; *checkpoint > 0 || rec.Faulted() {
		fmt.Printf("fault tolerance:\n")
		fmt.Printf("  checkpoints %d  rollbacks %d  redone supersteps %d\n",
			rec.CheckpointsSaved, rec.Rollbacks, rec.RedoneSupersteps)
		fmt.Printf("  corrupted checkpoints %d  dropped lanes %d  duplicated lanes %d\n",
			rec.CorruptedCheckpoints, rec.DroppedLanes, rec.DuplicatedLanes)
		if rec.DeltaCheckpointsSaved > 0 || rec.InvalidatedCheckpoints > 0 {
			fmt.Printf("  delta checkpoints %d  invalidated %d\n",
				rec.DeltaCheckpointsSaved, rec.InvalidatedCheckpoints)
		}
		if rec.CheckpointBytesFull > 0 || rec.CheckpointBytesDelta > 0 {
			fmt.Printf("  checkpoint bytes: full %d  delta %d\n",
				rec.CheckpointBytesFull, rec.CheckpointBytesDelta)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vcrun:", err)
	os.Exit(1)
}

// loadInput loads a real dataset: an mmap-backed .vcsr snapshot when
// the extension says so, otherwise a SNAP/TSV edge list.
func loadInput(path string, directed bool) (*graph.Graph, error) {
	if strings.HasSuffix(path, ".vcsr") {
		return graph.OpenCSRFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadSNAP(f, graph.SNAPOptions{Directed: directed})
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

func saveGraph(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func makeGraph(gen string, n, m int, seed int64) (*graph.Graph, error) {
	switch gen {
	case "random":
		return graph.Random(n, m, seed), nil
	case "connected":
		return graph.RandomConnected(n, m, seed), nil
	case "powerlaw":
		return graph.PreferentialAttachment(n, m, seed), nil
	case "path":
		return graph.Path(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "grid":
		return graph.Grid(n, n), nil
	case "star":
		return graph.Star(n), nil
	case "tree":
		return graph.RandomTree(n, seed), nil
	case "bintree":
		return graph.BalancedBinaryTree(n), nil
	case "bipartite":
		return graph.RandomBipartite(n/2, n-n/2, m, seed), nil
	case "directed":
		return graph.RandomDirected(n, m, seed), nil
	case "permpath":
		return graph.PermutedPath(n, seed), nil
	case "sbm":
		return graph.StochasticBlockModel(n, 4, 0.3, 0.01, seed), nil
	case "smallworld":
		return graph.WattsStrogatz(n, 3, 0.1, seed), nil
	case "dcycle":
		g := graph.New(n, true)
		for i := 0; i < n; i++ {
			g.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n))
		}
		g.EnsureIn()
		return g, nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

func run(algo string, g *graph.Graph, src graph.VertexID, cfg vc.Config, seed int64) (string, *bsp.Stats, error) {
	switch algo {
	case "pagerank":
		res, err := vc.PageRank(g, 0.85, 30, cfg)
		if err != nil {
			return "", nil, err
		}
		best, bestV := 0.0, 0
		for v, r := range res.Ranks {
			if r > best {
				best, bestV = r, v
			}
		}
		return fmt.Sprintf("top vertex %d with rank %.6f", bestV, best), res.Stats, nil
	case "sssp":
		graph.RandomWeights(g, seed+1)
		res, err := vc.SSSP(g, src, cfg)
		if err != nil {
			return "", nil, err
		}
		reached := 0
		for _, d := range res.Dist {
			if d < 1e300 {
				reached++
			}
		}
		return fmt.Sprintf("%d vertices reachable from %d", reached, src), res.Stats, nil
	case "hashmin":
		res, err := vc.HashMinCC(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("%d components", countDistinct(res.Color)), res.Stats, nil
	case "sv":
		res, err := vc.SVCC(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("%d components, %d spanning-forest edges", countDistinct(res.Color), len(res.TreeEdges)), res.Stats, nil
	case "wcc":
		res, err := vc.WCC(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("%d weak components", countDistinct(res.Color)), res.Stats, nil
	case "scc":
		res, err := vc.SCC(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("%d strongly connected components", countDistinct(res.Comp)), res.Stats, nil
	case "bcc":
		res, err := vc.BCC(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("%d biconnected components over %d edges", res.NumComponents, len(res.EdgeComp)), res.Stats, nil
	case "diameter":
		res, err := vc.Diameter(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("diameter %d", res.Diameter), res.Stats, nil
	case "euler":
		res, err := vc.EulerTour(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("tour of %d directed edges", 2*(g.N()-1)), res.Stats, nil
	case "traversal":
		res, err := vc.PrePostOrder(g, 0, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("pre/post numbers computed; post(root)=%d", res.Post[0]), res.Stats, nil
	case "spanning":
		res, err := vc.SVCC(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("spanning forest with %d edges", len(res.TreeEdges)), res.Stats, nil
	case "mcst":
		graph.RandomWeights(g, seed+1)
		res, err := vc.MCST(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("minimum spanning forest: %d edges, weight %.0f", len(res.Edges), res.Weight), res.Stats, nil
	case "coloring":
		res, err := vc.ColoringMIS(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("proper coloring with %d colors", res.K), res.Stats, nil
	case "matching":
		graph.RandomWeights(g, seed+1)
		res, err := vc.MaxWeightMatching(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("matching weight %.0f", res.Weight), res.Stats, nil
	case "bipartite":
		res, err := vc.BipartiteMatching(g, g.N()/2, cfg)
		if err != nil {
			return "", nil, err
		}
		size := 0
		for _, m := range res.Match {
			if m != graph.NoVertex {
				size++
			}
		}
		return fmt.Sprintf("maximal matching of size %d", size/2), res.Stats, nil
	case "betweenness":
		res, err := vc.Betweenness(g, nil, cfg)
		if err != nil {
			return "", nil, err
		}
		best, bestV := 0.0, 0
		for v, c := range res.BC {
			if c > best {
				best, bestV = c, v
			}
		}
		return fmt.Sprintf("most central vertex %d (bc %.1f)", bestV, best), res.Stats, nil
	case "simulation", "dualsim", "strongsim":
		graph.RandomLabels(g, []string{"A", "B", "C"}, seed+2)
		q := graph.New(3, true)
		q.Labels = []string{"A", "B", "C"}
		q.AddEdge(0, 1)
		q.AddEdge(1, 2)
		q.EnsureIn()
		switch algo {
		case "simulation":
			res, err := vc.GraphSimulation(g, q, cfg)
			if err != nil {
				return "", nil, err
			}
			return fmt.Sprintf("%d matched data vertices", countNonzero(res.Match)), res.Stats, nil
		case "dualsim":
			res, err := vc.DualSimulation(g, q, cfg)
			if err != nil {
				return "", nil, err
			}
			return fmt.Sprintf("%d matched data vertices", countNonzero(res.Match)), res.Stats, nil
		default:
			res, err := vc.StrongSimulation(g, q, cfg)
			if err != nil {
				return "", nil, err
			}
			c := 0
			for _, b := range res.Centers {
				if b {
					c++
				}
			}
			return fmt.Sprintf("%d match centers", c), res.Stats, nil
		}
	case "prconverge":
		res, iters, err := vc.PageRankConverge(g, 0.85, 1e-9, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("converged in %d supersteps", iters), res.Stats, nil
	case "doublesweep":
		res, err := vc.DoubleSweepDiameter(g, graph.NoVertex, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("diameter >= %d (witness %d..%d)", res.LowerBound, res.From, res.To), res.Stats, nil
	case "mis":
		res, err := vc.MaximalIndependentSet(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("maximal independent set of size %d", res.Size), res.Stats, nil
	case "semicluster":
		graph.RandomWeights(g, seed+1)
		res, err := vc.SemiClustering(g, vc.SemiClusterConfig{}, cfg)
		if err != nil {
			return "", nil, err
		}
		if len(res.Top) == 0 {
			return "no clusters", res.Stats, nil
		}
		return fmt.Sprintf("best cluster %v (score %.2f)", res.Top[0].Members, res.Top[0].Score), res.Stats, nil
	case "hits":
		res, err := vc.HITS(g, 20, cfg)
		if err != nil {
			return "", nil, err
		}
		bh, bhv := 0.0, 0
		for v, h := range res.Hub {
			if h > bh {
				bh, bhv = h, v
			}
		}
		return fmt.Sprintf("top hub %d (%.4f)", bhv, bh), res.Stats, nil
	case "asynccc":
		labels, res, err := async.ConnectedComponents(g, async.Config{CheckpointEvery: cfg.CheckpointEvery, FullSnapshotEvery: cfg.FullSnapshotEvery, Faults: cfg.Faults, Job: cfg.Job})
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("%d components in %d async updates", countDistinct(labels), res.Updates),
			res.Stats, nil
	case "asyncsssp":
		graph.RandomWeights(g, seed+1)
		_, res, err := async.SSSP(g, src, async.Config{CheckpointEvery: cfg.CheckpointEvery, FullSnapshotEvery: cfg.FullSnapshotEvery, Faults: cfg.Faults, Job: cfg.Job})
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("shortest paths in %d async updates", res.Updates),
			res.Stats, nil
	case "gaspagerank":
		_, res, err := gas.PageRank(g, 0.85, 1e-9, gas.Config{Workers: cfg.Workers, CheckpointEvery: cfg.CheckpointEvery, FullSnapshotEvery: cfg.FullSnapshotEvery, Faults: cfg.Faults, Job: cfg.Job})
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("converged in %d GAS iterations", res.Iterations), res.Stats, nil
	case "ppr":
		res, err := vc.PersonalizedPageRank(g, src, 20000, 0.15, cfg)
		if err != nil {
			return "", nil, err
		}
		best, bestV := 0.0, 0
		for v, s := range res.Scores {
			if graph.VertexID(v) != src && s > best {
				best, bestV = s, v
			}
		}
		return fmt.Sprintf("closest vertex to %d: %d (ppr %.4f)", src, bestV, best), res.Stats, nil
	case "linkpred":
		preds, res, err := vc.LinkPrediction(g, src, 5, 20000, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("suggested links for %d: %v", src, preds), res.Stats, nil
	case "kcore":
		res, err := vc.KCore(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("degeneracy %d", res.Degeneracy), res.Stats, nil
	case "triangles":
		res, err := vc.Triangles(g, cfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("%d triangles", res.Total), res.Stats, nil
	case "community":
		res, err := vc.LabelPropagation(g, 0, cfg)
		if err != nil {
			return "", nil, err
		}
		distinct := map[graph.VertexID]bool{}
		for _, l := range res.Label {
			distinct[l] = true
		}
		return fmt.Sprintf("%d communities, modularity %.3f", len(distinct), res.Modularity), res.Stats, nil
	case "blockcc":
		res, err := blockcentric.ConnectedComponents(g, blockcentric.Config{Blocks: cfg.Workers, CheckpointEvery: cfg.CheckpointEvery, FullSnapshotEvery: cfg.FullSnapshotEvery, Faults: cfg.Faults, Job: cfg.Job})
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("%d components (block-centric, %d blocks)", countDistinct(res.Color), cfg.Workers), res.Stats, nil
	default:
		return "", nil, fmt.Errorf("unknown algorithm %q (see -h)", strings.ToLower(algo))
	}
}

// runAutoEngine routes an algorithm through the adaptive plan layer
// (-engine auto), printing each plan decision as it is taken.
func runAutoEngine(algo string, g *graph.Graph, src graph.VertexID, cfg vc.Config, seed int64) (string, *bsp.Stats, error) {
	acfg := vc.AutoConfig{Config: cfg, Trace: func(d plan.Decision) {
		fmt.Printf("plan: step=%d engine=%s partition=%s mode=%s fcs=%d (%s)\n",
			d.Step, d.Plan.Engine, d.Plan.Partition, d.Plan.Mode, d.Plan.FCS, d.Reason)
	}}
	switch algo {
	case "pagerank":
		res, ar, err := vc.PageRankAuto(g, 0.85, 30, acfg)
		if err != nil {
			return "", nil, err
		}
		best, bestV := 0.0, 0
		for v, r := range res.Ranks {
			if r > best {
				best, bestV = r, v
			}
		}
		return fmt.Sprintf("top vertex %d with rank %.6f (%d plan segments)", bestV, best, ar.Segments), ar.Stats, nil
	case "sssp":
		graph.RandomWeights(g, seed+1)
		res, ar, err := vc.SSSPAuto(g, src, acfg)
		if err != nil {
			return "", nil, err
		}
		reached := 0
		for _, d := range res.Dist {
			if d < 1e300 {
				reached++
			}
		}
		return fmt.Sprintf("%d vertices reachable from %d (%d plan segments)", reached, src, ar.Segments), ar.Stats, nil
	case "hashmin":
		res, ar, err := vc.HashMinCCAuto(g, acfg)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("%d components (%d plan segments)", countDistinct(res.Color), ar.Segments), ar.Stats, nil
	}
	return "", nil, fmt.Errorf("engine auto supports pagerank, sssp, and hashmin; got %q", algo)
}

func countDistinct(xs []graph.VertexID) int {
	set := map[graph.VertexID]bool{}
	for _, x := range xs {
		set[x] = true
	}
	return len(set)
}

func countNonzero(xs []uint64) int {
	c := 0
	for _, x := range xs {
		if x != 0 {
			c++
		}
	}
	return c
}
