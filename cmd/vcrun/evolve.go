// Evolving-graph mode: with -mutations > 0 (pagerank, sssp, and
// hashmin only), vcrun applies that many seeded insert/delete batches
// after the main run. After every batch it recomputes the answer twice
// — incrementally, warm-started from the previous round's state, and
// from scratch — checks the two are byte-identical, and reports the
// accumulated time and local-work ratio between them.
package main

import (
	"fmt"
	"math/rand"
	"reflect"
	"time"

	"vcgraph/internal/graph"
	"vcgraph/internal/vc"
)

// evolve runs the incremental-vs-recompute loop. The graph already
// carries the weights the main run assigned (sssp); incremental CC and
// SSSP additionally require it to be undirected.
func evolve(g *graph.Graph, algo string, src graph.VertexID, rounds, batch int, seed int64) error {
	var (
		ccPrior *vc.IncCCState
		ssPrior *vc.IncSSSPState
		prPrior *vc.IncPRState
	)
	// runInc computes the current answer; warm advances the retained
	// state, cold recomputes from scratch and leaves the state alone.
	runInc := func(warm bool) ([]float64, int64, error) {
		var cfg vc.IncConfig
		switch algo {
		case "hashmin":
			prior := ccPrior
			if !warm {
				prior = nil
			}
			st, stats, err := vc.IncrementalCC(g, prior, cfg)
			if err != nil {
				return nil, 0, err
			}
			if warm {
				ccPrior = st
			}
			vals := make([]float64, len(st.Labels))
			for i, l := range st.Labels {
				vals[i] = float64(l)
			}
			return vals, stats.TotalWork, nil
		case "sssp":
			prior := ssPrior
			if !warm {
				prior = nil
			}
			st, stats, err := vc.IncrementalSSSP(g, src, prior, cfg)
			if err != nil {
				return nil, 0, err
			}
			if warm {
				ssPrior = st
			}
			return st.Dist, stats.TotalWork, nil
		case "pagerank":
			prior := prPrior
			if !warm {
				prior = nil
			}
			st, stats, err := vc.IncrementalPageRank(g, 0.85, 30, prior, cfg)
			if err != nil {
				return nil, 0, err
			}
			if warm {
				prPrior = st
			}
			return st.Ranks(), stats.TotalWork, nil
		}
		return nil, 0, fmt.Errorf("-mutations supports pagerank, sssp, and hashmin, not %q", algo)
	}

	// Live-edge multiset so every generated batch validates: deletes
	// are drawn from edges known to exist.
	var live [][2]graph.VertexID
	c := g.Pin()
	for u := 0; u < g.N(); u++ {
		c.ForEachOut(graph.VertexID(u), func(v graph.VertexID, _ float64) {
			if graph.VertexID(u) <= v {
				live = append(live, [2]graph.VertexID{graph.VertexID(u), v})
			}
		})
	}
	g.Unpin(c)
	rng := rand.New(rand.NewSource(seed))
	makeBatch := func() []graph.Mutation {
		muts := make([]graph.Mutation, 0, batch)
		for i := 0; i < batch; i++ {
			if rng.Intn(100) < 55 || len(live) == 0 {
				u := graph.VertexID(rng.Intn(g.N()))
				v := graph.VertexID(rng.Intn(g.N()))
				if u == v {
					v = (v + 1) % graph.VertexID(g.N())
				}
				muts = append(muts, graph.Mutation{Op: graph.InsertEdge, U: u, V: v, W: 0.5 + 3*rng.Float64()})
				live = append(live, [2]graph.VertexID{u, v})
			} else {
				j := rng.Intn(len(live))
				muts = append(muts, graph.Mutation{Op: graph.DeleteEdge, U: live[j][0], V: live[j][1]})
				live = append(live[:j], live[j+1:]...)
			}
		}
		return muts
	}

	// Round 0 is the cold run that seeds the retained state.
	start := time.Now()
	if _, _, err := runInc(true); err != nil {
		return err
	}
	coldSeed := time.Since(start)

	var warmTime, coldTime time.Duration
	var warmWork, coldWork int64
	for round := 1; round <= rounds; round++ {
		if _, err := g.ApplyMutations(makeBatch()); err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		t0 := time.Now()
		warmVals, ww, err := runInc(true)
		if err != nil {
			return fmt.Errorf("round %d (incremental): %w", round, err)
		}
		warmTime += time.Since(t0)
		t0 = time.Now()
		coldVals, cw, err := runInc(false)
		if err != nil {
			return fmt.Errorf("round %d (recompute): %w", round, err)
		}
		coldTime += time.Since(t0)
		warmWork += ww
		coldWork += cw
		if !reflect.DeepEqual(warmVals, coldVals) {
			return fmt.Errorf("round %d: incremental result diverged from recompute", round)
		}
	}

	fmt.Println()
	fmt.Printf("evolving graph:        %d rounds x %d mutations (seed %d), final n=%d m=%d\n",
		rounds, batch, seed, g.N(), g.M())
	fmt.Printf("  cold seed run:       %v\n", coldSeed.Round(time.Microsecond))
	fmt.Printf("  incremental total:   %v (%d work units)\n", warmTime.Round(time.Microsecond), warmWork)
	fmt.Printf("  recompute total:     %v (%d work units)\n", coldTime.Round(time.Microsecond), coldWork)
	if warmWork > 0 {
		fmt.Printf("  work ratio:          %.2fx (every round byte-identical to recompute)\n",
			float64(coldWork)/float64(warmWork))
	}
	return nil
}
