// Command ablations runs the design-choice ablations DESIGN.md calls
// out: the message-combiner saving, the bandwidth-parameter (g) sweep
// of the paper's footnote 1, the worker-count effect on the
// time-processor product, and the §3.8 subgraph-centric communication
// overhead measured on triangle counting.
package main

import (
	"flag"
	"fmt"
	"os"

	"vcgraph/internal/core"
	"vcgraph/internal/vc"
)

func main() {
	workers := flag.Int("workers", 4, "BSP workers")
	flag.Parse()
	outs, err := core.Ablations(vc.Config{Workers: *workers})
	for _, s := range outs {
		fmt.Println(s)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablations:", err)
		os.Exit(1)
	}
}
