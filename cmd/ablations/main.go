// Command ablations runs the design-choice ablations DESIGN.md calls
// out: the message-combiner saving, the bandwidth-parameter (g) sweep
// of the paper's footnote 1, the worker-count effect on the
// time-processor product, and the §3.8 subgraph-centric communication
// overhead measured on triangle counting.
package main

import (
	"flag"
	"fmt"
	"os"

	"vcgraph/internal/core"
	"vcgraph/internal/runtime"
	"vcgraph/internal/vc"
)

func main() {
	workers := flag.Int("workers", 4, "BSP workers")
	modeFlag := flag.String("mode", "auto", "message direction for the vertex-centric runs: push, pull, or auto")
	flag.Parse()
	mode, err := runtime.ParseDirectionMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablations:", err)
		os.Exit(1)
	}
	outs, err := core.Ablations(vc.Config{Workers: *workers, Mode: mode})
	for _, s := range outs {
		fmt.Println(s)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablations:", err)
		os.Exit(1)
	}
}
