// Command figures regenerates the paper's Figures 1–5 as deterministic
// textual traces from live runs of the vertex-centric algorithms:
//
//	1 — eccentricity flooding for diameter computation (§3.1)
//	2 — the forest structure of the S-V algorithm (§3.3.2)
//	3 — tree hooking, star hooking, and shortcutting (§3.3.2)
//	4 — Euler tour, list-ranking, and traversal numbering (§3.4)
//	5 — the conjoined-tree of Boruvka Min-Edge-Picking (§3.5)
//
// Usage:
//
//	figures [-fig N]
package main

import (
	"flag"
	"fmt"
	"os"

	"vcgraph/internal/core"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to print (0 = all)")
	flag.Parse()
	fns := map[int]func() (string, error){
		1: core.Figure1, 2: core.Figure2, 3: core.Figure3, 4: core.Figure4, 5: core.Figure5,
	}
	print := func(n int) {
		s, err := fns[n]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println(s)
	}
	if *fig != 0 {
		if _, ok := fns[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "figures: no figure %d (1-5)\n", *fig)
			os.Exit(2)
		}
		print(*fig)
		return
	}
	for n := 1; n <= 5; n++ {
		print(n)
	}
}
