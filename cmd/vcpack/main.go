// Command vcpack converts a graph to the mmap-ready .vcsr snapshot
// format: a packed CSR (varint-delta destination blocks, see the graph
// package codec) laid out so vcrun and the serving daemon can map it
// and run algorithms without parsing or re-encoding.
//
// Usage:
//
//	vcpack -in soc-LiveJournal1.txt -out lj.vcsr [-directed] [-keep-self-loops] [-keep-duplicates]
//	vcpack -in mygraph.vcg -format edgelist -out mygraph.vcsr
//	vcpack -gen powerlaw -n 100000 -m 8 -out pl.vcsr
//
// Input formats: snap (SNAP/TSV pairs, the default), edgelist (the
// vcgraph self-describing format), or a generator via -gen. The tool
// prints the flat and packed edge-array footprints so the compression
// ratio is visible at build time.
//
// -relabel renames vertices in descending degree order before packing
// (hubs get the small IDs, which shrinks the varint-delta blocks) and
// writes a permutation sidecar <out>.perm — line i holds the old ID of
// new vertex i — so results map back to the input's vertex IDs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"vcgraph/internal/graph"
)

func main() {
	in := flag.String("in", "", "input graph file")
	format := flag.String("format", "snap", "input format: snap or edgelist")
	out := flag.String("out", "", "output .vcsr file (required)")
	directed := flag.Bool("directed", false, "treat snap pairs as directed edges")
	keepLoops := flag.Bool("keep-self-loops", false, "retain self-loops from snap input")
	keepDups := flag.Bool("keep-duplicates", false, "retain duplicate edges from snap input")
	gen := flag.String("gen", "", "generate instead of reading: random, connected, powerlaw")
	n := flag.Int("n", 100000, "vertices for -gen")
	m := flag.Int("m", 3, "edges (or powerlaw attachment degree) for -gen")
	seed := flag.Int64("seed", 1, "generator seed")
	relabel := flag.Bool("relabel", false,
		"relabel vertices in descending degree order before packing (hubs get small IDs, shrinking varint-delta blocks) and write the permutation sidecar <out>.perm")
	flag.Parse()

	if *out == "" {
		fail(fmt.Errorf("-out is required"))
	}
	var g *graph.Graph
	var err error
	switch {
	case *gen != "":
		switch *gen {
		case "random":
			g = graph.Random(*n, *m, *seed)
		case "connected":
			g = graph.RandomConnected(*n, *m, *seed)
		case "powerlaw":
			g = graph.PreferentialAttachment(*n, *m, *seed)
		default:
			fail(fmt.Errorf("unknown generator %q", *gen))
		}
	case *in != "":
		f, oerr := os.Open(*in)
		if oerr != nil {
			fail(oerr)
		}
		switch *format {
		case "snap":
			g, err = graph.ReadSNAP(f, graph.SNAPOptions{
				Directed:       *directed,
				KeepSelfLoops:  *keepLoops,
				KeepDuplicates: *keepDups,
			})
		case "edgelist":
			g, err = graph.ReadEdgeList(f)
		default:
			err = fmt.Errorf("unknown format %q (snap or edgelist)", *format)
		}
		f.Close()
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("either -in or -gen is required"))
	}

	if *relabel {
		order := graph.DegreeOrder(g)
		g = graph.Relabel(g, order)
		permPath := *out + ".perm"
		if err := writePerm(permPath, order); err != nil {
			fail(err)
		}
		fmt.Printf("relabeled by degree; permutation sidecar %s (line i = old ID of new vertex i)\n", permPath)
	}

	flat := graph.BuildCSR(g)
	packed := graph.BuildPackedCSR(g)
	of, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	if err := graph.WriteCSRFile(of, packed); err != nil {
		of.Close()
		fail(err)
	}
	if err := of.Close(); err != nil {
		fail(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fail(err)
	}
	fmt.Printf("packed %s: n=%d m=%d\n", *out, g.N(), g.M())
	fmt.Printf("  edge arrays: flat %d B, packed %d B (%.2fx)\n",
		flat.EdgeBytes(), packed.EdgeBytes(), float64(flat.EdgeBytes())/float64(packed.EdgeBytes()))
	fmt.Printf("  file size:   %d B\n", st.Size())
}

// writePerm writes the relabeling permutation sidecar: one old vertex
// ID per line, line i holding the old ID of new vertex i, so results
// computed on the packed snapshot map back to input IDs.
func writePerm(path string, order []graph.VertexID) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# vcsr relabel permutation: line i = old ID of new vertex i (n=%d)\n", len(order))
	for _, old := range order {
		fmt.Fprintln(w, old)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vcpack:", err)
	os.Exit(1)
}
