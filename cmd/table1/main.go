// Command table1 regenerates Table 1 of "Vertex-Centric Graph
// Processing: The Good, the Bad, and the Ugly" (EDBT 2017): for each of
// the twenty workloads it runs the vertex-centric implementation on the
// instrumented BSP engine and the best-known sequential baseline at two
// input scales, then prints the measured "More Work?" and "BPPA?"
// verdicts next to the paper's.
//
// Usage:
//
//	table1 [-workers N] [-rows T1.03,T1.04] [-details]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vcgraph/internal/core"
	"vcgraph/internal/vc"
)

func main() {
	workers := flag.Int("workers", 4, "BSP workers (the P of the time-processor product)")
	rows := flag.String("rows", "", "comma-separated experiment ids to run (default: all)")
	details := flag.Bool("details", false, "print per-row evidence after the table")
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of the table")
	ext := flag.Bool("ext", false, "run the extension registry (X.01.. — §3.8 and Pregel-paper workloads) instead of Table 1")
	sweep := flag.Int("sweep", 0, "instead of verdicts, run each selected row at this many geometrically spaced sizes and emit the scaling curve as CSV")
	flag.Parse()

	cfg := vc.Config{Workers: *workers}
	var filter []string
	if *rows != "" {
		filter = strings.Split(*rows, ",")
	}
	registry := core.Experiments()
	if *ext {
		registry = core.ExtensionExperiments()
	}
	if *sweep > 0 {
		want := map[string]bool{}
		for _, f := range filter {
			want[f] = true
		}
		var points []core.SweepPoint
		for _, e := range registry {
			if len(want) > 0 && !want[e.ID] {
				continue
			}
			ps, err := core.Sweep(e, *sweep, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "table1:", err)
				os.Exit(1)
			}
			points = append(points, ps...)
		}
		fmt.Print(core.RenderSweepCSV(points))
		return
	}

	start := time.Now()
	run := core.RunAll
	if *ext {
		run = core.RunExtensions
	}
	outs, err := run(cfg, filter...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		if len(outs) == 0 {
			os.Exit(1)
		}
	}
	if *csv {
		fmt.Print(core.RenderCSV(outs))
		return
	}
	fmt.Print(core.RenderTable(outs))
	fmt.Printf("\n%d/%d rows, %d workers, %.1fs\n", len(outs), 20, *workers, time.Since(start).Seconds())
	if *details {
		fmt.Println()
		fmt.Print(core.RenderDetails(outs))
	}
	reproOK := 0
	for _, o := range outs {
		if o.MoreWorkRepro && o.BPPARepro {
			reproOK++
		}
	}
	fmt.Printf("verdicts fully reproduced: %d/%d\n", reproOK, len(outs))
}
