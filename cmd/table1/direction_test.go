package main

import (
	"testing"

	"vcgraph/internal/core"
	"vcgraph/internal/runtime"
	"vcgraph/internal/vc"
)

// TestTable1GoldenAcrossModes renders the full Table 1 CSV under forced
// push and forced pull and requires both byte-identical to the stored
// golden (which TestTable1Golden already pins under the default auto
// mode). Direction-optimizing execution must be invisible to every
// reported metric: verdicts, superstep counts, local work, and the
// time-processor products — pulled dense supersteps are work-dominated
// under the default cost model, so collapsing their message volume
// cannot move max(w, g·h, L).
func TestTable1GoldenAcrossModes(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Table 1 runs in -short mode")
	}
	want := readGolden(t)
	for _, mode := range []runtime.DirectionMode{runtime.DirectionPush, runtime.DirectionPull} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			outs, err := core.RunAll(vc.Config{Workers: 4, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if got := core.RenderCSV(outs); got != want {
				t.Errorf("mode %s: Table 1 CSV differs from the golden file", mode)
			}
		})
	}
}
