package main

import (
	"encoding/csv"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vcgraph/internal/core"
	"vcgraph/internal/vc"
)

var update = flag.Bool("update", false, "rewrite the golden files")

const goldenFile = "table1_w4.csv"

// goldenColumns are the CSV fields that must be identical across worker
// counts: everything except pt_small/pt_large (columns 6, 7) and
// ratio_small/ratio_large (columns 10, 11), which scale with P.
var workerIndependent = []int{0, 1, 2, 3, 4, 5, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21}

func renderCSV(t *testing.T, workers int, rows ...string) string {
	t.Helper()
	outs, err := core.RunAll(vc.Config{Workers: workers}, rows...)
	if err != nil {
		t.Fatal(err)
	}
	return core.RenderCSV(outs)
}

func readGolden(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", goldenFile))
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	return string(b)
}

// TestTable1Golden regenerates the full Table 1 CSV at the default
// 4 workers and requires it to match testdata/table1_w4.csv byte for
// byte. Every metric the table reports — time-processor products,
// sequential baseline ops, superstep counts, verdicts — is asserted
// deterministic in one shot.
func TestTable1Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 run in -short mode")
	}
	got := renderCSV(t, 4)
	if *update {
		if err := os.WriteFile(filepath.Join("testdata", goldenFile), []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want := readGolden(t)
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Errorf("line %d differs\n got: %s\nwant: %s", i+1, g, w)
		}
	}
}

// TestTable1StableAcrossRuns re-runs a cheap row subset and checks the
// emitted lines are byte-identical to the golden file — i.e. a fresh
// process reproduces the stored run exactly, not merely a run being
// equal to itself.
func TestTable1StableAcrossRuns(t *testing.T) {
	rows := []string{"T1.03", "T1.08", "T1.16"}
	got := renderCSV(t, 4, rows...)
	want := readGolden(t)
	for _, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n")[1:] {
		if !strings.Contains(want, line+"\n") {
			t.Errorf("line not present in golden file:\n%s", line)
		}
	}
}

// TestTable1VerdictsStableAcrossWorkers runs a row subset at a
// different worker count and checks every worker-independent column
// (sizes, sequential ops, superstep counts, verdicts) agrees with the
// 4-worker golden. Only the P-scaled columns (PT, ratio) may move.
func TestTable1VerdictsStableAcrossWorkers(t *testing.T) {
	rows := []string{"T1.03", "T1.08", "T1.16"}
	got := renderCSV(t, 2, rows...)
	gotRecs, err := csv.NewReader(strings.NewReader(got)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, err := csv.NewReader(strings.NewReader(readGolden(t))).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string][]string{}
	for _, r := range wantRecs[1:] {
		byID[r[0]] = r
	}
	if len(gotRecs) != len(rows)+1 {
		t.Fatalf("got %d records, want %d", len(gotRecs)-1, len(rows))
	}
	for _, r := range gotRecs[1:] {
		w, ok := byID[r[0]]
		if !ok {
			t.Fatalf("row %s missing from golden file", r[0])
		}
		for _, c := range workerIndependent {
			if r[c] != w[c] {
				t.Errorf("row %s column %d: 2 workers %q, 4 workers %q", r[0], c, r[c], w[c])
			}
		}
	}
}
