// Command vcd is the vertex-centric serving daemon: a JSON/HTTP front
// end over the library's job-scoped runtime. It registers named
// graphs, admits concurrent jobs (PageRank, SSSP, connected
// components, k-core on any of the four engines) through one shared
// worker pool, streams per-superstep statistics from live runs, and
// answers point queries against finished results. See
// internal/service for the API and DESIGN.md for the concurrency
// contract.
//
// Usage:
//
//	vcd [-addr :8080] [-workers 0] [-max-jobs 4]
//
// workers = 0 sizes the shared pool to GOMAXPROCS; max-jobs bounds the
// jobs running concurrently (the rest queue FIFO).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"vcgraph/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "shared pool width (0 = GOMAXPROCS)")
	maxJobs := flag.Int("max-jobs", 4, "maximum concurrently running jobs")
	flag.Parse()

	srv := service.New(*workers, *maxJobs)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcd:", err)
		os.Exit(1)
	}
	fmt.Printf("vcd: listening on %s (max %d concurrent jobs)\n", ln.Addr(), *maxJobs)
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "vcd:", err)
		os.Exit(1)
	}
}
