// Command vcd is the vertex-centric serving daemon: a JSON/HTTP front
// end over the library's job-scoped runtime. It registers named
// graphs, admits concurrent jobs (PageRank, SSSP, connected
// components, k-core on any of the four engines — or engine "auto",
// which lets the adaptive plan layer pick and switch engines at
// superstep barriers mid-run) through one shared
// worker pool, streams per-superstep statistics from live runs, and
// answers point queries against finished results. See
// internal/service for the API and DESIGN.md for the concurrency
// contract.
//
// Usage:
//
//	vcd [-addr :8080] [-workers 0] [-max-jobs 4] [-job-retention 512] [-graph-ttl 0]
//	    [-checkpoint-every 0] [-full-snapshot-every 0]
//
// workers = 0 sizes the shared pool to GOMAXPROCS; max-jobs bounds the
// jobs running concurrently (the rest queue FIFO). job-retention caps
// retained terminal job records; graph-ttl, when positive, evicts
// graphs idle longer than the given duration (graphs with pinned
// snapshots are never evicted). A background sweeper enforces both.
// checkpoint-every and full-snapshot-every set server-wide checkpoint
// cadence defaults for jobs that leave the corresponding spec fields
// unset; full-snapshot-every > 1 stores the checkpoints between full
// snapshots as dirty-set deltas (see internal/runtime.DeltaPolicy).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"vcgraph/internal/plan"
	"vcgraph/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "shared pool width (0 = GOMAXPROCS)")
	maxJobs := flag.Int("max-jobs", 4, "maximum concurrently running jobs")
	retention := flag.Int("job-retention", service.DefaultJobRetention,
		"terminal job records to retain before oldest-first eviction")
	graphTTL := flag.Duration("graph-ttl", 0,
		"evict graphs idle longer than this (0 = keep forever; pinned graphs are never evicted)")
	sweep := flag.Duration("sweep", time.Minute, "registry eviction sweep interval")
	ckEvery := flag.Int("checkpoint-every", 0,
		"default checkpoint cadence (supersteps/epochs) for jobs that do not set checkpoint_every (0 = off)")
	fullEvery := flag.Int("full-snapshot-every", 0,
		"default full-snapshot cadence for jobs that do not set full_snapshot_every; >1 stores the checkpoints between as dirty-set deltas")
	flag.Parse()

	srv := service.NewServer(service.Options{
		Workers:                  *workers,
		MaxJobs:                  *maxJobs,
		JobRetention:             *retention,
		GraphTTL:                 *graphTTL,
		DefaultCheckpointEvery:   *ckEvery,
		DefaultFullSnapshotEvery: *fullEvery,
		PlanTrace: func(jobID int64, d plan.Decision) {
			fmt.Printf("vcd: job %d plan: step=%d engine=%s partition=%s mode=%s fcs=%d (%s)\n",
				jobID, d.Step, d.Plan.Engine, d.Plan.Partition, d.Plan.Mode, d.Plan.FCS, d.Reason)
		},
	})
	go func() {
		for range time.Tick(*sweep) {
			if n := srv.EvictJobs(); n > 0 {
				fmt.Printf("vcd: evicted %d terminal job records\n", n)
			}
			if names := srv.EvictGraphs(); len(names) > 0 {
				fmt.Printf("vcd: evicted idle graphs %v\n", names)
			}
		}
	}()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcd:", err)
		os.Exit(1)
	}
	fmt.Printf("vcd: listening on %s (max %d concurrent jobs)\n", ln.Addr(), *maxJobs)
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "vcd:", err)
		os.Exit(1)
	}
}
