// Job-layer benchmarks: the per-run setup cost of a driver that builds
// a private worker pool versus one leasing from a shared pool
// (BenchmarkJobSetup — the BENCH_service.json headline), and the
// serving layer's throughput at increasing admission widths
// (BenchmarkServiceJobs). BENCH_service.json records the committed
// numbers; cmd/benchguard enforces the setup-cost headline in CI.
package vcgraph

import (
	"fmt"
	"testing"

	"vcgraph/internal/bsp"
	"vcgraph/internal/runtime"
	"vcgraph/internal/service"
)

// benchPolicy is a minimal driver policy: a fixed number of supersteps
// each dispatching one no-op phase, so the measurement isolates run
// setup (pool construction vs lease) plus barrier overhead.
type benchPolicy struct {
	d     *runtime.Driver[int]
	steps int
	limit int
}

func (p *benchPolicy) Quiescent(step, pending int) bool { return p.steps >= p.limit }
func (p *benchPolicy) Superstep(step int, ss *bsp.SuperstepStats) (int, error) {
	p.d.Lease().Run(func(w int) {})
	ss.Work[0]++
	p.steps++
	return 1, nil
}
func (p *benchPolicy) Snapshot() int                       { return p.steps }
func (p *benchPolicy) Restore(snap int, step int, ok bool) { p.steps = snap }

func runSetupBench(b *testing.B, pool *runtime.Pool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stats := &bsp.Stats{Workers: 4}
		p := &benchPolicy{limit: 4}
		d := runtime.NewDriver[int](p, stats, runtime.DriverConfig{
			Name: "bench", Workers: 4, MaxSteps: 100, Pool: pool,
		})
		p.d = d
		if _, err := d.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJobSetup measures what a short job pays before its first
// superstep: fresh_pool is the legacy fallback path (every Run builds
// and tears down a private pool — W goroutines, channels, joins),
// shared_pool is the job-runtime path (a Lease on a long-lived pool).
func BenchmarkJobSetup(b *testing.B) {
	b.Run("fresh_pool", func(b *testing.B) { runSetupBench(b, nil) })
	b.Run("shared_pool", func(b *testing.B) {
		pool := runtime.NewPool(4)
		defer pool.Close()
		runSetupBench(b, pool)
	})
}

// BenchmarkServiceJobs measures end-to-end serving throughput: each
// iteration submits a batch of PageRank jobs against one registered
// graph and waits for all of them, at admission widths 1, 4, and 16.
// jobs/sec = batch / (ns_op / 1e9).
func BenchmarkServiceJobs(b *testing.B) {
	for _, width := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("jobs_%d", width), func(b *testing.B) {
			srv := service.New(4, width)
			defer srv.Close()
			if err := srv.RegisterGraph(service.GraphSpec{
				Name: "bench", Gen: "connected", N: 2000, M: 6000, Seed: 3,
			}); err != nil {
				b.Fatal(err)
			}
			spec := service.JobSpec{
				Graph: "bench", Algo: "pagerank", Engine: "pregel", Workers: 2, K: 5,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jobs := make([]*runtime.Job, width)
				for j := range jobs {
					job, err := srv.Submit(spec)
					if err != nil {
						b.Fatal(err)
					}
					jobs[j] = job
				}
				for _, job := range jobs {
					if err := job.Wait(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(width), "jobs/batch")
		})
	}
}
