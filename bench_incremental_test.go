// Incremental-vs-recompute benchmarks on an evolving power-law graph
// (BENCH_incremental.json; cmd/benchguard enforces the SSSP and
// insert-only CC headlines). Each algorithm is measured from scratch
// (cold incremental run — the canonical recompute) and warm after
// seeded mutation batches of 4 and 64; batch application and state
// bookkeeping happen off the timer, so the measurement is exactly the
// incremental repair a serving daemon would pay per mutation batch.
package vcgraph

import (
	"math/rand"
	"testing"

	"vcgraph/internal/graph"
	"vcgraph/internal/vc"
)

const (
	incBenchN = 30000
	incBenchM = 3 // preferential-attachment degree
)

// incBench owns the evolving graph and a live-edge multiset so every
// generated batch validates (deletes always hit an existing edge).
type incBench struct {
	g    *graph.Graph
	rng  *rand.Rand
	live [][2]graph.VertexID
}

func newIncBench(b *testing.B) *incBench {
	b.Helper()
	g := graph.PreferentialAttachment(incBenchN, incBenchM, 7)
	graph.RandomWeights(g, 8)
	ib := &incBench{g: g, rng: rand.New(rand.NewSource(42))}
	c := g.Pin()
	defer g.Unpin(c)
	for u := 0; u < g.N(); u++ {
		c.ForEachOut(graph.VertexID(u), func(v graph.VertexID, _ float64) {
			if graph.VertexID(u) <= v {
				ib.live = append(ib.live, [2]graph.VertexID{graph.VertexID(u), v})
			}
		})
	}
	return ib
}

// step applies one batch of k mutations (inserts biased 55/45, or
// insert-only for the CC merge-path headline).
func (ib *incBench) step(b *testing.B, k int, insertOnly bool) {
	b.Helper()
	muts := make([]graph.Mutation, 0, k)
	for i := 0; i < k; i++ {
		if insertOnly || ib.rng.Intn(100) < 55 || len(ib.live) == 0 {
			u := graph.VertexID(ib.rng.Intn(ib.g.N()))
			v := graph.VertexID(ib.rng.Intn(ib.g.N()))
			if u == v {
				v = (v + 1) % graph.VertexID(ib.g.N())
			}
			muts = append(muts, graph.Mutation{Op: graph.InsertEdge, U: u, V: v, W: 0.5 + 3*ib.rng.Float64()})
			ib.live = append(ib.live, [2]graph.VertexID{u, v})
		} else {
			j := ib.rng.Intn(len(ib.live))
			muts = append(muts, graph.Mutation{Op: graph.DeleteEdge, U: ib.live[j][0], V: ib.live[j][1]})
			ib.live = append(ib.live[:j], ib.live[j+1:]...)
		}
	}
	if _, err := ib.g.ApplyMutations(muts); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkIncrementalSSSP(b *testing.B) {
	warm := func(batch int) func(*testing.B) {
		return func(b *testing.B) {
			ib := newIncBench(b)
			st, _, err := vc.IncrementalSSSP(ib.g, 0, nil, vc.IncConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ib.step(b, batch, false)
				b.StartTimer()
				st, _, err = vc.IncrementalSSSP(ib.g, 0, st, vc.IncConfig{})
				if err != nil {
					b.Fatal(err)
				}
				if st.Cold {
					b.Fatal("warm run fell back to cold")
				}
			}
		}
	}
	b.Run("scratch", func(b *testing.B) {
		ib := newIncBench(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := vc.IncrementalSSSP(ib.g, 0, nil, vc.IncConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch4", warm(4))
	b.Run("batch64", warm(64))
}

func BenchmarkIncrementalCC(b *testing.B) {
	warm := func(batch int, insertOnly bool) func(*testing.B) {
		return func(b *testing.B) {
			ib := newIncBench(b)
			st, _, err := vc.IncrementalCC(ib.g, nil, vc.IncConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ib.step(b, batch, insertOnly)
				b.StartTimer()
				st, _, err = vc.IncrementalCC(ib.g, st, vc.IncConfig{})
				if err != nil {
					b.Fatal(err)
				}
				if st.Cold {
					b.Fatal("warm run fell back to cold")
				}
			}
		}
	}
	b.Run("scratch", func(b *testing.B) {
		ib := newIncBench(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := vc.IncrementalCC(ib.g, nil, vc.IncConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insert4", warm(4, true))
	b.Run("batch4", warm(4, false))
	b.Run("batch64", warm(64, false))
}

func BenchmarkIncrementalPageRank(b *testing.B) {
	const alpha, k = 0.85, 30
	warm := func(batch int) func(*testing.B) {
		return func(b *testing.B) {
			ib := newIncBench(b)
			st, _, err := vc.IncrementalPageRank(ib.g, alpha, k, nil, vc.IncConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ib.step(b, batch, false)
				b.StartTimer()
				st, _, err = vc.IncrementalPageRank(ib.g, alpha, k, st, vc.IncConfig{})
				if err != nil {
					b.Fatal(err)
				}
				if st.Cold {
					b.Fatal("warm run fell back to cold")
				}
			}
		}
	}
	b.Run("scratch", func(b *testing.B) {
		ib := newIncBench(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := vc.IncrementalPageRank(ib.g, alpha, k, nil, vc.IncConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch4", warm(4))
	b.Run("batch64", warm(64))
}
