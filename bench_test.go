// Package vcgraph's root bench suite regenerates every Table 1 row of
// the paper as a Go benchmark: each BenchmarkT1_XX runs the row's
// vertex-centric implementation and its sequential baseline as
// sub-benchmarks ("vc" and "seq") on the row's small-scale workload, so
// `go test -bench .` reports the wall-clock side of the comparison the
// paper makes analytically. Figure traces and engine micro-benchmarks
// are included as well.
package vcgraph

import (
	"fmt"
	"testing"

	"vcgraph/internal/blockcentric"
	"vcgraph/internal/core"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	"vcgraph/internal/seq"
	"vcgraph/internal/vc"
)

// benchRow benches one registry row: the paired runner at the row's
// small scale (per-iteration it performs both the vertex-centric run
// and the sequential baseline, exactly what cmd/table1 measures).
func benchRow(b *testing.B, id string) {
	var exp *core.Experiment
	for _, e := range core.Experiments() {
		if e.ID == id {
			exp = e
			break
		}
	}
	if exp == nil {
		b.Fatalf("no experiment %s", id)
	}
	cfg := vc.Config{Workers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(exp.Small, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1_01_Diameter(b *testing.B)          { benchRow(b, "T1.01") }
func BenchmarkT1_02_PageRank(b *testing.B)          { benchRow(b, "T1.02") }
func BenchmarkT1_03_HashMinCC(b *testing.B)         { benchRow(b, "T1.03") }
func BenchmarkT1_04_ShiloachVishkin(b *testing.B)   { benchRow(b, "T1.04") }
func BenchmarkT1_05_Biconnected(b *testing.B)       { benchRow(b, "T1.05") }
func BenchmarkT1_06_WeaklyConnected(b *testing.B)   { benchRow(b, "T1.06") }
func BenchmarkT1_07_StronglyConnected(b *testing.B) { benchRow(b, "T1.07") }
func BenchmarkT1_08_EulerTour(b *testing.B)         { benchRow(b, "T1.08") }
func BenchmarkT1_09_PrePostOrder(b *testing.B)      { benchRow(b, "T1.09") }
func BenchmarkT1_10_SpanningTree(b *testing.B)      { benchRow(b, "T1.10") }
func BenchmarkT1_11_MinSpanningTree(b *testing.B)   { benchRow(b, "T1.11") }
func BenchmarkT1_12_ColoringMIS(b *testing.B)       { benchRow(b, "T1.12") }
func BenchmarkT1_13_MaxWeightMatching(b *testing.B) { benchRow(b, "T1.13") }
func BenchmarkT1_14_BipartiteMatching(b *testing.B) { benchRow(b, "T1.14") }
func BenchmarkT1_15_Betweenness(b *testing.B)       { benchRow(b, "T1.15") }
func BenchmarkT1_16_SSSP(b *testing.B)              { benchRow(b, "T1.16") }
func BenchmarkT1_17_APSP(b *testing.B)              { benchRow(b, "T1.17") }
func BenchmarkT1_18_GraphSimulation(b *testing.B)   { benchRow(b, "T1.18") }
func BenchmarkT1_19_DualSimulation(b *testing.B)    { benchRow(b, "T1.19") }
func BenchmarkT1_20_StrongSimulation(b *testing.B)  { benchRow(b, "T1.20") }

// --- Vertex-centric vs. sequential wall-clock pairs (McSherry-style
// "scalability, but at what COST" comparisons on identical inputs) ---

func BenchmarkWallclockPageRank(b *testing.B) {
	g := graph.PreferentialAttachment(5000, 3, 1)
	b.Run("vc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vc.PageRank(g, 0.85, 30, vc.Config{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var ops seq.Ops
			seq.PageRank(g, 0.85, 30, &ops)
		}
	})
}

func BenchmarkWallclockConnectedComponents(b *testing.B) {
	g := graph.RandomConnected(20000, 60000, 2)
	b.Run("hashmin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vc.HashMinCC(g, vc.Config{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vc.SVCC(g, vc.Config{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seq-bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var ops seq.Ops
			seq.Components(g, &ops)
		}
	})
}

func BenchmarkWallclockSSSP(b *testing.B) {
	g := graph.RandomConnected(20000, 80000, 3)
	graph.RandomWeights(g, 4)
	b.Run("vc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vc.SSSP(g, 0, vc.Config{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seq-dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var ops seq.Ops
			seq.Dijkstra(g, 0, &ops)
		}
	})
}

// --- Engine micro-benchmarks and worker-count ablation ---

// tokenProgram passes a single token down a path: one active vertex per
// superstep over n supersteps. It isolates the engine's superstep
// dispatch overhead (worker wakeup, active-vertex discovery, inbox
// management) from algorithmic work.
type tokenProgram struct{}

func (tokenProgram) Init(g *graph.Graph, id pregel.VertexID) int { return 0 }

func (tokenProgram) Compute(ctx *pregel.Context[int, int], msgs []int) {
	if ctx.Superstep() == 0 {
		if ctx.ID() == 0 && ctx.NumVertices() > 1 {
			ctx.SendTo(1, 1)
		}
	} else if len(msgs) > 0 {
		if next := ctx.ID() + 1; int(next) < ctx.NumVertices() {
			ctx.SendTo(next, 1)
		}
	}
	ctx.VoteToHalt()
}

// BenchmarkEngineSuperstepDispatch measures the per-superstep fixed
// cost of the pregel engine: 2048 supersteps with exactly one active
// vertex and one in-flight message each.
func BenchmarkEngineSuperstepDispatch(b *testing.B) {
	g := graph.Path(2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := pregel.NewEngine[int, int](g, tokenProgram{}, pregel.Config[int]{Workers: 4})
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerLawPageRank / BenchmarkPowerLawSSSP: the two headline
// workloads on the preferential-attachment (power-law) generator, used
// to document engine-substrate improvements.
func BenchmarkPowerLawPageRank(b *testing.B) {
	g := graph.PreferentialAttachment(20000, 4, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vc.PageRank(g, 0.85, 20, vc.Config{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerLawSSSP(b *testing.B) {
	g := graph.PreferentialAttachment(20000, 4, 7)
	graph.RandomWeights(g, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vc.SSSP(g, 0, vc.Config{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineWorkers(b *testing.B) {
	g := graph.PreferentialAttachment(20000, 4, 5)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vc.PageRank(g, 0.85, 10, vc.Config{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngineMessageThroughput(b *testing.B) {
	// Hash-Min on a dense random graph is message-bound: measures raw
	// routing + combining throughput.
	g := graph.Random(5000, 100000, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vc.HashMinCC(g, vc.Config{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Figures(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension algorithms (§3.8 and the Pregel paper's remainder) ---

func BenchmarkExtensionTriangles(b *testing.B) {
	g := graph.Random(1000, 12000, 8)
	b.Run("vc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vc.Triangles(g, vc.Config{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var ops seq.Ops
			seq.Triangles(g, &ops)
		}
	})
}

func BenchmarkExtensionKCore(b *testing.B) {
	g := graph.PreferentialAttachment(5000, 4, 9)
	b.Run("vc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vc.KCore(g, vc.Config{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var ops seq.Ops
			seq.KCore(g, &ops)
		}
	})
}

func BenchmarkExtensionCommunity(b *testing.B) {
	g := graph.PreferentialAttachment(5000, 3, 10)
	for i := 0; i < b.N; i++ {
		if _, err := vc.LabelPropagation(g, 0, vc.Config{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionSemiClustering(b *testing.B) {
	g := graph.RandomConnected(1000, 4000, 11)
	graph.RandomWeights(g, 12)
	for i := 0; i < b.N; i++ {
		if _, err := vc.SemiClustering(g, vc.SemiClusterConfig{}, vc.Config{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Paradigm benchmarks: the same problem in three engines ---

func BenchmarkParadigmCC(b *testing.B) {
	// Permuted IDs: the realistic case where the Hash-Min frontier
	// thins out, letting FCS and the block-centric model shine.
	g := graph.PermutedPath(8192, 3)
	b.Run("pregel-hashmin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vc.HashMinCC(g, vc.Config{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pregel-sv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vc.SVCC(g, vc.Config{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pregel-hashmin-fcs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vc.HashMinCC(g, vc.Config{Workers: 4, FCS: 64}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blockcentric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := blockcentric.ConnectedComponents(g, blockcentric.Config{Blocks: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkParadigmPageRank(b *testing.B) {
	g := graph.PreferentialAttachment(10000, 3, 13)
	const eps = 1e-9
	b.Run("pregel-converge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := vc.PageRankConverge(g, 0.85, eps, vc.Config{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gas-delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := gas.PageRank(g, 0.85, eps, gas.Config{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCheckpointOverhead(b *testing.B) {
	g := graph.Path(2048)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vc.HashMinCC(g, vc.Config{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("checkpoint-64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vc.HashMinCC(g, vc.Config{Workers: 4, CheckpointEvery: 64}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
