// Direction-optimizing execution benchmark: the dense-frontier
// workloads (PageRank fixed-K, Hash-Min) plus a combiner-less control
// (k-core, whose messages carry sender identity and therefore cannot be
// pulled) on a 20k-vertex power-law graph, across worker counts and all
// three direction modes. BENCH_direction.json records the committed
// numbers and the push/pull headline ratios the regression guard
// (cmd/benchguard) enforces in CI.
package vcgraph

import (
	"fmt"
	"testing"

	"vcgraph/internal/graph"
	"vcgraph/internal/runtime"
	"vcgraph/internal/vc"
)

// Degree 32 keeps the dense supersteps message-dominated: push pays
// O(m) sender-side combiner folds plus lane materialization and
// delivery per superstep, pull only the O(m) transpose scan.
func benchDirectionGraph() *graph.Graph {
	return graph.PreferentialAttachment(20000, 32, 5)
}

var benchDirectionModes = []struct {
	name string
	mode runtime.DirectionMode
}{
	{"push", runtime.DirectionPush},
	{"pull", runtime.DirectionPull},
	{"auto", runtime.DirectionAuto},
}

func BenchmarkDirection(b *testing.B) {
	g := benchDirectionGraph()
	algos := []struct {
		name string
		run  func(cfg vc.Config) error
	}{
		{"pagerank", func(cfg vc.Config) error {
			_, err := vc.PageRank(g, 0.85, 10, cfg)
			return err
		}},
		{"hashmin", func(cfg vc.Config) error {
			_, err := vc.HashMinCC(g, cfg)
			return err
		}},
		// Control: no combiner, so every mode degenerates to push and
		// the three columns should coincide up to noise.
		{"kcore", func(cfg vc.Config) error {
			_, err := vc.KCore(g, cfg)
			return err
		}},
	}
	for _, algo := range algos {
		for _, w := range []int{1, 4, 8} {
			for _, dm := range benchDirectionModes {
				b.Run(fmt.Sprintf("%s/workers-%d/%s", algo.name, w, dm.name), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := algo.run(vc.Config{Workers: w, Mode: dm.mode}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}
