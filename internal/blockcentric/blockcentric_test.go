package blockcentric_test

import (
	. "vcgraph/internal/blockcentric"
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
	"vcgraph/internal/vc"
)

func TestBlockCCMatchesBFS(t *testing.T) {
	cases := map[string]*graph.Graph{
		"random":       graph.Random(300, 600, 3),
		"path":         graph.Path(256),
		"disconnected": graph.Random(200, 120, 7),
		"star":         graph.Star(64),
		"grid":         graph.Grid(12, 12),
		"isolated":     graph.New(9, false),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			for _, blocks := range []int{1, 3, 8} {
				res, err := ConnectedComponents(g, Config{Blocks: blocks})
				if err != nil {
					t.Fatal(err)
				}
				var ops seq.Ops
				want := seq.Components(g, &ops)
				for v := range want {
					if res.Color[v] != want[v] {
						t.Fatalf("blocks=%d vertex %d: got %d want %d", blocks, v, res.Color[v], want[v])
					}
				}
			}
		})
	}
}

func TestBlockCCQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(80, 110, seed)
		res, err := ConnectedComponents(g, Config{Blocks: 5})
		if err != nil {
			return false
		}
		var ops seq.Ops
		want := seq.Components(g, &ops)
		for v := range want {
			if res.Color[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBlockCentricBeatsVertexCentricOnSupersteps is the conclusion's
// claim measured: on a path, vertex-centric Hash-Min needs Θ(n)
// supersteps while the block-centric version needs Θ(B).
func TestBlockCentricBeatsVertexCentricOnSupersteps(t *testing.T) {
	g := graph.Path(2048)
	bc, err := ConnectedComponents(g, Config{Blocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	vcRes, err := vc.HashMinCC(g, vc.Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if bcSS, vcSS := bc.Stats.NumSupersteps(), vcRes.Stats.NumSupersteps(); bcSS*20 > vcSS {
		t.Fatalf("block-centric %d supersteps vs vertex-centric %d: expected >20x gap", bcSS, vcSS)
	}
	// And the boundary-only message volume is far below Hash-Min's.
	if bc.Stats.TotalMessages*10 > vcRes.Stats.TotalMessages {
		t.Fatalf("block-centric messages %d vs vertex-centric %d: expected >10x gap",
			bc.Stats.TotalMessages, vcRes.Stats.TotalMessages)
	}
}

func TestBlockCountOneIsSequential(t *testing.T) {
	g := graph.RandomConnected(500, 1200, 5)
	res, err := ConnectedComponents(g, Config{Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A single block resolves any graph in two supersteps (compute +
	// quiescence detection).
	if res.Stats.NumSupersteps() > 2 {
		t.Fatalf("single block took %d supersteps", res.Stats.NumSupersteps())
	}
}

func TestBlockEngineSuperstepCap(t *testing.T) {
	g := graph.Path(64)
	_, err := ConnectedComponents(g, Config{Blocks: 16, MaxSupersteps: 2})
	if err == nil {
		t.Fatal("expected superstep cap error")
	}
}

func TestBlockPartitionCustom(t *testing.T) {
	g := graph.Path(40)
	interleaved := func(g *graph.Graph, workers int) []int32 {
		o := make([]int32, g.N())
		for v := range o {
			o[v] = int32(v % workers)
		}
		return o
	}
	res, err := ConnectedComponents(g, Config{Blocks: 4, Partition: interleaved})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range res.Color {
		if c != 0 {
			t.Fatalf("vertex %d label %d", v, c)
		}
	}
}

func TestBlockCCStatsShape(t *testing.T) {
	g := graph.Path(100)
	res, err := ConnectedComponents(g, Config{Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Workers != 4 {
		t.Fatalf("workers = %d", st.Workers)
	}
	if st.NumSupersteps() == 0 || st.TotalWork == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	// Boundary-only messages: a path in 4 contiguous blocks has 3
	// boundary edges; each label push crosses one.
	if st.TotalMessages > 20 {
		t.Fatalf("messages = %d; expected boundary-only traffic", st.TotalMessages)
	}
}

func TestBlockCountExceedingVertices(t *testing.T) {
	g := graph.Path(3)
	res, err := ConnectedComponents(g, Config{Blocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range res.Color {
		if c != 0 {
			t.Fatalf("vertex %d label %d", v, c)
		}
	}
}

func TestBlockCCWeightedLabelsIgnoreWeights(t *testing.T) {
	g := graph.RandomConnected(60, 150, 9)
	graph.RandomWeights(g, 10)
	res, err := ConnectedComponents(g, Config{Blocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Color {
		if c != 0 {
			t.Fatalf("connected graph split: %v", c)
		}
	}
}
