package blockcentric

import (
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// Packed-state block-centric connected components
// (Config.PackedState): the labels move from the engine's value array
// into a bit-packed store at ⌈log₂ n⌉ bits per vertex. Blocks run
// concurrently but each vertex is written only by its owning block, so
// the store's word-level CAS covers the sharing; the absorb/BFS/push
// structure is byte-for-byte the dense ccProgram's, so labels and
// aggregate costs are identical.

type ccPackedProgram struct {
	labels rt.StateStore
}

func newCCPackedProgram(n int) *ccPackedProgram {
	domain := uint64(n)
	if domain == 0 {
		domain = 1
	}
	return &ccPackedProgram{labels: rt.NewPackedInts(n, domain)}
}

func (p *ccPackedProgram) Init(g *graph.Graph, id VertexID) struct{} {
	p.labels.Set(int(id), uint64(id))
	return struct{}{}
}

func (p *ccPackedProgram) ComputeBlock(ctx *BlockContext[struct{}, VertexID], msgs map[VertexID][]VertexID) {
	// Absorb boundary updates.
	dirty := make([]VertexID, 0, len(msgs))
	for v, ms := range msgs {
		for _, m := range ms {
			ctx.Charge(1)
			if m < VertexID(p.labels.Get(int(v))) {
				p.labels.Set(int(v), uint64(m))
				dirty = append(dirty, v)
			}
		}
	}
	if ctx.Superstep() == 0 {
		dirty = append(dirty, ctx.Block()...)
	}
	// Local min-label BFS from every updated vertex, confined to the
	// block.
	changed := map[VertexID]bool{}
	queue := dirty
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		label := VertexID(p.labels.Get(int(v)))
		for _, u := range ctx.Out(v) {
			ctx.Charge(1)
			if !ctx.Local(u) {
				continue
			}
			if label < VertexID(p.labels.Get(int(u))) {
				p.labels.Set(int(u), uint64(label))
				queue = append(queue, u)
				changed[u] = true
			}
		}
		if ctx.Superstep() == 0 {
			changed[v] = true
		}
	}
	for _, v := range dirty {
		changed[v] = true
	}
	// Push labels over boundary edges for every changed vertex.
	for v := range changed {
		label := VertexID(p.labels.Get(int(v)))
		for _, u := range ctx.Out(v) {
			if !ctx.Local(u) {
				ctx.SendTo(u, label)
			}
		}
	}
	ctx.VoteToHalt()
}

// SnapshotState/RestoreState implement runtime.StateSnapshotter: the
// engine's checkpoints clone only the (empty) value array, so the
// label store rides along here. RestoreState(nil) is the pristine
// identity-label restart.
func (p *ccPackedProgram) SnapshotState() any { return p.labels.Clone() }

func (p *ccPackedProgram) RestoreState(s any) {
	if s == nil {
		for v := 0; v < p.labels.Len(); v++ {
			p.labels.Set(v, uint64(v))
		}
		return
	}
	p.labels.CopyFrom(s.(rt.StateStore))
}

// lbls extracts the final labeling.
func (p *ccPackedProgram) lbls() []VertexID {
	out := make([]VertexID, p.labels.Len())
	for v := range out {
		out[v] = VertexID(p.labels.Get(v))
	}
	return out
}
