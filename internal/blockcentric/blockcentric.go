// Package blockcentric implements a minimal subgraph-centric ("think
// like a graph", Giraph++ / NScale style) BSP engine: the graph is
// partitioned into blocks, and in each superstep a user program runs
// an arbitrary *sequential* computation over a whole block — seeing
// every block-local vertex and edge at once — then exchanges messages
// only across block boundaries. The paper's conclusion names this
// model as the main alternative when vertex-centric algorithms drown
// in supersteps or message volume; the package exists so that claim
// can be measured (see the block-centric connected components below
// and the comparison in internal/core).
package blockcentric

import (
	"context"
	"math"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	rt "vcgraph/internal/runtime"
)

// VertexID aliases graph.VertexID.
type VertexID = graph.VertexID

// Program is a block program: Init seeds per-vertex values;
// ComputeBlock runs once per block per superstep with all messages
// addressed to the block's vertices. The msgs map (and its slices) is
// owned by the engine and reused across supersteps; ComputeBlock must
// not retain it after returning.
type Program[V, M any] interface {
	Init(g *graph.Graph, id VertexID) V
	ComputeBlock(ctx *BlockContext[V, M], msgs map[VertexID][]M)
}

// Config controls a block-centric run.
type Config struct {
	// Blocks is the number of blocks (default 4). Blocks are also the
	// parallelism unit: each runs on its own goroutine per superstep.
	Blocks int
	// Partition assigns vertices to blocks (default pregel.PartitionRange,
	// which keeps blocks contiguous — the usual choice for this model).
	Partition pregel.Partitioner
	// MaxSupersteps caps the run (default 1 + 10·(n+64)).
	MaxSupersteps int
	// CheckpointEvery, when positive, snapshots the computation state
	// (values, halt flags, undelivered boundary messages) every k
	// supersteps for rollback recovery.
	CheckpointEvery int
	// FullSnapshotEvery, when > 1, stores only every Nth checkpoint as
	// a full snapshot; the generations between are dirty-set deltas
	// covering just the blocks that computed or received boundary
	// messages since the previous frame (runtime.DeltaPolicy). 0 or 1
	// keeps every checkpoint full.
	FullSnapshotEvery int
	// Faults, when non-nil, schedules deterministic fault injection
	// (runtime.FaultPlan): a block crash or a dropped boundary-message
	// batch rolls the run back to its newest readable snapshot; a
	// duplicated batch is detected by its sequence number and
	// discarded. FaultEvent.Worker/Lane address source/destination
	// blocks.
	Faults *rt.FaultPlan
	// Snapshot, when non-nil, is an already-pinned CSR generation the
	// engine must run against instead of pinning the graph's current
	// one (the adaptive plan layer re-prepares engines mid-job; see
	// graph.PinSnapshot). The default partitioner then sizes from the
	// snapshot; a custom Partition must be derived from the same
	// snapshot.
	Snapshot *graph.CSR
	// Replan, when non-nil, is consulted at every superstep barrier;
	// returning true aborts the run with runtime.ErrHandoff and the
	// values at the barrier (see runtime.DriverConfig.Replan).
	Replan func(step, pending int) bool
	// Mode selects block-local pull: messages whose destination lives in
	// the sending block bypass the shared outbox and the sequential
	// boundary exchange entirely — each block folds them into its own
	// inbox during the parallel phase, before the boundary push.
	// Sent/Recv then count boundary traffic only (the quantity the BSP h
	// term models), and such supersteps are marked Pulled.
	// DirectionPull enables it for every block; DirectionPush for none.
	// DirectionAuto (the zero value) decides per block from the
	// boundary/local edge ratio (runtime.BlockLocalFractions): a block
	// pulls only when at least half of its out-edges stay inside the
	// block, where rerouting actually removes wire traffic. Programs
	// that only ever send across boundaries (the CC and SSSP block
	// programs here) are unaffected either way.
	Mode rt.DirectionMode
	// Ctx, when non-nil, aborts the run at the next superstep barrier
	// once cancelled or past its deadline (see runtime.DriverConfig).
	Ctx context.Context
	// Pool, when non-nil, is a shared worker pool to lease block
	// goroutines from instead of building a private pool for the run.
	Pool *rt.Pool
	// Job, when non-nil, binds the run to a scheduler-admitted job:
	// Blocks is taken from the job's lease, the run executes under the
	// job's context, and superstep records stream to the handle.
	Job *rt.Job
	// PackedState selects the bit-packed label-store variant for the
	// algorithms that have one (ConnectedComponents). Results and
	// superstep counts are byte-identical to the dense programs.
	PackedState bool
}

// ErrSuperstepCap mirrors pregel.ErrSuperstepCap. It aliases
// bsp.ErrSuperstepCap, the sentinel shared by every engine, so
// errors.Is works across engines.
var ErrSuperstepCap = bsp.ErrSuperstepCap

// Result of a block-centric run.
type Result[V any] struct {
	Values []V
	Stats  *bsp.Stats // Workers = #blocks; messages are inter-block only
}

// Engine executes a block Program.
type Engine[V, M any] struct {
	g        *graph.Graph
	csr      *graph.CSR
	prog     Program[V, M]
	cfg      Config
	owner    []int32
	blocks   [][]VertexID
	values   []V
	pristine []V    // Init-time copy for checkpoint-free restarts (faults only)
	halted   []bool // per block

	inbox  []map[VertexID][]M // per block
	outbox [][]addr[M]        // per block (source)
	stats  *bsp.Stats
	driver *rt.Driver[*bcSnapshot[V, M]]

	// dirtyBlocks marks the blocks whose state diverged from the last
	// checkpoint frame: a block is dirty once it computes (values, halt
	// flag, inbox consumption) or receives a boundary message. The
	// parallel phase writes only each goroutine's own block; boundary
	// delivery marks destinations single-threaded. Snapshot,
	// SnapshotDelta, and Restore clear it.
	dirtyBlocks []bool

	// Block-local pull state. pullBlock says, per block, whether its
	// intra-block sends are rerouted (all true under DirectionPull, all
	// false under DirectionPush, decided per block from the local edge
	// fraction under DirectionAuto); anyPull caches whether any block
	// pulls (localOut is nil when none does). localOut buffers a pulling
	// block's sends to its own vertices during ComputeBlock; they are
	// folded into the block's inbox in the parallel phase, so localOut
	// is always empty at the barrier. inboxLocal counts how many of the
	// messages sitting in each inbox arrived locally, so Recv can be
	// reported boundary-only.
	pullBlock  []bool
	anyPull    bool
	localOut   [][]addr[M]
	inboxLocal []int64

	// scratch holds each block's span-decode buffers: ComputeBlock runs
	// one goroutine per block, and every program consumes one Out span
	// at a time, so one Scratch per block suffices. Nil-buffered (and
	// unused) on flat snapshots.
	scratch []*graph.Scratch
}

// bcSnapshot is one checkpoint generation: the barrier state entering
// a superstep (boundary messages already delivered to inboxes), plus
// any program-private state (runtime.StateSnapshotter). A delta frame
// (SnapshotDelta) sets delta and carries only the dirty blocks:
// blocks lists them ascending, blockVals holds each one's member
// values, and halted/inbox/inboxLocal are indexed by position in
// blocks instead of by block ID. Program-private state is always full.
type bcSnapshot[V, M any] struct {
	values     []V
	halted     []bool
	inbox      []map[VertexID][]M
	inboxLocal []int64
	progState  any

	delta     bool
	blocks    []int
	blockVals [][]V
}

type addr[M any] struct {
	dst VertexID
	m   M
}

// NewEngine builds the engine and materializes the block partition:
// the prepare phase. It pins the graph's CSR snapshot and seeds every
// vertex value with prog.Init — every read of the mutable graph
// happens here, so a serving layer can construct engines under a graph
// read lock and Run them lock-free while writers mutate and republish.
func NewEngine[V, M any](g *graph.Graph, prog Program[V, M], cfg Config) *Engine[V, M] {
	if cfg.Job != nil {
		cfg.Blocks = cfg.Job.Workers()
	}
	if cfg.Blocks <= 0 {
		cfg.Blocks = 4
	}
	csr := cfg.Snapshot
	if csr == nil {
		csr = g.Pin()
	} else {
		g.PinSnapshot(csr)
	}
	n := csr.N()
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 1 + 10*(n+64)
	}
	var owner []int32
	if cfg.Partition != nil {
		owner = cfg.Partition(g, cfg.Blocks)
	} else {
		// The default range partition sizes from the pinned snapshot, not
		// the live graph, which may have grown past it.
		owner = rt.PartitionRangeN(n, cfg.Blocks)
	}
	e := &Engine[V, M]{
		g:      g,
		csr:    csr,
		prog:   prog,
		cfg:    cfg,
		owner:  owner,
		values: make([]V, n),
		halted: make([]bool, cfg.Blocks),
		inbox:  make([]map[VertexID][]M, cfg.Blocks),
		outbox: make([][]addr[M], cfg.Blocks),
		stats:  &bsp.Stats{Workers: cfg.Blocks, N: n},
	}
	e.dirtyBlocks = make([]bool, cfg.Blocks)
	e.scratch = rt.GetScratches(cfg.Blocks)
	e.pullBlock = make([]bool, cfg.Blocks)
	switch cfg.Mode {
	case rt.DirectionPull:
		for b := range e.pullBlock {
			e.pullBlock[b] = true
		}
	case rt.DirectionPush:
		// all false
	default:
		// DirectionAuto: pull only where intra-block traffic dominates.
		for b, frac := range rt.BlockLocalFractions(csr, e.owner, cfg.Blocks) {
			e.pullBlock[b] = frac >= 0.5
		}
	}
	for _, p := range e.pullBlock {
		if p {
			e.anyPull = true
		}
	}
	if e.anyPull {
		e.localOut = make([][]addr[M], cfg.Blocks)
	}
	e.inboxLocal = make([]int64, cfg.Blocks)
	e.blocks = rt.GroupByOwner("blockcentric", e.owner, cfg.Blocks)
	for b := range e.inbox {
		e.inbox[b] = map[VertexID][]M{}
	}
	for v := 0; v < n; v++ {
		e.values[v] = prog.Init(g, VertexID(v))
	}
	if cfg.Faults != nil {
		// A rollback with no readable checkpoint restarts from scratch;
		// keep a pristine copy so the restart never re-reads the graph.
		e.pristine = rt.CloneValues[V](prog, e.values)
	}
	return e
}

// Run executes to quiescence: all blocks halted with no boundary
// messages in flight. The superstep lifecycle — one-goroutine-per-block
// dispatch, fault firing, checkpoint cadence, rollback, halting, cost
// accounting — is owned by the shared runtime.Driver; this engine
// contributes the block-compute and boundary-delivery policy.
func (e *Engine[V, M]) Run() (*Result[V], error) {
	defer e.g.Unpin(e.csr)
	defer rt.PutScratches(e.scratch)
	e.driver = rt.NewDriver[*bcSnapshot[V, M]](e, e.stats, rt.DriverConfig{
		Name:              "blockcentric",
		Workers:           e.cfg.Blocks,
		MaxSteps:          e.cfg.MaxSupersteps,
		CapErr:            ErrSuperstepCap,
		CheckpointEvery:   e.cfg.CheckpointEvery,
		FullSnapshotEvery: e.cfg.FullSnapshotEvery,
		Faults:            e.cfg.Faults,
		Ctx:               e.cfg.Ctx,
		Pool:              e.cfg.Pool,
		Job:               e.cfg.Job,
		Replan:            e.cfg.Replan,
	})
	_, err := e.driver.Run()
	e.driver = nil
	return &Result[V]{Values: e.values, Stats: e.stats}, err
}

// Quiescent implements runtime.Policy: every block halted with no
// boundary messages in flight.
func (e *Engine[V, M]) Quiescent(step, pending int) bool {
	if step == 0 || pending != 0 {
		return false
	}
	for _, h := range e.halted {
		if !h {
			return false
		}
	}
	return true
}

// Snapshot implements runtime.Policy: it deep-copies the barrier state
// (boundary messages already delivered to inboxes).
func (e *Engine[V, M]) Snapshot() *bcSnapshot[V, M] {
	nb := e.cfg.Blocks
	ck := &bcSnapshot[V, M]{
		values:     rt.CloneValues[V](e.prog, e.values),
		halted:     append([]bool(nil), e.halted...),
		inbox:      make([]map[VertexID][]M, nb),
		inboxLocal: append([]int64(nil), e.inboxLocal...),
		progState:  rt.SnapshotProgState(e.prog),
	}
	for b := 0; b < nb; b++ {
		ck.inbox[b] = make(map[VertexID][]M, len(e.inbox[b]))
		for v, ms := range e.inbox[b] {
			ck.inbox[b][v] = append([]M(nil), ms...)
		}
	}
	e.clearDirty()
	return ck
}

// SnapshotDelta implements runtime.DeltaPolicy: it deep-copies only
// the blocks dirtied since the previous frame — computed or mailed
// across a boundary — plus the full (small) program-private state, and
// resets the dirty tracking so the next frame patches this one.
func (e *Engine[V, M]) SnapshotDelta() *bcSnapshot[V, M] {
	var blocks []int
	for b, d := range e.dirtyBlocks {
		if d {
			blocks = append(blocks, b)
			e.dirtyBlocks[b] = false
		}
	}
	ck := &bcSnapshot[V, M]{
		delta:      true,
		blocks:     blocks,
		blockVals:  make([][]V, len(blocks)),
		halted:     make([]bool, len(blocks)),
		inbox:      make([]map[VertexID][]M, len(blocks)),
		inboxLocal: make([]int64, len(blocks)),
		progState:  rt.SnapshotProgState(e.prog),
	}
	for i, b := range blocks {
		ck.blockVals[i] = rt.CloneValuesAt(e.prog, e.values, e.blocks[b])
		ck.halted[i] = e.halted[b]
		ck.inboxLocal[i] = e.inboxLocal[b]
		ck.inbox[i] = make(map[VertexID][]M, len(e.inbox[b]))
		for v, ms := range e.inbox[b] {
			ck.inbox[i][v] = append([]M(nil), ms...)
		}
	}
	return ck
}

// RestoreDelta implements runtime.DeltaPolicy: it patches the dirty
// blocks of one delta frame onto the state already rebuilt from the
// chain so far. A block's members are exactly its writable vertices,
// so per-block value patches cover every write since the parent frame.
func (e *Engine[V, M]) RestoreDelta(ck *bcSnapshot[V, M]) {
	cloner, hasCloner := e.prog.(rt.ValueCloner[V])
	for i, b := range ck.blocks {
		for j, v := range e.blocks[b] {
			if hasCloner {
				e.values[v] = cloner.CloneValue(ck.blockVals[i][j])
			} else {
				e.values[v] = ck.blockVals[i][j]
			}
		}
		e.halted[b] = ck.halted[i]
		e.inboxLocal[b] = ck.inboxLocal[i]
		clear(e.inbox[b])
		for v, ms := range ck.inbox[i] {
			e.inbox[b][v] = append([]M(nil), ms...)
		}
	}
	rt.RestoreProgState(e.prog, ck.progState)
}

// FrameBytes implements runtime.SnapshotSizer: a deterministic
// resident-byte estimate of a frame (full or delta). Program-private
// state is opaque and excluded on both frame kinds alike.
func (e *Engine[V, M]) FrameBytes(ck *bcSnapshot[V, M]) int64 {
	szV := rt.SizeOf[V]()
	b := int64(len(ck.values))*szV +
		int64(len(ck.halted)) +
		int64(len(ck.inboxLocal))*8 +
		int64(len(ck.blocks))*8
	for _, vs := range ck.blockVals {
		b += int64(len(vs)) * szV
	}
	szM := rt.SizeOf[M]()
	for _, in := range ck.inbox {
		for _, ms := range in {
			b += rt.MapEntryBytes + int64(len(ms))*szM
		}
	}
	return b
}

func (e *Engine[V, M]) clearDirty() {
	for b := range e.dirtyBlocks {
		e.dirtyBlocks[b] = false
	}
}

// Restore implements runtime.Policy: it rolls the engine back to a
// checkpoint read by the driver's store (ok), or to a fresh start when
// no readable checkpoint exists (!ok).
func (e *Engine[V, M]) Restore(ck *bcSnapshot[V, M], step int, ok bool) {
	if !ok {
		// Restart from the pristine Init-time values: re-running Init
		// here would read the mutable graph mid-run.
		e.values = rt.CloneValues[V](e.prog, e.pristine)
		for b := range e.halted {
			e.halted[b] = false
			clear(e.inbox[b])
			e.outbox[b] = e.outbox[b][:0]
			e.inboxLocal[b] = 0
			if e.localOut != nil {
				e.localOut[b] = e.localOut[b][:0]
			}
		}
		rt.RestoreProgState(e.prog, nil)
		e.clearDirty()
		return
	}
	e.values = rt.CloneValues[V](e.prog, ck.values)
	rt.RestoreProgState(e.prog, ck.progState)
	copy(e.halted, ck.halted)
	copy(e.inboxLocal, ck.inboxLocal)
	for b := range e.inbox {
		clear(e.inbox[b])
		for v, ms := range ck.inbox[b] {
			e.inbox[b][v] = append([]M(nil), ms...)
		}
		e.outbox[b] = e.outbox[b][:0]
		if e.localOut != nil {
			e.localOut[b] = e.localOut[b][:0]
		}
	}
	e.clearDirty()
}

// Superstep implements runtime.Policy: compute every awake block in
// parallel (one persistent goroutine per block), then deliver boundary
// messages sequentially — where a src->dst batch can be lost in transit
// or redelivered.
func (e *Engine[V, M]) Superstep(superstep int, ss *bsp.SuperstepStats) (int, error) {
	nb := e.cfg.Blocks
	ss.Pulled = e.anyPull
	// Frontier: members of the blocks that will wake this superstep —
	// the block-granular activity signal the adaptive planner reads.
	for b := 0; b < nb; b++ {
		if !(e.halted[b] && len(e.inbox[b]) == 0 && superstep > 0) {
			ss.Frontier += int64(len(e.blocks[b]))
		}
	}
	e.driver.Lease().Run(func(b int) {
		msgs := e.inbox[b]
		if e.halted[b] && len(msgs) == 0 && superstep > 0 {
			return
		}
		// Computing mutates the block's values, halt flag, and inbox;
		// each goroutine writes only its own flag, so this is race-free.
		e.dirtyBlocks[b] = true
		e.halted[b] = false
		ss.Active[b] = int64(len(e.blocks[b]))
		for _, ms := range msgs {
			ss.Recv[b] += int64(len(ms))
		}
		// Locally-pulled messages never crossed a block boundary; Recv
		// reports boundary traffic only (the h term the cost model
		// charges). inboxLocal is zero when pull is off.
		ss.Recv[b] -= e.inboxLocal[b]
		e.inboxLocal[b] = 0
		ctx := &BlockContext[V, M]{engine: e, block: b, superstep: superstep}
		e.prog.ComputeBlock(ctx, msgs)
		// Reuse the inbox map's buckets across supersteps instead of
		// allocating a fresh map (ComputeBlock must not retain msgs).
		clear(msgs)
		if ctx.halt {
			e.halted[b] = true
		}
		ss.Work[b] = ctx.work + 1
		ss.Sent[b] = ctx.sent
		if e.pullBlock[b] {
			// Block-local pull: fold this block's sends to itself into
			// its own (just-cleared) inbox right here in the parallel
			// phase — no shared outbox, no boundary exchange, no
			// in-transit window for fault injection. Each block touches
			// only inbox[b], so the concurrent folds are race-free.
			for _, am := range e.localOut[b] {
				msgs[am.dst] = append(msgs[am.dst], am.m)
			}
			e.inboxLocal[b] = int64(len(e.localOut[b]))
			e.localOut[b] = e.localOut[b][:0]
		}
	})

	// Deliver boundary messages. Locally-pulled deliveries still count
	// toward pending — a halted block with fresh local mail must wake,
	// and Quiescent must not declare the run drained while any inbox
	// holds messages.
	inj := e.driver.Injector()
	pending := 0
	for b := 0; b < nb; b++ {
		pending += int(e.inboxLocal[b])
	}
	for src := 0; src < nb; src++ {
		var drop []bool
		if inj != nil {
			for dst := 0; dst < nb; dst++ {
				switch inj.LaneFault(superstep, src, dst) {
				case rt.FaultDropLane:
					// This src->dst batch is lost in transit; its
					// messages cannot be reconstructed, so the run
					// rolls back at the next barrier.
					if drop == nil {
						drop = make([]bool, nb)
					}
					drop[dst] = true
					e.driver.LoseBatch()
				case rt.FaultDupLane:
					// The replayed batch carries a stale sequence
					// number and is discarded; delivery stays
					// exactly-once (counted by the injector).
				}
			}
		}
		for _, am := range e.outbox[src] {
			dst := int(e.owner[am.dst])
			if drop != nil && drop[dst] {
				continue
			}
			e.inbox[dst][am.dst] = append(e.inbox[dst][am.dst], am.m)
			e.dirtyBlocks[dst] = true
			pending++
		}
		e.outbox[src] = e.outbox[src][:0]
	}
	return pending, nil
}

// BlockContext is the per-block view handed to ComputeBlock.
type BlockContext[V, M any] struct {
	engine    *Engine[V, M]
	block     int
	superstep int
	sent      int64
	work      int64
	halt      bool
}

// Superstep returns the current superstep (0-based).
func (c *BlockContext[V, M]) Superstep() int { return c.superstep }

// Block returns the IDs of the block's vertices.
func (c *BlockContext[V, M]) Block() []VertexID { return c.engine.blocks[c.block] }

// Value returns a pointer to any vertex's value. Writing a remote
// vertex's value is forbidden (and racy); the engine only hands each
// block its own vertices via Block(), and programs must message remote
// vertices instead.
func (c *BlockContext[V, M]) Value(v VertexID) *V { return &c.engine.values[v] }

// Local reports whether v belongs to this block.
func (c *BlockContext[V, M]) Local(v VertexID) bool { return int(c.engine.owner[v]) == c.block }

// OutEdges returns v's adjacency as []Edge, materialized fresh from
// the pinned CSR snapshot (never the live graph). Block programs'
// sequential sweeps should prefer the CSR spans below, which avoid the
// per-call allocation and the 32-byte Edge layout.
func (c *BlockContext[V, M]) OutEdges(v VertexID) []graph.Edge {
	csr := c.engine.csr
	d := csr.OutDegree(v)
	if d == 0 {
		return nil
	}
	return csr.AppendOutEdges(make([]graph.Edge, 0, d), v)
}

// Out returns v's out-neighbor span from the CSR snapshot. The slice
// aliases the snapshot (or, on a packed snapshot, the block's decode
// buffer — the next Out call in this block overwrites it) and must not
// be modified.
func (c *BlockContext[V, M]) Out(v VertexID) []VertexID {
	return c.engine.csr.OutSpan(v, c.engine.scratch[c.block])
}

// OutWeights returns v's out-edge weight span aligned with Out(v), or
// nil when the graph is unweighted.
func (c *BlockContext[V, M]) OutWeights(v VertexID) []float64 { return c.engine.csr.OutWeights(v) }

// OutDegree returns v's out-degree.
func (c *BlockContext[V, M]) OutDegree(v VertexID) int { return c.engine.csr.OutDegree(v) }

// ForEachOut calls f for every out-edge of v in adjacency order,
// without allocating.
func (c *BlockContext[V, M]) ForEachOut(v VertexID, f func(dst VertexID, w float64)) {
	c.engine.csr.ForEachOut(v, f)
}

// SendTo sends m to a (typically remote) vertex for the next superstep.
// When block-local pull is enabled for the sending block (see
// Config.Mode) a message to a vertex of that block is buffered locally
// and folded into the block's own inbox in the parallel phase; it is
// not counted in Sent, which then reports boundary traffic only. Within
// one destination
// vertex all same-source-block messages are either all local or all
// boundary, so each slice's internal order matches push mode — only the
// local-before-boundary interleaving differs (visible solely to
// order-sensitive float folds such as PageRank's sum, which stays
// deterministic and equal up to rounding).
func (c *BlockContext[V, M]) SendTo(dst VertexID, m M) {
	e := c.engine
	if e.pullBlock[c.block] && int(e.owner[dst]) == c.block {
		e.localOut[c.block] = append(e.localOut[c.block], addr[M]{dst: dst, m: m})
		return
	}
	c.sent++
	e.outbox[c.block] = append(e.outbox[c.block], addr[M]{dst: dst, m: m})
}

// Charge records units of sequential work done inside the block.
func (c *BlockContext[V, M]) Charge(units int64) { c.work += units }

// VoteToHalt deactivates the block; boundary messages reactivate it.
func (c *BlockContext[V, M]) VoteToHalt() { c.halt = true }

// --- Block-centric connected components ---

// ccProgram: each block labels its internal structure with full
// sequential BFS sweeps per superstep (minimum label within each
// block-local region), then pushes changed labels over boundary edges
// only. On a path split into B blocks this takes Θ(B) supersteps,
// versus Θ(n) for vertex-centric Hash-Min.
type ccProgram struct{}

func (ccProgram) Init(g *graph.Graph, id VertexID) VertexID { return id }

func (ccProgram) ComputeBlock(ctx *BlockContext[VertexID, VertexID], msgs map[VertexID][]VertexID) {
	// Absorb boundary updates.
	dirty := make([]VertexID, 0, len(msgs))
	for v, ms := range msgs {
		for _, m := range ms {
			ctx.Charge(1)
			if m < *ctx.Value(v) {
				*ctx.Value(v) = m
				dirty = append(dirty, v)
			}
		}
	}
	if ctx.Superstep() == 0 {
		dirty = append(dirty, ctx.Block()...)
	}
	// Local min-label BFS from every updated vertex, confined to the
	// block.
	changed := map[VertexID]bool{}
	queue := dirty
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		label := *ctx.Value(v)
		for _, u := range ctx.Out(v) {
			ctx.Charge(1)
			if !ctx.Local(u) {
				continue
			}
			if label < *ctx.Value(u) {
				*ctx.Value(u) = label
				queue = append(queue, u)
				changed[u] = true
			}
		}
		if ctx.Superstep() == 0 {
			changed[v] = true
		}
	}
	for _, v := range dirty {
		changed[v] = true
	}
	// Push labels over boundary edges for every changed vertex.
	for v := range changed {
		label := *ctx.Value(v)
		for _, u := range ctx.Out(v) {
			if !ctx.Local(u) {
				ctx.SendTo(u, label)
			}
		}
	}
	ctx.VoteToHalt()
}

// CCResult mirrors vc.CCResult for the block-centric algorithm.
type CCResult struct {
	Color []VertexID
	Stats *bsp.Stats
}

// ConnectedComponents runs block-centric min-label connected
// components.
func ConnectedComponents(g *graph.Graph, cfg Config) (*CCResult, error) {
	return PrepareConnectedComponents(g, cfg)()
}

// PrepareConnectedComponents is the two-phase form: graph reads happen
// now (NewEngine), the returned closure runs lock-free on the pinned
// snapshot.
func PrepareConnectedComponents(g *graph.Graph, cfg Config) func() (*CCResult, error) {
	if cfg.PackedState {
		prog := newCCPackedProgram(g.N())
		eng := NewEngine[struct{}, VertexID](g, prog, cfg)
		return func() (*CCResult, error) {
			res, err := eng.Run()
			if err != nil {
				return nil, err
			}
			return &CCResult{Color: prog.lbls(), Stats: res.Stats}, nil
		}
	}
	eng := NewEngine[VertexID, VertexID](g, ccProgram{}, cfg)
	return func() (*CCResult, error) {
		res, err := eng.Run()
		if err != nil {
			return nil, err
		}
		return &CCResult{Color: res.Values, Stats: res.Stats}, nil
	}
}

// --- Block-centric single-source shortest paths ---

// ssspProgram: each block runs a sequential label-correcting
// relaxation to a fixpoint inside the block per superstep, then offers
// dist+w over boundary edges for vertices whose distance improved.
// Min-relaxation is order-independent, so values are byte-identical
// across schedules and fault plans.
type ssspProgram struct{ src VertexID }

func (p ssspProgram) Init(g *graph.Graph, id VertexID) float64 {
	if id == p.src {
		return 0
	}
	return math.Inf(1)
}

func (p ssspProgram) ComputeBlock(ctx *BlockContext[float64, float64], msgs map[VertexID][]float64) {
	// Absorb boundary offers.
	changed := map[VertexID]bool{}
	dirty := make([]VertexID, 0, len(msgs))
	for v, ms := range msgs {
		for _, d := range ms {
			ctx.Charge(1)
			if d < *ctx.Value(v) {
				*ctx.Value(v) = d
				changed[v] = true
			}
		}
		if changed[v] {
			dirty = append(dirty, v)
		}
	}
	if ctx.Superstep() == 0 {
		// Seed: only the source has a finite distance to propagate.
		for _, v := range ctx.Block() {
			if v == p.src {
				dirty = append(dirty, v)
				changed[v] = true
			}
		}
	}
	// Relax to a block-local fixpoint.
	queue := dirty
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		d := *ctx.Value(v)
		dsts := ctx.Out(v)
		ws := ctx.OutWeights(v)
		for i, u := range dsts {
			ctx.Charge(1)
			if !ctx.Local(u) {
				continue
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			if nd := d + w; nd < *ctx.Value(u) {
				*ctx.Value(u) = nd
				changed[u] = true
				queue = append(queue, u)
			}
		}
	}
	// Offer improved distances over boundary edges.
	for v := range changed {
		d := *ctx.Value(v)
		dsts := ctx.Out(v)
		ws := ctx.OutWeights(v)
		for i, u := range dsts {
			if !ctx.Local(u) {
				w := 1.0
				if ws != nil {
					w = ws[i]
				}
				ctx.SendTo(u, d+w)
			}
		}
	}
	ctx.VoteToHalt()
}

// SSSPResult carries block-centric shortest-path distances.
type SSSPResult struct {
	Dist  []float64
	Stats *bsp.Stats
}

// SSSP runs block-centric single-source shortest paths; unreachable
// vertices keep +Inf, matching seq.Dijkstra.
func SSSP(g *graph.Graph, src VertexID, cfg Config) (*SSSPResult, error) {
	return PrepareSSSP(g, src, cfg)()
}

// PrepareSSSP is the two-phase form of SSSP (see
// PrepareConnectedComponents).
func PrepareSSSP(g *graph.Graph, src VertexID, cfg Config) func() (*SSSPResult, error) {
	eng := NewEngine[float64, float64](g, ssspProgram{src: src}, cfg)
	return func() (*SSSPResult, error) {
		res, err := eng.Run()
		if err != nil {
			return nil, err
		}
		return &SSSPResult{Dist: res.Values, Stats: res.Stats}, nil
	}
}

// --- Block-centric PageRank ---

// prProgram runs K iterations of power iteration, Pregel-style over
// the block abstraction: every superstep each block folds the rank
// contributions addressed to its vertices and sends the next round of
// shares (SendTo routes intra-block messages through the same inbox,
// keeping the summation order deterministic: blocks iterate their
// vertices in ascending order and inboxes accumulate in source-block
// order). Matches seq.PageRank element-wise, including the dangling
// leak.
type prProgram struct {
	n     int
	k     int
	alpha float64
}

func (p prProgram) Init(g *graph.Graph, id VertexID) float64 { return 1 / float64(p.n) }

func (p prProgram) ComputeBlock(ctx *BlockContext[float64, float64], msgs map[VertexID][]float64) {
	s := ctx.Superstep()
	base := (1 - p.alpha) / float64(p.n)
	for _, v := range ctx.Block() {
		if s > 0 {
			r := base
			for _, m := range msgs[v] {
				ctx.Charge(1)
				r += m
			}
			*ctx.Value(v) = r
		}
		if s < p.k {
			out := ctx.Out(v)
			if len(out) == 0 {
				continue // dangling: rank leaks to the teleport term
			}
			share := p.alpha * *ctx.Value(v) / float64(len(out))
			for _, u := range out {
				ctx.Charge(1)
				ctx.SendTo(u, share)
			}
		}
	}
	if s >= p.k {
		ctx.VoteToHalt()
	}
}

// PRResult carries block-centric PageRank scores.
type PRResult struct {
	Ranks []float64
	Stats *bsp.Stats
}

// PageRank runs K iterations of block-centric power iteration with
// teleport probability (1-alpha), comparable element-wise to
// seq.PageRank.
func PageRank(g *graph.Graph, alpha float64, k int, cfg Config) (*PRResult, error) {
	return PreparePageRank(g, alpha, k, cfg)()
}

// PreparePageRank is the two-phase form of PageRank (see
// PrepareConnectedComponents).
func PreparePageRank(g *graph.Graph, alpha float64, k int, cfg Config) func() (*PRResult, error) {
	eng := NewEngine[float64, float64](g, prProgram{n: g.N(), k: k, alpha: alpha}, cfg)
	return func() (*PRResult, error) {
		res, err := eng.Run()
		if err != nil {
			return nil, err
		}
		return &PRResult{Ranks: res.Values, Stats: res.Stats}, nil
	}
}

// --- Seeded programs for the adaptive plan layer ---
//
// Live engine handoff (internal/plan) exports vertex values at a
// superstep barrier and resumes them here. Warm restarts re-announce
// state instead of replaying lost inboxes: min-fold algorithms
// re-offer every finite label/distance at superstep 0, which dominates
// any in-flight message from the previous engine, and fixed-iteration
// PageRank re-sends shares for the current iterate.

type seededCC struct {
	ccProgram
	seed []VertexID
}

func (p seededCC) Init(g *graph.Graph, id VertexID) VertexID {
	if p.seed != nil {
		return p.seed[id]
	}
	return id
}

// CCProgramSeeded warm-starts block-centric min-label components from
// exported labels (nil seed is the identity cold start). The native
// superstep-0 whole-block sweep already re-broadcasts every label over
// boundary edges, so only Init differs.
func CCProgramSeeded(seed []VertexID) Program[VertexID, VertexID] {
	return seededCC{seed: seed}
}

// ssspResume is ssspProgram with a generalized superstep 0: every
// block vertex holding a finite tentative distance seeds the local
// relaxation and re-offers over boundary edges. On a cold start only
// the source is finite, so this reduces exactly to the native
// source-only seeding; on a warm restart it re-announces the whole
// reached frontier.
type ssspResume struct {
	src  VertexID
	seed []float64
}

func (p ssspResume) Init(g *graph.Graph, id VertexID) float64 {
	if p.seed != nil {
		return p.seed[id]
	}
	if id == p.src {
		return 0
	}
	return math.Inf(1)
}

func (p ssspResume) ComputeBlock(ctx *BlockContext[float64, float64], msgs map[VertexID][]float64) {
	changed := map[VertexID]bool{}
	dirty := make([]VertexID, 0, len(msgs))
	for v, ms := range msgs {
		for _, d := range ms {
			ctx.Charge(1)
			if d < *ctx.Value(v) {
				*ctx.Value(v) = d
				changed[v] = true
			}
		}
		if changed[v] {
			dirty = append(dirty, v)
		}
	}
	if ctx.Superstep() == 0 {
		// Warm start: every finite distance is live again.
		for _, v := range ctx.Block() {
			if !math.IsInf(*ctx.Value(v), 1) {
				dirty = append(dirty, v)
				changed[v] = true
			}
		}
	}
	queue := dirty
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		d := *ctx.Value(v)
		dsts := ctx.Out(v)
		ws := ctx.OutWeights(v)
		for i, u := range dsts {
			ctx.Charge(1)
			if !ctx.Local(u) {
				continue
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			if nd := d + w; nd < *ctx.Value(u) {
				*ctx.Value(u) = nd
				changed[u] = true
				queue = append(queue, u)
			}
		}
	}
	for v := range changed {
		d := *ctx.Value(v)
		dsts := ctx.Out(v)
		ws := ctx.OutWeights(v)
		for i, u := range dsts {
			if !ctx.Local(u) {
				w := 1.0
				if ws != nil {
					w = ws[i]
				}
				ctx.SendTo(u, d+w)
			}
		}
	}
	ctx.VoteToHalt()
}

// SSSPProgramSeeded warm-starts block-centric SSSP from exported
// tentative distances (+Inf for unreached vertices; nil seed is the
// source-only cold start).
func SSSPProgramSeeded(src VertexID, seed []float64) Program[float64, float64] {
	return ssspResume{src: src, seed: seed}
}

// prCanonical is fixed-iteration PageRank with the Pregel variant's
// exact arithmetic: fold rank = (1-alpha)/n + alpha*sum(msgs), send
// share = rank/outdeg (the alpha factor applied at the receiver, not
// the sender as native prProgram does). Under push mode with a range
// partition the inbox fold order is ascending source ID — the same
// order as single-worker Pregel's combiner — so segments are
// bit-compatible across the two engines. Runs k folds from the seed
// ranks (nil means uniform 1/n).
type prCanonical struct {
	n     int
	k     int
	alpha float64
	seed  []float64
}

func (p prCanonical) Init(g *graph.Graph, id VertexID) float64 {
	if p.seed != nil {
		return p.seed[id]
	}
	return 1 / float64(p.n)
}

func (p prCanonical) ComputeBlock(ctx *BlockContext[float64, float64], msgs map[VertexID][]float64) {
	s := ctx.Superstep()
	for _, v := range ctx.Block() {
		if s > 0 {
			var sum float64
			for _, m := range msgs[v] {
				ctx.Charge(1)
				sum += m
			}
			*ctx.Value(v) = (1-p.alpha)/float64(p.n) + p.alpha*sum
		}
		if s < p.k {
			out := ctx.Out(v)
			if len(out) == 0 {
				continue // dangling: rank leaks to the teleport term
			}
			share := *ctx.Value(v) / float64(len(out))
			for _, u := range out {
				ctx.Charge(1)
				ctx.SendTo(u, share)
			}
		}
	}
	if s >= p.k {
		ctx.VoteToHalt()
	}
}

// PageRankProgramCanonical builds the Pregel-arithmetic fixed-K
// PageRank program for engine handoff. Callers must pin
// DirectionPush: per-block pull would reroute intra-block shares
// around the inbox and change the fold order.
func PageRankProgramCanonical(n, k int, alpha float64, seed []float64) Program[float64, float64] {
	return prCanonical{n: n, k: k, alpha: alpha, seed: seed}
}
