// Package blockcentric implements a minimal subgraph-centric ("think
// like a graph", Giraph++ / NScale style) BSP engine: the graph is
// partitioned into blocks, and in each superstep a user program runs
// an arbitrary *sequential* computation over a whole block — seeing
// every block-local vertex and edge at once — then exchanges messages
// only across block boundaries. The paper's conclusion names this
// model as the main alternative when vertex-centric algorithms drown
// in supersteps or message volume; the package exists so that claim
// can be measured (see the block-centric connected components below
// and the comparison in internal/core).
package blockcentric

import (
	"errors"
	"fmt"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	rt "vcgraph/internal/runtime"
)

// VertexID aliases graph.VertexID.
type VertexID = graph.VertexID

// Program is a block program: Init seeds per-vertex values;
// ComputeBlock runs once per block per superstep with all messages
// addressed to the block's vertices. The msgs map (and its slices) is
// owned by the engine and reused across supersteps; ComputeBlock must
// not retain it after returning.
type Program[V, M any] interface {
	Init(g *graph.Graph, id VertexID) V
	ComputeBlock(ctx *BlockContext[V, M], msgs map[VertexID][]M)
}

// Config controls a block-centric run.
type Config struct {
	// Blocks is the number of blocks (default 4). Blocks are also the
	// parallelism unit: each runs on its own goroutine per superstep.
	Blocks int
	// Partition assigns vertices to blocks (default pregel.PartitionRange,
	// which keeps blocks contiguous — the usual choice for this model).
	Partition pregel.Partitioner
	// MaxSupersteps caps the run (default 1 + 10·(n+64)).
	MaxSupersteps int
}

// ErrSuperstepCap mirrors pregel.ErrSuperstepCap.
var ErrSuperstepCap = errors.New("blockcentric: superstep cap reached")

// Result of a block-centric run.
type Result[V any] struct {
	Values []V
	Stats  *bsp.Stats // Workers = #blocks; messages are inter-block only
}

// Engine executes a block Program.
type Engine[V, M any] struct {
	g      *graph.Graph
	prog   Program[V, M]
	cfg    Config
	owner  []int32
	blocks [][]VertexID
	values []V
	halted []bool // per block

	inbox   []map[VertexID][]M // per block
	outbox  [][]addr[M]        // per block (source)
	stats   *bsp.Stats
	pool    *rt.Pool
	current int
}

type addr[M any] struct {
	dst VertexID
	m   M
}

// NewEngine builds the engine and materializes the block partition.
func NewEngine[V, M any](g *graph.Graph, prog Program[V, M], cfg Config) *Engine[V, M] {
	if cfg.Blocks <= 0 {
		cfg.Blocks = 4
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 1 + 10*(g.N()+64)
	}
	part := cfg.Partition
	if part == nil {
		part = pregel.PartitionRange
	}
	e := &Engine[V, M]{
		g:      g,
		prog:   prog,
		cfg:    cfg,
		owner:  part(g, cfg.Blocks),
		blocks: make([][]VertexID, cfg.Blocks),
		values: make([]V, g.N()),
		halted: make([]bool, cfg.Blocks),
		inbox:  make([]map[VertexID][]M, cfg.Blocks),
		outbox: make([][]addr[M], cfg.Blocks),
		stats:  &bsp.Stats{Workers: cfg.Blocks, N: g.N()},
	}
	for v := 0; v < g.N(); v++ {
		b := e.owner[v]
		if b < 0 || int(b) >= cfg.Blocks {
			panic("blockcentric: partitioner assigned vertex out of range")
		}
		e.blocks[b] = append(e.blocks[b], VertexID(v))
	}
	for b := range e.inbox {
		e.inbox[b] = map[VertexID][]M{}
	}
	return e
}

// Run executes to quiescence: all blocks halted with no boundary
// messages in flight.
func (e *Engine[V, M]) Run() (*Result[V], error) {
	for v := 0; v < e.g.N(); v++ {
		e.values[v] = e.prog.Init(e.g, VertexID(v))
	}
	// One block per persistent worker; goroutines park between
	// supersteps instead of being respawned each barrier.
	e.pool = rt.NewPool(e.cfg.Blocks)
	defer func() {
		e.pool.Close()
		e.pool = nil
	}()
	pending := 0
	superstep := 0
	for ; ; superstep++ {
		if superstep >= e.cfg.MaxSupersteps {
			return &Result[V]{Values: e.values, Stats: e.stats},
				fmt.Errorf("%w (cap %d)", ErrSuperstepCap, e.cfg.MaxSupersteps)
		}
		if superstep > 0 && pending == 0 {
			all := true
			for _, h := range e.halted {
				if !h {
					all = false
					break
				}
			}
			if all {
				break
			}
		}
		pending = e.runSuperstep(superstep)
	}
	return &Result[V]{Values: e.values, Stats: e.stats}, nil
}

func (e *Engine[V, M]) runSuperstep(superstep int) int {
	nb := e.cfg.Blocks
	ss := bsp.SuperstepStats{
		Work: make([]int64, nb),
		Sent: make([]int64, nb),
		Recv: make([]int64, nb),
	}
	e.pool.Run(func(b int) {
		msgs := e.inbox[b]
		if e.halted[b] && len(msgs) == 0 && superstep > 0 {
			return
		}
		e.halted[b] = false
		for _, ms := range msgs {
			ss.Recv[b] += int64(len(ms))
		}
		ctx := &BlockContext[V, M]{engine: e, block: b, superstep: superstep}
		e.prog.ComputeBlock(ctx, msgs)
		// Reuse the inbox map's buckets across supersteps instead of
		// allocating a fresh map (ComputeBlock must not retain msgs).
		clear(msgs)
		if ctx.halt {
			e.halted[b] = true
		}
		ss.Work[b] = ctx.work + 1
		ss.Sent[b] = ctx.sent
	})

	// Deliver boundary messages.
	pending := 0
	for src := 0; src < nb; src++ {
		for _, am := range e.outbox[src] {
			dst := int(e.owner[am.dst])
			e.inbox[dst][am.dst] = append(e.inbox[dst][am.dst], am.m)
			pending++
		}
		e.stats.TotalMessages += ss.Sent[src]
		e.stats.TotalWork += ss.Work[src]
		e.outbox[src] = e.outbox[src][:0]
	}
	e.stats.Supersteps = append(e.stats.Supersteps, ss)
	return pending
}

// BlockContext is the per-block view handed to ComputeBlock.
type BlockContext[V, M any] struct {
	engine    *Engine[V, M]
	block     int
	superstep int
	sent      int64
	work      int64
	halt      bool
}

// Superstep returns the current superstep (0-based).
func (c *BlockContext[V, M]) Superstep() int { return c.superstep }

// Block returns the IDs of the block's vertices.
func (c *BlockContext[V, M]) Block() []VertexID { return c.engine.blocks[c.block] }

// Value returns a pointer to any vertex's value. Writing a remote
// vertex's value is forbidden (and racy); the engine only hands each
// block its own vertices via Block(), and programs must message remote
// vertices instead.
func (c *BlockContext[V, M]) Value(v VertexID) *V { return &c.engine.values[v] }

// Local reports whether v belongs to this block.
func (c *BlockContext[V, M]) Local(v VertexID) bool { return int(c.engine.owner[v]) == c.block }

// OutEdges returns v's adjacency in the input graph.
func (c *BlockContext[V, M]) OutEdges(v VertexID) []graph.Edge { return c.engine.g.Out[v] }

// SendTo sends m to a (typically remote) vertex for the next superstep.
func (c *BlockContext[V, M]) SendTo(dst VertexID, m M) {
	c.sent++
	c.engine.outbox[c.block] = append(c.engine.outbox[c.block], addr[M]{dst: dst, m: m})
}

// Charge records units of sequential work done inside the block.
func (c *BlockContext[V, M]) Charge(units int64) { c.work += units }

// VoteToHalt deactivates the block; boundary messages reactivate it.
func (c *BlockContext[V, M]) VoteToHalt() { c.halt = true }

// --- Block-centric connected components ---

// ccProgram: each block labels its internal structure with full
// sequential BFS sweeps per superstep (minimum label within each
// block-local region), then pushes changed labels over boundary edges
// only. On a path split into B blocks this takes Θ(B) supersteps,
// versus Θ(n) for vertex-centric Hash-Min.
type ccProgram struct{}

func (ccProgram) Init(g *graph.Graph, id VertexID) VertexID { return id }

func (ccProgram) ComputeBlock(ctx *BlockContext[VertexID, VertexID], msgs map[VertexID][]VertexID) {
	// Absorb boundary updates.
	dirty := make([]VertexID, 0, len(msgs))
	for v, ms := range msgs {
		for _, m := range ms {
			ctx.Charge(1)
			if m < *ctx.Value(v) {
				*ctx.Value(v) = m
				dirty = append(dirty, v)
			}
		}
	}
	if ctx.Superstep() == 0 {
		dirty = append(dirty, ctx.Block()...)
	}
	// Local min-label BFS from every updated vertex, confined to the
	// block.
	changed := map[VertexID]bool{}
	queue := dirty
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		label := *ctx.Value(v)
		for _, e := range ctx.OutEdges(v) {
			ctx.Charge(1)
			if !ctx.Local(e.Dst) {
				continue
			}
			if label < *ctx.Value(e.Dst) {
				*ctx.Value(e.Dst) = label
				queue = append(queue, e.Dst)
				changed[e.Dst] = true
			}
		}
		if ctx.Superstep() == 0 {
			changed[v] = true
		}
	}
	for _, v := range dirty {
		changed[v] = true
	}
	// Push labels over boundary edges for every changed vertex.
	for v := range changed {
		label := *ctx.Value(v)
		for _, e := range ctx.OutEdges(v) {
			if !ctx.Local(e.Dst) {
				ctx.SendTo(e.Dst, label)
			}
		}
	}
	ctx.VoteToHalt()
}

// CCResult mirrors vc.CCResult for the block-centric algorithm.
type CCResult struct {
	Color []VertexID
	Stats *bsp.Stats
}

// ConnectedComponents runs block-centric min-label connected
// components.
func ConnectedComponents(g *graph.Graph, cfg Config) (*CCResult, error) {
	eng := NewEngine[VertexID, VertexID](g, ccProgram{}, cfg)
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	return &CCResult{Color: res.Values, Stats: res.Stats}, nil
}
