package service

import (
	"fmt"
	"sort"
	"strings"

	"vcgraph/internal/async"
	"vcgraph/internal/blockcentric"
	"vcgraph/internal/bsp"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/plan"
	rt "vcgraph/internal/runtime"
	"vcgraph/internal/vc"
)

// runResult is the normalized output of any algorithm × engine pair:
// one float64 per vertex (ranks, distances, component labels, or
// coreness — labels and coreness are integers, exact in a float64),
// the job-level stats summary, and a one-line human verdict. epoch is
// the graph's mutation epoch at prepare time, so a later incremental
// job can resume from this result; inc carries the richer incremental
// state when the job ran on the inc engine.
type runResult struct {
	values  []float64
	summary bsp.Summary
	verdict string
	epoch   int64
	inc     *incStateBox
	// auto carries the plan layer's decision log and sampled graph
	// statistics when the job ran on the "auto" engine.
	auto *vc.AutoResult
}

// incStateBox holds whichever incremental state the job produced.
type incStateBox struct {
	cc   *vc.IncCCState
	sssp *vc.IncSSSPState
	pr   *vc.IncPRState
}

// cold reports whether the run recomputed from scratch (no usable
// prior state — first run, mismatched resume, or truncated log).
func (b *incStateBox) cold() bool {
	switch {
	case b.cc != nil:
		return b.cc.Cold
	case b.sssp != nil:
		return b.sssp.Cold
	case b.pr != nil:
		return b.pr.Cold
	}
	return true
}

// incPrior is the warm-start state resolved from a resume target.
type incPrior struct {
	cc   *vc.IncCCState
	sssp *vc.IncSSSPState
	pr   *vc.IncPRState
}

// priorFromResult reconstructs warm-start state from a prior job's
// result. An incremental prior hands over its state directly; a plain
// prior seeds CC/SSSP from its converged values and prepare-time epoch
// (their fixpoints are engine-independent — SSSP modulo the
// unreachable sentinel, normalized here).
func priorFromResult(spec JobSpec, res *runResult) *incPrior {
	if res.inc != nil {
		return &incPrior{cc: res.inc.cc, sssp: res.inc.sssp, pr: res.inc.pr}
	}
	switch spec.Algo {
	case "cc":
		labels := make([]graph.VertexID, len(res.values))
		for i, v := range res.values {
			labels[i] = graph.VertexID(v)
		}
		return &incPrior{cc: &vc.IncCCState{Epoch: res.epoch, Labels: labels}}
	case "sssp":
		dist := make([]float64, len(res.values))
		for i, d := range res.values {
			if d >= 1e300 {
				d = vc.Unreachable
			}
			dist[i] = d
		}
		return &incPrior{sssp: &vc.IncSSSPState{Epoch: res.epoch, Src: graph.VertexID(spec.Src), Dist: dist}}
	}
	return nil
}

// engines is the serving matrix: every algorithm runs on pregel;
// pagerank/sssp/cc also run on gas, async, blockcentric, the
// incremental (evolving-graph) engine, and "auto" — the adaptive plan
// layer, which samples the graph, picks an engine/partition/mode, and
// may hand off between engines at superstep barriers mid-run.
var engines = map[string]map[string]bool{
	"pagerank": {"pregel": true, "gas": true, "async": true, "blockcentric": true, "inc": true, "auto": true},
	"sssp":     {"pregel": true, "gas": true, "async": true, "blockcentric": true, "inc": true, "auto": true},
	"cc":       {"pregel": true, "gas": true, "async": true, "blockcentric": true, "inc": true, "auto": true},
	"kcore":    {"pregel": true},
}

// validEngines enumerates the engines an algorithm runs on, sorted,
// for error messages. Derived from the registry so the text can never
// drift from the matrix.
func validEngines(algo string) []string {
	names := make([]string, 0, len(engines[algo]))
	for e := range engines[algo] {
		names = append(names, e)
	}
	sort.Strings(names)
	return names
}

// withDefaults folds the server-level checkpoint cadence defaults
// (Options) into unset spec fields, then the per-field fallbacks.
func (s *Server) withDefaults(spec JobSpec) JobSpec {
	if spec.Checkpoint == 0 && spec.CheckpointEvery == 0 {
		spec.Checkpoint = s.opts.DefaultCheckpointEvery
	}
	if spec.FullSnapshot == 0 {
		spec.FullSnapshot = s.opts.DefaultFullSnapshotEvery
	}
	return withDefaults(spec)
}

func withDefaults(spec JobSpec) JobSpec {
	if spec.Incremental && spec.Engine == "" {
		spec.Engine = "inc"
	}
	if spec.Engine == "inc" {
		spec.Incremental = true
	}
	if spec.Engine == "" {
		spec.Engine = "pregel"
	}
	if spec.Alpha == 0 {
		spec.Alpha = 0.85
	}
	if spec.K == 0 {
		spec.K = 30
	}
	if spec.Eps == 0 {
		spec.Eps = 1e-9
	}
	if spec.Checkpoint == 0 {
		spec.Checkpoint = spec.CheckpointEvery
	}
	if spec.Faults != 0 && spec.Checkpoint == 0 {
		spec.Checkpoint = 2
	}
	return spec
}

func validateSpec(spec JobSpec) error {
	byEngine, ok := engines[spec.Algo]
	if !ok {
		return fmt.Errorf("service: unknown algorithm %q", spec.Algo)
	}
	if !byEngine[spec.Engine] {
		return fmt.Errorf("service: algorithm %q does not run on engine %q (valid engines: %s)",
			spec.Algo, spec.Engine, strings.Join(validEngines(spec.Algo), ", "))
	}
	if spec.Resume != 0 && spec.Engine != "inc" {
		return fmt.Errorf("service: resume requires the inc engine, got %q", spec.Engine)
	}
	if _, err := rt.ParseDirectionMode(modeOrAuto(spec.Mode)); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return nil
}

func modeOrAuto(m string) string {
	if m == "" {
		return "auto"
	}
	return m
}

func faultPlan(spec JobSpec) *rt.FaultPlan {
	if spec.Faults == 0 {
		return nil
	}
	return rt.NewFaultPlan(spec.Faults)
}

// prepareRunner is the prepare phase of a job: it is called with the
// graph's read lock held, constructs the engine for spec's algorithm ×
// engine pair (pinning a CSR snapshot and performing every read of the
// mutable adjacency), and returns a closure that runs lock-free
// against the snapshot. spec has passed withDefaults and validateSpec.
func (s *Server) prepareRunner(g *graph.Graph, spec JobSpec, prior *incPrior, job *rt.Job) (func() (*runResult, error), error) {
	switch spec.Engine {
	case "pregel":
		return preparePregel(g, spec, job)
	case "gas":
		return prepareGAS(g, spec, job)
	case "async":
		return prepareAsync(g, spec, job)
	case "blockcentric":
		return prepareBlock(g, spec, job)
	case "inc":
		return prepareInc(g, spec, prior, job)
	case "auto":
		return s.prepareAuto(g, spec, job)
	}
	return nil, fmt.Errorf("service: unknown engine %q", spec.Engine)
}

// prepareAuto serves the adaptive plan layer: the orchestrator samples
// the pinned snapshot, picks the initial engine/partition/mode, and
// replans at superstep barriers, handing vertex state off live between
// engines. spec.Mode and spec.FCS are ignored — under "auto" the
// planner owns both knobs. The decision log and graph statistics land
// in runResult.auto for the status endpoint.
func (s *Server) prepareAuto(g *graph.Graph, spec JobSpec, job *rt.Job) (func() (*runResult, error), error) {
	cfg := vc.AutoConfig{Config: vc.Config{
		Workers:           spec.Workers,
		CheckpointEvery:   spec.Checkpoint,
		FullSnapshotEvery: spec.FullSnapshot,
		Faults:            faultPlan(spec),
		Job:               job,
	}}
	if trace := s.opts.PlanTrace; trace != nil {
		id := job.ID()
		cfg.Trace = func(d plan.Decision) { trace(id, d) }
	}
	switch spec.Algo {
	case "pagerank":
		run := vc.PrepareAutoPageRank(g, spec.Alpha, spec.K, cfg)
		return func() (*runResult, error) {
			res, ar, err := run()
			if err != nil {
				return nil, err
			}
			out := result(res.Ranks, ar.Stats, prVerdict(res.Ranks))
			out.auto = ar
			return out, nil
		}, nil
	case "sssp":
		run := vc.PrepareAutoSSSP(g, graph.VertexID(spec.Src), cfg)
		return func() (*runResult, error) {
			res, ar, err := run()
			if err != nil {
				return nil, err
			}
			out := result(res.Dist, ar.Stats, ssspVerdict(res.Dist, spec.Src))
			out.auto = ar
			return out, nil
		}, nil
	case "cc":
		run := vc.PrepareAutoHashMinCC(g, cfg)
		return func() (*runResult, error) {
			res, ar, err := run()
			if err != nil {
				return nil, err
			}
			out := result(idsToFloats(res.Color), ar.Stats, ccVerdict(res.Color))
			out.auto = ar
			return out, nil
		}, nil
	}
	return nil, fmt.Errorf("service: algorithm %q does not run on engine auto", spec.Algo)
}

// prepareInc is the evolving-graph engine: it pins a delta view and
// performs the seed analysis under the graph read lock, then drains (or
// for PageRank, sweeps) lock-free. The result carries the incremental
// state so the next resume can chain from this job.
func prepareInc(g *graph.Graph, spec JobSpec, prior *incPrior, job *rt.Job) (func() (*runResult, error), error) {
	if g.Directed && spec.Algo != "pagerank" {
		return nil, fmt.Errorf("service: incremental %s requires an undirected graph", spec.Algo)
	}
	cfg := vc.IncConfig{
		CheckpointEvery:   spec.Checkpoint,
		FullSnapshotEvery: spec.FullSnapshot,
		Faults:            faultPlan(spec),
		Job:               job,
	}
	if prior == nil {
		prior = &incPrior{}
	}
	switch spec.Algo {
	case "pagerank":
		run := vc.PrepareIncrementalPageRank(g, spec.Alpha, spec.K, prior.pr, cfg)
		return func() (*runResult, error) {
			st, stats, err := run()
			if err != nil {
				return nil, err
			}
			ranks := st.Ranks()
			res := result(ranks, stats, prVerdict(ranks))
			res.inc = &incStateBox{pr: st}
			return res, nil
		}, nil
	case "sssp":
		run := vc.PrepareIncrementalSSSP(g, graph.VertexID(spec.Src), prior.sssp, cfg)
		return func() (*runResult, error) {
			st, stats, err := run()
			if err != nil {
				return nil, err
			}
			res := result(st.Dist, stats, ssspVerdict(st.Dist, spec.Src))
			res.inc = &incStateBox{sssp: st}
			return res, nil
		}, nil
	case "cc":
		run := vc.PrepareIncrementalCC(g, prior.cc, cfg)
		return func() (*runResult, error) {
			st, stats, err := run()
			if err != nil {
				return nil, err
			}
			res := result(idsToFloats(st.Labels), stats, ccVerdict(st.Labels))
			res.inc = &incStateBox{cc: st}
			return res, nil
		}, nil
	}
	return nil, fmt.Errorf("service: algorithm %q does not run on engine inc", spec.Algo)
}

func preparePregel(g *graph.Graph, spec JobSpec, job *rt.Job) (func() (*runResult, error), error) {
	mode, err := rt.ParseDirectionMode(modeOrAuto(spec.Mode))
	if err != nil {
		return nil, err
	}
	cfg := vc.Config{
		Mode:              mode,
		CheckpointEvery:   spec.Checkpoint,
		FullSnapshotEvery: spec.FullSnapshot,
		Faults:            faultPlan(spec),
		FCS:               spec.FCS,
		Job:               job,
	}
	switch spec.Algo {
	case "pagerank":
		run := vc.PreparePageRank(g, spec.Alpha, spec.K, cfg)
		return func() (*runResult, error) {
			res, err := run()
			if err != nil {
				return nil, err
			}
			return result(res.Ranks, res.Stats, prVerdict(res.Ranks)), nil
		}, nil
	case "sssp":
		run := vc.PrepareSSSP(g, graph.VertexID(spec.Src), cfg)
		return func() (*runResult, error) {
			res, err := run()
			if err != nil {
				return nil, err
			}
			return result(res.Dist, res.Stats, ssspVerdict(res.Dist, spec.Src)), nil
		}, nil
	case "cc":
		run := vc.PrepareHashMinCC(g, cfg)
		return func() (*runResult, error) {
			res, err := run()
			if err != nil {
				return nil, err
			}
			return result(idsToFloats(res.Color), res.Stats, ccVerdict(res.Color)), nil
		}, nil
	case "kcore":
		run := vc.PrepareKCore(g, cfg)
		return func() (*runResult, error) {
			res, err := run()
			if err != nil {
				return nil, err
			}
			vals := make([]float64, len(res.Core))
			for v, c := range res.Core {
				vals[v] = float64(c)
			}
			return result(vals, res.Stats, fmt.Sprintf("degeneracy %d", res.Degeneracy)), nil
		}, nil
	}
	return nil, fmt.Errorf("service: algorithm %q does not run on engine pregel", spec.Algo)
}

func prepareGAS(g *graph.Graph, spec JobSpec, job *rt.Job) (func() (*runResult, error), error) {
	mode, err := rt.ParseDirectionMode(modeOrAuto(spec.Mode))
	if err != nil {
		return nil, err
	}
	cfg := gas.Config{
		Mode:              mode,
		CheckpointEvery:   spec.Checkpoint,
		FullSnapshotEvery: spec.FullSnapshot,
		Faults:            faultPlan(spec),
		Job:               job,
	}
	switch spec.Algo {
	case "pagerank":
		run := gas.PreparePageRank(g, spec.Alpha, spec.Eps, cfg)
		return func() (*runResult, error) {
			ranks, res, err := run()
			if err != nil {
				return nil, err
			}
			return result(ranks, res.Stats, prVerdict(ranks)), nil
		}, nil
	case "sssp":
		run := gas.PrepareSSSP(g, graph.VertexID(spec.Src), cfg)
		return func() (*runResult, error) {
			dist, res, err := run()
			if err != nil {
				return nil, err
			}
			return result(dist, res.Stats, ssspVerdict(dist, spec.Src)), nil
		}, nil
	case "cc":
		run := gas.PrepareConnectedComponents(g, cfg)
		return func() (*runResult, error) {
			labels, res, err := run()
			if err != nil {
				return nil, err
			}
			return result(idsToFloats(labels), res.Stats, ccVerdict(labels)), nil
		}, nil
	}
	return nil, fmt.Errorf("service: algorithm %q does not run on engine gas", spec.Algo)
}

func prepareAsync(g *graph.Graph, spec JobSpec, job *rt.Job) (func() (*runResult, error), error) {
	cfg := async.Config{
		CheckpointEvery:   spec.Checkpoint,
		FullSnapshotEvery: spec.FullSnapshot,
		Faults:            faultPlan(spec),
		Job:               job,
	}
	switch spec.Algo {
	case "pagerank":
		run := async.PreparePageRank(g, spec.Alpha, spec.Eps, cfg)
		return func() (*runResult, error) {
			ranks, res, err := run()
			if err != nil {
				return nil, err
			}
			return result(ranks, res.Stats, prVerdict(ranks)), nil
		}, nil
	case "sssp":
		run := async.PrepareSSSP(g, graph.VertexID(spec.Src), cfg)
		return func() (*runResult, error) {
			dist, res, err := run()
			if err != nil {
				return nil, err
			}
			return result(dist, res.Stats, ssspVerdict(dist, spec.Src)), nil
		}, nil
	case "cc":
		run := async.PrepareConnectedComponents(g, cfg)
		return func() (*runResult, error) {
			labels, res, err := run()
			if err != nil {
				return nil, err
			}
			return result(idsToFloats(labels), res.Stats, ccVerdict(labels)), nil
		}, nil
	}
	return nil, fmt.Errorf("service: algorithm %q does not run on engine async", spec.Algo)
}

func prepareBlock(g *graph.Graph, spec JobSpec, job *rt.Job) (func() (*runResult, error), error) {
	cfg := blockcentric.Config{
		CheckpointEvery:   spec.Checkpoint,
		FullSnapshotEvery: spec.FullSnapshot,
		Faults:            faultPlan(spec),
		Job:               job,
	}
	switch spec.Algo {
	case "pagerank":
		run := blockcentric.PreparePageRank(g, spec.Alpha, spec.K, cfg)
		return func() (*runResult, error) {
			res, err := run()
			if err != nil {
				return nil, err
			}
			return result(res.Ranks, res.Stats, prVerdict(res.Ranks)), nil
		}, nil
	case "sssp":
		run := blockcentric.PrepareSSSP(g, graph.VertexID(spec.Src), cfg)
		return func() (*runResult, error) {
			res, err := run()
			if err != nil {
				return nil, err
			}
			return result(res.Dist, res.Stats, ssspVerdict(res.Dist, spec.Src)), nil
		}, nil
	case "cc":
		run := blockcentric.PrepareConnectedComponents(g, cfg)
		return func() (*runResult, error) {
			res, err := run()
			if err != nil {
				return nil, err
			}
			return result(idsToFloats(res.Color), res.Stats, ccVerdict(res.Color)), nil
		}, nil
	}
	return nil, fmt.Errorf("service: algorithm %q does not run on engine blockcentric", spec.Algo)
}

func result(values []float64, stats *bsp.Stats, verdict string) *runResult {
	return &runResult{values: values, summary: stats.Summarize(), verdict: verdict}
}

func idsToFloats(ids []graph.VertexID) []float64 {
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = float64(id)
	}
	return out
}

func prVerdict(ranks []float64) string {
	best, bestV := -1.0, 0
	for v, r := range ranks {
		if r > best {
			best, bestV = r, v
		}
	}
	return fmt.Sprintf("top vertex %d with rank %.6f", bestV, best)
}

func ssspVerdict(dist []float64, src int) string {
	reached := 0
	for _, d := range dist {
		if d < 1e300 {
			reached++
		}
	}
	return fmt.Sprintf("%d vertices reachable from %d", reached, src)
}

func ccVerdict(labels []graph.VertexID) string {
	set := make(map[graph.VertexID]bool, 16)
	for _, l := range labels {
		set[l] = true
	}
	return fmt.Sprintf("%d components", len(set))
}
