// Package service implements the job-serving layer behind cmd/vcd: a
// registry of named graphs, a job registry fed through the shared
// runtime.Scheduler, and the JSON/HTTP handlers that expose both.
//
// Concurrency contract. Each named graph carries a RWMutex. A job —
// once admitted by the scheduler — takes the read lock only for the
// engine's prepare phase (which pins a CSR snapshot and performs every
// read of the mutable adjacency, including Init), then releases it and
// runs against the pinned snapshot lock-free. Writers (edge additions)
// take the write lock across mutate-and-republish, so they wait for
// in-flight prepares but never for runs: a long job and a graph update
// proceed concurrently, and the job's results are those of the
// snapshot it pinned. Jobs cancelled while still queued never reach
// the prepare phase, so they pin nothing.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vcgraph/internal/graph"
	"vcgraph/internal/plan"
	rt "vcgraph/internal/runtime"
)

// GraphSpec describes a graph to register: either a named generator
// (gen/n/m/seed, mirroring cmd/vcrun) or an explicit edge list.
type GraphSpec struct {
	Name string `json:"name"`
	// Gen selects a generator: random, connected, powerlaw, path,
	// cycle, grid, star, tree, directed. Empty means Edges is explicit.
	Gen  string `json:"gen,omitempty"`
	N    int    `json:"n,omitempty"`
	M    int    `json:"m,omitempty"`
	Seed int64  `json:"seed,omitempty"`
	// Directed applies to explicit edge lists (generators fix their
	// own directedness).
	Directed bool `json:"directed,omitempty"`
	// Edges lists explicit edges as [u, v] or [u, v, w] triples.
	Edges [][]float64 `json:"edges,omitempty"`
	// Weights assigns seeded random weights after construction (for
	// weighted SSSP, as cmd/vcrun does).
	Weights bool `json:"weights,omitempty"`
}

// MutationSpec is one wire-level mutation: op is "insert" or "delete".
// Insert weight 0 means 1 (matching AddEdge); delete weight is ignored
// (first-match semantics, the log canonicalizes the removed weight).
type MutationSpec struct {
	Op string  `json:"op"`
	U  int     `json:"u"`
	V  int     `json:"v"`
	W  float64 `json:"w,omitempty"`
}

// JobSpec describes a job to submit.
type JobSpec struct {
	Graph  string `json:"graph"`
	Algo   string `json:"algo"`             // pagerank | sssp | cc | kcore
	Engine string `json:"engine,omitempty"` // pregel (default) | gas | async | blockcentric | inc | auto
	// Incremental runs the algorithm's evolving-graph form (engine
	// "inc"): warm-started from the job named by Resume when its state
	// is still valid for the graph's mutation log, cold otherwise.
	Incremental bool `json:"incremental,omitempty"`
	// Resume names a prior job ID to warm-start from. The prior job
	// must have succeeded on the same graph with the same algorithm and
	// parameters. 0 means a cold incremental run.
	Resume int64 `json:"resume,omitempty"`
	// Mode is the pregel direction mode: push, pull, or auto (default).
	Mode    string `json:"mode,omitempty"`
	Workers int    `json:"workers,omitempty"`
	Src     int    `json:"src,omitempty"`
	// Alpha/K/Eps parameterize PageRank (defaults 0.85, 30, 1e-9).
	Alpha float64 `json:"alpha,omitempty"`
	K     int     `json:"k,omitempty"`
	Eps   float64 `json:"eps,omitempty"`
	// FCS enables finishing-computations-serially for cc on pregel.
	FCS int `json:"fcs,omitempty"`
	// Checkpoint/Faults pass through to the engine's fault tolerance;
	// Faults seeds a deterministic runtime.FaultPlan. CheckpointEvery
	// is a wire alias of Checkpoint (withDefaults folds it in);
	// FullSnapshot > 1 stores only every Nth checkpoint full, the
	// generations between as dirty-set deltas (runtime.DeltaPolicy).
	Checkpoint      int   `json:"checkpoint,omitempty"`
	CheckpointEvery int   `json:"checkpoint_every,omitempty"`
	FullSnapshot    int   `json:"full_snapshot_every,omitempty"`
	Faults          int64 `json:"faults,omitempty"`
	// TimeoutMS bounds the job's wall time (queue wait included).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Options configures a Server beyond the scheduler's pool shape.
type Options struct {
	// Workers is the shared pool size (0 = GOMAXPROCS).
	Workers int
	// MaxJobs caps concurrently admitted jobs (0 = 1).
	MaxJobs int
	// JobRetention caps retained terminal job records: once exceeded,
	// the oldest terminal records are evicted at submit time (queued
	// and running jobs are never evicted). 0 means DefaultJobRetention.
	JobRetention int
	// GraphTTL, when positive, lets EvictGraphs drop graphs idle
	// longer than this — except graphs with pinned snapshots, which a
	// running job may still be reading.
	GraphTTL time.Duration
	// DefaultCheckpointEvery, when positive, is the checkpoint cadence
	// applied to jobs that set neither checkpoint nor checkpoint_every.
	DefaultCheckpointEvery int
	// DefaultFullSnapshotEvery, when > 1, is the full-snapshot cadence
	// (delta checkpointing) applied to jobs that leave
	// full_snapshot_every unset.
	DefaultFullSnapshotEvery int
	// PlanTrace, when non-nil, observes every plan decision an
	// engine-"auto" job takes as it happens — the initial pick at
	// prepare time and any live handoffs at superstep barriers. The
	// daemon uses it to log decisions; the full log is also available
	// from job status once the run finishes.
	PlanTrace func(jobID int64, d plan.Decision)
}

// DefaultJobRetention bounds the job registry when Options.JobRetention
// is zero: without a cap, a long-lived daemon's registry (records,
// result vectors, superstep traces) grows without bound.
const DefaultJobRetention = 512

// Server owns the graph store, the job registry, and the scheduler.
type Server struct {
	sched *rt.Scheduler
	opts  Options
	now   func() time.Time // test seam for TTL eviction

	mu       sync.Mutex
	graphs   map[string]*graphEntry
	jobs     map[int64]*jobRecord
	jobOrder []int64 // submission order, for oldest-first eviction
}

// graphEntry pairs a mutable graph with the lock bracketing its
// prepare-phase reads and its mutations (see the package comment).
type graphEntry struct {
	mu sync.RWMutex
	g  *graph.Graph

	// lastUsed is the last registration, mutation, or job submission
	// touching this graph, guarded by the server mutex (not mu).
	lastUsed time.Time
}

// jobRecord pairs a runtime job handle with its spec and, once the
// run succeeds, its result.
type jobRecord struct {
	spec JobSpec
	job  *rt.Job

	mu  sync.Mutex
	res *runResult
}

func (r *jobRecord) result() *runResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.res
}

// New builds a Server over workers pool goroutines (0 = GOMAXPROCS)
// admitting at most maxJobs concurrent jobs (0 = 1).
func New(workers, maxJobs int) *Server {
	return NewServer(Options{Workers: workers, MaxJobs: maxJobs})
}

// NewServer builds a Server with explicit retention options.
func NewServer(opts Options) *Server {
	if opts.JobRetention <= 0 {
		opts.JobRetention = DefaultJobRetention
	}
	return &Server{
		sched:  rt.NewScheduler(opts.Workers, opts.MaxJobs),
		opts:   opts,
		now:    time.Now,
		graphs: make(map[string]*graphEntry),
		jobs:   make(map[int64]*jobRecord),
	}
}

// Close stops the shared pool. Outstanding jobs must be terminal.
func (s *Server) Close() { s.sched.Close() }

// Scheduler exposes the underlying scheduler (for tests and stats).
func (s *Server) Scheduler() *rt.Scheduler { return s.sched }

// errUnknownGraph et al. are wire-level validation errors.
var (
	errUnknownGraph = errors.New("service: unknown graph")
	errUnknownJob   = errors.New("service: unknown job")
)

// RegisterGraph validates spec, builds the graph, and registers it
// under its name. Re-registering a name is an error.
func (s *Server) RegisterGraph(spec GraphSpec) error {
	if spec.Name == "" {
		return errors.New("service: graph name required")
	}
	g, err := buildGraph(spec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.graphs[spec.Name]; dup {
		return fmt.Errorf("service: graph %q already registered", spec.Name)
	}
	s.graphs[spec.Name] = &graphEntry{g: g, lastUsed: s.now()}
	return nil
}

// AddEdges appends edges ([u, v] or [u, v, w]) to a registered graph.
// It is sugar for MutateGraph with insert-only mutations, so bulk
// appends flow through the mutation log and keep incremental resume
// valid across them.
func (s *Server) AddEdges(name string, edges [][]float64) error {
	ent, err := s.graph(name)
	if err != nil {
		return err
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	muts := make([]graph.Mutation, 0, len(edges))
	for _, e := range edges {
		u, v, w, err := parseEdge(e, ent.g.N())
		if err != nil {
			return err
		}
		muts = append(muts, graph.Mutation{Op: graph.InsertEdge, U: u, V: v, W: w})
	}
	_, err = ent.g.ApplyMutations(muts)
	return err
}

// MutateGraph applies one atomic batch of wire-level mutations to a
// registered graph under its write lock and returns the graph's new
// epoch. An invalid batch (bad op, out-of-range endpoint, deleting a
// missing edge) is rejected whole: the graph and its epoch are
// untouched.
func (s *Server) MutateGraph(name string, specs []MutationSpec) (int64, error) {
	ent, err := s.graph(name)
	if err != nil {
		return 0, err
	}
	muts := make([]graph.Mutation, len(specs))
	for i, m := range specs {
		var op graph.MutationOp
		switch m.Op {
		case "insert":
			op = graph.InsertEdge
			if m.W == 0 {
				m.W = 1
			}
		case "delete":
			op = graph.DeleteEdge
			m.W = 0
		default:
			return 0, fmt.Errorf("service: mutation %d: unknown op %q", i, m.Op)
		}
		muts[i] = graph.Mutation{Op: op, U: graph.VertexID(m.U), V: graph.VertexID(m.V), W: m.W}
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	epoch, err := ent.g.ApplyMutations(muts)
	if err != nil {
		return 0, fmt.Errorf("service: %w", err)
	}
	return epoch, nil
}

// GraphInfo reports a registered graph's shape and mutation epoch.
func (s *Server) GraphInfo(name string) (n, m int, directed bool, epoch int64, err error) {
	ent, err := s.graph(name)
	if err != nil {
		return 0, 0, false, 0, err
	}
	ent.mu.RLock()
	defer ent.mu.RUnlock()
	return ent.g.N(), ent.g.M(), ent.g.Directed, ent.g.Epoch(), nil
}

func (s *Server) graph(name string) (*graphEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.graphs[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", errUnknownGraph, name)
	}
	ent.lastUsed = s.now()
	return ent, nil
}

// EvictJobs drops the oldest terminal job records beyond the retention
// cap and returns how many were evicted. Queued and running jobs are
// always retained, even if that holds the registry over the cap.
func (s *Server) EvictJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictJobsLocked()
}

func (s *Server) evictJobsLocked() int {
	evicted := 0
	if len(s.jobs) <= s.opts.JobRetention {
		return 0
	}
	kept := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		rec, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs)-evicted > s.opts.JobRetention && rec.job.State().Terminal() {
			delete(s.jobs, id)
			evicted++
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
	return evicted
}

// EvictGraphs drops graphs idle longer than Options.GraphTTL and
// returns their names. Graphs with pinned snapshots are skipped — a
// prepared job may still be running against the pin — as is everything
// when GraphTTL is unset.
func (s *Server) EvictGraphs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.GraphTTL <= 0 {
		return nil
	}
	cutoff := s.now().Add(-s.opts.GraphTTL)
	var evicted []string
	for name, ent := range s.graphs {
		if ent.lastUsed.After(cutoff) || ent.g.Pins() > 0 {
			continue
		}
		delete(s.graphs, name)
		evicted = append(evicted, name)
	}
	return evicted
}

// Submit validates spec eagerly (unknown graph / algo / engine /
// resume target fail before anything queues), then submits the job to
// the scheduler and returns its handle. The run function takes the
// graph's read lock only for the prepare phase.
func (s *Server) Submit(spec JobSpec) (*rt.Job, error) {
	ent, err := s.graph(spec.Graph)
	if err != nil {
		return nil, err
	}
	spec = s.withDefaults(spec)
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	prior, err := s.resumeState(spec)
	if err != nil {
		return nil, err
	}
	share := spec.Workers
	if spec.Engine == "async" || spec.Engine == "inc" {
		// The asynchronous engine and the incremental worklist drain are
		// sequential by construction; their drivers run one worker, so
		// the lease share must match.
		share = 1
	}
	ctx := context.Background()
	var timeoutCancel context.CancelFunc
	if spec.TimeoutMS > 0 {
		ctx, timeoutCancel = context.WithTimeout(ctx, time.Duration(spec.TimeoutMS)*time.Millisecond)
	}
	rec := &jobRecord{spec: spec}
	name := spec.Algo + "/" + spec.Engine
	job := s.sched.Submit(ctx, name, share, func(j *rt.Job) error {
		ent.mu.RLock()
		epoch := ent.g.Epoch()
		run, err := s.prepareRunner(ent.g, spec, prior, j)
		ent.mu.RUnlock()
		if err != nil {
			return err
		}
		res, err := run()
		if err != nil {
			return err
		}
		res.epoch = epoch
		rec.mu.Lock()
		rec.res = res
		rec.mu.Unlock()
		return nil
	})
	if timeoutCancel != nil {
		job.OnCleanup(timeoutCancel)
	}
	rec.job = job
	s.mu.Lock()
	s.jobs[job.ID()] = rec
	s.jobOrder = append(s.jobOrder, job.ID())
	s.evictJobsLocked()
	s.mu.Unlock()
	return job, nil
}

// resumeState resolves spec.Resume into warm-start state for an
// incremental job: the prior job must have succeeded on the same graph
// with the same algorithm and parameters. CC and SSSP can seed from any
// engine's converged values (unique fixpoints); PageRank needs the
// memoized history only an incremental prior carries.
func (s *Server) resumeState(spec JobSpec) (*incPrior, error) {
	if spec.Engine != "inc" || spec.Resume == 0 {
		return nil, nil
	}
	rec, err := s.JobRecord(spec.Resume)
	if err != nil {
		return nil, err
	}
	res := rec.result()
	if res == nil {
		return nil, fmt.Errorf("service: resume job %d has no result (state %s)", spec.Resume, rec.job.State())
	}
	p := rec.spec
	if p.Graph != spec.Graph || p.Algo != spec.Algo {
		return nil, fmt.Errorf("service: resume job %d ran %s on graph %q, want %s on %q",
			spec.Resume, p.Algo, p.Graph, spec.Algo, spec.Graph)
	}
	switch spec.Algo {
	case "sssp":
		if p.Src != spec.Src {
			return nil, fmt.Errorf("service: resume job %d used source %d, want %d", spec.Resume, p.Src, spec.Src)
		}
	case "pagerank":
		if p.Alpha != spec.Alpha || p.K != spec.K {
			return nil, fmt.Errorf("service: resume job %d used alpha=%v k=%d, want alpha=%v k=%d",
				spec.Resume, p.Alpha, p.K, spec.Alpha, spec.K)
		}
		if res.inc == nil || res.inc.pr == nil {
			return nil, fmt.Errorf("service: pagerank resume needs an incremental prior, job %d ran engine %q", spec.Resume, p.Engine)
		}
	}
	return priorFromResult(spec, res), nil
}

// JobRecord returns the record for a submitted job ID.
func (s *Server) JobRecord(id int64) (*jobRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w %d", errUnknownJob, id)
	}
	return rec, nil
}

// Cancel cancels a submitted job (queued or running).
func (s *Server) Cancel(id int64) error {
	rec, err := s.JobRecord(id)
	if err != nil {
		return err
	}
	rec.job.Cancel(nil)
	return nil
}

func parseEdge(e []float64, n int) (u, v graph.VertexID, w float64, err error) {
	if len(e) != 2 && len(e) != 3 {
		return 0, 0, 0, fmt.Errorf("service: edge %v: want [u, v] or [u, v, w]", e)
	}
	w = 1
	if len(e) == 3 {
		w = e[2]
	}
	ui, vi := int(e[0]), int(e[1])
	if float64(ui) != e[0] || float64(vi) != e[1] || ui < 0 || vi < 0 || ui >= n || vi >= n {
		return 0, 0, 0, fmt.Errorf("service: edge %v: endpoints must be integers in [0, %d)", e, n)
	}
	return graph.VertexID(ui), graph.VertexID(vi), w, nil
}

func buildGraph(spec GraphSpec) (*graph.Graph, error) {
	var g *graph.Graph
	switch spec.Gen {
	case "":
		if spec.N <= 0 {
			return nil, errors.New("service: explicit graphs need n > 0")
		}
		g = graph.New(spec.N, spec.Directed)
		for _, e := range spec.Edges {
			u, v, w, err := parseEdge(e, spec.N)
			if err != nil {
				return nil, err
			}
			g.AddWeightedEdge(u, v, w)
		}
	case "random":
		g = graph.Random(spec.N, spec.M, spec.Seed)
	case "connected":
		g = graph.RandomConnected(spec.N, spec.M, spec.Seed)
	case "powerlaw":
		g = graph.PreferentialAttachment(spec.N, spec.M, spec.Seed)
	case "path":
		g = graph.Path(spec.N)
	case "cycle":
		g = graph.Cycle(spec.N)
	case "grid":
		g = graph.Grid(spec.N, spec.N)
	case "star":
		g = graph.Star(spec.N)
	case "tree":
		g = graph.RandomTree(spec.N, spec.Seed)
	case "directed":
		g = graph.RandomDirected(spec.N, spec.M, spec.Seed)
	default:
		return nil, fmt.Errorf("service: unknown generator %q", spec.Gen)
	}
	if spec.Weights {
		graph.RandomWeights(g, spec.Seed+1)
	}
	return g, nil
}
