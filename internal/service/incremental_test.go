package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	rt "vcgraph/internal/runtime"
)

// TestMutateGraph: the mutate entry point is atomic and epoch-bumping;
// invalid batches leave both graph and epoch untouched.
func TestMutateGraph(t *testing.T) {
	s := New(1, 1)
	defer s.Close()
	if err := s.RegisterGraph(GraphSpec{Name: "g", Gen: "path", N: 8}); err != nil {
		t.Fatal(err)
	}
	_, m0, _, e0, _ := s.GraphInfo("g")
	epoch, err := s.MutateGraph("g", []MutationSpec{
		{Op: "insert", U: 0, V: 5, W: 2},
		{Op: "delete", U: 1, V: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, m1, _, e1, _ := s.GraphInfo("g")
	if epoch != e0+1 || e1 != e0+1 || m1 != m0 {
		t.Fatalf("after batch: epoch %d -> %d/%d, m %d->%d", e0, epoch, e1, m0, m1)
	}

	// Deleting a missing edge rejects the whole batch.
	if _, err := s.MutateGraph("g", []MutationSpec{
		{Op: "insert", U: 0, V: 7},
		{Op: "delete", U: 3, V: 7},
	}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	_, m2, _, e2, _ := s.GraphInfo("g")
	if e2 != e1 || m2 != m1 {
		t.Fatalf("rejected batch changed state: epoch %d -> %d, m %d->%d", e1, e2, m1, m2)
	}

	if _, err := s.MutateGraph("g", []MutationSpec{{Op: "upsert", U: 0, V: 1}}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := s.MutateGraph("none", nil); !errors.Is(err, errUnknownGraph) {
		t.Fatalf("unknown graph: %v", err)
	}
}

// TestIncrementalJobChain: submit cold incremental jobs, mutate, resume
// each from its predecessor — every warm result must be byte-identical
// to a from-scratch run of the same algorithm on the mutated graph.
func TestIncrementalJobChain(t *testing.T) {
	s := New(2, 1)
	defer s.Close()
	if err := s.RegisterGraph(testGraph("g")); err != nil {
		t.Fatal(err)
	}
	submit := func(spec JobSpec) *runResult {
		t.Helper()
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		return waitResult(t, s, job)
	}
	submitJob := func(spec JobSpec) (*rt.Job, *runResult) {
		t.Helper()
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		return job, waitResult(t, s, job)
	}

	ccJob, cc0 := submitJob(JobSpec{Graph: "g", Algo: "cc", Engine: "inc"})
	ssJob, ss0 := submitJob(JobSpec{Graph: "g", Algo: "sssp", Incremental: true, Src: 3})
	prJob, pr0 := submitJob(JobSpec{Graph: "g", Algo: "pagerank", Engine: "inc", K: 15})
	for _, res := range []*runResult{cc0, ss0, pr0} {
		if res.inc == nil || !res.inc.cold() {
			t.Fatal("first incremental run should be cold and carry state")
		}
	}

	if _, err := s.MutateGraph("g", []MutationSpec{
		{Op: "insert", U: 2, V: 350, W: 0.25},
		{Op: "insert", U: 17, V: 44, W: 1.5},
		{Op: "delete", U: 2, V: 350},
	}); err != nil {
		t.Fatal(err)
	}

	cc1 := submit(JobSpec{Graph: "g", Algo: "cc", Engine: "inc", Resume: ccJob.ID()})
	ss1 := submit(JobSpec{Graph: "g", Algo: "sssp", Engine: "inc", Src: 3, Resume: ssJob.ID()})
	pr1 := submit(JobSpec{Graph: "g", Algo: "pagerank", Engine: "inc", K: 15, Resume: prJob.ID()})
	for _, res := range []*runResult{cc1, ss1, pr1} {
		if res.inc.cold() {
			t.Fatal("resumed run fell back to cold")
		}
	}

	// From-scratch ground truth on the mutated graph: async for the
	// byte-exact fixpoints, a cold inc run for the canonical PageRank.
	ccScratch := submit(JobSpec{Graph: "g", Algo: "cc", Engine: "async"})
	ssScratch := submit(JobSpec{Graph: "g", Algo: "sssp", Engine: "async", Src: 3})
	prScratch := submit(JobSpec{Graph: "g", Algo: "pagerank", Engine: "inc", K: 15})
	if !reflect.DeepEqual(cc1.values, ccScratch.values) || cc1.verdict != ccScratch.verdict {
		t.Fatal("warm CC differs from from-scratch async run")
	}
	if !reflect.DeepEqual(ss1.values, ssScratch.values) || ss1.verdict != ssScratch.verdict {
		t.Fatal("warm SSSP differs from from-scratch async run")
	}
	if !reflect.DeepEqual(pr1.values, prScratch.values) || pr1.verdict != prScratch.verdict {
		t.Fatal("warm PageRank differs from canonical recompute")
	}
}

// TestIncrementalResumeFromPlainJob: CC and SSSP warm-start from a
// non-incremental job's converged values; PageRank must refuse (its
// memoized history only exists on incremental runs).
func TestIncrementalResumeFromPlainJob(t *testing.T) {
	s := New(2, 1)
	defer s.Close()
	if err := s.RegisterGraph(testGraph("g")); err != nil {
		t.Fatal(err)
	}
	plainCC, err := s.Submit(JobSpec{Graph: "g", Algo: "cc", Engine: "pregel", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	plainPR, err := s.Submit(JobSpec{Graph: "g", Algo: "pagerank", Engine: "pregel", Workers: 2, K: 15})
	if err != nil {
		t.Fatal(err)
	}
	waitResult(t, s, plainCC)
	waitResult(t, s, plainPR)

	if _, err := s.MutateGraph("g", []MutationSpec{{Op: "insert", U: 1, V: 399}}); err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(JobSpec{Graph: "g", Algo: "cc", Engine: "inc", Resume: plainCC.ID()})
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, s, job)
	if res.inc.cold() {
		t.Fatal("resume from plain CC job fell back to cold")
	}
	scratch, err := s.Submit(JobSpec{Graph: "g", Algo: "cc", Engine: "async"})
	if err != nil {
		t.Fatal(err)
	}
	if want := waitResult(t, s, scratch); !reflect.DeepEqual(res.values, want.values) {
		t.Fatal("plain-seeded warm CC differs from from-scratch run")
	}

	if _, err := s.Submit(JobSpec{Graph: "g", Algo: "pagerank", Engine: "inc", K: 15, Resume: plainPR.ID()}); err == nil ||
		!strings.Contains(err.Error(), "incremental prior") {
		t.Fatalf("pagerank resume from plain job: err = %v", err)
	}
}

// TestResumeValidation: bad resume targets fail at submit time.
func TestResumeValidation(t *testing.T) {
	s := New(2, 1)
	defer s.Close()
	for _, name := range []string{"g1", "g2"} {
		if err := s.RegisterGraph(GraphSpec{Name: name, Gen: "connected", N: 30, M: 60, Seed: 2}); err != nil {
			t.Fatal(err)
		}
	}
	job, err := s.Submit(JobSpec{Graph: "g1", Algo: "sssp", Engine: "inc", Src: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitResult(t, s, job)

	cases := []struct {
		name string
		spec JobSpec
	}{
		{"unknown job", JobSpec{Graph: "g1", Algo: "sssp", Engine: "inc", Src: 1, Resume: 999}},
		{"cross graph", JobSpec{Graph: "g2", Algo: "sssp", Engine: "inc", Src: 1, Resume: job.ID()}},
		{"cross algo", JobSpec{Graph: "g1", Algo: "cc", Engine: "inc", Resume: job.ID()}},
		{"source mismatch", JobSpec{Graph: "g1", Algo: "sssp", Engine: "inc", Src: 5, Resume: job.ID()}},
		{"resume without inc", JobSpec{Graph: "g1", Algo: "sssp", Engine: "async", Src: 1, Resume: job.ID()}},
	}
	for _, tc := range cases {
		if _, err := s.Submit(tc.spec); err == nil {
			t.Errorf("%s: submit accepted", tc.name)
		}
	}
}

// TestJobEviction: terminal records beyond the retention cap are
// evicted oldest-first; live (queued/running) jobs are never evicted.
func TestJobEviction(t *testing.T) {
	// MaxJobs 2: the blocked job pins one admission slot for the whole
	// test, so the real jobs need a second.
	s := NewServer(Options{Workers: 2, MaxJobs: 2, JobRetention: 3})
	defer s.Close()
	if err := s.RegisterGraph(GraphSpec{Name: "g", Gen: "connected", N: 40, M: 80, Seed: 3}); err != nil {
		t.Fatal(err)
	}

	// A running job pinned open: oldest in the registry, but immune.
	gate := make(chan struct{})
	blocked := s.Scheduler().Submit(context.Background(), "blocked", 1, func(*rt.Job) error {
		<-gate
		return nil
	})
	s.mu.Lock()
	s.jobs[blocked.ID()] = &jobRecord{job: blocked}
	s.jobOrder = append(s.jobOrder, blocked.ID())
	s.mu.Unlock()
	defer func() {
		close(gate)
		_ = blocked.Wait()
	}()

	var ids []int64
	for i := 0; i < 6; i++ {
		job, err := s.Submit(JobSpec{Graph: "g", Algo: "cc", Engine: "async"})
		if err != nil {
			t.Fatal(err)
		}
		waitResult(t, s, job)
		ids = append(ids, job.ID())
	}
	s.EvictJobs()

	if _, err := s.JobRecord(blocked.ID()); err != nil {
		t.Fatal("running job was evicted")
	}
	if _, err := s.JobRecord(ids[0]); !errors.Is(err, errUnknownJob) {
		t.Fatalf("oldest terminal job not evicted: %v", err)
	}
	if _, err := s.JobRecord(ids[len(ids)-1]); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n > 4 { // retention cap + the immune running job
		t.Fatalf("registry holds %d records, want <= 4", n)
	}
}

// TestGraphEvictionRespectsPins: TTL eviction drops idle graphs but
// never one with a pinned snapshot (a prepared job may be mid-run).
func TestGraphEvictionRespectsPins(t *testing.T) {
	s := NewServer(Options{Workers: 1, MaxJobs: 1, GraphTTL: time.Minute})
	defer s.Close()
	base := time.Now()
	s.now = func() time.Time { return base }
	for _, name := range []string{"pinned", "idle"} {
		if err := s.RegisterGraph(GraphSpec{Name: name, Gen: "path", N: 10}); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	ent := s.graphs["pinned"]
	s.mu.Unlock()
	snap := ent.g.Pin()

	s.now = func() time.Time { return base.Add(2 * time.Minute) }
	evicted := s.EvictGraphs()
	if len(evicted) != 1 || evicted[0] != "idle" {
		t.Fatalf("evicted %v, want [idle]", evicted)
	}
	if _, _, _, _, err := s.GraphInfo("pinned"); err != nil {
		t.Fatal("pinned graph was evicted")
	}

	// GraphInfo above refreshed lastUsed; go idle again, unpin, evict.
	s.now = func() time.Time { return base.Add(5 * time.Minute) }
	ent.g.Unpin(snap)
	evicted = s.EvictGraphs()
	if len(evicted) != 1 || evicted[0] != "pinned" {
		t.Fatalf("evicted %v, want [pinned]", evicted)
	}
	if _, _, _, _, err := s.GraphInfo("pinned"); !errors.Is(err, errUnknownGraph) {
		t.Fatalf("graph still served after eviction: %v", err)
	}
}

// TestGraphTTLDisabled: without a TTL, EvictGraphs is a no-op.
func TestGraphTTLDisabled(t *testing.T) {
	s := New(1, 1)
	defer s.Close()
	if err := s.RegisterGraph(GraphSpec{Name: "g", Gen: "path", N: 4}); err != nil {
		t.Fatal(err)
	}
	s.now = func() time.Time { return time.Now().Add(1000 * time.Hour) }
	if evicted := s.EvictGraphs(); len(evicted) != 0 {
		t.Fatalf("TTL-less eviction dropped %v", evicted)
	}
}

// TestHTTPMutateAndIncremental drives the evolving-graph surface over
// a live listener: mutate a graph, run a cold incremental job, mutate
// again, resume warm, and check the status report's epoch/cold fields.
func TestHTTPMutateAndIncremental(t *testing.T) {
	s := New(2, 1)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reg := doJSON(t, "POST", ts.URL+"/v1/graphs",
		GraphSpec{Name: "web", Gen: "connected", N: 60, M: 150, Seed: 9, Weights: true}, http.StatusCreated)
	epoch0 := reg["epoch"].(float64)

	mut := doJSON(t, "POST", ts.URL+"/v1/graphs/web/mutate", map[string]any{
		"mutations": []MutationSpec{{Op: "insert", U: 3, V: 41, W: 0.5}},
	}, http.StatusOK)
	if mut["epoch"].(float64) != epoch0+1 {
		t.Fatalf("mutate epoch = %v, want %v", mut["epoch"], epoch0+1)
	}
	doJSON(t, "POST", ts.URL+"/v1/graphs/web/mutate", map[string]any{
		"mutations": []MutationSpec{{Op: "delete", U: 0, V: 59}},
	}, http.StatusBadRequest)

	runJob := func(spec JobSpec) (int64, map[string]any) {
		t.Helper()
		sub := doJSON(t, "POST", ts.URL+"/v1/jobs", spec, http.StatusAccepted)
		id := int64(sub["id"].(float64))
		url := fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id)
		deadline := time.Now().Add(10 * time.Second)
		for {
			status := doJSON(t, "GET", url, nil, http.StatusOK)
			switch status["state"].(string) {
			case "succeeded":
				return id, status
			case "failed", "cancelled":
				t.Fatalf("job %d: %v", id, status)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d did not finish", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	coldID, cold := runJob(JobSpec{Graph: "web", Algo: "sssp", Incremental: true, Src: 2})
	if cold["incremental"] != true || cold["cold"] != true || cold["epoch"].(float64) != epoch0+1 {
		t.Fatalf("cold status = %v", cold)
	}

	doJSON(t, "POST", ts.URL+"/v1/graphs/web/mutate", map[string]any{
		"mutations": []MutationSpec{{Op: "insert", U: 2, V: 57, W: 0.25}, {Op: "delete", U: 2, V: 57}},
	}, http.StatusOK)

	_, warm := runJob(JobSpec{Graph: "web", Algo: "sssp", Engine: "inc", Src: 2, Resume: coldID})
	if warm["cold"] != false || warm["resume"].(float64) != float64(coldID) || warm["epoch"].(float64) != epoch0+2 {
		t.Fatalf("warm status = %v", warm)
	}
	if warm["verdict"] != cold["verdict"] {
		t.Fatalf("verdict drifted: %v -> %v", cold["verdict"], warm["verdict"])
	}

	// Resume against an evicted/unknown job is a 404 at submit time.
	doJSON(t, "POST", ts.URL+"/v1/jobs",
		JobSpec{Graph: "web", Algo: "sssp", Engine: "inc", Src: 2, Resume: 4242}, http.StatusNotFound)
}
