package service

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	rt "vcgraph/internal/runtime"
)

// testGraph is the shared graph spec for the concurrency tests: a
// connected weighted graph so every served algorithm has meaningful
// output.
func testGraph(name string) GraphSpec {
	return GraphSpec{Name: name, Gen: "connected", N: 400, M: 1200, Seed: 7, Weights: true}
}

// mixedSpecs is the 16-job serving mix: every algorithm × engine pair
// in the matrix, plus fault-plan and FCS variants. Workers are pinned
// so lease shares (and therefore per-engine partitioning) are
// identical between serial and concurrent runs.
func mixedSpecs(graphName string) []JobSpec {
	w := 2
	return []JobSpec{
		{Graph: graphName, Algo: "pagerank", Engine: "pregel", Workers: w},
		{Graph: graphName, Algo: "pagerank", Engine: "gas", Workers: w},
		{Graph: graphName, Algo: "pagerank", Engine: "async"},
		{Graph: graphName, Algo: "pagerank", Engine: "blockcentric", Workers: w},
		{Graph: graphName, Algo: "sssp", Engine: "pregel", Workers: w},
		{Graph: graphName, Algo: "sssp", Engine: "gas", Workers: w},
		{Graph: graphName, Algo: "sssp", Engine: "async"},
		{Graph: graphName, Algo: "sssp", Engine: "blockcentric", Workers: w},
		{Graph: graphName, Algo: "cc", Engine: "pregel", Workers: w, FCS: 8},
		{Graph: graphName, Algo: "cc", Engine: "gas", Workers: w},
		{Graph: graphName, Algo: "cc", Engine: "async"},
		{Graph: graphName, Algo: "cc", Engine: "blockcentric", Workers: w},
		{Graph: graphName, Algo: "kcore", Engine: "pregel", Workers: w},
		{Graph: graphName, Algo: "pagerank", Engine: "pregel", Workers: w, Faults: 11},
		{Graph: graphName, Algo: "sssp", Engine: "pregel", Workers: w, Faults: 13},
		{Graph: graphName, Algo: "cc", Engine: "blockcentric", Workers: w, Faults: 17},
	}
}

func waitResult(t *testing.T, s *Server, job *rt.Job) *runResult {
	t.Helper()
	if err := job.Wait(); err != nil {
		t.Fatalf("job %d (%s): %v", job.ID(), job.Name(), err)
	}
	rec, err := s.JobRecord(job.ID())
	if err != nil {
		t.Fatal(err)
	}
	res := rec.result()
	if res == nil {
		t.Fatalf("job %d (%s): succeeded without result", job.ID(), job.Name())
	}
	return res
}

func bits(values []float64) []uint64 {
	out := make([]uint64, len(values))
	for i, v := range values {
		out[i] = math.Float64bits(v)
	}
	return out
}

// TestConcurrentJobsMatchSerial is the headline acceptance test: 16
// mixed jobs (all four algorithms across all four engines, three with
// deterministic fault plans, one with FCS) admitted 4-at-a-time over
// one shared pool must produce byte-identical results to the same
// specs run strictly one-at-a-time.
func TestConcurrentJobsMatchSerial(t *testing.T) {
	specs := mixedSpecs("g")

	serial := New(4, 1)
	defer serial.Close()
	if err := serial.RegisterGraph(testGraph("g")); err != nil {
		t.Fatal(err)
	}
	want := make([][]uint64, len(specs))
	for i, spec := range specs {
		job, err := serial.Submit(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		want[i] = bits(waitResult(t, serial, job).values)
	}

	conc := New(4, 4)
	defer conc.Close()
	if err := conc.RegisterGraph(testGraph("g")); err != nil {
		t.Fatal(err)
	}
	jobs := make([]*rt.Job, len(specs))
	for i, spec := range specs {
		job, err := conc.Submit(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		jobs[i] = job
	}
	for i, job := range jobs {
		got := bits(waitResult(t, conc, job).values)
		if len(got) != len(want[i]) {
			t.Fatalf("spec %d (%s/%s): %d values, want %d",
				i, specs[i].Algo, specs[i].Engine, len(got), len(want[i]))
		}
		for v := range got {
			if got[v] != want[i][v] {
				t.Fatalf("spec %d (%s/%s): vertex %d bits %#x != serial %#x",
					i, specs[i].Algo, specs[i].Engine, v, got[v], want[i][v])
			}
		}
	}
	if got := conc.Scheduler().InFlight(); got != 0 {
		t.Fatalf("inflight = %d after drain, want 0", got)
	}
}

// TestCancelledJobFreesLeaseAndPins cancels a job mid-run and checks
// the two resources the issue names: the scheduler admission slot and
// the pinned CSR snapshot are both released.
func TestCancelledJobFreesLeaseAndPins(t *testing.T) {
	s := New(2, 1)
	defer s.Close()
	if err := s.RegisterGraph(testGraph("g")); err != nil {
		t.Fatal(err)
	}
	// A PageRank long enough that cancellation always lands mid-run.
	job, err := s.Submit(JobSpec{Graph: "g", Algo: "pagerank", Engine: "pregel", Workers: 2, K: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for job.Steps() == 0 {
		time.Sleep(time.Millisecond)
	}
	ent, err := s.graph("g")
	if err != nil {
		t.Fatal(err)
	}
	if ent.g.Pins() == 0 {
		t.Fatal("running job holds no pinned snapshot")
	}
	if err := s.Cancel(job.ID()); err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := job.State(); st != rt.JobCancelled {
		t.Fatalf("state = %v, want cancelled", st)
	}
	if got := ent.g.Pins(); got != 0 {
		t.Fatalf("pins = %d after cancel, want 0", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Scheduler().InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d after cancel, want 0", s.Scheduler().InFlight())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSnapshotIsolationDifferential mutates the graph while a job is
// running and checks the job's result is byte-identical to a run with
// no concurrent mutation: the job computed on the snapshot it pinned,
// not on the moving graph. Run under -race this also proves the
// prepare-bracket locking keeps mutation and execution disjoint.
func TestSnapshotIsolationDifferential(t *testing.T) {
	spec := JobSpec{Graph: "g", Algo: "pagerank", Engine: "pregel", Workers: 2, K: 200}

	quiet := New(2, 1)
	defer quiet.Close()
	if err := quiet.RegisterGraph(testGraph("g")); err != nil {
		t.Fatal(err)
	}
	job, err := quiet.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := bits(waitResult(t, quiet, job).values)

	noisy := New(2, 1)
	defer noisy.Close()
	if err := noisy.RegisterGraph(testGraph("g")); err != nil {
		t.Fatal(err)
	}
	_, m0, _, _, _ := noisy.GraphInfo("g")
	job, err = noisy.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let the prepare phase pin its snapshot first, then hammer the
	// graph with edge additions for as long as the job runs.
	for job.Steps() == 0 {
		time.Sleep(time.Millisecond)
	}
	mutations := 0
	for !job.State().Terminal() {
		u := float64(mutations % 400)
		v := float64((mutations*31 + 1) % 400)
		if err := noisy.AddEdges("g", [][]float64{{u, v}}); err != nil {
			t.Fatal(err)
		}
		mutations++
	}
	got := bits(waitResult(t, noisy, job).values)
	_, m1, _, _, _ := noisy.GraphInfo("g")
	if mutations == 0 || m1 <= m0 {
		t.Fatalf("graph never mutated during the run (mutations=%d m %d->%d)", mutations, m0, m1)
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("vertex %d bits %#x != quiet-run %#x after %d concurrent mutations",
				v, got[v], want[v], mutations)
		}
	}
	// A job submitted after the mutations sees the republished graph.
	job, err = noisy.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	after := bits(waitResult(t, noisy, job).values)
	same := true
	for v := range after {
		if after[v] != want[v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("post-mutation job returned pre-mutation results: snapshot was not republished")
	}
}

// TestSubmitValidation checks the eager validation paths: unknown
// graph, unknown algorithm, and a pair outside the serving matrix all
// fail before anything queues.
func TestSubmitValidation(t *testing.T) {
	s := New(1, 1)
	defer s.Close()
	if err := s.RegisterGraph(GraphSpec{Name: "g", Gen: "path", N: 8}); err != nil {
		t.Fatal(err)
	}
	cases := []JobSpec{
		{Graph: "nope", Algo: "pagerank"},
		{Graph: "g", Algo: "mincut"},
		{Graph: "g", Algo: "kcore", Engine: "gas"},
		{Graph: "g", Algo: "pagerank", Mode: "sideways"},
	}
	for i, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Fatalf("case %d (%+v): Submit accepted an invalid spec", i, spec)
		}
	}
	if s.Scheduler().QueueLen() != 0 || s.Scheduler().InFlight() != 0 {
		t.Fatal("invalid specs reached the scheduler")
	}
}

// TestJobTimeout checks TimeoutMS cancels a run and classifies it as
// cancelled, not failed.
func TestJobTimeout(t *testing.T) {
	s := New(2, 1)
	defer s.Close()
	if err := s.RegisterGraph(testGraph("g")); err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(JobSpec{
		Graph: "g", Algo: "pagerank", Engine: "pregel", Workers: 2,
		K: 1 << 20, TimeoutMS: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if st := job.State(); st != rt.JobCancelled {
		t.Fatalf("state = %v, want cancelled", st)
	}
}

// TestRegisterGraphErrors covers registry validation.
func TestRegisterGraphErrors(t *testing.T) {
	s := New(1, 1)
	defer s.Close()
	if err := s.RegisterGraph(GraphSpec{Gen: "path", N: 4}); err == nil {
		t.Fatal("registered a graph with no name")
	}
	if err := s.RegisterGraph(GraphSpec{Name: "g", Gen: "hypercube", N: 4}); err == nil {
		t.Fatal("registered an unknown generator")
	}
	if err := s.RegisterGraph(GraphSpec{Name: "g", N: 4, Edges: [][]float64{{0, 9}}}); err == nil {
		t.Fatal("registered an out-of-range edge")
	}
	if err := s.RegisterGraph(GraphSpec{Name: "g", Gen: "path", N: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGraph(GraphSpec{Name: "g", Gen: "path", N: 4}); err == nil {
		t.Fatal("re-registered a taken name")
	}
	if err := s.AddEdges("g", [][]float64{{0, 1, 2, 3}}); err == nil {
		t.Fatal("accepted a malformed edge")
	}
	if err := s.AddEdges("missing", nil); err == nil {
		t.Fatal("added edges to an unknown graph")
	}
}
