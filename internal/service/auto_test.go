package service

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vcgraph/internal/graph"
	"vcgraph/internal/plan"
	"vcgraph/internal/vc"
)

// TestAutoJobEndToEnd serves engine-"auto" jobs and checks both halves
// of the contract: the results are byte-identical to a fixed-engine
// run of the same algorithm, and the decision log records what the
// planner chose (with the PlanTrace hook seeing every decision live).
func TestAutoJobEndToEnd(t *testing.T) {
	type traced struct {
		jobID int64
		d     plan.Decision
	}
	var mu sync.Mutex
	var seen []traced
	s := NewServer(Options{Workers: 4, MaxJobs: 1, PlanTrace: func(jobID int64, d plan.Decision) {
		mu.Lock()
		seen = append(seen, traced{jobID, d})
		mu.Unlock()
	}})
	defer s.Close()

	// A path graph: regular degrees, so the planner's initial pick for
	// the traversal algorithms is block-centric with range partitions.
	if err := s.RegisterGraph(GraphSpec{Name: "chain", Gen: "path", N: 300}); err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(JobSpec{Graph: "chain", Algo: "cc", Engine: "auto", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, s, job)
	if res.auto == nil || len(res.auto.Decisions) == 0 {
		t.Fatalf("auto job carried no decision log: %+v", res.auto)
	}
	if got := res.auto.Decisions[0].Plan; got.Engine != plan.EngineBlockcentric || got.Partition != plan.PartitionRange {
		t.Fatalf("path/cc initial plan = %+v, want blockcentric/range", got)
	}
	if res.auto.GraphStats.N != 300 {
		t.Fatalf("sampled stats %+v, want n=300", res.auto.GraphStats)
	}
	direct, err := vc.HashMinCC(graph.Path(300), vc.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range direct.Color {
		if res.values[v] != float64(c) {
			t.Fatalf("vertex %d: auto label %v != direct %v", v, res.values[v], c)
		}
	}
	mu.Lock()
	nTraced := len(seen)
	mu.Unlock()
	if nTraced == 0 {
		t.Fatal("PlanTrace observed no decisions")
	}
	mu.Lock()
	for _, tr := range seen {
		if tr.jobID != job.ID() {
			t.Fatalf("trace for job %d, want %d", tr.jobID, job.ID())
		}
	}
	mu.Unlock()

	// PageRank on a skewed graph: the planner picks GAS (fixed-K never
	// hands off) with degree-balanced partitions, and the ranks are
	// bitwise those of the plain pregel engine — GAS's globally
	// ascending gather folds sit in the canonical fold-order family.
	if err := s.RegisterGraph(GraphSpec{Name: "pl", Gen: "powerlaw", N: 400, M: 3, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	prJob, err := s.Submit(JobSpec{Graph: "pl", Algo: "pagerank", Engine: "auto", Workers: 1, K: 15})
	if err != nil {
		t.Fatal(err)
	}
	prRes := waitResult(t, s, prJob)
	if prRes.auto == nil || prRes.auto.Segments != 1 {
		t.Fatalf("fixed-K auto run split into %+v", prRes.auto)
	}
	if got := prRes.auto.Decisions[0].Plan; got.Engine != plan.EngineGAS || got.Partition != plan.PartitionDegree {
		t.Fatalf("powerlaw/pagerank initial plan = %+v, want gas/degree", got)
	}
	prDirect, err := vc.PageRank(graph.PreferentialAttachment(400, 3, 7), 0.85, 15, vc.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, want := bits(prRes.values), bits(prDirect.Ranks)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: auto rank bits %#x != pregel %#x", v, got[v], want[v])
		}
	}
}

// TestAutoJobHTTPPlanStatus checks the wire shape: an auto job's
// status JSON carries the "plan" object with the decision log and the
// sampled graph statistics.
func TestAutoJobHTTPPlanStatus(t *testing.T) {
	s := New(2, 1)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	doJSON(t, "POST", ts.URL+"/v1/graphs",
		GraphSpec{Name: "g", Gen: "grid", N: 12}, 201)
	sub := doJSON(t, "POST", ts.URL+"/v1/jobs",
		JobSpec{Graph: "g", Algo: "sssp", Engine: "auto", Workers: 2}, 202)
	jobURL := ts.URL + "/v1/jobs/" + jsonID(t, sub)

	var status map[string]any
	deadline := time.Now().Add(10 * time.Second)
	for {
		status = doJSON(t, "GET", jobURL, nil, 200)
		if st := status["state"].(string); st == "succeeded" || st == "failed" || st == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %v", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status["state"] != "succeeded" {
		t.Fatalf("job ended %v", status)
	}
	pl, ok := status["plan"].(map[string]any)
	if !ok {
		t.Fatalf("status has no plan object: %v", status)
	}
	decisions, ok := pl["decisions"].([]any)
	if !ok || len(decisions) == 0 {
		t.Fatalf("plan has no decisions: %v", pl)
	}
	first := decisions[0].(map[string]any)["plan"].(map[string]any)
	if first["engine"] != "gas" || first["partition"] != "hash" {
		t.Fatalf("grid/sssp initial plan = %v, want gas/hash (dense regular)", first)
	}
	gs, ok := pl["graph"].(map[string]any)
	if !ok || gs["n"].(float64) != 144 {
		t.Fatalf("plan graph stats = %v, want n=144", pl["graph"])
	}
	if pl["segments"].(float64) < 1 {
		t.Fatalf("plan segments = %v", pl["segments"])
	}
}

// TestEngineErrorEnumeratesRegistry pins the Submit error contract:
// a bad engine name lists the valid engines, derived from the serving
// matrix so the text tracks the registry.
func TestEngineErrorEnumeratesRegistry(t *testing.T) {
	s := New(1, 1)
	defer s.Close()
	if err := s.RegisterGraph(GraphSpec{Name: "g", Gen: "path", N: 8}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(JobSpec{Graph: "g", Algo: "pagerank", Engine: "warp"})
	if err == nil {
		t.Fatal("Submit accepted an unknown engine")
	}
	for _, want := range []string{"async", "auto", "blockcentric", "gas", "inc", "pregel"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list engine %q", err, want)
		}
	}
	_, err = s.Submit(JobSpec{Graph: "g", Algo: "kcore", Engine: "auto"})
	if err == nil {
		t.Fatal("kcore must not run on auto")
	}
	if !strings.Contains(err.Error(), "valid engines: pregel") {
		t.Fatalf("kcore error %q does not enumerate its single engine", err)
	}
}

func jsonID(t *testing.T, body map[string]any) string {
	t.Helper()
	id, ok := body["id"].(float64)
	if !ok {
		t.Fatalf("no id in %v", body)
	}
	return strconv.FormatInt(int64(id), 10)
}
