package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vcgraph/internal/graph"
	"vcgraph/internal/vc"
)

func doJSON(t *testing.T, method, url string, body any, wantCode int) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding body: %v", method, url, err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d, want %d (body %v)", method, url, resp.StatusCode, wantCode, out)
	}
	return out
}

// TestHTTPEndToEnd drives the full daemon surface over a live
// listener: health, register, submit, poll to completion, stream
// stats, and point-query — with the queried value checked against a
// direct library run of the same computation.
func TestHTTPEndToEnd(t *testing.T) {
	s := New(2, 2)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	health := doJSON(t, "GET", ts.URL+"/v1/healthz", nil, http.StatusOK)
	if health["ok"] != true || health["max_jobs"] != float64(2) {
		t.Fatalf("healthz = %v", health)
	}

	reg := doJSON(t, "POST", ts.URL+"/v1/graphs",
		GraphSpec{Name: "web", Gen: "connected", N: 300, M: 900, Seed: 5}, http.StatusCreated)
	if reg["n"] != float64(300) {
		t.Fatalf("register = %v", reg)
	}
	info := doJSON(t, "GET", ts.URL+"/v1/graphs/web", nil, http.StatusOK)
	if info["n"] != float64(300) || info["directed"] != false {
		t.Fatalf("graph info = %v", info)
	}

	sub := doJSON(t, "POST", ts.URL+"/v1/jobs",
		JobSpec{Graph: "web", Algo: "pagerank", Engine: "pregel", Workers: 2, K: 20}, http.StatusAccepted)
	id := int64(sub["id"].(float64))
	jobURL := fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id)

	var status map[string]any
	deadline := time.Now().Add(10 * time.Second)
	for {
		status = doJSON(t, "GET", jobURL, nil, http.StatusOK)
		if st := status["state"].(string); st == "succeeded" || st == "failed" || st == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %v", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status["state"] != "succeeded" {
		t.Fatalf("job ended %v", status)
	}
	if _, ok := status["verdict"].(string); !ok {
		t.Fatalf("no verdict in %v", status)
	}
	summary := status["summary"].(map[string]any)
	if summary["supersteps"].(float64) < 1 {
		t.Fatalf("summary = %v", summary)
	}

	stats := doJSON(t, "GET", jobURL+"/stats?since=0", nil, http.StatusOK)
	records := stats["records"].([]any)
	if len(records) == 0 {
		t.Fatalf("stats stream empty: %v", stats)
	}
	next := int(stats["next"].(float64))
	if next != len(records) {
		t.Fatalf("next = %d with %d records", next, len(records))
	}
	tail := doJSON(t, "GET", fmt.Sprintf("%s/stats?since=%d", jobURL, next), nil, http.StatusOK)
	if n, _ := tail["records"].([]any); len(n) != 0 {
		t.Fatalf("stats past the end returned %d records", len(n))
	}

	// The daemon's point query must match a direct library run on the
	// same generator graph.
	g := graph.RandomConnected(300, 900, 5)
	res, err := vc.PageRank(g, 0.85, 20, vc.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	query := doJSON(t, "GET", jobURL+"/query?vertex=17", nil, http.StatusOK)
	if got := query["value"].(float64); got != res.Ranks[17] {
		t.Fatalf("query value %v != library run %v", got, res.Ranks[17])
	}
}

// TestHTTPErrors checks the error mapping: 404 for unknown names, 400
// for malformed input, 409 for querying an unfinished job.
func TestHTTPErrors(t *testing.T) {
	s := New(2, 1)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	doJSON(t, "GET", ts.URL+"/v1/graphs/none", nil, http.StatusNotFound)
	doJSON(t, "GET", ts.URL+"/v1/jobs/99", nil, http.StatusNotFound)
	doJSON(t, "GET", ts.URL+"/v1/jobs/xyz", nil, http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/v1/jobs",
		JobSpec{Graph: "none", Algo: "pagerank"}, http.StatusNotFound)
	doJSON(t, "POST", ts.URL+"/v1/graphs",
		map[string]any{"name": "g", "gen": "path", "n": 8, "bogus": true}, http.StatusBadRequest)

	doJSON(t, "POST", ts.URL+"/v1/graphs",
		GraphSpec{Name: "g", Gen: "connected", N: 300, M: 900, Seed: 1}, http.StatusCreated)
	doJSON(t, "POST", ts.URL+"/v1/jobs",
		JobSpec{Graph: "g", Algo: "kcore", Engine: "async"}, http.StatusBadRequest)

	grown := doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges",
		map[string]any{"edges": [][]float64{{0, 7}, {1, 9, 0.5}}}, http.StatusOK)
	if grown["m"] != float64(902) {
		t.Fatalf("edge append = %v, want m=902", grown)
	}
	doJSON(t, "POST", ts.URL+"/v1/graphs/none/edges",
		map[string]any{"edges": [][]float64{{0, 1}}}, http.StatusNotFound)
	doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges",
		map[string]any{"edges": [][]float64{{0, 900}}}, http.StatusBadRequest)

	// Submit a long job; querying before completion is a conflict, and
	// the cancel endpoint tears it down.
	sub := doJSON(t, "POST", ts.URL+"/v1/jobs",
		JobSpec{Graph: "g", Algo: "pagerank", Workers: 2, K: 1 << 20}, http.StatusAccepted)
	id := int64(sub["id"].(float64))
	jobURL := fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id)
	doJSON(t, "GET", jobURL+"/query?vertex=0", nil, http.StatusConflict)
	doJSON(t, "POST", jobURL+"/cancel", nil, http.StatusOK)
	deadline := time.Now().Add(10 * time.Second)
	for {
		status := doJSON(t, "GET", jobURL, nil, http.StatusOK)
		if status["state"] == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel did not land: %v", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
