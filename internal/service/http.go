package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"vcgraph/internal/bsp"
)

// Handler returns the daemon's HTTP API:
//
//	GET  /v1/healthz                  liveness + scheduler load
//	POST /v1/graphs                   register a graph (GraphSpec body)
//	GET  /v1/graphs/{name}            graph shape + mutation epoch
//	POST /v1/graphs/{name}/edges      append edges {"edges": [[u,v,w?], ...]}
//	POST /v1/graphs/{name}/mutate     apply a mutation batch {"mutations": [{"op","u","v","w"?}, ...]}
//	POST /v1/jobs                     submit a job (JobSpec body)
//	GET  /v1/jobs/{id}                job status (+ result summary when done)
//	GET  /v1/jobs/{id}/stats?since=K  stream per-superstep records from K
//	POST /v1/jobs/{id}/cancel         cancel a queued or running job
//	GET  /v1/jobs/{id}/query?vertex=V point-query a finished job's value
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/graphs", s.handleRegisterGraph)
	mux.HandleFunc("GET /v1/graphs/{name}", s.handleGraphInfo)
	mux.HandleFunc("POST /v1/graphs/{name}/edges", s.handleAddEdges)
	mux.HandleFunc("POST /v1/graphs/{name}/mutate", s.handleMutate)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stats", s.handleJobStats)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/query", s.handleQuery)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// codeFor maps service errors to HTTP statuses: unknown names are 404,
// everything else raised at the API boundary is a bad request.
func codeFor(err error) int {
	if errors.Is(err, errUnknownGraph) || errors.Is(err, errUnknownJob) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"inflight": s.sched.InFlight(),
		"queued":   s.sched.QueueLen(),
		"max_jobs": s.sched.MaxJobs(),
	})
}

func (s *Server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	var spec GraphSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	if err := s.RegisterGraph(spec); err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	n, m, directed, epoch, _ := s.GraphInfo(spec.Name)
	writeJSON(w, http.StatusCreated, map[string]any{
		"name": spec.Name, "n": n, "m": m, "directed": directed, "epoch": epoch,
	})
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	n, m, directed, epoch, err := s.GraphInfo(r.PathValue("name"))
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name": r.PathValue("name"), "n": n, "m": m, "directed": directed, "epoch": epoch,
	})
}

func (s *Server) handleAddEdges(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Edges [][]float64 `json:"edges"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	if err := s.AddEdges(r.PathValue("name"), body.Edges); err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	n, m, directed, epoch, _ := s.GraphInfo(r.PathValue("name"))
	writeJSON(w, http.StatusOK, map[string]any{
		"name": r.PathValue("name"), "n": n, "m": m, "directed": directed, "epoch": epoch,
	})
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Mutations []MutationSpec `json:"mutations"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	epoch, err := s.MutateGraph(r.PathValue("name"), body.Mutations)
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	n, m, directed, _, _ := s.GraphInfo(r.PathValue("name"))
	writeJSON(w, http.StatusOK, map[string]any{
		"name": r.PathValue("name"), "n": n, "m": m, "directed": directed, "epoch": epoch,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": job.ID(), "state": job.State().String(),
	})
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*jobRecord, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false
	}
	rec, err := s.JobRecord(id)
	if err != nil {
		writeErr(w, codeFor(err), err)
		return nil, false
	}
	return rec, true
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	job := rec.job
	status := map[string]any{
		"id":      job.ID(),
		"name":    job.Name(),
		"graph":   rec.spec.Graph,
		"state":   job.State().String(),
		"workers": job.Workers(),
		"steps":   job.Steps(),
	}
	if rec.spec.Incremental {
		status["incremental"] = true
		if rec.spec.Resume != 0 {
			status["resume"] = rec.spec.Resume
		}
	}
	if err := job.Err(); err != nil {
		status["error"] = err.Error()
	}
	if res := rec.result(); res != nil {
		status["verdict"] = res.verdict
		status["summary"] = res.summary
		status["epoch"] = res.epoch
		if res.inc != nil {
			status["cold"] = res.inc.cold()
		}
		if res.auto != nil {
			status["plan"] = res.auto
		}
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleJobStats(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	since := 0
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		since = n
	}
	trace := rec.job.TraceSince(since)
	records := make([]bsp.SuperstepRecord, len(trace))
	for i, ss := range trace {
		records[i] = bsp.Record(since+i, ss)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"records": records,
		"next":    since + len(records),
		"state":   rec.job.State().String(),
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	rec.job.Cancel(nil)
	writeJSON(w, http.StatusOK, map[string]any{
		"id": rec.job.ID(), "state": rec.job.State().String(),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	res := rec.result()
	if res == nil {
		writeErr(w, http.StatusConflict,
			errors.New("service: job has no result (state "+rec.job.State().String()+")"))
		return
	}
	v, err := strconv.Atoi(r.URL.Query().Get("vertex"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if v < 0 || v >= len(res.values) {
		writeErr(w, http.StatusBadRequest,
			errors.New("service: vertex out of range"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": rec.job.ID(), "vertex": v, "value": res.values[v],
	})
}
