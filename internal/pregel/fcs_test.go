package pregel

import (
	"testing"

	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// fcsProgram is hash-min with a serial finisher, self-contained for the
// engine tests.
type fcsProgram struct{}

func (fcsProgram) Init(g *graph.Graph, id VertexID) VertexID { return id }

func (fcsProgram) Compute(ctx *Context[VertexID, VertexID], msgs []VertexID) {
	v := ctx.Value()
	min := *v
	for _, m := range msgs {
		if m < min {
			min = m
		}
	}
	if min < *v || ctx.Superstep() == 0 {
		*v = min
		ctx.SendToNeighbors(*v)
	}
	ctx.VoteToHalt()
}

func (fcsProgram) FinishSerially(fc *FinishContext[VertexID, VertexID]) int64 {
	var work int64
	queue := append([]VertexID(nil), fc.Active()...)
	for _, v := range fc.Active() {
		for _, m := range fc.Inbox(v) {
			work++
			if m < *fc.Value(v) {
				*fc.Value(v) = m
			}
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		label := *fc.Value(v)
		for _, e := range fc.OutEdges(v) {
			work++
			if label < *fc.Value(e.Dst) {
				*fc.Value(e.Dst) = label
				queue = append(queue, e.Dst)
			}
		}
	}
	return work
}

func TestFCSMatchesFullRun(t *testing.T) {
	// A path with permuted IDs: after a few supersteps only the global
	// minimum's wavefront stays active (each vertex's label changes
	// O(log n) times in expectation on random orderings), which is the
	// long thin tail FCS exists for.
	g := permutedPath(512, 7)
	run := func(threshold int) ([]VertexID, int) {
		eng := NewEngine[VertexID, VertexID](g, fcsProgram{}, Config[VertexID]{
			Workers: 3, FCSThreshold: threshold,
		})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Values, res.Supersteps
	}
	clean, cleanSS := run(0)
	fcs, fcsSS := run(32)
	for v := range clean {
		if clean[v] != fcs[v] {
			t.Fatalf("vertex %d: clean=%d fcs=%d", v, clean[v], fcs[v])
		}
	}
	// The single-wavefront tail dominates the clean run: FCS must cut
	// the superstep count drastically.
	if fcsSS*4 > cleanSS {
		t.Fatalf("FCS supersteps %d vs clean %d: expected >4x reduction", fcsSS, cleanSS)
	}
}

// permutedPath is a path over randomly permuted vertex IDs.
func permutedPath(n int, seed int64) *graph.Graph {
	g := graph.New(n, false)
	perm := permIDs(n, seed)
	for i := 0; i < n-1; i++ {
		g.AddEdge(perm[i], perm[i+1])
	}
	g.SortAdjacency()
	return g
}

func permIDs(n int, seed int64) []VertexID {
	out := make([]VertexID, n)
	for i := range out {
		out[i] = VertexID(i)
	}
	s := uint64(seed)*2862933555777941757 + 3037000493
	for i := n - 1; i > 0; i-- {
		s = s*2862933555777941757 + 3037000493
		j := int(s % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func TestFCSTriggersOnlyBelowThreshold(t *testing.T) {
	// On a star, hash-min finishes in 3 supersteps with a big frontier;
	// threshold 1 never triggers.
	g := graph.Star(64)
	eng := NewEngine[VertexID, VertexID](g, fcsProgram{}, Config[VertexID]{
		Workers: 2, FCSThreshold: 1,
	})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for v, val := range res.Values {
		if val != 0 {
			t.Fatalf("vertex %d label %d", v, val)
		}
	}
}

// TestFCSPinsPushOnTinyFrontierUnderAutoPull checks the FCS × auto
// interaction: with a vanishing pull threshold auto mode pulls every
// superstep, but once the frontier is at or below the FCS threshold a
// pulled superstep would scan all n broadcast slots to serve a
// frontier the serial finisher is about to absorb — so the engine pins
// push there. Results must not change.
func TestFCSPinsPushOnTinyFrontierUnderAutoPull(t *testing.T) {
	g := permutedPath(512, 11)
	minC := func(a, b graph.VertexID) graph.VertexID {
		if a < b {
			return a
		}
		return b
	}
	run := func(fcs int) ([]VertexID, []struct {
		frontier int
		pulled   bool
	}) {
		eng := NewEngine[VertexID, VertexID](g, fcsProgram{}, Config[VertexID]{
			Workers: 3, Mode: rt.DirectionAuto, PullThreshold: 1e-9,
			Combiner: minC, FCSThreshold: fcs,
		})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		steps := make([]struct {
			frontier int
			pulled   bool
		}, len(res.Stats.Supersteps))
		for i, ss := range res.Stats.Supersteps {
			var active int64
			for _, a := range ss.Active {
				active += a
			}
			steps[i] = struct {
				frontier int
				pulled   bool
			}{int(active), ss.Pulled}
		}
		return res.Values, steps
	}

	clean, cleanSteps := run(0)
	for i, st := range cleanSteps {
		if st.frontier > 0 && !st.pulled {
			t.Fatalf("no-FCS superstep %d (frontier %d) pushed under a vanishing pull threshold", i, st.frontier)
		}
	}

	fcs, fcsSteps := run(32)
	for v := range clean {
		if clean[v] != fcs[v] {
			t.Fatalf("vertex %d: clean=%d fcs=%d", v, clean[v], fcs[v])
		}
	}
	sawPull, sawPinnedPush := false, false
	for i, st := range fcsSteps {
		if st.frontier > 32 {
			if !st.pulled {
				t.Fatalf("dense superstep %d (frontier %d) was not pulled", i, st.frontier)
			}
			sawPull = true
		} else if st.frontier > 0 {
			if st.pulled {
				t.Fatalf("tiny-frontier superstep %d (frontier %d) pulled despite the FCS pin", i, st.frontier)
			}
			sawPinnedPush = true
		}
	}
	if !sawPull || !sawPinnedPush {
		t.Fatalf("run exercised pull=%v pinned-push=%v; want both", sawPull, sawPinnedPush)
	}
}

func TestFCSWithoutFinisherIsIgnored(t *testing.T) {
	// echoProgram has no FinishSerially: threshold must be a no-op.
	g := graph.Cycle(16)
	eng := NewEngine[int, int](g, &echoProgram{rounds: 3}, Config[int]{
		Workers: 2, FCSThreshold: 100,
	})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range res.Values {
		if got != 6 {
			t.Fatalf("value %d, want 6", got)
		}
	}
}

func TestFCSChargesSerialWorkToOneWorker(t *testing.T) {
	g := graph.Path(256)
	eng := NewEngine[VertexID, VertexID](g, fcsProgram{}, Config[VertexID]{
		Workers: 4, FCSThreshold: 4,
	})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	last := res.Stats.Supersteps[len(res.Stats.Supersteps)-1]
	if last.Work[0] == 0 {
		t.Fatal("serial step carries no work")
	}
	for w := 1; w < 4; w++ {
		if last.Work[w] != 0 {
			t.Fatalf("serial step leaked work to worker %d", w)
		}
	}
}
