package pregel

import (
	"testing"

	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// ckProgram floods minimum IDs (hash-min style) and carries master
// state (a round counter) to exercise Snapshotter.
type ckProgram struct {
	rounds int // master state
}

func (p *ckProgram) Init(g *graph.Graph, id VertexID) VertexID { return id }

func (p *ckProgram) BeforeSuperstep(mc *MasterContext) { p.rounds++ }

func (p *ckProgram) Snapshot() any { return p.rounds }

func (p *ckProgram) Restore(s any) {
	if s == nil {
		p.rounds = 0
		return
	}
	p.rounds = s.(int)
}

func (p *ckProgram) Compute(ctx *Context[VertexID, VertexID], msgs []VertexID) {
	v := ctx.Value()
	min := *v
	for _, m := range msgs {
		if m < min {
			min = m
		}
	}
	if min < *v || ctx.Superstep() == 0 {
		*v = min
		ctx.SendToNeighbors(*v)
	}
	ctx.VoteToHalt()
}

func runCK(t *testing.T, g *graph.Graph, cfg Config[VertexID]) ([]VertexID, int, int) {
	t.Helper()
	prog := &ckProgram{}
	eng := NewEngine[VertexID, VertexID](g, prog, cfg)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Values, res.Supersteps, eng.Recoveries()
}

func TestCheckpointRecoveryMatchesCleanRun(t *testing.T) {
	g := graph.Path(64)
	clean, cleanSS, _ := runCK(t, g, Config[VertexID]{Workers: 3})
	for _, failAt := range []int{1, 5, 17, 40} {
		vals, ss, recov := runCK(t, g, Config[VertexID]{
			Workers:         3,
			CheckpointEvery: 8,
			Faults:          rt.PlanOf(rt.Crash(failAt)),
		})
		if recov != 1 {
			t.Fatalf("failAt=%d: recoveries=%d, want 1", failAt, recov)
		}
		for v := range clean {
			if vals[v] != clean[v] {
				t.Fatalf("failAt=%d vertex %d: %d != clean %d", failAt, v, vals[v], clean[v])
			}
		}
		// Recovery re-executes supersteps: the run is at least as long.
		if ss < cleanSS {
			t.Fatalf("failAt=%d: recovered run shorter (%d) than clean (%d)", failAt, ss, cleanSS)
		}
	}
}

func TestFailureWithoutCheckpointRestartsFromScratch(t *testing.T) {
	g := graph.Path(32)
	clean, _, _ := runCK(t, g, Config[VertexID]{Workers: 2})
	vals, _, recov := runCK(t, g, Config[VertexID]{Workers: 2, Faults: rt.PlanOf(rt.Crash(9))})
	if recov != 1 {
		t.Fatalf("recoveries=%d", recov)
	}
	for v := range clean {
		if vals[v] != clean[v] {
			t.Fatalf("vertex %d: %d != %d", v, vals[v], clean[v])
		}
	}
}

// cloneProgram verifies ValueCloner is used for reference-typed values.
type cloneProgram struct{}

type cloneVal struct{ seen []VertexID }

func (cloneProgram) Init(g *graph.Graph, id VertexID) cloneVal { return cloneVal{} }

func (cloneProgram) CloneValue(v cloneVal) cloneVal {
	return cloneVal{seen: append([]VertexID(nil), v.seen...)}
}

func (cloneProgram) Compute(ctx *Context[cloneVal, VertexID], msgs []VertexID) {
	v := ctx.Value()
	for _, m := range msgs {
		v.seen = append(v.seen, m)
	}
	if ctx.Superstep() < 6 {
		ctx.SendToNeighbors(ctx.ID())
		return
	}
	ctx.VoteToHalt()
}

func TestCheckpointDeepCopiesWithValueCloner(t *testing.T) {
	g := graph.Cycle(8)
	run := func(cfg Config[VertexID]) [][]VertexID {
		eng := NewEngine[cloneVal, VertexID](g, cloneProgram{}, cfg)
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]VertexID, len(res.Values))
		for i, v := range res.Values {
			out[i] = v.seen
		}
		return out
	}
	clean := run(Config[VertexID]{Workers: 2})
	recovered := run(Config[VertexID]{Workers: 2, CheckpointEvery: 2, Faults: rt.PlanOf(rt.Crash(5))})
	for v := range clean {
		if len(clean[v]) != len(recovered[v]) {
			t.Fatalf("vertex %d: %d messages vs %d after recovery", v, len(clean[v]), len(recovered[v]))
		}
	}
}

func TestCheckpointWithMasterStateAndGlobals(t *testing.T) {
	// The ckProgram master increments rounds each superstep; after a
	// rollback the counter must rewind with the computation, so the
	// total is deterministic given the failure point.
	g := graph.Path(16)
	prog := &ckProgram{}
	eng := NewEngine[VertexID, VertexID](g, prog, Config[VertexID]{
		Workers: 2, CheckpointEvery: 4, Faults: rt.PlanOf(rt.Crash(7)),
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Recoveries() != 1 {
		t.Fatalf("recoveries = %d", eng.Recoveries())
	}
}
