// Package pregel implements a vertex-centric bulk-synchronous-parallel
// graph processing engine in the style of Google's Pregel: computation
// proceeds in globally synchronous supersteps; in each superstep a
// user-supplied Compute function runs for every active vertex, consumes
// the messages addressed to the vertex in the previous superstep, sends
// messages to arbitrary vertices, votes to halt, and optionally mutates
// the vertex's own adjacency list. The engine supports message
// combiners, named aggregators, and a master-compute hook for
// multi-phase algorithms.
//
// The engine is fully instrumented: it records, per superstep and per
// worker, the local work and message volume that Valiant's BSP cost
// model charges (see internal/bsp), and it tracks the per-vertex
// balance evidence needed to check the BPPA properties of Yan et al.
package pregel

import (
	"context"
	"math/rand"
	"slices"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// VertexID aliases graph.VertexID for convenience.
type VertexID = graph.VertexID

// Program is a vertex program: Init produces the initial value of each
// vertex; Compute is invoked once per active vertex per superstep with
// the messages delivered to it.
type Program[V, M any] interface {
	Init(g *graph.Graph, id VertexID) V
	Compute(ctx *Context[V, M], msgs []M)
}

// Master is an optional extension of Program: BeforeSuperstep runs
// once, single-threaded, before every superstep. It can inspect
// aggregator values from the previous superstep, publish globals,
// switch phases, re-activate all vertices, or halt the computation.
type Master interface {
	BeforeSuperstep(mc *MasterContext)
}

// StateSizer is an optional extension of Program: when implemented, the
// engine samples StateUnits after each vertex computation to check the
// BPPA space property (P1).
type StateSizer[V any] interface {
	StateUnits(v *V) int64
}

// Combiner merges two messages addressed to the same vertex.
type Combiner[M any] func(a, b M) M

// Aggregator reduces values contributed by vertices during a superstep
// into a single value visible in the next superstep. Reduce must be
// associative and commutative.
type Aggregator interface {
	Zero() any
	Reduce(a, b any) any
}

// Config controls an engine run.
type Config[M any] struct {
	// Workers is the number of parallel workers (the P of the
	// time-processor product). Defaults to min(4, GOMAXPROCS).
	Workers int
	// MaxSupersteps caps the run; exceeding it makes Run return
	// ErrSuperstepCap. Defaults to 1 + 10·(n + 64).
	MaxSupersteps int
	// Combiner, when set, merges messages per destination vertex.
	Combiner Combiner[M]
	// MessageLess, when set, sorts each vertex's inbox before Compute,
	// making message order deterministic regardless of worker count.
	MessageLess func(a, b M) bool
	// Seed feeds Context.Rand. Defaults to 1.
	Seed int64
	// FCSThreshold enables "finishing computations serially": when the
	// active-vertex count drops to this value or below and the program
	// implements SerialFinisher, the computation is completed
	// sequentially in one final step (0 = disabled).
	FCSThreshold int
	// Partition assigns vertices to workers; nil means PartitionHash.
	// Partitioning changes per-worker load (and hence the measured BSP
	// superstep costs) but never results.
	Partition Partitioner
	// Snapshot, when non-nil, is an already-pinned CSR generation the
	// engine must run against instead of pinning the graph's current
	// one — the adaptive plan layer re-prepares engines mid-job and
	// every segment must see the same snapshot even if writers
	// republished in between. The engine takes (and releases) its own
	// reference on it via Graph.PinSnapshot.
	Snapshot *graph.CSR
	// Replan, when non-nil, is consulted at every superstep barrier
	// (after rollback, before compute); returning true aborts the run
	// with runtime.ErrHandoff and the values at the barrier — the live
	// engine-handoff hook (see runtime.DriverConfig.Replan).
	Replan func(step, pending int) bool
	// CheckpointEvery, when positive, snapshots the full computation
	// state every k supersteps (Pregel fault tolerance; see
	// checkpoint.go for the deep-copy contract).
	CheckpointEvery int
	// FullSnapshotEvery, when > 1, stores only every Nth checkpoint as
	// a full snapshot; the saves in between are dirty-set delta frames
	// covering just the vertices that computed, received mail, or
	// mutated adjacency since the previous frame (see checkpoint.go).
	FullSnapshotEvery int
	// Faults, when non-nil, schedules deterministic fault injection
	// for the run: worker crashes at barriers, dropped/duplicated
	// mailbox lanes, and corrupted checkpoints, all reproducible from
	// the plan's seed (see runtime.FaultPlan). Crashes and dropped
	// lanes roll the engine back to its last readable checkpoint.
	Faults *rt.FaultPlan
	// Mode selects the message path direction: push (every message is
	// materialized through the mailbox), pull (supersteps with a
	// combiner gather broadcasts over CSR transpose spans), or auto
	// (the default: pull when the active frontier is dense). Pull
	// requires a Combiner; without one every superstep pushes.
	Mode rt.DirectionMode
	// PullThreshold overrides the auto-mode frontier density above
	// which a superstep is pulled, as a fraction of n
	// (<= 0 means runtime.DefaultPullThreshold, 1/20).
	PullThreshold float64
	// Ctx, when non-nil, aborts the run at the next superstep barrier
	// once cancelled or past its deadline (see runtime.DriverConfig).
	Ctx context.Context
	// Pool, when non-nil, is a shared worker pool to lease workers from
	// instead of building a private pool for the run.
	Pool *rt.Pool
	// Job, when non-nil, binds the run to a scheduler-admitted job:
	// Workers is taken from the job's lease, the run executes under the
	// job's context, and superstep records stream to the handle.
	Job *rt.Job
}

// ErrSuperstepCap reports that the run exceeded Config.MaxSupersteps.
// It aliases bsp.ErrSuperstepCap, the sentinel shared by every engine,
// so errors.Is works across engines.
var ErrSuperstepCap = bsp.ErrSuperstepCap

// Result is the outcome of a run.
type Result[V any] struct {
	// Values holds the final vertex values, indexed by VertexID.
	Values []V
	// Stats is the instrumentation record consumed by internal/bsp.
	Stats *bsp.Stats
	// Aggregates holds the final value of every registered aggregator.
	Aggregates map[string]any
	// Supersteps is the number of supersteps executed.
	Supersteps int
}

// maxima tracks one worker's running per-vertex BPPA ratio maxima
// within a superstep.
type maxima struct {
	state, compute, sent, recv float64
}

// Engine executes a Program over a graph. Message routing, worker
// scheduling, and active-vertex tracking sit on the shared primitives
// of internal/runtime: a persistent worker pool, sharded mailboxes
// with sender-side combining, and per-worker worklists.
type Engine[V, M any] struct {
	g    *graph.Graph
	prog Program[V, M]
	cfg  Config[M]

	values   []V
	pristine []V // Init-time copy for checkpoint-free restarts (faults only)
	halted   []bool
	// dirty marks vertices whose engine-visible state may have changed
	// since the last checkpoint frame: computed vertices (value, halt
	// flag, inbox reset, adjacency mutation), mail receivers (inbox,
	// raw count), and master reactivations. Snapshot/SnapshotDelta
	// clear it; delta frames carry exactly this set.
	dirty   []bool
	csr     *graph.CSR     // pinned immutable adjacency snapshot, the hot-loop view
	adj     [][]graph.Edge // per-vertex materialized/mutated out-edges; nil = read the CSR
	mutated []bool         // adj[v] diverges from the snapshot (SetOutEdges)
	inadj   [][]graph.Edge // per-vertex lazily materialized in-edges (CSR transpose)
	deg     []int          // original total degree, for BPPA ratios

	ownerOf []int32      // vertex -> worker
	verts   [][]VertexID // worker -> owned vertices

	mbox   *rt.Mailbox[M]                // sharded outbox lanes + per-vertex inboxes
	wl     *rt.Worklists                 // vertices to compute next superstep
	driver *rt.Driver[*checkpoint[V, M]] // shared superstep kernel, live for one Run

	// Direction-optimizing execution (nil/false unless a combiner is
	// registered and Mode permits pull): per-vertex broadcast slots
	// written during pulled compute phases and per-worker gather
	// scratch that folds transpose spans in push-identical order.
	bcast    *rt.Broadcasts[M]
	gather   []*rt.Gatherer[M]
	pullStep bool // current superstep runs the pull path

	// Per-superstep scratch, allocated once per engine. scratch holds
	// each worker's span-decode buffers: on a packed snapshot OutSpan/
	// InSpan decode into them, on a flat snapshot they alias the CSR
	// arrays and the buffers stay nil.
	ctxs      []Context[V, M]
	scratch   []*graph.Scratch // pooled span-decode buffers, returned when Run ends
	workerMax []maxima
	delivered []int64
	placed    []int64
	pulledRaw []int64          // raw messages gathered per worker (pull steps)
	onMail    []func(VertexID) // per-worker worklist hook for delivery

	aggs        map[string]Aggregator
	aggCurrent  map[string]any // finalized, visible this superstep
	aggPartials []map[string]any
	globals     map[string]any

	stats     *bsp.Stats
	superstep int

	sizer StateSizer[V]

	masterHalt  bool
	activateAll bool

	dropScratch []bool // per-worker drop flags filled during delivery
	recoveries  int
}

// NewEngine builds an engine for prog over g: the prepare phase. It
// pins the graph's CSR snapshot, partitions, and seeds every vertex
// value with prog.Init — every read of the mutable graph happens here,
// so a serving layer can construct engines under a graph read lock and
// Run them lock-free while writers mutate and republish. Programs read
// adjacency through the pinned snapshot; a vertex that mutates its
// out-edges via Context.SetOutEdges gets a private materialized copy,
// so the input graph is never modified.
func NewEngine[V, M any](g *graph.Graph, prog Program[V, M], cfg Config[M]) *Engine[V, M] {
	csr := cfg.Snapshot
	if csr == nil {
		csr = g.Pin()
	} else {
		g.PinSnapshot(csr)
	}
	n := csr.N()
	if cfg.Job != nil {
		cfg.Workers = cfg.Job.Workers()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = rt.DefaultWorkers()
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 1 + 10*(n+64)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	e := &Engine[V, M]{
		g:       g,
		prog:    prog,
		cfg:     cfg,
		values:  make([]V, n),
		halted:  make([]bool, n),
		dirty:   make([]bool, n),
		csr:     csr,
		adj:     make([][]graph.Edge, n),
		mutated: make([]bool, n),
		deg:     make([]int, n),
		aggs:    make(map[string]Aggregator),
		globals: make(map[string]any),
		stats:   &bsp.Stats{Workers: cfg.Workers, N: n},
	}
	if g.Directed {
		// In-edge reads (Context.InEdges, degree ratios) come from the
		// snapshot's transpose, never from the live graph.
		e.csr.EnsureIn()
		e.inadj = make([][]graph.Edge, n)
	}
	for v := 0; v < n; v++ {
		e.deg[v] = e.csr.TotalDegree(VertexID(v))
	}
	for v := 0; v < n; v++ {
		e.values[v] = prog.Init(g, VertexID(v))
	}
	if cfg.Faults != nil {
		// A rollback with no readable checkpoint restarts from scratch;
		// keep a pristine copy so the restart never re-reads the graph.
		e.pristine = rt.CloneValues[V](prog, e.values)
	}
	if cfg.Partition != nil {
		e.ownerOf = cfg.Partition(g, cfg.Workers)
	} else {
		// The default hash partition sizes from the pinned snapshot, not
		// the live graph, which may have grown past it.
		e.ownerOf = rt.PartitionHashN(n, cfg.Workers)
	}
	e.verts = rt.GroupByOwner("pregel", e.ownerOf, cfg.Workers)
	e.mbox = rt.NewMailbox[M](cfg.Workers, e.ownerOf, cfg.Combiner)
	e.wl = rt.NewWorklists(cfg.Workers, n)
	if cfg.Combiner != nil && cfg.Mode != rt.DirectionPush {
		// Pull path: broadcast slots plus per-worker gather scratch
		// over the CSR transpose (shared with the out-CSR for
		// undirected graphs, built once with a counting sort for
		// directed ones).
		e.csr.EnsureIn()
		e.bcast = rt.NewBroadcasts[M](n)
		e.gather = make([]*rt.Gatherer[M], cfg.Workers)
		for w := range e.gather {
			e.gather[w] = rt.NewGatherer[M](cfg.Workers)
		}
	}
	e.ctxs = make([]Context[V, M], cfg.Workers)
	e.scratch = rt.GetScratches(cfg.Workers)
	e.workerMax = make([]maxima, cfg.Workers)
	e.delivered = make([]int64, cfg.Workers)
	e.placed = make([]int64, cfg.Workers)
	e.pulledRaw = make([]int64, cfg.Workers)
	e.onMail = make([]func(VertexID), cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		e.ctxs[w] = Context[V, M]{engine: e, worker: w}
		// Delivery marks receivers dirty: the hook fires exactly once per
		// vertex receiving mail in a superstep (rawRecv is zero at the
		// first deposit — computed vertices reset theirs), and worker w
		// only touches vertices it owns, so the write is race-free.
		e.onMail[w] = func(v VertexID) {
			e.dirty[v] = true
			e.wl.Add(w, v)
		}
	}
	e.aggPartials = make([]map[string]any, cfg.Workers)
	for w := range e.aggPartials {
		e.aggPartials[w] = make(map[string]any)
	}
	if s, ok := prog.(StateSizer[V]); ok {
		e.sizer = s
	}
	return e
}

// RegisterAggregator registers a named aggregator. Must be called
// before Run.
func (e *Engine[V, M]) RegisterAggregator(name string, a Aggregator) {
	e.aggs[name] = a
}

// Graph returns the input graph.
func (e *Engine[V, M]) Graph() *graph.Graph { return e.g }

func (e *Engine[V, M]) owner(v VertexID) int { return int(e.ownerOf[v]) }

// outEdges returns v's current out-adjacency as []Edge, materializing
// it from the CSR snapshot on first request and caching the copy. Only
// v's owner worker touches adj[v] during parallel phases, so the lazy
// fill is race-free. Hot paths that don't need Edge values use
// Context.ForEachOut / Context.OutDegree and never materialize.
func (e *Engine[V, M]) outEdges(v VertexID) []graph.Edge {
	if a := e.adj[v]; a != nil || e.mutated[v] {
		return a
	}
	d := e.csr.OutDegree(v)
	if d == 0 {
		return nil
	}
	a := e.csr.AppendOutEdges(make([]graph.Edge, 0, d), v)
	e.adj[v] = a
	return a
}

// inEdges returns v's in-adjacency as []Edge (directed graphs),
// materializing it from the CSR transpose on first request and caching
// the copy. Only v's owner worker requests it during parallel phases
// (Compute runs on owned vertices), so the lazy fill is race-free.
func (e *Engine[V, M]) inEdges(v VertexID) []graph.Edge {
	if a := e.inadj[v]; a != nil {
		return a
	}
	d := e.csr.InDegree(v)
	if d == 0 {
		return nil
	}
	a := e.csr.AppendInEdges(make([]graph.Edge, 0, d), v)
	e.inadj[v] = a
	return a
}

// Run executes the program to termination: when every vertex has voted
// to halt and no messages are in flight, or when the master halts. It
// returns ErrSuperstepCap (with the partial Result) if the cap is hit.
// The superstep lifecycle — dispatch, fault firing, checkpoint cadence,
// rollback, halting, cost accounting — is owned by the shared
// runtime.Driver; the engine contributes the pregel policy below.
func (e *Engine[V, M]) Run() (*Result[V], error) {
	defer e.g.Unpin(e.csr)
	defer rt.PutScratches(e.scratch)
	e.aggCurrent = make(map[string]any, len(e.aggs))
	for name, a := range e.aggs {
		e.aggCurrent[name] = a.Zero()
	}
	e.dropScratch = make([]bool, e.cfg.Workers)

	// Every vertex computes at superstep 0 (values were seeded by
	// NewEngine; Run itself never reads the mutable graph).
	e.wl.FillAll(e.verts)

	e.driver = rt.NewDriver[*checkpoint[V, M]](e, e.stats, rt.DriverConfig{
		Name:              "pregel",
		Workers:           e.cfg.Workers,
		MaxSteps:          e.cfg.MaxSupersteps,
		CapErr:            ErrSuperstepCap,
		CheckpointEvery:   e.cfg.CheckpointEvery,
		FullSnapshotEvery: e.cfg.FullSnapshotEvery,
		Faults:            e.cfg.Faults,
		Ctx:               e.cfg.Ctx,
		Pool:              e.cfg.Pool,
		Job:               e.cfg.Job,
		Replan:            e.cfg.Replan,
	})
	steps, err := e.driver.Run()
	e.driver = nil
	e.superstep = steps
	return &Result[V]{
		Values:     e.values,
		Stats:      e.stats,
		Aggregates: e.aggCurrent,
		Supersteps: steps,
	}, err
}

// BeforeSuperstep implements runtime.MasterPolicy: the single-threaded
// master-compute hook, which can publish globals, re-activate every
// vertex, or halt the run.
func (e *Engine[V, M]) BeforeSuperstep(step, pending int) (halt bool) {
	e.superstep = step
	e.activateAll = false
	if master, hasMaster := e.prog.(Master); hasMaster {
		mc := &MasterContext{engine: anyEngine{setGlobal: e.setGlobal, agg: e.aggValue, activate: func() { e.activateAll = true }, halt: func() { e.masterHalt = true }}, superstep: step, pending: pending, frontier: e.wl.Pending()}
		master.BeforeSuperstep(mc)
		if e.masterHalt {
			return true
		}
	}
	if e.activateAll {
		// Reactivation flips halt flags outside any compute phase; the
		// formerly-halted vertices must reach the next delta frame.
		for v := range e.halted {
			if e.halted[v] {
				e.halted[v] = false
				e.dirty[v] = true
			}
		}
		e.wl.FillAll(e.verts)
	}
	return false
}

// Quiescent implements runtime.Policy: a vertex computes if it is
// active or has mail; the worklist holds exactly those vertices, so the
// check is an O(P) counter read instead of an O(n) halt-flag scan.
func (e *Engine[V, M]) Quiescent(step, pending int) bool { return e.wl.Pending() == 0 }

// Superstep implements runtime.Policy: one compute + delivery round,
// returning the number of raw messages delivered for the next
// superstep.
func (e *Engine[V, M]) Superstep(step int, ss *bsp.SuperstepStats) (int, error) {
	e.superstep = step
	p := e.cfg.Workers
	for w := range e.workerMax {
		e.workerMax[w] = maxima{}
	}
	inj := e.driver.Injector()

	// Direction choice: pull this superstep when a combiner exists and
	// the frontier about to compute is dense enough (worklist size is
	// rebuilt identically after a rollback, so replay re-picks the same
	// mode). In a pulled superstep SendToNeighbors publishes a
	// broadcast slot instead of materializing per-edge mailbox
	// messages; destinations gather over their transpose spans below.
	// Frontier entering the superstep: the signal both the direction
	// choice below and the adaptive planner's replan decisions see.
	ss.Frontier = int64(e.wl.Pending())
	e.pullStep = rt.ChoosePull(e.cfg.Mode, e.bcast != nil, e.wl.Pending(), e.stats.N, e.cfg.PullThreshold)
	if e.pullStep && e.cfg.FCSThreshold > 0 && e.wl.Pending() <= e.cfg.FCSThreshold {
		// FCS regime: the frontier is already small enough for the
		// serial finisher, so a pulled superstep would scan every
		// vertex's transpose span to gather a handful of broadcasts —
		// exactly the straggler tail FCS exists to avoid. Pin push.
		e.pullStep = false
	}
	ss.Pulled = e.pullStep

	// Compute phase: each pool worker drains its worklist shard —
	// only vertices that are active or have mail, in ascending vertex
	// order (matching a full partition scan, so results are identical
	// to the pre-worklist engine).
	e.mbox.Advance() // invalidate last superstep's sender-combining slots
	if e.bcast != nil {
		e.bcast.Advance()
	}
	e.wl.Flip()
	e.driver.Lease().Run(func(w int) {
		e.wl.SortCur(w, e.verts[w])
		ctx := &e.ctxs[w]
		for _, vid := range e.wl.Cur(w) {
			v := int(vid)
			e.wl.Unmark(vid)
			msgs := e.mbox.Inbox(vid)
			raw := e.mbox.RawCount(vid)
			if e.halted[v] && raw == 0 && step > 0 {
				continue
			}
			e.dirty[v] = true
			if raw > 0 {
				e.halted[v] = false
			}
			if e.cfg.MessageLess != nil && len(msgs) > 1 {
				less := e.cfg.MessageLess
				slices.SortStableFunc(msgs, func(a, b M) int {
					switch {
					case less(a, b):
						return -1
					case less(b, a):
						return 1
					}
					return 0
				})
			}
			ctx.id = vid
			ctx.sent = 0
			ctx.wire = 0
			ctx.charge = 0
			ctx.state = -1
			ctx.halt = false
			e.prog.Compute(ctx, msgs)
			if ctx.halt {
				e.halted[v] = true
			} else {
				e.wl.Add(w, vid)
			}
			e.mbox.ResetVertex(vid)

			// Work and the BPPA ratios charge logical sends (ctx.sent,
			// what the algorithm asked for, identical in either mode);
			// the superstep's h charges only wire messages (ctx.wire,
			// what actually crossed the mailbox — equal to ctx.sent in
			// push mode, boundary-only in pull mode).
			work := 1 + raw + ctx.sent + ctx.charge
			ss.Work[w] += work
			ss.Sent[w] += ctx.wire
			ss.Active[w]++
			d := float64(e.deg[v] + 1)
			mm := &e.workerMax[w]
			if r := float64(work) / d; r > mm.compute {
				mm.compute = r
			}
			if r := float64(ctx.sent) / d; r > mm.sent {
				mm.sent = r
			}
			if r := float64(raw) / d; r > mm.recv {
				mm.recv = r
			}
			if e.sizer != nil {
				su := e.sizer.StateUnits(&e.values[v])
				if r := float64(su) / d; r > mm.state {
					mm.state = r
				}
			}
		}
	})

	// Delivery phase: worker j drains every mailbox lane addressed to
	// it and queues vertices receiving their first message. Under
	// fault injection a lane batch may be dropped (forcing a rollback
	// at the next barrier) or redelivered (detected and discarded).
	// In a pulled superstep the same pass then gathers broadcasts over
	// each owned vertex's transpose span into its inbox — after the
	// lane drain, so the combined accumulator lands exactly where a
	// delivered lane entry would. Deposits complete before the
	// barrier, which keeps checkpoints and rollback replay
	// mode-oblivious: a snapshot always sees fully-materialized
	// inboxes.
	e.driver.Lease().Run(func(w int) {
		e.delivered[w], e.placed[w], e.dropScratch[w] = e.mbox.DeliverFaulty(w, step, inj, e.onMail[w])
		if e.pullStep {
			raw, placed := e.gatherPulled(w)
			e.pulledRaw[w] = raw
			e.placed[w] += placed
		} else {
			e.pulledRaw[w] = 0
		}
	})
	for w := 0; w < p; w++ {
		if e.dropScratch[w] {
			e.dropScratch[w] = false
			e.driver.LoseBatch()
		}
	}

	// Finalize aggregators.
	for name, a := range e.aggs {
		val := a.Zero()
		for w := 0; w < p; w++ {
			if pv, ok := e.aggPartials[w][name]; ok {
				val = a.Reduce(val, pv)
				delete(e.aggPartials[w], name)
			}
		}
		e.aggCurrent[name] = val
	}

	// ss.Recv charges only wire messages (boundary pushes; every raw
	// message in push mode), so a fully-pulled superstep prices h = 0.
	// Gathered messages still count toward pending — the master's
	// PendingMessages and the next superstep's per-vertex work see the
	// same raw counts in either mode.
	var pending int64
	for w := 0; w < p; w++ {
		ss.Recv[w] = e.delivered[w]
		pending += e.delivered[w] + e.pulledRaw[w]
		e.stats.InboxDeliveries += e.placed[w]
		m := e.workerMax[w]
		if m.state > e.stats.MaxStatePerDeg {
			e.stats.MaxStatePerDeg = m.state
		}
		if m.compute > e.stats.MaxComputePerDeg {
			e.stats.MaxComputePerDeg = m.compute
		}
		if m.sent > e.stats.MaxSentPerDeg {
			e.stats.MaxSentPerDeg = m.sent
		}
		if m.recv > e.stats.MaxRecvPerDeg {
			e.stats.MaxRecvPerDeg = m.recv
		}
	}
	return int(pending), nil
}

// gatherPulled runs worker w's half of a pulled superstep's delivery:
// every owned vertex folds the broadcast slots of its transpose span
// into one accumulator (in push-identical order, see runtime.Gatherer)
// and deposits it into its own inbox, waking exactly as first mail
// would. Zero mailbox traffic, zero allocation: the span is a CSR
// view, the scratch is per-worker, and the deposit reuses the inbox
// slot the combiner keeps at length one.
func (e *Engine[V, M]) gatherPulled(w int) (raw, placed int64) {
	g := e.gather[w]
	comb := e.cfg.Combiner
	onMail := e.onMail[w]
	for _, v := range e.verts[w] {
		acc, r, ok := g.Gather(e.bcast, e.ownerOf, e.csr.InSpan(v, e.scratch[w]), comb)
		if !ok {
			continue
		}
		raw += r
		placed += e.mbox.DepositPulled(v, acc, r, onMail)
	}
	return raw, placed
}

func (e *Engine[V, M]) setGlobal(name string, v any) { e.globals[name] = v }

func (e *Engine[V, M]) aggValue(name string) any { return e.aggCurrent[name] }

func (e *Engine[V, M]) aggregate(worker int, name string, v any) {
	a, ok := e.aggs[name]
	if !ok {
		panic("pregel: aggregate to unregistered aggregator " + name)
	}
	part := e.aggPartials[worker]
	if cur, ok := part[name]; ok {
		part[name] = a.Reduce(cur, v)
	} else {
		part[name] = a.Reduce(a.Zero(), v)
	}
}

// Context is the per-vertex view handed to Compute. It is only valid
// for the duration of the Compute call.
type Context[V, M any] struct {
	engine *Engine[V, M]
	worker int
	id     VertexID
	sent   int64 // logical messages the program asked to send
	wire   int64 // messages actually materialized through the mailbox
	charge int64
	state  int64
	halt   bool
}

// ID returns the vertex ID.
func (c *Context[V, M]) ID() VertexID { return c.id }

// Superstep returns the current superstep number (0-based).
func (c *Context[V, M]) Superstep() int { return c.engine.superstep }

// NumVertices returns the number of vertices in the graph.
func (c *Context[V, M]) NumVertices() int { return c.engine.g.N() }

// Value returns a pointer to this vertex's mutable value.
func (c *Context[V, M]) Value() *V { return &c.engine.values[c.id] }

// ValueOfUnsafe returns a pointer to another vertex's value. It is safe
// only when the program guarantees no concurrent writer (used by
// read-only post-processing and tests, not by Compute on other
// vertices' values).
func (c *Context[V, M]) ValueOfUnsafe(v VertexID) *V { return &c.engine.values[v] }

// OutEdges returns the vertex's current (possibly mutated) out-edges,
// materializing them from the CSR snapshot on first request. The
// returned slice must not be retained across supersteps if SetOutEdges
// is used. Programs that only need destinations and weights should
// prefer ForEachOut/OutDegree, which never materialize.
func (c *Context[V, M]) OutEdges() []graph.Edge { return c.engine.outEdges(c.id) }

// OutDegree returns the vertex's current out-degree without
// materializing the adjacency.
func (c *Context[V, M]) OutDegree() int {
	if c.engine.mutated[c.id] {
		return len(c.engine.adj[c.id])
	}
	return c.engine.csr.OutDegree(c.id)
}

// ForEachOut calls f for every current out-edge in adjacency order.
// For unmutated vertices it iterates the CSR snapshot without
// allocating.
func (c *Context[V, M]) ForEachOut(f func(dst VertexID, w float64)) {
	e := c.engine
	if e.mutated[c.id] {
		for _, ed := range e.adj[c.id] {
			f(ed.Dst, ed.W)
		}
		return
	}
	e.csr.ForEachOut(c.id, f)
}

// InEdges returns the vertex's in-edges for directed graphs
// (materialized from the pinned snapshot's transpose, immutable) and
// the out-edges for undirected graphs.
func (c *Context[V, M]) InEdges() []graph.Edge {
	if c.engine.inadj != nil {
		return c.engine.inEdges(c.id)
	}
	return c.engine.outEdges(c.id)
}

// Degree returns the vertex's original total degree in the input graph
// (d(v), or d_in+d_out for directed graphs).
func (c *Context[V, M]) Degree() int { return c.engine.deg[c.id] }

// SetOutEdges replaces this vertex's out-adjacency. Only the vertex
// itself may mutate its adjacency, which makes the operation race-free.
// The vertex's adjacency diverges from the CSR snapshot from here on;
// the input graph is untouched.
func (c *Context[V, M]) SetOutEdges(edges []graph.Edge) {
	c.engine.adj[c.id] = edges
	c.engine.mutated[c.id] = true
}

// SendTo sends m to vertex dst, delivered at the next superstep. With
// a combiner configured, messages to the same destination combine in
// the sender's outbox lane (the raw count still reaches the Stats).
func (c *Context[V, M]) SendTo(dst VertexID, m M) {
	c.sent++
	c.wire++
	c.engine.mbox.Send(c.worker, dst, m)
}

// SendToNeighbors sends m along every current out-edge. For unmutated
// vertices the destinations come straight from the CSR span and the
// mailbox broadcast path, skipping per-edge Edge materialization. In a
// pulled superstep the broadcast is not materialized at all: the
// message lands in the vertex's broadcast slot and every destination
// gathers it over its transpose span during delivery. A vertex whose
// adjacency diverged from the CSR snapshot (SetOutEdges) always
// pushes per edge — its transpose spans are stale, and the explicit
// sends keep it correct in either mode.
func (c *Context[V, M]) SendToNeighbors(m M) {
	e := c.engine
	if e.mutated[c.id] {
		for _, ed := range e.adj[c.id] {
			c.SendTo(ed.Dst, m)
		}
		return
	}
	if e.pullStep {
		c.sent += int64(e.csr.OutDegree(c.id))
		e.bcast.Set(c.id, m, e.cfg.Combiner)
		return
	}
	dsts := e.csr.OutSpan(c.id, e.scratch[c.worker])
	c.sent += int64(len(dsts))
	c.wire += int64(len(dsts))
	e.mbox.SendAll(c.worker, dsts, m)
}

// VoteToHalt deactivates the vertex; an incoming message reactivates it.
func (c *Context[V, M]) VoteToHalt() { c.halt = true }

// Aggregate contributes v to the named aggregator; the reduced value is
// visible from the next superstep.
func (c *Context[V, M]) Aggregate(name string, v any) { c.engine.aggregate(c.worker, name, v) }

// Agg returns the named aggregator's value as finalized at the end of
// the previous superstep.
func (c *Context[V, M]) Agg(name string) any { return c.engine.aggValue(name) }

// Global returns a master-published global (nil if unset).
func (c *Context[V, M]) Global(name string) any { return c.engine.globals[name] }

// Charge adds units of local work beyond the automatic accounting
// (1 + messages received + messages sent). Programs call it when they
// scan adjacency lists or do super-constant local computation.
func (c *Context[V, M]) Charge(units int64) { c.charge += units }

// Rand returns a deterministic per-(vertex, superstep) RNG.
func (c *Context[V, M]) Rand() *rand.Rand {
	seed := c.engine.cfg.Seed
	seed = seed*1000003 + int64(c.id)
	seed = seed*1000033 + int64(c.engine.superstep)
	return rand.New(rand.NewSource(seed))
}

// anyEngine erases the engine's type parameters for MasterContext.
type anyEngine struct {
	setGlobal func(string, any)
	agg       func(string) any
	activate  func()
	halt      func()
}

// MasterContext is handed to Master.BeforeSuperstep.
type MasterContext struct {
	engine    anyEngine
	superstep int
	pending   int
	frontier  int
}

// Superstep returns the superstep about to execute (0-based).
func (mc *MasterContext) Superstep() int { return mc.superstep }

// PendingMessages returns the number of messages awaiting delivery in
// the superstep about to execute.
func (mc *MasterContext) PendingMessages() int { return mc.pending }

// ActiveFrontier returns the number of vertices queued to compute in
// the superstep about to execute — active vertices plus vertices with
// mail, straight off the runtime worklists (an O(P) counter read).
// Multi-phase programs can use it for phase-switch decisions instead
// of maintaining a hand-rolled counting aggregator.
func (mc *MasterContext) ActiveFrontier() int { return mc.frontier }

// Agg returns the named aggregator's value finalized at the end of the
// previous superstep.
func (mc *MasterContext) Agg(name string) any { return mc.engine.agg(name) }

// SetGlobal publishes a value readable by every vertex via
// Context.Global during subsequent supersteps.
func (mc *MasterContext) SetGlobal(name string, v any) { mc.engine.setGlobal(name, v) }

// ActivateAll clears every vertex's halt flag for this superstep.
func (mc *MasterContext) ActivateAll() { mc.engine.activate() }

// Halt terminates the computation before this superstep executes.
func (mc *MasterContext) Halt() { mc.engine.halt() }
