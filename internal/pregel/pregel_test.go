package pregel

import (
	"errors"
	"testing"

	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// echoProgram floods a counter k supersteps deep.
type echoProgram struct{ rounds int }

func (p *echoProgram) Init(g *graph.Graph, id VertexID) int { return 0 }

func (p *echoProgram) Compute(ctx *Context[int, int], msgs []int) {
	*ctx.Value() += len(msgs)
	if ctx.Superstep() < p.rounds {
		ctx.SendToNeighbors(1)
		return
	}
	ctx.VoteToHalt()
}

func TestEngineMessageDelivery(t *testing.T) {
	g := graph.Cycle(10)
	eng := NewEngine[int, int](g, &echoProgram{rounds: 3}, Config[int]{Workers: 3})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Each vertex sends 2 messages per superstep 0..2 and receives 2 in
	// supersteps 1..3: total 6 per vertex.
	for v, got := range res.Values {
		if got != 6 {
			t.Fatalf("vertex %d received %d, want 6", v, got)
		}
	}
	if res.Stats.TotalMessages != 10*2*3 {
		t.Fatalf("TotalMessages = %d, want 60", res.Stats.TotalMessages)
	}
}

func TestEngineHaltAndReactivate(t *testing.T) {
	// Vertex 0 pings vertex 1 at superstep 2 only; vertex 1 must be
	// reactivated despite voting to halt at superstep 0.
	g := graph.New(2, false)
	g.AddEdge(0, 1)
	prog := &pokeProgram{}
	eng := NewEngine[int, int](g, prog, Config[int]{Workers: 2})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[1] != 42 {
		t.Fatalf("vertex 1 value = %d, want 42", res.Values[1])
	}
}

type pokeProgram struct{}

func (pokeProgram) Init(g *graph.Graph, id VertexID) int { return 0 }

func (pokeProgram) Compute(ctx *Context[int, int], msgs []int) {
	if ctx.ID() == 0 {
		switch ctx.Superstep() {
		case 0, 1:
			// Stay alive doing nothing (no halt vote at 0 and 1).
			if ctx.Superstep() == 1 {
				ctx.SendTo(1, 42)
				ctx.VoteToHalt()
			}
			return
		}
		ctx.VoteToHalt()
		return
	}
	for _, m := range msgs {
		*ctx.Value() = m
	}
	ctx.VoteToHalt()
}

func TestEngineCombiner(t *testing.T) {
	g := graph.Star(6) // center 0
	prog := &sendAllToCenter{}
	cfg := Config[int]{Workers: 2, Combiner: func(a, b int) int { return a + b }}
	eng := NewEngine[int, int](g, prog, cfg)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 5 {
		t.Fatalf("combined sum = %d, want 5", res.Values[0])
	}
}

type sendAllToCenter struct{}

func (sendAllToCenter) Init(g *graph.Graph, id VertexID) int { return 0 }

func (sendAllToCenter) Compute(ctx *Context[int, int], msgs []int) {
	if ctx.Superstep() == 0 && ctx.ID() != 0 {
		ctx.SendTo(0, 1)
	}
	for _, m := range msgs {
		*ctx.Value() += m
	}
	ctx.VoteToHalt()
}

func TestEngineAggregator(t *testing.T) {
	g := graph.Path(8)
	prog := &aggProgram{}
	eng := NewEngine[int, int](g, prog, Config[int]{Workers: 4})
	eng.RegisterAggregator("sum", SumInt64())
	eng.RegisterAggregator("max", MaxInt64())
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Aggregators are per-superstep (Pregel semantics): contributions
	// made at superstep 0 are visible during superstep 1 and reset
	// afterwards. Vertex 3 snapshots the superstep-1 view.
	if res.Values[3] != 28 {
		t.Fatalf("vertex 3 observed %d at superstep 1, want 28", res.Values[3])
	}
	// After the final (contribution-free) superstep the aggregate is
	// back at its zero value.
	if got := res.Aggregates["sum"].(int64); got != 0 {
		t.Fatalf("final sum aggregate = %d, want 0 (per-superstep reset)", got)
	}
}

type aggProgram struct{}

func (aggProgram) Init(g *graph.Graph, id VertexID) int { return -1 }

func (aggProgram) Compute(ctx *Context[int, int], msgs []int) {
	switch ctx.Superstep() {
	case 0:
		ctx.Aggregate("sum", int64(ctx.ID()))
		ctx.Aggregate("max", int64(ctx.ID()))
		return
	case 1:
		*ctx.Value() = int(ctx.Agg("sum").(int64))
	}
	ctx.VoteToHalt()
}

// masterProgram exercises globals, ActivateAll, and Halt.
type masterProgram struct{ halted bool }

func (p *masterProgram) Init(g *graph.Graph, id VertexID) int { return 0 }

func (p *masterProgram) BeforeSuperstep(mc *MasterContext) {
	mc.SetGlobal("round", mc.Superstep())
	if mc.Superstep() == 3 {
		mc.Halt()
		p.halted = true
		return
	}
	mc.ActivateAll()
}

func (p *masterProgram) Compute(ctx *Context[int, int], msgs []int) {
	*ctx.Value() = ctx.Global("round").(int)
	ctx.VoteToHalt() // master reactivates everyone each superstep
}

func TestEngineMasterControl(t *testing.T) {
	g := graph.New(5, false)
	prog := &masterProgram{}
	eng := NewEngine[int, int](g, prog, Config[int]{Workers: 2})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !prog.halted {
		t.Fatal("master never halted")
	}
	if res.Supersteps != 3 {
		t.Fatalf("supersteps = %d, want 3", res.Supersteps)
	}
	for v, val := range res.Values {
		if val != 2 {
			t.Fatalf("vertex %d saw round %d, want 2", v, val)
		}
	}
}

func TestEngineSuperstepCap(t *testing.T) {
	g := graph.Cycle(4)
	prog := &echoProgram{rounds: 1 << 30}
	eng := NewEngine[int, int](g, prog, Config[int]{Workers: 1, MaxSupersteps: 5})
	_, err := eng.Run()
	if !errors.Is(err, ErrSuperstepCap) {
		t.Fatalf("err = %v, want ErrSuperstepCap", err)
	}
}

func TestEngineMutation(t *testing.T) {
	g := graph.Complete(4)
	prog := &pruneProgram{}
	eng := NewEngine[int, int](g, prog, Config[int]{Workers: 2})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// After pruning, each vertex kept only even-ID neighbors; a second
	// superstep counts messages over the mutated adjacency.
	if res.Values[1] != 0 || res.Values[0] != 1 {
		t.Fatalf("values = %v", res.Values)
	}
}

type pruneProgram struct{}

func (pruneProgram) Init(g *graph.Graph, id VertexID) int { return 0 }

func (pruneProgram) Compute(ctx *Context[int, int], msgs []int) {
	switch ctx.Superstep() {
	case 0:
		var kept []graph.Edge
		for _, e := range ctx.OutEdges() {
			if e.Dst%2 == 0 {
				kept = append(kept, e)
			}
		}
		ctx.SetOutEdges(kept)
	case 1:
		if ctx.ID() == 3 {
			ctx.SendToNeighbors(1) // reaches only even vertices: 0, 2
		}
	default:
		*ctx.Value() += len(msgs)
	}
	if ctx.Superstep() >= 2 {
		ctx.VoteToHalt()
	}
}

func TestEngineWorkerCountInvariance(t *testing.T) {
	g := graph.Random(100, 300, 17)
	run := func(workers int) []int {
		prog := &echoProgram{rounds: 4}
		eng := NewEngine[int, int](g, prog, Config[int]{Workers: workers})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Values
	}
	one := run(1)
	eight := run(8)
	for v := range one {
		if one[v] != eight[v] {
			t.Fatalf("vertex %d differs across worker counts: %d vs %d", v, one[v], eight[v])
		}
	}
}

func TestEngineStatsShape(t *testing.T) {
	g := graph.Path(20)
	prog := &echoProgram{rounds: 2}
	eng := NewEngine[int, int](g, prog, Config[int]{Workers: 4})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Workers != 4 || st.N != 20 {
		t.Fatalf("stats meta = %+v", st)
	}
	if st.NumSupersteps() != res.Supersteps {
		t.Fatalf("stats supersteps %d != %d", st.NumSupersteps(), res.Supersteps)
	}
	var sent int64
	for _, ss := range st.Supersteps {
		for w := 0; w < 4; w++ {
			sent += ss.Sent[w]
		}
	}
	if sent != st.TotalMessages {
		t.Fatalf("per-superstep sent %d != TotalMessages %d", sent, st.TotalMessages)
	}
	// Interior path vertices have degree 2 and send 2 messages per
	// superstep: sent/deg ratio stays <= 1 (deg+1 normalization).
	if st.MaxSentPerDeg > 1 {
		t.Fatalf("MaxSentPerDeg = %v, want <= 1", st.MaxSentPerDeg)
	}
}

func TestEngineMessageSortDeterminism(t *testing.T) {
	g := graph.Star(30)
	prog := &firstMsgProgram{}
	cfg := Config[int]{Workers: 7, MessageLess: func(a, b int) bool { return a < b }}
	eng := NewEngine[int, int](g, prog, cfg)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 1 {
		t.Fatalf("first sorted message = %d, want 1", res.Values[0])
	}
}

type firstMsgProgram struct{}

func (firstMsgProgram) Init(g *graph.Graph, id VertexID) int { return 0 }

func (firstMsgProgram) Compute(ctx *Context[int, int], msgs []int) {
	if ctx.Superstep() == 0 && ctx.ID() != 0 {
		ctx.SendTo(0, int(ctx.ID()))
	}
	if len(msgs) > 0 {
		*ctx.Value() = msgs[0]
	}
	ctx.VoteToHalt()
}

func TestEngineRandDeterministic(t *testing.T) {
	g := graph.New(3, false)
	prog := &randProgram{}
	run := func() []int {
		eng := NewEngine[int, int](g, prog, Config[int]{Workers: 2, Seed: 99})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return append([]int(nil), res.Values...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Rand not deterministic at vertex %d: %d vs %d", i, a[i], b[i])
		}
	}
	if a[0] == a[1] && a[1] == a[2] {
		t.Fatal("Rand identical across vertices; seeds not mixed")
	}
}

type randProgram struct{}

func (randProgram) Init(g *graph.Graph, id VertexID) int { return 0 }

func (randProgram) Compute(ctx *Context[int, int], msgs []int) {
	*ctx.Value() = ctx.Rand().Intn(1 << 20)
	ctx.VoteToHalt()
}

func TestEngineInEdgesDirected(t *testing.T) {
	g := graph.New(3, true)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.EnsureIn()
	prog := &inEdgeCounter{}
	eng := NewEngine[int, int](g, prog, Config[int]{Workers: 2})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[2] != 2 || res.Values[0] != 0 {
		t.Fatalf("in-degrees observed: %v", res.Values)
	}
}

type inEdgeCounter struct{}

func (inEdgeCounter) Init(g *graph.Graph, id VertexID) int { return -1 }

func (inEdgeCounter) Compute(ctx *Context[int, int], msgs []int) {
	*ctx.Value() = len(ctx.InEdges())
	ctx.VoteToHalt()
}

func TestEngineCollectAggregator(t *testing.T) {
	g := graph.Path(5)
	prog := &collectProgram{}
	eng := NewEngine[int, int](g, prog, Config[int]{Workers: 3})
	eng.RegisterAggregator("ids", Collect[VertexID]())
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if len(prog.seen) != 5 {
		t.Fatalf("collected %d ids: %v", len(prog.seen), prog.seen)
	}
}

type collectProgram struct{ seen []VertexID }

func (p *collectProgram) BeforeSuperstep(mc *MasterContext) {
	if ids, ok := mc.Agg("ids").([]VertexID); ok {
		p.seen = append(p.seen, ids...)
	}
}

func (p *collectProgram) Init(g *graph.Graph, id VertexID) int { return 0 }

func (p *collectProgram) Compute(ctx *Context[int, int], msgs []int) {
	if ctx.Superstep() == 0 {
		ctx.Aggregate("ids", ctx.ID())
		return
	}
	ctx.VoteToHalt()
}

func TestEnginePendingMessagesVisibleToMaster(t *testing.T) {
	g := graph.Star(9)
	prog := &pendingWatcher{}
	eng := NewEngine[int, int](g, prog, Config[int]{Workers: 2})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Superstep 1's master hook must see the 8 leaf->center messages.
	if prog.observed != 8 {
		t.Fatalf("master observed %d pending messages, want 8", prog.observed)
	}
}

type pendingWatcher struct{ observed int }

func (p *pendingWatcher) BeforeSuperstep(mc *MasterContext) {
	if mc.Superstep() == 1 {
		p.observed = mc.PendingMessages()
	}
}

func (p *pendingWatcher) Init(g *graph.Graph, id VertexID) int { return 0 }

func (p *pendingWatcher) Compute(ctx *Context[int, int], msgs []int) {
	if ctx.Superstep() == 0 && ctx.ID() != 0 {
		ctx.SendTo(0, 1)
	}
	ctx.VoteToHalt()
}

func TestEngineMessageLessWithCombiner(t *testing.T) {
	// Sorting applies to the (possibly combined) inbox; with a sum
	// combiner there is a single message, and the result is exact
	// regardless of workers.
	g := graph.Star(40)
	cfg := Config[int]{
		Workers:     6,
		Combiner:    func(a, b int) int { return a + b },
		MessageLess: func(a, b int) bool { return a < b },
	}
	eng := NewEngine[int, int](g, &sendAllToCenter{}, cfg)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 39 {
		t.Fatalf("combined sum %d", res.Values[0])
	}
}

func TestCheckpointWithCustomPartition(t *testing.T) {
	g := graph.PermutedPath(128, 4)
	run := func(cfg Config[VertexID]) []VertexID {
		eng := NewEngine[VertexID, VertexID](g, &ckProgram{}, cfg)
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Values
	}
	clean := run(Config[VertexID]{Workers: 3, Partition: PartitionDegreeBalanced})
	rec := run(Config[VertexID]{
		Workers: 3, Partition: PartitionDegreeBalanced,
		CheckpointEvery: 8, Faults: rt.PlanOf(rt.Crash(20)),
	})
	for v := range clean {
		if clean[v] != rec[v] {
			t.Fatalf("vertex %d differs after recovery under custom partition", v)
		}
	}
}
