package pregel

import rt "vcgraph/internal/runtime"

// Partitioning lives in the shared runtime kernel (see
// internal/runtime/partition.go); the pregel package re-exports the
// type and the standard strategies under their historical names, which
// every engine config and the vc layer reference.

// Partitioner assigns each vertex to a worker in [0, workers).
type Partitioner = rt.Partitioner

var (
	// PartitionHash spreads vertices round-robin by ID (the Pregel
	// default).
	PartitionHash Partitioner = rt.PartitionHash
	// PartitionRange gives each worker a contiguous ID range.
	PartitionRange Partitioner = rt.PartitionRange
	// PartitionDegreeBalanced balances total adjacent-edge load with a
	// greedy longest-processing-time pass over vertices in decreasing
	// degree order.
	PartitionDegreeBalanced Partitioner = rt.PartitionDegreeBalanced
)
