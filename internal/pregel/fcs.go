package pregel

import (
	"slices"

	"vcgraph/internal/graph"
)

// Finishing Computations Serially (FCS), the Salihoglu–Widom
// optimization the paper's §1 cites: many vertex-centric algorithms
// spend a long tail of supersteps on a tiny active frontier (Hash-Min
// on a path spends Θ(n) supersteps moving one label). When the number
// of active vertices drops to Config.FCSThreshold or below, the engine
// hands the whole remaining computation to the program's serial
// finisher, which completes it in one step with direct access to every
// value. The serial work is charged to a single worker in one final
// superstep — honest accounting: FCS trades superstep latency for a
// deliberately imbalanced final step.

// SerialFinisher is the optional program extension FCS requires.
type SerialFinisher[V, M any] interface {
	// FinishSerially completes the computation. active lists the
	// vertices that would run next superstep, inbox their undelivered
	// messages. It returns the sequential work performed (for the cost
	// model).
	FinishSerially(fc *FinishContext[V, M]) int64
}

// FinishContext gives the serial finisher full access to the
// computation state.
type FinishContext[V, M any] struct {
	engine *Engine[V, M]
	active []VertexID
}

// NumVertices returns the graph size.
func (fc *FinishContext[V, M]) NumVertices() int { return fc.engine.g.N() }

// Active lists the vertices that were still active at handoff.
func (fc *FinishContext[V, M]) Active() []VertexID { return fc.active }

// Inbox returns the undelivered messages of v.
func (fc *FinishContext[V, M]) Inbox(v VertexID) []M { return fc.engine.mbox.Inbox(v) }

// Value returns a pointer to v's value.
func (fc *FinishContext[V, M]) Value(v VertexID) *V { return &fc.engine.values[v] }

// OutEdges returns v's current (possibly mutated) adjacency,
// materializing it from the CSR snapshot on first request. Finishers
// that only need destinations should prefer ForEachOut.
func (fc *FinishContext[V, M]) OutEdges(v VertexID) []graph.Edge { return fc.engine.outEdges(v) }

// OutDegree returns v's current out-degree without materializing the
// adjacency.
func (fc *FinishContext[V, M]) OutDegree(v VertexID) int {
	if fc.engine.mutated[v] {
		return len(fc.engine.adj[v])
	}
	return fc.engine.csr.OutDegree(v)
}

// ForEachOut calls f for every current out-edge of v in adjacency
// order, without allocating for unmutated vertices.
func (fc *FinishContext[V, M]) ForEachOut(v VertexID, f func(dst VertexID, w float64)) {
	e := fc.engine
	if e.mutated[v] {
		for _, ed := range e.adj[v] {
			f(ed.Dst, ed.W)
		}
		return
	}
	e.csr.ForEachOut(v, f)
}

// FinishSerially implements runtime.SerialFinishPolicy: it checks the
// FCS trigger after a superstep and, when the frontier is narrow
// enough, hands the remaining computation to the program's serial
// finisher. The driver records the returned work as one final,
// single-worker superstep.
func (e *Engine[V, M]) FinishSerially(pending int) (work, active int64, done bool) {
	threshold := e.cfg.FCSThreshold
	finisher, ok := e.prog.(SerialFinisher[V, M])
	if threshold <= 0 || !ok {
		return 0, 0, false
	}
	// The worklist holds exactly the vertices that would run next
	// superstep (active or holding mail), so the trigger check is a
	// counter read instead of an O(n) halt-flag scan.
	count := e.wl.Pending()
	if count == 0 || count > threshold {
		return 0, 0, false // regular termination / frontier still too wide
	}
	frontier := make([]VertexID, 0, count)
	for w := 0; w < e.cfg.Workers; w++ {
		frontier = append(frontier, e.wl.Next(w)...)
	}
	slices.Sort(frontier)
	fc := &FinishContext[V, M]{engine: e, active: frontier}
	work = finisher.FinishSerially(fc)
	for v := 0; v < e.g.N(); v++ {
		e.mbox.ResetVertex(VertexID(v))
		e.halted[v] = true
	}
	e.wl.Clear()
	return work, int64(len(frontier)), true
}
