package pregel

// Stock aggregators. All satisfy the associativity/commutativity
// contract of Aggregator.

type funcAgg struct {
	zero   func() any
	reduce func(a, b any) any
}

func (f funcAgg) Zero() any           { return f.zero() }
func (f funcAgg) Reduce(a, b any) any { return f.reduce(a, b) }

// SumInt64 sums int64 contributions.
func SumInt64() Aggregator {
	return funcAgg{
		zero:   func() any { return int64(0) },
		reduce: func(a, b any) any { return a.(int64) + b.(int64) },
	}
}

// MaxInt64 keeps the maximum int64 contribution.
func MaxInt64() Aggregator {
	return funcAgg{
		zero: func() any { return int64(-1 << 62) },
		reduce: func(a, b any) any {
			x, y := a.(int64), b.(int64)
			if x > y {
				return x
			}
			return y
		},
	}
}

// MinInt64 keeps the minimum int64 contribution.
func MinInt64() Aggregator {
	return funcAgg{
		zero: func() any { return int64(1<<62 - 1) },
		reduce: func(a, b any) any {
			x, y := a.(int64), b.(int64)
			if x < y {
				return x
			}
			return y
		},
	}
}

// SumFloat64 sums float64 contributions.
func SumFloat64() Aggregator {
	return funcAgg{
		zero:   func() any { return float64(0) },
		reduce: func(a, b any) any { return a.(float64) + b.(float64) },
	}
}

// MaxFloat64 keeps the maximum float64 contribution.
func MaxFloat64() Aggregator {
	return funcAgg{
		zero: func() any { return float64(0) },
		reduce: func(a, b any) any {
			x, y := a.(float64), b.(float64)
			if x > y {
				return x
			}
			return y
		},
	}
}

// BoolOr ORs boolean contributions ("did anything change?").
func BoolOr() Aggregator {
	return funcAgg{
		zero:   func() any { return false },
		reduce: func(a, b any) any { return a.(bool) || b.(bool) },
	}
}

// Collect accumulates all contributions into a slice (order
// unspecified). Useful for gathering result edges (e.g. MST edges)
// without a post-pass over all vertices.
func Collect[T any]() Aggregator {
	return funcAgg{
		zero: func() any { return []T(nil) },
		reduce: func(a, b any) any {
			as := a.([]T)
			switch bv := b.(type) {
			case []T:
				return append(as, bv...)
			case T:
				return append(as, bv)
			default:
				panic("pregel: Collect aggregator received incompatible type")
			}
		},
	}
}
