package pregel

import (
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// Checkpointing: Pregel's fault-tolerance mechanism. When
// Config.CheckpointEvery is set, the engine snapshots the complete
// computation state (vertex values, halt flags, undelivered messages,
// mutated adjacency, globals, and — via Snapshotter — master state) at
// every k-th superstep barrier, retaining the last two generations
// (runtime.Checkpoints). A failure — a crash or a lost message batch
// scheduled by Config.Faults — rolls the computation back to the
// newest checkpoint that passes validation: a corrupted snapshot is
// detected at recovery time and skipped in favor of the previous
// generation (or a fresh restart). The redone supersteps stay in the
// Stats, as they would on a real cluster; Stats.Recovery itemizes the
// recovery cost.
//
// With Config.FullSnapshotEvery > 1 the engine additionally implements
// runtime.DeltaPolicy: between full snapshots it saves dirty-set delta
// frames covering only the vertices that computed, received mail, or
// were reactivated since the previous frame. Recovery then rebuilds a
// generation by restoring the newest readable full frame and applying
// its delta chain in order; a corrupt frame anywhere in a chain
// invalidates every frame above it (see runtime.Checkpoints).
//
// Vertex values and messages are copied shallowly; programs whose V
// carries reference types (slices, maps) must implement ValueCloner to
// deep-copy them, or recovery would alias live state.

// ValueCloner lets a program deep-copy vertex values for checkpoints.
// It mirrors runtime.ValueCloner; a program implementing CloneValue
// satisfies both.
type ValueCloner[V any] interface {
	CloneValue(v V) V
}

// Snapshotter lets a program (typically one with master state) save
// and restore that state across a rollback.
type Snapshotter interface {
	Snapshot() any
	Restore(snapshot any)
}

type checkpoint[V, M any] struct {
	values  []V
	halted  []bool
	inbox   [][]M
	rawRecv []int64
	// adj records only the vertices whose adjacency diverged from the
	// CSR snapshot (SetOutEdges); everything else restores to the
	// immutable snapshot for free, so a checkpoint is O(mutations)
	// instead of O(m) in adjacency.
	adj         map[VertexID][]graph.Edge
	globals     map[string]any
	aggCurrent  map[string]any
	masterState any
	// Delta frames (SnapshotDelta): ids lists the dirty vertices in
	// ascending order, and values/halted/inbox/rawRecv are indexed by
	// position in ids instead of by VertexID; adj holds the overrides
	// of dirty mutated vertices. The tiny whole-run state — globals,
	// aggregators, master state — is always carried in full.
	delta bool
	ids   []VertexID
}

func (e *Engine[V, M]) cloneValues(src []V) []V {
	return rt.CloneValues(e.prog, src)
}

// Snapshot implements runtime.Policy: it deep-copies the state
// reachable at the current barrier. The driver owns the checkpoint
// store, the save cadence, and the corruption injection.
func (e *Engine[V, M]) Snapshot() *checkpoint[V, M] {
	n := e.g.N()
	ck := &checkpoint[V, M]{
		values:     e.cloneValues(e.values),
		halted:     append([]bool(nil), e.halted...),
		inbox:      make([][]M, n),
		rawRecv:    make([]int64, n),
		adj:        make(map[VertexID][]graph.Edge),
		globals:    make(map[string]any, len(e.globals)),
		aggCurrent: make(map[string]any, len(e.aggCurrent)),
	}
	for v := 0; v < n; v++ {
		ck.inbox[v] = append([]M(nil), e.mbox.Inbox(VertexID(v))...)
		ck.rawRecv[v] = e.mbox.RawCount(VertexID(v))
	}
	for v, isMut := range e.mutated {
		if isMut {
			ck.adj[VertexID(v)] = append([]graph.Edge(nil), e.adj[v]...)
		}
	}
	for k, v := range e.globals {
		ck.globals[k] = v
	}
	for k, v := range e.aggCurrent {
		ck.aggCurrent[k] = v
	}
	if s, ok := e.prog.(Snapshotter); ok {
		ck.masterState = s.Snapshot()
	}
	e.clearDirty()
	return ck
}

// SnapshotDelta implements runtime.DeltaPolicy: it deep-copies only
// the vertices dirtied since the previous frame — computed, mailed, or
// reactivated — plus the full (small) globals/aggregator/master state,
// and resets the dirty tracking so the next frame patches this one.
func (e *Engine[V, M]) SnapshotDelta() *checkpoint[V, M] {
	var ids []VertexID
	for v, d := range e.dirty {
		if d {
			ids = append(ids, VertexID(v))
			e.dirty[v] = false
		}
	}
	ck := &checkpoint[V, M]{
		delta:      true,
		ids:        ids,
		values:     rt.CloneValuesAt(e.prog, e.values, ids),
		halted:     make([]bool, len(ids)),
		inbox:      make([][]M, len(ids)),
		rawRecv:    make([]int64, len(ids)),
		adj:        make(map[VertexID][]graph.Edge),
		globals:    make(map[string]any, len(e.globals)),
		aggCurrent: make(map[string]any, len(e.aggCurrent)),
	}
	for i, id := range ids {
		ck.halted[i] = e.halted[id]
		ck.inbox[i] = append([]M(nil), e.mbox.Inbox(id)...)
		ck.rawRecv[i] = e.mbox.RawCount(id)
		if e.mutated[id] {
			ck.adj[id] = append([]graph.Edge(nil), e.adj[id]...)
		}
	}
	for k, v := range e.globals {
		ck.globals[k] = v
	}
	for k, v := range e.aggCurrent {
		ck.aggCurrent[k] = v
	}
	if s, ok := e.prog.(Snapshotter); ok {
		ck.masterState = s.Snapshot()
	}
	return ck
}

// RestoreDelta implements runtime.DeltaPolicy: it patches the dirty
// vertices of one delta frame onto the state already rebuilt from the
// chain so far. Adjacency overrides only accumulate between frames
// (mutated never clears mid-run), so applying them additively is exact.
func (e *Engine[V, M]) RestoreDelta(ck *checkpoint[V, M]) {
	if cloner, ok := e.prog.(rt.ValueCloner[V]); ok {
		for i, id := range ck.ids {
			e.values[id] = cloner.CloneValue(ck.values[i])
		}
	} else {
		for i, id := range ck.ids {
			e.values[id] = ck.values[i]
		}
	}
	for i, id := range ck.ids {
		e.halted[id] = ck.halted[i]
		e.mbox.LoadVertex(id, ck.inbox[i], ck.rawRecv[i])
	}
	for v, a := range ck.adj {
		e.adj[v] = append([]graph.Edge(nil), a...)
		e.mutated[v] = true
	}
	e.globals = make(map[string]any, len(ck.globals))
	for k, v := range ck.globals {
		e.globals[k] = v
	}
	for k, v := range ck.aggCurrent {
		e.aggCurrent[k] = v
	}
	if s, hasState := e.prog.(Snapshotter); hasState {
		s.Restore(ck.masterState)
	}
	e.rebuildWorklists()
}

// FrameBytes implements runtime.SnapshotSizer: a deterministic
// resident-byte estimate of a frame (full or delta) — element sizes
// times element counts. Boxed master/global/aggregator values are
// opaque and charged a flat per-entry cost on both frame kinds.
func (e *Engine[V, M]) FrameBytes(ck *checkpoint[V, M]) int64 {
	b := int64(len(ck.values))*rt.SizeOf[V]() +
		int64(len(ck.halted)) +
		int64(len(ck.rawRecv))*8 +
		int64(len(ck.ids))*rt.SizeOf[VertexID]()
	szM := rt.SizeOf[M]()
	for _, in := range ck.inbox {
		b += int64(len(in)) * szM
	}
	szE := rt.SizeOf[graph.Edge]()
	for _, a := range ck.adj {
		b += rt.MapEntryBytes + int64(len(a))*szE
	}
	b += int64(len(ck.globals)+len(ck.aggCurrent)) * rt.MapEntryBytes
	return b
}

func (e *Engine[V, M]) clearDirty() {
	for v := range e.dirty {
		e.dirty[v] = false
	}
}

// Restore implements runtime.Policy: it rolls the engine back to a
// checkpoint read by the driver's store (ok), or to a fresh start when
// no readable checkpoint exists (!ok).
func (e *Engine[V, M]) Restore(ck *checkpoint[V, M], step int, ok bool) {
	e.recoveries++
	if !ok {
		// No checkpoint yet: restart from the pristine Init-time values
		// kept by NewEngine — re-running Init here would read the
		// mutable graph mid-run.
		e.values = rt.CloneValues[V](e.prog, e.pristine)
		for v := 0; v < e.g.N(); v++ {
			e.halted[v] = false
			e.mbox.ResetVertex(VertexID(v))
		}
		e.resetAdjacency()
		for name, a := range e.aggs {
			e.aggCurrent[name] = a.Zero()
		}
		e.globals = make(map[string]any)
		if s, hasState := e.prog.(Snapshotter); hasState {
			s.Restore(nil)
		}
		e.clearDirty()
		e.rebuildWorklists()
		return
	}
	e.values = e.cloneValues(ck.values)
	copy(e.halted, ck.halted)
	for v := 0; v < e.g.N(); v++ {
		e.mbox.LoadVertex(VertexID(v), ck.inbox[v], ck.rawRecv[v])
	}
	e.resetAdjacency()
	for v, a := range ck.adj {
		e.adj[v] = append([]graph.Edge(nil), a...)
		e.mutated[v] = true
	}
	e.globals = make(map[string]any, len(ck.globals))
	for k, v := range ck.globals {
		e.globals[k] = v
	}
	for k, v := range ck.aggCurrent {
		e.aggCurrent[k] = v
	}
	if s, hasState := e.prog.(Snapshotter); hasState {
		s.Restore(ck.masterState)
	}
	e.clearDirty()
	e.rebuildWorklists()
}

// resetAdjacency drops every mutated adjacency override, returning all
// vertices to the CSR snapshot. Materialized-but-unmutated caches are
// kept — their content equals the snapshot.
func (e *Engine[V, M]) resetAdjacency() {
	for v, isMut := range e.mutated {
		if isMut {
			e.adj[v] = nil
			e.mutated[v] = false
		}
	}
}

// rebuildWorklists reconstructs the active-vertex worklists from the
// restored halt flags and inboxes after a rollback.
func (e *Engine[V, M]) rebuildWorklists() {
	e.wl.Clear()
	for v := 0; v < e.g.N(); v++ {
		if !e.halted[v] || e.mbox.RawCount(VertexID(v)) > 0 {
			e.wl.Add(int(e.ownerOf[v]), VertexID(v))
		}
	}
}

// Recoveries reports how many failure recoveries the run performed.
func (e *Engine[V, M]) Recoveries() int { return e.recoveries }
