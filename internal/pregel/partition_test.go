package pregel

import (
	"testing"

	"vcgraph/internal/graph"
)

func checkPartition(t *testing.T, owner []int32, workers, n int) {
	t.Helper()
	if len(owner) != n {
		t.Fatalf("owner covers %d of %d vertices", len(owner), n)
	}
	counts := make([]int, workers)
	for v, w := range owner {
		if w < 0 || int(w) >= workers {
			t.Fatalf("vertex %d assigned to worker %d of %d", v, w, workers)
		}
		counts[w]++
	}
	for w, c := range counts {
		if n >= workers && c == 0 {
			t.Fatalf("worker %d owns no vertices (counts %v)", w, counts)
		}
	}
}

func TestPartitionersCoverAllWorkers(t *testing.T) {
	g := graph.PreferentialAttachment(500, 3, 3)
	for name, p := range map[string]Partitioner{
		"hash":   PartitionHash,
		"range":  PartitionRange,
		"degree": PartitionDegreeBalanced,
	} {
		for _, workers := range []int{1, 2, 4, 7} {
			owner := p(g, workers)
			checkPartition(t, owner, workers, g.N())
			_ = name
		}
	}
}

func TestPartitionRangeIsContiguous(t *testing.T) {
	g := graph.Path(100)
	owner := PartitionRange(g, 4)
	for v := 1; v < len(owner); v++ {
		if owner[v] < owner[v-1] {
			t.Fatalf("range partition not monotone at %d: %d after %d", v, owner[v], owner[v-1])
		}
	}
}

func TestPartitionDegreeBalancedBalancesLoad(t *testing.T) {
	g := graph.PreferentialAttachment(2000, 3, 5)
	const workers = 4
	loadOf := func(owner []int32) (min, max int64) {
		load := make([]int64, workers)
		for v := range owner {
			load[owner[v]] += int64(g.Degree(graph.VertexID(v)) + 1)
		}
		min, max = load[0], load[0]
		for _, l := range load[1:] {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		return min, max
	}
	_, maxBal := loadOf(PartitionDegreeBalanced(g, workers))
	minRange, maxRange := loadOf(PartitionRange(g, workers))
	_ = minRange
	// On a PA graph, the hubs sit at low IDs: range partitioning piles
	// them onto worker 0; the greedy balancer must do much better.
	if maxBal >= maxRange {
		t.Fatalf("degree-balanced max load %d not better than range %d", maxBal, maxRange)
	}
}

func TestResultsInvariantUnderPartitioning(t *testing.T) {
	g := graph.PreferentialAttachment(400, 3, 9)
	run := func(p Partitioner) []int {
		prog := &echoProgram{rounds: 3}
		eng := NewEngine[int, int](g, prog, Config[int]{Workers: 4, Partition: p})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Values
	}
	hash := run(PartitionHash)
	rng := run(PartitionRange)
	deg := run(PartitionDegreeBalanced)
	for v := range hash {
		if hash[v] != rng[v] || hash[v] != deg[v] {
			t.Fatalf("vertex %d differs across partitioners: %d %d %d", v, hash[v], rng[v], deg[v])
		}
	}
}

func TestPartitioningChangesLoadBalance(t *testing.T) {
	// Same computation, different max per-worker load: the measured
	// superstep cost max(w, gh, L) must reflect the partitioner.
	g := graph.PreferentialAttachment(3000, 3, 11)
	run := func(p Partitioner) float64 {
		prog := &echoProgram{rounds: 4}
		eng := NewEngine[int, int](g, prog, Config[int]{Workers: 4, Partition: p})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		var cost float64
		for _, ss := range res.Stats.Supersteps {
			cost += float64(ss.W())
		}
		return cost
	}
	balanced := run(PartitionDegreeBalanced)
	ranged := run(PartitionRange)
	if balanced >= ranged {
		t.Fatalf("degree-balanced cost %v not below range cost %v", balanced, ranged)
	}
}

func TestCustomPartitioner(t *testing.T) {
	g := graph.Path(10)
	all0 := func(g *graph.Graph, workers int) []int32 { return make([]int32, g.N()) }
	prog := &echoProgram{rounds: 2}
	eng := NewEngine[int, int](g, prog, Config[int]{Workers: 3, Partition: all0})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// All work lands on worker 0.
	for _, ss := range res.Stats.Supersteps {
		if ss.Work[1] != 0 || ss.Work[2] != 0 {
			t.Fatalf("work leaked to unassigned workers: %v", ss.Work)
		}
	}
}

func TestBadPartitionerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range assignment")
		}
	}()
	bad := func(g *graph.Graph, workers int) []int32 {
		o := make([]int32, g.N())
		o[0] = int32(workers) // out of range
		return o
	}
	NewEngine[int, int](graph.Path(4), &echoProgram{}, Config[int]{Workers: 2, Partition: bad})
}

func TestInboxDeliveriesStat(t *testing.T) {
	g := graph.Star(50)
	prog := &sendAllToCenter{}
	withComb := Config[int]{Workers: 2, Combiner: func(a, b int) int { return a + b }}
	eng := NewEngine[int, int](g, prog, withComb)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalMessages != 49 {
		t.Fatalf("sent %d", res.Stats.TotalMessages)
	}
	// All 49 raw messages combine: sender-side combining collapses each
	// (src,dst)-worker lane to one entry, and delivery merges the lane
	// partials into a single inbox slot — 1 placement, 49 raw messages.
	if res.Stats.InboxDeliveries != 1 {
		t.Fatalf("combined deliveries %d, want 1", res.Stats.InboxDeliveries)
	}
	eng2 := NewEngine[int, int](g, prog, Config[int]{Workers: 2})
	res2, err := eng2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.InboxDeliveries != res2.Stats.TotalMessages {
		t.Fatalf("without combiner: %d != %d", res2.Stats.InboxDeliveries, res2.Stats.TotalMessages)
	}
}
