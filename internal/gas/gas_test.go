package gas_test

import (
	. "vcgraph/internal/gas"
	"math"
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
	"vcgraph/internal/vc"
)

func TestGASPageRankMatchesPowerIteration(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.PreferentialAttachment(800, 3, 3),
		graph.RandomDirected(400, 1600, 5),
		graph.Cycle(64),
	} {
		ranks, _, err := PageRank(g, 0.85, 1e-12, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		var ops seq.Ops
		want := seq.PageRank(g, 0.85, 300, &ops) // effectively converged
		for v := range want {
			if math.Abs(ranks[v]-want[v]) > 1e-8 {
				t.Fatalf("vertex %d: gas=%v seq=%v", v, ranks[v], want[v])
			}
		}
	}
}

func TestGASAdaptiveSchedulingShrinksWork(t *testing.T) {
	// Delta scheduling: later iterations touch far fewer edges than the
	// first (only un-converged regions stay active).
	g := graph.PreferentialAttachment(3000, 3, 7)
	_, res, err := PageRank(g, 0.85, 1e-8, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 5 {
		t.Fatalf("converged suspiciously fast: %d iterations", res.Iterations)
	}
	first := res.Stats.Supersteps[0]
	last := res.Stats.Supersteps[len(res.Stats.Supersteps)-1]
	var w0, wLast int64
	for w := range first.Work {
		w0 += first.Work[w]
		wLast += last.Work[w]
	}
	if wLast*2 > w0 {
		t.Fatalf("last iteration work %d not below half of first %d: no adaptivity", wLast, w0)
	}
}

func TestGASMatchesPregelPageRank(t *testing.T) {
	// Cross-paradigm agreement: GAS-to-convergence equals
	// Pregel-to-convergence on the same graph.
	g := graph.PreferentialAttachment(500, 2, 9)
	gasRanks, _, err := PageRank(g, 0.85, 1e-12, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pregelRes, _, err := vc.PageRankConverge(g, 0.85, 1e-12, vc.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := range gasRanks {
		if math.Abs(gasRanks[v]-pregelRes.Ranks[v]) > 1e-8 {
			t.Fatalf("vertex %d: gas=%v pregel=%v", v, gasRanks[v], pregelRes.Ranks[v])
		}
	}
}

func TestGASQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(50, 150, seed)
		ranks, _, err := PageRank(g, 0.85, 1e-12, Config{Workers: 3})
		if err != nil {
			return false
		}
		var ops seq.Ops
		want := seq.PageRank(g, 0.85, 300, &ops)
		for v := range want {
			if math.Abs(ranks[v]-want[v]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGASIterationCap(t *testing.T) {
	g := graph.Cycle(32)
	prog := &neverConverge{}
	if _, err := Run[int, int](g, prog, Config{Workers: 2, MaxIterations: 5}); err == nil {
		t.Fatal("expected iteration cap error")
	}
}

type neverConverge struct{}

func (neverConverge) Init(g *graph.Graph, id VertexID) int       { return 0 }
func (neverConverge) Gather(u VertexID, w float64, uVal int) int { return uVal }
func (neverConverge) Zero() int                                  { return 0 }
func (neverConverge) Sum(a, b int) int                           { return a + b }
func (neverConverge) Apply(v *int, total int) bool               { *v++; return true }

func TestGASEmptyGraph(t *testing.T) {
	g := graph.New(0, false)
	ranks, res, err := PageRank(g, 0.85, 1e-9, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 0 || res.Iterations != 0 {
		t.Fatalf("ranks=%v iters=%d", ranks, res.Iterations)
	}
}

func TestGASDeterministicAcrossWorkers(t *testing.T) {
	g := graph.PreferentialAttachment(300, 3, 4)
	a, _, err := PageRank(g, 0.85, 1e-10, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := PageRank(g, 0.85, 1e-10, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("vertex %d: %v vs %v (pull model must be exactly deterministic)", v, a[v], b[v])
		}
	}
}

func TestGASStatsRecordEdgeWork(t *testing.T) {
	g := graph.Cycle(50)
	_, res, err := PageRank(g, 0.85, 1e-9, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Workers != 2 || st.NumSupersteps() != res.Iterations {
		t.Fatalf("stats meta: %+v vs iterations %d", st, res.Iterations)
	}
	// First iteration gathers every edge once (plus one apply per
	// vertex): work >= 2*m_in = 100.
	first := st.Supersteps[0]
	var w int64
	for _, x := range first.Work {
		w += x
	}
	if w < 100 {
		t.Fatalf("first-iteration work %d; expected a full edge sweep", w)
	}
}

func TestGASDanglingVerticesMatchPregelConvention(t *testing.T) {
	// A directed star with all edges inward: the center is dangling.
	g := graph.New(5, true)
	for i := 1; i < 5; i++ {
		g.AddEdge(graph.VertexID(i), 0)
	}
	g.EnsureIn()
	ranks, _, err := PageRank(g, 0.85, 1e-12, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var ops seq.Ops
	want := seq.PageRank(g, 0.85, 200, &ops)
	for v := range want {
		if math.Abs(ranks[v]-want[v]) > 1e-9 {
			t.Fatalf("vertex %d: gas=%v seq=%v", v, ranks[v], want[v])
		}
	}
	if ranks[0] <= ranks[1] {
		t.Fatalf("sink should outrank leaves: %v", ranks)
	}
}
