package gas

import (
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// Packed-state GAS connected components (Config.PackedState): the
// labels move from the engine's value array into a pair of bit-packed
// stores at ⌈log₂ n⌉ bits per vertex. The engine's value array
// double-buffers to give gathers a consistent previous-iteration
// snapshot; the program reproduces that itself — BeforeStep copies cur
// into prev (single-threaded, at the iteration barrier), Gather reads
// prev, ApplyAt writes cur — so activations, iteration counts, and
// final labels are byte-identical to the dense ccProgram.

type ccPackedProgram struct {
	ccProgram // Zero and Sum (min with NoVertex identity) are shared

	prev, cur rt.StateStore
}

func newCCPackedProgram(n int) *ccPackedProgram {
	domain := uint64(n)
	if domain == 0 {
		domain = 1
	}
	p := &ccPackedProgram{
		prev: rt.NewPackedInts(n, domain),
		cur:  rt.NewPackedInts(n, domain),
	}
	return p
}

func (p *ccPackedProgram) Init(g *graph.Graph, id VertexID) struct{} {
	p.cur.Set(int(id), uint64(id))
	return struct{}{}
}

// BeforeStep publishes the previous iteration's labels for this
// iteration's gathers (the store-side analogue of the engine's
// cur/next swap).
func (p *ccPackedProgram) BeforeStep(step int) { p.prev.CopyFrom(p.cur) }

func (p *ccPackedProgram) Gather(u VertexID, w float64, _ struct{}) VertexID {
	return VertexID(p.prev.Get(int(u)))
}

// Apply satisfies Program; the engine always routes through ApplyAt
// for programs that implement it.
func (p *ccPackedProgram) Apply(v *struct{}, total VertexID) bool {
	panic("gas: ccPackedProgram.Apply called; engine should use ApplyAt")
}

func (p *ccPackedProgram) ApplyAt(v VertexID, total VertexID) bool {
	if total != graph.NoVertex && total < VertexID(p.cur.Get(int(v))) {
		p.cur.Set(int(v), uint64(total))
		return true
	}
	return false
}

// SnapshotState/RestoreState implement runtime.StateSnapshotter: the
// engine's checkpoints clone only the (empty) value array, so the
// label store rides along here. RestoreState(nil) is the pristine
// identity-label restart; prev needs no restore because BeforeStep
// rebuilds it at the top of the next iteration.
func (p *ccPackedProgram) SnapshotState() any { return p.cur.Clone() }

func (p *ccPackedProgram) RestoreState(s any) {
	if s == nil {
		for v := 0; v < p.cur.Len(); v++ {
			p.cur.Set(v, uint64(v))
		}
		return
	}
	p.cur.CopyFrom(s.(rt.StateStore))
}

// labels extracts the final labeling.
func (p *ccPackedProgram) labels() []VertexID {
	out := make([]VertexID, p.cur.Len())
	for v := range out {
		out[v] = VertexID(p.cur.Get(v))
	}
	return out
}
