// Package gas implements a minimal gather-apply-scatter engine in the
// style of PowerGraph, the third programming model the paper's §1
// surveys next to synchronous vertex-centric (Pregel) and
// subgraph-centric (Giraph++). Computation is pull-based: an active
// vertex GATHERs an associative summary over its in-neighbors' values,
// APPLYs it to its own value, and — when the value changed — SCATTERs
// activation to its out-neighbors. There are no messages; each
// iteration reads a consistent snapshot of the previous iteration's
// values (double buffering), so the engine is deterministic and
// race-free by construction.
package gas

import (
	"errors"
	"fmt"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// VertexID aliases graph.VertexID.
type VertexID = graph.VertexID

// Program is a GAS vertex program over value type V and gather type G.
type Program[V, G any] interface {
	// Init seeds vertex values; every vertex starts active.
	Init(g *graph.Graph, id VertexID) V
	// Gather produces u's contribution to v along edge (u -> v), given
	// u's value from the previous iteration.
	Gather(e graph.Edge, uVal V) G
	// Zero is the identity of Sum.
	Zero() G
	// Sum combines gather contributions (associative, commutative).
	Sum(a, b G) G
	// Apply folds the gathered total into v's value and reports whether
	// the value changed enough to scatter.
	Apply(v *V, total G) bool
}

// Config controls a GAS run.
type Config struct {
	Workers       int // default 4
	MaxIterations int // default 10·(n+64)
}

// ErrIterationCap reports a run exceeding Config.MaxIterations.
var ErrIterationCap = errors.New("gas: iteration cap reached")

// Result of a GAS run.
type Result[V any] struct {
	Values     []V
	Iterations int
	Stats      *bsp.Stats // Work = gather ops; Sent/Recv = activations
}

// Run executes prog on g to quiescence. The graph must be directed
// with in-adjacency built, or undirected (in = out).
func Run[V, G any](g *graph.Graph, prog Program[V, G], cfg Config) (*Result[V], error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 10 * (g.N() + 64)
	}
	if g.Directed {
		g.EnsureIn()
	}
	in := g.In
	if !g.Directed {
		in = g.Out
	}
	n := g.N()
	cur := make([]V, n)
	next := make([]V, n)
	for v := 0; v < n; v++ {
		cur[v] = prog.Init(g, VertexID(v))
	}
	active := make([]bool, n)
	nextActive := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	activeCount := n // O(1) quiescence check instead of an O(n) scan
	stats := &bsp.Stats{Workers: cfg.Workers, N: n}

	// Persistent workers, parked on the phase barrier between
	// iterations; per-worker wake buffers are reused across iterations.
	pool := rt.NewPool(cfg.Workers)
	defer pool.Close()
	wake := make([][]VertexID, cfg.Workers)

	iter := 0
	for ; ; iter++ {
		if iter >= cfg.MaxIterations {
			return &Result[V]{Values: cur, Iterations: iter, Stats: stats},
				fmt.Errorf("%w (cap %d)", ErrIterationCap, cfg.MaxIterations)
		}
		if activeCount == 0 {
			break
		}
		ss := bsp.SuperstepStats{
			Work: make([]int64, cfg.Workers),
			Sent: make([]int64, cfg.Workers),
			Recv: make([]int64, cfg.Workers),
		}
		pool.Run(func(w int) {
			for v := w; v < n; v += cfg.Workers {
				next[v] = cur[v]
				if !active[v] {
					continue
				}
				total := prog.Zero()
				for _, e := range in[v] {
					ss.Work[w]++
					total = prog.Sum(total, prog.Gather(e, cur[e.Dst]))
				}
				if prog.Apply(&next[v], total) {
					// Scatter: wake out-neighbors (buffered per
					// worker; merged after the barrier).
					for _, e := range g.Out[v] {
						ss.Sent[w]++
						wake[w] = append(wake[w], e.Dst)
					}
				}
				ss.Work[w]++
			}
		})
		activeCount = 0
		for w := 0; w < cfg.Workers; w++ {
			for _, v := range wake[w] {
				if !nextActive[v] {
					nextActive[v] = true
					activeCount++
				}
			}
			wake[w] = wake[w][:0]
		}
		cur, next = next, cur
		active, nextActive = nextActive, active
		for i := range nextActive {
			nextActive[i] = false
		}
		for w := 0; w < cfg.Workers; w++ {
			stats.TotalWork += ss.Work[w]
			stats.TotalMessages += ss.Sent[w]
		}
		stats.Supersteps = append(stats.Supersteps, ss)
	}
	return &Result[V]{Values: cur, Iterations: iter, Stats: stats}, nil
}

// --- GAS PageRank ---

type prProgram struct {
	n      int
	alpha  float64
	eps    float64
	outDeg []float64
}

type prVal struct{ rank float64 }

func (p *prProgram) Init(g *graph.Graph, id VertexID) prVal {
	return prVal{rank: 1 / float64(p.n)}
}

func (p *prProgram) Gather(e graph.Edge, uVal prVal) float64 {
	// e.Dst is the in-neighbor u; its rank spreads over its out-degree.
	return uVal.rank / p.outDeg[e.Dst]
}

func (p *prProgram) Zero() float64            { return 0 }
func (p *prProgram) Sum(a, b float64) float64 { return a + b }

func (p *prProgram) Apply(v *prVal, total float64) bool {
	nr := (1-p.alpha)/float64(p.n) + p.alpha*total
	changed := nr-v.rank > p.eps || v.rank-nr > p.eps
	v.rank = nr
	return changed
}

// PageRank runs adaptive (delta-scheduled) PageRank in the GAS model
// until every vertex's rank moves less than eps in an iteration.
func PageRank(g *graph.Graph, alpha, eps float64, cfg Config) ([]float64, *Result[prVal], error) {
	prog := &prProgram{n: g.N(), alpha: alpha, eps: eps}
	prog.outDeg = make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		d := len(g.Out[v])
		if d == 0 {
			d = 1 // dangling: rank leaks, matching the Pregel variant
		}
		prog.outDeg[v] = float64(d)
	}
	res, err := Run[prVal, float64](g, prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	ranks := make([]float64, g.N())
	for v, val := range res.Values {
		ranks[v] = val.rank
	}
	return ranks, res, nil
}
