// Package gas implements a minimal gather-apply-scatter engine in the
// style of PowerGraph, the third programming model the paper's §1
// surveys next to synchronous vertex-centric (Pregel) and
// subgraph-centric (Giraph++). Computation is pull-based: an active
// vertex GATHERs an associative summary over its in-neighbors' values,
// APPLYs it to its own value, and — when the value changed — SCATTERs
// activation to its out-neighbors. There are no messages; each
// iteration reads a consistent snapshot of the previous iteration's
// values (double buffering), so the engine is deterministic and
// race-free by construction.
package gas

import (
	"context"
	"math"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// VertexID aliases graph.VertexID.
type VertexID = graph.VertexID

// Program is a GAS vertex program over value type V and gather type G.
type Program[V, G any] interface {
	// Init seeds vertex values; every vertex starts active.
	Init(g *graph.Graph, id VertexID) V
	// Gather produces u's contribution to v along edge (u -> v) of
	// weight w, given u's value from the previous iteration. The engine
	// feeds it straight from CSR transpose spans, so no Edge value is
	// materialized on the gather path.
	Gather(u VertexID, w float64, uVal V) G
	// Zero is the identity of Sum.
	Zero() G
	// Sum combines gather contributions (associative, commutative).
	Sum(a, b G) G
	// Apply folds the gathered total into v's value and reports whether
	// the value changed enough to scatter.
	Apply(v *V, total G) bool
}

// Config controls a GAS run.
type Config struct {
	Workers       int // default 4
	MaxIterations int // default 10·(n+64)
	// Partition assigns vertices to workers; nil means the hash
	// (round-robin) assignment. Partitioning changes per-worker load
	// (and hence the measured BSP superstep costs) but never results:
	// gathers read a double-buffered snapshot, so vertex placement is
	// invisible to the values.
	Partition rt.Partitioner
	// CheckpointEvery, when positive, snapshots the computation state
	// (values, active set) every k iterations for rollback recovery.
	CheckpointEvery int
	// FullSnapshotEvery, when > 1, stores only every Nth checkpoint as
	// a full snapshot; the saves in between are delta frames carrying
	// just the values the iteration applied (only active vertices can
	// change under double buffering) plus the sparse active set.
	FullSnapshotEvery int
	// Faults, when non-nil, schedules deterministic fault injection
	// (runtime.FaultPlan): worker crashes and corrupted checkpoints
	// roll the engine back to its last readable snapshot; a dropped
	// scatter batch (one worker's wake buffer lost in transit) forces
	// the same rollback, while a duplicated batch is absorbed because
	// activation delivery is idempotent (a set union).
	Faults *rt.FaultPlan
	// Mode selects the scatter direction (gathers always pull): push
	// materializes per-edge wake buffers; pull has changed vertices
	// mark a broadcast bit that destinations scan over their transpose
	// spans — zero scatter traffic, so dense iterations price h = 0;
	// auto (the default) pulls iterations whose active set is dense.
	// The activation set is identical either way (v wakes iff some
	// in-neighbor changed), so results never depend on the mode.
	Mode rt.DirectionMode
	// PullThreshold overrides the auto-mode active-set density
	// threshold (fraction of n; <= 0 means rt.DefaultPullThreshold).
	PullThreshold float64
	// PackedState selects the bit-packed label-store variant for the
	// algorithms that have one (ConnectedComponents). Results and
	// iteration counts are byte-identical to the dense programs.
	PackedState bool
	// Snapshot, when non-nil, is an already-pinned CSR generation the
	// engine must run against instead of pinning the graph's current
	// one (the adaptive plan layer re-prepares engines mid-job; see
	// graph.PinSnapshot).
	Snapshot *graph.CSR
	// Replan, when non-nil, is consulted at every iteration barrier;
	// returning true aborts the run with runtime.ErrHandoff and the
	// values at the barrier (see runtime.DriverConfig.Replan).
	Replan func(step, pending int) bool
	// Ctx, when non-nil, aborts the run at the next iteration barrier
	// once cancelled or past its deadline (see runtime.DriverConfig).
	Ctx context.Context
	// Pool, when non-nil, is a shared worker pool to lease workers from
	// instead of building a private pool for the run.
	Pool *rt.Pool
	// Job, when non-nil, binds the run to a scheduler-admitted job:
	// Workers is taken from the job's lease, the run executes under the
	// job's context, and superstep records stream to the handle.
	Job *rt.Job
}

// ErrIterationCap reports a run exceeding Config.MaxIterations. It
// aliases bsp.ErrSuperstepCap, the sentinel shared by every engine, so
// errors.Is works across engines.
var ErrIterationCap = bsp.ErrSuperstepCap

// Result of a GAS run.
type Result[V any] struct {
	Values     []V
	Iterations int
	Stats      *bsp.Stats // Work = gather ops; Sent/Recv = activations
}

// Preparer is an optional Program extension: PrepareGAS runs once at
// engine construction with the run's pinned CSR snapshot — the place
// to precompute graph-derived tables (degrees) so the run phase never
// reads the mutable graph.
type Preparer interface {
	PrepareGAS(csr *graph.CSR)
}

// Stepper is an optional Program extension: BeforeStep runs
// single-threaded at the top of every iteration with the global
// iteration index. Programs whose Apply semantics depend on the global
// step (the adaptive plan layer's fixed-K synchronous PageRank, which
// must stop after exactly `remaining` folds) implement it to observe
// the step without threading it through Gather/Apply.
type Stepper interface {
	BeforeStep(step int)
}

// ApplierAt is an optional Program extension: when implemented, the
// engine calls ApplyAt(v, total) instead of Apply(&next[v], total).
// Programs that keep vertex state outside the value array (the
// bit-packed stores of internal/vc) need the vertex ID to address it;
// the value-array Apply never sees one.
type ApplierAt[G any] interface {
	ApplyAt(v VertexID, total G) bool
}

// Run executes prog on g to quiescence. The graph must be directed
// with in-adjacency built, or undirected (in = out). The iteration
// lifecycle — dispatch, fault firing, checkpoint cadence, rollback,
// halting, cost accounting — is owned by the shared runtime.Driver;
// this package contributes the gather/apply/scatter policy.
func Run[V, G any](g *graph.Graph, prog Program[V, G], cfg Config) (*Result[V], error) {
	return Prepare(g, prog, cfg)()
}

// Prepare builds the engine for prog over g — pinning the CSR
// snapshot, partitioning, and seeding every vertex value — and returns
// the run. Every read of the mutable graph happens inside Prepare; the
// returned closure touches only the snapshot and engine-private state,
// so a serving layer can construct jobs under a graph read lock and
// execute them lock-free while writers mutate and republish.
func Prepare[V, G any](g *graph.Graph, prog Program[V, G], cfg Config) func() (*Result[V], error) {
	if cfg.Job != nil {
		cfg.Workers = cfg.Job.Workers()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	csr := cfg.Snapshot
	if csr == nil {
		csr = g.Pin()
	} else {
		g.PinSnapshot(csr)
	}
	csr.EnsureIn() // pull model gathers over the transpose
	n := csr.N()
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 10 * (n + 64)
	}
	var owner []int32
	if cfg.Partition != nil {
		owner = cfg.Partition(g, cfg.Workers)
	} else {
		// The default hash partition sizes from the pinned snapshot, not
		// the live graph, which may have grown past it.
		owner = rt.PartitionHashN(n, cfg.Workers)
	}
	p := &policy[V, G]{
		g:          g,
		prog:       prog,
		cfg:        cfg,
		csr:        csr,
		verts:      rt.GroupByOwner("gas", owner, cfg.Workers),
		n:          n,
		cur:        make([]V, n),
		next:       make([]V, n),
		active:     make([]bool, n),
		nextActive: make([]bool, n),
		dirty:      make([]bool, n),
		wake:       make([][]VertexID, cfg.Workers),
		scratch:    rt.GetScratches(cfg.Workers),
	}
	if cfg.Mode != rt.DirectionPush {
		p.bcast = rt.NewBroadcasts[struct{}](n)
		p.wakeCount = make([]int64, cfg.Workers)
	}
	if prep, ok := any(prog).(Preparer); ok {
		prep.PrepareGAS(csr)
	}
	for v := 0; v < n; v++ {
		p.cur[v] = prog.Init(g, VertexID(v))
	}
	if cfg.Faults != nil {
		// A rollback with no readable checkpoint restarts from scratch;
		// keep a pristine copy so the restart never re-reads the graph.
		p.pristine = rt.CloneValues[V](prog, p.cur)
	}
	for i := range p.active {
		p.active[i] = true
	}
	p.activeCount = n // O(1) quiescence check instead of an O(n) scan

	stats := &bsp.Stats{Workers: cfg.Workers, N: n}
	p.driver = rt.NewDriver[*gasSnapshot[V]](p, stats, rt.DriverConfig{
		Name:              "gas",
		Workers:           cfg.Workers,
		MaxSteps:          cfg.MaxIterations,
		CapErr:            ErrIterationCap,
		CheckpointEvery:   cfg.CheckpointEvery,
		FullSnapshotEvery: cfg.FullSnapshotEvery,
		Faults:            cfg.Faults,
		Ctx:               cfg.Ctx,
		Pool:              cfg.Pool,
		Job:               cfg.Job,
		Replan:            cfg.Replan,
	})
	return func() (*Result[V], error) {
		defer g.Unpin(csr)
		defer rt.PutScratches(p.scratch)
		iters, err := p.driver.Run()
		return &Result[V]{Values: p.cur, Iterations: iters, Stats: stats}, err
	}
}

// policy is the GAS engine as a runtime.Policy: double-buffered values,
// an active set maintained by scatter-side wake buffers, and
// partitioned vertex-to-worker assignment (hash by default, matching
// the historical strided schedule).
type policy[V, G any] struct {
	g      *graph.Graph
	prog   Program[V, G]
	cfg    Config
	csr    *graph.CSR
	verts  [][]VertexID // worker -> owned vertices, ascending
	n      int
	driver *rt.Driver[*gasSnapshot[V]]

	cur, next          []V
	pristine           []V // Init-time copy for checkpoint-free restarts (faults only)
	active, nextActive []bool
	activeCount        int
	// dirty marks vertices whose value may have changed since the last
	// checkpoint frame. Under double buffering only vertices that ran
	// Apply can differ (everyone else's next is a verbatim copy), so
	// the iteration's active set is exactly the write set.
	dirty   []bool
	wake    [][]VertexID     // per-worker scatter buffers, reused
	scratch []*graph.Scratch // pooled per-worker span-decode buffers (packed snapshots)

	// Pull-mode scatter (Mode pull/auto): changed vertices mark their
	// broadcast bit; the activation pass scans transpose spans for
	// marked in-neighbors instead of merging wake buffers.
	bcast     *rt.Broadcasts[struct{}]
	wakeCount []int64 // per-worker activation counts for the pull pass
}

// Quiescent implements runtime.Policy.
func (p *policy[V, G]) Quiescent(step, pending int) bool { return p.activeCount == 0 }

// Superstep implements runtime.Policy: one gather/apply/scatter
// iteration over the active set, then the single-threaded wake-buffer
// merge (where a scatter batch can be lost or redelivered in transit).
func (p *policy[V, G]) Superstep(step int, ss *bsp.SuperstepStats) (int, error) {
	prog, csr := p.prog, p.csr
	workers := p.cfg.Workers
	if st, ok := any(prog).(Stepper); ok {
		st.BeforeStep(step)
	}
	ss.Frontier = int64(p.activeCount)
	// Direction choice for the scatter half: GAS Sum is associative and
	// commutative by contract, so pull is always legal when enabled.
	pull := rt.ChoosePull(p.cfg.Mode, p.bcast != nil, p.activeCount, p.n, p.cfg.PullThreshold)
	ss.Pulled = pull
	if pull {
		p.bcast.Advance()
	}
	applyAt, useApplyAt := any(prog).(ApplierAt[G])
	p.driver.Lease().Run(func(w int) {
		var workW, sentW, activeW int64
		for _, vid := range p.verts[w] {
			v := int(vid)
			p.next[v] = p.cur[v]
			if !p.active[v] {
				continue
			}
			p.dirty[v] = true
			total := prog.Zero()
			srcs := csr.InSpan(vid, p.scratch[w])
			if ws := csr.InWeights(vid); ws == nil {
				for _, u := range srcs {
					total = prog.Sum(total, prog.Gather(u, 1, p.cur[u]))
				}
			} else {
				for i, u := range srcs {
					total = prog.Sum(total, prog.Gather(u, ws[i], p.cur[u]))
				}
			}
			workW += int64(len(srcs))
			var changed bool
			if useApplyAt {
				changed = applyAt.ApplyAt(vid, total)
			} else {
				changed = prog.Apply(&p.next[v], total)
			}
			if changed {
				if pull {
					// Pulled scatter: mark the change; destinations
					// find it on their transpose spans below. No
					// wake traffic crosses workers, so Sent stays at
					// the boundary count (0).
					p.bcast.Set(vid, struct{}{}, nil)
				} else {
					// Scatter: wake out-neighbors (buffered per
					// worker; merged after the barrier).
					out := csr.OutSpan(vid, p.scratch[w])
					sentW += int64(len(out))
					p.wake[w] = append(p.wake[w], out...)
				}
			}
			workW++
			activeW++
		}
		ss.Work[w] = workW
		ss.Sent[w] = sentW
		ss.Active[w] = activeW
	})
	p.activeCount = 0
	if pull {
		// Pull-mode activation: each worker scans its owned vertices'
		// transpose spans for a marked in-neighbor. The set computed is
		// exactly ∪ Out(changed) — identical to the wake-buffer merge —
		// and the writes are sharded by owner, so the pass is race-free
		// and runs in parallel (the single-threaded merge below is the
		// push path's serialization point). Nothing is in transit, so
		// scatter-batch faults have nothing to drop on a pulled
		// iteration.
		p.driver.Lease().Run(func(w int) {
			var cnt int64
			for _, vid := range p.verts[w] {
				for _, u := range csr.InSpan(vid, p.scratch[w]) {
					if p.bcast.Has(u) {
						p.nextActive[vid] = true
						cnt++
						break
					}
				}
			}
			p.wakeCount[w] = cnt
		})
		for w := 0; w < workers; w++ {
			p.activeCount += int(p.wakeCount[w])
		}
	} else {
		inj := p.driver.Injector()
		for w := 0; w < workers; w++ {
			passes := 1
			switch inj.LaneFault(step, w, 0) {
			case rt.FaultDropLane:
				// The worker's scatter batch is lost in transit; the
				// activations are unrecoverable, so force a rollback at
				// the next barrier.
				passes = 0
				p.driver.LoseBatch()
			case rt.FaultDupLane:
				// A redelivered batch is absorbed: activation is a set
				// union, so merging it twice is a no-op.
				passes = 2
			}
			for pass := 0; pass < passes; pass++ {
				for _, v := range p.wake[w] {
					if !p.nextActive[v] {
						p.nextActive[v] = true
						p.activeCount++
					}
				}
			}
			p.wake[w] = p.wake[w][:0]
		}
	}
	p.cur, p.next = p.next, p.cur
	p.active, p.nextActive = p.nextActive, p.active
	for i := range p.nextActive {
		p.nextActive[i] = false
	}
	return p.activeCount, nil
}

// Snapshot implements runtime.Policy.
func (p *policy[V, G]) Snapshot() *gasSnapshot[V] {
	p.clearDirty()
	return &gasSnapshot[V]{
		values:      rt.CloneValues[V](p.prog, p.cur),
		active:      append([]bool(nil), p.active...),
		activeCount: p.activeCount,
		progState:   rt.SnapshotProgState(p.prog),
	}
}

// SnapshotDelta implements runtime.DeltaPolicy: only the values
// dirtied since the previous frame, the complete active set in sparse
// form (it is small exactly when deltas pay off), and the full
// program-private state.
func (p *policy[V, G]) SnapshotDelta() *gasSnapshot[V] {
	var ids []VertexID
	for v, d := range p.dirty {
		if d {
			ids = append(ids, VertexID(v))
			p.dirty[v] = false
		}
	}
	activeIDs := make([]VertexID, 0, p.activeCount)
	for v, a := range p.active {
		if a {
			activeIDs = append(activeIDs, VertexID(v))
		}
	}
	return &gasSnapshot[V]{
		delta:     true,
		ids:       ids,
		values:    rt.CloneValuesAt(p.prog, p.cur, ids),
		activeIDs: activeIDs,
		progState: rt.SnapshotProgState(p.prog),
	}
}

// Restore implements runtime.Policy.
func (p *policy[V, G]) Restore(snap *gasSnapshot[V], step int, ok bool) {
	if ok {
		p.cur = rt.CloneValues[V](p.prog, snap.values)
		copy(p.active, snap.active)
		p.activeCount = snap.activeCount
		rt.RestoreProgState(p.prog, snap.progState)
	} else {
		// Restart from the pristine Init-time values: re-running Init
		// here would read the mutable graph mid-run.
		p.cur = rt.CloneValues[V](p.prog, p.pristine)
		for v := 0; v < p.n; v++ {
			p.active[v] = true
		}
		p.activeCount = p.n
		rt.RestoreProgState(p.prog, nil)
	}
	p.clearDirty()
	for i := range p.nextActive {
		p.nextActive[i] = false
	}
}

// RestoreDelta implements runtime.DeltaPolicy: patch the dirty values
// onto the chain state, then replace the active set wholesale (each
// delta carries it complete).
func (p *policy[V, G]) RestoreDelta(snap *gasSnapshot[V]) {
	if cloner, ok := p.prog.(rt.ValueCloner[V]); ok {
		for i, id := range snap.ids {
			p.cur[id] = cloner.CloneValue(snap.values[i])
		}
	} else {
		for i, id := range snap.ids {
			p.cur[id] = snap.values[i]
		}
	}
	for v := range p.active {
		p.active[v] = false
	}
	for _, id := range snap.activeIDs {
		p.active[id] = true
	}
	p.activeCount = len(snap.activeIDs)
	rt.RestoreProgState(p.prog, snap.progState)
	for i := range p.nextActive {
		p.nextActive[i] = false
	}
}

// FrameBytes implements runtime.SnapshotSizer: a deterministic
// resident-byte estimate of a frame. Program-private state
// (StateSnapshotter, e.g. bit-packed stores) is opaque and excluded on
// both frame kinds alike.
func (p *policy[V, G]) FrameBytes(snap *gasSnapshot[V]) int64 {
	szID := rt.SizeOf[VertexID]()
	return int64(len(snap.values))*rt.SizeOf[V]() +
		int64(len(snap.active)) +
		int64(len(snap.ids))*szID +
		int64(len(snap.activeIDs))*szID + 8
}

func (p *policy[V, G]) clearDirty() {
	for v := range p.dirty {
		p.dirty[v] = false
	}
}

// gasSnapshot is one checkpoint generation of a GAS run: the barrier
// state entering an iteration, plus any program-private state
// (runtime.StateSnapshotter, e.g. a bit-packed label store). A delta
// frame (SnapshotDelta) sets delta and indexes values by position in
// ids; activeIDs is the complete active set in sparse form.
type gasSnapshot[V any] struct {
	values      []V
	active      []bool
	activeCount int
	progState   any

	delta     bool
	ids       []VertexID
	activeIDs []VertexID
}

// --- GAS PageRank ---

type prProgram struct {
	n      int
	alpha  float64
	eps    float64
	outDeg []float64
}

type prVal struct{ rank float64 }

func (p *prProgram) Init(g *graph.Graph, id VertexID) prVal {
	return prVal{rank: 1 / float64(p.n)}
}

// PrepareGAS precomputes out-degrees from the pinned snapshot, so
// Gather never touches the mutable graph during the run.
func (p *prProgram) PrepareGAS(csr *graph.CSR) {
	p.outDeg = make([]float64, p.n)
	for v := 0; v < p.n; v++ {
		d := csr.OutDegree(VertexID(v))
		if d == 0 {
			d = 1 // dangling: rank leaks, matching the Pregel variant
		}
		p.outDeg[v] = float64(d)
	}
}

func (p *prProgram) Gather(u VertexID, w float64, uVal prVal) float64 {
	// u is the in-neighbor; its rank spreads over its out-degree.
	return uVal.rank / p.outDeg[u]
}

func (p *prProgram) Zero() float64            { return 0 }
func (p *prProgram) Sum(a, b float64) float64 { return a + b }

func (p *prProgram) Apply(v *prVal, total float64) bool {
	nr := (1-p.alpha)/float64(p.n) + p.alpha*total
	changed := nr-v.rank > p.eps || v.rank-nr > p.eps
	v.rank = nr
	return changed
}

// PageRank runs adaptive (delta-scheduled) PageRank in the GAS model
// until every vertex's rank moves less than eps in an iteration.
func PageRank(g *graph.Graph, alpha, eps float64, cfg Config) ([]float64, *Result[prVal], error) {
	return PreparePageRank(g, alpha, eps, cfg)()
}

// PreparePageRank is the two-phase form of PageRank: graph reads
// happen now, the returned closure runs lock-free on the pinned
// snapshot (see Prepare).
func PreparePageRank(g *graph.Graph, alpha, eps float64, cfg Config) func() ([]float64, *Result[prVal], error) {
	n := g.N()
	prog := &prProgram{n: n, alpha: alpha, eps: eps}
	run := Prepare[prVal, float64](g, prog, cfg)
	return func() ([]float64, *Result[prVal], error) {
		res, err := run()
		if err != nil {
			return nil, nil, err
		}
		ranks := make([]float64, n)
		for v, val := range res.Values {
			ranks[v] = val.rank
		}
		return ranks, res, nil
	}
}

// --- GAS connected components (HashMin) ---

type ccProgram struct{}

func (ccProgram) Init(g *graph.Graph, id VertexID) VertexID { return id }

func (ccProgram) Gather(u VertexID, w float64, uVal VertexID) VertexID { return uVal }

// Zero is NoVertex, the identity of the min with "no contribution".
func (ccProgram) Zero() VertexID { return graph.NoVertex }

func (ccProgram) Sum(a, b VertexID) VertexID {
	if a == graph.NoVertex {
		return b
	}
	if b == graph.NoVertex {
		return a
	}
	if b < a {
		return b
	}
	return a
}

func (ccProgram) Apply(v *VertexID, total VertexID) bool {
	if total != graph.NoVertex && total < *v {
		*v = total
		return true
	}
	return false
}

// ConnectedComponents labels every vertex with the smallest vertex ID
// in its (weakly, pull-over-in-edges) connected component; on
// undirected graphs this matches seq.Components. Min is associative
// and order-independent, so the result is identical across worker
// counts and fault schedules.
func ConnectedComponents(g *graph.Graph, cfg Config) ([]VertexID, *Result[VertexID], error) {
	return PrepareConnectedComponents(g, cfg)()
}

// PrepareConnectedComponents is the two-phase form of
// ConnectedComponents (see Prepare).
func PrepareConnectedComponents(g *graph.Graph, cfg Config) func() ([]VertexID, *Result[VertexID], error) {
	if cfg.PackedState {
		prog := newCCPackedProgram(g.N())
		run := Prepare[struct{}, VertexID](g, prog, cfg)
		return func() ([]VertexID, *Result[VertexID], error) {
			res, err := run()
			if err != nil {
				return nil, nil, err
			}
			labels := prog.labels()
			return labels, &Result[VertexID]{Values: labels, Iterations: res.Iterations, Stats: res.Stats}, nil
		}
	}
	run := Prepare[VertexID, VertexID](g, ccProgram{}, cfg)
	return func() ([]VertexID, *Result[VertexID], error) {
		res, err := run()
		if err != nil {
			return nil, nil, err
		}
		return res.Values, res, nil
	}
}

// --- GAS single-source shortest paths ---

type ssspProgram struct{ src VertexID }

func (p ssspProgram) Init(g *graph.Graph, id VertexID) float64 {
	if id == p.src {
		return 0
	}
	return math.Inf(1)
}

// Gather offers a path to v through in-neighbor u: u's tentative
// distance plus the (u -> v) edge weight.
func (p ssspProgram) Gather(u VertexID, w float64, uDist float64) float64 { return uDist + w }

func (p ssspProgram) Zero() float64 { return math.Inf(1) }

func (p ssspProgram) Sum(a, b float64) float64 { return math.Min(a, b) }

func (p ssspProgram) Apply(v *float64, total float64) bool {
	if total < *v {
		*v = total
		return true
	}
	return false
}

// SSSP computes single-source shortest paths by pull-based distance
// relaxation (Bellman-Ford style): every vertex starts active, so the
// source's neighbors pick up their first finite distance in iteration
// 0 without the source pushing anything. Unreachable vertices keep
// +Inf, matching seq.Dijkstra. Min-relaxation is order-independent,
// so results are byte-identical across worker counts and fault
// schedules.
func SSSP(g *graph.Graph, src VertexID, cfg Config) ([]float64, *Result[float64], error) {
	return PrepareSSSP(g, src, cfg)()
}

// PrepareSSSP is the two-phase form of SSSP (see Prepare).
func PrepareSSSP(g *graph.Graph, src VertexID, cfg Config) func() ([]float64, *Result[float64], error) {
	run := Prepare[float64, float64](g, ssspProgram{src: src}, cfg)
	return func() ([]float64, *Result[float64], error) {
		res, err := run()
		if err != nil {
			return nil, nil, err
		}
		return res.Values, res, nil
	}
}

// --- Seeded programs for the adaptive plan layer ---
//
// A live engine handoff (internal/plan) exports vertex values at a
// superstep barrier and resumes them under another engine. The
// constructors below build GAS programs whose Init replays those
// exported values instead of the cold-start state; the gather/apply
// arithmetic is shared with the native programs, so a warm restart
// converges to the byte-identical fixpoint.

type seededCC struct {
	ccProgram
	seed []VertexID
}

func (p seededCC) Init(g *graph.Graph, id VertexID) VertexID {
	if p.seed != nil {
		return p.seed[id]
	}
	return id
}

// CCProgramSeeded is the HashMin component program warm-started from
// exported labels (nil seed is the identity cold start). Min-folding
// is monotone, so re-running from any sound upper bound reaches the
// same fixpoint bit-for-bit.
func CCProgramSeeded(seed []VertexID) Program[VertexID, VertexID] {
	return seededCC{seed: seed}
}

type seededSSSP struct {
	ssspProgram
	seed []float64
}

func (p seededSSSP) Init(g *graph.Graph, id VertexID) float64 {
	if p.seed != nil {
		return p.seed[id]
	}
	return p.ssspProgram.Init(g, id)
}

// SSSPProgramSeeded is the pull-relaxation SSSP program warm-started
// from exported tentative distances (+Inf for unreached vertices; nil
// seed is the source-only cold start).
func SSSPProgramSeeded(src VertexID, seed []float64) Program[float64, float64] {
	return seededSSSP{ssspProgram: ssspProgram{src: src}, seed: seed}
}

// prFixedK is synchronous power-iteration PageRank for exactly k
// folds, used by the adaptive plan layer so a GAS segment is
// bit-compatible with the Pregel fixed-iteration variant. Unlike the
// adaptive eps-scheduled prProgram it never stops early on small
// deltas: a vertex stays asleep only while every in-neighbor's rank is
// bitwise unchanged, in which case its skipped fold would have
// recomputed the identical value (same operands, same csr.In order).
// That lazy-wake invariant makes the k-th iterate equal, bit for bit,
// to the dense power iteration.
type prFixedK struct {
	n      int
	k      int
	alpha  float64
	seed   []float64
	outDeg []float64
	step   int
}

func (p *prFixedK) Init(g *graph.Graph, id VertexID) float64 {
	if p.seed != nil {
		return p.seed[id]
	}
	return 1 / float64(p.n)
}

// PrepareGAS precomputes out-degrees (dangling counts as 1, matching
// the Pregel variant's rank leak) from the pinned snapshot.
func (p *prFixedK) PrepareGAS(csr *graph.CSR) {
	p.outDeg = make([]float64, p.n)
	for v := 0; v < p.n; v++ {
		d := csr.OutDegree(VertexID(v))
		if d == 0 {
			d = 1
		}
		p.outDeg[v] = float64(d)
	}
}

// BeforeStep tracks the superstep so Apply can stop after exactly k
// folds.
func (p *prFixedK) BeforeStep(step int) { p.step = step }

func (p *prFixedK) Gather(u VertexID, w float64, uRank float64) float64 {
	return uRank / p.outDeg[u]
}

func (p *prFixedK) Zero() float64            { return 0 }
func (p *prFixedK) Sum(a, b float64) float64 { return a + b }

func (p *prFixedK) Apply(v *float64, total float64) bool {
	if p.step >= p.k {
		return false
	}
	nr := (1-p.alpha)/float64(p.n) + p.alpha*total
	changed := nr != *v
	*v = nr
	return changed && p.step+1 < p.k
}

// PageRankFixedK builds the fixed-iteration PageRank program: exactly
// k synchronous folds from seed ranks (nil means uniform 1/n). The
// returned program implements Preparer and Stepper.
func PageRankFixedK(n, k int, alpha float64, seed []float64) Program[float64, float64] {
	return &prFixedK{n: n, k: k, alpha: alpha, seed: seed}
}
