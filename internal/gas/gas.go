// Package gas implements a minimal gather-apply-scatter engine in the
// style of PowerGraph, the third programming model the paper's §1
// surveys next to synchronous vertex-centric (Pregel) and
// subgraph-centric (Giraph++). Computation is pull-based: an active
// vertex GATHERs an associative summary over its in-neighbors' values,
// APPLYs it to its own value, and — when the value changed — SCATTERs
// activation to its out-neighbors. There are no messages; each
// iteration reads a consistent snapshot of the previous iteration's
// values (double buffering), so the engine is deterministic and
// race-free by construction.
package gas

import (
	"errors"
	"fmt"
	"math"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// VertexID aliases graph.VertexID.
type VertexID = graph.VertexID

// Program is a GAS vertex program over value type V and gather type G.
type Program[V, G any] interface {
	// Init seeds vertex values; every vertex starts active.
	Init(g *graph.Graph, id VertexID) V
	// Gather produces u's contribution to v along edge (u -> v), given
	// u's value from the previous iteration.
	Gather(e graph.Edge, uVal V) G
	// Zero is the identity of Sum.
	Zero() G
	// Sum combines gather contributions (associative, commutative).
	Sum(a, b G) G
	// Apply folds the gathered total into v's value and reports whether
	// the value changed enough to scatter.
	Apply(v *V, total G) bool
}

// Config controls a GAS run.
type Config struct {
	Workers       int // default 4
	MaxIterations int // default 10·(n+64)
	// CheckpointEvery, when positive, snapshots the computation state
	// (values, active set) every k iterations for rollback recovery.
	CheckpointEvery int
	// Faults, when non-nil, schedules deterministic fault injection
	// (runtime.FaultPlan): worker crashes and corrupted checkpoints
	// roll the engine back to its last readable snapshot; a dropped
	// scatter batch (one worker's wake buffer lost in transit) forces
	// the same rollback, while a duplicated batch is absorbed because
	// activation delivery is idempotent (a set union).
	Faults *rt.FaultPlan
}

// ErrIterationCap reports a run exceeding Config.MaxIterations.
var ErrIterationCap = errors.New("gas: iteration cap reached")

// Result of a GAS run.
type Result[V any] struct {
	Values     []V
	Iterations int
	Stats      *bsp.Stats // Work = gather ops; Sent/Recv = activations
}

// Run executes prog on g to quiescence. The graph must be directed
// with in-adjacency built, or undirected (in = out).
func Run[V, G any](g *graph.Graph, prog Program[V, G], cfg Config) (*Result[V], error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 10 * (g.N() + 64)
	}
	if g.Directed {
		g.EnsureIn()
	}
	in := g.In
	if !g.Directed {
		in = g.Out
	}
	n := g.N()
	cur := make([]V, n)
	next := make([]V, n)
	for v := 0; v < n; v++ {
		cur[v] = prog.Init(g, VertexID(v))
	}
	active := make([]bool, n)
	nextActive := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	activeCount := n // O(1) quiescence check instead of an O(n) scan
	stats := &bsp.Stats{Workers: cfg.Workers, N: n}

	// Persistent workers, parked on the phase barrier between
	// iterations; per-worker wake buffers are reused across iterations.
	pool := rt.NewPool(cfg.Workers)
	defer pool.Close()
	wake := make([][]VertexID, cfg.Workers)

	inj := cfg.Faults.NewInjector(cfg.Workers)
	var cks rt.Checkpoints[*gasSnapshot[V]]
	lostBatch := false
	finish := func() {
		c := inj.Counts()
		stats.Recovery.DroppedLanes = c.DroppedLanes
		stats.Recovery.DuplicatedLanes = c.DuplicatedLanes
	}

	iter := 0
	for ; ; iter++ {
		if iter >= cfg.MaxIterations {
			finish()
			return &Result[V]{Values: cur, Iterations: iter, Stats: stats},
				fmt.Errorf("%w (cap %d)", ErrIterationCap, cfg.MaxIterations)
		}
		// The iteration barrier doubles as the failure-detection point:
		// a crashed worker or a scatter batch lost in transit rolls the
		// engine back to its newest readable snapshot before the
		// quiescence check (a lost batch can masquerade as quiescence).
		if _, crashed := inj.CrashAt(iter); crashed || lostBatch {
			lostBatch = false
			stats.Recovery.Rollbacks++
			snap, step, skipped, ok := cks.Recover()
			stats.Recovery.CorruptedCheckpoints += skipped
			if ok {
				cur = rt.CloneValues[V](prog, snap.values)
				copy(active, snap.active)
				activeCount = snap.activeCount
				stats.Recovery.RedoneSupersteps += iter - step
				iter = step
			} else {
				for v := 0; v < n; v++ {
					cur[v] = prog.Init(g, VertexID(v))
					active[v] = true
				}
				activeCount = n
				stats.Recovery.RedoneSupersteps += iter
				iter = 0
			}
			for i := range nextActive {
				nextActive[i] = false
			}
		}
		if activeCount == 0 {
			break
		}
		ss := bsp.SuperstepStats{
			Work: make([]int64, cfg.Workers),
			Sent: make([]int64, cfg.Workers),
			Recv: make([]int64, cfg.Workers),
		}
		pool.Run(func(w int) {
			for v := w; v < n; v += cfg.Workers {
				next[v] = cur[v]
				if !active[v] {
					continue
				}
				total := prog.Zero()
				for _, e := range in[v] {
					ss.Work[w]++
					total = prog.Sum(total, prog.Gather(e, cur[e.Dst]))
				}
				if prog.Apply(&next[v], total) {
					// Scatter: wake out-neighbors (buffered per
					// worker; merged after the barrier).
					for _, e := range g.Out[v] {
						ss.Sent[w]++
						wake[w] = append(wake[w], e.Dst)
					}
				}
				ss.Work[w]++
			}
		})
		activeCount = 0
		for w := 0; w < cfg.Workers; w++ {
			passes := 1
			switch inj.LaneFault(iter, w, 0) {
			case rt.FaultDropLane:
				// The worker's scatter batch is lost in transit; the
				// activations are unrecoverable, so force a rollback at
				// the next barrier.
				passes = 0
				lostBatch = true
			case rt.FaultDupLane:
				// A redelivered batch is absorbed: activation is a set
				// union, so merging it twice is a no-op.
				passes = 2
			}
			for p := 0; p < passes; p++ {
				for _, v := range wake[w] {
					if !nextActive[v] {
						nextActive[v] = true
						activeCount++
					}
				}
			}
			wake[w] = wake[w][:0]
		}
		cur, next = next, cur
		active, nextActive = nextActive, active
		for i := range nextActive {
			nextActive[i] = false
		}
		for w := 0; w < cfg.Workers; w++ {
			stats.TotalWork += ss.Work[w]
			stats.TotalMessages += ss.Sent[w]
		}
		stats.Supersteps = append(stats.Supersteps, ss)
		if k := cfg.CheckpointEvery; k > 0 && !lostBatch && (iter+1)%k == 0 {
			// A scheduled FaultCorruptCheckpoint damages this snapshot
			// silently; the store discovers it at recovery time. When a
			// batch was just dropped the barrier state is incomplete,
			// so no snapshot is taken.
			cks.Save(iter+1, &gasSnapshot[V]{
				values:      rt.CloneValues[V](prog, cur),
				active:      append([]bool(nil), active...),
				activeCount: activeCount,
			}, inj.CorruptSave(iter+1))
			stats.Recovery.CheckpointsSaved++
		}
	}
	finish()
	return &Result[V]{Values: cur, Iterations: iter, Stats: stats}, nil
}

// gasSnapshot is one checkpoint generation of a GAS run: the barrier
// state entering an iteration.
type gasSnapshot[V any] struct {
	values      []V
	active      []bool
	activeCount int
}

// --- GAS PageRank ---

type prProgram struct {
	n      int
	alpha  float64
	eps    float64
	outDeg []float64
}

type prVal struct{ rank float64 }

func (p *prProgram) Init(g *graph.Graph, id VertexID) prVal {
	return prVal{rank: 1 / float64(p.n)}
}

func (p *prProgram) Gather(e graph.Edge, uVal prVal) float64 {
	// e.Dst is the in-neighbor u; its rank spreads over its out-degree.
	return uVal.rank / p.outDeg[e.Dst]
}

func (p *prProgram) Zero() float64            { return 0 }
func (p *prProgram) Sum(a, b float64) float64 { return a + b }

func (p *prProgram) Apply(v *prVal, total float64) bool {
	nr := (1-p.alpha)/float64(p.n) + p.alpha*total
	changed := nr-v.rank > p.eps || v.rank-nr > p.eps
	v.rank = nr
	return changed
}

// PageRank runs adaptive (delta-scheduled) PageRank in the GAS model
// until every vertex's rank moves less than eps in an iteration.
func PageRank(g *graph.Graph, alpha, eps float64, cfg Config) ([]float64, *Result[prVal], error) {
	prog := &prProgram{n: g.N(), alpha: alpha, eps: eps}
	prog.outDeg = make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		d := len(g.Out[v])
		if d == 0 {
			d = 1 // dangling: rank leaks, matching the Pregel variant
		}
		prog.outDeg[v] = float64(d)
	}
	res, err := Run[prVal, float64](g, prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	ranks := make([]float64, g.N())
	for v, val := range res.Values {
		ranks[v] = val.rank
	}
	return ranks, res, nil
}

// --- GAS connected components (HashMin) ---

type ccProgram struct{}

func (ccProgram) Init(g *graph.Graph, id VertexID) VertexID { return id }

func (ccProgram) Gather(e graph.Edge, uVal VertexID) VertexID { return uVal }

// Zero is NoVertex, the identity of the min with "no contribution".
func (ccProgram) Zero() VertexID { return graph.NoVertex }

func (ccProgram) Sum(a, b VertexID) VertexID {
	if a == graph.NoVertex {
		return b
	}
	if b == graph.NoVertex {
		return a
	}
	if b < a {
		return b
	}
	return a
}

func (ccProgram) Apply(v *VertexID, total VertexID) bool {
	if total != graph.NoVertex && total < *v {
		*v = total
		return true
	}
	return false
}

// ConnectedComponents labels every vertex with the smallest vertex ID
// in its (weakly, pull-over-in-edges) connected component; on
// undirected graphs this matches seq.Components. Min is associative
// and order-independent, so the result is identical across worker
// counts and fault schedules.
func ConnectedComponents(g *graph.Graph, cfg Config) ([]VertexID, *Result[VertexID], error) {
	res, err := Run[VertexID, VertexID](g, ccProgram{}, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.Values, res, nil
}

// --- GAS single-source shortest paths ---

type ssspProgram struct{ src VertexID }

func (p ssspProgram) Init(g *graph.Graph, id VertexID) float64 {
	if id == p.src {
		return 0
	}
	return math.Inf(1)
}

// Gather offers a path to v through in-neighbor u: u's tentative
// distance plus the (u -> v) edge weight.
func (p ssspProgram) Gather(e graph.Edge, uDist float64) float64 { return uDist + e.W }

func (p ssspProgram) Zero() float64 { return math.Inf(1) }

func (p ssspProgram) Sum(a, b float64) float64 { return math.Min(a, b) }

func (p ssspProgram) Apply(v *float64, total float64) bool {
	if total < *v {
		*v = total
		return true
	}
	return false
}

// SSSP computes single-source shortest paths by pull-based distance
// relaxation (Bellman-Ford style): every vertex starts active, so the
// source's neighbors pick up their first finite distance in iteration
// 0 without the source pushing anything. Unreachable vertices keep
// +Inf, matching seq.Dijkstra. Min-relaxation is order-independent,
// so results are byte-identical across worker counts and fault
// schedules.
func SSSP(g *graph.Graph, src VertexID, cfg Config) ([]float64, *Result[float64], error) {
	res, err := Run[float64, float64](g, ssspProgram{src: src}, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.Values, res, nil
}
