// Package runtime is the shared execution substrate under the four
// processing engines (pregel, gas, async, blockcentric). It provides
// the reusable primitives:
//
//   - Pool / Lease: a shared worker pool whose goroutines are started
//     once per process (or per run, for private pools) and fed phase
//     tasks through one queue; engines dispatch phases through a Lease,
//     a per-run view that carries the run's virtual worker share and
//     its own completion channel, so many runs can share one pool
//     concurrently without their barriers interfering.
//   - Scheduler / Job: admission control over a shared pool — at most
//     maxJobs runs in flight, FIFO queueing beyond that — plus the Job
//     handle that owns a run's context, lease, per-superstep trace,
//     and cleanups.
//   - Mailbox[M]: generic sharded mailboxes with per-(src,dst)-worker
//     lanes, optional sender-side combining, and buffer reuse across
//     supersteps.
//   - Worklists / FIFO: active-vertex worklists so a superstep (or an
//     asynchronous drain) touches only vertices that are active or
//     have mail, with O(P) pending counters replacing O(n) scans.
//
// None of the primitives change what the engines measure: the BSP
// instrumentation (internal/bsp) still records raw, pre-combining
// message counts and per-worker work, so Stats semantics are
// byte-identical to the pre-runtime engines.
package runtime

import (
	stdruntime "runtime"
	"sync"
)

// DefaultWorkers returns the engines' default parallelism:
// min(4, GOMAXPROCS). Four workers keep the BSP cost model's P small
// and stable across machines while still exercising real parallelism.
func DefaultWorkers() int {
	w := 4
	if p := stdruntime.GOMAXPROCS(0); p < w {
		w = p
	}
	return w
}

// task is one unit of phase work: fn(idx) for one virtual worker of
// some lease, acknowledged on the lease's completion channel.
type task struct {
	fn   func(worker int)
	idx  int
	done chan<- struct{}
}

// Pool is a shared worker pool: W goroutines draining one task queue.
// Runs do not own the pool — each owns a Lease, which dispatches that
// run's virtual workers as tasks and waits for them on its private
// completion channel. Virtual worker counts are independent of W: a
// lease for P > W workers still runs all P tasks (at most W at a
// time), so a job's measured P·T accounting never depends on how many
// physical goroutines the pool happens to have.
//
// Close releases the goroutines; it must not race with in-flight
// Lease.Run calls.
type Pool struct {
	workers int
	tasks   chan task
	close   sync.Once
}

// NewPool starts a pool of workers goroutines (0 = DefaultWorkers).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan task, 2*workers),
	}
	for w := 0; w < workers; w++ {
		go func() {
			for t := range p.tasks {
				t.fn(t.idx)
				t.done <- struct{}{}
			}
		}()
	}
	return p
}

// NewProcessPool builds a process-wide pool sized to GOMAXPROCS, the
// substrate a Scheduler shares among concurrent jobs.
func NewProcessPool() *Pool { return NewPool(stdruntime.GOMAXPROCS(0)) }

// Workers returns the number of pool goroutines.
func (p *Pool) Workers() int { return p.workers }

// Lease carves a share-worker view out of the pool. The lease has no
// admission semantics of its own (see Scheduler.Acquire for that); its
// Release is a no-op unless a scheduler attached one.
func (p *Pool) Lease(share int) *Lease {
	if share <= 0 {
		share = p.workers
	}
	return &Lease{pool: p, share: share, done: make(chan struct{}, share)}
}

// Run executes fn(w) for every w in [0, P) over the pool's own width,
// through a transient lease. Engines inside a run use their Lease
// directly; Run is the convenience form for tests and one-off phases.
func (p *Pool) Run(fn func(worker int)) { p.Lease(p.workers).Run(fn) }

// Close parks the pool permanently, releasing its goroutines. The pool
// must not be used afterwards. Close is idempotent.
func (p *Pool) Close() {
	p.close.Do(func() { close(p.tasks) })
}

// Lease is one run's view of a shared Pool: Run dispatches the lease's
// share of virtual workers as pool tasks and waits for all of them (the
// phase barrier). The completion channel is owned by the lease and
// reused across phases, so a superstep's two dispatches allocate
// nothing; the channel send/receive pairs order the memory effects of
// phase k before phase k+1 exactly as the pre-lease pool did.
//
// A Lease is owned by a single orchestrating goroutine; concurrent
// Run calls on one lease are not allowed (concurrent runs each hold
// their own lease).
type Lease struct {
	pool    *Pool
	share   int
	done    chan struct{}
	release func()
	once    sync.Once
}

// Workers returns the lease's virtual worker share (the engine's P).
func (l *Lease) Workers() int { return l.share }

// Run executes fn(w) for every virtual worker w in [0, share) and
// waits for all of them.
func (l *Lease) Run(fn func(worker int)) {
	for i := 0; i < l.share; i++ {
		l.pool.tasks <- task{fn: fn, idx: i, done: l.done}
	}
	for i := 0; i < l.share; i++ {
		<-l.done
	}
}

// Release returns the lease's admission slot to its scheduler (no-op
// for plain pool leases). Idempotent.
func (l *Lease) Release() {
	l.once.Do(func() {
		if l.release != nil {
			l.release()
		}
	})
}
