// Package runtime is the shared execution substrate under the four
// processing engines (pregel, gas, async, blockcentric). It provides
// three reusable primitives:
//
//   - Pool: a persistent worker pool whose goroutines are started once
//     per engine run and parked on a phase barrier between supersteps,
//     replacing the per-superstep `go func` + WaitGroup churn that
//     previously dominated dispatch cost.
//   - Mailbox[M]: generic sharded mailboxes with per-(src,dst)-worker
//     lanes, optional sender-side combining, and buffer reuse across
//     supersteps.
//   - Worklists / FIFO: active-vertex worklists so a superstep (or an
//     asynchronous drain) touches only vertices that are active or
//     have mail, with O(P) pending counters replacing O(n) scans.
//
// None of the primitives change what the engines measure: the BSP
// instrumentation (internal/bsp) still records raw, pre-combining
// message counts and per-worker work, so Stats semantics are
// byte-identical to the pre-runtime engines.
package runtime

import stdruntime "runtime"

// DefaultWorkers returns the engines' default parallelism:
// min(4, GOMAXPROCS). Four workers keep the BSP cost model's P small
// and stable across machines while still exercising real parallelism.
func DefaultWorkers() int {
	w := 4
	if p := stdruntime.GOMAXPROCS(0); p < w {
		w = p
	}
	return w
}

// Pool is a persistent worker pool: P goroutines started once, woken
// for each phase, and parked again at the phase barrier. Run returns
// only after every worker has finished the phase, so phases are
// totally ordered (the BSP barrier) and the memory effects of phase k
// happen-before phase k+1 (channel send/receive pairs).
//
// A Pool is owned by a single orchestrating goroutine; Run and Close
// must not be called concurrently. Close releases the goroutines.
type Pool struct {
	workers int
	start   []chan func(worker int)
	done    chan struct{}
}

// NewPool starts workers parked goroutines.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{
		workers: workers,
		start:   make([]chan func(int), workers),
		done:    make(chan struct{}, workers),
	}
	for w := 0; w < workers; w++ {
		ch := make(chan func(int))
		p.start[w] = ch
		go func(w int, ch chan func(int)) {
			for fn := range ch {
				fn(w)
				p.done <- struct{}{}
			}
		}(w, ch)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(w) on every worker w in [0, P) and waits for all of
// them (the phase barrier).
func (p *Pool) Run(fn func(worker int)) {
	for _, ch := range p.start {
		ch <- fn
	}
	for range p.start {
		<-p.done
	}
}

// Close parks the pool permanently, releasing its goroutines. The pool
// must not be used afterwards. Close is idempotent.
func (p *Pool) Close() {
	for _, ch := range p.start {
		if ch != nil {
			close(ch)
		}
	}
	for i := range p.start {
		p.start[i] = nil
	}
}
