package runtime

import (
	"sync"

	"vcgraph/internal/graph"
)

// Scratch pooling: packed-snapshot span decoding needs a worker-local
// buffer that grows to the graph's maximum degree. The buffers are tiny
// but the serving workloads (the daemon, incremental queries, the
// adaptive planner's engine handoffs) construct engines in a steady
// stream, and re-growing a fresh buffer per run is avoidable garbage —
// so every engine leases its decode buffers here and returns them when
// the run ends, keeping the grown capacity alive across runs.

var scratchPool = sync.Pool{New: func() any { return new(graph.Scratch) }}

// GetScratch leases one span-decode buffer from the shared pool.
func GetScratch() *graph.Scratch { return scratchPool.Get().(*graph.Scratch) }

// PutScratch returns a leased buffer to the pool. The caller must not
// hold any span decoded into it afterwards.
func PutScratch(s *graph.Scratch) {
	if s != nil {
		scratchPool.Put(s)
	}
}

// GetScratches leases n buffers — one per worker or block.
func GetScratches(n int) []*graph.Scratch {
	ss := make([]*graph.Scratch, n)
	for i := range ss {
		ss[i] = GetScratch()
	}
	return ss
}

// PutScratches returns every leased buffer and nils the entries so a
// late use fails loudly instead of racing the next leaseholder.
func PutScratches(ss []*graph.Scratch) {
	for i, s := range ss {
		PutScratch(s)
		ss[i] = nil
	}
}
