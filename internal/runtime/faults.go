package runtime

import (
	"math/rand"
	"sort"
	"sync"
)

// Fault injection: a seeded, deterministic schedule of simulated
// failures that the engines consult at their barriers. The same
// FaultPlan produces the same fault sequence on every run, so a
// recovery bug reproduces from a single seed — and the differential
// tests can assert that a faulted run ends byte-identical to the
// fault-free one.
//
// The plan speaks in *barriers*: the pregel and block-centric engines
// map a barrier to a superstep, the GAS engine to an iteration, and
// the asynchronous engine to every k-th update (its checkpoint
// cadence). Each event fires exactly once, at the first barrier whose
// index reaches the event's Step — re-executed barriers after a
// rollback never re-fire an event, which guarantees every run with a
// finite plan terminates.

// FaultKind enumerates the failures the injector can simulate.
type FaultKind uint8

const (
	// FaultCrash kills a worker at a barrier: the engine loses its
	// volatile state (values, inboxes, worklists) and must recover
	// from its last readable checkpoint, or restart from scratch.
	FaultCrash FaultKind = iota + 1
	// FaultDropLane loses one mailbox lane's batch in transit during a
	// delivery phase. The receiver detects the missing batch (a real
	// system notices the unacknowledged transfer at the barrier) and
	// the engine rolls back, exactly as for a crash.
	FaultDropLane
	// FaultDupLane redelivers one lane batch. Message batches carry
	// per-lane sequence numbers, so the receiver detects the replay
	// and discards it (or, for idempotent activation sets as in the
	// GAS engine, absorbs it); either way results are unaffected.
	FaultDupLane
	// FaultCorruptCheckpoint flips bits in the checkpoint written at
	// the next checkpoint barrier. The damage is silent until a
	// recovery reads the snapshot, fails its validation, and falls
	// back to the previous generation (or a fresh restart).
	FaultCorruptCheckpoint
)

// String names the fault kind for logs and test failures.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultDropLane:
		return "drop-lane"
	case FaultDupLane:
		return "dup-lane"
	case FaultCorruptCheckpoint:
		return "corrupt-checkpoint"
	}
	return "none"
}

// FaultEvent schedules one fault. Worker and Lane are reduced modulo
// the engine's worker count when the injector is built, so one plan is
// valid under any parallelism.
type FaultEvent struct {
	Step   int // barrier index at which the event fires (>= semantics, one-shot)
	Kind   FaultKind
	Worker int // crash: the crashed worker; lane faults: the source worker
	Lane   int // lane faults: the destination worker
}

// Crash schedules a worker crash at the given barrier.
func Crash(step int) FaultEvent { return FaultEvent{Step: step, Kind: FaultCrash} }

// DropLane schedules the loss of lane (src → dst)'s batch at the given
// barrier's delivery phase.
func DropLane(step, src, dst int) FaultEvent {
	return FaultEvent{Step: step, Kind: FaultDropLane, Worker: src, Lane: dst}
}

// DupLane schedules the redelivery of lane (src → dst)'s batch at the
// given barrier's delivery phase.
func DupLane(step, src, dst int) FaultEvent {
	return FaultEvent{Step: step, Kind: FaultDupLane, Worker: src, Lane: dst}
}

// CorruptCheckpoint schedules silent corruption of the first checkpoint
// written at or after the given barrier.
func CorruptCheckpoint(step int) FaultEvent {
	return FaultEvent{Step: step, Kind: FaultCorruptCheckpoint}
}

// FaultPlan is a reproducible schedule of injected faults. Zero value =
// no faults. Plans are immutable and safe to share across runs; every
// run materializes its own Injector.
type FaultPlan struct {
	// Seed generates the schedule when Events is nil. Seed 0 with no
	// explicit events means an empty plan.
	Seed int64
	// Horizon bounds the barrier indices of generated events
	// (default 6 — early enough to fire on short runs).
	Horizon int
	// Events, when non-nil, is the explicit schedule and Seed is
	// ignored.
	Events []FaultEvent
}

// PlanOf builds a plan from explicit events.
func PlanOf(events ...FaultEvent) *FaultPlan {
	return &FaultPlan{Events: events}
}

// NewFaultPlan derives a deterministic mixed schedule from seed: one
// to two crashes and, depending on the seed, a dropped lane, a
// duplicated lane, and a corrupted checkpoint, all within the horizon.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{Seed: seed}
}

// materialize expands the plan into concrete events for a run with the
// given worker count.
func (p *FaultPlan) materialize(workers int) []FaultEvent {
	if p == nil {
		return nil
	}
	if workers <= 0 {
		workers = 1
	}
	events := p.Events
	if events == nil && p.Seed != 0 {
		horizon := p.Horizon
		if horizon <= 0 {
			horizon = 6
		}
		rng := rand.New(rand.NewSource(p.Seed))
		step := func() int { return rng.Intn(horizon) + 1 }
		events = append(events, FaultEvent{Step: step(), Kind: FaultCrash, Worker: rng.Intn(workers)})
		if rng.Intn(2) == 0 {
			events = append(events, FaultEvent{Step: step(), Kind: FaultDropLane, Worker: rng.Intn(workers), Lane: rng.Intn(workers)})
		}
		if rng.Intn(2) == 0 {
			events = append(events, FaultEvent{Step: step(), Kind: FaultDupLane, Worker: rng.Intn(workers), Lane: rng.Intn(workers)})
		}
		if rng.Intn(2) == 0 {
			// Corrupt a checkpoint written before a crash that follows
			// it, so the corruption is actually read during recovery.
			cs := step()
			events = append(events, FaultEvent{Step: cs, Kind: FaultCorruptCheckpoint})
			events = append(events, FaultEvent{Step: cs + 1 + rng.Intn(horizon), Kind: FaultCrash, Worker: rng.Intn(workers)})
		}
	}
	out := make([]FaultEvent, len(events))
	for i, ev := range events {
		ev.Worker = ((ev.Worker % workers) + workers) % workers
		ev.Lane = ((ev.Lane % workers) + workers) % workers
		out[i] = ev
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// FaultCounts tallies the events an injector has fired.
type FaultCounts struct {
	Crashes              int
	DroppedLanes         int
	DuplicatedLanes      int
	CorruptedCheckpoints int // checkpoints written corrupt (detected only when read back)
}

// Injector is one run's materialized fault schedule. Engines consult
// it at barriers (CrashAt, CorruptSave) and during delivery phases
// (LaneFault); the latter runs concurrently on all workers, so the
// injector is internally locked.
type Injector struct {
	mu      sync.Mutex
	pending []FaultEvent
	fired   []FaultEvent
	counts  FaultCounts
}

// NewInjector materializes the plan for a run with the given worker
// count. A nil plan yields a nil injector, on which every method is a
// safe no-op.
func (p *FaultPlan) NewInjector(workers int) *Injector {
	if p == nil {
		return nil
	}
	evs := p.materialize(workers)
	if len(evs) == 0 {
		return nil
	}
	return &Injector{pending: evs}
}

// take removes and returns the first pending event matching pred with
// Step <= step.
func (in *Injector) take(step int, pred func(FaultEvent) bool) (FaultEvent, bool) {
	for i, ev := range in.pending {
		if ev.Step > step {
			break // pending is sorted by Step
		}
		if pred(ev) {
			in.pending = append(in.pending[:i], in.pending[i+1:]...)
			in.fired = append(in.fired, ev)
			return ev, true
		}
	}
	return FaultEvent{}, false
}

// CrashAt reports whether a crash fault fires at the given barrier,
// returning the crashed worker. One-shot per scheduled crash.
func (in *Injector) CrashAt(step int) (worker int, ok bool) {
	if in == nil {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	ev, ok := in.take(step, func(e FaultEvent) bool { return e.Kind == FaultCrash })
	if ok {
		in.counts.Crashes++
	}
	return ev.Worker, ok
}

// LaneFault reports whether lane (src → dst)'s batch is dropped or
// duplicated during the delivery phase of the given barrier. Returns
// FaultDropLane, FaultDupLane, or 0. Safe to call concurrently from
// delivery workers.
func (in *Injector) LaneFault(step, src, dst int) FaultKind {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	ev, ok := in.take(step, func(e FaultEvent) bool {
		return (e.Kind == FaultDropLane || e.Kind == FaultDupLane) && e.Worker == src && e.Lane == dst
	})
	if !ok {
		return 0
	}
	if ev.Kind == FaultDropLane {
		in.counts.DroppedLanes++
	} else {
		in.counts.DuplicatedLanes++
	}
	return ev.Kind
}

// CorruptSave reports whether the checkpoint being written at the given
// barrier is silently corrupted. One-shot per scheduled corruption.
func (in *Injector) CorruptSave(step int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	_, ok := in.take(step, func(e FaultEvent) bool { return e.Kind == FaultCorruptCheckpoint })
	if ok {
		in.counts.CorruptedCheckpoints++
	}
	return ok
}

// Counts returns the tally of fired events so far.
func (in *Injector) Counts() FaultCounts {
	if in == nil {
		return FaultCounts{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// Fired returns the events that have fired, in firing order.
func (in *Injector) Fired() []FaultEvent {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]FaultEvent(nil), in.fired...)
}
