package runtime

import (
	"sync"
	"testing"
)

// Superstep dispatch: one compute phase + one delivery phase per
// superstep. The persistent pool parks its goroutines between phases;
// the baseline spawns fresh goroutines with a WaitGroup each phase,
// which is what all four engines did before the runtime existed.

func BenchmarkDispatchPool(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Run(func(int) {})
		p.Run(func(int) {})
	}
}

func BenchmarkDispatchGoroutineChurn(b *testing.B) {
	phase := func() {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(int) { defer wg.Done() }(w)
		}
		wg.Wait()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		phase()
		phase()
	}
}

// Mailbox delivery: a steady-state superstep where every vertex sends
// to a fixed fan-out of destinations. After warm-up the message path
// should allocate nothing (lanes and inboxes keep capacity).

func benchMailbox(b *testing.B, comb func(a, b int) int) {
	const n, workers, fanout = 1024, 4, 8
	owner := make([]int32, n)
	for v := range owner {
		owner[v] = int32(v % workers)
	}
	mb := NewMailbox[int](workers, owner, comb)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mb.Advance()
		for v := 0; v < n; v++ {
			src := int(owner[v])
			for j := 1; j <= fanout; j++ {
				mb.Send(src, VertexID((v+j)%n), v+j)
			}
		}
		for w := 0; w < workers; w++ {
			mb.Deliver(w, nil)
		}
		for v := 0; v < n; v++ {
			mb.ResetVertex(VertexID(v))
		}
	}
}

func BenchmarkMailboxDeliver(b *testing.B) { benchMailbox(b, nil) }

func BenchmarkMailboxDeliverCombining(b *testing.B) {
	benchMailbox(b, func(a, c int) int {
		if a < c {
			return a
		}
		return c
	})
}

// Worklist iteration: the per-superstep Flip/Sort/drain/re-add cycle
// over a frontier that stays at n/4 vertices, versus the O(n) full
// rescan it replaced.

func BenchmarkWorklistIteration(b *testing.B) {
	const n, workers = 8192, 4
	wl := NewWorklists(workers, n)
	for v := 0; v < n; v += 4 {
		wl.Add(v%workers, VertexID(v))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wl.Flip()
		for w := 0; w < workers; w++ {
			wl.SortCur(w, nil)
			for _, v := range wl.Cur(w) {
				wl.Unmark(v)
				wl.Add(w, v) // vertex stays active
			}
		}
	}
}

func BenchmarkWorklistFullScanBaseline(b *testing.B) {
	// What the engines did before: test every vertex's halt flag even
	// when only n/4 are active.
	const n = 8192
	halted := make([]bool, n)
	for v := 0; v < n; v++ {
		halted[v] = v%4 != 0
	}
	b.ReportAllocs()
	count := 0
	for i := 0; i < b.N; i++ {
		for v := 0; v < n; v++ {
			if !halted[v] {
				count++
			}
		}
	}
	_ = count
}

func BenchmarkFIFODrain(b *testing.B) {
	const n = 4096
	q := NewFIFO(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for v := 0; v < n; v++ {
			q.Push(VertexID(v))
		}
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	}
}
