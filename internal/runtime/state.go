package runtime

// StateSnapshotter is the engine-agnostic fault-tolerance hook for
// programs that keep state outside the engine's value array (e.g. the
// bit-packed stores in internal/vc). Engines whose checkpoints clone
// the value array (gas, async's worklist runner, blockcentric) only
// capture values they own; a program implementing this interface gets
// its private state captured alongside at checkpoint time and restored
// on rollback. RestoreState(nil) must reset to the pristine
// initial-state (a restart from superstep 0 with no checkpoint taken).
//
// Pregel programs use the pregel package's own Snapshotter, which
// predates this and has the same contract.
type StateSnapshotter interface {
	// SnapshotState returns an opaque deep copy of the program's
	// private state.
	SnapshotState() any
	// RestoreState replaces the program's private state with a copy
	// captured by SnapshotState, or resets to pristine when passed nil.
	RestoreState(state any)
}

// SnapshotProgState captures prog's private state if it participates
// in checkpointing, else nil.
func SnapshotProgState(prog any) any {
	if s, ok := prog.(StateSnapshotter); ok {
		return s.SnapshotState()
	}
	return nil
}

// RestoreProgState hands state (possibly nil, meaning pristine) back
// to prog if it participates in checkpointing.
func RestoreProgState(prog any, state any) {
	if s, ok := prog.(StateSnapshotter); ok {
		s.RestoreState(state)
	}
}
