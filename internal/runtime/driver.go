package runtime

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"

	"vcgraph/internal/bsp"
)

// ErrHandoff is the sentinel returned by Driver.Run when the configured
// Replan hook requested a live engine handoff at a superstep barrier.
// The run stops with the barrier state consistent (all messages of the
// previous superstep delivered, no rollback pending); the caller
// harvests the engine's partial values and resumes them under a fresh
// engine prepare. Match with errors.Is.
var ErrHandoff = errors.New("handoff requested at superstep barrier")

// Driver is the shared superstep kernel under all four engines. It owns
// the full per-barrier lifecycle — worker-pool dispatch, fault-plan
// firing (crashes at barriers, lost message batches), checkpoint cadence
// and rollback, cap and halting — and the measured cost accounting: one
// instrumented path computes each superstep's w (max local work over
// workers), h (max messages sent/received per partition), and
// max(w, g·h, L) into bsp.SuperstepStats, so every engine reports the
// time-processor product identically.
//
// An engine is a Policy: it fills the per-worker Work/Sent/Recv/Active
// slices while a superstep runs and defines what quiescence, a
// snapshot, and a restore mean for its model. Optional extensions
// (MasterPolicy, SerialFinishPolicy, BarrierFaultPolicy, EarlyStopper,
// RollbackWeigher) are discovered by type assertion.
type Policy[S any] interface {
	// Quiescent reports whether the computation has converged at the
	// barrier entering step, after fault detection and rollback.
	// pending is the superstep's in-flight message count as returned by
	// the previous Superstep (or restored from a checkpoint).
	Quiescent(step, pending int) bool
	// Superstep executes one superstep's phases, charging per-worker
	// load into ss, and returns the number of messages pending for the
	// next superstep. A policy whose delivery loses a message batch in
	// transit must call Driver.LoseBatch; a policy that enforces its
	// own cap returns a non-nil error, which aborts the run verbatim.
	Superstep(step int, ss *bsp.SuperstepStats) (pending int, err error)
	// Snapshot deep-copies the barrier state for a checkpoint.
	Snapshot() S
	// Restore reloads a snapshot taken at barrier step (ok), or
	// reinitializes the computation from scratch (!ok, step 0).
	Restore(snap S, step int, ok bool)
}

// MasterPolicy is an optional Policy extension: BeforeSuperstep runs
// single-threaded before each superstep, after fault detection but
// before the quiescence check (pregel's master compute). Returning
// halt=true terminates the run at this barrier.
type MasterPolicy interface {
	BeforeSuperstep(step, pending int) (halt bool)
}

// SerialFinishPolicy is an optional Policy extension for "finishing
// computations serially": after a clean superstep the driver offers the
// policy the chance to complete the run in one sequential step.
// Returning done=true ends the run; the driver records one final
// superstep charging work (and active units) to worker 0.
type SerialFinishPolicy interface {
	FinishSerially(pending int) (work, active int64, done bool)
}

// BarrierFaultPolicy is an optional Policy extension for engines whose
// message-lane faults fire at the barrier itself rather than inside a
// delivery phase (the async engine's epoch boundaries): BarrierFaults
// runs before crash detection and reports whether a batch was lost.
type BarrierFaultPolicy interface {
	BarrierFaults(inj *Injector, step int) (lost bool)
}

// EarlyStopper is an optional Policy extension checked at the top of
// each barrier, before fault detection: a policy whose previous
// superstep ended mid-stride (the async engine draining its worklist
// partway through an epoch) returns true to end the run without
// another barrier's fault/checkpoint processing.
type EarlyStopper interface {
	Stopped() bool
}

// RollbackWeigher is an optional Policy extension that converts redone
// barriers into the engine's work unit for Recovery.RedoneSupersteps
// (the async engine counts redone updates, not epochs). Without it the
// driver charges failed - resumed.
type RollbackWeigher interface {
	RedoneUnits(resumed, failed int) int
}

// DeltaPolicy is an optional Policy extension enabling delta
// checkpoints. SnapshotDelta deep-copies only the state dirtied since
// the previous snapshot (full or delta) into a patch frame; both
// Snapshot and SnapshotDelta reset the policy's dirty tracking, so each
// frame patches exactly the one before it. RestoreDelta applies a patch
// on top of already-restored state: the driver rebuilds a generation by
// calling Restore with the chain's base full frame, then RestoreDelta
// for each dependent delta frame in save order.
//
// The driver only takes delta snapshots between full ones
// (DriverConfig.FullSnapshotEvery) and forces the save after any
// rollback to be full — a restore rewrites state wholesale, so the
// dirty set no longer describes a patch against any stored frame.
type DeltaPolicy[S any] interface {
	SnapshotDelta() S
	RestoreDelta(patch S)
}

// SnapshotSizer is an optional Policy extension reporting the estimated
// resident bytes of a checkpoint frame (full or delta), feeding
// Recovery.CheckpointBytesFull/Delta. Estimates must be deterministic —
// they are benchmarked ratios, not allocator truth; opaque
// program-private state may be excluded as long as full and delta
// frames exclude it alike.
type SnapshotSizer[S any] interface {
	FrameBytes(snap S) int64
}

// DriverConfig parameterizes a Driver run.
type DriverConfig struct {
	// Name prefixes the cap error ("pregel: superstep cap reached ...").
	Name string
	// Workers sizes the pool and the per-superstep stat slices.
	Workers int
	// MaxSteps caps the run; exceeding it returns CapErr wrapped.
	MaxSteps int
	// CapErr is the engine's sentinel (normally bsp.ErrSuperstepCap).
	CapErr error
	// CheckpointEvery > 0 snapshots the barrier state every k steps.
	CheckpointEvery int
	// FullSnapshotEvery > 1 stores only every Nth checkpoint as a full
	// snapshot when the policy implements DeltaPolicy; the saves in
	// between are dirty-set delta frames patching the previous one.
	// 0 (or 1, or a policy without delta support) keeps every
	// checkpoint full — the legacy behavior.
	FullSnapshotEvery int
	// Faults schedules deterministic fault injection (nil = none).
	Faults *FaultPlan
	// EpochSaves selects the async engine's checkpoint ordering: the
	// snapshot is taken at the top of every barrier, after fault
	// detection — instead of at the end of every k-th superstep, before
	// the next barrier's fault check.
	EpochSaves bool
	// Model prices each superstep; zero value means bsp.DefaultModel.
	Model bsp.CostModel
	// Ctx, when non-nil, gates every superstep barrier: once it is
	// cancelled or past its deadline the run aborts at the next barrier
	// — before fault firing and rollback, so an abort never replays
	// work — and Run returns the context's cause. nil = never aborted.
	Ctx context.Context
	// Pool, when non-nil, is a caller-owned shared worker pool: the
	// driver leases Workers virtual workers from it for the run instead
	// of building (and tearing down) a private pool. The pool outlives
	// the run and may serve other runs concurrently.
	Pool *Pool
	// Job, when non-nil, binds the run to a scheduler-admitted job
	// handle: the run executes on the job's lease, under the job's
	// context (overriding Ctx), and publishes each superstep record to
	// the handle for streaming. The job's admitted share must equal
	// Workers — engines derive Workers from Job.Workers() to guarantee
	// it.
	Job *Job
	// Replan, when non-nil, is consulted at every superstep barrier
	// after fault detection, rollback, and the quiescence check — the
	// point where the engine's state is complete and consistent.
	// Returning true stops the run with ErrHandoff (wrapped): the
	// adaptive plan layer then exports the engine's values and resumes
	// the computation under a different engine or mode. pending is the
	// in-flight message count entering the barrier, as for Quiescent.
	Replan func(step, pending int) bool
}

// Driver runs a Policy to termination. One Driver serves one Run.
type Driver[S any] struct {
	cfg   DriverConfig
	pol   Policy[S]
	stats *bsp.Stats
	model bsp.CostModel

	lease *Lease
	inj   *Injector
	cks   Checkpoints[ckFrame[S]]
	lost  bool
	step  int
	// sinceFull counts delta frames saved since the last full one;
	// forceFull pins the next save to a full frame after a rollback
	// (the dirty set no longer patches any stored frame).
	sinceFull int
	forceFull bool
	// scratch holds the superstep being measured; a field rather than a
	// local so passing its address through the Policy interface does not
	// heap-allocate a struct per superstep.
	scratch bsp.SuperstepStats
}

// ckFrame pairs a policy snapshot with the driver-owned pending count,
// so engine snapshot types carry only engine state.
type ckFrame[S any] struct {
	snap    S
	pending int
}

// NewDriver builds a driver for pol, charging instrumentation into
// stats.
func NewDriver[S any](pol Policy[S], stats *bsp.Stats, cfg DriverConfig) *Driver[S] {
	model := cfg.Model
	if model == (bsp.CostModel{}) {
		model = bsp.DefaultModel
	}
	return &Driver[S]{cfg: cfg, pol: pol, stats: stats, model: model}
}

// Lease returns the run's worker lease (valid during Run): the view
// through which the policy dispatches its parallel phases.
func (d *Driver[S]) Lease() *Lease { return d.lease }

// Injector returns the run's fault injector (nil without faults; all
// Injector methods are nil-safe).
func (d *Driver[S]) Injector() *Injector { return d.inj }

// LoseBatch marks the running superstep's barrier state incomplete: a
// message batch was dropped in transit. The driver skips the
// checkpoint and serial finish for this step and rolls back at the next
// barrier. Call it only from single-threaded policy code (between pool
// phases), not from pool workers.
func (d *Driver[S]) LoseBatch() { d.lost = true }

// Run executes the policy to termination: quiescence, a master halt, a
// serial finish, the step cap, or a policy error. It returns the number
// of steps executed (the barrier index at which the run stopped).
func (d *Driver[S]) Run() (steps int, err error) {
	// Memory observability: bracket the run with ReadMemStats so every
	// engine reports how much heap the run grew and allocated — the
	// comparative counters behind the memory-lean substrate.
	var m0 goruntime.MemStats
	goruntime.ReadMemStats(&m0)
	defer func() {
		var m1 goruntime.MemStats
		goruntime.ReadMemStats(&m1)
		d.stats.HeapInuseDelta += int64(m1.HeapInuse) - int64(m0.HeapInuse)
		d.stats.TotalAllocDelta += m1.TotalAlloc - m0.TotalAlloc
	}()
	ctx := d.cfg.Ctx
	if d.cfg.Job != nil {
		ctx = d.cfg.Job.Context()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Worker substrate, by preference: the job's admitted lease, a
	// lease on a caller-shared pool, or — the legacy fallback — a
	// private pool built for this run alone.
	switch {
	case d.cfg.Job != nil:
		l := d.cfg.Job.leaseHandle()
		if l == nil {
			panic("runtime: Driver run under a job with no lease (jobs must come from Scheduler.Submit)")
		}
		if l.Workers() != d.cfg.Workers {
			panic(fmt.Sprintf("runtime: job lease share %d != driver workers %d", l.Workers(), d.cfg.Workers))
		}
		d.lease = l
	case d.cfg.Pool != nil:
		d.lease = d.cfg.Pool.Lease(d.cfg.Workers)
	default:
		pool := NewPool(d.cfg.Workers)
		defer pool.Close()
		d.lease = pool.Lease(d.cfg.Workers)
	}
	defer func() { d.lease = nil }()
	d.inj = d.cfg.Faults.NewInjector(d.cfg.Workers)

	master, hasMaster := d.pol.(MasterPolicy)
	finisher, hasFinisher := d.pol.(SerialFinishPolicy)
	barrier, hasBarrier := d.pol.(BarrierFaultPolicy)
	stopper, hasStopper := d.pol.(EarlyStopper)

	pending := 0
	capHit := false
	aborted := false
	handoff := false
	var polErr error
	for d.step = 0; ; d.step++ {
		// Cancellation wins over everything at the barrier: an aborted
		// run fires no faults, takes no checkpoint, and never rolls
		// back — the caller asked it to stop, not to recover.
		if ctx.Err() != nil {
			aborted = true
			break
		}
		if d.step >= d.cfg.MaxSteps {
			capHit = true
			break
		}
		if hasStopper && stopper.Stopped() {
			break
		}
		// The barrier doubles as the failure-detection point: a crashed
		// worker or a batch lost in the previous delivery rolls the run
		// back to its newest readable checkpoint before the quiescence
		// check (a lost batch can masquerade as quiescence).
		if hasBarrier && barrier.BarrierFaults(d.inj, d.step) {
			d.lost = true
		}
		if _, crashed := d.inj.CrashAt(d.step); crashed || d.lost {
			d.lost = false
			d.step, pending = d.rollback()
		}
		if d.cfg.EpochSaves && d.cfg.CheckpointEvery > 0 && d.step > 0 {
			d.save(d.step, pending)
		}
		if hasMaster && master.BeforeSuperstep(d.step, pending) {
			break
		}
		if d.pol.Quiescent(d.step, pending) {
			break
		}
		// The handoff point: past fault detection and rollback (the
		// barrier state is consistent) and past the quiescence check (a
		// finished run never switches engines).
		if d.cfg.Replan != nil && d.cfg.Replan(d.step, pending) {
			handoff = true
			break
		}
		pending, polErr = d.runSuperstep()
		if polErr != nil {
			break
		}
		if d.lost {
			// The barrier state is incomplete: neither checkpointed nor
			// finished serially. Roll back at the top of the next step.
			continue
		}
		if k := d.cfg.CheckpointEvery; !d.cfg.EpochSaves && k > 0 && (d.step+1)%k == 0 {
			d.save(d.step+1, pending)
		}
		if hasFinisher {
			if work, active, done := finisher.FinishSerially(pending); done {
				d.recordSerialStep(work, active)
				d.step++ // count the serial step
				break
			}
		}
	}

	if d.inj != nil {
		c := d.inj.Counts()
		d.stats.Recovery.DroppedLanes = c.DroppedLanes
		d.stats.Recovery.DuplicatedLanes = c.DuplicatedLanes
	}
	if polErr != nil {
		return d.step, polErr
	}
	if handoff {
		return d.step, fmt.Errorf("%s: %w (barrier %d)", d.cfg.Name, ErrHandoff, d.step)
	}
	if aborted {
		return d.step, fmt.Errorf("%s: %w", d.cfg.Name, context.Cause(ctx))
	}
	if capHit {
		return d.step, fmt.Errorf("%s: %w (cap %d)", d.cfg.Name, d.cfg.CapErr, d.cfg.MaxSteps)
	}
	return d.step, nil
}

// runSuperstep executes one superstep through the policy and finalizes
// the measured accounting at the barrier: w, h, and max(w, g·h, L) per
// superstep, plus the run totals.
func (d *Driver[S]) runSuperstep() (int, error) {
	d.scratch = bsp.NewSuperstepStats(d.cfg.Workers)
	pending, err := d.pol.Superstep(d.step, &d.scratch)
	d.record(d.scratch)
	return pending, err
}

// recordSerialStep appends the one single-worker superstep a serial
// finish is charged as.
func (d *Driver[S]) recordSerialStep(work, active int64) {
	ss := bsp.NewSuperstepStats(d.cfg.Workers)
	ss.Work[0] = work
	ss.Active[0] = active
	d.record(ss)
}

func (d *Driver[S]) record(ss bsp.SuperstepStats) {
	ss.MaxWork = ss.W()
	ss.MaxComm = ss.H()
	ss.Cost = d.model.SuperstepTime(ss)
	for w := range ss.Work {
		d.stats.TotalWork += ss.Work[w]
		d.stats.TotalMessages += ss.Sent[w]
	}
	d.stats.MeasuredTime += ss.Cost
	d.stats.Supersteps = append(d.stats.Supersteps, ss)
	if d.cfg.Job != nil {
		d.cfg.Job.observe(ss)
	}
}

// save checkpoints the barrier state entering step — a full snapshot,
// or a dirty-set delta against the previous frame when the policy
// supports deltas and the chain is not due for a full one. A scheduled
// FaultCorruptCheckpoint damages the frame silently; the store only
// discovers it when a recovery reads the frame's chain back.
func (d *Driver[S]) save(step, pending int) {
	dp, deltaCapable := d.pol.(DeltaPolicy[S])
	full := !deltaCapable || d.cfg.FullSnapshotEvery <= 1 ||
		d.forceFull || d.cks.Saved() == 0 ||
		d.sinceFull >= d.cfg.FullSnapshotEvery-1
	var snap S
	if full {
		snap = d.pol.Snapshot()
		d.sinceFull = 0
		d.forceFull = false
	} else {
		snap = dp.SnapshotDelta()
		d.sinceFull++
		d.stats.Recovery.DeltaCheckpointsSaved++
	}
	d.cks.Save(step, ckFrame[S]{snap: snap, pending: pending}, full, d.inj.CorruptSave(step))
	d.stats.Recovery.CheckpointsSaved++
	if sizer, sized := d.pol.(SnapshotSizer[S]); sized {
		if b := sizer.FrameBytes(snap); full {
			d.stats.Recovery.CheckpointBytesFull += b
		} else {
			d.stats.Recovery.CheckpointBytesDelta += b
		}
	}
}

// rollback restores the newest reconstructible generation (base full
// frame plus its delta chain, or a fresh start) and returns the barrier
// position to resume from.
func (d *Driver[S]) rollback() (resumed, pending int) {
	d.stats.Recovery.Rollbacks++
	chain, step, skipped, invalidated, ok := d.cks.Recover()
	d.stats.Recovery.CorruptedCheckpoints += skipped
	d.stats.Recovery.InvalidatedCheckpoints += invalidated
	d.forceFull = true
	if !ok {
		var zero S
		d.pol.Restore(zero, 0, false)
		step, pending = 0, 0
	} else {
		d.pol.Restore(chain[0].snap, step, true)
		if len(chain) > 1 {
			dp := d.pol.(DeltaPolicy[S]) // delta frames only exist for delta policies
			for _, f := range chain[1:] {
				dp.RestoreDelta(f.snap)
			}
		}
		pending = chain[len(chain)-1].pending
	}
	redone := d.step - step
	if w, isWeigher := d.pol.(RollbackWeigher); isWeigher {
		redone = w.RedoneUnits(step, d.step)
	}
	d.stats.Recovery.RedoneSupersteps += redone
	return step, pending
}
