package runtime

import (
	"fmt"

	"vcgraph/internal/bsp"
)

// WorklistRunner is the FIFO-worklist execution policy shared by the
// asynchronous engine and the incremental (evolving-graph) programs:
// one Driver step is one epoch of up to EpochLen updates popped from a
// deduplicating FIFO, each applied immediately and pushing its
// activations back. The Driver supplies the barrier lifecycle — fault
// detection, checkpoint cadence (EpochSaves ordering), rollback — so a
// program gets crash/drop/dup/corrupt recovery by filling in Update.
//
// The restart state is parameterized: a full run seeds every vertex
// (PristineQueue nil), an incremental run seeds only the vertices its
// delta analysis dirtied — a checkpoint-free rollback then replays
// exactly that seed set, keeping faulted incremental runs byte-identical
// to fault-free ones.
type WorklistRunner[V any] struct {
	// Name prefixes error messages ("async", "vc: incremental sssp").
	Name string
	// Update recomputes v from current values and returns the vertices
	// to (re)activate. The returned slice is consumed before the next
	// call, so implementations may reuse a scratch buffer.
	Update func(v VertexID) []VertexID
	// Prog is consulted for the optional ValueCloner deep-copy hook
	// when values are snapshotted or restored.
	Prog any
	// Values points at the live value slice; Restore replaces it.
	Values *[]V
	// Queue is the worklist, seeded by the caller before Run.
	Queue *FIFO
	// N is the vertex count.
	N int
	// EpochLen is the number of updates per driver step (fault
	// detection / checkpoint granularity).
	EpochLen int
	// MaxUpdates caps total updates; exceeding it returns CapErr.
	MaxUpdates int
	// CapErr is the sentinel wrapped into the cap error.
	CapErr error
	// PristineValues, when set, are the seed-time values restored by a
	// checkpoint-free rollback (required when faults are injected).
	PristineValues []V
	// PristineQueue is the seed worklist for a checkpoint-free
	// rollback; nil means every vertex 0..N-1.
	PristineQueue []VertexID

	updates int
	// dirty marks the vertices popped (and therefore possibly
	// rewritten — Update writes only values[v]) since the last
	// checkpoint frame; Snapshot, SnapshotDelta, and Restore clear it.
	// Allocated lazily at the first epoch.
	dirty []bool
}

// Updates returns the total number of vertex updates applied.
func (p *WorklistRunner[V]) Updates() int { return p.updates }

// Quiescent implements Policy: the worklist drained.
func (p *WorklistRunner[V]) Quiescent(step, pending int) bool { return p.Queue.Len() == 0 }

// Stopped implements EarlyStopper: the previous epoch ended mid-stride
// with the worklist drained, so the run is over without another
// boundary's fault/checkpoint processing.
func (p *WorklistRunner[V]) Stopped() bool {
	return p.updates%p.EpochLen != 0 && p.Queue.Len() == 0
}

// BarrierFaults implements BarrierFaultPolicy: activation-batch faults
// fire at the epoch boundary itself. A dropped batch forces a rollback
// (the worklist cannot be reconstructed in place); a duplicated batch
// is absorbed because the FIFO deduplicates scheduled vertices.
func (p *WorklistRunner[V]) BarrierFaults(inj *Injector, step int) (lost bool) {
	switch inj.LaneFault(step, 0, 0) {
	case FaultDropLane:
		return true
	case FaultDupLane:
		for _, w := range p.Queue.Snapshot() {
			p.Queue.Push(w)
		}
	}
	return false
}

// RedoneUnits implements RollbackWeigher: recovery cost is counted in
// redone updates, not epochs.
func (p *WorklistRunner[V]) RedoneUnits(resumed, failed int) int {
	return (failed - resumed) * p.EpochLen
}

// Superstep implements Policy: drain up to one epoch of updates,
// applying each immediately. Updates gather from live neighbor values,
// so the engine is pull-based by construction; an epoch that starts
// with a dense worklist is marked Pulled, and its activations take the
// bulk FIFO.PushAll path (identical order and dedup to per-vertex
// pushes, with the queue bookkeeping hoisted out of the loop).
func (p *WorklistRunner[V]) Superstep(step int, ss *bsp.SuperstepStats) (int, error) {
	ss.Frontier = int64(p.Queue.Len())
	ss.Pulled = ChoosePull(DirectionAuto, true, p.Queue.Len(), p.N, 0)
	if p.dirty == nil {
		p.dirty = make([]bool, p.N)
	}
	for i := 0; i < p.EpochLen; i++ {
		v, ok := p.Queue.Pop()
		if !ok {
			break
		}
		p.dirty[v] = true
		if p.updates >= p.MaxUpdates {
			return p.Queue.Len(), fmt.Errorf("%s: %w (cap %d)", p.Name, p.CapErr, p.MaxUpdates)
		}
		p.updates++
		ss.Work[0]++
		ss.Active[0]++
		acts := p.Update(v)
		ss.Sent[0] += int64(len(acts))
		p.Queue.PushAll(acts)
	}
	return p.Queue.Len(), nil
}

// Snapshot implements Policy: values plus the worklist in arrival
// order. The update count is implied by the boundary step
// (step · EpochLen), so it is not stored.
func (p *WorklistRunner[V]) Snapshot() *WorklistSnapshot[V] {
	p.clearDirty()
	return &WorklistSnapshot[V]{
		values:    CloneValues[V](p.Prog, *p.Values),
		queue:     p.Queue.Snapshot(),
		progState: SnapshotProgState(p.Prog),
	}
}

// SnapshotDelta implements DeltaPolicy: only the values of vertices
// popped since the previous frame, the complete worklist (small on
// sparse tails, and required — the queue cannot be patched), and the
// full program-private state.
func (p *WorklistRunner[V]) SnapshotDelta() *WorklistSnapshot[V] {
	var ids []VertexID
	for v, d := range p.dirty {
		if d {
			ids = append(ids, VertexID(v))
			p.dirty[v] = false
		}
	}
	return &WorklistSnapshot[V]{
		delta:     true,
		ids:       ids,
		values:    CloneValuesAt(p.Prog, *p.Values, ids),
		queue:     p.Queue.Snapshot(),
		progState: SnapshotProgState(p.Prog),
	}
}

// RestoreDelta implements DeltaPolicy: patch the popped vertices'
// values onto the chain state and replace the worklist wholesale (each
// frame carries it complete). The update count was already set by the
// base Restore from the chain's final step.
func (p *WorklistRunner[V]) RestoreDelta(snap *WorklistSnapshot[V]) {
	vals := *p.Values
	if cloner, ok := p.Prog.(ValueCloner[V]); ok {
		for i, id := range snap.ids {
			vals[id] = cloner.CloneValue(snap.values[i])
		}
	} else {
		for i, id := range snap.ids {
			vals[id] = snap.values[i]
		}
	}
	p.Queue.Load(snap.queue)
	RestoreProgState(p.Prog, snap.progState)
}

// FrameBytes implements SnapshotSizer: a deterministic resident-byte
// estimate of a frame (full or delta); program-private state is opaque
// and excluded on both frame kinds alike.
func (p *WorklistRunner[V]) FrameBytes(snap *WorklistSnapshot[V]) int64 {
	szID := SizeOf[VertexID]()
	return int64(len(snap.values))*SizeOf[V]() +
		int64(len(snap.ids))*szID +
		int64(len(snap.queue))*szID
}

func (p *WorklistRunner[V]) clearDirty() {
	for v := range p.dirty {
		p.dirty[v] = false
	}
}

// Restore implements Policy: a readable checkpoint restores its values
// and worklist; a checkpoint-free rollback replays the pristine seed
// state captured before the run.
func (p *WorklistRunner[V]) Restore(snap *WorklistSnapshot[V], step int, ok bool) {
	p.clearDirty()
	if ok {
		*p.Values = CloneValues[V](p.Prog, snap.values)
		p.Queue.Load(snap.queue)
		p.updates = step * p.EpochLen
		RestoreProgState(p.Prog, snap.progState)
		return
	}
	*p.Values = CloneValues[V](p.Prog, p.PristineValues)
	RestoreProgState(p.Prog, nil)
	if p.PristineQueue != nil {
		p.Queue.Load(p.PristineQueue)
	} else {
		p.Queue.Load(nil)
		for v := 0; v < p.N; v++ {
			p.Queue.Push(VertexID(v))
		}
	}
	p.updates = 0
}

// WorklistSnapshot is one checkpoint generation of a worklist run: the
// values and the worklist (in arrival order) at an epoch boundary,
// plus any program-private state (StateSnapshotter). A delta frame
// (SnapshotDelta) sets delta and indexes values by position in ids;
// the queue is always complete.
type WorklistSnapshot[V any] struct {
	values    []V
	queue     []VertexID
	progState any

	delta bool
	ids   []VertexID
}
