package runtime

import (
	"math/rand"
	"sync"
	"testing"
)

func TestPackedIntsRoundTrip(t *testing.T) {
	for _, domain := range []uint64{1, 2, 3, 5, 17, 255, 256, 1 << 20} {
		rng := rand.New(rand.NewSource(int64(domain)))
		n := 257
		p := NewPackedInts(n, domain)
		d := NewDenseStore(n)
		if p.Len() != n || d.Len() != n {
			t.Fatalf("domain %d: Len = %d/%d, want %d", domain, p.Len(), d.Len(), n)
		}
		for i := 0; i < n; i++ {
			if p.Get(i) != 0 {
				t.Fatalf("domain %d: fresh store entry %d = %d, want 0", domain, i, p.Get(i))
			}
		}
		// Random writes, including rewrites, mirrored against the dense
		// reference.
		for k := 0; k < 4*n; k++ {
			i := rng.Intn(n)
			x := rng.Uint64() % domain
			p.Set(i, x)
			d.Set(i, x)
		}
		for i := 0; i < n; i++ {
			if p.Get(i) != d.Get(i) {
				t.Fatalf("domain %d: entry %d = %d, dense says %d", domain, i, p.Get(i), d.Get(i))
			}
		}
		if p.SizeBytes() > d.SizeBytes() {
			t.Fatalf("domain %d: packed %d B > dense %d B", domain, p.SizeBytes(), d.SizeBytes())
		}
	}
}

func TestPackedIntsWidth(t *testing.T) {
	for _, tc := range []struct {
		domain uint64
		width  uint
	}{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {256, 8}, {257, 9}, {1 << 32, 32}} {
		if w := NewPackedInts(8, tc.domain).Width(); w != tc.width {
			t.Errorf("domain %d: width = %d, want %d", tc.domain, w, tc.width)
		}
	}
}

func TestPackedIntsDomainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set above the domain did not panic")
		}
	}()
	p := NewPackedInts(4, 4) // 2-bit entries
	p.Set(0, 4)
}

func TestPackedIntsCloneCopy(t *testing.T) {
	p := NewPackedInts(10, 100)
	for i := 0; i < 10; i++ {
		p.Set(i, uint64(i*7))
	}
	c := p.Clone()
	p.Set(3, 99)
	if c.Get(3) != 21 {
		t.Fatalf("clone aliases original: entry 3 = %d, want 21", c.Get(3))
	}
	p.CopyFrom(c)
	if p.Get(3) != 21 {
		t.Fatalf("CopyFrom: entry 3 = %d, want 21", p.Get(3))
	}
}

// TestPackedIntsWordSharing hammers entries that share words from
// different goroutines — the engines' situation when vertices of
// different workers land in one 64-bit word. Run under -race this also
// proves the CAS/atomic-load discipline.
func TestPackedIntsWordSharing(t *testing.T) {
	const n, workers, rounds = 64, 8, 2000
	p := NewPackedInts(n, 64) // 6-bit entries: ~10 per word
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker w owns entries i with i % workers == w (hash
			// partition): maximal word interleaving.
			for r := 1; r <= rounds; r++ {
				for i := w; i < n; i += workers {
					p.Set(i, uint64((i+r)%64))
					if got, want := p.Get(i), uint64((i+r)%64); got != want {
						t.Errorf("entry %d = %d, want %d", i, got, want)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if got, want := p.Get(i), uint64((i+rounds)%64); got != want {
			t.Fatalf("final entry %d = %d, want %d", i, got, want)
		}
	}
}

func TestStateStoreFactory(t *testing.T) {
	if _, ok := NewStateStore(true, 5, 10).(*PackedInts); !ok {
		t.Error("NewStateStore(packed) did not return a PackedInts")
	}
	if _, ok := NewStateStore(false, 5, 10).(*DenseStore); !ok {
		t.Error("NewStateStore(dense) did not return a DenseStore")
	}
}
