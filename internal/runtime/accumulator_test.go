package runtime

import (
	"testing"
)

func TestChoosePull(t *testing.T) {
	cases := []struct {
		name       string
		mode       DirectionMode
		combinable bool
		frontier   int
		n          int
		threshold  float64
		want       bool
	}{
		{"no combiner blocks even forced pull", DirectionPull, false, 1000, 1000, 0, false},
		{"push pins regardless of density", DirectionPush, true, 1000, 1000, 0, false},
		{"pull forces regardless of density", DirectionPull, true, 0, 1000, 0, true},
		{"auto pulls a dense frontier", DirectionAuto, true, 51, 1000, 0, true},
		{"auto pushes at exactly n/20", DirectionAuto, true, 50, 1000, 0, false},
		{"auto pushes a sparse frontier", DirectionAuto, true, 3, 1000, 0, false},
		{"custom threshold", DirectionAuto, true, 300, 1000, 0.5, false},
		{"custom threshold crossed", DirectionAuto, true, 501, 1000, 0.5, true},
	}
	for _, tc := range cases {
		if got := ChoosePull(tc.mode, tc.combinable, tc.frontier, tc.n, tc.threshold); got != tc.want {
			t.Errorf("%s: ChoosePull = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDirectionModeStrings(t *testing.T) {
	for _, s := range []string{"push", "pull", "auto"} {
		m, err := ParseDirectionMode(s)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != s {
			t.Errorf("round trip %q -> %v -> %q", s, m, m.String())
		}
	}
}

func TestBroadcastsEpochs(t *testing.T) {
	bc := NewBroadcasts[int](4)
	sum := func(a, m int) int { return a + m }
	bc.Set(2, 5, sum)
	bc.Set(2, 7, sum) // folds into the slot, bumps the raw count
	if !bc.Has(2) || bc.Has(1) {
		t.Fatal("Has after Set is wrong")
	}
	if v, c := bc.Get(2); v != 12 || c != 2 {
		t.Fatalf("Get = (%d, %d), want (12, 2)", v, c)
	}
	bc.Advance()
	if bc.Has(2) {
		t.Fatal("Advance did not invalidate the slot")
	}
	// nil comb: set semantics, first value wins, count still accumulates.
	bc.Set(0, 1, nil)
	bc.Set(0, 9, nil)
	if v, c := bc.Get(0); v != 1 || c != 2 {
		t.Fatalf("set-semantics Get = (%d, %d), want (1, 2)", v, c)
	}
}

// TestGathererFoldOrder pins the bit-identity contract: contributions
// fold per source worker in ascending source order first, then across
// workers in worker order 0..P-1 — the exact shape of the push path's
// lane folds. An order-recording "combiner" makes any deviation
// visible.
func TestGathererFoldOrder(t *testing.T) {
	// Vertices 0..5 owned by workers [0,1,0,1,2,2]; sources 5,0,3,2
	// broadcast. The transpose span arrives ascending: 0,2,3,5.
	owner := []int32{0, 1, 0, 1, 2, 2}
	bc := NewBroadcasts[string](6)
	concat := func(a, m string) string { return a + m }
	for _, src := range []VertexID{5, 0, 3, 2} {
		bc.Set(src, string(rune('a'+int(src))), concat)
	}
	g := NewGatherer[string](3)
	acc, raw, ok := g.Gather(bc, owner, []VertexID{0, 2, 3, 5}, concat)
	if !ok || raw != 4 {
		t.Fatalf("Gather = (%q, %d, %v)", acc, raw, ok)
	}
	// Worker 0 folds a,c; worker 1 folds d; worker 2 folds f; then the
	// partials fold in worker order: (a+c) + (d) + (f).
	if acc != "acdf" {
		t.Fatalf("fold order %q, want %q", acc, "acdf")
	}
	// The scratch must be clean for the next destination.
	acc, raw, ok = g.Gather(bc, owner, []VertexID{3}, concat)
	if !ok || raw != 1 || acc != "d" {
		t.Fatalf("second Gather = (%q, %d, %v)", acc, raw, ok)
	}
	if _, _, ok := g.Gather(bc, owner, []VertexID{1, 4}, concat); ok {
		t.Fatal("Gather over silent sources reported ok")
	}
}

// TestPullPathZeroAlloc is the tentpole's memory claim: after warm-up,
// one full pull cycle — publish broadcasts, advance the epoch, gather
// every destination, deposit into the mailbox — performs zero heap
// allocations. The mailbox inbox buffers are reused via ResetVertex,
// the broadcast slots via the epoch tag, and the gather scratch is
// cleared in place.
func TestPullPathZeroAlloc(t *testing.T) {
	const n, workers = 64, 4
	owner := make([]int32, n)
	for v := range owner {
		owner[v] = int32(v % workers)
	}
	sum := func(a, m float64) float64 { return a + m }
	bc := NewBroadcasts[float64](n)
	ga := NewGatherer[float64](workers)
	mbox := NewMailbox[float64](workers, owner, sum)
	srcs := make([]VertexID, n)
	for v := range srcs {
		srcs[v] = VertexID(v)
	}
	cycle := func() {
		bc.Advance()
		for v := 0; v < n; v++ {
			bc.Set(VertexID(v), float64(v), sum)
		}
		for v := 0; v < n; v++ {
			mbox.ResetVertex(VertexID(v))
		}
		for v := 0; v < n; v++ {
			acc, raw, ok := ga.Gather(bc, owner, srcs, sum)
			if !ok {
				t.Fatal("gather found no broadcasts")
			}
			mbox.DepositPulled(VertexID(v), acc, raw, nil)
		}
	}
	cycle() // warm the inbox buffers
	if avg := testing.AllocsPerRun(10, cycle); avg != 0 {
		t.Fatalf("pull cycle allocates %.1f times per superstep, want 0", avg)
	}
}
