package runtime

// Checkpoints is the shared checkpoint store under the engines'
// rollback recovery. Frames come in two kinds: a *full* frame is a
// complete deep copy of the barrier state, and a *delta* frame is a
// dirty-set patch against the frame saved immediately before it (see
// DeltaPolicy). A delta frame is readable only through its whole
// ancestor chain — every frame from the nearest full frame below it up
// to the frame itself — so corrupting one frame silently poisons every
// frame that depends on it.
//
// Retention mirrors the legacy two-generation store (Pregel's
// write-then-retire checkpoint files): whenever a full frame lands, the
// store prunes everything older than the second-newest full frame, so
// at most two reconstructible full generations (plus their dependent
// deltas) stay resident. With every save full — the default when
// FullSnapshotEvery is unset — this degenerates to exactly the old
// current + previous pair.
//
// A snapshot written while a FaultCorruptCheckpoint event is armed is
// stored with its corrupt flag set — the damage stays silent until
// Recover walks a chain through the frame, fails its validation,
// discards it together with every dependent frame, and falls back to an
// older reconstructible generation.
//
// The store is generic over the engine's snapshot type S; engines are
// responsible for deep-copying their state into S (see ValueCloner).
type Checkpoints[S any] struct {
	frames []ckFrameRec[S] // oldest first
	saved  int
	deltas int
}

type ckFrameRec[S any] struct {
	state   S
	step    int
	full    bool
	ok      bool
	corrupt bool
}

// Save appends a frame taken at the given barrier. full marks a
// complete snapshot; a delta frame patches the frame saved immediately
// before it. corrupt marks the frame as silently damaged (it will fail
// validation when a recovery reads it back). The first frame ever
// saved must be full — the driver guarantees it.
func (c *Checkpoints[S]) Save(step int, state S, full, corrupt bool) {
	c.frames = append(c.frames, ckFrameRec[S]{state: state, step: step, full: full, ok: true, corrupt: corrupt})
	c.saved++
	if !full {
		c.deltas++
		return
	}
	// A new full generation retires everything older than the previous
	// full frame: two reconstructible generations stay resident.
	fulls := 0
	for i := len(c.frames) - 1; i >= 0; i-- {
		if !c.frames[i].full {
			continue
		}
		fulls++
		if fulls == 2 {
			if i > 0 {
				c.frames = append(c.frames[:0], c.frames[i:]...)
			}
			return
		}
	}
}

// Recover returns the newest reconstructible generation as a chain:
// chain[0] is a full frame and every later element is a delta to apply
// in order. It walks back from the newest frame; a candidate whose
// chain crosses a corrupt frame is discarded — the corrupt frame is
// counted once in skipped, and every still-readable frame depending on
// it is marked unreadable and counted in invalidated. ok is false when
// no reconstructible generation exists — the engine must restart from
// scratch.
func (c *Checkpoints[S]) Recover() (chain []S, step int, skipped, invalidated int, ok bool) {
	for i := len(c.frames) - 1; i >= 0; i-- {
		if !c.frames[i].ok {
			continue
		}
		// Locate the candidate's base full frame, then validate the
		// reconstruction chain base..i in read order.
		base := i
		for base >= 0 && !c.frames[base].full {
			base--
		}
		bad := -1
		if base < 0 {
			bad = 0 // headless deltas: no full base survives
		} else {
			for j := base; j <= i; j++ {
				g := &c.frames[j]
				if !g.ok {
					bad = j
					break
				}
				if g.corrupt {
					g.ok = false
					skipped++
					bad = j
					break
				}
			}
		}
		if bad < 0 {
			chain = make([]S, 0, i-base+1)
			for j := base; j <= i; j++ {
				chain = append(chain, c.frames[j].state)
			}
			return chain, c.frames[i].step, skipped, invalidated, true
		}
		// Everything above the bad frame through the candidate depends
		// on it (the range holds no other full frame) and is unreadable.
		for j := bad; j <= i; j++ {
			if g := &c.frames[j]; g.ok {
				g.ok = false
				invalidated++
			}
		}
		i = bad // resume the walk below the bad frame
	}
	return nil, 0, skipped, invalidated, false
}

// Saved reports how many frames have been written over the store's
// lifetime.
func (c *Checkpoints[S]) Saved() int { return c.saved }

// DeltaSaved reports how many of the saved frames were deltas.
func (c *Checkpoints[S]) DeltaSaved() int { return c.deltas }

// ValueCloner lets a program deep-copy vertex values for checkpoints.
// Programs whose value type carries reference types (slices, maps)
// must implement it, or a rollback would restore values aliasing live
// state. All four engines check for it when snapshotting.
type ValueCloner[V any] interface {
	CloneValue(v V) V
}

// CloneValues snapshots a value slice, deep-copying each element when
// the program implements ValueCloner[V].
func CloneValues[V any](prog any, src []V) []V {
	out := make([]V, len(src))
	if cloner, ok := prog.(ValueCloner[V]); ok {
		for i, v := range src {
			out[i] = cloner.CloneValue(v)
		}
	} else {
		copy(out, src)
	}
	return out
}

// CloneValuesAt gathers src[id] for each id, deep-copying when the
// program implements ValueCloner[V] — the dirty-set analogue of
// CloneValues for delta checkpoint frames.
func CloneValuesAt[V any, ID ~int | ~int32 | ~int64](prog any, src []V, ids []ID) []V {
	out := make([]V, len(ids))
	if cloner, ok := prog.(ValueCloner[V]); ok {
		for i, id := range ids {
			out[i] = cloner.CloneValue(src[id])
		}
	} else {
		for i, id := range ids {
			out[i] = src[id]
		}
	}
	return out
}
