package runtime

// Checkpoints is the shared checkpoint store under the engines'
// rollback recovery: it retains the last two snapshot generations
// (current + previous, mirroring Pregel's write-then-retire checkpoint
// files) together with a validity marker per generation. A snapshot
// written while a FaultCorruptCheckpoint event is armed is stored with
// its corrupt flag set — the damage stays silent until Recover reads
// the generation, fails its validation, discards it, and falls back to
// the previous one.
//
// The store is generic over the engine's snapshot type S; engines are
// responsible for deep-copying their state into S (see ValueCloner).
type Checkpoints[S any] struct {
	snaps [2]ckGen[S] // [0] newest
	saved int
}

type ckGen[S any] struct {
	state   S
	step    int
	ok      bool
	corrupt bool
}

// Save stores a snapshot taken at the given barrier as the newest
// generation, retiring the oldest. corrupt marks the snapshot as
// silently damaged (it will fail validation when read back).
func (c *Checkpoints[S]) Save(step int, state S, corrupt bool) {
	c.snaps[1] = c.snaps[0]
	c.snaps[0] = ckGen[S]{state: state, step: step, ok: true, corrupt: corrupt}
	c.saved++
}

// Recover returns the newest snapshot that passes validation, walking
// back over corrupted generations (each is discarded and counted in
// skipped). ok is false when no readable checkpoint exists — the
// engine must restart from scratch.
func (c *Checkpoints[S]) Recover() (state S, step int, skipped int, ok bool) {
	for i := range c.snaps {
		g := &c.snaps[i]
		if !g.ok {
			continue
		}
		if g.corrupt {
			g.ok = false
			skipped++
			continue
		}
		return g.state, g.step, skipped, true
	}
	var zero S
	return zero, 0, skipped, false
}

// Saved reports how many snapshots have been written over the store's
// lifetime.
func (c *Checkpoints[S]) Saved() int { return c.saved }

// ValueCloner lets a program deep-copy vertex values for checkpoints.
// Programs whose value type carries reference types (slices, maps)
// must implement it, or a rollback would restore values aliasing live
// state. All four engines check for it when snapshotting.
type ValueCloner[V any] interface {
	CloneValue(v V) V
}

// CloneValues snapshots a value slice, deep-copying each element when
// the program implements ValueCloner[V].
func CloneValues[V any](prog any, src []V) []V {
	out := make([]V, len(src))
	if cloner, ok := prog.(ValueCloner[V]); ok {
		for i, v := range src {
			out[i] = cloner.CloneValue(v)
		}
	} else {
		copy(out, src)
	}
	return out
}
