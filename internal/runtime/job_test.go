package runtime

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"vcgraph/internal/bsp"
)

// countPolicy runs a fixed number of supersteps, dispatching one
// no-op phase per step through the driver's lease.
type countPolicy struct {
	d     *Driver[int]
	steps int
	limit int
	// block, when non-nil, is received from at the top of every
	// superstep so tests can hold a run mid-flight.
	block chan struct{}
}

func (p *countPolicy) Quiescent(step, pending int) bool { return p.steps >= p.limit }
func (p *countPolicy) Superstep(step int, ss *bsp.SuperstepStats) (int, error) {
	if p.block != nil {
		<-p.block
	}
	p.d.Lease().Run(func(w int) {})
	ss.Work[0]++
	p.steps++
	return 1, nil
}
func (p *countPolicy) Snapshot() int                       { return p.steps }
func (p *countPolicy) Restore(snap int, step int, ok bool) { p.steps = snap }

func runCounting(limit int, cfg DriverConfig) (*countPolicy, *Driver[int], *bsp.Stats) {
	stats := &bsp.Stats{Workers: cfg.Workers}
	p := &countPolicy{limit: limit}
	d := NewDriver[int](p, stats, cfg)
	p.d = d
	return p, d, stats
}

func TestLeaseRunsAllVirtualWorkers(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	// A share wider than the physical pool still runs every virtual
	// worker exactly once per phase.
	l := pool.Lease(8)
	if l.Workers() != 8 {
		t.Fatalf("lease workers = %d, want 8", l.Workers())
	}
	var hits [8]int32
	for phase := 0; phase < 3; phase++ {
		l.Run(func(w int) { atomic.AddInt32(&hits[w], 1) })
	}
	for w, h := range hits {
		if h != 3 {
			t.Fatalf("virtual worker %d ran %d times, want 3", w, h)
		}
	}
}

func TestLeaseZeroShareDefaultsToPoolWidth(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	if got := pool.Lease(0).Workers(); got != 3 {
		t.Fatalf("Lease(0).Workers() = %d, want 3", got)
	}
}

func TestDriverSharedPoolServesSequentialRuns(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	for i := 0; i < 3; i++ {
		p, d, _ := runCounting(4, DriverConfig{Name: "test", Workers: 2, MaxSteps: 100, Pool: pool})
		steps, err := d.Run()
		if err != nil || steps != 4 || p.steps != 4 {
			t.Fatalf("run %d: steps=%d err=%v", i, steps, err)
		}
	}
}

func TestDriverCtxAbortsWithoutRollback(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Faults scheduled but the abort must win at the barrier: no fault
	// fires, no rollback happens, and the cause comes back wrapped.
	_, d, stats := runCounting(1000, DriverConfig{
		Name: "test", Workers: 2, MaxSteps: 10000, Ctx: ctx,
		CheckpointEvery: 2, Faults: NewFaultPlan(7),
	})
	steps, err := d.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if steps != 0 {
		t.Fatalf("steps = %d, want 0 (cancelled before the first barrier)", steps)
	}
	if stats.Recovery.Rollbacks != 0 {
		t.Fatalf("rollbacks = %d, want 0 on abort", stats.Recovery.Rollbacks)
	}
}

func TestDriverCtxDeadlineCause(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	_, d, _ := runCounting(1000, DriverConfig{Name: "test", Workers: 1, MaxSteps: 10000, Ctx: ctx})
	if _, err := d.Run(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSchedulerAdmitsFIFO(t *testing.T) {
	s := NewScheduler(2, 1)
	defer s.Close()
	gate := make(chan struct{})
	var order []int64
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	mk := func() *Job {
		return s.Submit(context.Background(), "j", 2, func(j *Job) error {
			<-mu
			order = append(order, j.ID())
			mu <- struct{}{}
			<-gate
			return nil
		})
	}
	j1 := mk()
	// Ensure j1 is admitted before the others are submitted, so the
	// FIFO order under test is deterministic.
	for s.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	j2 := mk()
	for s.QueueLen() == 0 {
		time.Sleep(time.Millisecond)
	}
	j3 := mk()
	for s.QueueLen() < 2 {
		time.Sleep(time.Millisecond)
	}
	if got := s.InFlight(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
	close(gate)
	for _, j := range []*Job{j1, j2, j3} {
		if err := j.Wait(); err != nil {
			t.Fatalf("job %d: %v", j.ID(), err)
		}
	}
	if len(order) != 3 || order[0] != j1.ID() || order[1] != j2.ID() || order[2] != j3.ID() {
		t.Fatalf("admission order %v, want [%d %d %d]", order, j1.ID(), j2.ID(), j3.ID())
	}
	if s.InFlight() != 0 || s.QueueLen() != 0 {
		t.Fatalf("scheduler not drained: inflight=%d queued=%d", s.InFlight(), s.QueueLen())
	}
}

func TestSchedulerCancelWhileQueued(t *testing.T) {
	s := NewScheduler(2, 1)
	defer s.Close()
	gate := make(chan struct{})
	ran := int32(0)
	j1 := s.Submit(context.Background(), "holder", 2, func(j *Job) error {
		<-gate
		return nil
	})
	for s.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	j2 := s.Submit(context.Background(), "queued", 2, func(j *Job) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	for s.QueueLen() == 0 {
		time.Sleep(time.Millisecond)
	}
	cause := errors.New("operator cancelled")
	j2.Cancel(cause)
	if err := j2.Wait(); !errors.Is(err, cause) {
		t.Fatalf("queued job err = %v, want the cancel cause", err)
	}
	if st := j2.State(); st != JobCancelled {
		t.Fatalf("queued job state = %v, want cancelled", st)
	}
	if atomic.LoadInt32(&ran) != 0 {
		t.Fatal("cancelled queued job ran its function")
	}
	if s.QueueLen() != 0 {
		t.Fatalf("queue len = %d after cancel, want 0", s.QueueLen())
	}
	close(gate)
	if err := j1.Wait(); err != nil {
		t.Fatalf("holder: %v", err)
	}
	if s.InFlight() != 0 {
		t.Fatalf("inflight = %d, want 0", s.InFlight())
	}
}

func TestJobCancelMidRunFreesSlotAndRunsCleanups(t *testing.T) {
	s := NewScheduler(2, 2)
	defer s.Close()
	block := make(chan struct{}, 1)
	var cleaned []string
	job := s.Submit(context.Background(), "test", 2, func(j *Job) error {
		j.OnCleanup(func() { cleaned = append(cleaned, "first") })
		j.OnCleanup(func() { cleaned = append(cleaned, "second") })
		p, d, _ := runCounting(1000, DriverConfig{Name: "test", Workers: 2, MaxSteps: 10000, Job: j})
		p.block = block
		_, err := d.Run()
		return err
	})
	block <- struct{}{} // let one superstep through
	for job.Steps() == 0 {
		time.Sleep(time.Millisecond)
	}
	job.Cancel(nil)
	block <- struct{}{} // release the superstep in flight
	err := job.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := job.State(); st != JobCancelled {
		t.Fatalf("state = %v, want cancelled", st)
	}
	// The admission slot is back and cleanups ran LIFO.
	if s.InFlight() != 0 {
		t.Fatalf("inflight = %d after cancel, want 0", s.InFlight())
	}
	if len(cleaned) != 2 || cleaned[0] != "second" || cleaned[1] != "first" {
		t.Fatalf("cleanups = %v, want LIFO [second first]", cleaned)
	}
}

func TestJobTraceStreams(t *testing.T) {
	s := NewScheduler(2, 1)
	defer s.Close()
	job := s.Submit(context.Background(), "trace", 2, func(j *Job) error {
		_, d, _ := runCounting(5, DriverConfig{Name: "trace", Workers: 2, MaxSteps: 100, Job: j})
		_, err := d.Run()
		return err
	})
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if job.State() != JobSucceeded {
		t.Fatalf("state = %v, want succeeded", job.State())
	}
	all := job.TraceSince(0)
	if len(all) != 5 || job.Steps() != 5 {
		t.Fatalf("trace has %d records (Steps %d), want 5", len(all), job.Steps())
	}
	if tail := job.TraceSince(3); len(tail) != 2 {
		t.Fatalf("TraceSince(3) returned %d records, want 2", len(tail))
	}
	if job.TraceSince(5) != nil {
		t.Fatal("TraceSince(len) should be nil")
	}
}

func TestSubmitFailureStates(t *testing.T) {
	s := NewScheduler(1, 1)
	defer s.Close()
	boom := errors.New("boom")
	if err := s.Submit(context.Background(), "fail", 1, func(j *Job) error { return boom }).Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	j := s.Submit(context.Background(), "fail", 1, func(j *Job) error { return boom })
	j.Wait()
	if j.State() != JobFailed {
		t.Fatalf("state = %v, want failed", j.State())
	}
	ok := s.Submit(context.Background(), "ok", 1, func(j *Job) error { return nil })
	if err := ok.Wait(); err != nil || ok.State() != JobSucceeded {
		t.Fatalf("state = %v err = %v, want succeeded/nil", ok.State(), err)
	}
}
