package runtime

import (
	"fmt"

	"vcgraph/internal/graph"
)

// Graph partitioning: how vertices map to workers. The paper's §1
// names partitioning among the key system-level optimizations for
// vertex-centric frameworks; the choice changes the per-worker load
// maxima (w_i, s_i, r_i) and therefore the measured superstep cost
// max(w, g·h, L), while never changing results. The runtime owns the
// three standard strategies — hash (vertex-balanced), range, and
// degree-balanced (edge-balanced, the PowerGraph-family answer to
// power-law skew) — shared by every engine's config.

// Partitioner assigns each vertex to a worker in [0, workers).
type Partitioner func(g *graph.Graph, workers int) []int32

// PartitionHash spreads vertices round-robin by ID (the Pregel
// default, good for ID-uncorrelated load).
func PartitionHash(g *graph.Graph, workers int) []int32 {
	owner := make([]int32, g.N())
	for v := range owner {
		owner[v] = int32(v % workers)
	}
	return owner
}

// PartitionRange gives each worker a contiguous ID range (locality for
// ID-correlated graphs, but prone to imbalance when degree correlates
// with ID, as in preferential-attachment graphs).
func PartitionRange(g *graph.Graph, workers int) []int32 {
	n := g.N()
	owner := make([]int32, n)
	if n == 0 {
		return owner
	}
	for v := range owner {
		owner[v] = int32(v * workers / n)
		if owner[v] >= int32(workers) {
			owner[v] = int32(workers) - 1
		}
	}
	return owner
}

// PartitionDegreeBalanced greedily assigns vertices in decreasing
// degree order to the currently lightest worker (longest-processing-
// time heuristic), balancing total adjacent-edge load rather than
// vertex count. Degrees come from the graph's CSR snapshot (building
// the transpose for directed graphs), so no EnsureIn call is required
// beforehand.
func PartitionDegreeBalanced(g *graph.Graph, workers int) []int32 {
	n := g.N()
	c := g.CSR()
	c.EnsureIn()
	owner := make([]int32, n)
	order := make([]graph.VertexID, n)
	// Counting sort by degree, descending.
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := c.TotalDegree(graph.VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]graph.VertexID, maxDeg+1)
	for v := 0; v < n; v++ {
		d := c.TotalDegree(graph.VertexID(v))
		buckets[d] = append(buckets[d], graph.VertexID(v))
	}
	idx := 0
	for d := maxDeg; d >= 0; d-- {
		for _, v := range buckets[d] {
			order[idx] = v
			idx++
		}
	}
	load := make([]int64, workers)
	for _, v := range order {
		best := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		owner[v] = int32(best)
		load[best] += int64(c.TotalDegree(v) + 1)
	}
	return owner
}

// GroupByOwner buckets vertices by owning worker, ascending within each
// bucket — the worker -> owned-vertices view every engine derives from
// a Partitioner's output. It panics (prefixed with name, the engine)
// when the assignment maps a vertex outside [0, workers).
func GroupByOwner(name string, owner []int32, workers int) [][]graph.VertexID {
	verts := make([][]graph.VertexID, workers)
	for v, w := range owner {
		if w < 0 || int(w) >= workers {
			panic(fmt.Sprintf("%s: partitioner assigned vertex %d to out-of-range worker %d (of %d)", name, v, w, workers))
		}
		verts[w] = append(verts[w], graph.VertexID(v))
	}
	return verts
}
