package runtime

import (
	"fmt"

	"vcgraph/internal/graph"
)

// Graph partitioning: how vertices map to workers. The paper's §1
// names partitioning among the key system-level optimizations for
// vertex-centric frameworks; the choice changes the per-worker load
// maxima (w_i, s_i, r_i) and therefore the measured superstep cost
// max(w, g·h, L), while never changing results. The runtime owns the
// three standard strategies — hash (vertex-balanced), range, and
// degree-balanced (edge-balanced, the PowerGraph-family answer to
// power-law skew) — shared by every engine's config.

// Partitioner assigns each vertex to a worker in [0, workers).
type Partitioner func(g *graph.Graph, workers int) []int32

// PartitionHash spreads vertices round-robin by ID (the Pregel
// default, good for ID-uncorrelated load).
func PartitionHash(g *graph.Graph, workers int) []int32 {
	return PartitionHashN(g.N(), workers)
}

// PartitionHashN is PartitionHash for a known vertex count — the
// snapshot-native form the adaptive plan layer uses when re-preparing
// an engine against a pinned CSR generation (the live graph may have
// grown since).
func PartitionHashN(n, workers int) []int32 {
	owner := make([]int32, n)
	for v := range owner {
		owner[v] = int32(v % workers)
	}
	return owner
}

// PartitionRange gives each worker a contiguous ID range (locality for
// ID-correlated graphs, but prone to imbalance when degree correlates
// with ID, as in preferential-attachment graphs).
func PartitionRange(g *graph.Graph, workers int) []int32 {
	return PartitionRangeN(g.N(), workers)
}

// PartitionRangeN is PartitionRange for a known vertex count (see
// PartitionHashN).
func PartitionRangeN(n, workers int) []int32 {
	owner := make([]int32, n)
	if n == 0 {
		return owner
	}
	for v := range owner {
		owner[v] = int32(v * workers / n)
		if owner[v] >= int32(workers) {
			owner[v] = int32(workers) - 1
		}
	}
	return owner
}

// PartitionDegreeBalanced greedily assigns vertices in decreasing
// degree order to the currently lightest worker (longest-processing-
// time heuristic), balancing total adjacent-edge load rather than
// vertex count. Degrees come from the graph's CSR snapshot (building
// the transpose for directed graphs), so no EnsureIn call is required
// beforehand.
func PartitionDegreeBalanced(g *graph.Graph, workers int) []int32 {
	return PartitionDegreeBalancedCSR(g.CSR(), workers)
}

// PartitionDegreeBalancedCSR is PartitionDegreeBalanced evaluated
// against a specific (typically pinned) CSR generation instead of the
// graph's current one.
func PartitionDegreeBalancedCSR(c *graph.CSR, workers int) []int32 {
	n := c.N()
	c.EnsureIn()
	owner := make([]int32, n)
	order := make([]graph.VertexID, n)
	// Counting sort by degree, descending.
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := c.TotalDegree(graph.VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]graph.VertexID, maxDeg+1)
	for v := 0; v < n; v++ {
		d := c.TotalDegree(graph.VertexID(v))
		buckets[d] = append(buckets[d], graph.VertexID(v))
	}
	idx := 0
	for d := maxDeg; d >= 0; d-- {
		for _, v := range buckets[d] {
			order[idx] = v
			idx++
		}
	}
	load := make([]int64, workers)
	for _, v := range order {
		best := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		owner[v] = int32(best)
		load[best] += int64(c.TotalDegree(v) + 1)
	}
	return owner
}

// BlockLocalFractions computes, for each of the `blocks` partitions in
// owner, the fraction of its vertices' out-edges whose destination lies
// in the same partition. It is the signal behind the block-centric
// engine's per-block auto direction choice (block-local pull pays off
// only where intra-block traffic dominates) and doubles as a planner
// input: a high overall local fraction under a range partition marks a
// graph whose structure block-centric execution can exploit. Blocks
// with no out-edges report 0.
func BlockLocalFractions(c *graph.CSR, owner []int32, blocks int) []float64 {
	local := make([]int64, blocks)
	total := make([]int64, blocks)
	var s graph.Scratch
	for v := 0; v < c.N() && v < len(owner); v++ {
		b := owner[v]
		for _, u := range c.OutSpan(VertexID(v), &s) {
			total[b]++
			if owner[u] == b {
				local[b]++
			}
		}
	}
	frac := make([]float64, blocks)
	for b := range frac {
		if total[b] > 0 {
			frac[b] = float64(local[b]) / float64(total[b])
		}
	}
	return frac
}

// GroupByOwner buckets vertices by owning worker, ascending within each
// bucket — the worker -> owned-vertices view every engine derives from
// a Partitioner's output. It panics (prefixed with name, the engine)
// when the assignment maps a vertex outside [0, workers).
func GroupByOwner(name string, owner []int32, workers int) [][]graph.VertexID {
	verts := make([][]graph.VertexID, workers)
	for v, w := range owner {
		if w < 0 || int(w) >= workers {
			panic(fmt.Sprintf("%s: partitioner assigned vertex %d to out-of-range worker %d (of %d)", name, v, w, workers))
		}
		verts[w] = append(verts[w], graph.VertexID(v))
	}
	return verts
}
