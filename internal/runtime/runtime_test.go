package runtime

import (
	"slices"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryWorkerAndBarriers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("workers %d", p.Workers())
	}
	seen := make([]int, 4)
	var total atomic.Int64
	for phase := 0; phase < 100; phase++ {
		p.Run(func(w int) {
			seen[w]++
			total.Add(1)
		})
		// Run is a barrier: all writes of this phase are visible here.
		for w, c := range seen {
			if c != phase+1 {
				t.Fatalf("phase %d: worker %d ran %d times", phase, w, c)
			}
		}
	}
	if total.Load() != 400 {
		t.Fatalf("total %d", total.Load())
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != DefaultWorkers() {
		t.Fatalf("got %d, want %d", p.Workers(), DefaultWorkers())
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Run(func(int) {})
	p.Close()
	p.Close()
}

func TestMailboxNoCombiner(t *testing.T) {
	owner := []int32{0, 1, 0, 1} // 4 vertices over 2 workers
	mb := NewMailbox[int](2, owner, nil)
	mb.Send(0, 1, 10)
	mb.Send(0, 1, 11)
	mb.Send(1, 1, 12)
	mb.Send(1, 2, 13)

	var first0, first1 []VertexID
	d0, p0 := mb.Deliver(0, func(v VertexID) { first0 = append(first0, v) })
	d1, p1 := mb.Deliver(1, func(v VertexID) { first1 = append(first1, v) })
	if d0 != 1 || p0 != 1 {
		t.Fatalf("worker 0: delivered %d placed %d", d0, p0)
	}
	if d1 != 3 || p1 != 3 {
		t.Fatalf("worker 1: delivered %d placed %d", d1, p1)
	}
	if !slices.Equal(first0, []VertexID{2}) || !slices.Equal(first1, []VertexID{1}) {
		t.Fatalf("first-mail hooks: %v / %v", first0, first1)
	}
	// Lanes drain in source-worker order.
	if got := mb.Inbox(1); !slices.Equal(got, []int{10, 11, 12}) {
		t.Fatalf("inbox(1) = %v", got)
	}
	if mb.RawCount(1) != 3 || mb.RawCount(2) != 1 {
		t.Fatalf("raw counts %d/%d", mb.RawCount(1), mb.RawCount(2))
	}
}

func TestMailboxSenderSideCombining(t *testing.T) {
	owner := []int32{0, 0, 1}
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	mb := NewMailbox[int](2, owner, min)
	// Three raw messages from worker 0 collapse into one lane slot;
	// worker 1 contributes a fourth that merges at delivery.
	mb.Send(0, 1, 7)
	mb.Send(0, 1, 3)
	mb.Send(0, 1, 9)
	mb.Send(1, 1, 5)
	delivered, placed := mb.Deliver(0, nil)
	if delivered != 4 {
		t.Fatalf("delivered %d raw, want 4", delivered)
	}
	if placed != 1 {
		t.Fatalf("placements %d, want 1", placed)
	}
	if got := mb.Inbox(1); !slices.Equal(got, []int{3}) {
		t.Fatalf("inbox(1) = %v, want [3]", got)
	}
	if mb.RawCount(1) != 4 {
		t.Fatalf("raw count %d, want 4", mb.RawCount(1))
	}
}

func TestMailboxAdvanceInvalidatesCombiningSlots(t *testing.T) {
	owner := []int32{0, 0}
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	mb := NewMailbox[int](1, owner, min)
	// Superstep 1: two sends combine into one slot.
	mb.Send(0, 1, 8)
	mb.Send(0, 1, 6)
	mb.Deliver(0, nil)
	if got := mb.Inbox(1); !slices.Equal(got, []int{6}) || mb.RawCount(1) != 2 {
		t.Fatalf("superstep 1: inbox %v raw %d", got, mb.RawCount(1))
	}
	mb.ResetVertex(1)
	// Superstep 2: without Advance the stale slot would point into the
	// drained lane; with it, sends start a fresh entry and combine anew.
	mb.Advance()
	mb.Send(0, 1, 9)
	mb.Send(0, 1, 4)
	delivered, placed := mb.Deliver(0, nil)
	if delivered != 2 || placed != 1 {
		t.Fatalf("superstep 2: delivered %d placed %d", delivered, placed)
	}
	if got := mb.Inbox(1); !slices.Equal(got, []int{4}) || mb.RawCount(1) != 2 {
		t.Fatalf("superstep 2: inbox %v raw %d", got, mb.RawCount(1))
	}
}

func TestMailboxBufferReuseAcrossSupersteps(t *testing.T) {
	owner := []int32{0, 0}
	mb := NewMailbox[int](1, owner, nil)
	mb.Send(0, 1, 1)
	mb.Deliver(0, nil)
	buf := mb.Inbox(1)
	mb.ResetVertex(1)
	if len(mb.Inbox(1)) != 0 || mb.RawCount(1) != 0 {
		t.Fatal("reset did not clear")
	}
	mb.Send(0, 1, 2)
	mb.Deliver(0, nil)
	if got := mb.Inbox(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("inbox after reuse = %v", got)
	}
	if &buf[:1][0] != &mb.Inbox(1)[0] {
		t.Fatal("inbox backing array was reallocated instead of reused")
	}
}

func TestMailboxLoadVertex(t *testing.T) {
	owner := []int32{0}
	mb := NewMailbox[int](1, owner, nil)
	mb.LoadVertex(0, []int{4, 5}, 2)
	if got := mb.Inbox(0); !slices.Equal(got, []int{4, 5}) || mb.RawCount(0) != 2 {
		t.Fatalf("load: %v raw %d", got, mb.RawCount(0))
	}
}

func TestWorklistsProtocol(t *testing.T) {
	wl := NewWorklists(2, 6)
	wl.FillAll([][]VertexID{{0, 2, 4}, {1, 3, 5}})
	if wl.Pending() != 6 {
		t.Fatalf("pending %d", wl.Pending())
	}
	wl.Flip()
	if wl.Pending() != 0 {
		t.Fatalf("pending after flip %d", wl.Pending())
	}
	// Worker 0 keeps vertex 2 active; a first-mail hook re-adds 4.
	// Duplicate adds must not double-queue.
	wl.SortCur(0, nil)
	for _, v := range wl.Cur(0) {
		wl.Unmark(v)
	}
	wl.Add(0, 2)
	wl.Add(0, 2)
	wl.Add(0, 4)
	if wl.Pending() != 2 {
		t.Fatalf("pending %d, want 2", wl.Pending())
	}
	if got := wl.Next(0); !slices.Equal(got, []VertexID{2, 4}) {
		t.Fatalf("next(0) = %v", got)
	}
	wl.Flip()
	wl.SortCur(0, nil)
	if got := wl.Cur(0); !slices.Equal(got, []VertexID{2, 4}) {
		t.Fatalf("cur(0) = %v", got)
	}
	wl.Clear()
	if wl.Pending() != 0 {
		t.Fatalf("pending after clear %d", wl.Pending())
	}
	// Cleared queued flags allow re-adding.
	wl.Add(1, 3)
	if wl.Pending() != 1 {
		t.Fatalf("pending %d", wl.Pending())
	}
}

func TestWorklistsSortCurRestoresScanOrder(t *testing.T) {
	wl := NewWorklists(1, 8)
	for _, v := range []VertexID{5, 1, 7, 3} {
		wl.Add(0, v)
	}
	wl.Flip()
	wl.SortCur(0, nil)
	if got := wl.Cur(0); !slices.Equal(got, []VertexID{1, 3, 5, 7}) {
		t.Fatalf("cur = %v", got)
	}
}

func TestWorklistsSortCurDenseScan(t *testing.T) {
	// A frontier above 1/8 of the owned vertices takes the scan path;
	// both paths must produce the same ascending order.
	owned := []VertexID{0, 2, 4, 6, 8, 10, 12, 14}
	wl := NewWorklists(1, 16)
	for _, v := range []VertexID{10, 2, 14, 6} {
		wl.Add(0, v)
	}
	wl.Flip()
	wl.SortCur(0, owned)
	if got := wl.Cur(0); !slices.Equal(got, []VertexID{2, 6, 10, 14}) {
		t.Fatalf("cur = %v", got)
	}
	// Queued flags are untouched by the rebuild: Unmark/Add still work.
	for _, v := range wl.Cur(0) {
		wl.Unmark(v)
		wl.Add(0, v)
	}
	if wl.Pending() != 4 {
		t.Fatalf("pending %d", wl.Pending())
	}
}

func TestFIFODedupAndOrder(t *testing.T) {
	q := NewFIFO(4)
	q.Push(2)
	q.Push(0)
	q.Push(2) // duplicate while queued: dropped
	if q.Len() != 2 {
		t.Fatalf("len %d", q.Len())
	}
	v, ok := q.Pop()
	if !ok || v != 2 {
		t.Fatalf("pop %v %v", v, ok)
	}
	q.Push(2) // re-push after pop: accepted
	var order []VertexID
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, v)
	}
	if !slices.Equal(order, []VertexID{0, 2}) {
		t.Fatalf("order %v", order)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestFIFOCompactionKeepsOrder(t *testing.T) {
	n := 1000
	q := NewFIFO(n)
	for v := 0; v < n; v++ {
		q.Push(VertexID(v))
	}
	// Interleave pops and re-pushes to force in-place compaction.
	expect := VertexID(0)
	for i := 0; i < 5*n; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("unexpected empty at step %d", i)
		}
		if v != expect%VertexID(n) {
			t.Fatalf("step %d: got %d want %d", i, v, expect%VertexID(n))
		}
		expect++
		q.Push(v) // immediately re-activate, FIFO order must hold
	}
}
