package runtime

import (
	"context"
	"errors"
	"sync"
)

// Scheduler is the admission controller over one shared Pool: at most
// maxJobs runs hold a lease at a time; submissions beyond that queue
// FIFO. Admission bounds scratch memory (each in-flight run owns
// mailboxes, worklists, and checkpoint generations proportional to its
// graph) while the pool bounds CPU — the two are deliberately separate
// knobs, mirroring the job-slots vs. worker-threads split of the
// surveyed frameworks' cluster runtimes.
type Scheduler struct {
	pool    *Pool
	maxJobs int

	mu       sync.Mutex
	inflight int
	waiters  []*waiter
	nextID   int64
}

// waiter is one queued Acquire. granted flags the hand-off race: a
// slot may be granted concurrently with the waiter's context expiring,
// in which case the loser returns the slot.
type waiter struct {
	ready   chan struct{}
	granted bool
}

// NewScheduler builds a scheduler over a fresh pool of workers
// goroutines (0 = GOMAXPROCS), admitting at most maxJobs concurrent
// jobs (0 = 1).
func NewScheduler(workers, maxJobs int) *Scheduler {
	if maxJobs <= 0 {
		maxJobs = 1
	}
	var pool *Pool
	if workers <= 0 {
		pool = NewProcessPool()
	} else {
		pool = NewPool(workers)
	}
	return &Scheduler{pool: pool, maxJobs: maxJobs}
}

// Pool returns the scheduler's shared worker pool.
func (s *Scheduler) Pool() *Pool { return s.pool }

// MaxJobs returns the admission limit.
func (s *Scheduler) MaxJobs() int { return s.maxJobs }

// InFlight returns the number of jobs currently holding a lease.
func (s *Scheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// QueueLen returns the number of submissions waiting for admission.
func (s *Scheduler) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// Close releases the pool's goroutines. The scheduler must be idle (no
// in-flight or queued jobs).
func (s *Scheduler) Close() { s.pool.Close() }

// Acquire blocks until an admission slot is free (FIFO among waiters)
// and returns a lease for share virtual workers. The lease's Release
// returns the slot; every acquired lease must be released. If ctx ends
// first, Acquire returns its cause and the caller holds nothing.
func (s *Scheduler) Acquire(ctx context.Context, share int) (*Lease, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	s.mu.Lock()
	if s.inflight < s.maxJobs && len(s.waiters) == 0 {
		s.inflight++
		s.mu.Unlock()
		return s.newLease(share), nil
	}
	w := &waiter{ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return s.newLease(share), nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// Lost the race: a slot was handed to us as the context
			// expired. Return it (possibly straight to the next waiter).
			s.releaseLocked()
			s.mu.Unlock()
			return nil, context.Cause(ctx)
		}
		for i, q := range s.waiters {
			if q == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return nil, context.Cause(ctx)
	}
}

// newLease attaches the admission slot's release to a pool lease.
func (s *Scheduler) newLease(share int) *Lease {
	l := s.pool.Lease(share)
	l.release = func() {
		s.mu.Lock()
		s.releaseLocked()
		s.mu.Unlock()
	}
	return l
}

// releaseLocked frees one slot and hands it to the oldest waiter.
func (s *Scheduler) releaseLocked() {
	s.inflight--
	if len(s.waiters) > 0 && s.inflight < s.maxJobs {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.inflight++
		w.granted = true
		close(w.ready)
	}
}

// Submit enqueues a run as a Job: the job waits for admission (FIFO),
// runs fn with its lease attached, then releases the lease and runs
// its cleanups. fn observes cancellation through job.Context() — the
// driver checks it at every barrier — and the job's terminal state
// reflects how fn ended: nil = JobSucceeded, a context error (the
// job's own or inherited from ctx) = JobCancelled, anything else =
// JobFailed.
//
// Submit never blocks; poll the returned handle (Wait, Done, State,
// TraceSince) for progress.
func (s *Scheduler) Submit(ctx context.Context, name string, share int, fn func(j *Job) error) *Job {
	if ctx == nil {
		ctx = context.Background()
	}
	if share <= 0 {
		share = DefaultWorkers()
	}
	jctx, cancel := context.WithCancelCause(ctx)
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	j := &Job{id: id, name: name, ctx: jctx, cancel: cancel, done: make(chan struct{})}

	go func() {
		defer close(j.done)
		defer j.runCleanups()
		defer cancel(nil)

		lease, err := s.Acquire(jctx, share)
		if err != nil {
			j.finish(JobCancelled, err)
			return
		}
		defer lease.Release()
		j.setRunning(lease)

		err = fn(j)
		switch {
		case err == nil:
			j.finish(JobSucceeded, nil)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			j.finish(JobCancelled, err)
		default:
			j.finish(JobFailed, err)
		}
	}()
	return j
}
