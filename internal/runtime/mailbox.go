package runtime

import "vcgraph/internal/graph"

// VertexID aliases graph.VertexID.
type VertexID = graph.VertexID

// entry is one outbox lane slot: a destination vertex, the (possibly
// sender-side combined) message, and the number of raw messages folded
// into it. The raw count is what the BSP model's h charges — Stats are
// always recorded pre-combining.
type entry[M any] struct {
	dst VertexID
	m   M
	raw int64
}

// lane is the outbox of one (src worker, dst worker) pair. The slice
// keeps its capacity across supersteps.
type lane[M any] struct {
	entries []entry[M]
}

// Mailbox is a sharded message store for P workers over n vertices:
// P×P outbox lanes plus a per-vertex inbox. The sharding makes both
// phases race-free by construction: during compute, worker w appends
// only to lanes[w][*]; during delivery, worker w drains only
// lanes[*][w] and touches only inboxes of vertices it owns.
//
// All buffers (lanes, per-vertex inboxes, combiner indices) keep their
// capacity across supersteps, so a steady-state superstep allocates
// nothing on the message path.
type Mailbox[M any] struct {
	workers int
	owner   []int32 // vertex -> owning worker
	comb    func(a, b M) M

	lanes   [][]lane[M] // [src][dst]
	inbox   [][]M
	rawRecv []int64 // raw (pre-combining) messages delivered per vertex

	// Sender-side combining index (combiner installed only): slots[src][v]
	// is the entry index of v in lane[src][owner[v]], valid while
	// tags[src][v] == epoch. The epoch tag makes invalidation at the
	// superstep barrier O(1) instead of an O(sent) map clear, and Send
	// stays an array access instead of a hashed map probe.
	slots [][]int32
	tags  [][]uint32
	epoch uint32
}

// NewMailbox builds a mailbox for len(owner) vertices sharded over
// workers. comb, when non-nil, is applied sender-side in the outbox
// lanes and receiver-side across lanes, exactly mirroring the result
// of combining at delivery time (the combiner contract requires
// associativity and commutativity).
func NewMailbox[M any](workers int, owner []int32, comb func(a, b M) M) *Mailbox[M] {
	n := len(owner)
	mb := &Mailbox[M]{
		workers: workers,
		owner:   owner,
		comb:    comb,
		lanes:   make([][]lane[M], workers),
		inbox:   make([][]M, n),
		rawRecv: make([]int64, n),
	}
	for src := range mb.lanes {
		mb.lanes[src] = make([]lane[M], workers)
	}
	if comb != nil {
		mb.epoch = 1
		mb.slots = make([][]int32, workers)
		mb.tags = make([][]uint32, workers)
		for src := 0; src < workers; src++ {
			mb.slots[src] = make([]int32, n)
			mb.tags[src] = make([]uint32, n)
		}
	}
	return mb
}

// Advance invalidates the sender-side combining index. The engine must
// call it once per superstep, single-threaded at the barrier, so that
// sends of consecutive compute phases never combine into stale slots.
func (mb *Mailbox[M]) Advance() {
	if mb.comb == nil {
		return
	}
	mb.epoch++
	if mb.epoch == 0 { // wrapped: reset tags so stale slots cannot alias
		for _, t := range mb.tags {
			clear(t)
		}
		mb.epoch = 1
	}
}

// Owner returns the worker owning vertex v.
func (mb *Mailbox[M]) Owner(v VertexID) int { return int(mb.owner[v]) }

// Send records one raw message from src worker to vertex dst. With a
// combiner installed the message may fold into an existing lane slot
// (sender-side combining); the slot's raw count still grows by one.
func (mb *Mailbox[M]) Send(src int, dst VertexID, m M) {
	ln := &mb.lanes[src][mb.owner[dst]]
	if mb.comb != nil {
		if mb.tags[src][dst] == mb.epoch {
			e := &ln.entries[mb.slots[src][dst]]
			e.m = mb.comb(e.m, m)
			e.raw++
			return
		}
		mb.tags[src][dst] = mb.epoch
		mb.slots[src][dst] = int32(len(ln.entries))
	}
	ln.entries = append(ln.entries, entry[M]{dst: dst, m: m, raw: 1})
}

// SendAll records one raw message from src worker to each vertex in
// dsts — the broadcast a vertex program's send-to-all-neighbors issues,
// with dsts typically a CSR adjacency span. Semantically identical to
// calling Send per destination; the per-send lane/tag/slot lookups are
// hoisted out of the loop.
func (mb *Mailbox[M]) SendAll(src int, dsts []VertexID, m M) {
	lanes := mb.lanes[src]
	owner := mb.owner
	if mb.comb == nil {
		for _, dst := range dsts {
			ln := &lanes[owner[dst]]
			ln.entries = append(ln.entries, entry[M]{dst: dst, m: m, raw: 1})
		}
		return
	}
	tags, slots, epoch := mb.tags[src], mb.slots[src], mb.epoch
	for _, dst := range dsts {
		ln := &lanes[owner[dst]]
		if tags[dst] == epoch {
			e := &ln.entries[slots[dst]]
			e.m = mb.comb(e.m, m)
			e.raw++
			continue
		}
		tags[dst] = epoch
		slots[dst] = int32(len(ln.entries))
		ln.entries = append(ln.entries, entry[M]{dst: dst, m: m, raw: 1})
	}
}

// Deliver drains every lane addressed to worker w, in source-worker
// order, into the inboxes of w's vertices. onFirstMail, when non-nil,
// fires once per vertex whose raw-received count transitions from
// zero (its hook into the active-vertex worklist). It returns the raw
// message count delivered and the number of inbox placements after
// combining (placements == delivered when no combiner is installed).
func (mb *Mailbox[M]) Deliver(w int, onFirstMail func(VertexID)) (delivered, placements int64) {
	delivered, placements, _ = mb.DeliverFaulty(w, 0, nil, onFirstMail)
	return delivered, placements
}

// DeliverFaulty is Deliver under fault injection: before draining each
// lane (src → w) it consults the injector for a lane fault at the
// given barrier. A dropped lane's batch is discarded in transit and
// reported via dropped — the engine must roll back, because the
// messages are unrecoverable. A duplicated lane's batch is redelivered
// after the original; batches carry per-lane sequence numbers, so the
// replay fails the receiver's sequence check and is discarded without
// touching any inbox (the injector tallies the rejected duplicate). A
// nil injector makes this identical to Deliver.
func (mb *Mailbox[M]) DeliverFaulty(w, step int, inj *Injector, onFirstMail func(VertexID)) (delivered, placements int64, dropped bool) {
	for src := 0; src < mb.workers; src++ {
		ln := &mb.lanes[src][w]
		if inj != nil {
			switch inj.LaneFault(step, src, w) {
			case FaultDropLane:
				// The batch is lost in transit: the receiver notices
				// the missing sequence number at the barrier and the
				// engine rolls back to its last checkpoint.
				ln.entries = ln.entries[:0]
				dropped = true
				continue
			case FaultDupLane:
				// The batch arrives twice. The first copy is delivered
				// below; the replay carries an already-seen sequence
				// number and is rejected, so delivery stays exactly-once.
			}
		}
		for i := range ln.entries {
			e := &ln.entries[i]
			v := e.dst
			if mb.rawRecv[v] == 0 && onFirstMail != nil {
				onFirstMail(v)
			}
			mb.rawRecv[v] += e.raw
			delivered += e.raw
			if mb.comb != nil && len(mb.inbox[v]) == 1 {
				mb.inbox[v][0] = mb.comb(mb.inbox[v][0], e.m)
			} else {
				mb.inbox[v] = append(mb.inbox[v], e.m)
				placements++
			}
		}
		ln.entries = ln.entries[:0]
	}
	return delivered, placements, dropped
}

// DepositPulled merges one gathered accumulator value into v's inbox,
// exactly as delivering a single combined lane entry carrying raw
// pre-combining messages would: the first-mail hook fires on the
// zero→nonzero raw transition, the raw count reaches RawCount, and
// with a combiner the value folds into the existing inbox slot. It
// returns the number of inbox placements (0 when the value was folded
// into an occupied slot). Only v's owning worker may call it, during
// the delivery phase — the same sharding discipline as DeliverFaulty.
func (mb *Mailbox[M]) DepositPulled(v VertexID, m M, raw int64, onFirstMail func(VertexID)) (placements int64) {
	if mb.rawRecv[v] == 0 && onFirstMail != nil {
		onFirstMail(v)
	}
	mb.rawRecv[v] += raw
	if mb.comb != nil && len(mb.inbox[v]) == 1 {
		mb.inbox[v][0] = mb.comb(mb.inbox[v][0], m)
		return 0
	}
	mb.inbox[v] = append(mb.inbox[v], m)
	return 1
}

// Inbox returns v's delivered messages. The slice is valid until v's
// next ResetVertex/LoadVertex and must not be retained across
// supersteps (its backing array is reused).
func (mb *Mailbox[M]) Inbox(v VertexID) []M { return mb.inbox[v] }

// RawCount returns the raw (pre-combining) number of messages
// delivered to v in the last delivery phase.
func (mb *Mailbox[M]) RawCount(v VertexID) int64 { return mb.rawRecv[v] }

// ResetVertex empties v's inbox, keeping its capacity for reuse.
func (mb *Mailbox[M]) ResetVertex(v VertexID) {
	mb.inbox[v] = mb.inbox[v][:0]
	mb.rawRecv[v] = 0
}

// LoadVertex replaces v's inbox contents and raw count (checkpoint
// recovery), copying msgs into v's reusable buffer.
func (mb *Mailbox[M]) LoadVertex(v VertexID, msgs []M, raw int64) {
	mb.inbox[v] = append(mb.inbox[v][:0], msgs...)
	mb.rawRecv[v] = raw
}
