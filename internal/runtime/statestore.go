package runtime

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Small-domain vertex-state storage: the second half of the memory-lean
// substrate. Many of the paper's algorithms keep per-vertex state whose
// domain is tiny relative to its container — a CC label is one of n
// values (⌈log₂ n⌉ bits, stored as 4-byte VertexIDs), a coreness
// estimate is bounded by the maximum degree, a color by Δ+1 — so a flat
// array wastes most of its bits. StateStore abstracts the storage so a
// program variant can swap the flat array for a bit-packed one without
// changing its message flow, which is what keeps packed-state runs
// byte-identical to dense ones. The implementation lives here in the
// shared runtime so every engine's packed program variants
// (pregel/gas/async/blockcentric) can build on it; internal/vc
// re-exports it as the algorithm-facing surface.
//
// Concurrency: engines run vertices of different workers concurrently,
// and with sub-word entries two vertices of different workers can share
// a 64-bit word, so PackedInts.Set is a CAS loop and Get an atomic
// load. Entries never straddle words (the tail bits of each word are
// padding), which is what makes the single-word CAS sufficient.

// StateStore is a fixed-length array of small unsigned integers,
// indexed by int so the same store works per-vertex (labels, colors)
// and per-edge-slot (k-core neighbor estimates). Implementations are
// safe for concurrent use on different indices; concurrent writers to
// the SAME index race (engines never do that — only an index's owner
// writes it).
type StateStore interface {
	// Get returns entry i.
	Get(i int) uint64
	// Set stores x as entry i. Panics if x is outside the store's
	// domain.
	Set(i int, x uint64)
	// Len returns the number of entries.
	Len() int
	// SizeBytes returns the retained footprint of the backing array.
	SizeBytes() int
	// Clone returns an independent deep copy (checkpointing).
	Clone() StateStore
	// CopyFrom overwrites this store with src's contents. The stores
	// must have the same length and type (double-buffer barrier swaps).
	CopyFrom(src StateStore)
}

// NewStateStore returns a store for n entries over [0, domain): a
// bit-packed store when packed is set, the flat 8-byte reference store
// otherwise.
func NewStateStore(packed bool, n int, domain uint64) StateStore {
	if packed {
		return NewPackedInts(n, domain)
	}
	return NewDenseStore(n)
}

// DenseStore is the flat reference implementation: one uint64 per
// entry, no packing. It is what packed runs are differential-tested
// against.
type DenseStore struct {
	vals []uint64
}

// NewDenseStore returns a flat store of n zero entries.
func NewDenseStore(n int) *DenseStore { return &DenseStore{vals: make([]uint64, n)} }

func (d *DenseStore) Get(i int) uint64    { return atomic.LoadUint64(&d.vals[i]) }
func (d *DenseStore) Set(i int, x uint64) { atomic.StoreUint64(&d.vals[i], x) }
func (d *DenseStore) Len() int            { return len(d.vals) }
func (d *DenseStore) SizeBytes() int      { return 8 * len(d.vals) }

func (d *DenseStore) Clone() StateStore {
	return &DenseStore{vals: append([]uint64(nil), d.vals...)}
}

func (d *DenseStore) CopyFrom(src StateStore) { copy(d.vals, src.(*DenseStore).vals) }

// PackedInts stores n entries of width ⌈log₂ domain⌉ bits each, packed
// into uint64 words. Entries never straddle a word boundary: each word
// holds ⌊64/width⌋ entries and the remaining bits are padding, so Set
// is a single-word CAS loop — safe when vertices owned by different
// workers share a word — and Get a single atomic load.
type PackedInts struct {
	n     int
	width uint
	perW  int // entries per word
	mask  uint64
	words []uint64
}

// NewPackedInts returns a packed store of n zero entries over
// [0, domain). domain must be at least 1; a domain of 1 still uses one
// bit per entry.
func NewPackedInts(n int, domain uint64) *PackedInts {
	if domain < 1 {
		panic("runtime: PackedInts domain must be >= 1")
	}
	width := uint(bits.Len64(domain - 1))
	if width == 0 {
		width = 1
	}
	perW := 64 / int(width)
	return &PackedInts{
		n:     n,
		width: width,
		perW:  perW,
		mask:  1<<width - 1,
		words: make([]uint64, (n+perW-1)/perW),
	}
}

// Width returns the bits per entry.
func (p *PackedInts) Width() uint { return p.width }

func (p *PackedInts) Get(i int) uint64 {
	w := i / p.perW
	off := uint(i%p.perW) * p.width
	return atomic.LoadUint64(&p.words[w]) >> off & p.mask
}

func (p *PackedInts) Set(i int, x uint64) {
	if x&^p.mask != 0 {
		panic(fmt.Sprintf("runtime: PackedInts.Set(%d, %d): value exceeds %d-bit domain", i, x, p.width))
	}
	w := i / p.perW
	off := uint(i%p.perW) * p.width
	for {
		old := atomic.LoadUint64(&p.words[w])
		upd := old&^(p.mask<<off) | x<<off
		if old == upd || atomic.CompareAndSwapUint64(&p.words[w], old, upd) {
			return
		}
	}
}

func (p *PackedInts) Len() int       { return p.n }
func (p *PackedInts) SizeBytes() int { return 8 * len(p.words) }

func (p *PackedInts) Clone() StateStore {
	c := *p
	c.words = append([]uint64(nil), p.words...)
	return &c
}

func (p *PackedInts) CopyFrom(src StateStore) { copy(p.words, src.(*PackedInts).words) }
