package runtime

import (
	"reflect"
	"testing"
)

func TestFaultPlanDeterministicFromSeed(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := NewFaultPlan(seed).materialize(4)
		b := NewFaultPlan(seed).materialize(4)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: plans differ: %v vs %v", seed, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		for _, ev := range a {
			if ev.Worker < 0 || ev.Worker >= 4 || ev.Lane < 0 || ev.Lane >= 4 {
				t.Fatalf("seed %d: event out of worker range: %+v", seed, ev)
			}
		}
	}
}

func TestFaultPlanScalesToWorkerCount(t *testing.T) {
	p := PlanOf(DropLane(2, 7, 9), Crash(1))
	evs := p.materialize(3)
	if evs[0].Kind != FaultCrash || evs[0].Step != 1 {
		t.Fatalf("events not sorted by step: %v", evs)
	}
	if evs[1].Worker != 7%3 || evs[1].Lane != 9%3 {
		t.Fatalf("worker/lane not reduced modulo workers: %+v", evs[1])
	}
}

func TestInjectorEventsFireOnce(t *testing.T) {
	in := PlanOf(Crash(3), DropLane(2, 1, 0), DupLane(2, 0, 1), CorruptCheckpoint(1)).NewInjector(2)

	// Crash fires at the first barrier >= its step, exactly once.
	if _, ok := in.CrashAt(2); ok {
		t.Fatal("crash fired early")
	}
	if _, ok := in.CrashAt(5); !ok {
		t.Fatal("crash did not fire at step 5 (>= 3)")
	}
	if _, ok := in.CrashAt(5); ok {
		t.Fatal("crash fired twice")
	}

	// Lane faults match (src, dst) and fire once.
	if k := in.LaneFault(2, 0, 0); k != 0 {
		t.Fatalf("unexpected lane fault on (0,0): %v", k)
	}
	if k := in.LaneFault(2, 1, 0); k != FaultDropLane {
		t.Fatalf("want drop on (1,0), got %v", k)
	}
	if k := in.LaneFault(3, 1, 0); k != 0 {
		t.Fatal("drop fired twice")
	}
	if k := in.LaneFault(4, 0, 1); k != FaultDupLane {
		t.Fatalf("want dup on (0,1), got %v", k)
	}

	if !in.CorruptSave(1) {
		t.Fatal("corrupt-save did not fire")
	}
	if in.CorruptSave(9) {
		t.Fatal("corrupt-save fired twice")
	}

	c := in.Counts()
	want := FaultCounts{Crashes: 1, DroppedLanes: 1, DuplicatedLanes: 1, CorruptedCheckpoints: 1}
	if c != want {
		t.Fatalf("counts %+v, want %+v", c, want)
	}
	if len(in.Fired()) != 4 {
		t.Fatalf("fired %d events, want 4", len(in.Fired()))
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if _, ok := in.CrashAt(0); ok {
		t.Fatal("nil injector crashed")
	}
	if in.LaneFault(0, 0, 0) != 0 || in.CorruptSave(0) {
		t.Fatal("nil injector injected")
	}
	var p *FaultPlan
	if p.NewInjector(4) != nil {
		t.Fatal("nil plan produced an injector")
	}
	if (&FaultPlan{}).NewInjector(4) != nil {
		t.Fatal("empty plan produced an injector")
	}
}

func TestCheckpointsCorruptionFallback(t *testing.T) {
	var cks Checkpoints[string]
	cks.Save(2, "gen2", true, false)
	cks.Save(4, "gen4", true, true) // written corrupt: silent until read

	chain, step, skipped, invalidated, ok := cks.Recover()
	if !ok || len(chain) != 1 || chain[0] != "gen2" || step != 2 || skipped != 1 || invalidated != 0 {
		t.Fatalf("Recover() = %v, %d, %d, %d, %v; want [gen2], 2, 1, 0, true", chain, step, skipped, invalidated, ok)
	}
	if cks.Saved() != 2 {
		t.Fatalf("Saved() = %d", cks.Saved())
	}

	// Both generations corrupt: fresh restart.
	var bad Checkpoints[string]
	bad.Save(2, "a", true, true)
	bad.Save(4, "b", true, true)
	if _, _, skipped, _, ok := bad.Recover(); ok || skipped != 2 {
		t.Fatalf("corrupt store recovered (skipped=%d ok=%v)", skipped, ok)
	}

	// Empty store: nothing to recover.
	var empty Checkpoints[int]
	if _, _, _, _, ok := empty.Recover(); ok {
		t.Fatal("empty store recovered")
	}
}

func TestMailboxDeliverFaulty(t *testing.T) {
	owner := []int32{0, 1}
	mb := NewMailbox[int](2, owner, nil)
	mb.Send(0, 1, 10)
	mb.Send(1, 1, 20)

	// Drop lane (0 -> 1): only worker 1's own lane arrives.
	in := PlanOf(DropLane(0, 0, 1)).NewInjector(2)
	delivered, _, dropped := mb.DeliverFaulty(1, 0, in, nil)
	if !dropped {
		t.Fatal("drop not reported")
	}
	if delivered != 1 || len(mb.Inbox(1)) != 1 || mb.Inbox(1)[0] != 20 {
		t.Fatalf("inbox after drop: %v (delivered %d)", mb.Inbox(1), delivered)
	}
	mb.ResetVertex(1)

	// Duplicate lane: the replayed batch is rejected, delivery stays
	// exactly-once.
	mb.Send(0, 1, 30)
	in = PlanOf(DupLane(0, 0, 1)).NewInjector(2)
	delivered, _, dropped = mb.DeliverFaulty(1, 0, in, nil)
	if dropped || delivered != 1 || len(mb.Inbox(1)) != 1 {
		t.Fatalf("dup changed delivery: inbox %v delivered %d dropped %v", mb.Inbox(1), delivered, dropped)
	}
	if c := in.Counts(); c.DuplicatedLanes != 1 {
		t.Fatalf("dup not counted: %+v", c)
	}
}

func TestFIFOSnapshotLoad(t *testing.T) {
	q := NewFIFO(8)
	q.Push(3)
	q.Push(1)
	q.Push(5)
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	snap := q.Snapshot()
	if !reflect.DeepEqual(snap, []VertexID{1, 5}) {
		t.Fatalf("snapshot = %v", snap)
	}
	q.Push(7)
	q.Load(snap)
	if q.Len() != 2 {
		t.Fatalf("len after load = %d", q.Len())
	}
	if v, _ := q.Pop(); v != 1 {
		t.Fatalf("first after load = %d", v)
	}
	if v, _ := q.Pop(); v != 5 {
		t.Fatalf("second after load = %d", v)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue not empty after load+pops")
	}
}

func TestCheckpointsDeltaChains(t *testing.T) {
	// Chain reconstruction: the newest generation is full frame 1 plus
	// deltas 2 and 3, returned base-first for in-order application.
	var cks Checkpoints[string]
	cks.Save(1, "f1", true, false)
	cks.Save(2, "d2", false, false)
	cks.Save(3, "d3", false, false)
	chain, step, skipped, invalidated, ok := cks.Recover()
	if !ok || step != 3 || skipped != 0 || invalidated != 0 {
		t.Fatalf("Recover() = %v, %d, %d, %d, %v; want chain at 3", chain, step, skipped, invalidated, ok)
	}
	if want := []string{"f1", "d2", "d3"}; !reflect.DeepEqual(chain, want) {
		t.Fatalf("chain = %v, want %v", chain, want)
	}
	if cks.Saved() != 3 || cks.DeltaSaved() != 2 {
		t.Fatalf("Saved/DeltaSaved = %d/%d, want 3/2", cks.Saved(), cks.DeltaSaved())
	}

	// Corrupt mid-chain delta: counted once, the dependent delta above
	// it invalidated, recovery falls back to the base full frame.
	var mid Checkpoints[string]
	mid.Save(1, "f1", true, false)
	mid.Save(2, "d2", false, true) // silent damage
	mid.Save(3, "d3", false, false)
	chain, step, skipped, invalidated, ok = mid.Recover()
	if !ok || step != 1 || skipped != 1 || invalidated != 1 {
		t.Fatalf("mid-chain corruption: Recover() = %v, %d, %d, %d, %v; want fallback to 1 with 1 skipped, 1 invalidated",
			chain, step, skipped, invalidated, ok)
	}
	if want := []string{"f1"}; !reflect.DeepEqual(chain, want) {
		t.Fatalf("fallback chain = %v, want %v", chain, want)
	}

	// Corrupt base full frame: the whole generation collapses — both
	// dependents invalidated, no readable frame left.
	var base Checkpoints[string]
	base.Save(1, "f1", true, true)
	base.Save(2, "d2", false, false)
	base.Save(3, "d3", false, false)
	if _, _, skipped, invalidated, ok := base.Recover(); ok || skipped != 1 || invalidated != 2 {
		t.Fatalf("corrupt base: skipped=%d invalidated=%d ok=%v; want 1, 2, false", skipped, invalidated, ok)
	}

	// A second full generation survives the collapse of the newer one.
	var two Checkpoints[string]
	two.Save(1, "f1", true, false)
	two.Save(2, "d2", false, false)
	two.Save(3, "f3", true, false)
	two.Save(4, "d4", false, true)
	two.Save(5, "d5", false, false)
	chain, step, skipped, invalidated, ok = two.Recover()
	if !ok || step != 3 || skipped != 1 || invalidated != 1 {
		t.Fatalf("two generations: Recover() = %v, %d, %d, %d, %v; want fallback to 3", chain, step, skipped, invalidated, ok)
	}
	if want := []string{"f3"}; !reflect.DeepEqual(chain, want) {
		t.Fatalf("fallback chain = %v, want %v", chain, want)
	}
}

func TestCheckpointsPruneOnFull(t *testing.T) {
	// A new full generation retires everything older than the previous
	// full frame: after fulls at 1, 4, and 7, the store must have
	// dropped frames 1–3, and recovery after losing generation 7 lands
	// on the 4-5-6 chain, never on the retired one.
	var cks Checkpoints[string]
	cks.Save(1, "f1", true, false)
	cks.Save(2, "d2", false, false)
	cks.Save(3, "d3", false, false)
	cks.Save(4, "f4", true, false)
	cks.Save(5, "d5", false, false)
	cks.Save(6, "d6", false, false)
	cks.Save(7, "f7", true, true) // corrupt: forces fallback across generations
	if cks.Saved() != 7 || cks.DeltaSaved() != 4 {
		t.Fatalf("Saved/DeltaSaved = %d/%d, want 7/4", cks.Saved(), cks.DeltaSaved())
	}
	chain, step, skipped, invalidated, ok := cks.Recover()
	if !ok || step != 6 || skipped != 1 || invalidated != 0 {
		t.Fatalf("Recover() = %v, %d, %d, %d, %v; want chain at 6", chain, step, skipped, invalidated, ok)
	}
	if want := []string{"f4", "d5", "d6"}; !reflect.DeepEqual(chain, want) {
		t.Fatalf("chain = %v, want %v", chain, want)
	}

	// Headless deltas: if pruning (or damage) leaves deltas with no
	// readable full base below them, they are invalidated, not applied.
	var headless Checkpoints[string]
	headless.Save(2, "d2", false, false)
	headless.Save(3, "d3", false, false)
	if _, _, skipped, invalidated, ok := headless.Recover(); ok || skipped != 0 || invalidated != 2 {
		t.Fatalf("headless deltas: skipped=%d invalidated=%d ok=%v; want 0, 2, false", skipped, invalidated, ok)
	}
}
