package runtime

import (
	"reflect"
	"testing"
)

func TestFaultPlanDeterministicFromSeed(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := NewFaultPlan(seed).materialize(4)
		b := NewFaultPlan(seed).materialize(4)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: plans differ: %v vs %v", seed, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		for _, ev := range a {
			if ev.Worker < 0 || ev.Worker >= 4 || ev.Lane < 0 || ev.Lane >= 4 {
				t.Fatalf("seed %d: event out of worker range: %+v", seed, ev)
			}
		}
	}
}

func TestFaultPlanScalesToWorkerCount(t *testing.T) {
	p := PlanOf(DropLane(2, 7, 9), Crash(1))
	evs := p.materialize(3)
	if evs[0].Kind != FaultCrash || evs[0].Step != 1 {
		t.Fatalf("events not sorted by step: %v", evs)
	}
	if evs[1].Worker != 7%3 || evs[1].Lane != 9%3 {
		t.Fatalf("worker/lane not reduced modulo workers: %+v", evs[1])
	}
}

func TestInjectorEventsFireOnce(t *testing.T) {
	in := PlanOf(Crash(3), DropLane(2, 1, 0), DupLane(2, 0, 1), CorruptCheckpoint(1)).NewInjector(2)

	// Crash fires at the first barrier >= its step, exactly once.
	if _, ok := in.CrashAt(2); ok {
		t.Fatal("crash fired early")
	}
	if _, ok := in.CrashAt(5); !ok {
		t.Fatal("crash did not fire at step 5 (>= 3)")
	}
	if _, ok := in.CrashAt(5); ok {
		t.Fatal("crash fired twice")
	}

	// Lane faults match (src, dst) and fire once.
	if k := in.LaneFault(2, 0, 0); k != 0 {
		t.Fatalf("unexpected lane fault on (0,0): %v", k)
	}
	if k := in.LaneFault(2, 1, 0); k != FaultDropLane {
		t.Fatalf("want drop on (1,0), got %v", k)
	}
	if k := in.LaneFault(3, 1, 0); k != 0 {
		t.Fatal("drop fired twice")
	}
	if k := in.LaneFault(4, 0, 1); k != FaultDupLane {
		t.Fatalf("want dup on (0,1), got %v", k)
	}

	if !in.CorruptSave(1) {
		t.Fatal("corrupt-save did not fire")
	}
	if in.CorruptSave(9) {
		t.Fatal("corrupt-save fired twice")
	}

	c := in.Counts()
	want := FaultCounts{Crashes: 1, DroppedLanes: 1, DuplicatedLanes: 1, CorruptedCheckpoints: 1}
	if c != want {
		t.Fatalf("counts %+v, want %+v", c, want)
	}
	if len(in.Fired()) != 4 {
		t.Fatalf("fired %d events, want 4", len(in.Fired()))
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if _, ok := in.CrashAt(0); ok {
		t.Fatal("nil injector crashed")
	}
	if in.LaneFault(0, 0, 0) != 0 || in.CorruptSave(0) {
		t.Fatal("nil injector injected")
	}
	var p *FaultPlan
	if p.NewInjector(4) != nil {
		t.Fatal("nil plan produced an injector")
	}
	if (&FaultPlan{}).NewInjector(4) != nil {
		t.Fatal("empty plan produced an injector")
	}
}

func TestCheckpointsCorruptionFallback(t *testing.T) {
	var cks Checkpoints[string]
	cks.Save(2, "gen2", false)
	cks.Save(4, "gen4", true) // written corrupt: silent until read

	state, step, skipped, ok := cks.Recover()
	if !ok || state != "gen2" || step != 2 || skipped != 1 {
		t.Fatalf("Recover() = %q, %d, %d, %v; want gen2, 2, 1, true", state, step, skipped, ok)
	}
	if cks.Saved() != 2 {
		t.Fatalf("Saved() = %d", cks.Saved())
	}

	// Both generations corrupt: fresh restart.
	var bad Checkpoints[string]
	bad.Save(2, "a", true)
	bad.Save(4, "b", true)
	if _, _, skipped, ok := bad.Recover(); ok || skipped != 2 {
		t.Fatalf("corrupt store recovered (skipped=%d ok=%v)", skipped, ok)
	}

	// Empty store: nothing to recover.
	var empty Checkpoints[int]
	if _, _, _, ok := empty.Recover(); ok {
		t.Fatal("empty store recovered")
	}
}

func TestMailboxDeliverFaulty(t *testing.T) {
	owner := []int32{0, 1}
	mb := NewMailbox[int](2, owner, nil)
	mb.Send(0, 1, 10)
	mb.Send(1, 1, 20)

	// Drop lane (0 -> 1): only worker 1's own lane arrives.
	in := PlanOf(DropLane(0, 0, 1)).NewInjector(2)
	delivered, _, dropped := mb.DeliverFaulty(1, 0, in, nil)
	if !dropped {
		t.Fatal("drop not reported")
	}
	if delivered != 1 || len(mb.Inbox(1)) != 1 || mb.Inbox(1)[0] != 20 {
		t.Fatalf("inbox after drop: %v (delivered %d)", mb.Inbox(1), delivered)
	}
	mb.ResetVertex(1)

	// Duplicate lane: the replayed batch is rejected, delivery stays
	// exactly-once.
	mb.Send(0, 1, 30)
	in = PlanOf(DupLane(0, 0, 1)).NewInjector(2)
	delivered, _, dropped = mb.DeliverFaulty(1, 0, in, nil)
	if dropped || delivered != 1 || len(mb.Inbox(1)) != 1 {
		t.Fatalf("dup changed delivery: inbox %v delivered %d dropped %v", mb.Inbox(1), delivered, dropped)
	}
	if c := in.Counts(); c.DuplicatedLanes != 1 {
		t.Fatalf("dup not counted: %+v", c)
	}
}

func TestFIFOSnapshotLoad(t *testing.T) {
	q := NewFIFO(8)
	q.Push(3)
	q.Push(1)
	q.Push(5)
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	snap := q.Snapshot()
	if !reflect.DeepEqual(snap, []VertexID{1, 5}) {
		t.Fatalf("snapshot = %v", snap)
	}
	q.Push(7)
	q.Load(snap)
	if q.Len() != 2 {
		t.Fatalf("len after load = %d", q.Len())
	}
	if v, _ := q.Pop(); v != 1 {
		t.Fatalf("first after load = %d", v)
	}
	if v, _ := q.Pop(); v != 5 {
		t.Fatalf("second after load = %d", v)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue not empty after load+pops")
	}
}
