package runtime

import "testing"

func TestScratchPoolLease(t *testing.T) {
	ss := GetScratches(4)
	if len(ss) != 4 {
		t.Fatalf("leased %d buffers, want 4", len(ss))
	}
	for i, s := range ss {
		if s == nil {
			t.Fatalf("entry %d is nil", i)
		}
	}
	PutScratches(ss)
	for i, s := range ss {
		if s != nil {
			t.Fatalf("entry %d not nilled on return", i)
		}
	}
	PutScratch(nil) // returning a nil lease is a no-op, not a panic
	PutScratch(GetScratch())
}
