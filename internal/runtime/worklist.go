package runtime

import "slices"

// Worklists tracks the active vertices of a BSP engine, sharded per
// worker: a superstep iterates only over vertices that are active or
// have mail instead of rescanning all n vertices, and the engine's
// "any vertex still active?" question becomes an O(P) counter read
// instead of an O(n) scan.
//
// Protocol per superstep:
//
//	wl.Flip()                       // barrier: next becomes current
//	worker w: wl.SortCur(w)         // deterministic ascending order
//	          for v := range Cur(w):
//	              wl.Unmark(v)
//	              ... compute v ...
//	              if still active: wl.Add(w, v)
//	delivery: wl.Add(owner, v) for each vertex receiving first mail
//
// Add deduplicates via a per-vertex queued flag, so a vertex that both
// stays active and receives mail is processed once. Sharding makes the
// writes race-free: only vertex v's owning worker calls Unmark/Add
// for v, in whichever phase it runs.
type Worklists struct {
	cur    [][]VertexID // drained this superstep, per worker
	next   [][]VertexID // built for the next superstep, per worker
	queued []bool       // vertex is in next
}

// NewWorklists builds empty worklists for P workers over n vertices.
func NewWorklists(workers, n int) *Worklists {
	return &Worklists{
		cur:    make([][]VertexID, workers),
		next:   make([][]VertexID, workers),
		queued: make([]bool, n),
	}
}

// Flip swaps next into current (superstep barrier). Must be called
// single-threaded between phases.
func (wl *Worklists) Flip() {
	for w := range wl.cur {
		wl.cur[w], wl.next[w] = wl.next[w], wl.cur[w][:0]
	}
}

// Cur returns worker w's vertices for the current superstep.
func (wl *Worklists) Cur(w int) []VertexID { return wl.cur[w] }

// SortCur puts worker w's current list in ascending order, reproducing
// the deterministic vertex order of a full partition scan. Safe to call
// from worker w itself, and only valid immediately after Flip (before
// any Unmark/Add), when the queued flags still mark exactly the members
// of cur: a dense frontier is then rebuilt by scanning owned (the
// worker's vertices in ascending order) — O(|owned|) — instead of
// paying an O(f log f) comparison sort. owned may be nil to force the
// sort path.
func (wl *Worklists) SortCur(w int, owned []VertexID) {
	cur := wl.cur[w]
	if len(cur)*8 >= len(owned) && len(owned) > 0 {
		cur = cur[:0]
		for _, v := range owned {
			if wl.queued[v] {
				cur = append(cur, v)
			}
		}
		wl.cur[w] = cur
		return
	}
	slices.Sort(cur)
}

// Unmark clears v's queued flag; called by v's owner right before
// computing v so the vertex can re-queue itself for the next round.
func (wl *Worklists) Unmark(v VertexID) { wl.queued[v] = false }

// Add queues v on worker w's next list unless it is already queued.
// Only v's owning worker may call Add(w, v).
func (wl *Worklists) Add(w int, v VertexID) {
	if wl.queued[v] {
		return
	}
	wl.queued[v] = true
	wl.next[w] = append(wl.next[w], v)
}

// Pending returns the number of vertices queued for the next
// superstep (O(P)).
func (wl *Worklists) Pending() int {
	total := 0
	for _, l := range wl.next {
		total += len(l)
	}
	return total
}

// Next returns worker w's queued vertices for the next superstep
// (read-only; used by finishing-computations-serially to enumerate the
// remaining frontier without an O(n) scan).
func (wl *Worklists) Next(w int) []VertexID { return wl.next[w] }

// FillAll replaces the next-superstep lists with every vertex, sharded
// by verts (worker -> owned vertices). Used at run start and by the
// master's ActivateAll.
func (wl *Worklists) FillAll(verts [][]VertexID) {
	for w := range wl.next {
		wl.next[w] = append(wl.next[w][:0], verts[w]...)
	}
	for i := range wl.queued {
		wl.queued[i] = true
	}
}

// Clear empties the next-superstep lists (checkpoint recovery rebuilds
// from scratch; FCS terminates the run).
func (wl *Worklists) Clear() {
	for w := range wl.next {
		wl.next[w] = wl.next[w][:0]
	}
	for i := range wl.queued {
		wl.queued[i] = false
	}
}

// FIFO is a deduplicating first-in-first-out vertex worklist — the
// scheduler core of the asynchronous engine. Push enqueues a vertex
// unless it is already waiting; Pop dequeues in arrival order. The
// backing buffer is compacted in place instead of reallocated, so a
// long drain with re-activations allocates only when the high-water
// mark grows.
type FIFO struct {
	buf    []VertexID
	queued []bool
	head   int
}

// NewFIFO builds an empty worklist over n vertices.
func NewFIFO(n int) *FIFO {
	return &FIFO{buf: make([]VertexID, 0, n), queued: make([]bool, n)}
}

// Push enqueues v unless it is already queued.
func (q *FIFO) Push(v VertexID) {
	if q.queued[v] {
		return
	}
	q.queued[v] = true
	q.buf = append(q.buf, v)
}

// PushAll enqueues each vertex of vs in order, skipping already-queued
// ones — semantically identical to calling Push per element, with the
// dedup-flag and buffer lookups kept in registers across the batch
// (the bulk activation path of the asynchronous engine's dense rounds).
func (q *FIFO) PushAll(vs []VertexID) {
	buf, queued := q.buf, q.queued
	for _, v := range vs {
		if queued[v] {
			continue
		}
		queued[v] = true
		buf = append(buf, v)
	}
	q.buf = buf
}

// Pop dequeues the oldest vertex; ok is false when the list is empty.
func (q *FIFO) Pop() (v VertexID, ok bool) {
	if q.head >= len(q.buf) {
		return 0, false
	}
	v = q.buf[q.head]
	q.head++
	q.queued[v] = false
	if q.head > 64 && q.head*2 >= len(q.buf) {
		q.buf = q.buf[:copy(q.buf, q.buf[q.head:])]
		q.head = 0
	}
	return v, true
}

// Len returns the number of queued vertices.
func (q *FIFO) Len() int { return len(q.buf) - q.head }

// Snapshot returns the queued vertices in arrival order (checkpoint
// support for the asynchronous engine). The copy is independent of the
// live buffer.
func (q *FIFO) Snapshot() []VertexID {
	return append([]VertexID(nil), q.buf[q.head:]...)
}

// Load replaces the queue contents with vs, in order (checkpoint
// recovery). The backing buffer and dedup flags are reused.
func (q *FIFO) Load(vs []VertexID) {
	clear(q.queued)
	q.buf = q.buf[:0]
	q.head = 0
	for _, v := range vs {
		q.Push(v)
	}
}
