package runtime

import "unsafe"

// SizeOf reports the in-memory size of T's direct representation in
// bytes (unsafe.Sizeof of the zero value — excludes anything behind
// pointers, slices, or maps). Engines use it for deterministic
// checkpoint-frame byte estimates (SnapshotSizer): element size times
// element count, identical across runs on the same platform.
func SizeOf[T any]() int64 {
	var t T
	return int64(unsafe.Sizeof(t))
}

// MapEntryBytes is the flat per-entry estimate checkpoint sizing
// charges for map-typed frame fields (key header + value interface
// word pair); the boxed values themselves are opaque and excluded the
// same way on full and delta frames.
const MapEntryBytes = 16
