package runtime

import "fmt"

// This file implements the pull half of direction-optimizing execution
// (iPregel-style push/pull switching). In push mode a broadcast is
// materialized as one mailbox message per out-edge; in pull mode the
// sender merely publishes its message in a per-vertex broadcast slot
// and every destination gathers over its CSR transpose span, applying
// the program's combiner in place into an accumulator — zero mailbox
// traffic, zero sender-side contention, sequential reads. Pull is only
// sound when a combiner exists: the gather folds an unordered set of
// contributions, so the program must have declared that message order
// is irrelevant (associative + commutative reduction).

// DirectionMode selects the message path of a superstep-based engine.
type DirectionMode int

const (
	// DirectionAuto switches per superstep: pull when the active
	// frontier is dense (|frontier| > threshold·n) and a combiner is
	// registered, push otherwise.
	DirectionAuto DirectionMode = iota
	// DirectionPush always materializes messages through the mailbox.
	DirectionPush
	// DirectionPull gathers every superstep that has a combiner
	// (supersteps without one still push).
	DirectionPull
)

// DefaultPullThreshold is the auto-mode frontier density above which a
// superstep is pulled: |frontier| > n/20.
const DefaultPullThreshold = 1.0 / 20

// String returns the CLI spelling of the mode.
func (m DirectionMode) String() string {
	switch m {
	case DirectionPush:
		return "push"
	case DirectionPull:
		return "pull"
	}
	return "auto"
}

// ParseDirectionMode parses a CLI -mode value. The empty string means
// auto.
func ParseDirectionMode(s string) (DirectionMode, error) {
	switch s {
	case "", "auto":
		return DirectionAuto, nil
	case "push":
		return DirectionPush, nil
	case "pull":
		return DirectionPull, nil
	}
	return DirectionAuto, fmt.Errorf("runtime: unknown direction mode %q (want push, pull, or auto)", s)
}

// ChoosePull decides whether the upcoming superstep runs the pull
// path. combinable reports whether the engine has a combiner (pull is
// never legal without one); frontier is the number of vertices that
// will compute; threshold <= 0 means DefaultPullThreshold.
func ChoosePull(mode DirectionMode, combinable bool, frontier, n int, threshold float64) bool {
	if !combinable {
		return false
	}
	switch mode {
	case DirectionPush:
		return false
	case DirectionPull:
		return true
	}
	if threshold <= 0 {
		threshold = DefaultPullThreshold
	}
	return float64(frontier) > threshold*float64(n)
}

// Broadcasts holds one message slot per vertex: the value a vertex
// broadcast to all its out-neighbors during a pulled superstep, plus
// the raw call count (a vertex may broadcast more than once per
// superstep; with a combiner each call folds into the slot, exactly as
// it would fold into each destination's outbox lane entry under push).
// Slots are invalidated in O(1) at the superstep barrier by an epoch
// tag, mirroring the mailbox's sender-combining index.
//
// Writes are race-free by construction: only vertex v's owner calls
// Set(v) during the compute phase; readers gather after the barrier.
type Broadcasts[M any] struct {
	val   []M
	cnt   []int32
	tag   []uint32
	epoch uint32
}

// NewBroadcasts builds broadcast slots for n vertices.
func NewBroadcasts[M any](n int) *Broadcasts[M] {
	return &Broadcasts[M]{
		val:   make([]M, n),
		cnt:   make([]int32, n),
		tag:   make([]uint32, n),
		epoch: 1,
	}
}

// Advance invalidates every slot. Call once per superstep,
// single-threaded at the barrier.
func (b *Broadcasts[M]) Advance() {
	b.epoch++
	if b.epoch == 0 { // wrapped: reset tags so stale slots cannot alias
		clear(b.tag)
		b.epoch = 1
	}
}

// Set publishes m as v's broadcast for this superstep. A repeated Set
// folds into the slot via comb (or just bumps the raw count when comb
// is nil, the set-semantics case used for activation marking).
func (b *Broadcasts[M]) Set(v VertexID, m M, comb func(a, m M) M) {
	if b.tag[v] == b.epoch {
		if comb != nil {
			b.val[v] = comb(b.val[v], m)
		}
		b.cnt[v]++
		return
	}
	b.tag[v] = b.epoch
	b.val[v] = m
	b.cnt[v] = 1
}

// Has reports whether v broadcast during the current superstep.
func (b *Broadcasts[M]) Has(v VertexID) bool { return b.tag[v] == b.epoch }

// Get returns v's broadcast slot and raw call count; only valid when
// Has(v).
func (b *Broadcasts[M]) Get(v VertexID) (M, int32) { return b.val[v], b.cnt[v] }

// Gatherer is one worker's scratch for the pull-mode gather: per-source-
// worker partial accumulators that replicate the push path's fold order
// bit for bit, so even non-exact (floating-point) combiners produce
// identical results in either direction.
//
// Under push, destination v's inbox value is built as a left fold over
// outbox lanes in source-worker order 0..P-1, where each lane's entry
// is itself a left fold of that worker's sends in ascending source
// order (workers drain sorted worklists). The gather reproduces this
// exactly: scanning v's transpose span in ascending source order while
// folding into a per-source-worker partial yields the per-lane folds;
// folding the partials in worker order yields the cross-lane fold.
type Gatherer[M any] struct {
	partial []M
	seen    []bool
}

// NewGatherer builds gather scratch for engines with P source workers.
func NewGatherer[M any](workers int) *Gatherer[M] {
	return &Gatherer[M]{partial: make([]M, workers), seen: make([]bool, workers)}
}

// Gather folds the broadcast contributions of srcs — destination v's
// CSR transpose span, ascending source order — into one accumulator.
// owner maps vertices to workers; comb must be the engine's combiner.
// ok is false when no source broadcast this superstep; raw is the
// pre-combining message count the BSP Stats charge.
func (g *Gatherer[M]) Gather(bc *Broadcasts[M], owner []int32, srcs []VertexID, comb func(a, m M) M) (acc M, raw int64, ok bool) {
	partial, seen := g.partial, g.seen
	tag, epoch := bc.tag, bc.epoch
	for _, src := range srcs {
		if tag[src] != epoch {
			continue
		}
		w := owner[src]
		if seen[w] {
			partial[w] = comb(partial[w], bc.val[src])
		} else {
			seen[w] = true
			partial[w] = bc.val[src]
		}
		raw += int64(bc.cnt[src])
	}
	if raw == 0 {
		return acc, 0, false
	}
	for w := range seen {
		if !seen[w] {
			continue
		}
		if ok {
			acc = comb(acc, partial[w])
		} else {
			acc = partial[w]
			ok = true
		}
		seen[w] = false
	}
	return acc, raw, true
}
