package runtime

import (
	"context"
	"sync"

	"vcgraph/internal/bsp"
)

// JobState is a job's position in its lifecycle.
type JobState int32

const (
	// JobQueued: submitted, waiting for an admission slot.
	JobQueued JobState = iota
	// JobRunning: holds a lease and is executing.
	JobRunning
	// JobSucceeded: the run function returned nil.
	JobSucceeded
	// JobFailed: the run function returned a non-context error.
	JobFailed
	// JobCancelled: the job's context was cancelled or timed out,
	// before or during the run.
	JobCancelled
)

// String returns the lowercase wire name of the state.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobSucceeded:
		return "succeeded"
	case JobFailed:
		return "failed"
	case JobCancelled:
		return "cancelled"
	}
	return "unknown"
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s >= JobSucceeded }

// Job is the handle binding one engine run to the shared substrate: it
// owns the run's context (cancellation and deadline), its pool lease
// (granted by the scheduler at admission), a per-superstep trace the
// driver publishes into as barriers complete (so callers can stream
// progress from a live run), and the cleanups that release pinned
// resources when the job ends however it ends.
//
// A Job is created by Scheduler.Submit and safe for concurrent use.
type Job struct {
	id     int64
	name   string
	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{}

	mu       sync.Mutex
	state    JobState
	err      error
	lease    *Lease
	trace    []bsp.SuperstepStats
	cleanups []func()
}

// ID returns the scheduler-assigned job ID.
func (j *Job) ID() int64 { return j.id }

// Name returns the submit-time job name (used in error prefixes).
func (j *Job) Name() string { return j.name }

// Context returns the job's context. Engines run under it: the driver
// checks it at every superstep barrier, so Cancel (or a deadline)
// aborts the run at the next barrier without a rollback.
func (j *Job) Context() context.Context { return j.ctx }

// Cancel cancels the job with the given cause (nil = context.Canceled).
// A queued job leaves the admission queue; a running job aborts at its
// next superstep barrier. Safe to call at any time, from any goroutine.
func (j *Job) Cancel(cause error) { j.cancel(cause) }

// Done returns a channel closed when the job reaches a terminal state
// and its lease and cleanups have been released.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal and returns its error.
func (j *Job) Wait() error {
	<-j.done
	return j.Err()
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error (nil while running or after
// success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Workers returns the job's admitted worker share (0 while queued).
func (j *Job) Workers() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lease == nil {
		return 0
	}
	return j.lease.share
}

// Steps returns the number of supersteps recorded so far.
func (j *Job) Steps() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.trace)
}

// TraceSince returns a copy of the superstep records from index k on —
// the streaming read: poll with k = number of records already seen.
// Records are immutable once published (the driver never revisits a
// recorded barrier), so the shallow copy is safe to read concurrently
// with the run.
func (j *Job) TraceSince(k int) []bsp.SuperstepStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	if k < 0 {
		k = 0
	}
	if k >= len(j.trace) {
		return nil
	}
	out := make([]bsp.SuperstepStats, len(j.trace)-k)
	copy(out, j.trace[k:])
	return out
}

// OnCleanup registers fn to run when the job reaches a terminal state,
// after its lease is released (LIFO order). Use it to unpin snapshots
// or free per-job resources; cleanups run exactly once, on every exit
// path including cancellation while queued.
func (j *Job) OnCleanup(fn func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cleanups = append(j.cleanups, fn)
}

// observe is the driver's publication hook: one record per completed
// superstep barrier.
func (j *Job) observe(ss bsp.SuperstepStats) {
	j.mu.Lock()
	j.trace = append(j.trace, ss)
	j.mu.Unlock()
}

// leaseHandle returns the admitted lease (nil while queued).
func (j *Job) leaseHandle() *Lease {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lease
}

func (j *Job) setRunning(l *Lease) {
	j.mu.Lock()
	j.state = JobRunning
	j.lease = l
	j.mu.Unlock()
}

func (j *Job) finish(state JobState, err error) {
	j.mu.Lock()
	j.state = state
	j.err = err
	j.mu.Unlock()
}

func (j *Job) runCleanups() {
	j.mu.Lock()
	fns := j.cleanups
	j.cleanups = nil
	j.mu.Unlock()
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
}
