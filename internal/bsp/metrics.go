package bsp

// The paper's conclusion suggests evaluating distributed graph systems
// by "speedup and cost/computation" in addition to the time-processor
// product and BPPA. These helpers derive those metrics from a measured
// run and a sequential baseline.

// Speedup returns S/T(n): how much faster the parallel run's modeled
// time is than the sequential operation count (both in work units).
func Speedup(seqOps float64, m CostModel, st *Stats) float64 {
	t := m.Time(st)
	if t == 0 {
		return 0
	}
	return seqOps / t
}

// Efficiency returns Speedup/P: the fraction of ideal linear speedup
// achieved. An efficiency of 1 means the P processors are perfectly
// utilized relative to the sequential baseline; vertex-centric
// algorithms that "perform more work" necessarily sit below 1/overhead.
func Efficiency(seqOps float64, m CostModel, st *Stats) float64 {
	if st.Workers == 0 {
		return 0
	}
	return Speedup(seqOps, m, st) / float64(st.Workers)
}

// CostPerComputation returns P·T divided by the sequential operation
// count — the "cost/computation" overhead factor (1 = work-optimal).
func CostPerComputation(seqOps float64, m CostModel, st *Stats) float64 {
	if seqOps == 0 {
		return 0
	}
	return m.TimeProcessor(st) / seqOps
}
