package bsp

import (
	"math"
	"testing"
)

func ss(work, sent, recv []int64) SuperstepStats {
	return SuperstepStats{Work: work, Sent: sent, Recv: recv}
}

func TestSuperstepCostTakesMax(t *testing.T) {
	m := CostModel{G: 2, L: 5}
	s := ss([]int64{3, 7}, []int64{1, 2}, []int64{4, 0})
	// w = 7, h = max(2,4) = 4, g·h = 8, L = 5 -> 8.
	if got := m.SuperstepTime(s); got != 8 {
		t.Fatalf("cost = %v, want 8", got)
	}
	// Work dominates.
	s2 := ss([]int64{30}, []int64{1}, []int64{1})
	if got := m.SuperstepTime(s2); got != 30 {
		t.Fatalf("cost = %v, want 30", got)
	}
	// L floors an idle superstep.
	s3 := ss([]int64{0}, []int64{0}, []int64{0})
	if got := m.SuperstepTime(s3); got != 5 {
		t.Fatalf("cost = %v, want L=5", got)
	}
}

func TestTimeProcessorProduct(t *testing.T) {
	st := &Stats{Workers: 4, N: 10, Supersteps: []SuperstepStats{
		ss([]int64{2, 2, 2, 2}, []int64{1, 1, 1, 1}, []int64{1, 1, 1, 1}),
		ss([]int64{5, 1, 1, 1}, []int64{0, 0, 0, 0}, []int64{0, 0, 0, 0}),
	}}
	if got := DefaultModel.Time(st); got != 7 {
		t.Fatalf("T = %v, want 7", got)
	}
	if got := DefaultModel.TimeProcessor(st); got != 28 {
		t.Fatalf("PT = %v, want 28", got)
	}
}

func TestHigherGIncreasesCost(t *testing.T) {
	// The paper's footnote: for higher g the product is even higher.
	st := &Stats{Workers: 2, N: 4, Supersteps: []SuperstepStats{
		ss([]int64{1, 1}, []int64{10, 10}, []int64{10, 10}),
	}}
	low := CostModel{G: 1, L: 1}.TimeProcessor(st)
	high := CostModel{G: 4, L: 1}.TimeProcessor(st)
	if high <= low {
		t.Fatalf("g=4 product %v not above g=1 product %v", high, low)
	}
}

func TestMoreWorkDetectsGrowth(t *testing.T) {
	// Constant-factor overhead: not more work.
	small := Measurement{N: 100, PT: 500, SeqOps: 100}
	large := Measurement{N: 400, PT: 2200, SeqOps: 410}
	if MoreWork(small, large) {
		t.Fatal("constant-factor overhead misread as more work")
	}
	// An extra log-ish factor: more work.
	large2 := Measurement{N: 400, PT: 6000, SeqOps: 410}
	if !MoreWork(small, large2) {
		t.Fatal("growing overhead not detected")
	}
}

func TestMoreWorkInfinities(t *testing.T) {
	small := Measurement{N: 10, PT: 5, SeqOps: 0}
	large := Measurement{N: 40, PT: 50, SeqOps: 0}
	if MoreWork(small, large) {
		t.Fatal("both infinite ratios should not report growth")
	}
}

func TestCheckBPPAAllHold(t *testing.T) {
	small := &Stats{N: 100, MaxStatePerDeg: 1, MaxComputePerDeg: 2, MaxSentPerDeg: 1, MaxRecvPerDeg: 1,
		Supersteps: make([]SuperstepStats, 7)}
	large := &Stats{N: 1600, MaxStatePerDeg: 1.1, MaxComputePerDeg: 2.1, MaxSentPerDeg: 1, MaxRecvPerDeg: 1,
		Supersteps: make([]SuperstepStats, 11)}
	v := CheckBPPA(small, large)
	if !v.OK() {
		t.Fatalf("verdict %+v, want all-pass", v)
	}
}

func TestCheckBPPASpaceFailure(t *testing.T) {
	small := &Stats{N: 100, MaxStatePerDeg: 10, Supersteps: make([]SuperstepStats, 5)}
	large := &Stats{N: 400, MaxStatePerDeg: 40, Supersteps: make([]SuperstepStats, 6)}
	v := CheckBPPA(small, large)
	if v.P1Space {
		t.Fatal("Θ(n) state growth not flagged")
	}
	if !v.P4Supersteps {
		t.Fatal("logarithmic superstep growth wrongly flagged")
	}
}

func TestCheckBPPASuperstepFailure(t *testing.T) {
	// Θ(n) supersteps (e.g. Hash-Min on a path).
	small := &Stats{N: 128, Supersteps: make([]SuperstepStats, 128)}
	large := &Stats{N: 1024, Supersteps: make([]SuperstepStats, 1024)}
	v := CheckBPPA(small, large)
	if v.P4Supersteps {
		t.Fatal("linear superstep growth not flagged")
	}
}

func TestCheckBPPAMessageFailure(t *testing.T) {
	small := &Stats{N: 64, MaxRecvPerDeg: 3, Supersteps: make([]SuperstepStats, 4)}
	large := &Stats{N: 256, MaxRecvPerDeg: 30, Supersteps: make([]SuperstepStats, 5)}
	if v := CheckBPPA(small, large); v.P3Messages {
		t.Fatal("receive imbalance growth not flagged")
	}
}

func TestMeasurementRatio(t *testing.T) {
	m := Measurement{PT: 100, SeqOps: 25}
	if m.Ratio() != 4 {
		t.Fatalf("ratio = %v", m.Ratio())
	}
	z := Measurement{PT: 10, SeqOps: 0}
	if !math.IsInf(z.Ratio(), 1) {
		t.Fatal("zero baseline should give +Inf")
	}
}

func TestStatsH(t *testing.T) {
	s := ss([]int64{0, 0}, []int64{5, 1}, []int64{2, 9})
	if s.H() != 9 || s.W() != 0 {
		t.Fatalf("H=%d W=%d", s.H(), s.W())
	}
}
