package bsp

import "testing"

func mkStats(workers int, workPerWorker int64, supersteps int) *Stats {
	st := &Stats{Workers: workers, N: 100}
	for s := 0; s < supersteps; s++ {
		ss := SuperstepStats{Work: make([]int64, workers), Sent: make([]int64, workers), Recv: make([]int64, workers)}
		for w := 0; w < workers; w++ {
			ss.Work[w] = workPerWorker
		}
		st.Supersteps = append(st.Supersteps, ss)
	}
	return st
}

func TestSpeedupPerfectlyParallel(t *testing.T) {
	// 4 workers, 10 units each, 5 supersteps: T = 50, total work 200.
	st := mkStats(4, 10, 5)
	seqOps := 200.0
	if s := Speedup(seqOps, DefaultModel, st); s != 4 {
		t.Fatalf("speedup = %v, want 4", s)
	}
	if e := Efficiency(seqOps, DefaultModel, st); e != 1 {
		t.Fatalf("efficiency = %v, want 1", e)
	}
	if c := CostPerComputation(seqOps, DefaultModel, st); c != 1 {
		t.Fatalf("cost/computation = %v, want 1", c)
	}
}

func TestMetricsWithOverhead(t *testing.T) {
	// Parallel run does 2x the sequential work: efficiency halves.
	st := mkStats(4, 10, 5) // PT = 200
	seqOps := 100.0
	if e := Efficiency(seqOps, DefaultModel, st); e != 0.5 {
		t.Fatalf("efficiency = %v, want 0.5", e)
	}
	if c := CostPerComputation(seqOps, DefaultModel, st); c != 2 {
		t.Fatalf("cost/computation = %v, want 2", c)
	}
}

func TestMetricsDegenerate(t *testing.T) {
	empty := &Stats{Workers: 0}
	if Efficiency(10, DefaultModel, empty) != 0 {
		t.Fatal("efficiency of empty run")
	}
	if CostPerComputation(0, DefaultModel, mkStats(2, 1, 1)) != 0 {
		t.Fatal("cost with zero baseline")
	}
	if Speedup(10, DefaultModel, &Stats{Workers: 2}) != 0 {
		t.Fatal("speedup with zero time")
	}
}

func TestImbalanceHurtsSpeedup(t *testing.T) {
	// Same total work, concentrated on one worker: T doubles.
	balanced := mkStats(2, 10, 4)
	skewed := &Stats{Workers: 2, N: 100}
	for s := 0; s < 4; s++ {
		skewed.Supersteps = append(skewed.Supersteps, SuperstepStats{
			Work: []int64{20, 0}, Sent: make([]int64, 2), Recv: make([]int64, 2),
		})
	}
	seqOps := 80.0
	if sb, ss := Speedup(seqOps, DefaultModel, balanced), Speedup(seqOps, DefaultModel, skewed); ss >= sb {
		t.Fatalf("skewed speedup %v not below balanced %v", ss, sb)
	}
}
