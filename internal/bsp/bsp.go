// Package bsp implements the two complexity metrics the paper uses to
// judge vertex-centric algorithms:
//
//   - Valiant's BSP cost model: a superstep with per-processor local
//     work w_i and message counts s_i (sent), r_i (received) costs
//     max(w, g·h, L) where w = max_i w_i and h = max_i max(s_i, r_i);
//     the time-processor product is p times the summed superstep costs.
//
//   - The BPPA (balanced, practical Pregel algorithm) properties of
//     Yan et al.: per-vertex state, compute, and message volume per
//     superstep all O(d(v)), and O(log n) supersteps.
//
// The pregel engine fills a Stats value as it runs; this package turns
// it into the paper's verdicts. Because a single run can only witness
// constants, asymptotic verdicts ("performs more work", "property
// fails") are made by comparing measurements at two input sizes: see
// MoreWork and CheckBPPA.
package bsp

import (
	"errors"
	"math"
)

// ErrSuperstepCap is the shared sentinel for a run that exceeded its
// superstep / iteration / update cap without quiescing. Every engine
// re-exports it (pregel.ErrSuperstepCap, gas.ErrIterationCap, ...), so
// errors.Is(err, bsp.ErrSuperstepCap) works across engines.
var ErrSuperstepCap = errors.New("superstep cap reached")

// SuperstepStats records the per-processor load of one superstep.
// Work/Sent/Recv are filled by the engine policy while the superstep
// runs; the measured fields below are computed once by the shared
// superstep driver at the barrier, so every engine prices supersteps
// through the same code path.
type SuperstepStats struct {
	Work []int64 // local work units per processor
	Sent []int64 // messages sent per processor
	Recv []int64 // messages received per processor
	// Active counts the units computed per processor: vertices for the
	// pregel/gas engines, block members for blockcentric, updates for
	// the async engine's epochs.
	Active []int64

	// Measured accounting, populated by the driver at the barrier:
	// MaxWork is w = max_i Work[i], MaxComm is h = max_i max(Sent[i],
	// Recv[i]), and Cost is max(w, g·h, L) under the run's cost model.
	MaxWork int64
	MaxComm int64
	Cost    float64

	// Pulled marks a superstep that ran the pull-mode message path
	// (direction-optimizing execution): broadcasts were gathered over
	// transpose spans instead of materialized through the mailbox, so
	// Sent/Recv count only the boundary messages that actually crossed
	// the wire (0 for a fully-pulled superstep).
	Pulled bool

	// Frontier is the size of the active frontier ENTERING the
	// superstep — the quantity direction optimization and the adaptive
	// planner decide on (worklist pending for pregel, active vertices
	// for gas, members of awake blocks for blockcentric, worklist depth
	// for the async engine's epochs). Active, by contrast, counts what
	// was actually computed during the superstep.
	Frontier int64
}

// NewSuperstepStats returns a SuperstepStats with per-processor slices
// sized for p processors. The four slices share one allocation (they
// are fixed-length views, never appended to), keeping the per-superstep
// fixed cost at one allocation.
func NewSuperstepStats(p int) SuperstepStats {
	buf := make([]int64, 4*p)
	return SuperstepStats{
		Work:   buf[0*p : 1*p : 1*p],
		Sent:   buf[1*p : 2*p : 2*p],
		Recv:   buf[2*p : 3*p : 3*p],
		Active: buf[3*p : 4*p : 4*p],
	}
}

// ActiveVertices returns the total units computed in this superstep.
func (s SuperstepStats) ActiveVertices() int64 {
	var n int64
	for _, a := range s.Active {
		n += a
	}
	return n
}

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// W returns max_i Work[i].
func (s SuperstepStats) W() int64 { return maxOf(s.Work) }

// H returns max_i max(Sent[i], Recv[i]).
func (s SuperstepStats) H() int64 {
	hs := maxOf(s.Sent)
	if hr := maxOf(s.Recv); hr > hs {
		return hr
	}
	return hs
}

// Stats aggregates a full run of a vertex-centric algorithm.
type Stats struct {
	Workers    int
	N          int // number of vertices of the input
	Supersteps []SuperstepStats

	// Per-vertex balance evidence: running maxima over all supersteps
	// and vertices of quantity/(d(v)+1). The +1 keeps isolated vertices
	// well-defined and matches the O(d(v)) bound up to a constant.
	MaxStatePerDeg   float64
	MaxComputePerDeg float64
	MaxSentPerDeg    float64
	MaxRecvPerDeg    float64

	TotalMessages int64
	TotalWork     int64
	// InboxDeliveries counts inbox placements: messages that still
	// exist after combiner reduction and occupy an inbox slot. Without
	// a combiner every raw message is placed, so InboxDeliveries ==
	// TotalMessages; with one, each receiving vertex gets exactly one
	// placement per superstep. TotalMessages - InboxDeliveries is the
	// message volume the combiner saved (the shrinkage of the BSP
	// model's h before delivery). The counter was previously named
	// CombinedDeliveries, which misread as "number of combine calls".
	InboxDeliveries int64

	// MeasuredTime is T(n) as measured by the shared superstep driver:
	// the running sum of the per-superstep Cost fields. For a run priced
	// under DefaultModel it equals DefaultModel.Time exactly (superstep
	// costs are integers, so float64 summation is exact and
	// order-independent at these magnitudes).
	MeasuredTime float64

	// Memory observability, stamped by the shared driver from
	// runtime.ReadMemStats brackets around the run. HeapInuseDelta is
	// the change in live heap bytes (HeapInuse) — negative when a
	// collection ran mid-run — and TotalAllocDelta the cumulative bytes
	// the run allocated. Comparative evidence for the memory-lean
	// substrate (packed CSR, bit-packed state): identical runs on the
	// two representations differ only here, never in Supersteps.
	HeapInuseDelta  int64
	TotalAllocDelta uint64

	// Recovery reports the fault-tolerance cost of the run.
	Recovery Recovery
}

// MeasuredTPP returns the time-processor product P(n)·T(n) from the
// driver-measured per-superstep costs. This is the single accounting
// path cmd/table1 and cmd/ablations consume.
func (s *Stats) MeasuredTPP() float64 {
	return float64(s.Workers) * s.MeasuredTime
}

// Recovery aggregates what checkpointing and failure recovery cost a
// run: redone supersteps are real work a production cluster re-executes
// after a rollback, and their count against the checkpoint interval is
// the classic recovery-cost trade-off (frequent checkpoints cost
// snapshot time, sparse ones cost redone work).
type Recovery struct {
	// CheckpointsSaved counts snapshots written at checkpoint barriers.
	CheckpointsSaved int
	// Rollbacks counts recoveries performed, whether triggered by a
	// worker crash or by a lost (dropped) message batch.
	Rollbacks int
	// RedoneSupersteps counts supersteps re-executed after rollbacks
	// (vertex updates, for the asynchronous engine). The redone work
	// also stays in the Supersteps record, as it would on a cluster.
	RedoneSupersteps int
	// CorruptedCheckpoints counts snapshots that failed validation
	// when a recovery tried to read them; each forces a fallback to
	// the previous checkpoint generation or a fresh restart.
	CorruptedCheckpoints int
	// DeltaCheckpointsSaved counts the subset of CheckpointsSaved
	// stored as dirty-set delta frames rather than full snapshots
	// (Config.FullSnapshotEvery with a delta-capable engine).
	DeltaCheckpointsSaved int
	// InvalidatedCheckpoints counts readable frames discarded during
	// recovery because a frame they depend on — the base full snapshot
	// or an earlier delta in their chain — failed validation. They are
	// collateral damage of CorruptedCheckpoints, not corrupt themselves.
	InvalidatedCheckpoints int
	// CheckpointBytesFull / CheckpointBytesDelta split the estimated
	// resident bytes of the saved frames by kind. The estimate is
	// deterministic (element sizes times element counts, excluding
	// opaque program-private state the same way on both sides), so the
	// full/delta ratio is comparable across runs — the compaction win
	// delta checkpointing exists for.
	CheckpointBytesFull  int64
	CheckpointBytesDelta int64
	// DroppedLanes counts message batches lost in transit; each forces
	// a rollback.
	DroppedLanes int
	// DuplicatedLanes counts redelivered message batches detected via
	// their sequence numbers and discarded (or absorbed, where
	// delivery is idempotent) without affecting results.
	DuplicatedLanes int
}

// Faulted reports whether any injected fault actually fired.
func (r Recovery) Faulted() bool {
	return r.Rollbacks > 0 || r.CorruptedCheckpoints > 0 || r.DroppedLanes > 0 || r.DuplicatedLanes > 0
}

// Add accumulates another run's recovery costs, for multi-stage
// pipelines that merge per-stage stats.
func (r *Recovery) Add(o Recovery) {
	r.CheckpointsSaved += o.CheckpointsSaved
	r.Rollbacks += o.Rollbacks
	r.RedoneSupersteps += o.RedoneSupersteps
	r.CorruptedCheckpoints += o.CorruptedCheckpoints
	r.DeltaCheckpointsSaved += o.DeltaCheckpointsSaved
	r.InvalidatedCheckpoints += o.InvalidatedCheckpoints
	r.CheckpointBytesFull += o.CheckpointBytesFull
	r.CheckpointBytesDelta += o.CheckpointBytesDelta
	r.DroppedLanes += o.DroppedLanes
	r.DuplicatedLanes += o.DuplicatedLanes
}

// NumSupersteps returns the number of executed supersteps.
func (s *Stats) NumSupersteps() int { return len(s.Supersteps) }

// PulledSupersteps returns how many supersteps ran the pull-mode
// message path.
func (s *Stats) PulledSupersteps() int {
	n := 0
	for _, ss := range s.Supersteps {
		if ss.Pulled {
			n++
		}
	}
	return n
}

// CostModel holds the BSP machine parameters. The paper's analysis
// takes g = O(1); DefaultModel matches that with unit latency.
type CostModel struct {
	G float64 // bandwidth parameter: an h-relation takes g·h time
	L float64 // synchronization periodicity (minimum superstep cost)
}

// DefaultModel is the paper's g = O(1) setting.
var DefaultModel = CostModel{G: 1, L: 1}

// SuperstepTime returns max(w, g·h, L) for one superstep.
func (c CostModel) SuperstepTime(s SuperstepStats) float64 {
	t := float64(s.W())
	if gh := c.G * float64(s.H()); gh > t {
		t = gh
	}
	if c.L > t {
		t = c.L
	}
	return t
}

// Time returns T(n): the summed superstep costs of the run.
func (c CostModel) Time(st *Stats) float64 {
	var t float64
	for _, s := range st.Supersteps {
		t += c.SuperstepTime(s)
	}
	return t
}

// TimeProcessor returns the time-processor product P(n)·T(n).
func (c CostModel) TimeProcessor(st *Stats) float64 {
	return float64(st.Workers) * c.Time(st)
}

// Measurement pairs a vertex-centric run with its sequential baseline
// at one input size.
type Measurement struct {
	N       int     // input size parameter (vertices)
	M       int     // edges
	PT      float64 // time-processor product of the vertex-centric run
	SeqOps  float64 // operation count of the sequential baseline
	VCStats *Stats
}

// Ratio returns PT/SeqOps, the work overhead factor at this size.
func (m Measurement) Ratio() float64 {
	if m.SeqOps == 0 {
		return math.Inf(1)
	}
	return m.PT / m.SeqOps
}

// GrowthSlack is the multiplicative tolerance used when deciding
// whether a ratio "grows" between two input sizes. Constant-factor
// overheads fluctuate below this; genuine extra log n / δ / n factors
// exceed it comfortably once the size quadruples.
const GrowthSlack = 1.45

// MoreWork reports the paper's "More Work?" verdict: whether the
// vertex-centric work PT grows asymptotically faster than the
// sequential baseline, judged by comparing the overhead ratio at a
// small and a large input size.
func MoreWork(small, large Measurement) bool {
	rs, rl := small.Ratio(), large.Ratio()
	if math.IsInf(rs, 1) || math.IsInf(rl, 1) {
		return rl > rs
	}
	return rl > rs*GrowthSlack
}

// BPPAVerdict is the result of checking the four BPPA properties.
type BPPAVerdict struct {
	P1Space      bool // per-vertex state O(d(v))
	P2Compute    bool // per-vertex compute per superstep O(d(v))
	P3Messages   bool // per-vertex messages per superstep O(d(v))
	P4Supersteps bool // O(log n) supersteps

	// Evidence at the large size (ratios relative to d(v)+1, and the
	// superstep counts at both sizes).
	StateRatio, ComputeRatio, SentRatio, RecvRatio float64
	SuperstepsSmall, SuperstepsLarge               int
}

// OK reports whether all four properties hold.
func (v BPPAVerdict) OK() bool {
	return v.P1Space && v.P2Compute && v.P3Messages && v.P4Supersteps
}

func grows(small, large float64) bool {
	if small <= 0 {
		small = 1
	}
	return large > small*GrowthSlack
}

// CheckBPPA evaluates the four BPPA properties by comparing the
// per-vertex balance evidence of the same algorithm run at a small and
// a large input size. A property holds when its witness ratio does not
// grow with input size (up to GrowthSlack); P4 holds when the superstep
// count grows no faster than log n.
func CheckBPPA(small, large *Stats) BPPAVerdict {
	v := BPPAVerdict{
		StateRatio:      large.MaxStatePerDeg,
		ComputeRatio:    large.MaxComputePerDeg,
		SentRatio:       large.MaxSentPerDeg,
		RecvRatio:       large.MaxRecvPerDeg,
		SuperstepsSmall: small.NumSupersteps(),
		SuperstepsLarge: large.NumSupersteps(),
	}
	v.P1Space = !grows(small.MaxStatePerDeg, large.MaxStatePerDeg)
	v.P2Compute = !grows(small.MaxComputePerDeg, large.MaxComputePerDeg)
	v.P3Messages = !grows(small.MaxSentPerDeg, large.MaxSentPerDeg) &&
		!grows(small.MaxRecvPerDeg, large.MaxRecvPerDeg)

	// P4: supersteps(n) = O(log n) iff the count grows at most like
	// log n. Allowing the same multiplicative slack on the log-scaled
	// growth separates Θ(log n) cleanly from Θ(n^c) and Θ(δ).
	logRatio := math.Log2(float64(large.N)+2) / math.Log2(float64(small.N)+2)
	ss, sl := float64(v.SuperstepsSmall), float64(v.SuperstepsLarge)
	if ss < 1 {
		ss = 1
	}
	v.P4Supersteps = sl <= ss*logRatio*GrowthSlack
	return v
}
