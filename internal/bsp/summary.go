package bsp

// Job-level wire views of the instrumentation: the serving daemon
// (cmd/vcd) streams per-superstep progress and returns a run summary
// as JSON, so these mirror SuperstepStats/Stats with stable JSON field
// names and totals in place of per-processor slices. They carry no
// behavior of their own — Summarize and Record are pure projections.

// SuperstepRecord is the wire view of one superstep: per-processor
// slices collapsed to totals and maxima.
type SuperstepRecord struct {
	Step    int     `json:"step"`
	Active  int64   `json:"active"`
	Work    int64   `json:"work"`
	Sent    int64   `json:"sent"`
	MaxWork int64   `json:"max_work"` // w = max_i Work[i]
	MaxComm int64   `json:"max_comm"` // h = max_i max(Sent[i], Recv[i])
	Cost    float64 `json:"cost"`     // max(w, g·h, L)
	Pulled  bool    `json:"pulled"`
	// Frontier is the active-frontier size entering the superstep —
	// the signal the direction optimizer and the adaptive planner saw
	// when they picked this superstep's execution mode.
	Frontier int64 `json:"frontier"`
}

// Record projects one superstep's stats to its wire view. step is the
// superstep index the record describes.
func Record(step int, s SuperstepStats) SuperstepRecord {
	var work, sent int64
	for _, w := range s.Work {
		work += w
	}
	for _, m := range s.Sent {
		sent += m
	}
	return SuperstepRecord{
		Step:     step,
		Active:   s.ActiveVertices(),
		Work:     work,
		Sent:     sent,
		MaxWork:  s.MaxWork,
		MaxComm:  s.MaxComm,
		Cost:     s.Cost,
		Pulled:   s.Pulled,
		Frontier: s.Frontier,
	}
}

// Summary is the job-level wire view of a full run.
type Summary struct {
	Workers       int     `json:"workers"`
	N             int     `json:"n"`
	Supersteps    int     `json:"supersteps"`
	Pulled        int     `json:"pulled_supersteps"`
	TotalMessages int64   `json:"total_messages"`
	TotalWork     int64   `json:"total_work"`
	MeasuredTime  float64 `json:"measured_time"`
	MeasuredTPP   float64 `json:"measured_tpp"`
	HeapDelta     int64   `json:"heap_inuse_delta"`
	AllocDelta    uint64  `json:"total_alloc_delta"`
	Rollbacks     int     `json:"rollbacks,omitempty"`
	RedoneUnits   int     `json:"redone_units,omitempty"`
	// Checkpoint byte accounting, split by frame kind (delta
	// checkpointing): estimated resident bytes of full snapshots vs
	// dirty-set delta frames, plus how many of the saves were deltas.
	CheckpointBytesFull  int64 `json:"checkpoint_bytes_full,omitempty"`
	CheckpointBytesDelta int64 `json:"checkpoint_bytes_delta,omitempty"`
	DeltaCheckpoints     int   `json:"delta_checkpoints,omitempty"`
}

// Summarize projects the run's stats to the job-level wire view.
func (s *Stats) Summarize() Summary {
	return Summary{
		Workers:       s.Workers,
		N:             s.N,
		Supersteps:    s.NumSupersteps(),
		Pulled:        s.PulledSupersteps(),
		TotalMessages: s.TotalMessages,
		TotalWork:     s.TotalWork,
		MeasuredTime:  s.MeasuredTime,
		MeasuredTPP:   s.MeasuredTPP(),
		HeapDelta:     s.HeapInuseDelta,
		AllocDelta:    s.TotalAllocDelta,
		Rollbacks:     s.Recovery.Rollbacks,
		RedoneUnits:   s.Recovery.RedoneSupersteps,

		CheckpointBytesFull:  s.Recovery.CheckpointBytesFull,
		CheckpointBytesDelta: s.Recovery.CheckpointBytesDelta,
		DeltaCheckpoints:     s.Recovery.DeltaCheckpointsSaved,
	}
}
