package seq

import "vcgraph/internal/graph"

// BFS returns hop distances from src (-1 when unreachable), the BFS
// parent of each vertex (NoVertex for src/unreachable), and charges the
// visited edges and vertices to ops.
func BFS(g *graph.Graph, src VertexID, ops *Ops) (dist []int32, parent []VertexID) {
	n := g.N()
	dist = make([]int32, n)
	parent = make([]VertexID, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = graph.NoVertex
	}
	dist[src] = 0
	queue := make([]VertexID, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		ops.Inc()
		for _, e := range g.Out[u] {
			ops.Inc()
			if dist[e.Dst] == -1 {
				dist[e.Dst] = dist[u] + 1
				parent[e.Dst] = u
				queue = append(queue, e.Dst)
			}
		}
	}
	return dist, parent
}

// Components labels each vertex with the smallest vertex ID in its
// component (the paper's "color" of a component), via BFS. O(m+n).
func Components(g *graph.Graph, ops *Ops) []VertexID {
	n := g.N()
	color := make([]VertexID, n)
	for i := range color {
		color[i] = graph.NoVertex
	}
	queue := make([]VertexID, 0, n)
	for s := 0; s < n; s++ {
		if color[s] != graph.NoVertex {
			continue
		}
		c := VertexID(s) // vertices scanned in increasing order, so s is the min of its component
		color[s] = c
		queue = append(queue[:0], VertexID(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			ops.Inc()
			for _, e := range g.Out[u] {
				ops.Inc()
				if color[e.Dst] == graph.NoVertex {
					color[e.Dst] = c
					queue = append(queue, e.Dst)
				}
			}
		}
	}
	return color
}

// SpanningForest returns a BFS spanning forest as a parent array
// (NoVertex for roots). O(m+n).
func SpanningForest(g *graph.Graph, ops *Ops) []VertexID {
	n := g.N()
	parent := make([]VertexID, n)
	seen := make([]bool, n)
	for i := range parent {
		parent[i] = graph.NoVertex
	}
	queue := make([]VertexID, 0, n)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue[:0], VertexID(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			ops.Inc()
			for _, e := range g.Out[u] {
				ops.Inc()
				if !seen[e.Dst] {
					seen[e.Dst] = true
					parent[e.Dst] = u
					queue = append(queue, e.Dst)
				}
			}
		}
	}
	return parent
}

// Eccentricities returns the hop eccentricity of every vertex by
// running BFS from each vertex: the paper's O(mn) sequential diameter
// baseline. Unreachable pairs are ignored (per-component eccentricity).
func Eccentricities(g *graph.Graph, ops *Ops) []int32 {
	n := g.N()
	ecc := make([]int32, n)
	for v := 0; v < n; v++ {
		dist, _ := BFS(g, VertexID(v), ops)
		var mx int32
		for _, d := range dist {
			if d > mx {
				mx = d
			}
		}
		ecc[v] = mx
	}
	return ecc
}

// Diameter returns the exact hop diameter (max eccentricity), O(mn).
func Diameter(g *graph.Graph, ops *Ops) int32 {
	var mx int32
	for _, e := range Eccentricities(g, ops) {
		if e > mx {
			mx = e
		}
	}
	return mx
}

// APSPUnweighted returns the full hop-distance matrix via BFS from
// every source (the O(mn) baseline standing in for Chan's algorithm;
// see DESIGN.md §5). dist[u][v] == -1 when unreachable.
func APSPUnweighted(g *graph.Graph, ops *Ops) [][]int32 {
	n := g.N()
	all := make([][]int32, n)
	for v := 0; v < n; v++ {
		all[v], _ = BFS(g, VertexID(v), ops)
	}
	return all
}
