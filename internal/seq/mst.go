package seq

import (
	"container/heap"
	"math"
	"sort"

	"vcgraph/internal/graph"
)

// MSTPrim computes a minimum spanning forest with Prim's algorithm and
// a binary heap, O(m log n): the practical sequential comparator the
// paper names alongside Chazelle's algorithm (see DESIGN.md §5). It
// returns the forest edges and total weight.
func MSTPrim(g *graph.Graph, ops *Ops) ([]graph.UndirectedEdge, float64) {
	n := g.N()
	inTree := make([]bool, n)
	best := make([]float64, n)
	bestEdge := make([]graph.UndirectedEdge, n)
	for i := range best {
		best[i] = math.Inf(1)
	}
	var edges []graph.UndirectedEdge
	var total float64
	pq := &distHeap{ops: ops}
	for s := 0; s < n; s++ {
		if inTree[s] {
			continue
		}
		best[s] = 0
		pq.items = pq.items[:0]
		heap.Push(pq, distItem{v: VertexID(s), d: 0})
		for pq.Len() > 0 {
			it := heap.Pop(pq).(distItem)
			v := it.v
			if inTree[v] {
				continue
			}
			inTree[v] = true
			ops.Inc()
			if v != VertexID(s) {
				edges = append(edges, bestEdge[v])
				total += bestEdge[v].W
			}
			for _, e := range g.Out[v] {
				ops.Inc()
				if !inTree[e.Dst] && e.W < best[e.Dst] {
					best[e.Dst] = e.W
					u, w := v, e.Dst
					if u > w {
						u, w = w, u
					}
					bestEdge[e.Dst] = graph.UndirectedEdge{U: u, V: w, W: e.W}
					heap.Push(pq, distItem{v: e.Dst, d: e.W})
				}
			}
		}
	}
	sortEdges(edges)
	return edges, total
}

// MSTKruskal computes a minimum spanning forest with Kruskal's
// algorithm and union-find, O(m log m). Used to cross-check Prim.
func MSTKruskal(g *graph.Graph, ops *Ops) ([]graph.UndirectedEdge, float64) {
	all := g.UndirectedEdges()
	sort.Slice(all, func(i, j int) bool {
		ops.Inc()
		return all[i].W < all[j].W
	})
	uf := NewUnionFind(g.N())
	var edges []graph.UndirectedEdge
	var total float64
	for _, e := range all {
		ops.Inc()
		if uf.Union(e.U, e.V) {
			edges = append(edges, e)
			total += e.W
		}
	}
	sortEdges(edges)
	return edges, total
}

// MSTKruskalRadix computes a minimum spanning forest in O(m α(m,n))
// time: LSD radix sort on the IEEE bit patterns of the (non-negative)
// weights — linear, since the key width is constant — followed by
// Kruskal's union-find scan. This is the practical stand-in for the
// paper's Chazelle baseline: genuinely near-linear, unlike
// comparison-sort Kruskal or heap-based Prim (see DESIGN.md §5).
func MSTKruskalRadix(g *graph.Graph, ops *Ops) ([]graph.UndirectedEdge, float64) {
	all := g.UndirectedEdges()
	m := len(all)
	buf := make([]graph.UndirectedEdge, m)
	var count [256]int
	for shift := 0; shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, e := range all {
			ops.Inc()
			count[(keyBits(e.W)>>shift)&0xff]++
		}
		if count[0] == m {
			continue // this byte is zero in every key: pass is a no-op
		}
		total := 0
		for i := range count {
			count[i], total = total, total+count[i]
		}
		for _, e := range all {
			b := (keyBits(e.W) >> shift) & 0xff
			buf[count[b]] = e
			count[b]++
		}
		all, buf = buf, all
	}
	uf := NewUnionFind(g.N())
	var edges []graph.UndirectedEdge
	var total float64
	for _, e := range all {
		ops.Inc()
		if uf.Union(e.U, e.V) {
			edges = append(edges, e)
			total += e.W
		}
	}
	sortEdges(edges)
	return edges, total
}

// keyBits maps a non-negative float64 to a radix-sortable uint64 (the
// IEEE ordering of non-negative floats matches their bit patterns).
func keyBits(w float64) uint64 { return math.Float64bits(w) }

func sortEdges(edges []graph.UndirectedEdge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
}

// UnionFind is a disjoint-set forest with union by rank and path
// halving.
type UnionFind struct {
	parent []VertexID
	rank   []int8
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]VertexID, n), rank: make([]int8, n)}
	for i := range uf.parent {
		uf.parent[i] = VertexID(i)
	}
	return uf
}

// Find returns the representative of v's set.
func (uf *UnionFind) Find(v VertexID) VertexID {
	for uf.parent[v] != v {
		uf.parent[v] = uf.parent[uf.parent[v]]
		v = uf.parent[v]
	}
	return v
}

// Union merges the sets of a and b; it reports whether a merge
// happened (false if already joined).
func (uf *UnionFind) Union(a, b VertexID) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}
