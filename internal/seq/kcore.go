package seq

import "vcgraph/internal/graph"

// KCore computes the coreness of every vertex with the Matula–Beck
// bucket-peeling algorithm, O(m+n): repeatedly remove a vertex of
// minimum remaining degree; its coreness is the running maximum of the
// minimum degrees seen.
func KCore(g *graph.Graph, ops *Ops) []int32 {
	n := g.N()
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(VertexID(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree with positional bookkeeping so
	// degree decrements are O(1) swaps.
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		bin[d], start = start, start+bin[d]
	}
	pos := make([]int32, n)
	vert := make([]VertexID, n)
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = VertexID(v)
		bin[deg[v]]++
	}
	for d := maxDeg; d >= 1; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := make([]int32, n)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		ops.Inc()
		for _, e := range g.Out[v] {
			u := e.Dst
			ops.Inc()
			if deg[u] > deg[v] {
				// Move u to the front of its bucket, then shrink it.
				du := deg[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				deg[u]--
			}
		}
	}
	return core
}
