package seq

import "vcgraph/internal/graph"

// LexFirstMIS returns the lexicographically-first maximal independent
// set among the vertices with active[v] == true: scan IDs in increasing
// order, greedily taking every vertex none of whose smaller active
// neighbors was taken. O(m+n) over the active subgraph.
func LexFirstMIS(g *graph.Graph, active []bool, ops *Ops) []bool {
	n := g.N()
	inMIS := make([]bool, n)
	for v := 0; v < n; v++ {
		if !active[v] {
			continue
		}
		ops.Inc()
		ok := true
		for _, e := range g.Out[v] {
			ops.Inc()
			if active[e.Dst] && inMIS[e.Dst] {
				ok = false
				break
			}
		}
		inMIS[v] = ok
	}
	return inMIS
}

// ColoringMIS colors the graph by repeatedly extracting the
// lexicographically-first MIS of the remaining vertices and assigning
// it the next color: the paper's O(Km) sequential comparator (K = the
// number of MIS phases). It returns colors (0-based) and K.
func ColoringMIS(g *graph.Graph, ops *Ops) ([]int, int) {
	n := g.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	active := make([]bool, n)
	remaining := n
	for i := range active {
		active[i] = true
	}
	k := 0
	for remaining > 0 {
		mis := LexFirstMIS(g, active, ops)
		for v := 0; v < n; v++ {
			if active[v] && mis[v] {
				colors[v] = k
				active[v] = false
				remaining--
			}
		}
		k++
	}
	return colors, k
}

// IsProperColoring verifies that no edge is monochromatic and every
// vertex is colored.
func IsProperColoring(g *graph.Graph, colors []int) bool {
	for u := range g.Out {
		if colors[u] < 0 {
			return false
		}
		for _, e := range g.Out[u] {
			if e.Dst != VertexID(u) && colors[e.Dst] == colors[u] {
				return false
			}
		}
	}
	return true
}

// IsMIS verifies that mis is independent and maximal within the active
// vertex set.
func IsMIS(g *graph.Graph, active, mis []bool) bool {
	for v := range g.Out {
		if !active[v] {
			if mis[v] {
				return false
			}
			continue
		}
		if mis[v] {
			for _, e := range g.Out[v] {
				if active[e.Dst] && mis[e.Dst] && e.Dst != VertexID(v) {
					return false
				}
			}
			continue
		}
		// Not in MIS: must have a neighbor in the MIS.
		covered := false
		for _, e := range g.Out[v] {
			if active[e.Dst] && mis[e.Dst] {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}
