package seq

import (
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
)

func TestRadixKruskalMatchesComparisonKruskal(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(50, 140, seed)
		graph.RandomWeights(g, seed+31)
		var o1, o2 Ops
		e1, w1 := MSTKruskal(g, &o1)
		e2, w2 := MSTKruskalRadix(g, &o2)
		if len(e1) != len(e2) || w1 != w2 {
			return false
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRadixKruskalOpsNearLinear(t *testing.T) {
	// The radix baseline must not carry a comparison-sort log factor:
	// ops per edge stay ~constant as m grows 16x.
	mk := func(n int) float64 {
		g := graph.RandomConnected(n, 3*n, 7)
		graph.RandomWeights(g, 8)
		var ops Ops
		MSTKruskalRadix(g, &ops)
		return float64(ops.N) / float64(g.M())
	}
	small, large := mk(1000), mk(16000)
	if large > small*1.3 {
		t.Fatalf("ops/edge grew %v -> %v; radix sort should be linear", small, large)
	}
}

func TestTrianglesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(20, 60, seed)
		var ops Ops
		_, total := Triangles(g, &ops)
		// Brute force over vertex triples.
		adj := map[[2]VertexID]bool{}
		for _, e := range g.UndirectedEdges() {
			adj[[2]VertexID{e.U, e.V}] = true
		}
		has := func(a, b VertexID) bool {
			if a > b {
				a, b = b, a
			}
			return adj[[2]VertexID{a, b}]
		}
		var want int64
		n := g.N()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if !has(VertexID(a), VertexID(b)) {
					continue
				}
				for c := b + 1; c < n; c++ {
					if has(VertexID(a), VertexID(c)) && has(VertexID(b), VertexID(c)) {
						want++
					}
				}
			}
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKCoreKnownValues(t *testing.T) {
	var ops Ops
	for v, c := range KCore(graph.Complete(6), &ops) {
		if c != 5 {
			t.Fatalf("K6 coreness[%d] = %d", v, c)
		}
	}
	for v, c := range KCore(graph.Path(10), &ops) {
		if c != 1 {
			t.Fatalf("path coreness[%d] = %d", v, c)
		}
	}
	for _, c := range KCore(graph.Grid(5, 5), &ops) {
		if c != 2 {
			t.Fatalf("grid coreness %d", c)
		}
	}
	if out := KCore(graph.New(0, false), &ops); len(out) != 0 {
		t.Fatal("empty graph")
	}
}

func TestStreamingCCOrderInvariant(t *testing.T) {
	g := graph.Random(60, 90, 4)
	edges := g.UndirectedEdges()
	var o1, o2 Ops
	fwd := StreamingCC(g.N(), edges, &o1)
	rev := make([]graph.UndirectedEdge, len(edges))
	for i, e := range edges {
		rev[len(edges)-1-i] = e
	}
	bwd := StreamingCC(g.N(), rev, &o2)
	for v := range fwd {
		if fwd[v] != bwd[v] {
			t.Fatalf("stream order changed labels at %d", v)
		}
	}
}

func TestEccentricitiesMatchAPSP(t *testing.T) {
	g := graph.RandomConnected(50, 150, 9)
	var o1, o2 Ops
	ecc := Eccentricities(g, &o1)
	apsp := APSPUnweighted(g, &o2)
	for v := range ecc {
		var mx int32
		for _, d := range apsp[v] {
			if d > mx {
				mx = d
			}
		}
		if ecc[v] != mx {
			t.Fatalf("ecc[%d] = %d, apsp max %d", v, ecc[v], mx)
		}
	}
}

func TestSpanningForestIsForest(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(60, 80, seed)
		var ops Ops
		parent := SpanningForest(g, &ops)
		uf := NewUnionFind(g.N())
		for v, p := range parent {
			if p == graph.NoVertex {
				continue
			}
			if !uf.Union(VertexID(v), p) {
				return false // cycle
			}
		}
		// Forest connects exactly the components.
		comp := Components(g, &ops)
		for v := range comp {
			if uf.Find(VertexID(v)) != uf.Find(comp[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBetweennessWeightedUnitWeightsMatchUnweighted(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(40, 120, seed) // unit weights
		var o1, o2 Ops
		w := BetweennessWeighted(g, nil, &o1)
		u := Betweenness(g, nil, &o2)
		for v := range u {
			d := w[v] - u[v]
			if d > 1e-7 || d < -1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBetweennessWeightedPath(t *testing.T) {
	// On a weighted path the shortest paths are forced: same closed
	// form as unweighted, bc(i) = 2·i·(n-1-i).
	g := graph.Path(8)
	graph.RandomWeights(g, 3)
	var ops Ops
	bc := BetweennessWeighted(g, nil, &ops)
	for i := 0; i < 8; i++ {
		want := 2 * float64(i) * float64(7-i)
		if d := bc[i] - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("bc[%d] = %v, want %v", i, bc[i], want)
		}
	}
}

func TestBetweennessWeightedRespectsWeights(t *testing.T) {
	// Square with one heavy edge: traffic routes around it, giving the
	// opposite corner all the betweenness.
	g := graph.New(4, false)
	g.AddWeightedEdge(0, 1, 1)
	g.AddWeightedEdge(1, 2, 1)
	g.AddWeightedEdge(2, 3, 1)
	g.AddWeightedEdge(3, 0, 10)
	var ops Ops
	bc := BetweennessWeighted(g, nil, &ops)
	// All 0<->3 traffic goes via 1 and 2.
	if bc[1] <= 0 || bc[2] <= 0 {
		t.Fatalf("bc = %v; route around the heavy edge expected", bc)
	}
	if bc[0] != 0 || bc[3] != 0 {
		t.Fatalf("bc = %v; corners should carry nothing", bc)
	}
}

func TestOpsCountersGrowWithInput(t *testing.T) {
	// Every baseline's operation count must scale with its input: the
	// harness's verdicts depend on counters actually counting.
	small := graph.RandomConnected(100, 300, 3)
	large := graph.RandomConnected(800, 2400, 3)
	checks := []struct {
		name string
		run  func(g *graph.Graph) int64
	}{
		{"bfs", func(g *graph.Graph) int64 { var o Ops; BFS(g, 0, &o); return o.N }},
		{"components", func(g *graph.Graph) int64 { var o Ops; Components(g, &o); return o.N }},
		{"pagerank", func(g *graph.Graph) int64 { var o Ops; PageRank(g, 0.85, 10, &o); return o.N }},
		{"dijkstra", func(g *graph.Graph) int64 { var o Ops; Dijkstra(g, 0, &o); return o.N }},
		{"scc-undirected-ok", func(g *graph.Graph) int64 { var o Ops; SCC(g, &o); return o.N }},
		{"kcore", func(g *graph.Graph) int64 { var o Ops; KCore(g, &o); return o.N }},
		{"bcc", func(g *graph.Graph) int64 { var o Ops; BCC(g, &o); return o.N }},
		{"triangles", func(g *graph.Graph) int64 { var o Ops; Triangles(g, &o); return o.N }},
		{"coloring", func(g *graph.Graph) int64 { var o Ops; ColoringMIS(g, &o); return o.N }},
		{"mst-radix", func(g *graph.Graph) int64 {
			w := g.Clone()
			graph.RandomWeights(w, 5)
			var o Ops
			MSTKruskalRadix(w, &o)
			return o.N
		}},
	}
	for _, c := range checks {
		s, l := c.run(small), c.run(large)
		if s <= 0 || l <= s {
			t.Errorf("%s: ops %d -> %d do not grow", c.name, s, l)
		}
	}
}

func TestHITSPowerIterationConverges(t *testing.T) {
	// More iterations should not change the fixpoint much.
	g := graph.RandomDirected(100, 500, 7)
	var o1, o2 Ops
	h1, a1 := HITS(g, 30, &o1)
	h2, a2 := HITS(g, 60, &o2)
	for v := range h1 {
		if d := h1[v] - h2[v]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("hub[%d] not converged: %v vs %v", v, h1[v], h2[v])
		}
		if d := a1[v] - a2[v]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("auth[%d] not converged", v)
		}
	}
}

func TestPersonalizedPageRankMassConserved(t *testing.T) {
	g := graph.RandomConnected(80, 240, 4)
	var ops Ops
	ppr := PersonalizedPageRank(g, 0, 0.15, 200, &ops)
	var sum float64
	for _, p := range ppr {
		sum += p
	}
	if d := sum - 1; d > 1e-9 || d < -1e-9 {
		t.Fatalf("terminal mass %v", sum)
	}
}
