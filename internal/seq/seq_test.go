package seq

import (
	"math"
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
)

func TestBFSPath(t *testing.T) {
	g := graph.Path(6)
	var ops Ops
	dist, parent := BFS(g, 0, &ops)
	for i := 0; i < 6; i++ {
		if dist[i] != int32(i) {
			t.Fatalf("dist[%d]=%d", i, dist[i])
		}
	}
	if parent[3] != 2 || parent[0] != graph.NoVertex {
		t.Fatalf("parents: %v", parent)
	}
	if ops.N == 0 {
		t.Fatal("no ops counted")
	}
}

func TestComponentsLabels(t *testing.T) {
	g := graph.New(6, false)
	g.AddEdge(4, 5)
	g.AddEdge(1, 2)
	var ops Ops
	c := Components(g, &ops)
	want := []VertexID{0, 1, 1, 3, 4, 4}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d]=%d want %d", i, c[i], want[i])
		}
	}
}

func TestDiameterKnownShapes(t *testing.T) {
	var ops Ops
	if d := Diameter(graph.Path(10), &ops); d != 9 {
		t.Fatalf("path diameter %d", d)
	}
	if d := Diameter(graph.Cycle(10), &ops); d != 5 {
		t.Fatalf("cycle diameter %d", d)
	}
	if d := Diameter(graph.Complete(5), &ops); d != 1 {
		t.Fatalf("complete diameter %d", d)
	}
	if d := Diameter(graph.Star(9), &ops); d != 2 {
		t.Fatalf("star diameter %d", d)
	}
}

func TestSCCAgainstKosarajuStyleBruteForce(t *testing.T) {
	// Brute force: u,v in same SCC iff mutual reachability.
	reach := func(g *graph.Graph, s VertexID) []bool {
		seen := make([]bool, g.N())
		seen[s] = true
		stack := []VertexID{s}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Out[u] {
				if !seen[e.Dst] {
					seen[e.Dst] = true
					stack = append(stack, e.Dst)
				}
			}
		}
		return seen
	}
	f := func(seed int64) bool {
		g := graph.RandomDirected(25, 80, seed)
		var ops Ops
		comp := SCC(g, &ops)
		r := make([][]bool, g.N())
		for v := 0; v < g.N(); v++ {
			r[v] = reach(g, VertexID(v))
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				same := r[u][v] && r[v][u]
				if same != (comp[u] == comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBCCBruteForce(t *testing.T) {
	// Brute force: edges e, f are in the same biconnected component iff
	// e == f or they lie on a common simple cycle. Equivalent test:
	// removing any single vertex leaves e and f connected through their
	// endpoints... simplest reliable check for tiny graphs: the
	// edge-equivalence closure where two incident edges are equivalent
	// iff their far endpoints are connected in G minus the shared
	// vertex. Instead of re-deriving theory, verify BCC output on
	// handcrafted graphs with known decompositions.
	g := graph.New(7, false)
	// Blocks: triangle {0,1,2}; bridge (2,3); square {3,4,5,6}.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(3, 6)
	var ops Ops
	res := BCC(g, &ops)
	if res.NumComponents != 3 {
		t.Fatalf("components = %d, want 3", res.NumComponents)
	}
	tri := res.EdgeComp[[2]VertexID{0, 1}]
	if res.EdgeComp[[2]VertexID{1, 2}] != tri || res.EdgeComp[[2]VertexID{0, 2}] != tri {
		t.Fatal("triangle split across components")
	}
	bridge := res.EdgeComp[[2]VertexID{2, 3}]
	if bridge == tri {
		t.Fatal("bridge merged with triangle")
	}
	sq := res.EdgeComp[[2]VertexID{3, 4}]
	for _, k := range [][2]VertexID{{4, 5}, {5, 6}, {3, 6}} {
		if res.EdgeComp[k] != sq {
			t.Fatal("square split across components")
		}
	}
	// Articulation points: 2 and 3.
	for v, want := range []bool{false, false, true, true, false, false, false} {
		if res.Articulation[v] != want {
			t.Fatalf("articulation[%d] = %v, want %v", v, res.Articulation[v], want)
		}
	}
}

func TestBCCEveryEdgeLabeled(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(30, 45, seed)
		var ops Ops
		res := BCC(g, &ops)
		return len(res.EdgeComp) == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEulerTourVisitsEveryDirectedEdgeOnce(t *testing.T) {
	tr := graph.RandomTree(40, 3)
	var ops Ops
	tour := EulerTour(tr, 0, &ops)
	if len(tour) != 78 {
		t.Fatalf("tour length %d", len(tour))
	}
	seen := map[DirEdge]bool{}
	for i, e := range tour {
		if seen[e] {
			t.Fatalf("repeat edge %v", e)
		}
		seen[e] = true
		if i > 0 && tour[i-1].V != e.U {
			t.Fatalf("tour not contiguous at %d", i)
		}
	}
	if tour[0].U != 0 || tour[len(tour)-1].V != 0 {
		t.Fatal("tour does not start and end at the root")
	}
}

func TestPrePostOrderProperties(t *testing.T) {
	f := func(seed int64) bool {
		tr := graph.RandomTree(30, seed)
		var ops Ops
		pre, post := PrePostOrder(tr, 0, &ops)
		// Both are permutations of 0..n-1.
		seenPre := make([]bool, 30)
		seenPost := make([]bool, 30)
		for v := 0; v < 30; v++ {
			if pre[v] < 0 || pre[v] >= 30 || seenPre[pre[v]] {
				return false
			}
			if post[v] < 0 || post[v] >= 30 || seenPost[post[v]] {
				return false
			}
			seenPre[pre[v]] = true
			seenPost[post[v]] = true
		}
		// Root properties.
		return pre[0] == 0 && post[0] == 29
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraAgainstBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(30, 80, seed)
		graph.RandomWeights(g, seed+5)
		var o1, o2 Ops
		d1 := Dijkstra(g, 0, &o1)
		d2 := BellmanFord(g, 0, &o2)
		for v := range d1 {
			if math.IsInf(d1[v], 1) != math.IsInf(d2[v], 1) {
				return false
			}
			if !math.IsInf(d1[v], 1) && math.Abs(d1[v]-d2[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMSTAgainstBruteForce(t *testing.T) {
	// On tiny graphs, compare Kruskal weight with exhaustive spanning
	// tree enumeration via bitmask over edges.
	f := func(seed int64) bool {
		g := graph.RandomConnected(7, 10, seed)
		graph.RandomWeights(g, seed+9)
		edges := g.UndirectedEdges()
		best := math.Inf(1)
		for mask := 0; mask < 1<<len(edges); mask++ {
			if popcount(mask) != g.N()-1 {
				continue
			}
			uf := NewUnionFind(g.N())
			ok := true
			var w float64
			for i, e := range edges {
				if mask&(1<<i) == 0 {
					continue
				}
				if !uf.Union(e.U, e.V) {
					ok = false
					break
				}
				w += e.W
			}
			if ok && w < best {
				best = w
			}
		}
		var ops Ops
		_, got := MSTKruskal(g, &ops)
		return math.Abs(got-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestColoringMISProper(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(40, 100, seed)
		var ops Ops
		colors, k := ColoringMIS(g, &ops)
		return IsProperColoring(g, colors) && k >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLexFirstMISIsMIS(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(40, 90, seed)
		active := make([]bool, g.N())
		for i := range active {
			active[i] = true
		}
		var ops Ops
		mis := LexFirstMIS(g, active, &ops)
		return IsMIS(g, active, mis)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingBaselines(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(30, 70, seed)
		graph.RandomWeights(g, seed+3)
		var o1, o2 Ops
		pga, wPGA := MaxWeightMatchingPGA(g, &o1)
		greedy, wG := GreedyMaxWeightMatching(g, &o2)
		if !IsMatching(g, pga) || !IsMatching(g, greedy) {
			return false
		}
		if !IsMaximalMatching(g, greedy) {
			return false
		}
		// Both are 1/2-approximations of the same optimum: they must be
		// within a factor 2 of each other.
		return wPGA <= 2*wG+1e-9 && wG <= 2*wPGA+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyBipartiteMaximal(t *testing.T) {
	g := graph.RandomBipartite(15, 15, 60, 2)
	var ops Ops
	m := GreedyBipartiteMatching(g, 15, &ops)
	if !IsMaximalMatching(g, m) {
		t.Fatal("greedy bipartite matching not maximal")
	}
}

func TestBetweennessBruteForce(t *testing.T) {
	// Brute force via path counting per pair on small graphs.
	g := graph.RandomConnected(12, 20, 4)
	var ops Ops
	got := Betweenness(g, nil, &ops)
	n := g.N()
	want := make([]float64, n)
	var all [][]int32
	for s := 0; s < n; s++ {
		d, _ := BFS(g, VertexID(s), &ops)
		all = append(all, d)
	}
	// Count shortest paths through each vertex.
	var countPaths func(dist []int32, from VertexID, to VertexID) float64
	countPaths = func(dist []int32, from, to VertexID) float64 {
		if from == to {
			return 1
		}
		var c float64
		for _, e := range g.Out[to] {
			if dist[e.Dst] == dist[to]-1 {
				c += countPaths(dist, from, e.Dst)
			}
		}
		return c
	}
	for s := 0; s < n; s++ {
		for t2 := 0; t2 < n; t2++ {
			if s == t2 || all[s][t2] < 0 {
				continue
			}
			total := countPaths(all[s], VertexID(s), VertexID(t2))
			for v := 0; v < n; v++ {
				if v == s || v == t2 || all[s][v]+all[v][t2] != all[s][t2] {
					continue
				}
				through := countPaths(all[s], VertexID(s), VertexID(v)) * countPaths(all[v], VertexID(v), VertexID(t2))
				want[v] += through / total
			}
		}
	}
	for v := 0; v < n; v++ {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("bc[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestSimulationHandExample(t *testing.T) {
	// Query: A -> B. Data: a1->b1, a2 (no B child), b2 isolated.
	q := graph.New(2, true)
	q.Labels = []string{"A", "B"}
	q.AddEdge(0, 1)
	q.EnsureIn()
	g := graph.New(4, true)
	g.Labels = []string{"A", "B", "A", "B"}
	g.AddEdge(0, 1)
	g.EnsureIn()
	var ops Ops
	sim := GraphSimulation(g, q, &ops)
	if !sim[0][0] || sim[0][2] {
		t.Fatalf("query A: %v", sim[0])
	}
	// Plain simulation has no parent condition: both B vertices match.
	if !sim[1][1] || !sim[1][3] {
		t.Fatalf("query B: %v", sim[1])
	}
	dual := DualSimulation(g, q, &ops)
	// Dual simulation requires B matches to have an A parent.
	if !dual[1][1] || dual[1][3] {
		t.Fatalf("dual query B: %v", dual[1])
	}
	if !SimNonEmpty(dual) {
		t.Fatal("dual sim should be non-empty")
	}
}

func TestStrongSimulationLocality(t *testing.T) {
	// Strong simulation rejects matches that only exist via far-apart
	// witnesses. Query: cycle A->B->A requires a 2-cycle in data.
	q := graph.New(2, true)
	q.Labels = []string{"A", "B"}
	q.AddEdge(0, 1)
	q.AddEdge(1, 0)
	q.EnsureIn()

	g := graph.New(4, true)
	g.Labels = []string{"A", "B", "A", "B"}
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // true 2-cycle at {0,1}
	g.AddEdge(2, 3)
	g.AddEdge(3, 2) // another true 2-cycle
	g.EnsureIn()
	var ops Ops
	centers, _ := StrongSimulation(g, q, &ops)
	for v, want := range []bool{true, true, true, true} {
		if centers[v] != want {
			t.Fatalf("centers[%d] = %v, want %v", v, centers[v], want)
		}
	}

	// Break one cycle: dual sim globally still holds for 0,1 via the
	// other pair? No — dual is per-vertex; vertex 0 loses its B-parent
	// witness. Check centers shrink.
	h := graph.New(4, true)
	h.Labels = []string{"A", "B", "A", "B"}
	h.AddEdge(0, 1) // one-way only
	h.AddEdge(2, 3)
	h.AddEdge(3, 2)
	h.EnsureIn()
	var ops2 Ops
	centers2, _ := StrongSimulation(h, q, &ops2)
	if centers2[0] || centers2[1] {
		t.Fatal("broken cycle should not produce centers")
	}
	if !centers2[2] || !centers2[3] {
		t.Fatal("intact cycle lost its centers")
	}
}

func TestQueryDiameter(t *testing.T) {
	q := graph.New(3, true)
	q.AddEdge(0, 1)
	q.AddEdge(1, 2)
	if d := QueryDiameter(q); d != 2 {
		t.Fatalf("diameter %d, want 2", d)
	}
}

func TestPageRankSumsOnRegularGraph(t *testing.T) {
	g := graph.Cycle(50)
	var ops Ops
	pr := PageRank(g, 0.85, 30, &ops)
	var sum float64
	for _, r := range pr {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
	// Symmetry: all ranks equal on a cycle.
	for _, r := range pr {
		if math.Abs(r-pr[0]) > 1e-12 {
			t.Fatalf("ranks differ on a vertex-transitive graph: %v vs %v", r, pr[0])
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if !uf.Union(0, 1) || !uf.Union(3, 4) {
		t.Fatal("fresh unions failed")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeat union succeeded")
	}
	if uf.Find(0) != uf.Find(1) || uf.Find(3) != uf.Find(4) {
		t.Fatal("find inconsistent")
	}
	if uf.Find(2) == uf.Find(0) {
		t.Fatal("disjoint sets merged")
	}
}
