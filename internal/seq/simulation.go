package seq

import (
	"sort"

	"vcgraph/internal/graph"
)

// Pattern-matching baselines for Table 1 rows 18-20. Q and G are
// directed vertex-labeled graphs. Sim relations are represented as
// sim[q][u] == true meaning query node q is matched by data node u; the
// algorithms compute the *maximum* simulation relation (greatest
// fixpoint), following Henzinger et al. for graph simulation and
// Ma et al. for dual and strong simulation.

// GraphSimulation computes the maximum graph-simulation relation of Q
// in G: sim[q][u] requires label equality and, for every query edge
// (q,q'), a data edge (u,u') with sim[q'][u'].
func GraphSimulation(g, q *graph.Graph, ops *Ops) [][]bool {
	return simulate(g, q, ops, false)
}

// DualSimulation additionally requires, for every query edge (q”,q),
// a data edge (u”,u) with sim[q”][u”] (parent condition).
func DualSimulation(g, q *graph.Graph, ops *Ops) [][]bool {
	return simulate(g, q, ops, true)
}

func simulate(g, q *graph.Graph, ops *Ops, dual bool) [][]bool {
	g.EnsureIn()
	q.EnsureIn()
	nq, n := q.N(), g.N()
	sim := make([][]bool, nq)
	for qi := 0; qi < nq; qi++ {
		sim[qi] = make([]bool, n)
		for u := 0; u < n; u++ {
			ops.Inc()
			sim[qi][u] = g.Label(VertexID(u)) == q.Label(VertexID(qi))
		}
	}
	refineCounters(g, q, sim, ops, dual)
	return sim
}

// refineCounters shrinks sim in place to the greatest fixpoint with the
// counter-based refinement in the style of Henzinger et al.: cnt[q'][u]
// counts children of u in sim(q'), pcnt[q'][u] counts parents; a pair
// is removed (and propagated through a worklist) the moment a required
// counter hits zero. O((m+n)(m_q+n_q)) amortized, matching the Table 1
// baseline complexities. g.In must be built.
func refineCounters(g, q *graph.Graph, sim [][]bool, ops *Ops, dual bool) {
	nq, n := q.N(), g.N()
	cnt := make([][]int32, nq)
	pcnt := make([][]int32, nq)
	for qi := 0; qi < nq; qi++ {
		cnt[qi] = make([]int32, n)
		pcnt[qi] = make([]int32, n)
	}
	for u := 0; u < n; u++ {
		for _, e := range g.Out[u] {
			for qi := 0; qi < nq; qi++ {
				ops.Inc()
				if sim[qi][e.Dst] {
					cnt[qi][u]++
				}
				if sim[qi][u] {
					pcnt[qi][e.Dst]++
				}
			}
		}
	}
	type pair struct {
		q VertexID
		u VertexID
	}
	var queue []pair
	remove := func(qi, u VertexID) {
		if !sim[qi][u] {
			return
		}
		sim[qi][u] = false
		queue = append(queue, pair{qi, u})
	}
	// Initial violations.
	for qi := 0; qi < nq; qi++ {
		for u := 0; u < n; u++ {
			if !sim[qi][u] {
				continue
			}
			ok := true
			for _, qe := range q.Out[qi] {
				ops.Inc()
				if cnt[qe.Dst][u] == 0 {
					ok = false
					break
				}
			}
			if ok && dual {
				for _, qe := range q.In[qi] {
					ops.Inc()
					if pcnt[qe.Dst][u] == 0 {
						ok = false
						break
					}
				}
			}
			if !ok {
				remove(VertexID(qi), VertexID(u))
			}
		}
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// (p.q, p.u) left the relation: parents of p.u lose a child
		// witness for query node p.q ...
		for _, ge := range g.In[p.u] {
			u := ge.Dst
			ops.Inc()
			cnt[p.q][u]--
			if cnt[p.q][u] == 0 {
				for _, qe := range q.In[p.q] {
					ops.Inc()
					remove(qe.Dst, u)
				}
			}
		}
		// ... and, for dual simulation, children of p.u lose a parent
		// witness.
		if dual {
			for _, ge := range g.Out[p.u] {
				u := ge.Dst
				ops.Inc()
				pcnt[p.q][u]--
				if pcnt[p.q][u] == 0 {
					for _, qe := range q.Out[p.q] {
						ops.Inc()
						remove(qe.Dst, u)
					}
				}
			}
		}
	}
}

// SimNonEmpty reports whether every query node has at least one match
// (i.e., Q is simulated by G).
func SimNonEmpty(sim [][]bool) bool {
	for _, row := range sim {
		ok := false
		for _, b := range row {
			if b {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// QueryDiameter returns the diameter of the query graph treating edges
// as undirected (the ball radius of strong simulation). Disconnected
// queries get the max finite distance.
func QueryDiameter(q *graph.Graph) int32 {
	u := q.Underlying()
	var ops Ops
	return Diameter(u, &ops)
}

// StrongSimulation computes, per Ma et al., the set of data vertices w
// such that the ball of radius diameter(Q) around w (undirected
// distance) admits a maximum dual simulation of Q whose image contains
// w. It returns centers[w] plus the global dual-sim relation used for
// candidate pruning.
func StrongSimulation(g, q *graph.Graph, ops *Ops) (centers []bool, dual [][]bool) {
	g.EnsureIn()
	n := g.N()
	centers = make([]bool, n)
	dual = DualSimulation(g, q, ops)
	dq := int(QueryDiameter(q))
	// Candidates: members of the global dual-sim image (anything outside
	// it cannot be in a ball-local dual sim either).
	inImage := make([]bool, n)
	for qi := range dual {
		for u, b := range dual[qi] {
			if b {
				inImage[u] = true
			}
		}
	}
	und := g.Underlying()
	for w := 0; w < n; w++ {
		if !inImage[w] {
			continue
		}
		ball := ballVertices(und, VertexID(w), dq, ops)
		sub, idx := inducedSubgraph(g, ball)
		// Start from the globally pruned relation restricted to the ball.
		sim := make([][]bool, q.N())
		for qi := range sim {
			sim[qi] = make([]bool, len(ball))
			for i, v := range ball {
				sim[qi][i] = dual[qi][v]
			}
		}
		refineCounters(sub, q, sim, ops, true)
		wi := idx[VertexID(w)]
		for qi := range sim {
			if sim[qi][wi] {
				centers[w] = true
				break
			}
		}
	}
	return centers, dual
}

// ballVertices returns the vertices within hop distance r of w in the
// undirected graph, sorted ascending.
func ballVertices(und *graph.Graph, w VertexID, r int, ops *Ops) []VertexID {
	dist := map[VertexID]int{w: 0}
	queue := []VertexID{w}
	out := []VertexID{w}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == r {
			continue
		}
		for _, e := range und.Out[v] {
			ops.Inc()
			if _, seen := dist[e.Dst]; !seen {
				dist[e.Dst] = dist[v] + 1
				queue = append(queue, e.Dst)
				out = append(out, e.Dst)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// inducedSubgraph extracts the subgraph of g induced by vs (directed,
// labels preserved) and returns it with the old->new index map.
func inducedSubgraph(g *graph.Graph, vs []VertexID) (*graph.Graph, map[VertexID]int) {
	idx := make(map[VertexID]int, len(vs))
	for i, v := range vs {
		idx[v] = i
	}
	sub := graph.New(len(vs), true)
	if g.Labels != nil {
		sub.Labels = make([]string, len(vs))
		for i, v := range vs {
			sub.Labels[i] = g.Labels[v]
		}
	}
	sub.In = make([][]graph.Edge, len(vs))
	for i, v := range vs {
		for _, e := range g.Out[v] {
			if j, ok := idx[e.Dst]; ok {
				sub.AddLabeledEdge(VertexID(i), VertexID(j), e.W, e.L)
			}
		}
	}
	return sub, idx
}
