package seq

import (
	"math"

	"vcgraph/internal/graph"
)

// HITS runs k iterations of Kleinberg's hubs-and-authorities power
// iteration on a directed graph, L2-normalizing after every half step
// (the same schedule as the vertex-centric implementation, so the two
// are comparable element-wise). Returns unit-normalized hub and
// authority vectors.
func HITS(g *graph.Graph, k int, ops *Ops) (hub, auth []float64) {
	n := g.N()
	hub = make([]float64, n)
	auth = make([]float64, n)
	for i := range hub {
		hub[i] = 1
		auth[i] = 1
	}
	normalize := func(xs []float64) {
		var sq float64
		for _, x := range xs {
			sq += x * x
		}
		if sq == 0 {
			return
		}
		inv := 1 / sqrt(sq)
		for i := range xs {
			xs[i] *= inv
			ops.Inc()
		}
	}
	for it := 0; it < k; it++ {
		normalize(hub)
		for i := range auth {
			auth[i] = 0
		}
		for u := 0; u < n; u++ {
			for _, e := range g.Out[u] {
				ops.Inc()
				auth[e.Dst] += hub[u]
			}
		}
		normalize(auth)
		for i := range hub {
			hub[i] = 0
		}
		for u := 0; u < n; u++ {
			for _, e := range g.Out[u] {
				ops.Inc()
				hub[u] += auth[e.Dst]
			}
		}
	}
	normalize(hub)
	normalize(auth)
	return hub, auth
}

func sqrt(x float64) float64 {
	return math.Sqrt(x)
}

// PageRank runs K iterations of power iteration with teleportation
// probability (1-alpha), matching the Pregel-paper formulation: each
// iteration costs O(m). Dangling vertices (out-degree 0) leak rank to
// the teleport term, exactly as the vertex-centric version does, so the
// two are comparable element-wise.
func PageRank(g *graph.Graph, alpha float64, k int, ops *Ops) []float64 {
	n := g.N()
	if n == 0 {
		return nil
	}
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	base := (1 - alpha) / float64(n)
	for it := 0; it < k; it++ {
		for i := range next {
			next[i] = base
			ops.Inc()
		}
		for u := 0; u < n; u++ {
			out := g.Out[u]
			if len(out) == 0 {
				continue
			}
			share := alpha * pr[u] / float64(len(out))
			for _, e := range out {
				ops.Inc()
				next[e.Dst] += share
			}
		}
		pr, next = next, pr
	}
	return pr
}

// PersonalizedPageRank computes the exact terminal distribution of
// the restart random walk from src: at each step the walk ends with
// probability c (or certainly, at a dangling vertex), else moves to a
// uniform random neighbor. Computed by accumulating the occupancy
// distribution q_t over `iters` steps:
//
//	terminal(v) = Σ_t q_t(v) · c            (non-dangling)
//	terminal(v) = Σ_t q_t(v)                (dangling)
//
// This matches the Monte Carlo estimator in internal/vc exactly.
func PersonalizedPageRank(g *graph.Graph, src VertexID, c float64, iters int, ops *Ops) []float64 {
	n := g.N()
	q := make([]float64, n)
	next := make([]float64, n)
	terminal := make([]float64, n)
	q[src] = 1
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
			ops.Inc()
		}
		for u := 0; u < n; u++ {
			if q[u] == 0 {
				continue
			}
			out := g.Out[u]
			if len(out) == 0 {
				terminal[u] += q[u] // walk must end here
				continue
			}
			terminal[u] += q[u] * c
			share := (1 - c) * q[u] / float64(len(out))
			for _, e := range out {
				ops.Inc()
				next[e.Dst] += share
			}
		}
		q, next = next, q
	}
	// Whatever occupancy remains after the horizon ends in place
	// (mirrors the walk-length cap of the Monte Carlo version).
	for v := 0; v < n; v++ {
		terminal[v] += q[v]
	}
	return terminal
}
