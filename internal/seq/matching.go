package seq

import (
	"sort"

	"vcgraph/internal/graph"
)

// sortSlice adapts sort.Slice to a typed less function.
func sortSlice[T any](s []T, less func(a, b T) bool) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}

// MaxWeightMatchingPGA computes a 1/2-approximate maximum weight
// matching with the Drake–Hougardy path-growing algorithm, the
// linear-time O(m) stand-in for Preis's algorithm (same bound, same
// guarantee; see DESIGN.md §5). It returns match[v] (NoVertex when
// unmatched) and the matching weight.
func MaxWeightMatchingPGA(g *graph.Graph, ops *Ops) ([]VertexID, float64) {
	n := g.N()
	removed := make([]bool, n)
	// Two alternating matchings; keep the heavier.
	m1 := make(map[[2]VertexID]float64)
	m2 := make(map[[2]VertexID]float64)
	var w1, w2 float64

	heaviest := func(v VertexID) (VertexID, float64, bool) {
		var best VertexID = graph.NoVertex
		var bw float64
		for _, e := range g.Out[v] {
			ops.Inc()
			if removed[e.Dst] || e.Dst == v {
				continue
			}
			if best == graph.NoVertex || e.W > bw || (e.W == bw && e.Dst < best) {
				best, bw = e.Dst, e.W
			}
		}
		return best, bw, best != graph.NoVertex
	}
	for s := 0; s < n; s++ {
		if removed[s] {
			continue
		}
		v := VertexID(s)
		side := 1
		for {
			u, w, ok := heaviest(v)
			if !ok {
				removed[v] = true
				break
			}
			k := canon(v, u)
			if side == 1 {
				m1[k] = w
				w1 += w
			} else {
				m2[k] = w
				w2 += w
			}
			side = 3 - side
			removed[v] = true
			v = u
		}
	}
	chosen := m1
	total := w1
	if w2 > w1 {
		chosen = m2
		total = w2
	}
	match := make([]VertexID, n)
	for i := range match {
		match[i] = graph.NoVertex
	}
	for k := range chosen {
		match[k[0]] = k[1]
		match[k[1]] = k[0]
	}
	return match, total
}

// GreedyMaxWeightMatching computes the classic greedy 1/2-approximate
// maximum weight matching: scan edges by decreasing weight (ties by
// endpoint IDs) and add every edge whose endpoints are both free.
// O(m log m). With distinct weights this equals the matching produced
// by repeated locally-heaviest-edge selection, which is what the
// vertex-centric row 13 algorithm computes.
func GreedyMaxWeightMatching(g *graph.Graph, ops *Ops) ([]VertexID, float64) {
	edges := g.UndirectedEdges()
	sortEdgesByWeightDesc(edges, ops)
	n := g.N()
	match := make([]VertexID, n)
	for i := range match {
		match[i] = graph.NoVertex
	}
	var total float64
	for _, e := range edges {
		ops.Inc()
		if e.U != e.V && match[e.U] == graph.NoVertex && match[e.V] == graph.NoVertex {
			match[e.U] = e.V
			match[e.V] = e.U
			total += e.W
		}
	}
	return match, total
}

func sortEdgesByWeightDesc(edges []graph.UndirectedEdge, ops *Ops) {
	sortSlice(edges, func(a, b graph.UndirectedEdge) bool {
		ops.Inc()
		if a.W != b.W {
			return a.W > b.W
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
}

// GreedyBipartiteMatching computes a maximal matching of a bipartite
// graph (left side = vertices [0, nl)) by scanning left vertices in ID
// order and matching each to its first free neighbor. O(m+n).
func GreedyBipartiteMatching(g *graph.Graph, nl int, ops *Ops) []VertexID {
	n := g.N()
	match := make([]VertexID, n)
	for i := range match {
		match[i] = graph.NoVertex
	}
	for u := 0; u < nl; u++ {
		ops.Inc()
		for _, e := range g.Out[u] {
			ops.Inc()
			if match[e.Dst] == graph.NoVertex {
				match[u] = e.Dst
				match[e.Dst] = VertexID(u)
				break
			}
		}
	}
	return match
}

// MatchingWeight sums the weight of a matching given match pointers.
func MatchingWeight(g *graph.Graph, match []VertexID) float64 {
	var total float64
	for u := range match {
		v := match[u]
		if v == graph.NoVertex || VertexID(u) > v {
			continue
		}
		for _, e := range g.Out[u] {
			if e.Dst == v {
				total += e.W
				break
			}
		}
	}
	return total
}

// IsMatching verifies match pointer symmetry and edge existence.
func IsMatching(g *graph.Graph, match []VertexID) bool {
	for u := range match {
		v := match[u]
		if v == graph.NoVertex {
			continue
		}
		if match[v] != VertexID(u) {
			return false
		}
		found := false
		for _, e := range g.Out[u] {
			if e.Dst == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// IsMaximalMatching reports whether no edge has both endpoints free.
func IsMaximalMatching(g *graph.Graph, match []VertexID) bool {
	if !IsMatching(g, match) {
		return false
	}
	for u := range g.Out {
		for _, e := range g.Out[u] {
			if match[u] == graph.NoVertex && match[e.Dst] == graph.NoVertex && VertexID(u) != e.Dst {
				return false
			}
		}
	}
	return true
}
