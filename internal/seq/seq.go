// Package seq implements the best-known sequential algorithms the
// paper uses as comparators in Table 1, each instrumented with an
// operation counter so the benchmark harness can compare measured work
// growth against the vertex-centric implementations.
//
// The counting convention: one unit per elementary step (an edge scan,
// a queue/stack operation, a heap operation counted with its log
// factor folded in by the heap's own loop). The absolute constants do
// not matter — the harness compares growth across input sizes.
package seq

import "vcgraph/internal/graph"

// Ops is the operation counter threaded through every baseline.
type Ops struct{ N int64 }

// Add adds n units of work.
func (o *Ops) Add(n int64) { o.N += n }

// Inc adds one unit of work.
func (o *Ops) Inc() { o.N++ }

// VertexID aliases graph.VertexID.
type VertexID = graph.VertexID
