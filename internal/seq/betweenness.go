package seq

import (
	"cmp"
	"container/heap"
	"math"
	"slices"

	"vcgraph/internal/graph"
)

// Betweenness computes betweenness centrality contributions from the
// given source set with Brandes' algorithm on unweighted graphs:
// one BFS plus one dependency-accumulation sweep per source, O(m+n)
// each, O(mn) total for all sources. When sources is nil all vertices
// are used (exact betweenness, without endpoint counting, undirected
// convention: each pair counted from both sides; callers comparing
// implementations use the same convention on both).
func Betweenness(g *graph.Graph, sources []VertexID, ops *Ops) []float64 {
	n := g.N()
	bc := make([]float64, n)
	if sources == nil {
		sources = make([]VertexID, n)
		for i := range sources {
			sources[i] = VertexID(i)
		}
	}
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]VertexID, 0, n)
	queue := make([]VertexID, 0, n)

	for _, s := range sources {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		order = order[:0]
		queue = queue[:0]
		dist[s] = 0
		sigma[s] = 1
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			ops.Inc()
			for _, e := range g.Out[v] {
				ops.Inc()
				w := e.Dst
				if dist[w] == -1 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			ops.Inc()
			for _, e := range g.Out[w] {
				ops.Inc()
				v := e.Dst
				if dist[v] == dist[w]-1 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}

// BetweennessWeighted computes betweenness centrality on weighted
// graphs with Brandes' Dijkstra-based variant: per source, a Dijkstra
// pass builds the shortest-path DAG (σ counts with float tolerance),
// then dependencies accumulate in decreasing distance order. The
// paper's §3.8 lists weighted betweenness among the workloads whose
// efficient vertex-centric implementation is an open question; this is
// the sequential reference such an implementation would be judged
// against.
func BetweennessWeighted(g *graph.Graph, sources []VertexID, ops *Ops) []float64 {
	n := g.N()
	bc := make([]float64, n)
	if sources == nil {
		sources = make([]VertexID, n)
		for i := range sources {
			sources[i] = VertexID(i)
		}
	}
	const tol = 1e-12
	dist := make([]float64, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	done := make([]bool, n)
	for _, s := range sources {
		for i := 0; i < n; i++ {
			dist[i] = math.Inf(1)
			sigma[i] = 0
			delta[i] = 0
			done[i] = false
		}
		dist[s] = 0
		sigma[s] = 1
		pq := &distHeap{items: []distItem{{v: s, d: 0}}, ops: ops}
		var order []VertexID
		for pq.Len() > 0 {
			it := heap.Pop(pq).(distItem)
			if done[it.v] {
				continue
			}
			done[it.v] = true
			order = append(order, it.v)
			ops.Inc()
			for _, e := range g.Out[it.v] {
				ops.Inc()
				nd := dist[it.v] + e.W
				switch {
				case nd < dist[e.Dst]-tol:
					dist[e.Dst] = nd
					sigma[e.Dst] = sigma[it.v]
					heap.Push(pq, distItem{v: e.Dst, d: nd})
				case math.Abs(nd-dist[e.Dst]) <= tol:
					sigma[e.Dst] += sigma[it.v]
				}
			}
		}
		// Accumulate in reverse settle order (non-increasing distance);
		// w's predecessors v satisfy dist[v] + w(v,w) == dist[w].
		slices.SortStableFunc(order, func(a, b VertexID) int { return cmp.Compare(dist[b], dist[a]) })
		for _, w := range order {
			ops.Inc()
			for _, e := range g.Out[w] {
				ops.Inc()
				v := e.Dst
				if math.Abs(dist[v]+e.W-dist[w]) <= tol && sigma[w] > 0 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}
