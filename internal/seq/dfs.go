package seq

import (
	"fmt"

	"vcgraph/internal/graph"
)

// SCC computes strongly connected components with Tarjan's linear-time
// algorithm (iterative). It returns a component label per vertex;
// labels are normalized to the smallest vertex ID in the component.
func SCC(g *graph.Graph, ops *Ops) []VertexID {
	n := g.N()
	const unvisited = -1
	disc := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]VertexID, n)
	for i := range disc {
		disc[i] = unvisited
		comp[i] = graph.NoVertex
	}
	var stack []VertexID
	var timer int32

	type frame struct {
		v  VertexID
		ei int
	}
	var call []frame
	for s := 0; s < n; s++ {
		if disc[s] != unvisited {
			continue
		}
		call = append(call[:0], frame{v: VertexID(s)})
		disc[s] = timer
		low[s] = timer
		timer++
		stack = append(stack, VertexID(s))
		onStack[s] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.ei < len(g.Out[v]) {
				e := g.Out[v][f.ei]
				f.ei++
				ops.Inc()
				w := e.Dst
				if disc[w] == unvisited {
					disc[w] = timer
					low[w] = timer
					timer++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && disc[w] < low[v] {
					low[v] = disc[w]
				}
				continue
			}
			// v finished.
			ops.Inc()
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == disc[v] {
				// Pop the component; find min ID for normalization.
				minID := v
				end := len(stack)
				for i := end - 1; ; i-- {
					w := stack[i]
					if w < minID {
						minID = w
					}
					if w == v {
						for j := i; j < end; j++ {
							comp[stack[j]] = minID
							onStack[stack[j]] = false
						}
						stack = stack[:i]
						break
					}
				}
			}
		}
	}
	return comp
}

// BCCResult is the output of biconnected-component decomposition.
type BCCResult struct {
	// EdgeComp maps each canonical undirected edge (U<=V) to a
	// component label (arbitrary but consistent small ints).
	EdgeComp map[[2]VertexID]int
	// Articulation flags articulation vertices.
	Articulation []bool
	// NumComponents is the number of biconnected components.
	NumComponents int
}

func canon(u, v VertexID) [2]VertexID {
	if u > v {
		u, v = v, u
	}
	return [2]VertexID{u, v}
}

// BCC computes biconnected components of an undirected graph with the
// Hopcroft–Tarjan DFS algorithm (iterative, edge stack). O(m+n).
func BCC(g *graph.Graph, ops *Ops) BCCResult {
	if g.Directed {
		panic("seq: BCC on directed graph")
	}
	n := g.N()
	const unvisited = -1
	disc := make([]int32, n)
	low := make([]int32, n)
	parent := make([]VertexID, n)
	for i := range disc {
		disc[i] = unvisited
		parent[i] = graph.NoVertex
	}
	res := BCCResult{
		EdgeComp:     make(map[[2]VertexID]int),
		Articulation: make([]bool, n),
	}
	var timer int32
	var estack [][2]VertexID

	type frame struct {
		v        VertexID
		ei       int
		children int
	}
	var call []frame
	popComp := func(u, v VertexID) {
		// Pop edges up to and including (u, v) into a new component.
		id := res.NumComponents
		res.NumComponents++
		for len(estack) > 0 {
			e := estack[len(estack)-1]
			estack = estack[:len(estack)-1]
			res.EdgeComp[e] = id
			ops.Inc()
			if e == canon(u, v) {
				break
			}
		}
	}
	for s := 0; s < n; s++ {
		if disc[s] != unvisited {
			continue
		}
		call = append(call[:0], frame{v: VertexID(s)})
		disc[s] = timer
		low[s] = timer
		timer++
		rootChildren := 0
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.ei < len(g.Out[v]) {
				e := g.Out[v][f.ei]
				f.ei++
				ops.Inc()
				w := e.Dst
				if w == v {
					// Self-loop: its own biconnected component.
					k := canon(v, w)
					if _, done := res.EdgeComp[k]; !done {
						res.EdgeComp[k] = res.NumComponents
						res.NumComponents++
					}
					continue
				}
				if disc[w] == unvisited {
					parent[w] = v
					f.children++
					if len(call) == 1 {
						rootChildren++
					}
					estack = append(estack, canon(v, w))
					disc[w] = timer
					low[w] = timer
					timer++
					call = append(call, frame{v: w})
				} else if w != parent[v] && disc[w] < disc[v] {
					// Back edge.
					estack = append(estack, canon(v, w))
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
				continue
			}
			call = call[:len(call)-1]
			ops.Inc()
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] >= disc[p] {
					// p is an articulation point (unless root; handled below),
					// and the edges above (p, v) form a component.
					if parent[p] != graph.NoVertex {
						res.Articulation[p] = true
					}
					popComp(p, v)
				}
			}
		}
		res.Articulation[s] = rootChildren > 1
	}
	return res
}

// DirEdge is a directed tree edge in an Euler tour.
type DirEdge struct{ U, V VertexID }

func (e DirEdge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// EulerTour returns the Euler tour of a tree rooted at root, following
// sorted adjacency: the tour starts with (root, first(root)) and the
// successor of (u, v) is (v, next_v(u)) where next_v wraps around v's
// sorted neighbor list. The tour has 2(n-1) directed edges. O(n).
func EulerTour(t *graph.Graph, root VertexID, ops *Ops) []DirEdge {
	if !t.IsTree() {
		panic("seq: EulerTour on non-tree")
	}
	n := t.N()
	if n <= 1 {
		return nil
	}
	// next[v] maps neighbor u -> neighbor after u in v's sorted list.
	next := make([]map[VertexID]VertexID, n)
	for v := 0; v < n; v++ {
		adj := t.Out[v]
		next[v] = make(map[VertexID]VertexID, len(adj))
		for i, e := range adj {
			ops.Inc()
			next[v][e.Dst] = adj[(i+1)%len(adj)].Dst
		}
	}
	tour := make([]DirEdge, 0, 2*(n-1))
	cur := DirEdge{U: root, V: t.Out[root][0].Dst}
	for i := 0; i < 2*(n-1); i++ {
		ops.Inc()
		tour = append(tour, cur)
		cur = DirEdge{U: cur.V, V: next[cur.V][cur.U]}
	}
	return tour
}

// PrePostOrder returns DFS pre- and post-order numbers (0-based) of a
// tree rooted at root, visiting the children of a vertex reached from
// parent p in cyclic sorted-adjacency order starting at next(p) — the
// exact order the Euler tour induces (at the root, plain sorted order).
// O(n).
func PrePostOrder(t *graph.Graph, root VertexID, ops *Ops) (pre, post []int32) {
	n := t.N()
	pre = make([]int32, n)
	post = make([]int32, n)
	for i := range pre {
		pre[i] = -1
		post[i] = -1
	}
	type frame struct {
		v     VertexID
		start int // adjacency index to begin the cyclic scan at
		k     int // neighbors processed so far
	}
	var preN, postN int32
	parent := make([]VertexID, n)
	for i := range parent {
		parent[i] = graph.NoVertex
	}
	stack := []frame{{v: root}}
	pre[root] = preN
	preN++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		v := f.v
		adj := t.Out[v]
		if f.k < len(adj) {
			w := adj[(f.start+f.k)%len(adj)].Dst
			f.k++
			ops.Inc()
			if w == parent[v] {
				continue
			}
			parent[w] = v
			pre[w] = preN
			preN++
			// The child's scan starts right after its link back to v.
			wadj := t.Out[w]
			start := 0
			for i, e := range wadj {
				ops.Inc()
				if e.Dst == v {
					start = (i + 1) % len(wadj)
					break
				}
			}
			stack = append(stack, frame{v: w, start: start})
			continue
		}
		post[v] = postN
		postN++
		ops.Inc()
		stack = stack[:len(stack)-1]
	}
	return pre, post
}
