package seq

import (
	"sort"

	"vcgraph/internal/graph"
)

// Triangles counts triangles and per-vertex triangle membership with
// the standard degree-ordered intersection algorithm, O(m^{3/2}) —
// the sequential comparator for the §3.8 subgraph-centric workloads.
func Triangles(g *graph.Graph, ops *Ops) (perVertex []int64, total int64) {
	n := g.N()
	order := make([]VertexID, n)
	for i := range order {
		order[i] = VertexID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	rank := make([]int32, n)
	for i, v := range order {
		rank[v] = int32(i)
	}
	higher := make([][]VertexID, n)
	for v := 0; v < n; v++ {
		for _, e := range g.Out[v] {
			ops.Inc()
			if rank[v] < rank[e.Dst] {
				higher[v] = append(higher[v], e.Dst)
			}
		}
		sort.Slice(higher[v], func(i, j int) bool { return higher[v][i] < higher[v][j] })
	}
	perVertex = make([]int64, n)
	for u := 0; u < n; u++ {
		for _, v := range higher[u] {
			a, b := higher[u], higher[v]
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				ops.Inc()
				switch {
				case a[i] == b[j]:
					perVertex[u]++
					perVertex[v]++
					perVertex[a[i]]++
					total++
					i++
					j++
				case a[i] < b[j]:
					i++
				default:
					j++
				}
			}
		}
	}
	return perVertex, total
}

// ClusteringCoefficients derives local clustering coefficients from
// per-vertex triangle counts.
func ClusteringCoefficients(g *graph.Graph, perVertex []int64) []float64 {
	out := make([]float64, g.N())
	for v := range out {
		d := g.Degree(VertexID(v))
		if d >= 2 {
			out[v] = 2 * float64(perVertex[v]) / float64(d*(d-1))
		}
	}
	return out
}

// StreamingCC consumes an edge stream with union-find: the §3.8
// observation that the union-find connected-components algorithm is a
// poor fit for vertex-centric frameworks but ideal for edge streams.
// It returns component labels normalized to the smallest member.
func StreamingCC(n int, stream []graph.UndirectedEdge, ops *Ops) []VertexID {
	uf := NewUnionFind(n)
	for _, e := range stream {
		ops.Inc()
		uf.Union(e.U, e.V)
	}
	// Normalize: smallest vertex of each set is its label.
	label := make([]VertexID, n)
	for i := range label {
		label[i] = graph.NoVertex
	}
	for v := 0; v < n; v++ {
		ops.Inc()
		r := uf.Find(VertexID(v))
		if label[r] == graph.NoVertex {
			label[r] = VertexID(v) // v ascending: first hit is the min
		}
	}
	out := make([]VertexID, n)
	for v := 0; v < n; v++ {
		out[v] = label[uf.Find(VertexID(v))]
	}
	return out
}
