package seq

import (
	"container/heap"
	"math"

	"vcgraph/internal/graph"
)

// Dijkstra computes single-source shortest paths over non-negative
// edge weights using a binary heap: the near-linear baseline standing
// in for the paper's Fibonacci-heap variant (see DESIGN.md §5).
// Unreachable vertices get +Inf.
func Dijkstra(g *graph.Graph, src VertexID, ops *Ops) []float64 {
	n := g.N()
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{items: []distItem{{v: src, d: 0}}, ops: ops}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		ops.Inc()
		for _, e := range g.Out[it.v] {
			ops.Inc()
			if nd := it.d + e.W; nd < dist[e.Dst] {
				dist[e.Dst] = nd
				heap.Push(pq, distItem{v: e.Dst, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v VertexID
	d float64
}

type distHeap struct {
	items []distItem
	ops   *Ops
}

func (h *distHeap) Len() int { return len(h.items) }
func (h *distHeap) Less(i, j int) bool {
	h.ops.Inc() // comparisons carry the log factor of heap operations
	return h.items[i].d < h.items[j].d
}
func (h *distHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x any)    { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// BellmanFord is the O(mn) reference used to cross-check Dijkstra in
// tests (it also handles graphs Dijkstra handles; no negative cycles in
// our workloads).
func BellmanFord(g *graph.Graph, src VertexID, ops *Ops) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for i := 0; i < n; i++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, e := range g.Out[u] {
				ops.Inc()
				if nd := dist[u] + e.W; nd < dist[e.Dst] {
					dist[e.Dst] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}
