package plan_test

import (
	"fmt"
	"math"
	"testing"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/plan"
)

// TestInitialDecisionTable is the golden decision table: for every
// graph generator × algorithm the sampler and the initial planner rule
// must land on exactly this plan. The table is the paper's Table 1
// reduced to code — changing a planner rule means consciously editing
// the expectations here.
func TestInitialDecisionTable(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(256)},
		{"cycle", graph.Cycle(200)},
		{"grid", graph.Grid(16, 16)},
		{"star", graph.Star(128)},
		{"powerlaw", graph.PreferentialAttachment(400, 3, 7)},
		{"random", graph.Random(300, 900, 5)},
	}
	type key struct{ graph, algo string }
	golden := map[key]plan.Plan{
		// Chain-like regular structures (average degree ~2): block-centric
		// collapses the Θ(n) supersteps of the traversal algorithms;
		// fixed-K PageRank always runs GAS (gather-side folds).
		{"path", "pagerank"}:  {Engine: "gas", Partition: "hash", Mode: "auto"},
		{"path", "cc"}:        {Engine: "blockcentric", Partition: "range", Mode: "auto"},
		{"path", "sssp"}:      {Engine: "blockcentric", Partition: "range", Mode: "auto"},
		{"cycle", "pagerank"}: {Engine: "gas", Partition: "hash", Mode: "auto"},
		{"cycle", "cc"}:       {Engine: "blockcentric", Partition: "range", Mode: "auto"},
		{"cycle", "sssp"}:     {Engine: "blockcentric", Partition: "range", Mode: "auto"},
		// Dense regular structures (grids): regular but not chain-like,
		// so block-local fixpoints redo too much intra-block work —
		// delta-scheduled GAS wins everything here.
		{"grid", "pagerank"}: {Engine: "gas", Partition: "hash", Mode: "auto"},
		{"grid", "cc"}:       {Engine: "gas", Partition: "hash", Mode: "auto"},
		{"grid", "sssp"}:     {Engine: "gas", Partition: "hash", Mode: "auto"},
		// Heavy skew: degree-balanced partitions; CC stays GAS (labels
		// settle fast, delta scheduling skips them), SSSP goes pregel
		// with push pinned (gathers recompute weighted in-neighborhoods).
		{"star", "pagerank"}:     {Engine: "gas", Partition: "degree", Mode: "auto"},
		{"star", "cc"}:           {Engine: "gas", Partition: "degree", Mode: "auto"},
		{"star", "sssp"}:         {Engine: "pregel", Partition: "degree", Mode: "push"},
		{"powerlaw", "pagerank"}: {Engine: "gas", Partition: "degree", Mode: "auto"},
		{"powerlaw", "cc"}:       {Engine: "gas", Partition: "degree", Mode: "auto"},
		{"powerlaw", "sssp"}:     {Engine: "pregel", Partition: "degree", Mode: "push"},
		// Moderate irregularity: hash partitions.
		{"random", "pagerank"}: {Engine: "gas", Partition: "hash", Mode: "auto"},
		{"random", "cc"}:       {Engine: "gas", Partition: "hash", Mode: "auto"},
		{"random", "sssp"}:     {Engine: "pregel", Partition: "hash", Mode: "push"},
	}
	var p plan.Planner
	for _, gc := range graphs {
		csr := gc.g.Pin()
		gs := plan.Sample(csr, 4)
		for _, algo := range []string{"pagerank", "cc", "sssp"} {
			caps := plan.Caps{Algorithm: algo, HasCombiner: true, FixedK: algo == "pagerank", Workers: 4}
			d := p.Initial(gs, caps)
			want := golden[key{gc.name, algo}]
			if d.Plan != want {
				t.Errorf("%s/%s: plan %+v, want %+v (stats %+v)", gc.name, algo, d.Plan, want, gs)
			}
			if d.Reason == "" {
				t.Errorf("%s/%s: decision has no reason", gc.name, algo)
			}
			if d.Step != 0 {
				t.Errorf("%s/%s: initial decision step = %d", gc.name, algo, d.Step)
			}
		}
		gc.g.Unpin(csr)
	}
}

// TestSampleDeterministic: the same snapshot must always produce the
// same statistics (seeded generators included), so plans are
// reproducible run to run.
func TestSampleDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		a := graph.PreferentialAttachment(200, 2, seed)
		b := graph.PreferentialAttachment(200, 2, seed)
		ca, cb := a.Pin(), b.Pin()
		sa, sb := plan.Sample(ca, 4), plan.Sample(cb, 4)
		if sa != sb {
			t.Fatalf("seed %d: samples differ: %+v vs %+v", seed, sa, sb)
		}
		a.Unpin(ca)
		b.Unpin(cb)
	}
}

// TestSampleStats sanity-checks the sampled quantities on a known
// shape: a star of n leaves has max degree n, one shared block under a
// range partition holding the hub.
func TestSampleStats(t *testing.T) {
	g := graph.Star(64) // hub 0 + 63 leaves
	csr := g.Pin()
	defer g.Unpin(csr)
	gs := plan.Sample(csr, 4)
	if gs.N != 64 || gs.MaxDegree != 63 {
		t.Fatalf("n=%d maxdeg=%d, want 64/63", gs.N, gs.MaxDegree)
	}
	wantAvg := float64(2*63) / 64
	if math.Abs(gs.AvgDegree-wantAvg) > 1e-12 {
		t.Fatalf("avg degree %v, want %v", gs.AvgDegree, wantAvg)
	}
	if gs.Skew < 8 {
		t.Fatalf("star skew %v, want heavy (> 8)", gs.Skew)
	}
	if gs.LocalFrac <= 0 || gs.LocalFrac >= 1 {
		t.Fatalf("local fraction %v out of (0,1)", gs.LocalFrac)
	}
}

// TestHarvestSignals checks the barrier-signal math: growth ratio,
// pulled fraction, and the trailing narrow-step counter.
func TestHarvestSignals(t *testing.T) {
	mk := func(frontiers ...int64) []bsp.SuperstepStats {
		out := make([]bsp.SuperstepStats, len(frontiers))
		for i, f := range frontiers {
			out[i].Frontier = f
			out[i].Cost = 2
			out[i].Pulled = i%2 == 0
		}
		return out
	}
	sig := plan.Harvest(mk(100, 50, 4, 2, 1, 1), 1000, 4, 0.02)
	if sig.Frontier != 1 {
		t.Fatalf("frontier %d, want 1", sig.Frontier)
	}
	if sig.Growth != 1 {
		t.Fatalf("growth %v, want 1", sig.Growth)
	}
	// narrow threshold = 20: trailing 4,2,1,1 are all narrow, 50 is not.
	if sig.NarrowSteps != 4 {
		t.Fatalf("narrow steps %d, want 4", sig.NarrowSteps)
	}
	if sig.CostPerStep != 2 {
		t.Fatalf("cost/step %v, want 2", sig.CostPerStep)
	}
	if sig.PulledFrac != 0.5 {
		t.Fatalf("pulled frac %v, want 0.5", sig.PulledFrac)
	}
	if empty := plan.Harvest(nil, 100, 4, 0); empty.Growth != 1 || empty.Frontier != 0 {
		t.Fatalf("empty harvest = %+v", empty)
	}
}

// TestReplanRules pins the replanning rule set: one-way handoff to
// block-centric on a sustained narrow frontier, gated by the switch
// budget and the FixedK capability.
func TestReplanRules(t *testing.T) {
	var p plan.Planner
	gs := plan.GraphStats{N: 1000, AvgDegree: 2, Skew: 3}
	caps := plan.Caps{Algorithm: "sssp", HasCombiner: true, Workers: 4}
	cur := plan.Plan{Engine: "pregel", Partition: "hash", Mode: "push"}
	narrow := plan.Signals{Frontier: 3, NarrowSteps: p.ReplanEvery()}

	d, ok := p.Replan(cur, gs, caps, narrow, 16, 0)
	if !ok || d.Plan.Engine != "blockcentric" || d.Plan.Partition != "range" {
		t.Fatalf("narrow frontier must switch to blockcentric/range, got %+v (ok=%v)", d.Plan, ok)
	}
	if d.Step != 16 || d.Reason == "" {
		t.Fatalf("decision step/reason not set: %+v", d)
	}
	if _, ok := p.Replan(cur, gs, caps, plan.Signals{Frontier: 900}, 16, 0); ok {
		t.Fatal("wide frontier must not switch")
	}
	dense := gs
	dense.AvgDegree = 4
	if _, ok := p.Replan(cur, dense, caps, narrow, 16, 0); ok {
		t.Fatal("dense graphs must not switch: a narrow wavefront is not a chain tail")
	}
	if _, ok := p.Replan(cur, gs, caps, narrow, 16, p.SwitchBudget()); ok {
		t.Fatal("switch budget must gate replanning")
	}
	fixed := caps
	fixed.FixedK = true
	if _, ok := p.Replan(cur, gs, fixed, narrow, 16, 0); ok {
		t.Fatal("fixed-K runs must not switch")
	}
	bc := plan.Plan{Engine: "blockcentric", Partition: "range", Mode: "auto"}
	if _, ok := p.Replan(bc, gs, caps, narrow, 16, 0); ok {
		t.Fatal("blockcentric must never switch back (one-way rule)")
	}
}

// TestPlanOwner checks that each partition spelling materializes a
// snapshot-sized owner array with the right worker range.
func TestPlanOwner(t *testing.T) {
	g := graph.Random(100, 300, 2)
	csr := g.Pin()
	defer g.Unpin(csr)
	for _, part := range []string{plan.PartitionHash, plan.PartitionRange, plan.PartitionDegree} {
		p := plan.Plan{Partition: part}
		owner := p.Owner(csr, 4)
		if len(owner) != 100 {
			t.Fatalf("%s: owner length %d", part, len(owner))
		}
		seen := map[int32]bool{}
		for v, w := range owner {
			if w < 0 || w >= 4 {
				t.Fatalf("%s: owner[%d] = %d out of range", part, v, w)
			}
			seen[w] = true
		}
		if len(seen) != 4 {
			t.Fatalf("%s: only %d of 4 workers used", part, len(seen))
		}
	}
}

// TestPlanJSONSpellings: a Plan marshals with the wire spellings the
// serving layer exposes in job status.
func TestPlanJSONSpellings(t *testing.T) {
	p := plan.Plan{Engine: "pregel", Partition: "degree", Mode: "push", FCS: 64}
	got := fmt.Sprintf("%+v", p)
	if got == "" {
		t.Fatal("unreachable")
	}
	if p.DirectionMode().String() != "push" {
		t.Fatalf("direction mode %v", p.DirectionMode())
	}
}
