// Package plan implements the adaptive plan layer: a planner that
// samples cheap graph statistics at prepare time and runtime signals at
// superstep barriers, and emits an execution Plan — which engine to
// run, how to partition, which message direction to use, and whether to
// finish serially. The paper's thesis is that no single vertex-centric
// configuration wins everywhere ("the good, the bad, and the ugly");
// this package encodes the paper's findings as decision rules so a job
// submitted with engine "auto" lands on a sensible configuration
// without the user reading Table 1, and can be re-planned mid-run with
// a live engine handoff at a superstep barrier (see internal/vc's auto
// runner and runtime.DriverConfig.Replan).
//
// The package is deliberately small and engine-agnostic: it imports
// only the graph snapshot, the instrumentation record, and the shared
// runtime's partitioners. The orchestration — exporting vertex state,
// tearing an engine down, resuming under another — lives with the
// algorithms in internal/vc.
package plan

import (
	"fmt"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// Engine names a Plan can select. These mirror the serving layer's
// engine registry spellings.
const (
	EnginePregel       = "pregel"
	EngineGAS          = "gas"
	EngineAsync        = "async"
	EngineBlockcentric = "blockcentric"
)

// Partition strategies a Plan can select.
const (
	PartitionHash   = "hash"
	PartitionRange  = "range"
	PartitionDegree = "degree"
)

// Plan is one execution configuration: the planner's output and the
// auto runner's input. All fields use their CLI/wire spellings so a
// Plan marshals into job status JSON as-is.
type Plan struct {
	Engine    string `json:"engine"`
	Partition string `json:"partition"`
	// Mode is the direction-optimization mode ("auto", "push", "pull").
	Mode string `json:"mode"`
	// FCS, when positive, finishes computations serially below this
	// active-vertex threshold (engines that support it).
	FCS int `json:"fcs,omitempty"`
}

// DirectionMode resolves the Mode spelling to the runtime enum.
func (p Plan) DirectionMode() rt.DirectionMode {
	m, _ := rt.ParseDirectionMode(p.Mode)
	return m
}

// Owner materializes the plan's partition as a vertex->worker
// assignment against a pinned snapshot. Deriving owners from the
// snapshot (never the live graph) is what makes mid-run re-preparation
// safe while writers grow the graph.
func (p Plan) Owner(csr *graph.CSR, workers int) []int32 {
	switch p.Partition {
	case PartitionRange:
		return rt.PartitionRangeN(csr.N(), workers)
	case PartitionDegree:
		return rt.PartitionDegreeBalancedCSR(csr, workers)
	default:
		return rt.PartitionHashN(csr.N(), workers)
	}
}

// GraphStats are the prepare-time statistics Sample collects: one O(n)
// degree scan plus one O(m) locality scan over the pinned snapshot.
// Sampling is deterministic — the same snapshot always yields the same
// statistics, so planned runs are reproducible.
type GraphStats struct {
	N         int     `json:"n"`
	M         int     `json:"m"`
	AvgDegree float64 `json:"avg_degree"`
	MaxDegree int     `json:"max_degree"`
	// Skew is MaxDegree/AvgDegree — >> 1 marks power-law-like graphs
	// where degree-balanced partitioning pays and block-locality does
	// not; ~1 marks regular structures (grids, paths) where
	// block-centric execution collapses the superstep count.
	Skew float64 `json:"skew"`
	// LocalFrac is the fraction of edges that stay inside one block
	// under a range partition into the sampled worker count — the same
	// signal the block-centric engine's per-block auto direction choice
	// uses (runtime.BlockLocalFractions).
	LocalFrac float64 `json:"local_frac"`
}

// Sample computes GraphStats from a pinned snapshot, evaluating
// block locality for a range partition into `workers` blocks.
func Sample(csr *graph.CSR, workers int) GraphStats {
	n, m := csr.N(), csr.M()
	gs := GraphStats{N: n, M: m}
	if n == 0 {
		return gs
	}
	// Degree statistics count adjacency arcs (an undirected edge is two
	// arcs), matching OutDegree, so Skew is scale-consistent.
	var arcs int64
	for v := 0; v < n; v++ {
		d := csr.OutDegree(graph.VertexID(v))
		arcs += int64(d)
		if d > gs.MaxDegree {
			gs.MaxDegree = d
		}
	}
	gs.AvgDegree = float64(arcs) / float64(n)
	if gs.AvgDegree > 0 {
		gs.Skew = float64(gs.MaxDegree) / gs.AvgDegree
	}
	if workers <= 0 {
		workers = 1
	}
	owner := rt.PartitionRangeN(n, workers)
	var local, total int64
	for v := 0; v < n; v++ {
		b := owner[v]
		for _, u := range csr.Out(graph.VertexID(v)) {
			total++
			if owner[u] == b {
				local++
			}
		}
	}
	if total > 0 {
		gs.LocalFrac = float64(local) / float64(total)
	}
	return gs
}

// Caps describes what the submitted algorithm supports — the
// capability half of the prepare-time inputs.
type Caps struct {
	// Algorithm is the wire spelling: "pagerank", "cc", or "sssp".
	Algorithm string `json:"algorithm"`
	// HasCombiner reports an associative+commutative message fold,
	// the precondition for the pull path.
	HasCombiner bool `json:"has_combiner"`
	// FixedK marks a bounded all-active run (fixed-K power iteration):
	// every superstep costs the same, so mid-run switching cannot pay
	// for itself and the planner only decides once.
	FixedK bool `json:"fixed_k"`
	// Workers is the job's worker share. The async engine is
	// sequential, so plans may select it only when Workers == 1.
	Workers int `json:"workers"`
}

// Signals are the runtime statistics harvested from the superstep
// record at a barrier — the replanning half of the planner's inputs.
type Signals struct {
	// Frontier is the active frontier entering the latest superstep.
	Frontier int64 `json:"frontier"`
	// Growth is the frontier ratio between the two latest supersteps
	// (1 when there is no history).
	Growth float64 `json:"growth"`
	// PulledFrac is the fraction of window supersteps that ran pulled.
	PulledFrac float64 `json:"pulled_frac"`
	// CostPerStep is the mean measured cost-model time per superstep
	// over the window (bsp.SuperstepStats.Cost).
	CostPerStep float64 `json:"cost_per_step"`
	// NarrowSteps counts the consecutive trailing supersteps whose
	// frontier stayed below narrowFrac·n — the signature of long-tail
	// propagation that block-centric execution collapses.
	NarrowSteps int `json:"narrow_steps"`
}

// Harvest computes Signals from the trailing `window` entries of a
// superstep record. narrowFrac is the narrow-frontier threshold as a
// fraction of n (<= 0 means DefaultNarrowFrac).
func Harvest(steps []bsp.SuperstepStats, n, window int, narrowFrac float64) Signals {
	var sig Signals
	sig.Growth = 1
	if len(steps) == 0 {
		return sig
	}
	if narrowFrac <= 0 {
		narrowFrac = DefaultNarrowFrac
	}
	if window <= 0 || window > len(steps) {
		window = len(steps)
	}
	last := steps[len(steps)-1]
	sig.Frontier = last.Frontier
	if len(steps) >= 2 {
		if prev := steps[len(steps)-2].Frontier; prev > 0 {
			sig.Growth = float64(last.Frontier) / float64(prev)
		}
	}
	var pulled int
	var cost float64
	for _, ss := range steps[len(steps)-window:] {
		if ss.Pulled {
			pulled++
		}
		cost += ss.Cost
	}
	sig.PulledFrac = float64(pulled) / float64(window)
	sig.CostPerStep = cost / float64(window)
	narrow := narrowFrac * float64(n)
	for i := len(steps) - 1; i >= 0; i-- {
		if float64(steps[i].Frontier) >= narrow {
			break
		}
		sig.NarrowSteps++
	}
	return sig
}

// Decision is one planner verdict: the plan, the superstep it takes
// effect at (0 for the initial decision), and a human-readable reason —
// the trace the serving layer reports in job status and the CLIs print.
type Decision struct {
	Step   int    `json:"step"`
	Plan   Plan   `json:"plan"`
	Reason string `json:"reason"`
}

// Planner holds the replanning knobs. The zero value is usable: every
// field has a default.
type Planner struct {
	// Every is the replan cadence: the Replan hook consults the planner
	// every Every barriers (default DefaultEvery).
	Every int
	// MaxSwitches caps live handoffs per job (default
	// DefaultMaxSwitches) — with monotone algorithms and a one-way
	// pregel/gas -> blockcentric rule this is belt-and-braces, but it
	// makes non-termination structurally impossible.
	MaxSwitches int
	// NarrowFrac is the frontier fraction of n below which a superstep
	// counts as narrow (default DefaultNarrowFrac).
	NarrowFrac float64
}

// Planner defaults.
const (
	DefaultEvery       = 8
	DefaultMaxSwitches = 2
	DefaultNarrowFrac  = 0.02
	// DefaultFCS is the finish-computations-serially threshold planned
	// for pregel Hash-Min (Salihoglu & Widom's FCS pays once the active
	// frontier is tiny; 64 keeps the serial tail bounded).
	DefaultFCS = 64
)

// ReplanEvery returns the effective replan cadence.
func (p *Planner) ReplanEvery() int {
	if p == nil || p.Every <= 0 {
		return DefaultEvery
	}
	return p.Every
}

// SwitchBudget returns the effective handoff cap.
func (p *Planner) SwitchBudget() int {
	if p == nil || p.MaxSwitches <= 0 {
		return DefaultMaxSwitches
	}
	return p.MaxSwitches
}

func (p *Planner) narrowFrac() float64 {
	if p == nil || p.NarrowFrac <= 0 {
		return DefaultNarrowFrac
	}
	return p.NarrowFrac
}

// HarvestWindow is the replan cadence doubling as the signal window.
func (p *Planner) HarvestWindow(steps []bsp.SuperstepStats, n int) Signals {
	return Harvest(steps, n, p.ReplanEvery(), p.narrowFrac())
}

// Thresholds for the initial decision, calibrated against the planner
// ablation (P·T on opposing workloads): above heavySkew the graph is
// power-law-like and degree-balanced partitioning pays; below
// regularSkew it is structurally regular.
const (
	regularSkew = 1.5
	heavySkew   = 8
	// chainDegree separates chain/tree-like regular graphs (average
	// degree ~2, diameter ~n) from denser regular structures like
	// grids. Only the former repay block-centric execution: running
	// each block to a local fixpoint collapses a Θ(n)-superstep run to
	// Θ(blocks) barriers at modest extra local work. On denser regular
	// graphs the same local relaxation redoes enough intra-block work
	// to lose to delta-scheduled GAS.
	chainDegree = 2.5
)

// chainLike reports whether the graph is a long thin structure —
// regular degrees around 2 — where superstep count, not per-step work,
// dominates the cost.
func chainLike(gs GraphStats) bool {
	return gs.Skew < regularSkew && gs.AvgDegree <= chainDegree
}

// Initial picks the starting plan from prepare-time statistics alone —
// the paper's Table-1-as-code. The decision is deterministic in
// (GraphStats, Caps).
func (p *Planner) Initial(gs GraphStats, caps Caps) Decision {
	pl := Plan{Engine: EnginePregel, Partition: PartitionHash, Mode: "auto"}
	var reason string
	switch caps.Algorithm {
	case "pagerank":
		// All-active every superstep: gather-side folding does the
		// combiner's work without materializing messages, so GAS wins
		// the dense fixed-K iteration on every structure. The remaining
		// choice is partition balance: power-law graphs (high skew)
		// need degree balancing; everything else hashes.
		pl.Engine = EngineGAS
		if gs.Skew > heavySkew {
			pl.Partition = PartitionDegree
			reason = fmt.Sprintf("all-active fixed-K ranking on a skewed graph (skew %.1f > %g): GAS gather-side folds with degree-balanced partition", gs.Skew, float64(heavySkew))
		} else {
			reason = fmt.Sprintf("all-active fixed-K ranking (skew %.1f): GAS gather-side folds with hash partition", gs.Skew)
		}
	case "cc":
		switch {
		case chainLike(gs):
			pl = Plan{Engine: EngineBlockcentric, Partition: PartitionRange, Mode: "auto"}
			reason = fmt.Sprintf("chain-like structure (skew %.1f < %g, avg degree %.1f <= %g): block-centric label propagation collapses the superstep count", gs.Skew, regularSkew, gs.AvgDegree, chainDegree)
		case gs.Skew > heavySkew:
			pl = Plan{Engine: EngineGAS, Partition: PartitionDegree, Mode: "auto"}
			reason = fmt.Sprintf("skewed structure (skew %.1f > %g): delta-scheduled GAS Hash-Min with degree-balanced partition", gs.Skew, float64(heavySkew))
		default:
			pl = Plan{Engine: EngineGAS, Partition: PartitionHash, Mode: "auto"}
			reason = fmt.Sprintf("short-diameter structure (skew %.1f): delta-scheduled GAS Hash-Min stops touching settled labels", gs.Skew)
		}
	case "sssp":
		switch {
		case chainLike(gs):
			pl = Plan{Engine: EngineBlockcentric, Partition: PartitionRange, Mode: "auto"}
			reason = fmt.Sprintf("chain-like structure (skew %.1f < %g, avg degree %.1f <= %g): block-centric relaxation reaches block-local fixpoints per superstep", gs.Skew, regularSkew, gs.AvgDegree, chainDegree)
		case gs.Skew < regularSkew:
			pl = Plan{Engine: EngineGAS, Partition: PartitionHash, Mode: "auto"}
			reason = fmt.Sprintf("dense regular structure (skew %.1f < %g, avg degree %.1f): GAS wavefront relaxation, gather folds per woken vertex", gs.Skew, regularSkew, gs.AvgDegree)
		default:
			// Narrow frontiers dominate skewed shortest paths, and the
			// gather side would recompute whole weighted in-neighborhoods
			// per woken vertex; the pull path never pays, so pin push.
			pl.Mode = "push"
			if gs.Skew > heavySkew {
				pl.Partition = PartitionDegree
			}
			reason = fmt.Sprintf("irregular structure (skew %.1f): pregel frontier relaxation with %s partition, push pinned", gs.Skew, pl.Partition)
		}
	default:
		reason = fmt.Sprintf("no rules for algorithm %q: pregel defaults", caps.Algorithm)
	}
	return Decision{Step: 0, Plan: pl, Reason: reason}
}

// Replan re-evaluates a running job at a superstep barrier. step is
// the global superstep index, switches the number of handoffs already
// performed. It returns the new decision and true when a live handoff
// is warranted; the caller guarantees step > 0 (a finished or unstarted
// run never switches). The rule set is deliberately one-way —
// vertex-centric engines hand off to block-centric when the frontier
// stays narrow, never back — so replanning cannot oscillate.
func (p *Planner) Replan(cur Plan, gs GraphStats, caps Caps, sig Signals, step, switches int) (Decision, bool) {
	if switches >= p.SwitchBudget() {
		return Decision{}, false
	}
	if caps.FixedK {
		// Bounded all-active run: every remaining superstep costs the
		// same regardless of engine, so a switch cannot pay for itself.
		return Decision{}, false
	}
	if cur.Engine != EnginePregel && cur.Engine != EngineGAS {
		return Decision{}, false
	}
	if gs.AvgDegree > chainDegree {
		// Dense graphs: a narrow frontier is just a wavefront that will
		// widen again (or a short tail); block-centric whole-block
		// relaxation would redo more intra-block work than the saved
		// barriers are worth. Only long thin structures switch.
		return Decision{}, false
	}
	// Sustained narrow frontier on a chain-like structure: the run is in
	// long-tail propagation (Θ(diameter) supersteps touching few
	// vertices each). Block-centric execution runs each block to a local
	// fixpoint per superstep, collapsing the tail to Θ(blocks) barriers.
	if sig.Frontier > 0 && sig.NarrowSteps >= p.ReplanEvery() {
		np := Plan{Engine: EngineBlockcentric, Partition: PartitionRange, Mode: "auto"}
		return Decision{
			Step: step,
			Plan: np,
			Reason: fmt.Sprintf("frontier narrow for %d straight supersteps (%d of %d vertices): handing off %s -> blockcentric at barrier %d",
				sig.NarrowSteps, sig.Frontier, gs.N, cur.Engine, step),
		}, true
	}
	return Decision{}, false
}
