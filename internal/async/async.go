// Package async implements an asynchronous vertex-centric execution
// model in the style of GraphLab, the second family of systems the
// paper's §1 surveys ("asynchronous (GraphLab), asynchronous parallel
// (GRACE), barrierless asynchronous parallel (Giraph Unchained)").
// There are no supersteps: a scheduler drains a worklist of active
// vertices; an update function reads the *current* values of the
// vertex's neighbors, writes the vertex's own value, and activates
// neighbors whose recomputation it may have invalidated. Updates apply
// immediately, so information propagates as fast as the schedule
// allows instead of one hop per global barrier — the model's selling
// point, measurable against the BSP engines on identical problems.
//
// The scheduler here is sequential-consistency-by-construction: one
// update at a time in deterministic FIFO order. That keeps results
// reproducible (GraphLab's strongest consistency model) while the
// update counts still expose the async-vs-BSP difference.
package async

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// VertexID aliases graph.VertexID.
type VertexID = graph.VertexID

// Program is an asynchronous vertex program.
type Program[V any] interface {
	// Init seeds values; every vertex is initially scheduled.
	Init(g *graph.Graph, id VertexID) V
	// Update recomputes v from the current values of its neighbors and
	// returns the neighbors to (re)activate. ctx exposes reads of any
	// vertex's current value.
	Update(ctx *Context[V], v VertexID) []VertexID
}

// Config controls a run.
type Config struct {
	// MaxUpdates caps the total number of vertex updates
	// (default 200·(n+64)).
	MaxUpdates int
	// Prioritized switches the scheduler from FIFO to a max-priority
	// queue ordered by the program's Priority hook (GraphLab's
	// residual scheduling). Programs that do not implement
	// Prioritizer fall back to FIFO. Incompatible with Faults: the
	// heap order is not part of any snapshot, so a rollback could not
	// reproduce the schedule.
	Prioritized bool
	// CheckpointEvery, when positive, snapshots the computation state
	// (values, worklist, update count) every k updates — the
	// asynchronous analogue of a superstep-interval checkpoint. It
	// also sets the epoch length at which faults are detected.
	CheckpointEvery int
	// FullSnapshotEvery, when > 1, stores only every Nth checkpoint as
	// a full snapshot; the generations between are dirty-set deltas
	// covering just the vertices updated since the previous frame
	// (runtime.DeltaPolicy). 0 or 1 keeps every checkpoint full.
	FullSnapshotEvery int
	// Snapshot, when non-nil, is an already-pinned CSR generation the
	// engine must run against instead of pinning the graph's current
	// one (the adaptive plan layer re-prepares engines mid-job; see
	// graph.PinSnapshot).
	Snapshot *graph.CSR
	// Replan, when non-nil, is consulted at every epoch boundary;
	// returning true aborts the run with runtime.ErrHandoff and the
	// values at the boundary (see runtime.DriverConfig.Replan). Ignored
	// by the prioritized scheduler, which bypasses the driver.
	Replan func(step, pending int) bool
	// Faults, when non-nil, schedules deterministic fault injection
	// (runtime.FaultPlan) at epoch boundaries: a crash or a lost
	// activation batch rolls the run back to its newest readable
	// snapshot (or a fresh restart); a duplicated batch is absorbed
	// because the FIFO worklist deduplicates scheduled vertices.
	// FaultEvent.Step counts epochs, not individual updates.
	Faults *rt.FaultPlan
	// Ctx, when non-nil, aborts the run at the next epoch boundary (or
	// between prioritized updates) once cancelled or past its deadline.
	Ctx context.Context
	// Pool, when non-nil, is a shared worker pool to lease the engine's
	// single worker from instead of building a private pool.
	Pool *rt.Pool
	// Job, when non-nil, binds the run to a scheduler-admitted job. The
	// engine is sequential, so the job must be submitted with a worker
	// share of 1.
	Job *rt.Job
	// PackedState selects the bit-packed label-store variant for the
	// algorithms that have one (ConnectedComponents). Results and
	// update counts are byte-identical to the dense programs.
	PackedState bool
}

// ErrFaultsNeedFIFO rejects fault injection under the prioritized
// scheduler, whose heap order a snapshot cannot reproduce.
var ErrFaultsNeedFIFO = errors.New("async: fault injection requires the FIFO scheduler")

// defaultEpoch is the fault-detection epoch length (in updates) used
// when CheckpointEvery is unset.
const defaultEpoch = 64

// Prioritizer is the optional program extension priority scheduling
// requires: Priority returns the urgency of updating v given the
// current state (e.g. the PageRank residual). Larger runs first.
type Prioritizer[V any] interface {
	Priority(ctx *Context[V], v VertexID) float64
}

// ErrUpdateCap reports a run exceeding Config.MaxUpdates. It aliases
// bsp.ErrSuperstepCap, the sentinel shared by every engine, so
// errors.Is works across engines.
var ErrUpdateCap = bsp.ErrSuperstepCap

// Result of an asynchronous run.
type Result[V any] struct {
	Values  []V
	Updates int        // total vertex update invocations (the model's work unit)
	Stats   *bsp.Stats // Workers = 1; Recovery itemizes fault-injection cost
}

// Context exposes the live computation state to Update.
type Context[V any] struct {
	g      *graph.Graph
	csr    *graph.CSR
	values []V
	work   int64
	s      *graph.Scratch // pooled span-decode buffers for packed snapshots
}

// Graph returns the input graph. Only its construction-immutable
// properties (N, Directed) are safe to read from Update when a writer
// may be mutating adjacency between jobs; structural reads must go
// through the snapshot accessors (Out, OutWeights, OutEdges).
func (c *Context[V]) Graph() *graph.Graph { return c.g }

// Value returns a pointer to any vertex's current value (reads of
// neighbors see the latest state — the asynchronous semantics).
func (c *Context[V]) Value(v VertexID) *V { return &c.values[v] }

// OutEdges returns v's adjacency as []Edge, materialized fresh from
// the pinned CSR snapshot (never the live graph). Hot update loops
// should prefer the CSR spans (Out/OutWeights), which avoid the
// per-call allocation and the 32-byte Edge layout and let a program
// return the span as its activation list without allocating.
func (c *Context[V]) OutEdges(v VertexID) []graph.Edge {
	d := c.csr.OutDegree(v)
	if d == 0 {
		return nil
	}
	return c.csr.AppendOutEdges(make([]graph.Edge, 0, d), v)
}

// Out returns v's out-neighbor span from the CSR snapshot. The slice
// aliases the snapshot (or, on a packed snapshot, the context's decode
// buffer — the next Out call overwrites it) and must not be modified;
// returning it from Update as the activation list is allocation-free.
func (c *Context[V]) Out(v VertexID) []VertexID { return c.csr.OutSpan(v, c.s) }

// In returns v's in-neighbor span from the CSR snapshot (the out span
// for undirected graphs). It shares the context's decode buffers with
// Out the way OutSpan/InSpan do: one live span per direction.
func (c *Context[V]) In(v VertexID) []VertexID { return c.csr.InSpan(v, c.s) }

// OutWeights returns v's out-edge weight span aligned with Out(v), or
// nil when the graph is unweighted.
func (c *Context[V]) OutWeights(v VertexID) []float64 { return c.csr.OutWeights(v) }

// Preparer is the optional program hook invoked during Prepare with
// the pinned CSR snapshot. Programs that read graph structure outside
// Update (precomputed degrees, a transpose) must do it here, so the
// run closure returned by Prepare never touches the mutable graph.
type Preparer interface {
	PrepareAsync(csr *graph.CSR)
}

// Run executes prog to quiescence under the FIFO scheduler (or the
// priority scheduler when Config.Prioritized is set and the program
// implements Prioritizer). Run is Prepare(g, prog, cfg)().
func Run[V any](g *graph.Graph, prog Program[V], cfg Config) (*Result[V], error) {
	return Prepare(g, prog, cfg)()
}

// Prepare splits a run in two: every read of the mutable graph —
// snapshot pinning, the Preparer hook, Init, worklist seeding —
// happens inside Prepare, so a caller serving concurrent jobs can
// bracket it with its graph lock and invoke the returned closure
// lock-free. The closure unpins the snapshot when it returns.
func Prepare[V any](g *graph.Graph, prog Program[V], cfg Config) func() (*Result[V], error) {
	csr := cfg.Snapshot
	if csr == nil {
		csr = g.Pin()
	} else {
		g.PinSnapshot(csr)
	}
	n := csr.N()
	if cfg.MaxUpdates <= 0 {
		cfg.MaxUpdates = 200 * (n + 64)
	}
	if prep, ok := any(prog).(Preparer); ok {
		prep.PrepareAsync(csr)
	}
	ctx := &Context[V]{g: g, csr: csr, values: make([]V, n), s: rt.GetScratch()}
	for v := 0; v < n; v++ {
		ctx.values[v] = prog.Init(g, VertexID(v))
	}
	if cfg.Prioritized {
		if pr, ok := prog.(Prioritizer[V]); ok {
			return func() (*Result[V], error) {
				defer g.Unpin(csr)
				defer rt.PutScratch(ctx.s)
				if cfg.Faults.NewInjector(1) != nil {
					return nil, ErrFaultsNeedFIFO
				}
				return runPrioritized(ctx, prog, pr, cfg)
			}
		}
	}
	// The deduplicating FIFO worklist from the shared runtime replaces
	// the previous slice+inQueue pair; its in-place compaction keeps a
	// long drain with re-activations from reallocating the queue.
	queue := rt.NewFIFO(n)
	for v := 0; v < n; v++ {
		queue.Push(VertexID(v))
	}
	epochLen := cfg.CheckpointEvery
	if epochLen <= 0 {
		epochLen = defaultEpoch
	}
	stats := &bsp.Stats{Workers: 1, N: n}
	// One driver step is one epoch of up to epochLen updates; the
	// driver's barrier is the epoch boundary, where faults are detected
	// and checkpoints taken (FaultEvent.Step counts epochs). EpochSaves
	// selects the asynchronous checkpoint ordering: snapshot at the top
	// of each boundary, after fault detection. The update cap is the
	// policy's own (checked per update, not per epoch), so the driver's
	// step cap is unreachable. The policy itself is the shared
	// runtime.WorklistRunner — the same FIFO-epoch machinery that
	// drives the incremental evolving-graph programs.
	p := &rt.WorklistRunner[V]{
		Name:       "async",
		Update:     func(v VertexID) []VertexID { return prog.Update(ctx, v) },
		Prog:       prog,
		Values:     &ctx.values,
		Queue:      queue,
		N:          n,
		EpochLen:   epochLen,
		MaxUpdates: cfg.MaxUpdates,
		CapErr:     ErrUpdateCap,
	}
	if cfg.Faults != nil {
		// Checkpoint-free restarts restore these pristine Init-time
		// values instead of re-running Init mid-run (PristineQueue nil:
		// a restart reseeds every vertex).
		p.PristineValues = rt.CloneValues[V](prog, ctx.values)
	}
	d := rt.NewDriver[*rt.WorklistSnapshot[V]](p, stats, rt.DriverConfig{
		Name:              "async",
		Workers:           1,
		MaxSteps:          math.MaxInt,
		CapErr:            ErrUpdateCap,
		CheckpointEvery:   cfg.CheckpointEvery,
		FullSnapshotEvery: cfg.FullSnapshotEvery,
		Faults:            cfg.Faults,
		EpochSaves:        true,
		Ctx:               cfg.Ctx,
		Pool:              cfg.Pool,
		Job:               cfg.Job,
		Replan:            cfg.Replan,
	})
	return func() (*Result[V], error) {
		defer g.Unpin(csr)
		defer rt.PutScratch(ctx.s)
		_, err := d.Run()
		return &Result[V]{Values: ctx.values, Updates: p.Updates(), Stats: stats}, err
	}
}

// runPrioritized drains a lazy max-priority queue: every activation
// pushes (v, current priority); stale entries (v re-updated since the
// push) are skipped at pop time.
func runPrioritized[V any](ctx *Context[V], prog Program[V], pr Prioritizer[V], cfg Config) (*Result[V], error) {
	goCtx := cfg.Ctx
	if cfg.Job != nil {
		goCtx = cfg.Job.Context()
	}
	if goCtx == nil {
		goCtx = context.Background()
	}
	n := ctx.g.N()
	pq := &prioQueue{}
	scheduled := make([]bool, n)
	// Decrease-key by duplication: re-activations push a fresh entry
	// with the current priority; pops skip entries whose vertex was
	// already processed since (scheduled flag cleared).
	push := func(v VertexID) {
		scheduled[v] = true
		heap.Push(pq, prioItem{v: v, p: pr.Priority(ctx, v)})
	}
	for v := 0; v < n; v++ {
		push(VertexID(v))
	}
	stats := &bsp.Stats{Workers: 1, N: n}
	updates := 0
	// On a packed snapshot the activation span Update returns lives in
	// the context's decode buffer, and push -> Priority -> ctx.Out would
	// overwrite it mid-iteration; copy it out first (reused buffer). A
	// flat snapshot's spans alias immutable CSR arrays — no copy.
	copyActs := ctx.csr.Packed()
	var actBuf []VertexID
	for pq.Len() > 0 {
		// This loop bypasses the superstep driver (there are no epoch
		// boundaries), so cancellation is checked between updates.
		if goCtx.Err() != nil {
			return &Result[V]{Values: ctx.values, Updates: updates, Stats: stats},
				fmt.Errorf("async: %w", context.Cause(goCtx))
		}
		if updates >= cfg.MaxUpdates {
			return &Result[V]{Values: ctx.values, Updates: updates, Stats: stats},
				fmt.Errorf("async: %w (cap %d)", ErrUpdateCap, cfg.MaxUpdates)
		}
		it := heap.Pop(pq).(prioItem)
		if !scheduled[it.v] {
			continue // stale entry
		}
		scheduled[it.v] = false
		updates++
		acts := prog.Update(ctx, it.v)
		if copyActs {
			actBuf = append(actBuf[:0], acts...)
			acts = actBuf
		}
		for _, w := range acts {
			push(w)
		}
	}
	return &Result[V]{Values: ctx.values, Updates: updates, Stats: stats}, nil
}

type prioItem struct {
	v VertexID
	p float64
}

type prioQueue struct{ items []prioItem }

func (q *prioQueue) Len() int           { return len(q.items) }
func (q *prioQueue) Less(i, j int) bool { return q.items[i].p > q.items[j].p }
func (q *prioQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *prioQueue) Push(x any)         { q.items = append(q.items, x.(prioItem)) }
func (q *prioQueue) Pop() any {
	old := q.items
	x := old[len(old)-1]
	q.items = old[:len(old)-1]
	return x
}

// --- Async SSSP (label-correcting) ---

type ssspProgram struct {
	src VertexID
}

func (p *ssspProgram) Init(g *graph.Graph, id VertexID) float64 {
	if id == p.src {
		return 0
	}
	return inf
}

const inf = 1e308

func (p *ssspProgram) Update(ctx *Context[float64], v VertexID) []VertexID {
	// Recompute from in-neighbors' live distances (undirected: same set).
	d := inf
	if v == p.src {
		d = 0
	}
	dsts := ctx.Out(v)
	if ws := ctx.OutWeights(v); ws == nil {
		for _, u := range dsts {
			if nd := *ctx.Value(u) + 1; nd < d {
				d = nd
			}
		}
	} else {
		for i, u := range dsts {
			if nd := *ctx.Value(u) + ws[i]; nd < d {
				d = nd
			}
		}
	}
	if d < *ctx.Value(v) {
		*ctx.Value(v) = d
		return dsts
	}
	return nil
}

// Priority orders SSSP updates closest-first by the distance v WOULD
// settle to (the best current offer from its neighbors): with this
// schedule the label-correcting process becomes label-setting,
// Dijkstra-style — most vertices update exactly once.
func (p *ssspProgram) Priority(ctx *Context[float64], v VertexID) float64 {
	best := *ctx.Value(v)
	dsts := ctx.Out(v)
	if ws := ctx.OutWeights(v); ws == nil {
		for _, u := range dsts {
			if cand := *ctx.Value(u) + 1; cand < best {
				best = cand
			}
		}
	} else {
		for i, u := range dsts {
			if cand := *ctx.Value(u) + ws[i]; cand < best {
				best = cand
			}
		}
	}
	return -best
}

// SSSP computes single-source shortest paths asynchronously
// (label-correcting over live values) on an undirected weighted graph.
// With cfg.Prioritized the schedule is closest-first.
func SSSP(g *graph.Graph, src VertexID, cfg Config) ([]float64, *Result[float64], error) {
	return PrepareSSSP(g, src, cfg)()
}

// PrepareSSSP is the job-scoped form of SSSP: graph reads happen now,
// the returned closure runs against the pinned snapshot.
func PrepareSSSP(g *graph.Graph, src VertexID, cfg Config) func() ([]float64, *Result[float64], error) {
	run := Prepare[float64](g, &ssspProgram{src: src}, cfg)
	return func() ([]float64, *Result[float64], error) {
		res, err := run()
		if err != nil {
			return nil, res, err
		}
		return res.Values, res, nil
	}
}

// --- Async PageRank (Gauss–Seidel with delta scheduling) ---

type prProgram struct {
	n      int
	alpha  float64
	eps    float64
	outDeg []float64
	csr    *graph.CSR
}

func (p *prProgram) Init(g *graph.Graph, id VertexID) float64 { return 1 / float64(p.n) }

// PrepareAsync caches the pinned snapshot, its transpose, and the
// out-degrees (dangling vertices count 1) before the run starts.
func (p *prProgram) PrepareAsync(csr *graph.CSR) {
	csr.EnsureIn() // the Gauss–Seidel sweep pulls over the transpose
	p.csr = csr
	p.outDeg = make([]float64, p.n)
	for v := 0; v < p.n; v++ {
		d := csr.OutDegree(VertexID(v))
		if d == 0 {
			d = 1
		}
		p.outDeg[v] = float64(d)
	}
}

func (p *prProgram) Update(ctx *Context[float64], v VertexID) []VertexID {
	var sum float64
	for _, u := range ctx.In(v) {
		sum += *ctx.Value(u) / p.outDeg[u]
	}
	nr := (1-p.alpha)/float64(p.n) + p.alpha*sum
	old := *ctx.Value(v)
	*ctx.Value(v) = nr
	if d := nr - old; d > p.eps || d < -p.eps {
		return ctx.Out(v)
	}
	return nil
}

// PageRank computes PageRank asynchronously: Gauss–Seidel sweeps over
// live values with delta-based rescheduling, converging to the same
// fixpoint as synchronous power iteration but typically in fewer
// updates (newer information propagates within a single drain).
func PageRank(g *graph.Graph, alpha, eps float64, cfg Config) ([]float64, *Result[float64], error) {
	return PreparePageRank(g, alpha, eps, cfg)()
}

// PreparePageRank is the job-scoped form of PageRank: the transpose
// and out-degrees are captured from the pinned snapshot now, the
// returned closure runs lock-free.
func PreparePageRank(g *graph.Graph, alpha, eps float64, cfg Config) func() ([]float64, *Result[float64], error) {
	run := Prepare[float64](g, &prProgram{n: g.N(), alpha: alpha, eps: eps}, cfg)
	return func() ([]float64, *Result[float64], error) {
		res, err := run()
		if err != nil {
			return nil, res, err
		}
		return res.Values, res, nil
	}
}

// --- Async connected components (min-label) ---

type ccProgram struct{}

func (ccProgram) Init(g *graph.Graph, id VertexID) VertexID { return id }

func (ccProgram) Update(ctx *Context[VertexID], v VertexID) []VertexID {
	min := *ctx.Value(v)
	dsts := ctx.Out(v)
	for _, u := range dsts {
		if l := *ctx.Value(u); l < min {
			min = l
		}
	}
	if min < *ctx.Value(v) {
		*ctx.Value(v) = min
		return dsts
	}
	return nil
}

// ConnectedComponents labels components with the minimum member ID via
// asynchronous min-label propagation.
func ConnectedComponents(g *graph.Graph, cfg Config) ([]VertexID, *Result[VertexID], error) {
	return PrepareConnectedComponents(g, cfg)()
}

// PrepareConnectedComponents is the job-scoped form of
// ConnectedComponents.
func PrepareConnectedComponents(g *graph.Graph, cfg Config) func() ([]VertexID, *Result[VertexID], error) {
	if cfg.PackedState {
		prog := newCCPackedProgram(g.N())
		run := Prepare[struct{}](g, prog, cfg)
		return func() ([]VertexID, *Result[VertexID], error) {
			res, err := run()
			var wrapped *Result[VertexID]
			if res != nil {
				wrapped = &Result[VertexID]{Values: prog.lbls(), Updates: res.Updates, Stats: res.Stats}
			}
			if err != nil {
				return nil, wrapped, err
			}
			return wrapped.Values, wrapped, nil
		}
	}
	run := Prepare[VertexID](g, ccProgram{}, cfg)
	return func() ([]VertexID, *Result[VertexID], error) {
		res, err := run()
		if err != nil {
			return nil, res, err
		}
		return res.Values, res, nil
	}
}

// --- Seeded programs for the adaptive plan layer ---

// DistInf is the sentinel the async SSSP program uses for "unreached"
// (a finite stand-in for +Inf so priority arithmetic stays ordered).
// The adaptive plan layer normalizes distances at engine boundaries:
// +Inf becomes DistInf entering an async segment and DistInf becomes
// +Inf leaving one.
const DistInf = inf

type seededCC struct {
	ccProgram
	seed []VertexID
}

func (p seededCC) Init(g *graph.Graph, id VertexID) VertexID {
	if p.seed != nil {
		return p.seed[id]
	}
	return id
}

// CCProgramSeeded warm-starts async min-label components from exported
// labels. Update recomputes from live neighbor values, so re-seeding
// the full FIFO with partially-converged labels reaches the same
// fixpoint.
func CCProgramSeeded(seed []VertexID) Program[VertexID] {
	return seededCC{seed: seed}
}

type seededSSSP struct {
	ssspProgram
	seed []float64
}

func (p *seededSSSP) Init(g *graph.Graph, id VertexID) float64 {
	if p.seed != nil {
		return p.seed[id]
	}
	return p.ssspProgram.Init(g, id)
}

// SSSPProgramSeeded warm-starts async label-correcting SSSP from
// exported tentative distances. Callers must pre-normalize +Inf to
// DistInf; the Update rule only ever improves values, so any sound
// upper bound converges to the same distances.
func SSSPProgramSeeded(src VertexID, seed []float64) Program[float64] {
	return &seededSSSP{ssspProgram: ssspProgram{src: src}, seed: seed}
}
