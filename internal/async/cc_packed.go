package async

import (
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// Packed-state async connected components (Config.PackedState): the
// labels move from the engine's value array into a bit-packed store at
// ⌈log₂ n⌉ bits per vertex. Asynchronous updates read live neighbor
// state by design, so a single store replaces the value array directly
// — no double buffering — and the update/activation sequence under the
// FIFO scheduler is byte-identical to the dense ccProgram.

type ccPackedProgram struct {
	labels rt.StateStore
}

func newCCPackedProgram(n int) *ccPackedProgram {
	domain := uint64(n)
	if domain == 0 {
		domain = 1
	}
	return &ccPackedProgram{labels: rt.NewPackedInts(n, domain)}
}

func (p *ccPackedProgram) Init(g *graph.Graph, id VertexID) struct{} {
	p.labels.Set(int(id), uint64(id))
	return struct{}{}
}

func (p *ccPackedProgram) Update(ctx *Context[struct{}], v VertexID) []VertexID {
	min := VertexID(p.labels.Get(int(v)))
	dsts := ctx.Out(v)
	for _, u := range dsts {
		if l := VertexID(p.labels.Get(int(u))); l < min {
			min = l
		}
	}
	if min < VertexID(p.labels.Get(int(v))) {
		p.labels.Set(int(v), uint64(min))
		return dsts
	}
	return nil
}

// SnapshotState/RestoreState implement runtime.StateSnapshotter: epoch
// checkpoints clone only the (empty) value array, so the label store
// rides along here. RestoreState(nil) is the pristine identity-label
// restart.
func (p *ccPackedProgram) SnapshotState() any { return p.labels.Clone() }

func (p *ccPackedProgram) RestoreState(s any) {
	if s == nil {
		for v := 0; v < p.labels.Len(); v++ {
			p.labels.Set(v, uint64(v))
		}
		return
	}
	p.labels.CopyFrom(s.(rt.StateStore))
}

// lbls extracts the final labeling.
func (p *ccPackedProgram) lbls() []VertexID {
	out := make([]VertexID, p.labels.Len())
	for v := range out {
		out[v] = VertexID(p.labels.Get(v))
	}
	return out
}
