package async_test

import (
	. "vcgraph/internal/async"
	"math"
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
	"vcgraph/internal/vc"
)

func TestAsyncCCMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(80, 120, seed)
		labels, _, err := ConnectedComponents(g, Config{})
		if err != nil {
			return false
		}
		var ops seq.Ops
		want := seq.Components(g, &ops)
		for v := range want {
			if labels[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncSSSPMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(60, 180, seed)
		graph.RandomWeights(g, seed+3)
		dist, _, err := SSSP(g, 0, Config{})
		if err != nil {
			return false
		}
		var ops seq.Ops
		want := seq.Dijkstra(g, 0, &ops)
		for v := range want {
			if math.IsInf(want[v], 1) {
				if dist[v] < 1e307 {
					return false
				}
				continue
			}
			if math.Abs(dist[v]-want[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncPropagatesWithinOneDrain(t *testing.T) {
	// On a path, one FIFO drain moves a label the whole way: total
	// updates stay O(n), versus Θ(n) supersteps of the BSP engine.
	g := graph.Path(4096)
	labels, ccRes, err := ConnectedComponents(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("vertex %d label %d", v, l)
		}
	}
	if updates := ccRes.Updates; updates > 5*g.N() {
		t.Fatalf("updates = %d; FIFO async should stay ~O(n) on a path", updates)
	}
	// Contrast: the synchronous engine needs Θ(n) supersteps.
	bsp, err := vc.HashMinCC(g, vc.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bsp.Stats.NumSupersteps() < g.N()/2 {
		t.Fatalf("unexpectedly fast BSP run: %d supersteps", bsp.Stats.NumSupersteps())
	}
}

func TestAsyncUpdateCap(t *testing.T) {
	g := graph.Path(100)
	if _, _, err := ConnectedComponents(g, Config{MaxUpdates: 5}); err == nil {
		t.Fatal("expected update cap error")
	}
}

func TestAsyncEmptyAndSingleton(t *testing.T) {
	if labels, res, err := ConnectedComponents(graph.New(0, false), Config{}); err != nil || len(labels) != 0 || res.Updates != 0 {
		t.Fatalf("empty: %v %v %v", labels, res.Updates, err)
	}
	labels, _, err := ConnectedComponents(graph.New(1, false), Config{})
	if err != nil || labels[0] != 0 {
		t.Fatalf("singleton: %v %v", labels, err)
	}
}

func TestAsyncDeterministic(t *testing.T) {
	g := graph.RandomConnected(200, 500, 9)
	graph.RandomWeights(g, 10)
	a, ua, err := SSSP(g, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, ub, err := SSSP(g, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ua.Updates != ub.Updates {
		t.Fatalf("update counts differ: %d vs %d", ua.Updates, ub.Updates)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("vertex %d differs", v)
		}
	}
}

func TestAsyncPageRankMatchesPowerIteration(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.PreferentialAttachment(500, 3, 4),
		graph.RandomDirected(300, 1200, 6),
	} {
		ranks, prRes, err := PageRank(g, 0.85, 1e-12, Config{})
		if err != nil {
			t.Fatal(err)
		}
		var ops seq.Ops
		want := seq.PageRank(g, 0.85, 300, &ops)
		for v := range want {
			if math.Abs(ranks[v]-want[v]) > 1e-7 {
				t.Fatalf("vertex %d: async=%v seq=%v", v, ranks[v], want[v])
			}
		}
		if prRes.Updates == 0 {
			t.Fatal("no updates recorded")
		}
	}
}

func TestAsyncPageRankUpdateCountComparableToSync(t *testing.T) {
	// With a plain FIFO scheduler, Gauss–Seidel PageRank does about the
	// same number of vertex updates as synchronous power iteration (the
	// async model's big wins need residual-prioritized scheduling, or
	// show up on propagation problems like CC/SSSP — see
	// TestAsyncPropagatesWithinOneDrain). Pin the "comparable" claim.
	g := graph.PreferentialAttachment(2000, 3, 8)
	_, prRes2, err := PageRank(g, 0.85, 1e-9, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, iters, err2 := vc.PageRankConverge(g, 0.85, 1e-9, vc.Config{Workers: 2})
	if err2 != nil {
		t.Fatal(err2)
	}
	syncWork := iters * g.N()
	if updates := prRes2.Updates; updates > 2*syncWork || updates*4 < syncWork {
		t.Fatalf("async updates %d implausibly far from sync %d", updates, syncWork)
	}
}

func TestPrioritizedSSSPMatchesFIFO(t *testing.T) {
	// Correctness of the priority scheduler on assorted shapes.
	for _, g := range []*graph.Graph{
		graph.RandomConnected(400, 1600, 12),
		graph.PreferentialAttachment(500, 3, 4),
	} {
		graph.RandomWeights(g, 13)
		fifo, _, err := SSSP(g, 0, Config{})
		if err != nil {
			t.Fatal(err)
		}
		prio, _, err := SSSP(g, 0, Config{Prioritized: true})
		if err != nil {
			t.Fatal(err)
		}
		for v := range fifo {
			if math.Abs(fifo[v]-prio[v]) > 1e-9 {
				t.Fatalf("vertex %d: fifo=%v prio=%v", v, fifo[v], prio[v])
			}
		}
	}
}

func TestPrioritizedSSSPBeatsFIFOOnCorrectionHeavyGraphs(t *testing.T) {
	// On weighted high-diameter graphs, FIFO re-corrects distances as
	// cheaper long-hop paths arrive late; closest-first scheduling is
	// nearly label-setting and does measurably fewer updates.
	g := graph.Grid(30, 30)
	graph.RandomWeights(g, 3)
	_, fifoRes, err := SSSP(g, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, prioRes, err := SSSP(g, 0, Config{Prioritized: true})
	if err != nil {
		t.Fatal(err)
	}
	prioUpdates, fifoUpdates := prioRes.Updates, fifoRes.Updates
	if prioUpdates*5 > fifoUpdates*4 { // require ≥20% fewer updates
		t.Fatalf("prioritized %d updates not clearly below FIFO %d", prioUpdates, fifoUpdates)
	}
}

func TestPrioritizedFallsBackWithoutPrioritizer(t *testing.T) {
	// ccProgram has no Priority: Prioritized must silently use FIFO.
	g := graph.Path(50)
	labels, _, err := ConnectedComponents(g, Config{Prioritized: true})
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("vertex %d label %d", v, l)
		}
	}
}
