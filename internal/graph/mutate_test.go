package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestApplyMutationsBasic(t *testing.T) {
	g := New(5, false)
	g.AddEdge(0, 1)
	g.AddWeightedEdge(1, 2, 4)
	e0 := g.Epoch()

	ep, err := g.ApplyMutations([]Mutation{
		{Op: InsertEdge, U: 2, V: 3, W: 7},
		{Op: DeleteEdge, U: 0, V: 1},
	})
	if err != nil {
		t.Fatalf("ApplyMutations: %v", err)
	}
	if ep != e0+1 || g.Epoch() != ep {
		t.Fatalf("epoch = %d, want %d", ep, e0+1)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d, want 2", g.M())
	}
	if len(g.Out[0]) != 0 || len(g.Out[1]) != 1 || g.Out[2][1].Dst != 3 {
		t.Fatalf("adjacency after batch: %v", g.Out)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	// The log canonicalizes delete weights to what was removed.
	muts, ok := g.MutationsSince(e0)
	if !ok || len(muts) != 2 {
		t.Fatalf("MutationsSince(%d) = %v, %v", e0, muts, ok)
	}
	if muts[1].Op != DeleteEdge || muts[1].W != 1 {
		t.Fatalf("delete weight not canonicalized: %+v", muts[1])
	}

	// Deleting a weighted edge logs its actual weight.
	if _, err := g.ApplyMutations([]Mutation{{Op: DeleteEdge, U: 2, V: 1}}); err != nil {
		t.Fatal(err)
	}
	muts, ok = g.MutationsSince(ep)
	if !ok || len(muts) != 1 || muts[0].W != 4 {
		t.Fatalf("weighted delete log = %v, %v (want w=4)", muts, ok)
	}
}

func TestApplyMutationsDeleteNonexistent(t *testing.T) {
	g := Cycle(4)
	before := g.Clone()
	e0 := g.Epoch()
	// The second mutation is invalid: the batch must leave the graph
	// completely untouched, including the epoch and the edge inserted
	// by the first mutation.
	_, err := g.ApplyMutations([]Mutation{
		{Op: InsertEdge, U: 0, V: 2},
		{Op: DeleteEdge, U: 1, V: 3},
	})
	if err == nil {
		t.Fatal("delete of nonexistent edge did not error")
	}
	if g.Epoch() != e0 {
		t.Fatalf("epoch moved on failed batch: %d -> %d", e0, g.Epoch())
	}
	if !reflect.DeepEqual(g.Out, before.Out) || g.M() != before.M() {
		t.Fatal("graph mutated by failed batch")
	}
	if _, ok := g.MutationsSince(e0); !ok {
		t.Fatal("failed batch broke the mutation log")
	}
}

func TestApplyMutationsDeleteSeesEarlierInsert(t *testing.T) {
	g := New(3, false)
	// Valid only because the insert earlier in the same batch supplies
	// the edge the delete removes.
	if _, err := g.ApplyMutations([]Mutation{
		{Op: InsertEdge, U: 0, V: 1, W: 2},
		{Op: DeleteEdge, U: 1, V: 0},
	}); err != nil {
		t.Fatalf("delete of same-batch insert: %v", err)
	}
	if g.M() != 0 {
		t.Fatalf("m = %d, want 0", g.M())
	}
}

func TestApplyMutationsDuplicateInsert(t *testing.T) {
	g := New(3, false)
	g.AddWeightedEdge(0, 1, 5)
	if _, err := g.ApplyMutations([]Mutation{{Op: InsertEdge, U: 0, V: 1, W: 9}}); err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || len(g.Out[0]) != 2 || len(g.Out[1]) != 2 {
		t.Fatalf("duplicate insert: m=%d out0=%v out1=%v", g.M(), g.Out[0], g.Out[1])
	}
	// First-match semantics: deleting removes the earlier (w=5) edge.
	ep := g.Epoch()
	if _, err := g.ApplyMutations([]Mutation{{Op: DeleteEdge, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	if g.Out[0][0].W != 9 || g.Out[1][0].W != 9 {
		t.Fatalf("delete removed wrong parallel edge: %v", g.Out[0])
	}
	muts, ok := g.MutationsSince(ep)
	if !ok || muts[0].W != 5 {
		t.Fatalf("logged delete weight = %v, want 5", muts)
	}
	// And the second delete removes the survivor.
	if _, err := g.ApplyMutations([]Mutation{{Op: DeleteEdge, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	if g.M() != 0 {
		t.Fatalf("m = %d, want 0", g.M())
	}
}

func TestApplyMutationsRangeAndNaN(t *testing.T) {
	g := New(3, true)
	if _, err := g.ApplyMutations([]Mutation{{Op: InsertEdge, U: 0, V: 3}}); err == nil {
		t.Fatal("out-of-range insert did not error")
	}
	if _, err := g.ApplyMutations([]Mutation{{Op: InsertEdge, U: -1, V: 0}}); err == nil {
		t.Fatal("negative vertex did not error")
	}
	nan := 0.0
	nan /= nan
	if _, err := g.ApplyMutations([]Mutation{{Op: InsertEdge, U: 0, V: 1, W: nan}}); err == nil {
		t.Fatal("NaN weight did not error")
	}
	if g.Epoch() != New(3, true).Epoch() || g.M() != 0 {
		t.Fatal("failed batches mutated the graph")
	}
}

func TestMutationsSinceSemantics(t *testing.T) {
	g := Cycle(5)
	e0 := g.Epoch()
	if muts, ok := g.MutationsSince(e0); !ok || muts != nil {
		t.Fatalf("no-op history = %v, %v", muts, ok)
	}
	if _, ok := g.MutationsSince(e0 + 1); ok {
		t.Fatal("future epoch reported ok")
	}
	g.ApplyMutations([]Mutation{{Op: InsertEdge, U: 0, V: 2}})
	g.ApplyMutations([]Mutation{{Op: InsertEdge, U: 0, V: 3}})
	muts, ok := g.MutationsSince(e0)
	if !ok || len(muts) != 2 || muts[0].V != 2 || muts[1].V != 3 {
		t.Fatalf("two-batch history = %v, %v", muts, ok)
	}
	// An out-of-band mutation poisons every older epoch.
	mid := g.Epoch()
	g.AddEdge(1, 4)
	if _, ok := g.MutationsSince(mid); ok {
		t.Fatal("out-of-band AddEdge did not invalidate the log")
	}
	if _, ok := g.MutationsSince(e0); ok {
		t.Fatal("out-of-band AddEdge did not invalidate older epochs")
	}
	// History resumes from the current epoch.
	now := g.Epoch()
	g.ApplyMutations([]Mutation{{Op: DeleteEdge, U: 1, V: 4}})
	if muts, ok := g.MutationsSince(now); !ok || len(muts) != 1 {
		t.Fatalf("post-invalidate history = %v, %v", muts, ok)
	}
}

func TestMutationLogRetention(t *testing.T) {
	g := New(4, false)
	e0 := g.Epoch()
	for i := 0; i < defaultLogRetention+10; i++ {
		if _, err := g.ApplyMutations([]Mutation{
			{Op: InsertEdge, U: 0, V: 1},
			{Op: DeleteEdge, U: 0, V: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := g.MutationsSince(e0); ok {
		t.Fatal("history older than the retention window reported ok")
	}
	recent := g.Epoch() - 5
	if muts, ok := g.MutationsSince(recent); !ok || len(muts) != 10 {
		t.Fatalf("recent history = %d muts, %v (want 10, true)", len(muts), ok)
	}
}

// collectOut/collectIn materialize an enumeration for comparison.
type entry struct {
	V VertexID
	W float64
}

func collectOut(forEach func(VertexID, func(VertexID, float64)), v VertexID) []entry {
	var out []entry
	forEach(v, func(d VertexID, w float64) { out = append(out, entry{d, w}) })
	return out
}

// checkDeltaMatchesRebuild asserts the frozen delta view enumerates
// byte-identically (destinations, weights, order, degrees, in-spans) to
// a CSR rebuilt from scratch — the invariant that makes incremental
// runs spanning a rebuild boundary deterministic.
func checkDeltaMatchesRebuild(t *testing.T, g *Graph) {
	t.Helper()
	d := g.PinDelta()
	defer g.UnpinDelta(d)
	fresh := BuildCSR(g)
	fresh.EnsureIn()
	if d.N() != fresh.N() || d.M() != fresh.M() {
		t.Fatalf("view n/m = %d/%d, rebuild %d/%d", d.N(), d.M(), fresh.N(), fresh.M())
	}
	for v := VertexID(0); int(v) < g.N(); v++ {
		if got, want := d.OutDegree(v), fresh.OutDegree(v); got != want {
			t.Fatalf("vertex %d: view OutDegree %d, rebuild %d", v, got, want)
		}
		if got, want := collectOut(d.ForEachOut, v), collectOut(fresh.ForEachOut, v); !reflect.DeepEqual(got, want) {
			t.Fatalf("vertex %d: view out %v, rebuild %v", v, got, want)
		}
		if got, want := collectOut(d.ForEachIn, v), collectOut(fresh.ForEachIn, v); !reflect.DeepEqual(got, want) {
			t.Fatalf("vertex %d: view in %v, rebuild %v", v, got, want)
		}
	}
}

// runMutationScript applies `steps` random batches to g, checking the
// delta view against a full rebuild after every batch. Deletes pick
// random existing edges; inserts pick random endpoints (self-loops
// included) with small integer weights.
func runMutationScript(t *testing.T, g *Graph, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	for s := 0; s < steps; s++ {
		var batch []Mutation
		for b := 1 + rng.Intn(5); b > 0; b-- {
			if rng.Intn(10) < 6 || g.M() == 0 {
				batch = append(batch, Mutation{
					Op: InsertEdge,
					U:  VertexID(rng.Intn(n)),
					V:  VertexID(rng.Intn(n)),
					W:  float64(1 + rng.Intn(9)),
				})
			} else {
				// Pick a random live edge to delete.
				k := rng.Intn(g.M() * 2)
				var del Mutation
				found := false
				for u := range g.Out {
					if k >= len(g.Out[u]) {
						k -= len(g.Out[u])
						continue
					}
					del = Mutation{Op: DeleteEdge, U: VertexID(u), V: g.Out[u][k].Dst}
					found = true
					break
				}
				if !found {
					continue
				}
				batch = append(batch, del)
				// A second delete of the same pair in one batch may
				// be invalid; keep batches independently valid by
				// stopping after a delete occasionally.
				if rng.Intn(2) == 0 {
					break
				}
			}
		}
		if _, err := g.ApplyMutations(batch); err != nil {
			// Possible when the script deletes one pair twice in a
			// batch; the graph must be untouched, then skip.
			continue
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		checkDeltaMatchesRebuild(t, g)
	}
}

func TestDeltaViewMatchesRebuildUndirected(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := RandomConnected(20, 40, seed)
		runMutationScript(t, g, seed*101, 20)
	}
}

func TestDeltaViewMatchesRebuildDirected(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := New(16, true)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 40; i++ {
			g.AddWeightedEdge(VertexID(rng.Intn(16)), VertexID(rng.Intn(16)), float64(1+rng.Intn(9)))
		}
		runMutationScript(t, g, seed*77, 20)
	}
}

func TestDeltaViewAcrossRebuildBoundary(t *testing.T) {
	g := RandomConnected(24, 48, 3)
	g.RebuildEvery = 7 // force frequent re-basing mid-script
	runMutationScript(t, g, 99, 30)
	// After enough mutations a rebuild must have happened and the
	// overlay must have been re-based (small again).
	d := g.PinDelta()
	adds, dels := d.OverlaySize()
	if adds+dels >= 7+5 {
		t.Fatalf("overlay not re-based: %d adds, %d dels", adds, dels)
	}
	g.UnpinDelta(d)
}

func TestPinDeltaRefcountAndIsolation(t *testing.T) {
	g := Cycle(8)
	if _, err := g.ApplyMutations([]Mutation{{Op: InsertEdge, U: 0, V: 4, W: 3}}); err != nil {
		t.Fatal(err)
	}
	d1 := g.PinDelta()
	d2 := g.PinDelta()
	if d1 != d2 {
		t.Fatal("two pins at the same version returned different views")
	}
	if g.Pins() != 2 {
		t.Fatalf("pins = %d, want 2", g.Pins())
	}
	before := collectOut(d1.ForEachOut, 0)

	// Later batches must not disturb the frozen view.
	if _, err := g.ApplyMutations([]Mutation{
		{Op: DeleteEdge, U: 0, V: 4},
		{Op: InsertEdge, U: 0, V: 5, W: 8},
		{Op: InsertEdge, U: 0, V: 4, W: 6},
	}); err != nil {
		t.Fatal(err)
	}
	if got := collectOut(d1.ForEachOut, 0); !reflect.DeepEqual(got, before) {
		t.Fatalf("frozen view changed under mutation: %v -> %v", before, got)
	}
	d3 := g.PinDelta()
	if d3 == d1 {
		t.Fatal("pin after mutation returned the stale view")
	}
	checkDeltaMatchesRebuild(t, g)
	g.UnpinDelta(d1)
	g.UnpinDelta(d2)
	g.UnpinDelta(d3)
	if g.Pins() != 0 {
		t.Fatalf("pins = %d after drain, want 0", g.Pins())
	}
}

func TestApplyMutationsEmptyBatch(t *testing.T) {
	g := Cycle(4)
	e0 := g.Epoch()
	ep, err := g.ApplyMutations(nil)
	if err != nil || ep != e0 {
		t.Fatalf("empty batch: epoch %d err %v, want %d nil", ep, err, e0)
	}
}
