package graph

import (
	"fmt"
	"math"
)

// MutationOp is the kind of a single edge mutation.
type MutationOp uint8

const (
	// InsertEdge adds an edge U->V (and V->U when undirected) with
	// weight W.
	InsertEdge MutationOp = iota
	// DeleteEdge removes one edge U->V (and its V->U half when
	// undirected). When parallel edges exist the earliest surviving
	// occurrence in adjacency order is removed, matching what a direct
	// first-match slice deletion on Out[u] would do.
	DeleteEdge
)

func (op MutationOp) String() string {
	switch op {
	case InsertEdge:
		return "insert"
	case DeleteEdge:
		return "delete"
	}
	return fmt.Sprintf("MutationOp(%d)", uint8(op))
}

// Mutation is one edge insertion or deletion. For InsertEdge, W is the
// edge weight as given. For DeleteEdge, W is ignored on input; in the
// log returned by MutationsSince it is canonicalized to the weight of
// the edge that was actually removed, so incremental consumers can
// reason about the deleted edge without consulting the old snapshot.
type Mutation struct {
	Op   MutationOp
	U, V VertexID
	W    float64
}

// mutationBatch is one applied ApplyMutations call: the epoch it
// produced and its canonicalized mutations. Within the retained log,
// epochs are consecutive (Invalidate discards the whole log, and only
// ApplyMutations appends, bumping the epoch by exactly one).
type mutationBatch struct {
	epoch int64
	muts  []Mutation
}

// DefaultRebuildEvery is the default mutation count between full CSR
// rebuilds of the delta overlay base (Graph.RebuildEvery overrides).
const DefaultRebuildEvery = 2048

// defaultLogRetention bounds the number of retained mutation batches;
// MutationsSince for epochs older than the retained window reports !ok.
const defaultLogRetention = 1024

// Epoch returns the graph's mutation epoch. Every ApplyMutations batch
// advances it by one; out-of-band mutations (anything routed through
// Invalidate, including AddEdge) advance it too, without a log record,
// which is how stale incremental state is detected.
func (g *Graph) Epoch() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// MutationsSince returns the canonicalized mutations applied after the
// given epoch, oldest first, and whether that history is complete. It
// reports ok=false when the epoch is in the future, when batches older
// than the retention window would be needed, or when any out-of-band
// mutation happened after the given epoch — in every such case an
// incremental consumer must fall back to recomputing from scratch.
func (g *Graph) MutationsSince(epoch int64) ([]Mutation, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if epoch == g.epoch {
		return nil, true
	}
	if epoch > g.epoch || len(g.log) == 0 || g.log[0].epoch > epoch+1 {
		return nil, false
	}
	// Log epochs are consecutive and end at g.epoch, so the batches
	// after `epoch` sit at a computable offset from the front.
	start := int(epoch + 1 - g.log[0].epoch)
	var out []Mutation
	for _, b := range g.log[start:] {
		out = append(out, b.muts...)
	}
	return out, true
}

// ApplyMutations applies a batch of edge insertions and deletions
// atomically: either every mutation applies and the epoch advances by
// one, or the graph is left untouched and an error describes the first
// invalid mutation (endpoint out of range, NaN weight, or deletion of
// an edge that does not exist at its point in the batch). The batch is
// recorded in the mutation log with delete weights canonicalized to the
// weight actually removed, the delta overlay is extended so PinDelta
// readers see the new edges without a full CSR rebuild, and after
// RebuildEvery mutations the base CSR is rebuilt and the overlay
// re-based. Like all mutators, calls must be serialized by the caller
// against other mutations and snapshot builds (the serving layer holds
// a per-graph write lock).
func (g *Graph) ApplyMutations(muts []Mutation) (int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.adopted != nil {
		return g.epoch, fmt.Errorf("graph: ApplyMutations on an adopted (mmap-backed) graph")
	}
	if len(muts) == 0 {
		return g.epoch, nil
	}
	if err := g.validateBatchLocked(muts); err != nil {
		return g.epoch, err
	}
	g.ensureDeltaBaseLocked()
	logged := make([]Mutation, len(muts))
	for i, m := range muts {
		switch m.Op {
		case InsertEdge:
			g.insertEdgeLocked(m.U, m.V, m.W)
		case DeleteEdge:
			m.W = g.deleteEdgeLocked(m.U, m.V)
		}
		logged[i] = m
	}
	g.epoch++
	g.version++
	g.csr = nil
	g.deltaView = nil
	g.log = append(g.log, mutationBatch{epoch: g.epoch, muts: logged})
	if len(g.log) > defaultLogRetention {
		g.log = append(g.log[:0:0], g.log[len(g.log)-defaultLogRetention:]...)
	}
	every := g.RebuildEvery
	if every <= 0 {
		every = DefaultRebuildEvery
	}
	if g.mutsSinceRebuild += len(muts); g.mutsSinceRebuild >= every {
		g.csr = g.buildSnapshotLocked()
		g.csrVersion = g.version
		g.rebaseLocked(g.csr)
	}
	return g.epoch, nil
}

// validateBatchLocked checks the whole batch before anything is
// applied, tracking per-pair availability so a delete is valid when a
// matching edge exists at its point in the batch (including edges
// inserted earlier in the same batch).
func (g *Graph) validateBatchLocked(muts []Mutation) error {
	n := VertexID(g.N())
	avail := make(map[[2]VertexID]int)
	key := func(u, v VertexID) [2]VertexID {
		if !g.Directed && u > v {
			u, v = v, u
		}
		return [2]VertexID{u, v}
	}
	for i, m := range muts {
		if m.U < 0 || m.U >= n || m.V < 0 || m.V >= n {
			return fmt.Errorf("graph: mutation %d: %s(%d, %d): vertex out of range [0,%d)", i, m.Op, m.U, m.V, n)
		}
		k := key(m.U, m.V)
		if _, seen := avail[k]; !seen {
			live := 0
			for _, e := range g.Out[m.U] {
				if e.Dst == m.V {
					live++
				}
			}
			avail[k] = live
		}
		switch m.Op {
		case InsertEdge:
			if math.IsNaN(m.W) {
				return fmt.Errorf("graph: mutation %d: insert(%d, %d): NaN weight", i, m.U, m.V)
			}
			avail[k]++
		case DeleteEdge:
			if avail[k] == 0 {
				return fmt.Errorf("graph: mutation %d: delete(%d, %d): edge does not exist", i, m.U, m.V)
			}
			avail[k]--
		default:
			return fmt.Errorf("graph: mutation %d: unknown op %d", i, uint8(m.Op))
		}
	}
	return nil
}

// ensureDeltaBaseLocked establishes the overlay base on the first
// logged mutation: the base CSR is the graph as of this moment, and the
// (empty) overlay accumulates subsequent changes. If the cached CSR is
// current (the common serving case — the graph was pinned before being
// mutated) this is free; otherwise it pays one full build.
func (g *Graph) ensureDeltaBaseLocked() {
	if g.delta != nil {
		return
	}
	if g.csr == nil || g.csrVersion != g.version {
		g.csr = g.buildSnapshotLocked()
		g.csrVersion = g.version
	}
	g.rebaseLocked(g.csr)
}

// rebaseLocked points the overlay at a CSR that matches the current
// adjacency exactly and clears the accumulated delta.
func (g *Graph) rebaseLocked(base *CSR) {
	g.deltaBase = base
	g.delta = newDeltaOverlay(g.Directed)
	g.mutsSinceRebuild = 0
}

// insertEdgeLocked appends the edge to the adjacency lists and mirrors
// the append into the overlay, preserving the invariant that
// Out[u] == (live base span of u) ++ (overlay adds of u) in order.
func (g *Graph) insertEdgeLocked(u, v VertexID, w float64) {
	g.Out[u] = append(g.Out[u], Edge{Dst: v, W: w})
	g.delta.adds[u] = append(g.delta.adds[u], Edge{Dst: v, W: w})
	if !g.Directed {
		if u != v {
			g.Out[v] = append(g.Out[v], Edge{Dst: u, W: w})
			g.delta.adds[v] = append(g.delta.adds[v], Edge{Dst: u, W: w})
		}
	} else {
		g.delta.inAdds[v] = append(g.delta.inAdds[v], Edge{Dst: u, W: w})
		if g.In != nil {
			g.In[v] = append(g.In[v], Edge{Dst: u, W: w})
		}
	}
	g.delta.nAdds++
	g.numEdges++
}

// deleteEdgeLocked removes the earliest surviving u->v edge (and its
// v->u half when undirected), returning the removed weight.
func (g *Graph) deleteEdgeLocked(u, v VertexID) float64 {
	w := g.deleteHalfLocked(u, v)
	if !g.Directed && u != v {
		g.deleteHalfLocked(v, u)
	}
	if g.Directed && g.In != nil {
		removeFirst(g.In, v, u)
	}
	g.numEdges--
	return w
}

// deleteHalfLocked removes the first matching half-edge u->v from
// Out[u] and records the removal in the overlay. Because Out[u] is the
// live base span followed by the overlay adds, the first match lives in
// the base span iff any live base occurrence remains — in which case it
// is tombstoned; otherwise the earliest overlay add is dropped.
func (g *Graph) deleteHalfLocked(u, v VertexID) float64 {
	d := g.delta
	base := g.deltaBase
	lo, hi := base.OutRange(u)
	for i := lo; i < hi; i++ {
		if base.DstAt(i) != v {
			continue
		}
		if _, dead := d.dels[i]; dead {
			continue
		}
		d.dels[i] = struct{}{}
		d.delCnt[u]++
		d.nDels++
		if g.Directed {
			d.delPairs[[2]VertexID{u, v}]++
		}
		removeFirst(g.Out, u, v)
		return base.Weight(i)
	}
	adds := d.adds[u]
	for j, e := range adds {
		if e.Dst != v {
			continue
		}
		d.adds[u] = append(adds[:j:j], adds[j+1:]...)
		if g.Directed {
			inAdds := d.inAdds[v]
			for k, ie := range inAdds {
				if ie.Dst == u {
					d.inAdds[v] = append(inAdds[:k:k], inAdds[k+1:]...)
					break
				}
			}
		}
		d.nAdds--
		removeFirst(g.Out, u, v)
		return e.W
	}
	panic(fmt.Sprintf("graph: deleteHalfLocked(%d, %d): edge not found after validation", u, v))
}

// removeFirst deletes the first entry with destination v from adj[u],
// preserving the order of the remaining entries.
func removeFirst(adj [][]Edge, u, v VertexID) {
	for i, e := range adj[u] {
		if e.Dst == v {
			adj[u] = append(adj[u][:i:i], adj[u][i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("graph: removeFirst(%d, %d): edge not found", u, v))
}
