// Package graph provides the graph substrate used throughout the
// repository: compact adjacency-list graphs (directed or undirected,
// optionally weighted and vertex/edge labeled), deterministic random
// generators, and structural helpers.
//
// Vertices are dense integer IDs in [0, N). Undirected graphs store each
// edge in both endpoint adjacency lists; the Edges method deduplicates.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// VertexID identifies a vertex. IDs are dense: 0..N()-1.
type VertexID int32

// NoVertex is a sentinel for "no vertex" (absent parent, unmatched, ...).
const NoVertex VertexID = -1

// Edge is one directed adjacency entry: a half-edge from an implicit
// source to Dst with weight W and label L.
type Edge struct {
	Dst VertexID
	W   float64
	L   string
}

// Graph is an adjacency-list graph. Out holds out-adjacency; for
// directed graphs In holds in-adjacency (built lazily by EnsureIn).
// Undirected graphs store both directions in Out and leave In nil.
type Graph struct {
	Directed bool
	Out      [][]Edge
	In       [][]Edge // directed only; nil until EnsureIn
	Labels   []string // optional vertex labels; nil if unlabeled
	numEdges int

	// CSR snapshot cache and pin table: csr is valid while
	// csrVersion == version. Every mutation through the Graph API bumps
	// version; code that rewrites adjacency slices directly must call
	// Invalidate. Pinned snapshots (Pin/Unpin) outlive invalidation —
	// a writer mutating and republishing never disturbs a running
	// job's pinned view; pins counts them for leak checks.
	//
	// mu guards the snapshot bookkeeping (version, csr, pins) so
	// Pin/Unpin/CSR/Invalidate are safe to call concurrently. The
	// adjacency slices themselves are NOT guarded: mutators
	// (AddEdge & co.) must still be serialized against each other and
	// against snapshot builds by the caller — the serving layer does so
	// with a per-graph write lock held across mutate-and-republish.
	mu         sync.Mutex
	version    int64
	csrVersion int64
	csr        *CSR
	pins       map[*CSR]int

	// Evolving-graph state (mutate.go / delta.go): the epoch counts
	// applied mutation batches, log retains recent batches for
	// MutationsSince, and the delta overlay tracks changes against
	// deltaBase so PinDelta can serve readers without a full CSR
	// rebuild. All of it is guarded by mu; out-of-band mutations
	// (anything that calls Invalidate) discard the overlay and the log.
	epoch            int64
	log              []mutationBatch
	delta            *deltaOverlay
	deltaBase        *CSR
	deltaView        *DeltaCSR
	deltaViewVersion int64
	mutsSinceRebuild int

	// RebuildEvery is the amortization knob for the delta overlay: after
	// this many mutations since the last full CSR build, ApplyMutations
	// rebuilds and re-bases the overlay. 0 means DefaultRebuildEvery.
	RebuildEvery int

	// Encoding selects the snapshot representation csrLocked builds:
	// EncodeInt32 (the default) keeps flat 4-byte destination arrays,
	// EncodePacked varint-delta compresses them (codec.go). Set it
	// before the first snapshot build (or call Invalidate after); every
	// subsequent generation — including delta-overlay rebases — uses
	// the chosen representation. Both representations enumerate
	// adjacency in identical order, so runs are byte-identical.
	Encoding EdgeEncoding

	// adopted, when non-nil, pins the graph to an externally built
	// immutable snapshot (an mmap-backed .vcsr file, see OpenCSRFile):
	// snapshot reads delegate to it and mutation is forbidden — there
	// is no adjacency-list builder to mutate. closer releases the
	// backing resource (the mmap), installed by OpenCSRFile.
	adopted *CSR
	closer  func() error
}

// EdgeEncoding selects a CSR destination-array representation.
type EdgeEncoding uint8

const (
	// EncodeInt32 stores destinations as flat 4-byte entries.
	EncodeInt32 EdgeEncoding = iota
	// EncodePacked stores destinations as varint-delta blocks: ~2-4x
	// more edges per GB on sorted adjacency, identical enumeration.
	EncodePacked
)

// AdoptCSR wraps an externally built immutable snapshot (typically
// mmap-backed, see OpenCSRFile) as a read-only Graph: N/M/Degree and
// the snapshot accessors delegate to the adopted CSR, and any mutation
// attempt panics. Out remains a slice of n nil adjacency lists so code
// that merely measures lengths sees a consistent (empty) builder view;
// algorithms must go through CSR spans, which every engine hot path
// does.
func AdoptCSR(c *CSR) *Graph {
	return &Graph{
		Directed: c.Directed,
		Out:      make([][]Edge, c.N()),
		numEdges: c.M(),
		adopted:  c,
	}
}

// Adopted reports whether the graph is an immutable wrapper around an
// externally built snapshot.
func (g *Graph) Adopted() bool { return g.adopted != nil }

// Close releases the resource backing an adopted graph (the mmap of a
// .vcsr file). A no-op for ordinary graphs; safe to call twice. The
// adopted snapshot must not be read after Close.
func (g *Graph) Close() error {
	c := g.closer
	g.closer = nil
	if c == nil {
		return nil
	}
	return c()
}

// New returns an empty graph with n vertices.
func New(n int, directed bool) *Graph {
	return &Graph{Directed: directed, Out: make([][]Edge, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.Out) }

// M returns the number of edges (undirected edges counted once).
func (g *Graph) M() int { return g.numEdges }

// Label returns the label of v, or "" if the graph is unlabeled.
func (g *Graph) Label(v VertexID) string {
	if g.Labels == nil {
		return ""
	}
	return g.Labels[v]
}

// AddEdge adds an edge u->v (and v->u when undirected) with weight 1.
func (g *Graph) AddEdge(u, v VertexID) { g.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge adds an edge u->v (and v->u when undirected) with
// weight w.
func (g *Graph) AddWeightedEdge(u, v VertexID, w float64) {
	g.AddLabeledEdge(u, v, w, "")
}

// AddLabeledEdge adds an edge u->v (and v->u when undirected) with
// weight w and label l. Both endpoints must be in [0, N): an
// out-of-range source used to panic deep inside append and an
// out-of-range destination was silently accepted until Validate, so the
// boundary is checked here.
func (g *Graph) AddLabeledEdge(u, v VertexID, w float64, l string) {
	if g.adopted != nil {
		panic("graph: mutation of an adopted (mmap-backed) graph")
	}
	if n := VertexID(g.N()); u < 0 || u >= n || v < 0 || v >= n {
		panic(fmt.Sprintf("graph: AddLabeledEdge(%d, %d): vertex out of range [0,%d)", u, v, n))
	}
	g.Invalidate()
	g.Out[u] = append(g.Out[u], Edge{Dst: v, W: w, L: l})
	if !g.Directed {
		if u != v {
			g.Out[v] = append(g.Out[v], Edge{Dst: u, W: w, L: l})
		}
	} else if g.In != nil {
		g.In[v] = append(g.In[v], Edge{Dst: u, W: w, L: l})
	}
	g.numEdges++
}

// Degree returns the out-degree of v (for undirected graphs, the
// degree).
func (g *Graph) Degree(v VertexID) int {
	if g.adopted != nil {
		return g.adopted.OutDegree(v)
	}
	return len(g.Out[v])
}

// InDegree returns the in-degree of v. For undirected graphs it equals
// Degree. For directed graphs, EnsureIn must have been called.
func (g *Graph) InDegree(v VertexID) int {
	if g.adopted != nil {
		return g.adopted.InDegree(v)
	}
	if !g.Directed {
		return len(g.Out[v])
	}
	if g.In == nil {
		panic("graph: InDegree on directed graph before EnsureIn")
	}
	return len(g.In[v])
}

// TotalDegree returns d(v) for undirected graphs and
// d_in(v)+d_out(v) for directed graphs (with In built).
func (g *Graph) TotalDegree(v VertexID) int {
	if g.adopted != nil {
		return g.adopted.TotalDegree(v)
	}
	if !g.Directed {
		return len(g.Out[v])
	}
	return len(g.Out[v]) + g.InDegree(v)
}

// Neighbors returns the out-neighbor IDs of v in adjacency order.
//
// Each call allocates a fresh slice, so Neighbors is for tests, cold
// paths, and callers that retain the result. Hot loops should iterate
// CSR().Out(v) (an alias into the snapshot, allocation-free) or use
// CSR().ForEachOut instead.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	if g.adopted != nil {
		return g.adopted.Out(v)
	}
	out := make([]VertexID, len(g.Out[v]))
	for i, e := range g.Out[v] {
		out[i] = e.Dst
	}
	return out
}

// EnsureIn builds the in-adjacency lists of a directed graph. It is a
// no-op for undirected graphs or if already built.
func (g *Graph) EnsureIn() {
	if g.adopted != nil {
		g.adopted.EnsureIn()
		return
	}
	if !g.Directed || g.In != nil {
		return
	}
	in := make([][]Edge, g.N())
	for u := range g.Out {
		for _, e := range g.Out[u] {
			in[e.Dst] = append(in[e.Dst], Edge{Dst: VertexID(u), W: e.W, L: e.L})
		}
	}
	g.In = in
}

// CSR returns the cached immutable CSR snapshot of the graph, building
// it on first use and rebuilding after mutations made through the Graph
// API. The snapshot preserves adjacency order exactly, so iterating its
// spans is interchangeable with iterating Out.
func (g *Graph) CSR() *CSR {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.csrLocked()
}

func (g *Graph) csrLocked() *CSR {
	if g.adopted != nil {
		return g.adopted
	}
	if g.csr == nil || g.csrVersion != g.version {
		g.csr = g.buildSnapshotLocked()
		g.csrVersion = g.version
		// A fresh full build is also a fresh overlay base: re-basing
		// here keeps delta spans no longer than mutations-since-last-
		// snapshot, so a graph that is pinned between batches pays
		// near-zero overlay cost.
		if g.delta != nil {
			g.rebaseLocked(g.csr)
		}
	}
	return g.csr
}

// buildSnapshotLocked builds a fresh snapshot in the representation the
// Encoding knob selects. Every snapshot build — cache refresh, delta
// rebase, RebuildEvery amortized rebuild — goes through here, so a
// packed graph never silently republishes a flat generation.
func (g *Graph) buildSnapshotLocked() *CSR {
	if g.Encoding == EncodePacked {
		return BuildPackedCSR(g)
	}
	return BuildCSR(g)
}

// Pin returns the current CSR snapshot with a reference held on it:
// the snapshot stays consistent (it is immutable) no matter how the
// graph is mutated and republished afterwards. Every Pin must be paired
// with an Unpin of the same snapshot; Pins reports the outstanding
// count so tests and the serving layer can verify that finished jobs
// released their views.
func (g *Graph) Pin() *CSR {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.csrLocked()
	if g.pins == nil {
		g.pins = make(map[*CSR]int)
	}
	g.pins[c]++
	return c
}

// PinSnapshot takes an additional reference on an already-pinned
// snapshot, so a multi-segment computation (the adaptive plan layer's
// engine handoff) can hand the same generation to several engine
// prepares even while writers mutate and republish the graph in
// between. It panics if c is not currently pinned — the caller must
// hold its own Pin for the duration.
func (g *Graph) PinSnapshot(c *CSR) *CSR {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.pins[c] == 0 {
		panic("graph: PinSnapshot of a snapshot that is not pinned")
	}
	g.pins[c]++
	return c
}

// Unpin releases one reference on a snapshot returned by Pin.
func (g *Graph) Unpin(c *CSR) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.pins[c] == 0 {
		panic("graph: Unpin of a snapshot that is not pinned")
	}
	if g.pins[c]--; g.pins[c] == 0 {
		delete(g.pins, c)
	}
}

// Pins returns the total number of outstanding pinned references
// across all snapshot generations.
func (g *Graph) Pins() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	total := 0
	for _, n := range g.pins {
		total += n
	}
	return total
}

// Invalidate discards the cached CSR snapshot (pinned references keep
// their generation alive and untouched). Mutators in this package call
// it automatically; call it manually after rewriting Out/Labels slices
// directly.
//
// Invalidate also marks an out-of-band mutation for the evolving-graph
// machinery: the epoch advances with no batch recorded, the retained
// mutation log is discarded (MutationsSince for older epochs reports
// !ok, forcing incremental consumers to cold-start), and the delta
// overlay is dropped so PinDelta re-bases on a fresh full build.
func (g *Graph) Invalidate() {
	if g.adopted != nil {
		panic("graph: mutation of an adopted (mmap-backed) graph")
	}
	g.mu.Lock()
	g.version++
	g.csr = nil
	g.epoch++
	g.log = nil
	g.delta = nil
	g.deltaBase = nil
	g.deltaView = nil
	g.mu.Unlock()
}

// SortAdjacency sorts every adjacency list by destination ID. Several
// algorithms (Euler tour, deterministic traversals) assume sorted
// adjacency.
func (g *Graph) SortAdjacency() {
	g.Invalidate()
	for v := range g.Out {
		sort.Slice(g.Out[v], func(i, j int) bool { return g.Out[v][i].Dst < g.Out[v][j].Dst })
	}
	if g.In != nil {
		for v := range g.In {
			sort.Slice(g.In[v], func(i, j int) bool { return g.In[v][i].Dst < g.In[v][j].Dst })
		}
	}
}

// UndirectedEdge is a canonical undirected edge with U <= V.
type UndirectedEdge struct {
	U, V VertexID
	W    float64
}

// UndirectedEdges returns each undirected edge once, sorted by (U, V).
// Self-loops are returned once. Panics on directed graphs.
func (g *Graph) UndirectedEdges() []UndirectedEdge {
	if g.Directed {
		panic("graph: UndirectedEdges on directed graph")
	}
	var out []UndirectedEdge
	for u := range g.Out {
		for _, e := range g.Out[u] {
			if VertexID(u) <= e.Dst {
				out = append(out, UndirectedEdge{U: VertexID(u), V: e.Dst, W: e.W})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Underlying returns the undirected graph obtained by forgetting edge
// directions (parallel edges between a pair collapse to one, keeping the
// smaller weight; self-loops dropped). For undirected graphs it returns
// the receiver.
func (g *Graph) Underlying() *Graph {
	if !g.Directed {
		return g
	}
	u := New(g.N(), false)
	seen := make(map[[2]VertexID]float64)
	for a := range g.Out {
		for _, e := range g.Out[a] {
			x, y := VertexID(a), e.Dst
			if x == y {
				continue
			}
			if x > y {
				x, y = y, x
			}
			k := [2]VertexID{x, y}
			if w, ok := seen[k]; !ok || e.W < w {
				seen[k] = e.W
			}
		}
	}
	keys := make([][2]VertexID, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		u.AddWeightedEdge(k[0], k[1], seen[k])
	}
	return u
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{Directed: g.Directed, numEdges: g.numEdges}
	c.Out = make([][]Edge, len(g.Out))
	for v := range g.Out {
		c.Out[v] = append([]Edge(nil), g.Out[v]...)
	}
	if g.In != nil {
		c.In = make([][]Edge, len(g.In))
		for v := range g.In {
			c.In[v] = append([]Edge(nil), g.In[v]...)
		}
	}
	if g.Labels != nil {
		c.Labels = append([]string(nil), g.Labels...)
	}
	return c
}

// Validate checks structural invariants and returns an error describing
// the first violation: destination IDs in range, undirected symmetry,
// and label slice length.
func (g *Graph) Validate() error {
	n := VertexID(g.N())
	for u := range g.Out {
		for _, e := range g.Out[u] {
			if e.Dst < 0 || e.Dst >= n {
				return fmt.Errorf("graph: vertex %d has out-edge to %d, out of range [0,%d)", u, e.Dst, n)
			}
		}
	}
	if g.Labels != nil && len(g.Labels) != g.N() {
		return fmt.Errorf("graph: %d labels for %d vertices", len(g.Labels), g.N())
	}
	if !g.Directed {
		type key struct {
			u, v VertexID
		}
		cnt := make(map[key]int)
		for u := range g.Out {
			for _, e := range g.Out[u] {
				cnt[key{VertexID(u), e.Dst}]++
			}
		}
		for k, c := range cnt {
			if k.u == k.v {
				continue
			}
			if cnt[key{k.v, k.u}] != c {
				return fmt.Errorf("graph: asymmetric undirected adjacency between %d and %d", k.u, k.v)
			}
		}
	}
	return nil
}
