package graph

import "sync"

// CSR is an immutable compressed-sparse-row snapshot of a Graph: the
// flat adjacency layout every engine's hot loop iterates instead of the
// mutable [][]Edge builder. Where an Edge costs 32 bytes per adjacency
// entry (a 16-byte label-string header even on unlabeled graphs) and a
// pointer dereference per vertex, the snapshot packs destinations into
// one contiguous []VertexID (4 bytes per entry) with side arrays for
// weights and interned labels that are simply absent (nil) when the
// graph is unweighted or unlabeled.
//
// Layout:
//
//	Offsets  [n+1]int32   — out-adjacency of v is the index range
//	                        [Offsets[v], Offsets[v+1])
//	Dsts     [e]VertexID  — destination of each entry, builder order
//	Weights  [e]float64   — nil when every weight is 1
//	LabelIDs [e]int32     — nil when every label is ""; indexes Labels
//	Labels   [k]string    — interned label table (Labels[0] == "")
//
// The transpose (in-CSR) shares the same shape (reached through the In
// accessors) and is built on demand by EnsureIn with an O(m)
// counting sort — never a comparison sort. For undirected graphs the
// transpose aliases the out arrays (in-adjacency == out-adjacency).
//
// A CSR is immutable after construction: engines may share one snapshot
// across concurrent runs. Obtain the per-graph cached snapshot with
// Graph.CSR.
type CSR struct {
	Directed bool

	Offsets  []int32
	Dsts     []VertexID
	Weights  []float64
	LabelIDs []int32
	Labels   []string

	numEdges int

	// Transpose, nil until EnsureIn (aliases the out arrays for
	// undirected graphs); reached through the In accessors. inSrcs is
	// ordered by source ascending within each vertex's span, matching
	// Graph.EnsureIn's iteration order. inOnce makes the lazy build
	// safe when concurrent jobs share one pinned snapshot.
	inOnce     sync.Once
	inOffsets  []int32
	inSrcs     []VertexID
	inWeights  []float64
	inLabelIDs []int32
}

// BuildCSR builds a CSR snapshot of g. Adjacency order is preserved
// exactly (entry i of g.Out[v] becomes entry Offsets[v]+i), so engines
// that migrate from [][]Edge iteration to CSR spans keep byte-identical
// message and float-summation order. Prefer Graph.CSR, which caches the
// snapshot on the graph and rebuilds it only after mutations.
func BuildCSR(g *Graph) *CSR {
	n := g.N()
	c := &CSR{
		Directed: g.Directed,
		Offsets:  make([]int32, n+1),
		numEdges: g.M(),
	}
	total := 0
	hasW, hasL := false, false
	for v := 0; v < n; v++ {
		total += len(g.Out[v])
		c.Offsets[v+1] = int32(total)
		for i := range g.Out[v] {
			e := &g.Out[v][i]
			if e.W != 1 {
				hasW = true
			}
			if e.L != "" {
				hasL = true
			}
		}
	}
	c.Dsts = make([]VertexID, total)
	if hasW {
		c.Weights = make([]float64, total)
	}
	var intern map[string]int32
	if hasL {
		c.LabelIDs = make([]int32, total)
		c.Labels = []string{""}
		intern = map[string]int32{"": 0}
	}
	idx := 0
	for v := 0; v < n; v++ {
		for i := range g.Out[v] {
			e := &g.Out[v][i]
			c.Dsts[idx] = e.Dst
			if hasW {
				c.Weights[idx] = e.W
			}
			if hasL {
				id, ok := intern[e.L]
				if !ok {
					id = int32(len(c.Labels))
					c.Labels = append(c.Labels, e.L)
					intern[e.L] = id
				}
				c.LabelIDs[idx] = id
			}
			idx++
		}
	}
	return c
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.Offsets) - 1 }

// M returns the number of edges (undirected edges counted once,
// matching Graph.M).
func (c *CSR) M() int { return c.numEdges }

// NumEntries returns the number of adjacency entries (directed edges,
// or 2·M minus self-loops for undirected graphs).
func (c *CSR) NumEntries() int { return len(c.Dsts) }

// OutDegree returns the out-degree of v.
func (c *CSR) OutDegree(v VertexID) int { return int(c.Offsets[v+1] - c.Offsets[v]) }

// Out returns v's out-neighbor span in adjacency order. The slice
// aliases the snapshot and must not be modified.
func (c *CSR) Out(v VertexID) []VertexID { return c.Dsts[c.Offsets[v]:c.Offsets[v+1]] }

// OutWeights returns v's out-edge weight span, aligned with Out(v), or
// nil when the graph is unweighted (every weight 1).
func (c *CSR) OutWeights(v VertexID) []float64 {
	if c.Weights == nil {
		return nil
	}
	return c.Weights[c.Offsets[v]:c.Offsets[v+1]]
}

// OutRange returns the [lo, hi) index range of v's out-entries in
// Dsts/Weights/LabelIDs, for callers indexing the flat arrays directly.
func (c *CSR) OutRange(v VertexID) (lo, hi int32) { return c.Offsets[v], c.Offsets[v+1] }

// Weight returns the weight of the adjacency entry at flat index i.
func (c *CSR) Weight(i int32) float64 {
	if c.Weights == nil {
		return 1
	}
	return c.Weights[i]
}

// EdgeLabel returns the label of the adjacency entry at flat index i.
func (c *CSR) EdgeLabel(i int32) string {
	if c.LabelIDs == nil {
		return ""
	}
	return c.Labels[c.LabelIDs[i]]
}

// ForEachOut calls f for every out-edge of v in adjacency order,
// without allocating: the allocation-free replacement for iterating
// Graph.Out[v] or copying Neighbors.
func (c *CSR) ForEachOut(v VertexID, f func(dst VertexID, w float64)) {
	lo, hi := c.Offsets[v], c.Offsets[v+1]
	if c.Weights == nil {
		for _, d := range c.Dsts[lo:hi] {
			f(d, 1)
		}
		return
	}
	for i := lo; i < hi; i++ {
		f(c.Dsts[i], c.Weights[i])
	}
}

// AppendOutEdges appends v's out-adjacency to buf as Edge values
// (materializing weights and interned labels) and returns the extended
// slice. Cold paths that still want []Edge use this; hot paths iterate
// the spans directly.
func (c *CSR) AppendOutEdges(buf []Edge, v VertexID) []Edge {
	lo, hi := c.Offsets[v], c.Offsets[v+1]
	for i := lo; i < hi; i++ {
		buf = append(buf, Edge{Dst: c.Dsts[i], W: c.Weight(i), L: c.EdgeLabel(i)})
	}
	return buf
}

// EnsureIn builds the transpose (in-CSR) with an O(n+m) counting sort:
// in-degrees are histogrammed into offsets, then one pass over the
// out-entries in source order scatters each entry into its slot — so
// every vertex's in-span is ordered by source ascending, matching the
// order Graph.EnsureIn produces. For undirected graphs the transpose
// aliases the out arrays. EnsureIn is idempotent and safe to call from
// concurrent jobs sharing one pinned snapshot; the In accessors are
// safe once the caller's EnsureIn has returned.
func (c *CSR) EnsureIn() { c.inOnce.Do(c.buildIn) }

func (c *CSR) buildIn() {
	if !c.Directed {
		c.inOffsets = c.Offsets
		c.inSrcs = c.Dsts
		c.inWeights = c.Weights
		c.inLabelIDs = c.LabelIDs
		return
	}
	n := c.N()
	off := make([]int32, n+1)
	for _, d := range c.Dsts {
		off[d+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	srcs := make([]VertexID, len(c.Dsts))
	var ws []float64
	if c.Weights != nil {
		ws = make([]float64, len(c.Weights))
	}
	var ls []int32
	if c.LabelIDs != nil {
		ls = make([]int32, len(c.LabelIDs))
	}
	pos := make([]int32, n)
	copy(pos, off[:n])
	for u := 0; u < n; u++ {
		lo, hi := c.Offsets[u], c.Offsets[u+1]
		for i := lo; i < hi; i++ {
			d := c.Dsts[i]
			p := pos[d]
			pos[d] = p + 1
			srcs[p] = VertexID(u)
			if ws != nil {
				ws[p] = c.Weights[i]
			}
			if ls != nil {
				ls[p] = c.LabelIDs[i]
			}
		}
	}
	c.inOffsets = off
	c.inSrcs = srcs
	c.inWeights = ws
	c.inLabelIDs = ls
}

// InDegree returns the in-degree of v (the degree, for undirected
// graphs). EnsureIn must have been called for directed graphs.
func (c *CSR) InDegree(v VertexID) int {
	if !c.Directed {
		return c.OutDegree(v)
	}
	if c.inOffsets == nil {
		panic("graph: CSR.InDegree on directed graph before EnsureIn")
	}
	return int(c.inOffsets[v+1] - c.inOffsets[v])
}

// TotalDegree returns d(v) for undirected graphs and d_in(v)+d_out(v)
// for directed graphs, building the transpose if needed.
func (c *CSR) TotalDegree(v VertexID) int {
	if !c.Directed {
		return c.OutDegree(v)
	}
	c.EnsureIn()
	return c.OutDegree(v) + c.InDegree(v)
}

// In returns v's in-neighbor (source) span, ordered by source
// ascending. EnsureIn must have been called for directed graphs; for
// undirected graphs it returns Out(v).
func (c *CSR) In(v VertexID) []VertexID {
	if !c.Directed {
		return c.Out(v)
	}
	return c.inSrcs[c.inOffsets[v]:c.inOffsets[v+1]]
}

// InWeights returns v's in-edge weight span aligned with In(v), or nil
// when the graph is unweighted.
func (c *CSR) InWeights(v VertexID) []float64 {
	if !c.Directed {
		return c.OutWeights(v)
	}
	if c.inWeights == nil {
		return nil
	}
	return c.inWeights[c.inOffsets[v]:c.inOffsets[v+1]]
}

// ForEachIn calls f for every in-edge (src -> v) without allocating.
// EnsureIn must have been called for directed graphs.
func (c *CSR) ForEachIn(v VertexID, f func(src VertexID, w float64)) {
	if !c.Directed {
		c.ForEachOut(v, f)
		return
	}
	lo, hi := c.inOffsets[v], c.inOffsets[v+1]
	if c.inWeights == nil {
		for _, s := range c.inSrcs[lo:hi] {
			f(s, 1)
		}
		return
	}
	for i := lo; i < hi; i++ {
		f(c.inSrcs[i], c.inWeights[i])
	}
}

// AppendInEdges appends v's in-adjacency to buf as Edge values with
// Dst holding the *source* vertex (mirroring Graph.In's convention) and
// returns the extended slice. EnsureIn must have been called for
// directed graphs.
func (c *CSR) AppendInEdges(buf []Edge, v VertexID) []Edge {
	if !c.Directed {
		return c.AppendOutEdges(buf, v)
	}
	lo, hi := c.inOffsets[v], c.inOffsets[v+1]
	for i := lo; i < hi; i++ {
		w := 1.0
		if c.inWeights != nil {
			w = c.inWeights[i]
		}
		l := ""
		if c.inLabelIDs != nil {
			l = c.Labels[c.inLabelIDs[i]]
		}
		buf = append(buf, Edge{Dst: c.inSrcs[i], W: w, L: l})
	}
	return buf
}
