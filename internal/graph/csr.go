package graph

import "sync"

// CSR is an immutable compressed-sparse-row snapshot of a Graph: the
// flat adjacency layout every engine's hot loop iterates instead of the
// mutable [][]Edge builder. Where an Edge costs 32 bytes per adjacency
// entry (a 16-byte label-string header even on unlabeled graphs) and a
// pointer dereference per vertex, the snapshot packs destinations into
// one contiguous []VertexID (4 bytes per entry) with side arrays for
// weights and interned labels that are simply absent (nil) when the
// graph is unweighted or unlabeled.
//
// Layout:
//
//	Offsets  [n+1]int32   — out-adjacency of v is the index range
//	                        [Offsets[v], Offsets[v+1])
//	Dsts     [e]VertexID  — destination of each entry, builder order
//	Weights  [e]float64   — nil when every weight is 1
//	LabelIDs [e]int32     — nil when every label is ""; indexes Labels
//	Labels   [k]string    — interned label table (Labels[0] == "")
//
// The transpose (in-CSR) shares the same shape (reached through the In
// accessors) and is built on demand by EnsureIn with an O(m)
// counting sort — never a comparison sort. For undirected graphs the
// transpose aliases the out arrays (in-adjacency == out-adjacency).
//
// A CSR is immutable after construction: engines may share one snapshot
// across concurrent runs. Obtain the per-graph cached snapshot with
// Graph.CSR.
type CSR struct {
	Directed bool

	Offsets  []int32
	Dsts     []VertexID // nil when destinations are packed (see packed)
	Weights  []float64
	LabelIDs []int32
	Labels   []string

	// packed, when non-nil, replaces Dsts with the varint-delta block
	// representation (codec.go): Offsets/Weights/LabelIDs keep their
	// flat layout and flat indices, only the destination array is
	// compressed. Built by BuildPackedCSR or CompressCSR; read through
	// the same accessors as the flat form (Out allocates per call on a
	// packed snapshot — hot loops use OutSpan/ForEachOut instead).
	packed *packedEdges

	numEdges int

	// Transpose, nil until EnsureIn (aliases the out arrays for
	// undirected graphs); reached through the In accessors. inSrcs is
	// ordered by source ascending within each vertex's span, matching
	// Graph.EnsureIn's iteration order. inOnce makes the lazy build
	// safe when concurrent jobs share one pinned snapshot. When the out
	// side is packed the transpose is packed too (inPacked replaces
	// inSrcs).
	inOnce     sync.Once
	inOffsets  []int32
	inSrcs     []VertexID
	inWeights  []float64
	inLabelIDs []int32
	inPacked   *packedEdges
}

// Packed reports whether the snapshot's destination arrays are
// varint-delta compressed.
func (c *CSR) Packed() bool { return c.packed != nil }

// EdgeBytes returns the retained size in bytes of the snapshot's edge
// arrays (offsets + destinations, plus the transpose if built; weights
// and labels excluded — they are identical across representations).
// The honest numerator of the edges-per-GB headline.
func (c *CSR) EdgeBytes() int {
	total := 4 * len(c.Offsets)
	if c.packed != nil {
		total += c.packed.sizeBytes()
	} else {
		total += 4 * len(c.Dsts)
	}
	if c.Directed && c.inOffsets != nil {
		total += 4 * len(c.inOffsets)
		if c.inPacked != nil {
			total += c.inPacked.sizeBytes()
		} else {
			total += 4 * len(c.inSrcs)
		}
	}
	return total
}

// BuildCSR builds a CSR snapshot of g. Adjacency order is preserved
// exactly (entry i of g.Out[v] becomes entry Offsets[v]+i), so engines
// that migrate from [][]Edge iteration to CSR spans keep byte-identical
// message and float-summation order. Prefer Graph.CSR, which caches the
// snapshot on the graph and rebuilds it only after mutations.
func BuildCSR(g *Graph) *CSR {
	n := g.N()
	c := &CSR{
		Directed: g.Directed,
		Offsets:  make([]int32, n+1),
		numEdges: g.M(),
	}
	total := 0
	hasW, hasL := false, false
	for v := 0; v < n; v++ {
		total += len(g.Out[v])
		c.Offsets[v+1] = int32(total)
		for i := range g.Out[v] {
			e := &g.Out[v][i]
			if e.W != 1 {
				hasW = true
			}
			if e.L != "" {
				hasL = true
			}
		}
	}
	c.Dsts = make([]VertexID, total)
	if hasW {
		c.Weights = make([]float64, total)
	}
	var intern map[string]int32
	if hasL {
		c.LabelIDs = make([]int32, total)
		c.Labels = []string{""}
		intern = map[string]int32{"": 0}
	}
	idx := 0
	for v := 0; v < n; v++ {
		for i := range g.Out[v] {
			e := &g.Out[v][i]
			c.Dsts[idx] = e.Dst
			if hasW {
				c.Weights[idx] = e.W
			}
			if hasL {
				id, ok := intern[e.L]
				if !ok {
					id = int32(len(c.Labels))
					c.Labels = append(c.Labels, e.L)
					intern[e.L] = id
				}
				c.LabelIDs[idx] = id
			}
			idx++
		}
	}
	return c
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.Offsets) - 1 }

// M returns the number of edges (undirected edges counted once,
// matching Graph.M).
func (c *CSR) M() int { return c.numEdges }

// NumEntries returns the number of adjacency entries (directed edges,
// or 2·M minus self-loops for undirected graphs).
func (c *CSR) NumEntries() int {
	if c.packed != nil {
		return int(c.packed.n)
	}
	return len(c.Dsts)
}

// OutDegree returns the out-degree of v.
func (c *CSR) OutDegree(v VertexID) int { return int(c.Offsets[v+1] - c.Offsets[v]) }

// Out returns v's out-neighbor span in adjacency order. On a flat
// snapshot the slice aliases the snapshot and must not be modified; on
// a packed snapshot every call decodes into a fresh allocation, so hot
// loops over packed snapshots use OutSpan or ForEachOut instead.
func (c *CSR) Out(v VertexID) []VertexID {
	lo, hi := c.Offsets[v], c.Offsets[v+1]
	if c.packed == nil {
		return c.Dsts[lo:hi]
	}
	if lo == hi {
		return nil
	}
	return c.packed.appendRange(make([]VertexID, 0, hi-lo), lo, hi)
}

// DstAt returns the destination of the adjacency entry at flat index i.
// O(1) on flat snapshots; O(edgeBlockLen) on packed ones — for cold
// flat-index paths (the mutation overlay), not hot loops.
func (c *CSR) DstAt(i int32) VertexID {
	if c.packed == nil {
		return c.Dsts[i]
	}
	return c.packed.at(i)
}

// OutWeights returns v's out-edge weight span, aligned with Out(v), or
// nil when the graph is unweighted (every weight 1).
func (c *CSR) OutWeights(v VertexID) []float64 {
	if c.Weights == nil {
		return nil
	}
	return c.Weights[c.Offsets[v]:c.Offsets[v+1]]
}

// OutRange returns the [lo, hi) index range of v's out-entries in
// Dsts/Weights/LabelIDs, for callers indexing the flat arrays directly.
func (c *CSR) OutRange(v VertexID) (lo, hi int32) { return c.Offsets[v], c.Offsets[v+1] }

// Weight returns the weight of the adjacency entry at flat index i.
func (c *CSR) Weight(i int32) float64 {
	if c.Weights == nil {
		return 1
	}
	return c.Weights[i]
}

// EdgeLabel returns the label of the adjacency entry at flat index i.
func (c *CSR) EdgeLabel(i int32) string {
	if c.LabelIDs == nil {
		return ""
	}
	return c.Labels[c.LabelIDs[i]]
}

// ForEachOut calls f for every out-edge of v in adjacency order,
// without allocating: the allocation-free replacement for iterating
// Graph.Out[v] or copying Neighbors.
func (c *CSR) ForEachOut(v VertexID, f func(dst VertexID, w float64)) {
	lo, hi := c.Offsets[v], c.Offsets[v+1]
	if c.packed != nil {
		if c.Weights == nil {
			c.packed.forEachRange(lo, hi, func(_ int32, d VertexID) { f(d, 1) })
		} else {
			c.packed.forEachRange(lo, hi, func(i int32, d VertexID) { f(d, c.Weights[i]) })
		}
		return
	}
	if c.Weights == nil {
		for _, d := range c.Dsts[lo:hi] {
			f(d, 1)
		}
		return
	}
	for i := lo; i < hi; i++ {
		f(c.Dsts[i], c.Weights[i])
	}
}

// forEachOutIdx calls f(i, dst) for every out-entry of v with its flat
// index, decoding packed blocks into a stack buffer. The flat-index
// iterator behind the mutation overlay's tombstone walk.
func (c *CSR) forEachOutIdx(v VertexID, f func(i int32, dst VertexID)) {
	lo, hi := c.Offsets[v], c.Offsets[v+1]
	if c.packed != nil {
		c.packed.forEachRange(lo, hi, f)
		return
	}
	for i := lo; i < hi; i++ {
		f(i, c.Dsts[i])
	}
}

// AppendOutEdges appends v's out-adjacency to buf as Edge values
// (materializing weights and interned labels) and returns the extended
// slice. Cold paths that still want []Edge use this; hot paths iterate
// the spans directly.
func (c *CSR) AppendOutEdges(buf []Edge, v VertexID) []Edge {
	c.forEachOutIdx(v, func(i int32, d VertexID) {
		buf = append(buf, Edge{Dst: d, W: c.Weight(i), L: c.EdgeLabel(i)})
	})
	return buf
}

// EnsureIn builds the transpose (in-CSR) with an O(n+m) counting sort:
// in-degrees are histogrammed into offsets, then one pass over the
// out-entries in source order scatters each entry into its slot — so
// every vertex's in-span is ordered by source ascending, matching the
// order Graph.EnsureIn produces. For undirected graphs the transpose
// aliases the out arrays. EnsureIn is idempotent and safe to call from
// concurrent jobs sharing one pinned snapshot; the In accessors are
// safe once the caller's EnsureIn has returned.
func (c *CSR) EnsureIn() { c.inOnce.Do(c.buildIn) }

func (c *CSR) buildIn() {
	if !c.Directed {
		c.inOffsets = c.Offsets
		c.inSrcs = c.Dsts
		c.inWeights = c.Weights
		c.inLabelIDs = c.LabelIDs
		c.inPacked = c.packed
		return
	}
	n := c.N()
	entries := c.NumEntries()
	off := make([]int32, n+1)
	eachDst := func(f func(i int32, d VertexID)) {
		if c.packed != nil {
			c.packed.forEachRange(0, int32(entries), f)
			return
		}
		for i, d := range c.Dsts {
			f(int32(i), d)
		}
	}
	eachDst(func(_ int32, d VertexID) { off[d+1]++ })
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	srcs := make([]VertexID, entries)
	var ws []float64
	if c.Weights != nil {
		ws = make([]float64, len(c.Weights))
	}
	var ls []int32
	if c.LabelIDs != nil {
		ls = make([]int32, len(c.LabelIDs))
	}
	pos := make([]int32, n)
	copy(pos, off[:n])
	for u := 0; u < n; u++ {
		uu := VertexID(u)
		c.forEachOutIdx(uu, func(i int32, d VertexID) {
			p := pos[d]
			pos[d] = p + 1
			srcs[p] = uu
			if ws != nil {
				ws[p] = c.Weights[i]
			}
			if ls != nil {
				ls[p] = c.LabelIDs[i]
			}
		})
	}
	c.inOffsets = off
	if c.packed != nil {
		// Mirror the out side: a packed snapshot packs its transpose
		// too (in-spans are sorted by source ascending, so they
		// compress even better than builder-order out-spans).
		c.inPacked = packEdges(srcs)
	} else {
		c.inSrcs = srcs
	}
	c.inWeights = ws
	c.inLabelIDs = ls
}

// InDegree returns the in-degree of v (the degree, for undirected
// graphs). EnsureIn must have been called for directed graphs.
func (c *CSR) InDegree(v VertexID) int {
	if !c.Directed {
		return c.OutDegree(v)
	}
	if c.inOffsets == nil {
		panic("graph: CSR.InDegree on directed graph before EnsureIn")
	}
	return int(c.inOffsets[v+1] - c.inOffsets[v])
}

// TotalDegree returns d(v) for undirected graphs and d_in(v)+d_out(v)
// for directed graphs, building the transpose if needed.
func (c *CSR) TotalDegree(v VertexID) int {
	if !c.Directed {
		return c.OutDegree(v)
	}
	c.EnsureIn()
	return c.OutDegree(v) + c.InDegree(v)
}

// In returns v's in-neighbor (source) span, ordered by source
// ascending. EnsureIn must have been called for directed graphs; for
// undirected graphs it returns Out(v). On a packed snapshot every call
// decodes into a fresh allocation (see Out); hot loops use InSpan or
// ForEachIn.
func (c *CSR) In(v VertexID) []VertexID {
	if !c.Directed {
		return c.Out(v)
	}
	lo, hi := c.inOffsets[v], c.inOffsets[v+1]
	if c.inPacked == nil {
		return c.inSrcs[lo:hi]
	}
	if lo == hi {
		return nil
	}
	return c.inPacked.appendRange(make([]VertexID, 0, hi-lo), lo, hi)
}

// InSrcAt returns the source of the transpose entry at flat index i
// (see DstAt for the cost model). EnsureIn must have been called.
func (c *CSR) InSrcAt(i int32) VertexID {
	if c.inPacked == nil {
		return c.inSrcs[i]
	}
	return c.inPacked.at(i)
}

// forEachInIdx calls f(i, src) for every in-entry of v with its flat
// transpose index. EnsureIn must have been called for directed graphs.
func (c *CSR) forEachInIdx(v VertexID, f func(i int32, src VertexID)) {
	if !c.Directed {
		c.forEachOutIdx(v, f)
		return
	}
	lo, hi := c.inOffsets[v], c.inOffsets[v+1]
	if c.inPacked != nil {
		c.inPacked.forEachRange(lo, hi, f)
		return
	}
	for i := lo; i < hi; i++ {
		f(i, c.inSrcs[i])
	}
}

// InWeights returns v's in-edge weight span aligned with In(v), or nil
// when the graph is unweighted.
func (c *CSR) InWeights(v VertexID) []float64 {
	if !c.Directed {
		return c.OutWeights(v)
	}
	if c.inWeights == nil {
		return nil
	}
	return c.inWeights[c.inOffsets[v]:c.inOffsets[v+1]]
}

// ForEachIn calls f for every in-edge (src -> v) without allocating.
// EnsureIn must have been called for directed graphs.
func (c *CSR) ForEachIn(v VertexID, f func(src VertexID, w float64)) {
	if !c.Directed {
		c.ForEachOut(v, f)
		return
	}
	lo, hi := c.inOffsets[v], c.inOffsets[v+1]
	if c.inPacked != nil {
		if c.inWeights == nil {
			c.inPacked.forEachRange(lo, hi, func(_ int32, s VertexID) { f(s, 1) })
		} else {
			c.inPacked.forEachRange(lo, hi, func(i int32, s VertexID) { f(s, c.inWeights[i]) })
		}
		return
	}
	if c.inWeights == nil {
		for _, s := range c.inSrcs[lo:hi] {
			f(s, 1)
		}
		return
	}
	for i := lo; i < hi; i++ {
		f(c.inSrcs[i], c.inWeights[i])
	}
}

// AppendInEdges appends v's in-adjacency to buf as Edge values with
// Dst holding the *source* vertex (mirroring Graph.In's convention) and
// returns the extended slice. EnsureIn must have been called for
// directed graphs.
func (c *CSR) AppendInEdges(buf []Edge, v VertexID) []Edge {
	if !c.Directed {
		return c.AppendOutEdges(buf, v)
	}
	c.forEachInIdx(v, func(i int32, s VertexID) {
		w := 1.0
		if c.inWeights != nil {
			w = c.inWeights[i]
		}
		l := ""
		if c.inLabelIDs != nil {
			l = c.Labels[c.inLabelIDs[i]]
		}
		buf = append(buf, Edge{Dst: s, W: w, L: l})
	})
	return buf
}
