package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SNAPOptions control ReadSNAP's parsing policy. The zero value matches
// the most common SNAP corpus shape: an undirected simple graph with
// self-loops and duplicate edges dropped.
type SNAPOptions struct {
	// Directed preserves edge direction; otherwise each pair is one
	// undirected edge (and its reverse appearance is a duplicate).
	Directed bool
	// KeepSelfLoops retains u-u edges instead of dropping them.
	KeepSelfLoops bool
	// KeepDuplicates retains repeated pairs as parallel edges instead
	// of keeping only the first appearance. For undirected graphs a
	// pair and its reverse count as the same edge.
	KeepDuplicates bool
	// KeepIDs records each vertex's original token as its label, so
	// results can be mapped back to the dataset's own IDs. Costs one
	// string per vertex.
	KeepIDs bool
}

// ReadSNAP parses a SNAP-style / TSV edge list: one whitespace-delimited
// vertex pair per line (an optional third field is the edge weight),
// lines starting with '#' or '%' and blank lines ignored. Vertex IDs
// are arbitrary tokens — LiveJournal-style integer IDs with gaps, or
// strings — interned to dense VertexIDs deterministically in first-
// appearance order (left field before right, line order), so the same
// file always produces the same graph. Adjacency is sorted before
// returning (the deterministic order the algorithms assume, and the
// order under which the packed encoding compresses best); for directed
// graphs the in-adjacency is built.
func ReadSNAP(r io.Reader, opt SNAPOptions) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	intern := make(map[string]VertexID)
	var labels []string
	id := func(tok string) VertexID {
		if v, ok := intern[tok]; ok {
			return v
		}
		v := VertexID(len(intern))
		intern[tok] = v
		if opt.KeepIDs {
			labels = append(labels, tok)
		}
		return v
	}
	type pair struct {
		u, v VertexID
		w    float64
	}
	var edges []pair
	var seen map[[2]VertexID]struct{}
	if !opt.KeepDuplicates {
		seen = make(map[[2]VertexID]struct{})
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: snap line %d: want 'src dst [weight]', got %d fields", line, len(fields))
		}
		w := 1.0
		if len(fields) == 3 {
			var err error
			if w, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("graph: snap line %d: bad weight %q", line, fields[2])
			}
		}
		u, v := id(fields[0]), id(fields[1])
		if u == v && !opt.KeepSelfLoops {
			continue
		}
		if seen != nil {
			k := [2]VertexID{u, v}
			if !opt.Directed && u > v {
				k = [2]VertexID{v, u}
			}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
		}
		edges = append(edges, pair{u, v, w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := New(len(intern), opt.Directed)
	if opt.KeepIDs {
		g.Labels = labels
	}
	for _, e := range edges {
		g.AddWeightedEdge(e.u, e.v, e.w)
	}
	if g.Directed {
		g.EnsureIn()
	}
	g.SortAdjacency()
	return g, nil
}
