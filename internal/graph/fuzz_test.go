package graph

import (
	"reflect"
	"testing"
)

// Fuzz targets for the random generators. Each clamps the fuzzed
// parameters into the supported domain, builds the graph twice (same
// seed must reproduce the same graph), and checks the structural
// invariants the engines rely on: Validate passes, adjacency is
// symmetric with no self-loops or duplicates, the degree sum matches
// the edge count, and the shape-specific guarantees (tree = connected
// with n-1 edges, preferential attachment = connected) hold.
//
// The f.Add corpora double as the seeded smoke suite: `go test` runs
// them on every invocation, `make fuzz-smoke` explores further.

func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	degSum := 0
	for u := range g.Out {
		seen := make(map[VertexID]bool, len(g.Out[u]))
		for _, e := range g.Out[u] {
			if e.Dst == VertexID(u) {
				t.Fatalf("self-loop at vertex %d", u)
			}
			if seen[e.Dst] {
				t.Fatalf("parallel edge %d-%d", u, e.Dst)
			}
			seen[e.Dst] = true
		}
		degSum += len(g.Out[u])
	}
	if !g.Directed && degSum != 2*g.M() {
		t.Fatalf("degree sum %d != 2*M = %d", degSum, 2*g.M())
	}
}

// components counts connected components with a plain BFS.
func components(g *Graph) int {
	n := g.N()
	visited := make([]bool, n)
	count := 0
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		count++
		queue := []VertexID{VertexID(s)}
		visited[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.Out[u] {
				if !visited[e.Dst] {
					visited[e.Dst] = true
					queue = append(queue, e.Dst)
				}
			}
		}
	}
	return count
}

func clamp(v, mod int) int {
	if v < 0 {
		v = -v
	}
	if v < 0 { // math.MinInt
		v = 0
	}
	return v % mod
}

func FuzzRandom(f *testing.F) {
	f.Add(0, 0, int64(1))
	f.Add(1, 5, int64(2))
	f.Add(2, 1, int64(3))
	f.Add(50, 120, int64(4))
	f.Add(80, 10000, int64(5)) // m above the simple-graph maximum
	f.Fuzz(func(t *testing.T, n, m int, seed int64) {
		n, m = clamp(n, 200), clamp(m, 2000)
		g := Random(n, m, seed)
		checkInvariants(t, g)
		if g.N() != n {
			t.Fatalf("got %d vertices, want %d", g.N(), n)
		}
		maxM := n * (n - 1) / 2
		wantM := m
		if wantM > maxM {
			wantM = maxM
		}
		if g.M() != wantM {
			t.Fatalf("got %d edges, want %d", g.M(), wantM)
		}
		if !reflect.DeepEqual(g, Random(n, m, seed)) {
			t.Fatal("same seed produced a different graph")
		}
	})
}

func FuzzPreferentialAttachment(f *testing.F) {
	f.Add(0, 1, int64(1))
	f.Add(1, 3, int64(2))
	f.Add(2, 5, int64(3)) // k exceeding the vertex count
	f.Add(60, 3, int64(4))
	f.Add(100, 0, int64(5)) // k below the minimum
	f.Fuzz(func(t *testing.T, n, k int, seed int64) {
		n, k = clamp(n, 200), clamp(k, 10)
		g := PreferentialAttachment(n, k, seed)
		checkInvariants(t, g)
		if g.N() != n {
			t.Fatalf("got %d vertices, want %d", g.N(), n)
		}
		if n > 0 && components(g) != 1 {
			t.Fatalf("preferential attachment graph has %d components", components(g))
		}
		if !reflect.DeepEqual(g, PreferentialAttachment(n, k, seed)) {
			t.Fatal("same seed produced a different graph")
		}
	})
}

func FuzzRandomTree(f *testing.F) {
	f.Add(0, int64(1))
	f.Add(1, int64(2))
	f.Add(2, int64(3))
	f.Add(120, int64(17))
	f.Fuzz(func(t *testing.T, n int, seed int64) {
		n = clamp(n, 3000)
		g := RandomTree(n, seed)
		checkInvariants(t, g)
		if g.N() != n {
			t.Fatalf("got %d vertices, want %d", g.N(), n)
		}
		// Connected with n-1 edges <=> acyclic tree.
		if n > 0 {
			if g.M() != n-1 {
				t.Fatalf("tree on %d vertices has %d edges", n, g.M())
			}
			if c := components(g); c != 1 {
				t.Fatalf("tree has %d components", c)
			}
		}
		if !reflect.DeepEqual(g, RandomTree(n, seed)) {
			t.Fatal("same seed produced a different graph")
		}
	})
}
