package graph

import (
	"testing"
	"testing/quick"
)

func TestPathBasics(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() || !g.IsTree() {
		t.Fatal("path should be a connected tree")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatalf("degrees: %d %d", g.Degree(0), g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCycleAndComplete(t *testing.T) {
	c := Cycle(6)
	if c.M() != 6 {
		t.Fatalf("cycle m=%d", c.M())
	}
	for v := 0; v < 6; v++ {
		if c.Degree(VertexID(v)) != 2 {
			t.Fatalf("cycle degree %d", c.Degree(VertexID(v)))
		}
	}
	k := Complete(7)
	if k.M() != 21 {
		t.Fatalf("K7 m=%d", k.M())
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("grid disconnected")
	}
	// Corner has degree 2, interior 4.
	if g.Degree(0) != 2 || g.Degree(5) != 4 {
		t.Fatalf("corner=%d interior=%d", g.Degree(0), g.Degree(5))
	}
}

func TestRandomGraphProperties(t *testing.T) {
	f := func(seed int64) bool {
		g := Random(50, 100, seed)
		if g.M() != 100 {
			return false
		}
		if err := g.Validate(); err != nil {
			return false
		}
		// No self-loops, no parallel edges.
		seen := map[[2]VertexID]bool{}
		for _, e := range g.UndirectedEdges() {
			if e.U == e.V || seen[[2]VertexID{e.U, e.V}] {
				return false
			}
			seen[[2]VertexID{e.U, e.V}] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomConnected(60, 90, seed)
		return g.IsConnected() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	f := func(seed int64) bool {
		return RandomTree(64, seed).IsTree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeGenerators(t *testing.T) {
	for name, g := range map[string]*Graph{
		"binary":      BalancedBinaryTree(31),
		"caterpillar": CaterpillarTree(21),
		"star":        Star(12),
	} {
		if !g.IsTree() {
			t.Fatalf("%s is not a tree (n=%d m=%d)", name, g.N(), g.M())
		}
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	g := PreferentialAttachment(500, 2, 7)
	if !g.IsConnected() {
		t.Fatal("PA graph disconnected")
	}
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	// Degree skew: hubs should far exceed the attachment parameter.
	if maxDeg < 10 {
		t.Fatalf("max degree %d; expected a hub", maxDeg)
	}
}

func TestRandomDirectedInOut(t *testing.T) {
	g := RandomDirected(40, 200, 3)
	if g.M() != 200 {
		t.Fatalf("m=%d", g.M())
	}
	var in, out int
	for v := 0; v < g.N(); v++ {
		out += g.Degree(VertexID(v))
		in += g.InDegree(VertexID(v))
	}
	if in != 200 || out != 200 {
		t.Fatalf("in=%d out=%d", in, out)
	}
}

func TestRandomBipartite(t *testing.T) {
	g := RandomBipartite(10, 15, 60, 5)
	if !g.IsBipartition(10) {
		t.Fatal("not bipartite")
	}
	if g.M() != 60 {
		t.Fatalf("m=%d", g.M())
	}
}

func TestRandomWeightsDistinctAndSymmetric(t *testing.T) {
	g := RandomConnected(40, 100, 2)
	RandomWeights(g, 3)
	weights := map[float64][2]VertexID{}
	for _, e := range g.UndirectedEdges() {
		if prev, dup := weights[e.W]; dup {
			t.Fatalf("duplicate weight %v on %v and (%d,%d)", e.W, prev, e.U, e.V)
		}
		weights[e.W] = [2]VertexID{e.U, e.V}
	}
	// Symmetry: both directions carry the same weight.
	for u := range g.Out {
		for _, e := range g.Out[u] {
			var back float64
			for _, r := range g.Out[e.Dst] {
				if r.Dst == VertexID(u) {
					back = r.W
					break
				}
			}
			if back != e.W {
				t.Fatalf("asymmetric weight on (%d,%d): %v vs %v", u, e.Dst, e.W, back)
			}
		}
	}
}

func TestUnderlyingOfDirected(t *testing.T) {
	g := New(4, true)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // parallel pair collapses
	g.AddEdge(1, 2)
	g.AddEdge(3, 3) // self-loop dropped
	u := g.Underlying()
	if u.Directed {
		t.Fatal("underlying is directed")
	}
	if u.M() != 2 {
		t.Fatalf("underlying m=%d, want 2", u.M())
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Random(20, 40, 9)
	c := g.Clone()
	c.AddEdge(0, 19)
	if g.M() == c.M() {
		t.Fatal("clone shares state with original")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(6)
	d := g.BFSDistances(0)
	for i, want := range []int{0, 1, 2, 3, 4, 5} {
		if d[i] != want {
			t.Fatalf("d[%d]=%d", i, d[i])
		}
	}
	h := New(3, false)
	h.AddEdge(0, 1)
	if d := h.BFSDistances(0); d[2] != -1 {
		t.Fatal("unreachable vertex should be -1")
	}
}

func TestComponentsCount(t *testing.T) {
	g := New(7, false)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	_, k := g.Components()
	if k != 4 { // {0,1}, {2,3,4}, {5}, {6}
		t.Fatalf("k=%d", k)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := New(3, false)
	g.Out[0] = append(g.Out[0], Edge{Dst: 1})
	if err := g.Validate(); err == nil {
		t.Fatal("expected asymmetry error")
	}
	h := New(2, true)
	h.Out[0] = append(h.Out[0], Edge{Dst: 5})
	if err := h.Validate(); err == nil {
		t.Fatal("expected range error")
	}
}

func TestSortAdjacency(t *testing.T) {
	g := New(3, false)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	g.SortAdjacency()
	if g.Out[0][0].Dst != 1 || g.Out[0][1].Dst != 2 {
		t.Fatalf("adjacency not sorted: %v", g.Out[0])
	}
}

func TestLabels(t *testing.T) {
	g := RandomDirected(20, 40, 1)
	RandomLabels(g, []string{"X", "Y"}, 2)
	if len(g.Labels) != 20 {
		t.Fatalf("labels len %d", len(g.Labels))
	}
	for v := 0; v < 20; v++ {
		if l := g.Label(VertexID(v)); l != "X" && l != "Y" {
			t.Fatalf("label %q", l)
		}
	}
	unlabeled := Path(3)
	if unlabeled.Label(0) != "" {
		t.Fatal("unlabeled graph should return empty label")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Random(30, 60, 42).UndirectedEdges()
	b := Random(30, 60, 42).UndirectedEdges()
	if len(a) != len(b) {
		t.Fatal("nondeterministic generator")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
