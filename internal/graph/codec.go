package graph

import (
	"errors"
	"fmt"
)

// Varint-delta edge-block codec: the compressed representation behind
// CSR's packed destination arrays (see BuildPackedCSR).
//
// The flat destination array is cut into fixed-size blocks of
// edgeBlockLen entries (the last block may be short). Within a block,
// entry 0 is stored as the zigzag varint of its value and every later
// entry as the zigzag varint of its delta from the previous entry —
// zigzag because adjacency is stored in *builder order*, not sorted
// order (preserving builder order is what keeps packed runs
// byte-identical to the int32 path: message order and float fold order
// never change), so deltas can be negative. Loaders that sort adjacency
// (ReadSNAP, ReadEdgeList) make the deltas small and positive, which is
// where the compression wins come from; a hostile order still round-
// trips, it just compresses worse (at most 5 bytes per entry).
//
// A per-block byte-offset directory gives random access at block
// granularity: decoding entry i touches one block, never the whole
// stream, so span decodes into worker-local scratch stay O(degree +
// edgeBlockLen).

// edgeBlockLen is the number of entries per compressed block. 64 keeps
// the stack decode buffer at 256 bytes and the offset directory under
// 0.07 bytes/entry.
const edgeBlockLen = 64

// maxVarintLen32 is the worst-case encoded size of one entry.
const maxVarintLen32 = 5

// errCorruptBlock reports a packed block that cannot be decoded:
// truncated stream, varint overflow, or a delta chain leaving int32
// range. Decoders on untrusted input (file loading, fuzzing) return it;
// in-memory streams built by packEdges cannot trigger it.
var errCorruptBlock = errors.New("graph: corrupt varint edge block")

// zigzag maps signed deltas to unsigned varint-friendly space:
// 0,-1,1,-2,... -> 0,1,2,3,...
func zigzag(x int32) uint32 { return uint32((x << 1) ^ (x >> 31)) }

func unzigzag(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// appendUvarint32 appends u in LEB128 varint form (at most 5 bytes).
func appendUvarint32(dst []byte, u uint32) []byte {
	for u >= 0x80 {
		dst = append(dst, byte(u)|0x80)
		u >>= 7
	}
	return append(dst, byte(u))
}

// uvarint32Len returns the encoded size of u without encoding it.
func uvarint32Len(u uint32) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// appendEdgeBlock delta-encodes src (one block, at most edgeBlockLen
// entries) onto dst. The first entry is encoded as a delta from zero.
func appendEdgeBlock(dst []byte, src []VertexID) []byte {
	prev := int32(0)
	for _, d := range src {
		dst = appendUvarint32(dst, zigzag(int32(d)-prev))
		prev = int32(d)
	}
	return dst
}

// edgeBlockLenBytes returns the exact encoded size of one block,
// letting packEdges allocate the stream in one exactly-sized slab (no
// append growth, no transient 2x).
func edgeBlockLenBytes(src []VertexID) int {
	prev := int32(0)
	n := 0
	for _, d := range src {
		n += uvarint32Len(zigzag(int32(d) - prev))
		prev = int32(d)
	}
	return n
}

// decodeEdgeBlock decodes the first count entries of one block from
// data into out, returning the number of bytes consumed. Any defect in
// the stream — truncation, a varint longer than 5 bytes, an
// out-of-range count — returns errCorruptBlock; it never panics and
// never reads past data, so it is safe on untrusted bytes (the fuzz
// target and the .vcsr loader both drive it with garbage). The delta
// accumulation wraps in int32, mirroring the encoder's wrapping
// subtraction, so the codec is total: every int32 sequence round-trips
// exactly, including MinInt32/MaxInt32 jumps.
func decodeEdgeBlock(data []byte, count int, out *[edgeBlockLen]VertexID) (int, error) {
	if count < 0 || count > edgeBlockLen {
		return 0, fmt.Errorf("%w: count %d out of range", errCorruptBlock, count)
	}
	pos := 0
	prev := int32(0)
	for i := 0; i < count; i++ {
		var u uint32
		var shift uint
		for {
			if pos >= len(data) {
				return 0, fmt.Errorf("%w: truncated at entry %d", errCorruptBlock, i)
			}
			b := data[pos]
			pos++
			if shift == (maxVarintLen32-1)*7 && b > 0x0f {
				return 0, fmt.Errorf("%w: varint overflow at entry %d", errCorruptBlock, i)
			}
			u |= uint32(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
			if shift >= maxVarintLen32*7 {
				return 0, fmt.Errorf("%w: varint too long at entry %d", errCorruptBlock, i)
			}
		}
		prev += unzigzag(u)
		out[i] = VertexID(prev)
	}
	return pos, nil
}

// packedEdges is a varint-delta compressed replacement for a flat
// []VertexID: the byte stream plus a block directory. Immutable after
// construction and safe for concurrent readers.
type packedEdges struct {
	n    int32    // entry count
	data []byte   // concatenated encoded blocks
	boff []uint32 // numBlocks+1 byte offsets into data
}

func packedNumBlocks(n int) int { return (n + edgeBlockLen - 1) / edgeBlockLen }

// packEdges compresses src with exact two-pass sizing: the stream slab
// is allocated at its final size, so building a packed CSR allocates
// only the bytes it retains.
func packEdges(src []VertexID) *packedEdges {
	nb := packedNumBlocks(len(src))
	p := &packedEdges{n: int32(len(src)), boff: make([]uint32, nb+1)}
	total := 0
	for b := 0; b < nb; b++ {
		p.boff[b] = uint32(total)
		lo := b * edgeBlockLen
		hi := min(lo+edgeBlockLen, len(src))
		total += edgeBlockLenBytes(src[lo:hi])
	}
	p.boff[nb] = uint32(total)
	p.data = make([]byte, 0, total)
	for b := 0; b < nb; b++ {
		lo := b * edgeBlockLen
		hi := min(lo+edgeBlockLen, len(src))
		p.data = appendEdgeBlock(p.data, src[lo:hi])
	}
	return p
}

// sizeBytes returns the retained footprint of the packed array.
func (p *packedEdges) sizeBytes() int { return len(p.data) + 4*len(p.boff) }

// block returns the byte slice of block b.
func (p *packedEdges) block(b int) []byte { return p.data[p.boff[b]:p.boff[b+1]] }

// blockCount returns the number of entries stored in block b.
func (p *packedEdges) blockCount(b int) int {
	lo := b * edgeBlockLen
	return min(edgeBlockLen, int(p.n)-lo)
}

// mustDecodeBlock decodes block b into out. Corruption is impossible
// for streams built by packEdges and is checked at load time for
// mmap-backed streams, so failure here is a program bug.
func (p *packedEdges) mustDecodeBlock(b int, out *[edgeBlockLen]VertexID) int {
	cnt := p.blockCount(b)
	if _, err := decodeEdgeBlock(p.block(b), cnt, out); err != nil {
		panic(err)
	}
	return cnt
}

// at returns entry i, decoding its block prefix. O(edgeBlockLen): meant
// for cold random access (mutation-overlay scans), not hot loops.
func (p *packedEdges) at(i int32) VertexID {
	b := int(i) / edgeBlockLen
	k := int(i)%edgeBlockLen + 1
	var buf [edgeBlockLen]VertexID
	if _, err := decodeEdgeBlock(p.block(b), k, &buf); err != nil {
		panic(err)
	}
	return buf[k-1]
}

// appendRange appends entries [lo, hi) to dst and returns it: the
// span-decode primitive behind CSR.OutSpan/InSpan.
func (p *packedEdges) appendRange(dst []VertexID, lo, hi int32) []VertexID {
	var buf [edgeBlockLen]VertexID
	for b := int(lo) / edgeBlockLen; int32(b)*edgeBlockLen < hi; b++ {
		cnt := p.mustDecodeBlock(b, &buf)
		s, e := 0, cnt
		if blo := int32(b) * edgeBlockLen; blo < lo {
			s = int(lo - blo)
		}
		if blo := int32(b) * edgeBlockLen; blo+int32(cnt) > hi {
			e = int(hi - blo)
		}
		dst = append(dst, buf[s:e]...)
	}
	return dst
}

// forEachRange calls f(i, value) for every entry in [lo, hi), decoding
// block by block into a stack buffer: zero heap allocation.
func (p *packedEdges) forEachRange(lo, hi int32, f func(i int32, d VertexID)) {
	var buf [edgeBlockLen]VertexID
	for b := int(lo) / edgeBlockLen; int32(b)*edgeBlockLen < hi; b++ {
		cnt := p.mustDecodeBlock(b, &buf)
		blo := int32(b) * edgeBlockLen
		s, e := int32(0), int32(cnt)
		if blo < lo {
			s = lo - blo
		}
		if blo+int32(cnt) > hi {
			e = hi - blo
		}
		for i := s; i < e; i++ {
			f(blo+i, buf[i])
		}
	}
}

// validate decodes every block once, proving that later internal
// decodes cannot fail. Loaders of untrusted streams (OpenCSRFile) call
// it before publishing the CSR.
func (p *packedEdges) validate() error {
	nb := packedNumBlocks(int(p.n))
	if p.n < 0 || len(p.boff) != nb+1 {
		return fmt.Errorf("%w: directory has %d offsets for %d blocks", errCorruptBlock, len(p.boff), nb)
	}
	if nb > 0 && int(p.boff[nb]) != len(p.data) {
		return fmt.Errorf("%w: directory end %d != stream length %d", errCorruptBlock, p.boff[nb], len(p.data))
	}
	var buf [edgeBlockLen]VertexID
	for b := 0; b < nb; b++ {
		if p.boff[b] > p.boff[b+1] || int(p.boff[b+1]) > len(p.data) {
			return fmt.Errorf("%w: directory not monotone at block %d", errCorruptBlock, b)
		}
		used, err := decodeEdgeBlock(p.block(b), p.blockCount(b), &buf)
		if err != nil {
			return err
		}
		if used != len(p.block(b)) {
			return fmt.Errorf("%w: block %d has %d trailing bytes", errCorruptBlock, b, len(p.block(b))-used)
		}
	}
	return nil
}
