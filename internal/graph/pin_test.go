package graph

import (
	"reflect"
	"sync"
	"testing"
)

func TestPinRefcountsAcrossGenerations(t *testing.T) {
	g := Path(8)
	a1 := g.Pin()
	a2 := g.Pin()
	if a1 != a2 {
		t.Fatal("two pins of an unchanged graph returned different snapshots")
	}
	if got := g.Pins(); got != 2 {
		t.Fatalf("pins = %d, want 2", got)
	}

	// Mutating republishes: new pins see the new generation, old pins
	// keep the old one alive and untouched.
	oldM := a1.M()
	g.AddEdge(0, 5)
	b := g.Pin()
	if b == a1 {
		t.Fatal("pin after mutation returned the stale snapshot")
	}
	if a1.M() != oldM {
		t.Fatalf("pinned snapshot changed under mutation: m %d -> %d", oldM, a1.M())
	}
	if b.M() != oldM+1 {
		t.Fatalf("fresh snapshot m = %d, want %d", b.M(), oldM+1)
	}
	if got := g.Pins(); got != 3 {
		t.Fatalf("pins across generations = %d, want 3", got)
	}

	g.Unpin(a1)
	g.Unpin(b)
	if got := g.Pins(); got != 1 {
		t.Fatalf("pins = %d, want 1", got)
	}
	g.Unpin(a2)
	if got := g.Pins(); got != 0 {
		t.Fatalf("pins = %d, want 0", got)
	}
}

func TestPinSurvivesInvalidate(t *testing.T) {
	g := Cycle(6)
	c := g.Pin()
	g.Invalidate()
	// The pinned generation is still readable and still counted.
	if c.N() != 6 || g.Pins() != 1 {
		t.Fatalf("pinned snapshot lost after Invalidate (n=%d pins=%d)", c.N(), g.Pins())
	}
	// A pin after invalidation is a rebuilt snapshot; unpinning both in
	// either order drains the count.
	d := g.Pin()
	if d == c {
		t.Fatal("Invalidate did not republish the snapshot")
	}
	g.Unpin(c)
	g.Unpin(d)
	if g.Pins() != 0 {
		t.Fatalf("pins = %d, want 0", g.Pins())
	}
}

func TestUnpinUnpinnedPanics(t *testing.T) {
	g := Path(4)
	c := g.Pin()
	g.Unpin(c)
	defer func() {
		if recover() == nil {
			t.Fatal("double Unpin did not panic")
		}
	}()
	g.Unpin(c)
}

func TestUnpinForeignSnapshotPanics(t *testing.T) {
	g := Path(4)
	other := Path(4).Pin()
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of a foreign snapshot did not panic")
		}
	}()
	g.Unpin(other)
}

// TestPinConcurrentWithMutation drives Pin/Unpin from many goroutines
// racing a mutator under the documented bracketing discipline (readers
// hold an RWMutex read lock only for the Pin call, the writer holds
// the write lock across mutate-and-republish — exactly what the
// serving layer does). Under -race this checks that a pinned view can
// be read lock-free while the graph moves, and that it stays
// self-consistent.
func TestPinConcurrentWithMutation(t *testing.T) {
	g := Cycle(64)
	var bracket sync.RWMutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				bracket.RLock()
				c := g.Pin()
				bracket.RUnlock()
				// A CSR is immutable: its edge count and spans must
				// agree no matter what the mutator is doing.
				total := 0
				for v := VertexID(0); int(v) < c.N(); v++ {
					total += c.OutDegree(v)
				}
				if total != 2*c.M() {
					t.Errorf("snapshot inconsistent: degree sum %d != 2m %d", total, 2*c.M())
				}
				g.Unpin(c)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			bracket.Lock()
			g.AddEdge(VertexID(j%64), VertexID((j*7+3)%64))
			bracket.Unlock()
		}
	}()
	wg.Wait()
	if g.Pins() != 0 {
		t.Fatalf("pins = %d after drain, want 0", g.Pins())
	}
}

// TestPinPackedBaseSurvivesRebuild pins a delta view whose base is a
// compressed (varint-delta packed) snapshot, then drives enough batches
// through RebuildEvery to republish several fresh packed generations.
// The pinned view must stay readable and enumerate byte-identically to
// the moment it was pinned, while new pins see the new generations.
func TestPinPackedBaseSurvivesRebuild(t *testing.T) {
	g := RandomConnected(32, 64, 5)
	g.Encoding = EncodePacked
	g.RebuildEvery = 3

	// Establish an overlay on a packed base, then freeze a view of it.
	if _, err := g.ApplyMutations([]Mutation{{Op: InsertEdge, U: 0, V: 9, W: 2}}); err != nil {
		t.Fatal(err)
	}
	d := g.PinDelta()
	if d.Base().packed == nil {
		t.Fatal("overlay base is not packed despite EncodePacked")
	}
	c := g.Pin()
	before := make([][]entry, g.N())
	for v := VertexID(0); int(v) < g.N(); v++ {
		before[v] = collectOut(d.ForEachOut, v)
	}
	beforeM, beforeCSR := d.M(), c.M()

	// Enough batches to cross several RebuildEvery boundaries.
	for j := 0; j < 12; j++ {
		u, v := VertexID(j%32), VertexID((j*11+7)%32)
		if _, err := g.ApplyMutations([]Mutation{{Op: InsertEdge, U: u, V: v, W: 1}}); err != nil {
			t.Fatal(err)
		}
	}

	if d.M() != beforeM || c.M() != beforeCSR {
		t.Fatalf("pinned views changed m: delta %d->%d, csr %d->%d", beforeM, d.M(), beforeCSR, c.M())
	}
	for v := VertexID(0); int(v) < g.N(); v++ {
		if got := collectOut(d.ForEachOut, v); !reflect.DeepEqual(got, before[v]) {
			t.Fatalf("vertex %d: pinned delta view changed under rebuild: %v -> %v", v, got, before[v])
		}
	}
	d2 := g.PinDelta()
	if d2 == d {
		t.Fatal("pin after rebuilds returned the stale view")
	}
	if d2.Base().packed == nil {
		t.Fatal("republished base is not packed despite EncodePacked")
	}
	checkDeltaMatchesRebuild(t, g)
	g.UnpinDelta(d)
	g.UnpinDelta(d2)
	g.Unpin(c)
	if g.Pins() != 0 {
		t.Fatalf("pins = %d after drain, want 0", g.Pins())
	}
}

// TestPinPackedConcurrentRebuild is the -race variant: readers decode
// packed spans off pinned views (flat Pin and delta PinDelta) while a
// mutator's batches repeatedly fire RebuildEvery, republishing fresh
// packed bases under them.
func TestPinPackedConcurrentRebuild(t *testing.T) {
	g := Cycle(64)
	g.Encoding = EncodePacked
	g.RebuildEvery = 2
	var bracket sync.RWMutex
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s Scratch
			for j := 0; j < 50; j++ {
				bracket.RLock()
				c := g.Pin()
				bracket.RUnlock()
				total := 0
				for v := VertexID(0); int(v) < c.N(); v++ {
					total += len(c.OutSpan(v, &s))
				}
				if total != 2*c.M() {
					t.Errorf("packed snapshot inconsistent: span sum %d != 2m %d", total, 2*c.M())
				}
				g.Unpin(c)
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				bracket.RLock()
				d := g.PinDelta()
				bracket.RUnlock()
				if d.Base().packed == nil {
					t.Error("delta base lost its packed encoding")
				}
				total := 0
				for v := VertexID(0); int(v) < d.N(); v++ {
					d.ForEachOut(v, func(VertexID, float64) { total++ })
				}
				if total != 2*d.M() {
					t.Errorf("delta view over packed base inconsistent: degree sum %d != 2m %d", total, 2*d.M())
				}
				g.UnpinDelta(d)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			u, v := VertexID(j%64), VertexID((j*13+5)%64)
			bracket.Lock()
			if _, err := g.ApplyMutations([]Mutation{
				{Op: InsertEdge, U: u, V: v, W: float64(j%7 + 1)},
				{Op: DeleteEdge, U: u, V: v},
				{Op: InsertEdge, U: v, V: u, W: 3},
			}); err != nil {
				t.Errorf("batch %d: %v", j, err)
			}
			bracket.Unlock()
		}
	}()
	wg.Wait()
	if g.Pins() != 0 {
		t.Fatalf("pins = %d after drain, want 0", g.Pins())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	c := g.Pin()
	if c.packed == nil {
		t.Fatal("final snapshot is not packed despite EncodePacked")
	}
	g.Unpin(c)
}

// TestApplyMutationsConcurrentWithPin interleaves ApplyMutations with
// Pin and PinDelta readers under the same bracketing discipline as
// TestPinConcurrentWithMutation. Under -race this checks the mutate-
// and-republish path of the mutation log: frozen views (flat and delta)
// stay self-consistent while batches land, and every generation drains.
func TestApplyMutationsConcurrentWithPin(t *testing.T) {
	g := Cycle(64)
	var bracket sync.RWMutex
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				bracket.RLock()
				c := g.Pin()
				bracket.RUnlock()
				total := 0
				for v := VertexID(0); int(v) < c.N(); v++ {
					total += c.OutDegree(v)
				}
				if total != 2*c.M() {
					t.Errorf("snapshot inconsistent: degree sum %d != 2m %d", total, 2*c.M())
				}
				g.Unpin(c)
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				bracket.RLock()
				d := g.PinDelta()
				bracket.RUnlock()
				total := 0
				for v := VertexID(0); int(v) < d.N(); v++ {
					deg := 0
					d.ForEachOut(VertexID(v), func(VertexID, float64) { deg++ })
					if deg != d.OutDegree(VertexID(v)) {
						t.Errorf("vertex %d: enumerated degree %d != OutDegree %d", v, deg, d.OutDegree(VertexID(v)))
					}
					total += deg
				}
				if total != 2*d.M() {
					t.Errorf("delta view inconsistent: degree sum %d != 2m %d", total, 2*d.M())
				}
				g.UnpinDelta(d)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			u, v := VertexID(j%64), VertexID((j*13+5)%64)
			bracket.Lock()
			if _, err := g.ApplyMutations([]Mutation{
				{Op: InsertEdge, U: u, V: v, W: float64(j%7 + 1)},
				{Op: InsertEdge, U: v, V: u, W: 2},
				{Op: DeleteEdge, U: u, V: v},
			}); err != nil {
				t.Errorf("batch %d: %v", j, err)
			}
			bracket.Unlock()
		}
	}()
	wg.Wait()
	if g.Pins() != 0 {
		t.Fatalf("pins = %d after drain, want 0", g.Pins())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
