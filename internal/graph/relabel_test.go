package graph

import (
	"sort"
	"testing"
)

func TestDegreeOrderSortsHubsFirst(t *testing.T) {
	g := New(4, false)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	order := DegreeOrder(g)
	if order[0] != 0 {
		t.Fatalf("order[0] = %d, want hub 0 (order %v)", order[0], order)
	}
	// Degrees: 0->3, 1->2, 2->2, 3->1; ties break by old ID.
	want := []VertexID{0, 1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRelabelIsIsomorphic(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := PreferentialAttachment(200, 3, 7)
		if directed {
			d := New(g.N(), true)
			for u := range g.Out {
				for _, e := range g.Out[u] {
					if VertexID(u) <= e.Dst {
						d.AddWeightedEdge(VertexID(u), e.Dst, e.W)
					}
				}
			}
			g = d
		}
		order := DegreeOrder(g)
		seen := make([]bool, g.N())
		for _, old := range order {
			if seen[old] {
				t.Fatalf("directed=%v: order is not a permutation: %d twice", directed, old)
			}
			seen[old] = true
		}
		rl := Relabel(g, order)
		if rl.N() != g.N() || rl.M() != g.M() {
			t.Fatalf("directed=%v: n/m changed: %d/%d -> %d/%d", directed, g.N(), g.M(), rl.N(), rl.M())
		}
		newOf := make([]VertexID, g.N())
		for newID, oldID := range order {
			newOf[oldID] = VertexID(newID)
		}
		for u := range g.Out {
			want := make([]VertexID, 0, len(g.Out[u]))
			for _, e := range g.Out[u] {
				want = append(want, newOf[e.Dst])
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := rl.Neighbors(newOf[u])
			if len(got) != len(want) {
				t.Fatalf("directed=%v: vertex %d degree changed: %v vs %v", directed, u, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("directed=%v: vertex %d adjacency mismatch: %v vs %v", directed, u, got, want)
				}
			}
		}
		// Hubs first: new ID 0 must hold the maximum total degree.
		if directed {
			g.EnsureIn()
			rl.EnsureIn()
		}
		maxDeg := 0
		for v := 0; v < g.N(); v++ {
			if d := g.TotalDegree(VertexID(v)); d > maxDeg {
				maxDeg = d
			}
		}
		if rl.TotalDegree(0) != maxDeg {
			t.Fatalf("directed=%v: new vertex 0 degree %d, want max %d", directed, rl.TotalDegree(0), maxDeg)
		}
	}
}
