package graph

// Scratch is a worker-local decode buffer for reading adjacency spans
// off a packed snapshot without per-call allocation. Each engine worker
// (or sequential context) owns one; OutSpan and InSpan decode into
// separate buffers so one out-span and one in-span can be live at the
// same time (the async PageRank update holds both). A span returned
// from OutSpan/InSpan is valid until the same method is called again on
// the same Scratch, and must never be written to or retained: on a flat
// snapshot it aliases the snapshot itself.
type Scratch struct {
	out []VertexID
	in  []VertexID
}

// OutSpan returns v's out-neighbor span in adjacency order. On a flat
// snapshot it aliases the snapshot (identical to Out, zero cost and s
// may be nil); on a packed snapshot it decodes into s's out buffer —
// allocation-free once the buffer has grown to the graph's max degree.
func (c *CSR) OutSpan(v VertexID, s *Scratch) []VertexID {
	lo, hi := c.Offsets[v], c.Offsets[v+1]
	if c.packed == nil {
		return c.Dsts[lo:hi]
	}
	if s == nil {
		return c.Out(v)
	}
	s.out = c.packed.appendRange(s.out[:0], lo, hi)
	return s.out
}

// InSpan returns v's in-neighbor (source) span, ordered by source
// ascending, under the same contract as OutSpan but decoding into a
// separate buffer. EnsureIn must have been called for directed graphs;
// for undirected graphs the in-span is the out-span (decoded into the
// in buffer, so it can coexist with an OutSpan).
func (c *CSR) InSpan(v VertexID, s *Scratch) []VertexID {
	var lo, hi int32
	var p *packedEdges
	if c.Directed {
		lo, hi = c.inOffsets[v], c.inOffsets[v+1]
		if c.inPacked == nil {
			return c.inSrcs[lo:hi]
		}
		p = c.inPacked
	} else {
		lo, hi = c.Offsets[v], c.Offsets[v+1]
		if c.packed == nil {
			return c.Dsts[lo:hi]
		}
		p = c.packed
	}
	if s == nil {
		return c.In(v)
	}
	s.in = p.appendRange(s.in[:0], lo, hi)
	return s.in
}

// BuildPackedCSR builds a packed CSR snapshot of g: identical to
// BuildCSR except that destinations stream straight into the
// varint-delta block codec — the flat int32 array is never
// materialized, so peak allocation is the retained packed size (exact
// two-pass block sizing), not 4 bytes/entry plus the stream.
// Enumeration order is builder order, exactly as BuildCSR, so engines
// running on the packed snapshot stay byte-identical to the flat path.
func BuildPackedCSR(g *Graph) *CSR {
	n := g.N()
	c := &CSR{
		Directed: g.Directed,
		Offsets:  make([]int32, n+1),
		numEdges: g.M(),
	}
	total := 0
	hasW, hasL := false, false
	for v := 0; v < n; v++ {
		total += len(g.Out[v])
		c.Offsets[v+1] = int32(total)
		for i := range g.Out[v] {
			e := &g.Out[v][i]
			if e.W != 1 {
				hasW = true
			}
			if e.L != "" {
				hasL = true
			}
		}
	}
	if hasW {
		c.Weights = make([]float64, total)
	}
	var intern map[string]int32
	if hasL {
		c.LabelIDs = make([]int32, total)
		c.Labels = []string{""}
		intern = map[string]int32{"": 0}
	}

	// Pass 1: exact encoded size per block, streaming destinations
	// through a one-block window.
	nb := packedNumBlocks(total)
	p := &packedEdges{n: int32(total), boff: make([]uint32, nb+1)}
	var win [edgeBlockLen]VertexID
	fill := 0
	bytes, block := 0, 0
	flushSize := func() {
		p.boff[block] = uint32(bytes)
		bytes += edgeBlockLenBytes(win[:fill])
		block++
		fill = 0
	}
	for v := 0; v < n; v++ {
		for i := range g.Out[v] {
			win[fill] = g.Out[v][i].Dst
			if fill++; fill == edgeBlockLen {
				flushSize()
			}
		}
	}
	if fill > 0 {
		flushSize()
	}
	p.boff[nb] = uint32(bytes)

	// Pass 2: encode into the exactly-sized slab, filling the side
	// arrays on the way.
	p.data = make([]byte, 0, bytes)
	fill = 0
	idx := 0
	for v := 0; v < n; v++ {
		for i := range g.Out[v] {
			e := &g.Out[v][i]
			win[fill] = e.Dst
			fill++
			if hasW {
				c.Weights[idx] = e.W
			}
			if hasL {
				id, ok := intern[e.L]
				if !ok {
					id = int32(len(c.Labels))
					c.Labels = append(c.Labels, e.L)
					intern[e.L] = id
				}
				c.LabelIDs[idx] = id
			}
			idx++
			if fill == edgeBlockLen {
				p.data = appendEdgeBlock(p.data, win[:fill])
				fill = 0
			}
		}
	}
	if fill > 0 {
		p.data = appendEdgeBlock(p.data, win[:fill])
	}
	c.packed = p
	return c
}

// CompressCSR returns a packed snapshot equivalent to c, sharing the
// offset/weight/label arrays (they are immutable) and compressing only
// the destination array. Returns c itself if already packed. The
// transpose is rebuilt lazily on the packed copy.
func CompressCSR(c *CSR) *CSR {
	if c.packed != nil {
		return c
	}
	return &CSR{
		Directed: c.Directed,
		Offsets:  c.Offsets,
		Weights:  c.Weights,
		LabelIDs: c.LabelIDs,
		Labels:   c.Labels,
		packed:   packEdges(c.Dsts),
		numEdges: c.numEdges,
	}
}

// DecompressCSR returns a flat snapshot equivalent to c, decoding the
// packed destination arrays. Returns c itself if already flat.
func DecompressCSR(c *CSR) *CSR {
	if c.packed == nil {
		return c
	}
	return &CSR{
		Directed: c.Directed,
		Offsets:  c.Offsets,
		Weights:  c.Weights,
		LabelIDs: c.LabelIDs,
		Labels:   c.Labels,
		Dsts:     c.packed.appendRange(make([]VertexID, 0, c.packed.n), 0, c.packed.n),
		numEdges: c.numEdges,
	}
}
