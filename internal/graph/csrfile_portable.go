//go:build !unix

package graph

import (
	"os"
	"unsafe"
)

// mapFile on platforms without syscall.Mmap reads the whole file into
// an 8-byte-aligned buffer (a []uint64 allocation), preserving the
// alignment contract the in-place section views rely on.
func mapFile(path string) ([]byte, func() error, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(raw) == 0 {
		return nil, func() error { return nil }, nil
	}
	words := make([]uint64, (len(raw)+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(raw))
	copy(buf, raw)
	return buf, func() error { return nil }, nil
}
