package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// Delta-overlay-over-packed-base differential: a graph whose snapshots
// use the varint-delta encoding must run the mutation machinery —
// tombstones against base flat indices, base-then-adds enumeration,
// re-basing at RebuildEvery — byte-identically to its int32 twin. The
// two twins receive the same mutation stream and their frozen delta
// views are compared entry-for-entry after every batch (and against a
// flat rebuild, via checkDeltaMatchesRebuild).

// checkViewsIdentical compares two frozen delta views entry-for-entry.
func checkViewsIdentical(t *testing.T, flat, packed *DeltaCSR) {
	t.Helper()
	if flat.N() != packed.N() || flat.M() != packed.M() {
		t.Fatalf("flat n/m = %d/%d, packed %d/%d", flat.N(), flat.M(), packed.N(), packed.M())
	}
	for v := VertexID(0); int(v) < flat.N(); v++ {
		if got, want := packed.OutDegree(v), flat.OutDegree(v); got != want {
			t.Fatalf("vertex %d: packed OutDegree %d, flat %d", v, got, want)
		}
		if got, want := collectOut(packed.ForEachOut, v), collectOut(flat.ForEachOut, v); !reflect.DeepEqual(got, want) {
			t.Fatalf("vertex %d: packed out %v, flat %v", v, got, want)
		}
		if got, want := collectOut(packed.ForEachIn, v), collectOut(flat.ForEachIn, v); !reflect.DeepEqual(got, want) {
			t.Fatalf("vertex %d: packed in %v, flat %v", v, got, want)
		}
	}
}

// runDualMutationScript drives the same seeded script through a flat
// graph and its packed-encoding twin, holding their delta views
// identical after every batch.
func runDualMutationScript(t *testing.T, flat, packed *Graph, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := flat.N()
	for s := 0; s < steps; s++ {
		var batch []Mutation
		for b := 1 + rng.Intn(5); b > 0; b-- {
			if rng.Intn(10) < 6 || flat.M() == 0 {
				batch = append(batch, Mutation{
					Op: InsertEdge,
					U:  VertexID(rng.Intn(n)),
					V:  VertexID(rng.Intn(n)),
					W:  float64(1 + rng.Intn(9)),
				})
			} else {
				k := rng.Intn(flat.M() * 2)
				found := false
				for u := range flat.Out {
					if k >= len(flat.Out[u]) {
						k -= len(flat.Out[u])
						continue
					}
					batch = append(batch, Mutation{Op: DeleteEdge, U: VertexID(u), V: flat.Out[u][k].Dst})
					found = true
					break
				}
				if found && rng.Intn(2) == 0 {
					break
				}
			}
		}
		_, errF := flat.ApplyMutations(batch)
		_, errP := packed.ApplyMutations(batch)
		if (errF == nil) != (errP == nil) {
			t.Fatalf("step %d: validation diverged: flat %v, packed %v", s, errF, errP)
		}
		if errF != nil {
			continue // invalid batch rejected by both, both untouched
		}
		if err := packed.Validate(); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		df := flat.PinDelta()
		dp := packed.PinDelta()
		checkViewsIdentical(t, df, dp)
		flat.UnpinDelta(df)
		packed.UnpinDelta(dp)
		checkDeltaMatchesRebuild(t, packed)
	}
}

// clonePacked deep-copies the graph (preserving exact adjacency order,
// which delete-earliest semantics depend on) and flips the twin to the
// packed snapshot encoding.
func clonePacked(src *Graph) *Graph {
	g := src.Clone()
	g.Encoding = EncodePacked
	return g
}

func TestDeltaViewPackedBaseUndirected(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		flat := RandomConnected(20, 40, seed)
		runDualMutationScript(t, flat, clonePacked(flat), seed*101, 15)
	}
}

func TestDeltaViewPackedBaseDirected(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		flat := New(16, true)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 40; i++ {
			flat.AddWeightedEdge(VertexID(rng.Intn(16)), VertexID(rng.Intn(16)), float64(1+rng.Intn(9)))
		}
		runDualMutationScript(t, flat, clonePacked(flat), seed*77, 15)
	}
}

// TestDeltaViewPackedBaseAcrossRebuild forces frequent re-basing so the
// overlay repeatedly republishes a fresh packed base mid-script.
func TestDeltaViewPackedBaseAcrossRebuild(t *testing.T) {
	flat := RandomConnected(24, 48, 3)
	packed := clonePacked(flat)
	flat.RebuildEvery = 7
	packed.RebuildEvery = 7
	runDualMutationScript(t, flat, packed, 99, 25)
	d := packed.PinDelta()
	adds, dels := d.OverlaySize()
	if adds+dels >= 7+5 {
		t.Fatalf("overlay not re-based over packed base: %d adds, %d dels", adds, dels)
	}
	if d.Base().packed == nil {
		t.Fatal("re-based overlay base is not packed despite EncodePacked")
	}
	packed.UnpinDelta(d)
}
