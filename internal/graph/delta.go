package graph

import "sort"

// deltaOverlay is the live (mutable) record of changes against
// deltaBase. The load-bearing invariant, maintained by ApplyMutations,
// is that for every vertex u
//
//	Out[u] == (base span of u minus tombstoned entries, in order)
//	          ++ (adds[u], in insertion order)
//
// which is exactly the order a full BuildCSR would produce — so a
// frozen DeltaCSR view and a rebuilt CSR enumerate identically, and an
// incremental run that spans an amortized rebuild boundary stays
// byte-identical.
type deltaOverlay struct {
	adds   map[VertexID][]Edge // appended out-entries per source
	inAdds map[VertexID][]Edge // directed only: appended in-entries per dst (Dst = source)
	dels   map[int32]struct{}  // tombstoned base out-flat indices
	delCnt map[VertexID]int    // tombstones per source vertex
	// delPairs counts deleted base (u,v) out-entries for directed
	// graphs, so the in-span walk can skip the first k occurrences of
	// source u (tombstoning always kills the earliest survivor, and
	// base in-spans keep same-source entries in out-index order).
	delPairs     map[[2]VertexID]int
	nAdds, nDels int
}

func newDeltaOverlay(directed bool) *deltaOverlay {
	d := &deltaOverlay{
		adds:   make(map[VertexID][]Edge),
		dels:   make(map[int32]struct{}),
		delCnt: make(map[VertexID]int),
	}
	if directed {
		d.inAdds = make(map[VertexID][]Edge)
		d.delPairs = make(map[[2]VertexID]int)
	}
	return d
}

// DeltaCSR is an immutable view of an evolving graph: a pinned base CSR
// plus a frozen copy of the delta overlay. Readers iterate the base
// spans with tombstones skipped, then the appended entries — the exact
// enumeration order of a fully rebuilt CSR — so incremental jobs can
// run against a mutated graph without paying a rebuild, under the same
// pin/refcount isolation as plain snapshots (the base is pinned; a
// writer mutating and republishing never disturbs it).
type DeltaCSR struct {
	base     *CSR
	directed bool
	epoch    int64
	n, m     int
	adds     map[VertexID][]Edge
	inAdds   map[VertexID][]Edge // sorted by source ascending (stable)
	dels     map[int32]struct{}
	delCnt   map[VertexID]int
	delPairs map[[2]VertexID]int
}

// PinDelta returns a pinned immutable delta view of the graph's current
// state. The view's base CSR is reference-counted exactly like Pin's
// snapshot (Pins counts it; Unpin via UnpinDelta); the overlay portion
// is frozen at call time. Repeated pins at the same version share one
// view. Callers that want a plain flat CSR should use Pin instead —
// PinDelta is for incremental consumers that benefit from skipping the
// rebuild after small mutation batches.
func (g *Graph) PinDelta() *DeltaCSR {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.deltaView == nil || g.deltaViewVersion != g.version {
		g.deltaView = g.freezeDeltaLocked()
		g.deltaViewVersion = g.version
	}
	d := g.deltaView
	if g.pins == nil {
		g.pins = make(map[*CSR]int)
	}
	g.pins[d.base]++
	return d
}

// UnpinDelta releases the reference PinDelta holds on the view's base.
func (g *Graph) UnpinDelta(d *DeltaCSR) { g.Unpin(d.base) }

func (g *Graph) freezeDeltaLocked() *DeltaCSR {
	d := g.delta
	if d == nil || (d.nAdds == 0 && d.nDels == 0) {
		// No overlay (or an empty one): the view is just the current
		// snapshot. csrLocked re-bases an empty overlay for free.
		return &DeltaCSR{base: g.csrLocked(), directed: g.Directed, epoch: g.epoch, n: g.N(), m: g.numEdges}
	}
	v := &DeltaCSR{
		base:     g.deltaBase,
		directed: g.Directed,
		epoch:    g.epoch,
		n:        g.N(),
		m:        g.numEdges,
		// Add-slices can be shared: deletes reallocate them and
		// appends only write past the frozen length. The maps are
		// copied — future batches insert into the live ones.
		adds:   make(map[VertexID][]Edge, len(d.adds)),
		dels:   make(map[int32]struct{}, len(d.dels)),
		delCnt: make(map[VertexID]int, len(d.delCnt)),
	}
	for u, es := range d.adds {
		v.adds[u] = es
	}
	for i := range d.dels {
		v.dels[i] = struct{}{}
	}
	for u, c := range d.delCnt {
		v.delCnt[u] = c
	}
	if g.Directed {
		v.inAdds = make(map[VertexID][]Edge, len(d.inAdds))
		for u, es := range d.inAdds {
			// Copied, not shared: the in-span merge needs these
			// sorted by source, and sorting in place would reorder
			// the live overlay.
			cp := append([]Edge(nil), es...)
			sort.SliceStable(cp, func(i, j int) bool { return cp[i].Dst < cp[j].Dst })
			v.inAdds[u] = cp
		}
		v.delPairs = make(map[[2]VertexID]int, len(d.delPairs))
		for k, c := range d.delPairs {
			v.delPairs[k] = c
		}
	}
	return v
}

// N returns the number of vertices.
func (d *DeltaCSR) N() int { return d.n }

// M returns the number of edges (undirected edges counted once).
func (d *DeltaCSR) M() int { return d.m }

// Epoch returns the graph epoch this view was frozen at.
func (d *DeltaCSR) Epoch() int64 { return d.epoch }

// Directed reports whether the underlying graph is directed.
func (d *DeltaCSR) Directed() bool { return d.directed }

// Base returns the pinned base CSR the overlay applies to.
func (d *DeltaCSR) Base() *CSR { return d.base }

// OverlaySize returns the number of overlay additions and deletions —
// the work a reader pays on top of the base spans.
func (d *DeltaCSR) OverlaySize() (adds, dels int) {
	for _, es := range d.adds {
		adds += len(es)
	}
	return adds, len(d.dels)
}

// OutDegree returns the out-degree of v in the evolved graph.
func (d *DeltaCSR) OutDegree(v VertexID) int {
	return d.base.OutDegree(v) - d.delCnt[v] + len(d.adds[v])
}

// ForEachOut calls f for every out-edge of v in canonical order: the
// surviving base entries in base order, then the appended entries in
// insertion order — identical to the enumeration of a rebuilt CSR.
func (d *DeltaCSR) ForEachOut(v VertexID, f func(dst VertexID, w float64)) {
	if d.delCnt[v] == 0 {
		d.base.ForEachOut(v, f)
	} else {
		// Flat-index walk so tombstones can be checked; forEachOutIdx
		// block-decodes packed bases into a stack buffer.
		d.base.forEachOutIdx(v, func(i int32, dst VertexID) {
			if _, dead := d.dels[i]; dead {
				return
			}
			f(dst, d.base.Weight(i))
		})
	}
	for _, e := range d.adds[v] {
		f(e.Dst, e.W)
	}
}

// ForEachIn calls f for every in-edge (src -> v) in canonical order:
// sources ascending, same-source entries in out-index order, matching a
// rebuilt CSR's in-span exactly. For undirected graphs in == out.
func (d *DeltaCSR) ForEachIn(v VertexID, f func(src VertexID, w float64)) {
	if !d.directed {
		d.ForEachOut(v, f)
		return
	}
	d.base.EnsureIn()
	adds := d.inAdds[v]
	ai := 0
	cur := VertexID(-1)
	toSkip := 0
	d.base.forEachInIdx(v, func(i int32, s VertexID) {
		if s != cur {
			cur = s
			toSkip = d.delPairs[[2]VertexID{s, v}]
		}
		// Appended entries from strictly smaller sources precede this
		// run; equal-source appends follow the whole base run (they
		// were inserted later, i.e. at larger out-indices).
		for ai < len(adds) && adds[ai].Dst < s {
			f(adds[ai].Dst, adds[ai].W)
			ai++
		}
		if toSkip > 0 {
			toSkip--
			return
		}
		w := 1.0
		if d.base.inWeights != nil {
			w = d.base.inWeights[i]
		}
		f(s, w)
	})
	for ; ai < len(adds); ai++ {
		f(adds[ai].Dst, adds[ai].W)
	}
}
