//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. The mapping (page-aligned, so 8-byte
// section alignment holds) survives closing the descriptor; the
// returned closer unmaps it.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
