package graph

import (
	"fmt"
	"testing"
)

// checkCSRRoundTrip verifies that a CSR snapshot is a faithful,
// order-preserving image of g: same vertex/edge counts, same degrees,
// entry i of g.Out[v] equals CSR entry Offsets[v]+i (destination,
// weight, label), and the transpose matches Graph.In entry for entry.
// This is the contract the engines rely on for byte-identical results
// after migrating from [][]Edge iteration to CSR spans.
func checkCSRRoundTrip(t *testing.T, g *Graph) {
	t.Helper()
	c := g.CSR()
	if c.N() != g.N() {
		t.Fatalf("CSR.N = %d, want %d", c.N(), g.N())
	}
	if c.M() != g.M() {
		t.Fatalf("CSR.M = %d, want %d", c.M(), g.M())
	}
	entries := 0
	hasW, hasL := false, false
	for v := range g.Out {
		entries += len(g.Out[v])
		for _, e := range g.Out[v] {
			if e.W != 1 {
				hasW = true
			}
			if e.L != "" {
				hasL = true
			}
		}
	}
	if c.NumEntries() != entries {
		t.Fatalf("CSR.NumEntries = %d, want %d", c.NumEntries(), entries)
	}
	if (c.Weights != nil) != hasW {
		t.Fatalf("CSR.Weights presence = %v, want %v", c.Weights != nil, hasW)
	}
	if (c.LabelIDs != nil) != hasL {
		t.Fatalf("CSR.LabelIDs presence = %v, want %v", c.LabelIDs != nil, hasL)
	}
	if hasL && c.Labels[0] != "" {
		t.Fatalf("CSR.Labels[0] = %q, want empty string", c.Labels[0])
	}
	for v := 0; v < g.N(); v++ {
		id := VertexID(v)
		adj := g.Out[v]
		if c.OutDegree(id) != len(adj) {
			t.Fatalf("vertex %d: OutDegree = %d, want %d", v, c.OutDegree(id), len(adj))
		}
		out := c.Out(id)
		ws := c.OutWeights(id)
		lo, hi := c.OutRange(id)
		if int(hi-lo) != len(adj) {
			t.Fatalf("vertex %d: OutRange span %d, want %d", v, hi-lo, len(adj))
		}
		for i, e := range adj {
			if out[i] != e.Dst {
				t.Fatalf("vertex %d entry %d: dst %d, want %d", v, i, out[i], e.Dst)
			}
			if w := c.Weight(lo + int32(i)); w != e.W {
				t.Fatalf("vertex %d entry %d: weight %v, want %v", v, i, w, e.W)
			}
			if ws != nil && ws[i] != e.W {
				t.Fatalf("vertex %d entry %d: OutWeights %v, want %v", v, i, ws[i], e.W)
			}
			if l := c.EdgeLabel(lo + int32(i)); l != e.L {
				t.Fatalf("vertex %d entry %d: label %q, want %q", v, i, l, e.L)
			}
		}
		// ForEachOut and AppendOutEdges agree with the spans.
		j := 0
		c.ForEachOut(id, func(dst VertexID, w float64) {
			if dst != adj[j].Dst || w != adj[j].W {
				t.Fatalf("vertex %d ForEachOut entry %d: (%d, %v), want (%d, %v)",
					v, j, dst, w, adj[j].Dst, adj[j].W)
			}
			j++
		})
		if j != len(adj) {
			t.Fatalf("vertex %d: ForEachOut visited %d entries, want %d", v, j, len(adj))
		}
		mat := c.AppendOutEdges(nil, id)
		if len(mat) != len(adj) {
			t.Fatalf("vertex %d: AppendOutEdges returned %d entries, want %d", v, len(mat), len(adj))
		}
		for i := range mat {
			if mat[i] != adj[i] {
				t.Fatalf("vertex %d entry %d: AppendOutEdges %+v, want %+v", v, i, mat[i], adj[i])
			}
		}
	}
	// Transpose consistency: same entries as Graph.In (Graph.EnsureIn
	// also iterates sources ascending, so order must match exactly).
	// For undirected graphs Graph.EnsureIn is a no-op and in-adjacency
	// is out-adjacency.
	c.EnsureIn()
	g.EnsureIn()
	inOf := func(v VertexID) []Edge {
		if !g.Directed {
			return g.Out[v]
		}
		return g.In[v]
	}
	for v := 0; v < g.N(); v++ {
		id := VertexID(v)
		inAdj := inOf(id)
		if c.InDegree(id) != len(inAdj) {
			t.Fatalf("vertex %d: InDegree = %d, want %d", v, c.InDegree(id), len(inAdj))
		}
		srcs := c.In(id)
		for i, e := range inAdj {
			if srcs[i] != e.Dst {
				t.Fatalf("vertex %d in-entry %d: src %d, want %d", v, i, srcs[i], e.Dst)
			}
		}
		j := 0
		c.ForEachIn(id, func(src VertexID, w float64) {
			if src != inAdj[j].Dst || w != inAdj[j].W {
				t.Fatalf("vertex %d ForEachIn entry %d: (%d, %v), want (%d, %v)",
					v, j, src, w, inAdj[j].Dst, inAdj[j].W)
			}
			j++
		})
		if j != len(inAdj) {
			t.Fatalf("vertex %d: ForEachIn visited %d entries, want %d", v, j, len(inAdj))
		}
		mat := c.AppendInEdges(nil, id)
		if len(mat) != len(inAdj) {
			t.Fatalf("vertex %d: AppendInEdges returned %d entries, want %d", v, len(mat), len(inAdj))
		}
		for i := range mat {
			if mat[i] != inAdj[i] {
				t.Fatalf("vertex %d in-entry %d: AppendInEdges %+v, want %+v", v, i, mat[i], inAdj[i])
			}
		}
	}
}

// TestCSRRoundTripGenerators runs the round-trip check over every
// generator family, including weighted and labeled variants.
func TestCSRRoundTripGenerators(t *testing.T) {
	alphabet := []string{"a", "b", "c"}
	cases := []struct {
		name  string
		build func() *Graph
	}{
		{"empty", func() *Graph { return New(0, false) }},
		{"isolated", func() *Graph { return New(5, false) }},
		{"path", func() *Graph { return Path(17) }},
		{"permuted-path", func() *Graph { return PermutedPath(40, 7) }},
		{"cycle", func() *Graph { return Cycle(12) }},
		{"complete", func() *Graph { return Complete(9) }},
		{"grid", func() *Graph { return Grid(6, 7) }},
		{"star", func() *Graph { return Star(15) }},
		{"random", func() *Graph { return Random(60, 200, 1) }},
		{"random-connected", func() *Graph { return RandomConnected(50, 120, 2) }},
		{"random-directed", func() *Graph { return RandomDirected(50, 300, 3) }},
		{"preferential-attachment", func() *Graph { return PreferentialAttachment(80, 4, 4) }},
		{"sbm", func() *Graph { return StochasticBlockModel(60, 3, 0.3, 0.02, 5) }},
		{"watts-strogatz", func() *Graph { return WattsStrogatz(50, 4, 0.2, 6) }},
		{"random-tree", func() *Graph { return RandomTree(70, 7) }},
		{"binary-tree", func() *Graph { return BalancedBinaryTree(31) }},
		{"caterpillar", func() *Graph { return CaterpillarTree(24) }},
		{"bipartite", func() *Graph { return RandomBipartite(20, 30, 90, 8) }},
		{"weighted", func() *Graph {
			g := Random(50, 150, 9)
			RandomWeights(g, 10)
			return g
		}},
		{"weighted-directed", func() *Graph {
			g := RandomDirected(40, 200, 11)
			RandomWeights(g, 12)
			return g
		}},
		{"labeled", func() *Graph {
			g := Random(50, 150, 13)
			RandomLabels(g, alphabet, 14)
			return g
		}},
		{"weighted-labeled-directed", func() *Graph {
			g := RandomDirected(40, 200, 15)
			RandomWeights(g, 16)
			RandomLabels(g, alphabet, 17)
			return g
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkCSRRoundTrip(t, tc.build())
		})
	}
}

// TestCSRCacheInvalidation checks that Graph.CSR caches the snapshot
// and that every mutation path rebuilds it.
func TestCSRCacheInvalidation(t *testing.T) {
	g := Random(20, 40, 1)
	c1 := g.CSR()
	if g.CSR() != c1 {
		t.Fatal("CSR not cached across calls without mutation")
	}
	g.AddEdge(0, 19)
	c2 := g.CSR()
	if c2 == c1 {
		t.Fatal("CSR cache not invalidated by AddEdge")
	}
	if c2.NumEntries() != c1.NumEntries()+2 {
		t.Fatalf("rebuilt CSR has %d entries, want %d", c2.NumEntries(), c1.NumEntries()+2)
	}
	RandomWeights(g, 2)
	c3 := g.CSR()
	if c3 == c2 {
		t.Fatal("CSR cache not invalidated by RandomWeights")
	}
	if c3.Weights == nil {
		t.Fatal("rebuilt CSR missing weights after RandomWeights")
	}
	g.SortAdjacency()
	if g.CSR() == c3 {
		t.Fatal("CSR cache not invalidated by SortAdjacency")
	}
	checkCSRRoundTrip(t, g)
}

// TestCSRLabelInterning checks that labels are interned to a compact
// table rather than stored per entry.
func TestCSRLabelInterning(t *testing.T) {
	g := Complete(20)
	RandomLabels(g, []string{"x", "y"}, 1)
	c := g.CSR()
	if len(c.Labels) > 3 { // "" + at most two distinct labels
		t.Fatalf("interned label table has %d entries, want <= 3", len(c.Labels))
	}
	checkCSRRoundTrip(t, g)
}

// TestAddLabeledEdgeRange checks the out-of-range panic contract.
func TestAddLabeledEdgeRange(t *testing.T) {
	for _, tc := range []struct{ u, v VertexID }{{-1, 0}, {0, -1}, {5, 0}, {0, 5}} {
		t.Run(fmt.Sprintf("%d-%d", tc.u, tc.v), func(t *testing.T) {
			g := New(5, false)
			defer func() {
				if recover() == nil {
					t.Fatalf("AddLabeledEdge(%d, %d) did not panic", tc.u, tc.v)
				}
			}()
			g.AddLabeledEdge(tc.u, tc.v, 1, "")
		})
	}
}

// FuzzCSRBuild fuzzes the CSR build + transpose against the mutable
// builder: random generator parameters, optional weights and labels,
// full round-trip check.
func FuzzCSRBuild(f *testing.F) {
	f.Add(0, 0, int64(1), false, false, false)
	f.Add(20, 50, int64(2), true, false, false)
	f.Add(30, 100, int64(3), false, true, true)
	f.Add(50, 400, int64(4), true, true, false)
	f.Add(7, 3, int64(5), true, false, true)
	f.Fuzz(func(t *testing.T, n, m int, seed int64, directed, weighted, labeled bool) {
		n, m = clamp(n, 150), clamp(m, 1500)
		var g *Graph
		if directed {
			g = RandomDirected(n, m, seed)
		} else {
			g = Random(n, m, seed)
		}
		if weighted {
			RandomWeights(g, seed+1)
		}
		if labeled {
			RandomLabels(g, []string{"a", "b", "c", "d"}, seed+2)
		}
		checkCSRRoundTrip(t, g)
	})
}
