package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list serialization. The format is line-oriented and
// self-describing:
//
//	vcgraph <n> <directed|undirected>
//	v <id> <label>            (optional, for labeled graphs)
//	e <src> <dst> <weight>    (undirected edges listed once, U <= V)
//	e <src> <dst> <weight> <edge-label>
//
// Lines starting with '#' and blank lines are ignored.

// WriteEdgeList serializes g in the vcgraph edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	dir := "undirected"
	if g.Directed {
		dir = "directed"
	}
	fmt.Fprintf(bw, "vcgraph %d %s\n", g.N(), dir)
	if g.Labels != nil {
		for v, l := range g.Labels {
			fmt.Fprintf(bw, "v %d %s\n", v, l)
		}
	}
	emit := func(u, v VertexID, wt float64, l string) {
		if l == "" {
			fmt.Fprintf(bw, "e %d %d %g\n", u, v, wt)
		} else {
			fmt.Fprintf(bw, "e %d %d %g %s\n", u, v, wt, l)
		}
	}
	if g.Directed {
		for u := range g.Out {
			for _, e := range g.Out[u] {
				emit(VertexID(u), e.Dst, e.W, e.L)
			}
		}
	} else {
		for u := range g.Out {
			for _, e := range g.Out[u] {
				if VertexID(u) <= e.Dst {
					emit(VertexID(u), e.Dst, e.W, e.L)
				}
			}
		}
	}
	return bw.Flush()
}

// WriteDOT serializes g in Graphviz DOT format for visualization:
// vertex labels become node labels, weights become edge labels (only
// when not 1).
func WriteDOT(w io.Writer, g *Graph, name string) error {
	bw := bufio.NewWriter(w)
	kind, sep := "graph", "--"
	if g.Directed {
		kind, sep = "digraph", "->"
	}
	if name == "" {
		name = "vcgraph"
	}
	fmt.Fprintf(bw, "%s %q {\n", kind, name)
	if g.Labels != nil {
		for v, l := range g.Labels {
			fmt.Fprintf(bw, "  %d [label=%q];\n", v, fmt.Sprintf("%d:%s", v, l))
		}
	}
	emit := func(u, v VertexID, wt float64) {
		if wt != 1 {
			fmt.Fprintf(bw, "  %d %s %d [label=\"%g\"];\n", u, sep, v, wt)
		} else {
			fmt.Fprintf(bw, "  %d %s %d;\n", u, sep, v)
		}
	}
	if g.Directed {
		for u := range g.Out {
			for _, e := range g.Out[u] {
				emit(VertexID(u), e.Dst, e.W)
			}
		}
	} else {
		for _, e := range g.UndirectedEdges() {
			emit(e.U, e.V, e.W)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// ReadEdgeList parses the vcgraph edge-list format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "vcgraph":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: header wants 'vcgraph <n> <directed|undirected>'", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", line, fields[1])
			}
			switch fields[2] {
			case "directed":
				g = New(n, true)
			case "undirected":
				g = New(n, false)
			default:
				return nil, fmt.Errorf("graph: line %d: bad direction %q", line, fields[2])
			}
		case "v":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: vertex before header", line)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: vertex line wants 'v <id> <label>'", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= g.N() {
				return nil, fmt.Errorf("graph: line %d: bad vertex id %q", line, fields[1])
			}
			if g.Labels == nil {
				g.Labels = make([]string, g.N())
			}
			g.Labels[id] = strings.Join(fields[2:], " ")
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			if len(fields) < 4 || len(fields) > 5 {
				return nil, fmt.Errorf("graph: line %d: edge line wants 'e <src> <dst> <w> [label]'", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil ||
				u < 0 || u >= g.N() || v < 0 || v >= g.N() {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			l := ""
			if len(fields) == 5 {
				l = fields[4]
			}
			g.AddLabeledEdge(VertexID(u), VertexID(v), w, l)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing header")
	}
	if g.Directed {
		g.EnsureIn()
	}
	g.SortAdjacency()
	return g, nil
}
