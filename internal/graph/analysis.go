package graph

// Structural predicates used by generators, tests, and verification.
// These are plain utilities; the operation-counted sequential baselines
// live in internal/seq.

// Components labels each vertex with a component ID in [0, k) using BFS
// over out-adjacency (treat directed graphs as undirected by calling
// Underlying first). It returns the labels and k.
func (g *Graph) Components() ([]int, int) {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	k := 0
	queue := make([]VertexID, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = k
		queue = append(queue[:0], VertexID(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.Out[u] {
				if comp[e.Dst] == -1 {
					comp[e.Dst] = k
					queue = append(queue, e.Dst)
				}
			}
		}
		k++
	}
	return comp, k
}

// IsConnected reports whether the undirected graph is connected
// (true for the empty graph).
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	_, k := g.Components()
	return k == 1
}

// IsTree reports whether the undirected graph is a tree: connected with
// exactly n-1 edges.
func (g *Graph) IsTree() bool {
	return !g.Directed && g.N() > 0 && g.M() == g.N()-1 && g.IsConnected()
}

// BFSDistances returns hop distances from src over out-adjacency;
// unreachable vertices get -1.
func (g *Graph) BFSDistances(src VertexID) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []VertexID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.Out[u] {
			if dist[e.Dst] == -1 {
				dist[e.Dst] = dist[u] + 1
				queue = append(queue, e.Dst)
			}
		}
	}
	return dist
}

// IsBipartition reports whether the vertex set splits into the given
// left-size prefix with all edges crossing sides.
func (g *Graph) IsBipartition(nl int) bool {
	for u := range g.Out {
		for _, e := range g.Out[u] {
			if (u < nl) == (int(e.Dst) < nl) {
				return false
			}
		}
	}
	return true
}
