package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeTempVCSR(t *testing.T, g *Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.vcsr")
	if err := WriteCSRFilePath(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVCSRRoundTrip(t *testing.T) {
	graphs := map[string]*Graph{
		"powerlaw":   PreferentialAttachment(400, 3, 9),
		"random-dir": RandomDirected(250, 1200, 5),
		"weighted": func() *Graph {
			g := RandomConnected(150, 500, 2)
			RandomWeights(g, 8)
			return g
		}(),
		"empty": New(0, false),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			path := writeTempVCSR(t, g)
			got, err := OpenCSRFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer got.Close()
			if !got.Adopted() {
				t.Fatal("loaded graph not adopted")
			}
			if got.N() != g.N() || got.M() != g.M() || got.Directed != g.Directed {
				t.Fatalf("shape: got n=%d m=%d dir=%v, want n=%d m=%d dir=%v",
					got.N(), got.M(), got.Directed, g.N(), g.M(), g.Directed)
			}
			want := BuildCSR(g)
			assertCSREqual(t, name, want, got.CSR())
			if g.N() > 0 && !got.CSR().Packed() {
				t.Fatal("loaded snapshot not packed")
			}
		})
	}
}

func TestVCSRAdoptedGraphIsReadOnly(t *testing.T) {
	g, err := OpenCSRFile(writeTempVCSR(t, Cycle(10)))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.ApplyMutations([]Mutation{{Op: InsertEdge, U: 0, V: 5}}); err == nil {
		t.Fatal("ApplyMutations succeeded on adopted graph")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic on adopted graph", name)
			}
		}()
		f()
	}
	mustPanic("AddEdge", func() { g.AddEdge(0, 5) })
	mustPanic("Invalidate", func() { g.Invalidate() })
	// Reads all work, including the lazily derived transpose.
	if d := g.Degree(3); d != 2 {
		t.Fatalf("Degree(3) = %d, want 2", d)
	}
	g.EnsureIn()
	if got := g.CSR().In(0); len(got) != 2 {
		t.Fatalf("In(0) = %v, want 2 in-neighbors", got)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestVCSRRejectsGarbage(t *testing.T) {
	g := PreferentialAttachment(60, 2, 4)
	var buf bytes.Buffer
	if err := WriteCSRFile(&buf, g.CSR()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()
	tryOpen := func(name string, data []byte) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		loaded, err := OpenCSRFile(path)
		if err == nil {
			loaded.Close()
		}
		return err
	}
	if err := tryOpen("good.vcsr", good); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}
	if err := tryOpen("empty.vcsr", nil); err == nil {
		t.Error("empty file accepted")
	}
	if err := tryOpen("magic.vcsr", append([]byte("NOPE"), good[4:]...)); err == nil {
		t.Error("bad magic accepted")
	}
	if err := tryOpen("trunc.vcsr", good[:len(good)/2]); err == nil {
		t.Error("truncated file accepted")
	}
	// Corrupt the packed stream one byte at a time: every corruption
	// must be rejected or decode to in-range destinations — never panic
	// or yield a CSR that indexes out of bounds.
	for i := vcsrHeaderLen; i < len(good); i += 7 {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xff
		if werr := os.WriteFile(filepath.Join(dir, "mut.vcsr"), mut, 0o644); werr != nil {
			t.Fatal(werr)
		}
		loaded, err := OpenCSRFile(filepath.Join(dir, "mut.vcsr"))
		if err != nil {
			continue
		}
		c := loaded.CSR()
		n := VertexID(c.N())
		var s Scratch
		for v := VertexID(0); v < n; v++ {
			for _, d := range c.OutSpan(v, &s) {
				if d < 0 || d >= n {
					t.Fatalf("byte %d corruption: out-of-range dst %d accepted", i, d)
				}
			}
		}
		loaded.Close()
	}
}

func TestVCSRNoVcsrOnLabeled(t *testing.T) {
	g := New(2, false)
	g.AddLabeledEdge(0, 1, 1, "road")
	var buf bytes.Buffer
	if err := WriteCSRFile(&buf, g.CSR()); err == nil {
		t.Fatal("labeled snapshot serialized")
	}
}
