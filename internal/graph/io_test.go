package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func graphsEqual(a, b *Graph) bool {
	if a.Directed != b.Directed || a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		if a.Label(VertexID(v)) != b.Label(VertexID(v)) {
			return false
		}
	}
	type triple struct {
		u, v VertexID
		w    float64
		l    string
	}
	collect := func(g *Graph) map[triple]int {
		m := map[triple]int{}
		for u := range g.Out {
			for _, e := range g.Out[u] {
				m[triple{VertexID(u), e.Dst, e.W, e.L}]++
			}
		}
		return m
	}
	ma, mb := collect(a), collect(b)
	if len(ma) != len(mb) {
		return false
	}
	for k, c := range ma {
		if mb[k] != c {
			return false
		}
	}
	return true
}

func TestEdgeListRoundTripUndirected(t *testing.T) {
	g := RandomConnected(50, 120, 3)
	RandomWeights(g, 4)
	if !graphsEqual(g, roundTrip(t, g)) {
		t.Fatal("round trip changed the graph")
	}
}

func TestEdgeListRoundTripDirectedLabeled(t *testing.T) {
	g := RandomDirected(40, 160, 5)
	RandomLabels(g, []string{"A", "B", "C"}, 6)
	back := roundTrip(t, g)
	if !graphsEqual(g, back) {
		t.Fatal("round trip changed the graph")
	}
	if back.In == nil {
		t.Fatal("reader did not build in-adjacency for directed graph")
	}
}

func TestEdgeListRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := Random(30, 60, seed)
		return graphsEqual(g, roundTrip(t, g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListComments(t *testing.T) {
	in := `# a comment
vcgraph 3 undirected

e 0 1 2.5
# another
e 1 2 1
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.Out[0][0].W != 2.5 {
		t.Fatalf("weight %v", g.Out[0][0].W)
	}
}

func TestEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"no header":        "e 0 1 1\n",
		"double header":    "vcgraph 2 undirected\nvcgraph 2 undirected\n",
		"bad direction":    "vcgraph 2 sideways\n",
		"bad count":        "vcgraph -4 directed\n",
		"edge range":       "vcgraph 2 undirected\ne 0 7 1\n",
		"vertex range":     "vcgraph 2 undirected\nv 9 X\n",
		"unknown record":   "vcgraph 2 undirected\nz 1 2\n",
		"short edge":       "vcgraph 2 undirected\ne 0 1\n",
		"empty input":      "",
		"non-numeric edge": "vcgraph 2 undirected\ne a b c\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestEdgeListEmptyGraph(t *testing.T) {
	g := New(5, false)
	back := roundTrip(t, g)
	if back.N() != 5 || back.M() != 0 {
		t.Fatalf("n=%d m=%d", back.N(), back.M())
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(3, false)
	g.AddWeightedEdge(0, 1, 2.5)
	g.AddEdge(1, 2)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "demo"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "demo"`, "0 -- 1", `label="2.5"`, "1 -- 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	d := New(2, true)
	d.Labels = []string{"A", "B"}
	d.AddEdge(0, 1)
	buf.Reset()
	if err := WriteDOT(&buf, d, ""); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{`digraph "vcgraph"`, "0 -> 1", `label="0:A"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}
