package graph

import (
	"strings"
	"testing"
)

// liveJournalStyle mimics the SNAP corpus shape: '#' header comments,
// tab-separated integer pairs with gaps in the ID space, duplicate
// edges, a reverse appearance, and a self-loop.
const liveJournalStyle = `# Directed graph (each unordered pair of nodes is saved once)
# LiveJournal-style fixture
# FromNodeId	ToNodeId
0	11
0	102
11	102
102	0
11	11
0	11
% percent comments happen in some TSV corpora

102	7
`

func TestReadSNAPUndirectedSimple(t *testing.T) {
	g, err := ReadSNAP(strings.NewReader(liveJournalStyle), SNAPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Interning order: 0, 11, 102, 7 -> 0, 1, 2, 3.
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.Directed {
		t.Fatal("undirected graph marked directed")
	}
	// Self-loop dropped; 102->0 is the reverse of 0->102 and 0->11
	// repeats, both dropped: {0,11} {0,102} {11,102} {102,7}.
	if g.M() != 4 {
		t.Fatalf("M = %d, want 4", g.M())
	}
	wantAdj := map[VertexID][]VertexID{
		0: {1, 2},
		1: {0, 2},
		2: {0, 1, 3},
		3: {2},
	}
	for v, want := range wantAdj {
		got := g.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("v%d neighbors = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("v%d neighbors = %v, want %v", v, got, want)
			}
		}
	}
}

func TestReadSNAPDirectedPolicies(t *testing.T) {
	g, err := ReadSNAP(strings.NewReader(liveJournalStyle), SNAPOptions{
		Directed:       true,
		KeepSelfLoops:  true,
		KeepDuplicates: true,
		KeepIDs:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Everything kept: 7 data lines = 7 directed edges.
	if g.M() != 7 {
		t.Fatalf("M = %d, want 7", g.M())
	}
	if !g.Directed {
		t.Fatal("directed graph not marked directed")
	}
	wantLabels := []string{"0", "11", "102", "7"}
	for v, want := range wantLabels {
		if g.Labels[v] != want {
			t.Fatalf("label[%d] = %q, want %q", v, g.Labels[v], want)
		}
	}
	// 102->0 is a distinct directed edge, not a duplicate of 0->102, so
	// out-degrees count every line: 0->{11,102,11}, 11->{102,11},
	// 102->{0,7}.
	deg := map[VertexID]int{0: 3, 1: 2, 2: 2, 3: 0}
	for v, want := range deg {
		if got := g.Degree(v); got != want {
			t.Fatalf("out-degree of v%d = %d, want %d", v, got, want)
		}
	}
	// Directed duplicates kept: 0->11 appears twice.
	cnt := 0
	for _, d := range g.Neighbors(0) {
		if d == 1 {
			cnt++
		}
	}
	if cnt != 2 {
		t.Fatalf("duplicate 0->11 kept %d times, want 2", cnt)
	}
	// In-adjacency was built eagerly: 0->11 twice plus the self-loop.
	if got := g.InDegree(1); got != 3 {
		t.Fatalf("in-degree of v1 = %d, want 3", got)
	}
}

func TestReadSNAPDeterministicInterning(t *testing.T) {
	// Same file, non-integer tokens: interning must be first-appearance
	// order regardless of token content, and two reads must agree.
	const data = "beta alpha\ngamma beta\nalpha gamma\n"
	g1, err := ReadSNAP(strings.NewReader(data), SNAPOptions{KeepIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ReadSNAP(strings.NewReader(data), SNAPOptions{KeepIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"beta", "alpha", "gamma"}
	for v := range want {
		if g1.Labels[v] != want[v] || g2.Labels[v] != want[v] {
			t.Fatalf("labels = %v / %v, want %v", g1.Labels, g2.Labels, want)
		}
	}
}

func TestReadSNAPWeights(t *testing.T) {
	g, err := ReadSNAP(strings.NewReader("a b 2.5\nb c 0.25\n"), SNAPOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if w := g.Out[0][0].W; w != 2.5 {
		t.Fatalf("weight a->b = %g, want 2.5", w)
	}
	if w := g.Out[1][0].W; w != 0.25 {
		t.Fatalf("weight b->c = %g, want 0.25", w)
	}
}

func TestReadSNAPErrors(t *testing.T) {
	for _, bad := range []string{
		"a\n",           // one field
		"a b c d\n",     // four fields
		"a b notanum\n", // bad weight
	} {
		if _, err := ReadSNAP(strings.NewReader(bad), SNAPOptions{}); err == nil {
			t.Errorf("ReadSNAP(%q) accepted malformed input", bad)
		}
	}
	// Empty input is a valid empty graph, not an error.
	g, err := ReadSNAP(strings.NewReader("# only comments\n\n"), SNAPOptions{})
	if err != nil || g.N() != 0 {
		t.Fatalf("comment-only input: g.N()=%d err=%v", g.N(), err)
	}
}

func TestReadSNAPPackedRoundTrip(t *testing.T) {
	// A SNAP-loaded graph must build identical flat and packed CSRs —
	// the loader sorts adjacency, which is the codec's best case.
	g, err := ReadSNAP(strings.NewReader(liveJournalStyle), SNAPOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	assertCSREqual(t, "snap", BuildCSR(g), BuildPackedCSR(g))
}
