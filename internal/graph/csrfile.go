package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"
)

// The .vcsr on-disk snapshot format: a packed CSR laid out so the file
// can be mapped into memory and served directly — the packed byte
// stream, the block directory, and the offset array are used in place,
// with zero parse-time allocation proportional to the graph.
//
// Layout (all integers little-endian):
//
//	header (64 bytes)
//	  [0:4)    magic "VCSR"
//	  [4:8)    uint32 format version (currently 1)
//	  [8:12)   uint32 flags: bit0 directed, bit1 weighted
//	  [12:16)  reserved, zero
//	  [16:24)  uint64 n        — vertex count
//	  [24:32)  uint64 entries  — adjacency entries (== Offsets[n])
//	  [32:40)  uint64 m        — edge count
//	  [40:48)  uint64 dataLen  — packed destination stream bytes
//	  [48:64)  reserved, zero
//	sections, each beginning at an 8-byte-aligned file offset:
//	  offsets  (n+1)×int32
//	  boff     (numBlocks(entries)+1)×uint32
//	  data     dataLen bytes of varint-delta blocks (codec.go)
//	  weights  entries×float64, present iff the weighted flag is set
//
// The 8-byte section alignment plus the page alignment of mmap is what
// makes the in-place unsafe.Slice views legal. The transpose is not
// stored; EnsureIn derives it in memory on first use.

const (
	vcsrMagic      = "VCSR"
	vcsrVersion    = 1
	vcsrHeaderLen  = 64
	vcsrFlagDir    = 1 << 0
	vcsrFlagWeight = 1 << 1
)

func align8(off int) int { return (off + 7) &^ 7 }

// WriteCSRFile serializes c in the .vcsr format. Flat snapshots are
// packed on the fly; labeled snapshots are rejected (the format stores
// topology and weights only).
func WriteCSRFile(w io.Writer, c *CSR) error {
	if c.LabelIDs != nil {
		return fmt.Errorf("graph: vcsr: labeled snapshots not supported")
	}
	p := c.packed
	if p == nil {
		p = packEdges(c.Dsts)
	}
	var flags uint32
	if c.Directed {
		flags |= vcsrFlagDir
	}
	if c.Weights != nil {
		flags |= vcsrFlagWeight
	}
	var hdr [vcsrHeaderLen]byte
	copy(hdr[0:4], vcsrMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], vcsrVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], flags)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(c.N()))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(int(p.n)))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(c.M()))
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(len(p.data)))
	bw := bufio.NewWriter(w)
	bw.Write(hdr[:])
	pos := vcsrHeaderLen
	pad := func() {
		for ; pos%8 != 0; pos++ {
			bw.WriteByte(0)
		}
	}
	writeU32s := func(emit func(i int) uint32, n int) {
		pad()
		var b [4]byte
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(b[:], emit(i))
			bw.Write(b[:])
		}
		pos += 4 * n
	}
	writeU32s(func(i int) uint32 { return uint32(c.Offsets[i]) }, len(c.Offsets))
	writeU32s(func(i int) uint32 { return p.boff[i] }, len(p.boff))
	pad()
	bw.Write(p.data)
	pos += len(p.data)
	if c.Weights != nil {
		pad()
		var b [8]byte
		for _, wt := range c.Weights {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(wt))
			bw.Write(b[:])
		}
		pos += 8 * len(c.Weights)
	}
	return bw.Flush()
}

// WriteCSRFilePath writes g's current snapshot to path in .vcsr format.
func WriteCSRFilePath(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSRFile(f, g.CSR()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func vcsrErr(format string, args ...any) error {
	return fmt.Errorf("graph: vcsr: "+format, args...)
}

// OpenCSRFile maps a .vcsr file and wraps it as a read-only adopted
// Graph (see AdoptCSR): the offset array, block directory, packed byte
// stream, and weights are served from the mapping in place. The file is
// fully validated up front — every block is decoded once and every
// destination range-checked — so the internal decoders, which treat
// their stream as trusted, can never fail afterwards. Call Close on the
// returned graph to release the mapping.
func OpenCSRFile(path string) (*Graph, error) {
	if !nativeLittleEndian() {
		return nil, vcsrErr("big-endian hosts are not supported")
	}
	buf, closer, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	g, err := parseVCSR(buf)
	if err != nil {
		closer()
		return nil, err
	}
	g.closer = closer
	return g, nil
}

func nativeLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

func parseVCSR(buf []byte) (*Graph, error) {
	if len(buf) < vcsrHeaderLen {
		return nil, vcsrErr("file shorter than header")
	}
	if string(buf[0:4]) != vcsrMagic {
		return nil, vcsrErr("bad magic %q", buf[0:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != vcsrVersion {
		return nil, vcsrErr("unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint32(buf[8:12])
	n := binary.LittleEndian.Uint64(buf[16:24])
	entries := binary.LittleEndian.Uint64(buf[24:32])
	m := binary.LittleEndian.Uint64(buf[32:40])
	dataLen := binary.LittleEndian.Uint64(buf[40:48])
	if n > math.MaxInt32 || entries > math.MaxInt32 || m > entries || dataLen > uint64(len(buf)) {
		return nil, vcsrErr("implausible header n=%d entries=%d m=%d dataLen=%d", n, entries, m, dataLen)
	}
	nb := packedNumBlocks(int(entries))
	pos := vcsrHeaderLen
	section := func(elem, count int) ([]byte, error) {
		pos = align8(pos)
		end := pos + elem*count
		if end > len(buf) {
			return nil, vcsrErr("file truncated: need %d bytes, have %d", end, len(buf))
		}
		s := buf[pos:end]
		pos = end
		return s, nil
	}
	offB, err := section(4, int(n)+1)
	if err != nil {
		return nil, err
	}
	boffB, err := section(4, nb+1)
	if err != nil {
		return nil, err
	}
	dataB, err := section(1, int(dataLen))
	if err != nil {
		return nil, err
	}
	c := &CSR{
		Directed: flags&vcsrFlagDir != 0,
		Offsets:  int32View(offB),
		numEdges: int(m),
		packed: &packedEdges{
			n:    int32(entries),
			data: dataB,
			boff: uint32View(boffB),
		},
	}
	if flags&vcsrFlagWeight != 0 {
		wB, err := section(8, int(entries))
		if err != nil {
			return nil, err
		}
		c.Weights = float64View(wB)
	}
	// Structural validation: offsets monotone and spanning entries,
	// every block decodable, every destination in range. After this the
	// trusted-stream decoders (mustDecodeBlock) cannot fail.
	if c.Offsets[0] != 0 || c.Offsets[n] != int32(entries) {
		return nil, vcsrErr("offsets do not span [0, %d]", entries)
	}
	for v := uint64(0); v < n; v++ {
		if c.Offsets[v] > c.Offsets[v+1] {
			return nil, vcsrErr("offsets not monotone at vertex %d", v)
		}
	}
	if err := c.packed.validate(); err != nil {
		return nil, err
	}
	var bad error
	c.packed.forEachRange(0, int32(entries), func(i int32, d VertexID) {
		if bad == nil && (d < 0 || uint64(d) >= n) {
			bad = vcsrErr("destination %d out of range at entry %d", d, i)
		}
	})
	if bad != nil {
		return nil, bad
	}
	return AdoptCSR(c), nil
}

// The in-place views: legal because every section starts 8-byte aligned
// within the file and mapFile returns 8-byte-aligned memory (page-
// aligned for mmap, a []uint64 allocation for the portable fallback).
func int32View(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func uint32View(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func float64View(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}
