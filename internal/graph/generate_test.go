package graph

import (
	"testing"
	"testing/quick"
)

func TestStochasticBlockModelStructure(t *testing.T) {
	g := StochasticBlockModel(120, 3, 0.5, 0.01, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Count intra vs inter edges: intra should dominate by far.
	var intra, inter int
	for _, e := range g.UndirectedEdges() {
		if int(e.U)/40 == int(e.V)/40 {
			intra++
		} else {
			inter++
		}
	}
	if intra < 5*inter {
		t.Fatalf("intra=%d inter=%d: community structure too weak", intra, inter)
	}
	// Expected intra edges ≈ 3 * C(40,2) * 0.5 = 1170.
	if intra < 900 || intra > 1450 {
		t.Fatalf("intra=%d far from expectation", intra)
	}
}

func TestStochasticBlockModelExtremes(t *testing.T) {
	// pIn=1, pOut=0: disjoint cliques.
	g := StochasticBlockModel(30, 3, 1, 0, 1)
	_, k := g.Components()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if g.M() != 3*45 {
		t.Fatalf("m = %d, want 135", g.M())
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: pure ring lattice, every vertex degree 2k, diameter ~ n/(2k).
	g := WattsStrogatz(60, 2, 0, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(VertexID(v)) != 4 {
			t.Fatalf("degree[%d] = %d, want 4", v, g.Degree(VertexID(v)))
		}
	}
	if !g.IsConnected() {
		t.Fatal("lattice disconnected")
	}
}

func TestWattsStrogatzSmallWorld(t *testing.T) {
	// Rewiring shrinks the diameter while keeping m comparable.
	lattice := WattsStrogatz(400, 3, 0, 5)
	small := WattsStrogatz(400, 3, 0.2, 5)
	if small.M() < lattice.M()*8/10 {
		t.Fatalf("rewired graph lost too many edges: %d vs %d", small.M(), lattice.M())
	}
	dl := maxFiniteDist(lattice, 0)
	ds := maxFiniteDist(small, 0)
	if ds*2 > dl {
		t.Fatalf("rewiring did not shrink distances: lattice %d, rewired %d", dl, ds)
	}
}

func maxFiniteDist(g *Graph, src VertexID) int {
	mx := 0
	for _, d := range g.BFSDistances(src) {
		if d > mx {
			mx = d
		}
	}
	return mx
}

func TestWattsStrogatzQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := WattsStrogatz(50, 2, 0.3, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutedPathIsPath(t *testing.T) {
	f := func(seed int64) bool {
		g := PermutedPath(40, seed)
		if !g.IsTree() {
			return false
		}
		deg1 := 0
		for v := 0; v < g.N(); v++ {
			switch g.Degree(VertexID(v)) {
			case 1:
				deg1++
			case 2:
			default:
				return false
			}
		}
		return deg1 == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRMATStructure(t *testing.T) {
	g := RMAT(10, 4000, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 1024 {
		t.Fatalf("n = %d, want 1024", g.N())
	}
	if g.M() < 3500 || g.M() > 4000 {
		t.Fatalf("m = %d, want approximately 4000", g.M())
	}
	// Determinism: the same seed must reproduce the graph exactly.
	h := RMAT(10, 4000, 7)
	for v := 0; v < g.N(); v++ {
		if len(g.Out[v]) != len(h.Out[v]) {
			t.Fatalf("vertex %d: degree differs across same-seed runs", v)
		}
		for i := range g.Out[v] {
			if g.Out[v][i] != h.Out[v][i] {
				t.Fatalf("vertex %d entry %d: adjacency differs across same-seed runs", v, i)
			}
		}
	}
	// Power-law skew: the hottest vertex should dwarf the average
	// degree, and the low-ID quadrant should hold most endpoints.
	maxDeg, lowHalf := 0, 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(VertexID(v))
		if d > maxDeg {
			maxDeg = d
		}
		if v < g.N()/2 {
			lowHalf += d
		}
	}
	avg := 2 * g.M() / g.N()
	if maxDeg < 8*avg {
		t.Fatalf("max degree %d vs average %d: no power-law skew", maxDeg, avg)
	}
	if 3*lowHalf < 4*g.M() { // low-ID half should hold >= 2/3 of the 2m endpoints
		t.Fatalf("low-ID half holds %d of %d endpoints: no locality skew", lowHalf, 2*g.M())
	}
}

func TestRMATCompressesBetterThanUniform(t *testing.T) {
	// The generator exists to exercise delta compression under ID
	// locality: its packed snapshot must beat the flat one by more than
	// a uniform-target power-law graph of similar size does.
	sizeRatio := func(g *Graph) float64 {
		g.Encoding = EncodeInt32
		c := g.Pin()
		flat := c.EdgeBytes()
		g.Unpin(c)
		g.Invalidate()
		g.Encoding = EncodePacked
		c = g.Pin()
		packed := c.EdgeBytes()
		g.Unpin(c)
		return float64(flat) / float64(packed)
	}
	rm := sizeRatio(RMAT(13, 60000, 5))
	pa := sizeRatio(PreferentialAttachment(1<<13, 7, 5))
	if rm < 2.0 {
		t.Fatalf("RMAT compression ratio %.2f, want >= 2.0", rm)
	}
	if rm <= pa {
		t.Fatalf("RMAT ratio %.2f not better than uniform-target PA ratio %.2f", rm, pa)
	}
}
