package graph

import (
	"testing"
	"testing/quick"
)

func TestStochasticBlockModelStructure(t *testing.T) {
	g := StochasticBlockModel(120, 3, 0.5, 0.01, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Count intra vs inter edges: intra should dominate by far.
	var intra, inter int
	for _, e := range g.UndirectedEdges() {
		if int(e.U)/40 == int(e.V)/40 {
			intra++
		} else {
			inter++
		}
	}
	if intra < 5*inter {
		t.Fatalf("intra=%d inter=%d: community structure too weak", intra, inter)
	}
	// Expected intra edges ≈ 3 * C(40,2) * 0.5 = 1170.
	if intra < 900 || intra > 1450 {
		t.Fatalf("intra=%d far from expectation", intra)
	}
}

func TestStochasticBlockModelExtremes(t *testing.T) {
	// pIn=1, pOut=0: disjoint cliques.
	g := StochasticBlockModel(30, 3, 1, 0, 1)
	_, k := g.Components()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if g.M() != 3*45 {
		t.Fatalf("m = %d, want 135", g.M())
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: pure ring lattice, every vertex degree 2k, diameter ~ n/(2k).
	g := WattsStrogatz(60, 2, 0, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(VertexID(v)) != 4 {
			t.Fatalf("degree[%d] = %d, want 4", v, g.Degree(VertexID(v)))
		}
	}
	if !g.IsConnected() {
		t.Fatal("lattice disconnected")
	}
}

func TestWattsStrogatzSmallWorld(t *testing.T) {
	// Rewiring shrinks the diameter while keeping m comparable.
	lattice := WattsStrogatz(400, 3, 0, 5)
	small := WattsStrogatz(400, 3, 0.2, 5)
	if small.M() < lattice.M()*8/10 {
		t.Fatalf("rewired graph lost too many edges: %d vs %d", small.M(), lattice.M())
	}
	dl := maxFiniteDist(lattice, 0)
	ds := maxFiniteDist(small, 0)
	if ds*2 > dl {
		t.Fatalf("rewiring did not shrink distances: lattice %d, rewired %d", dl, ds)
	}
}

func maxFiniteDist(g *Graph, src VertexID) int {
	mx := 0
	for _, d := range g.BFSDistances(src) {
		if d > mx {
			mx = d
		}
	}
	return mx
}

func TestWattsStrogatzQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := WattsStrogatz(50, 2, 0.3, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutedPathIsPath(t *testing.T) {
	f := func(seed int64) bool {
		g := PermutedPath(40, seed)
		if !g.IsTree() {
			return false
		}
		deg1 := 0
		for v := 0; v < g.N(); v++ {
			switch g.Degree(VertexID(v)) {
			case 1:
				deg1++
			case 2:
			default:
				return false
			}
		}
		return deg1 == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
