package graph

import "sort"

// DegreeOrder returns a degree-ordered permutation of g's vertices:
// order[newID] = oldID, sorted by total degree descending with ties
// broken by old ID ascending (so the permutation is deterministic).
// Packing hubs first shrinks varint-delta CSR blocks — high-degree
// adjacency lists then reference mostly-small IDs — and improves
// locality for the frontier-heavy early supersteps.
func DegreeOrder(g *Graph) []VertexID {
	if g.Directed {
		g.EnsureIn()
	}
	order := make([]VertexID, g.N())
	for v := range order {
		order[v] = VertexID(v)
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.TotalDegree(order[i]), g.TotalDegree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	return order
}

// Relabel builds a copy of g with vertices renamed through order
// (order[newID] = oldID, a permutation of 0..n-1): edge (u, v, w)
// becomes (newOf[u], newOf[v], w), weights and labels preserved,
// adjacency sorted by destination. The graph itself is isomorphic to
// g — algorithm results map back through the permutation.
func Relabel(g *Graph, order []VertexID) *Graph {
	n := g.N()
	newOf := make([]VertexID, n)
	for newID, oldID := range order {
		newOf[oldID] = VertexID(newID)
	}
	out := New(n, g.Directed)
	if g.Labels != nil {
		out.Labels = make([]string, n)
		for newID, oldID := range order {
			out.Labels[newID] = g.Labels[oldID]
		}
	}
	for u := range g.Out {
		for _, e := range g.Out[u] {
			if !g.Directed && VertexID(u) > e.Dst {
				continue // each undirected edge appears in both lists; keep one
			}
			out.AddLabeledEdge(newOf[u], newOf[e.Dst], e.W, e.L)
		}
	}
	out.SortAdjacency()
	return out
}
