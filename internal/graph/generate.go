package graph

import (
	"math/rand"
	"slices"
)

// Generators in this file are deterministic for a given seed and are the
// synthetic substitutes for the paper's datasets (see DESIGN.md §5).
// They control exactly the structural parameters (n, m, diameter, degree
// skew) that the paper's verdicts depend on.

// Path returns the straight-line graph 0-1-2-...-n-1 (the paper's
// adversarial input for Hash-Min: diameter n-1).
func Path(n int) *Graph {
	g := New(n, false)
	for i := 0; i < n-1; i++ {
		g.AddEdge(VertexID(i), VertexID(i+1))
	}
	return g
}

// PermutedPath returns a path over a random permutation of the vertex
// IDs. Min-label algorithms on it quickly shrink to a single active
// wavefront (each vertex's label changes O(log n) expected times), the
// long thin tail that motivates the FCS optimization.
func PermutedPath(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, false)
	perm := rng.Perm(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(VertexID(perm[i]), VertexID(perm[i+1]))
	}
	g.SortAdjacency()
	return g
}

// Cycle returns the n-cycle.
func Cycle(n int) *Graph {
	g := Path(n)
	if n > 2 {
		g.AddEdge(VertexID(n-1), 0)
	}
	return g
}

// Complete returns the complete undirected graph K_n.
func Complete(n int) *Graph {
	g := New(n, false)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(VertexID(i), VertexID(j))
		}
	}
	return g
}

// Grid returns the rows x cols 2D grid graph (a road-network stand-in:
// bounded degree, large diameter).
func Grid(rows, cols int) *Graph {
	g := New(rows*cols, false)
	id := func(r, c int) VertexID { return VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) *Graph {
	g := New(n, false)
	for i := 1; i < n; i++ {
		g.AddEdge(0, VertexID(i))
	}
	return g
}

// Random returns an Erdős–Rényi style undirected graph with n vertices
// and approximately m distinct edges (no self-loops, no parallel edges),
// drawn deterministically from seed.
func Random(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, false)
	if n < 2 {
		return g
	}
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	seen := make(map[[2]VertexID]bool, m)
	for len(seen) < m {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := [2]VertexID{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		g.AddEdge(u, v)
	}
	g.SortAdjacency()
	return g
}

// RandomConnected returns a connected undirected graph: a random
// spanning tree plus extra random edges up to approximately m edges.
func RandomConnected(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, false)
	type pair = [2]VertexID
	seen := make(map[pair]bool)
	add := func(u, v VertexID) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		k := pair{u, v}
		if seen[k] {
			return false
		}
		seen[k] = true
		g.AddEdge(u, v)
		return true
	}
	// Random spanning tree: attach vertex i to a uniform earlier vertex.
	for i := 1; i < n; i++ {
		add(VertexID(rng.Intn(i)), VertexID(i))
	}
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	for len(seen) < m {
		if !add(VertexID(rng.Intn(n)), VertexID(rng.Intn(n))) {
			continue
		}
	}
	g.SortAdjacency()
	return g
}

// RandomDirected returns a directed graph with n vertices and
// approximately m distinct directed edges (no self-loops).
func RandomDirected(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, true)
	if n < 2 {
		return g
	}
	maxM := n * (n - 1)
	if m > maxM {
		m = maxM
	}
	seen := make(map[[2]VertexID]bool, m)
	for len(seen) < m {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		k := [2]VertexID{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		g.AddEdge(u, v)
	}
	g.EnsureIn()
	g.SortAdjacency()
	return g
}

// PreferentialAttachment returns a power-law-ish undirected graph built
// by the Barabási–Albert process: each new vertex attaches k edges to
// existing vertices chosen proportionally to degree. It is the stand-in
// for skewed social/web graphs.
func PreferentialAttachment(n, k int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, false)
	if n == 0 {
		return g
	}
	if k < 1 {
		k = 1
	}
	// Repeated-endpoint list makes degree-proportional sampling O(1).
	var endpoints []VertexID
	start := k + 1
	if start > n {
		start = n
	}
	for i := 0; i < start; i++ {
		for j := 0; j < i; j++ {
			g.AddEdge(VertexID(j), VertexID(i))
			endpoints = append(endpoints, VertexID(j), VertexID(i))
		}
	}
	for i := start; i < n; i++ {
		chosen := make(map[VertexID]bool, k)
		for len(chosen) < k {
			t := endpoints[rng.Intn(len(endpoints))]
			chosen[t] = true
		}
		// Iterate the chosen set in sorted order: map iteration order
		// would leak into the endpoints list (and therefore into every
		// later degree-proportional sample), making the generated graph
		// differ from process to process for the same seed.
		targets := make([]VertexID, 0, k)
		for t := range chosen {
			targets = append(targets, t)
		}
		slices.Sort(targets)
		for _, t := range targets {
			g.AddEdge(t, VertexID(i))
			endpoints = append(endpoints, t, VertexID(i))
		}
	}
	g.SortAdjacency()
	return g
}

// RMAT returns an undirected R-MAT graph (Chakrabarti, Zhan, Faloutsos)
// with 2^scale vertices and approximately m distinct edges: each edge
// picks its endpoints by recursively descending into one of four
// quadrants with probabilities (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) —
// the standard Graph500 parameters. The skew toward the low-ID quadrant
// yields both a power-law degree distribution and ID locality (a
// vertex's neighbors cluster at small IDs), which is what makes R-MAT
// the stress case of choice for delta-compressed adjacency: sorted
// neighbor gaps are small, unlike uniform-target generators whose gaps
// average n/degree. Self-loops and parallel edges are rejected; if the
// hot quadrant saturates before m edges land, the graph is returned
// with fewer (hence "approximately").
func RMAT(scale, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	g := New(n, false)
	if n < 2 {
		return g
	}
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	const a, b, c = 0.57, 0.19, 0.19
	seen := make(map[[2]VertexID]bool, m)
	for attempts := 0; len(seen) < m && attempts < 100*m; attempts++ {
		u, v := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			switch r := rng.Float64(); {
			case r < a:
				// low-ID quadrant: neither bit set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := [2]VertexID{VertexID(u), VertexID(v)}
		if seen[k] {
			continue
		}
		seen[k] = true
		g.AddEdge(k[0], k[1])
	}
	g.SortAdjacency()
	return g
}

// StochasticBlockModel returns an undirected graph with `blocks` equal
// communities of size n/blocks: within-community edges appear with
// probability pIn, cross-community edges with pOut. The ground-truth
// community of vertex v is v / (n/blocks). The standard benchmark for
// community detection.
func StochasticBlockModel(n, blocks int, pIn, pOut float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, false)
	if blocks < 1 {
		blocks = 1
	}
	size := n / blocks
	if size == 0 {
		size = 1
	}
	community := func(v int) int {
		c := v / size
		if c >= blocks {
			c = blocks - 1
		}
		return c
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if community(u) == community(v) {
				p = pIn
			}
			if rng.Float64() < p {
				g.AddEdge(VertexID(u), VertexID(v))
			}
		}
	}
	g.SortAdjacency()
	return g
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// vertex connects to its k nearest neighbors on each side, with each
// edge rewired to a uniform random endpoint with probability beta.
// High clustering with low diameter — the classic small-world testbed.
func WattsStrogatz(n, k int, beta float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	if k < 1 {
		k = 1
	}
	type pair = [2]VertexID
	seen := map[pair]bool{}
	add := func(u, v VertexID) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			return false
		}
		seen[pair{u, v}] = true
		return true
	}
	// Lattice edges, possibly rewired.
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := VertexID((u + j) % n)
			uu := VertexID(u)
			if rng.Float64() < beta {
				// Rewire: keep u, pick a fresh random endpoint.
				for tries := 0; tries < 32; tries++ {
					cand := VertexID(rng.Intn(n))
					if add(uu, cand) {
						v = cand
						break
					}
					v = NoVertex
				}
				if v == NoVertex {
					continue
				}
			} else if !add(uu, v) {
				continue
			}
			// recorded in seen by add
		}
	}
	g := New(n, false)
	for p := range seen {
		g.AddEdge(p[0], p[1])
	}
	g.SortAdjacency()
	return g
}

// RandomTree returns a uniform-ish random tree on n vertices: vertex i
// (i>0) attaches to a uniform earlier vertex. Adjacency is sorted.
func RandomTree(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, false)
	for i := 1; i < n; i++ {
		g.AddEdge(VertexID(rng.Intn(i)), VertexID(i))
	}
	g.SortAdjacency()
	return g
}

// BalancedBinaryTree returns the complete binary tree on n vertices
// (children of i at 2i+1, 2i+2); depth Theta(log n).
func BalancedBinaryTree(n int) *Graph {
	g := New(n, false)
	for i := 1; i < n; i++ {
		g.AddEdge(VertexID((i-1)/2), VertexID(i))
	}
	g.SortAdjacency()
	return g
}

// CaterpillarTree returns a path of length n/2 with a leaf hanging off
// each spine vertex: a tree with Theta(n) diameter.
func CaterpillarTree(n int) *Graph {
	g := New(n, false)
	spine := (n + 1) / 2
	for i := 1; i < spine; i++ {
		g.AddEdge(VertexID(i-1), VertexID(i))
	}
	for i := spine; i < n; i++ {
		g.AddEdge(VertexID(i-spine), VertexID(i))
	}
	g.SortAdjacency()
	return g
}

// RandomBipartite returns a bipartite undirected graph with nl left
// vertices (IDs 0..nl-1), nr right vertices (IDs nl..nl+nr-1) and
// approximately m distinct edges.
func RandomBipartite(nl, nr, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(nl+nr, false)
	maxM := nl * nr
	if m > maxM {
		m = maxM
	}
	seen := make(map[[2]VertexID]bool, m)
	for len(seen) < m {
		u := VertexID(rng.Intn(nl))
		v := VertexID(nl + rng.Intn(nr))
		k := [2]VertexID{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		g.AddEdge(u, v)
	}
	g.SortAdjacency()
	return g
}

// RandomWeights assigns distinct pseudo-random positive weights to every
// undirected edge (both directions get the same weight). Distinctness
// makes minimum spanning trees unique, which simplifies verification.
func RandomWeights(g *Graph, seed int64) {
	g.Invalidate()
	rng := rand.New(rand.NewSource(seed))
	if g.Directed {
		for u := range g.Out {
			for i := range g.Out[u] {
				g.Out[u][i].W = 1 + rng.Float64()*99
			}
		}
		g.In = nil
		g.EnsureIn()
		return
	}
	type pair = [2]VertexID
	w := make(map[pair]float64)
	used := make(map[float64]bool)
	for u := range g.Out {
		for i := range g.Out[u] {
			v := g.Out[u][i].Dst
			a, b := VertexID(u), v
			if a > b {
				a, b = b, a
			}
			k := pair{a, b}
			wt, ok := w[k]
			if !ok {
				for {
					wt = float64(1 + rng.Intn(1<<30))
					if !used[wt] {
						used[wt] = true
						break
					}
				}
				w[k] = wt
			}
			g.Out[u][i].W = wt
		}
	}
}

// RandomLabels assigns each vertex a label drawn uniformly from the
// given alphabet.
func RandomLabels(g *Graph, alphabet []string, seed int64) {
	g.Invalidate()
	rng := rand.New(rand.NewSource(seed))
	g.Labels = make([]string, g.N())
	for i := range g.Labels {
		g.Labels[i] = alphabet[rng.Intn(len(alphabet))]
	}
}
