package graph

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func randomDsts(n int, seed int64) []VertexID {
	rng := rand.New(rand.NewSource(seed))
	out := make([]VertexID, n)
	for i := range out {
		switch rng.Intn(4) {
		case 0: // small ascending run, the sorted-adjacency common case
			if i > 0 {
				out[i] = out[i-1] + VertexID(rng.Intn(8))
			} else {
				out[i] = VertexID(rng.Intn(64))
			}
		case 1: // arbitrary positive
			out[i] = VertexID(rng.Int31())
		case 2: // extremes
			ext := []VertexID{0, 1, math.MaxInt32, math.MinInt32, -1}
			out[i] = ext[rng.Intn(len(ext))]
		default: // builder-order jumps, including backwards
			out[i] = VertexID(rng.Int31()) - VertexID(rng.Int31())
		}
	}
	return out
}

func TestPackedEdgesRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 65, 127, 128, 1000} {
		src := randomDsts(n, int64(n)+1)
		p := packEdges(src)
		if err := p.validate(); err != nil {
			t.Fatalf("n=%d: validate: %v", n, err)
		}
		got := p.appendRange(nil, 0, int32(n))
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d entries", n, len(got))
		}
		for i := range src {
			if got[i] != src[i] {
				t.Fatalf("n=%d: entry %d = %d, want %d", n, i, got[i], src[i])
			}
			if at := p.at(int32(i)); at != src[i] {
				t.Fatalf("n=%d: at(%d) = %d, want %d", n, i, at, src[i])
			}
		}
		// Sub-ranges, including block-straddling ones.
		for _, r := range [][2]int{{0, n}, {n / 3, 2 * n / 3}, {n / 2, n/2 + min(n/2, 70)}} {
			lo, hi := int32(r[0]), int32(r[1])
			if hi > int32(n) {
				hi = int32(n)
			}
			sub := p.appendRange(nil, lo, hi)
			for i, d := range sub {
				if d != src[int(lo)+i] {
					t.Fatalf("n=%d range [%d,%d): entry %d mismatch", n, lo, hi, i)
				}
			}
			j := lo
			p.forEachRange(lo, hi, func(i int32, d VertexID) {
				if i != j || d != src[i] {
					t.Fatalf("n=%d forEachRange [%d,%d): got (%d,%d) want (%d,%d)", n, lo, hi, i, d, j, src[j])
				}
				j++
			})
			if j != hi {
				t.Fatalf("n=%d forEachRange [%d,%d): stopped at %d", n, lo, hi, j)
			}
		}
	}
}

func TestDecodeEdgeBlockRejectsGarbage(t *testing.T) {
	var out [edgeBlockLen]VertexID
	cases := []struct {
		name string
		data []byte
		cnt  int
	}{
		{"truncated", []byte{0x80}, 1},
		{"empty-want-one", nil, 1},
		{"overlong-varint", []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, 1},
		{"overflow-top-bits", []byte{0xff, 0xff, 0xff, 0xff, 0x7f}, 1},
		{"count-negative", []byte{0x00}, -1},
		{"count-too-big", []byte{0x00}, edgeBlockLen + 1},
	}
	for _, tc := range cases {
		if _, err := decodeEdgeBlock(tc.data, tc.cnt, &out); err == nil {
			t.Errorf("%s: decode accepted garbage", tc.name)
		}
	}
	// Wrapping delta chains are well-defined, not errors: the decoder
	// mirrors the encoder's int32 wraparound so every sequence
	// round-trips (TestPackedEdgesRoundTrip covers the extremes).
	enc := appendUvarint32(nil, zigzag(math.MaxInt32))
	enc = appendUvarint32(enc, zigzag(1))
	if _, err := decodeEdgeBlock(enc, 2, &out); err != nil {
		t.Errorf("wrapping delta chain rejected: %v", err)
	}
	if out[1] != VertexID(math.MinInt32) {
		t.Errorf("wrapped decode = %d, want MinInt32", out[1])
	}
}

// FuzzVarintBlockCodec drives the block codec both ways: any int32
// sequence must round-trip exactly, and arbitrary bytes handed to the
// decoder must produce an error or a valid decode — never a panic and
// never an out-of-bounds read.
func FuzzVarintBlockCodec(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 2, 3, 4, 250, 251, 252, 253}, 3)
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, 1)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, 1)
	f.Fuzz(func(t *testing.T, raw []byte, count int) {
		// Direction 1: interpret raw as little-endian int32s, encode one
		// block, decode, compare.
		n := min(len(raw)/4, edgeBlockLen)
		src := make([]VertexID, n)
		for i := 0; i < n; i++ {
			src[i] = VertexID(uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 |
				uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24)
		}
		enc := appendEdgeBlock(nil, src)
		if want := edgeBlockLenBytes(src); want != len(enc) {
			t.Fatalf("sizing pass predicted %d bytes, encoder wrote %d", want, len(enc))
		}
		var out [edgeBlockLen]VertexID
		used, err := decodeEdgeBlock(enc, n, &out)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if used != len(enc) {
			t.Fatalf("round-trip consumed %d of %d bytes", used, len(enc))
		}
		for i := range src {
			if out[i] != src[i] {
				t.Fatalf("round-trip entry %d = %d, want %d", i, out[i], src[i])
			}
		}

		// Direction 2: the same raw bytes as an untrusted stream; must
		// error or decode, never panic.
		if _, err := decodeEdgeBlock(raw, count, &out); err == nil && (count < 0 || count > edgeBlockLen) {
			t.Fatalf("decode accepted out-of-range count %d", count)
		}
	})
}

func TestBuildPackedCSRMatchesFlat(t *testing.T) {
	graphs := map[string]*Graph{
		"powerlaw":   PreferentialAttachment(500, 3, 7),
		"random-dir": RandomDirected(300, 1500, 11),
		"cycle":      Cycle(130),
		"weighted": func() *Graph {
			g := RandomConnected(200, 600, 3)
			RandomWeights(g, 5)
			return g
		}(),
	}
	for name, g := range graphs {
		flat := BuildCSR(g)
		packed := BuildPackedCSR(g)
		if !packed.Packed() || flat.Packed() {
			t.Fatalf("%s: Packed() flags wrong", name)
		}
		assertCSREqual(t, name, flat, packed)
		// CompressCSR/DecompressCSR agree with the streaming builder.
		assertCSREqual(t, name+"/compress", flat, CompressCSR(flat))
		assertCSREqual(t, name+"/decompress", flat, DecompressCSR(packed))
		if flat.EdgeBytes() <= packed.EdgeBytes() && g.M() > 200 {
			t.Errorf("%s: packed %dB not smaller than flat %dB", name, packed.EdgeBytes(), flat.EdgeBytes())
		}
	}
}

// assertCSREqual checks that every accessor of b enumerates exactly as
// a does: spans, per-entry callbacks, flat-index reads, transposes.
func assertCSREqual(t *testing.T, name string, a, b *CSR) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() || a.NumEntries() != b.NumEntries() {
		t.Fatalf("%s: shape mismatch n=%d/%d m=%d/%d entries=%d/%d",
			name, a.N(), b.N(), a.M(), b.M(), a.NumEntries(), b.NumEntries())
	}
	a.EnsureIn()
	b.EnsureIn()
	var s Scratch
	for v := VertexID(0); int(v) < a.N(); v++ {
		wantOut, gotOut := a.Out(v), b.Out(v)
		gotSpan := b.OutSpan(v, &s)
		if len(wantOut) != len(gotOut) || len(wantOut) != len(gotSpan) {
			t.Fatalf("%s: v%d out degree mismatch", name, v)
		}
		for i := range wantOut {
			if gotOut[i] != wantOut[i] || gotSpan[i] != wantOut[i] {
				t.Fatalf("%s: v%d out[%d] = %d/%d, want %d", name, v, i, gotOut[i], gotSpan[i], wantOut[i])
			}
		}
		wantIn, gotIn := a.In(v), b.InSpan(v, &s)
		if len(wantIn) != len(gotIn) {
			t.Fatalf("%s: v%d in degree mismatch", name, v)
		}
		for i := range wantIn {
			if gotIn[i] != wantIn[i] {
				t.Fatalf("%s: v%d in[%d] = %d, want %d", name, v, i, gotIn[i], wantIn[i])
			}
		}
		i := 0
		b.ForEachOut(v, func(dst VertexID, w float64) {
			var aw float64 = 1
			if ws := a.OutWeights(v); ws != nil {
				aw = ws[i]
			}
			if dst != wantOut[i] || w != aw {
				t.Fatalf("%s: v%d ForEachOut[%d] = (%d,%g), want (%d,%g)", name, v, i, dst, w, wantOut[i], aw)
			}
			i++
		})
		i = 0
		b.ForEachIn(v, func(src VertexID, _ float64) {
			if src != wantIn[i] {
				t.Fatalf("%s: v%d ForEachIn[%d] = %d, want %d", name, v, i, src, wantIn[i])
			}
			i++
		})
		lo, hi := a.OutRange(v)
		for j := lo; j < hi; j++ {
			if b.DstAt(j) != a.Dsts[j] {
				t.Fatalf("%s: DstAt(%d) = %d, want %d", name, j, b.DstAt(j), a.Dsts[j])
			}
		}
		wantEdges := a.AppendOutEdges(nil, v)
		gotEdges := b.AppendOutEdges(nil, v)
		for j := range wantEdges {
			if gotEdges[j] != wantEdges[j] {
				t.Fatalf("%s: v%d AppendOutEdges[%d] mismatch", name, v, j)
			}
		}
	}
}

// TestEdgesPerGBSweep reproduces the EXPERIMENTS.md edges-per-GB table:
// flat vs packed EdgeBytes across generators spanning the locality
// spectrum, plus a SNAP crawl-order fixture (an R-MAT graph serialized
// as shuffled raw ID pairs and re-interned by ReadSNAP in first-seen
// order — what loading a real crawl does). Run with -v to print the
// table. The floors are loose: the point recorded here is that ID
// locality (R-MAT skew, lattice rings, communities, crawl order)
// clears 2x while uniform-target generators sit in the 2-byte varint
// band around 1.8x.
func TestEdgesPerGBSweep(t *testing.T) {
	sizeRatio := func(g *Graph) (int, int, float64) {
		g.Encoding = EncodeInt32
		c := g.Pin()
		flat := c.EdgeBytes()
		g.Unpin(c)
		g.Invalidate()
		g.Encoding = EncodePacked
		c = g.Pin()
		packed := c.EdgeBytes()
		g.Unpin(c)
		return flat, packed, float64(flat) / float64(packed)
	}
	snapFixture := func() *Graph {
		src := RMAT(13, 60000, 9)
		rng := rand.New(rand.NewSource(3))
		perm := rng.Perm(src.N())
		var sb strings.Builder
		sb.WriteString("# LiveJournal-style fixture\n")
		for _, e := range src.UndirectedEdges() {
			fmt.Fprintf(&sb, "%d\t%d\n", perm[e.U]*7+13, perm[e.V]*7+13)
		}
		g, err := ReadSNAP(strings.NewReader(sb.String()), SNAPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	for _, tc := range []struct {
		name  string
		g     *Graph
		floor float64
	}{
		{"RMAT(13, 60000, 5)", RMAT(13, 60000, 5), 2.0},
		{"WattsStrogatz(10000, 8, 0.1, 5)", WattsStrogatz(10000, 8, 0.1, 5), 2.0},
		{"SNAP crawl fixture (RMAT-derived)", snapFixture(), 2.0},
		{"SBM(10000, 100, 0.1, 4e-5, 5)", StochasticBlockModel(10000, 100, 0.1, 0.00004, 5), 2.0},
		{"PreferentialAttachment(10000, 8, 5)", PreferentialAttachment(10000, 8, 5), 1.5},
		{"Random(10000, 80000, 5)", Random(10000, 80000, 5), 1.5},
		{"Grid(100, 100)", Grid(100, 100), 1.5},
	} {
		flat, packed, ratio := sizeRatio(tc.g)
		t.Logf("%-36s m=%-7d int32=%-8d packed=%-8d ratio=%.2f", tc.name, tc.g.M(), flat, packed, ratio)
		if ratio < tc.floor {
			t.Errorf("%s: compression ratio %.2f below floor %.2f", tc.name, ratio, tc.floor)
		}
	}
}
