package vc

import (
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Packed-state Luby-MIS coloring (Config.PackedState): colValue's
// {color, tentative, blockedPhase} triple moves into three bit-packed
// stores. Colors are bounded by Δ+1 — a vertex left uncolored after a
// phase has a neighbor that won that phase's color, and it has at most
// Δ neighbors to lose to — so color and blockedPhase (stored +1, with
// 0 meaning "none") fit in ⌈log₂(Δ+3)⌉ bits and tentative in one.
// Phase sequencing, randomized selection, aggregation, and adjacency
// pruning are byte-for-byte the dense program's (ctx.Rand() is
// per-(vertex, superstep), so the coin flips agree too).

type colPackedProgram struct {
	phase int // master: superstep micro-phase
	c     int // master: current color
	// color and blocked hold the dense fields shifted by +1 so the
	// zero value means the dense -1.
	color   StateStore
	tent    StateStore
	blocked StateStore
}

func newColPackedProgram(g *graph.Graph) *colPackedProgram {
	n := g.N()
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	domain := uint64(maxDeg) + 3 // colors in [0, Δ+1], stored +1, plus "none"
	return &colPackedProgram{
		color:   NewPackedInts(n, domain),
		tent:    NewPackedInts(n, 2),
		blocked: NewPackedInts(n, domain),
	}
}

func (p *colPackedProgram) Init(g *graph.Graph, id VertexID) struct{} { return struct{}{} }

func (p *colPackedProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	if mc.Superstep() > 0 {
		switch p.phase {
		case colTent:
			p.phase = colResolve
		case colResolve:
			p.phase = colCleanup
		case colCleanup:
			uncolored, _ := mc.Agg("uncolored").(int64)
			remaining, _ := mc.Agg("remaining").(int64)
			if uncolored == 0 {
				mc.Halt()
				return
			}
			if remaining == 0 {
				p.c++ // the phase's MIS is maximal: next color
			}
			p.phase = colTent
		}
	}
	mc.SetGlobal("phase", p.phase)
	mc.SetGlobal("color", p.c)
}

func (p *colPackedProgram) Compute(ctx *pregel.Context[struct{}, colMsg], msgs []colMsg) {
	id := int(ctx.ID())
	if int(p.color.Get(id))-1 >= 0 {
		return
	}
	c := ctx.Global("color").(int)
	switch ctx.Global("phase").(int) {
	case colTent:
		p.tent.Set(id, 0)
		if int(p.blocked.Get(id))-1 == c {
			return
		}
		d := ctx.OutDegree()
		if d == 0 {
			p.color.Set(id, uint64(c+1)) // trivial MIS: isolated (or everything around is colored)
			return
		}
		if ctx.Rand().Float64() < 1/(2*float64(d)) {
			p.tent.Set(id, 1)
			ctx.SendToNeighbors(colMsg{Kind: colMsgTent, From: ctx.ID()})
		}
	case colResolve:
		if p.tent.Get(id) == 0 {
			return
		}
		win := true
		for _, m := range msgs {
			if m.Kind == colMsgTent && m.From < ctx.ID() {
				win = false
				break
			}
		}
		if win {
			p.color.Set(id, uint64(c+1))
			ctx.SendToNeighbors(colMsg{Kind: colMsgWin, From: ctx.ID()})
		}
	case colCleanup:
		if len(msgs) > 0 {
			winners := make(map[VertexID]bool, len(msgs))
			for _, m := range msgs {
				if m.Kind == colMsgWin {
					winners[m.From] = true
				}
			}
			if len(winners) > 0 {
				adj := ctx.OutEdges()
				kept := make([]graph.Edge, 0, len(adj))
				for _, e := range adj {
					if !winners[e.Dst] {
						kept = append(kept, e)
					}
				}
				ctx.Charge(int64(len(adj)))
				ctx.SetOutEdges(kept)
				p.blocked.Set(id, uint64(c+1))
			}
		}
		ctx.Aggregate("uncolored", int64(1))
		if int(p.blocked.Get(id))-1 != c {
			ctx.Aggregate("remaining", int64(1))
		}
	}
}

func (p *colPackedProgram) StateUnits(v *struct{}) int64 { return 3 }

// colPackedSnap is one checkpoint generation: the stores plus the
// master phase counters.
type colPackedSnap struct {
	color, tent, blocked StateStore
	phase, c             int
}

// Snapshot/Restore implement pregel.Snapshotter. Unlike the dense
// program (whose master counters survive a rollback unrestored), the
// packed variant checkpoints phase and color too, so packed coloring
// is safe under fault injection.
func (p *colPackedProgram) Snapshot() any {
	return colPackedSnap{
		color:   p.color.Clone(),
		tent:    p.tent.Clone(),
		blocked: p.blocked.Clone(),
		phase:   p.phase,
		c:       p.c,
	}
}

func (p *colPackedProgram) Restore(s any) {
	if s == nil {
		for _, st := range []StateStore{p.color, p.tent, p.blocked} {
			for i := 0; i < st.Len(); i++ {
				st.Set(i, 0)
			}
		}
		p.phase, p.c = 0, 0
		return
	}
	snap := s.(colPackedSnap)
	p.color.CopyFrom(snap.color)
	p.tent.CopyFrom(snap.tent)
	p.blocked.CopyFrom(snap.blocked)
	p.phase, p.c = snap.phase, snap.c
}
