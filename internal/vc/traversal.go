package vc

import (
	"fmt"
	"sort"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// TraversalResult holds pre- and post-order numbers (0-based) computed
// by the Euler-tour + list-ranking pipeline of §3.4.2 (Table 1 row 9).
type TraversalResult struct {
	Pre, Post []int32
	Stats     *bsp.Stats
}

// edgeIndex enumerates the 2(n-1) directed edges of a tree with sorted
// adjacency: edge (u, i-th neighbor of u) gets ID offset[u]+i.
type edgeIndex struct {
	t      *graph.Graph
	offset []int32
	u, v   []VertexID // per edge ID
}

func newEdgeIndex(t *graph.Graph) *edgeIndex {
	n := t.N()
	idx := &edgeIndex{t: t, offset: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		idx.offset[i+1] = idx.offset[i] + int32(len(t.Out[i]))
	}
	ne := int(idx.offset[n])
	idx.u = make([]VertexID, ne)
	idx.v = make([]VertexID, ne)
	for u := 0; u < n; u++ {
		for i, e := range t.Out[u] {
			id := idx.offset[u] + int32(i)
			idx.u[id] = VertexID(u)
			idx.v[id] = e.Dst
		}
	}
	return idx
}

func (idx *edgeIndex) id(u, v VertexID) VertexID {
	adj := idx.t.Out[u]
	i := sort.Search(len(adj), func(i int) bool { return adj[i].Dst >= v })
	return VertexID(idx.offset[u] + int32(i))
}

// forward-marking program: each tour-edge vertex exchanges its tour
// position with its reverse edge; the earlier of the two is the
// forward (downward) tree edge.
type fwValue struct{ forward bool }

type fwProgram struct {
	rev  []VertexID
	sum1 []int64
}

func (p *fwProgram) Init(g *graph.Graph, id VertexID) fwValue { return fwValue{} }

func (p *fwProgram) Compute(ctx *pregel.Context[fwValue, int64], msgs []int64) {
	switch ctx.Superstep() {
	case 0:
		ctx.SendTo(p.rev[ctx.ID()], p.sum1[ctx.ID()])
		ctx.VoteToHalt()
	case 1:
		ctx.Value().forward = p.sum1[ctx.ID()] < msgs[0]
		ctx.VoteToHalt()
	}
}

func (p *fwProgram) StateUnits(v *fwValue) int64 { return 1 }

// eulerNumbers carries everything the Euler-tour pipeline derives about
// a rooted tree: traversal numbers, parents, subtree sizes, and the
// merged statistics of all pipeline stages. It is shared by
// PrePostOrder (row 9) and the Tarjan–Vishkin BCC pipeline (row 5).
type eulerNumbers struct {
	pre, post []int32
	parent    []VertexID
	nd        []int32 // subtree sizes
	stats     *bsp.Stats
}

// PrePostOrder computes the pre- and post-order numbering of a rooted
// tree with the paper's pipeline: Euler tour (BPPA), tour-position
// list-ranking, forward/backward marking (2-superstep BPPA), and two
// more list-ranking passes. Work is O(n log n) — more than the O(n)
// sequential DFS, which is the point of Table 1 row 9.
func PrePostOrder(t *graph.Graph, root VertexID, cfg Config) (*TraversalResult, error) {
	en, err := eulerPipeline(t, root, cfg)
	if err != nil {
		return nil, err
	}
	return &TraversalResult{Pre: en.pre, Post: en.post, Stats: en.stats}, nil
}

func eulerPipeline(t *graph.Graph, root VertexID, cfg Config) (*eulerNumbers, error) {
	if err := validateRoot(t, root); err != nil {
		return nil, err
	}
	n := t.N()
	if n == 1 {
		return &eulerNumbers{
			pre:    []int32{0},
			post:   []int32{0},
			parent: []VertexID{graph.NoVertex},
			nd:     []int32{1},
			stats:  &bsp.Stats{N: 1},
		}, nil
	}
	et, err := EulerTour(t, cfg)
	if err != nil {
		return nil, err
	}
	idx := newEdgeIndex(t)
	ne := len(idx.u)

	// Tour successor per edge ID, its inverse as predecessor links, and
	// the list head (the tour's first edge).
	succ := make([]VertexID, ne)
	for e := 0; e < ne; e++ {
		u, v := idx.u[e], idx.v[e]
		succ[e] = idx.id(v, et.Succ[u][v])
	}
	pred := make([]VertexID, ne)
	for e := 0; e < ne; e++ {
		pred[succ[e]] = VertexID(e)
	}
	head := idx.id(root, t.Out[root][0].Dst)
	pred[head] = graph.NoVertex

	ones := make([]int64, ne)
	for i := range ones {
		ones[i] = 1
	}
	lr1, err := ListRank(pred, ones, cfg)
	if err != nil {
		return nil, err
	}

	// Forward/backward marking on the edge graph (edges to the reverse
	// edge, for degree accounting).
	rev := make([]VertexID, ne)
	eg := graph.New(ne, true)
	for e := 0; e < ne; e++ {
		rev[e] = idx.id(idx.v[e], idx.u[e])
		eg.AddEdge(VertexID(e), rev[e])
	}
	eg.EnsureIn()
	fw := &fwProgram{rev: rev, sum1: lr1.Sum}
	fwEng := pregel.NewEngine[fwValue, int64](eg, fw, engineCfg[int64](cfg))
	fwRes, err := fwEng.Run()
	if err != nil {
		return nil, err
	}

	valPre := make([]int64, ne)
	valPost := make([]int64, ne)
	for e := 0; e < ne; e++ {
		if fwRes.Values[e].forward {
			valPre[e] = 1
		} else {
			valPost[e] = 1
		}
	}
	lr2, err := ListRank(pred, valPre, cfg)
	if err != nil {
		return nil, err
	}
	lr3, err := ListRank(pred, valPost, cfg)
	if err != nil {
		return nil, err
	}

	out := &eulerNumbers{
		pre:    make([]int32, n),
		post:   make([]int32, n),
		parent: make([]VertexID, n),
		nd:     make([]int32, n),
		stats:  MergeStats(et.Stats, lr1.Stats, fwRes.Stats, lr2.Stats, lr3.Stats),
	}
	for i := range out.parent {
		out.parent[i] = graph.NoVertex
	}
	for e := 0; e < ne; e++ {
		if fwRes.Values[e].forward {
			v := idx.v[e]
			out.pre[v] = int32(lr2.Sum[e]) // pre(v) = sum(e) for forward e=(u,v)
			out.parent[v] = idx.u[e]
			// Subtree size from tour positions: the backward edge (v,u)
			// closes the subtree opened by the forward edge (u,v).
			back := idx.id(v, idx.u[e])
			out.nd[v] = int32((lr1.Sum[back] - lr1.Sum[e] + 1) / 2)
		} else {
			out.post[idx.u[e]] = int32(lr3.Sum[e] - 1) // post(v) = sum(e')-1 for backward e'=(v,u)
		}
	}
	out.pre[root] = 0
	out.post[root] = int32(n - 1)
	out.nd[root] = int32(n)
	return out, nil
}

// validateRoot guards the exported pipeline against out-of-range roots.
func validateRoot(t *graph.Graph, root VertexID) error {
	if int(root) < 0 || int(root) >= t.N() {
		return fmt.Errorf("vc: root %d out of range [0,%d)", root, t.N())
	}
	return nil
}
