package vc

import (
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
)

// bruteCoreness peels the graph level by level: the k-core is the
// maximal subgraph with all degrees >= k.
func bruteCoreness(g *graph.Graph) []int32 {
	n := g.N()
	core := make([]int32, n)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	degree := func(v int) int {
		d := 0
		for _, e := range g.Out[v] {
			if alive[e.Dst] {
				d++
			}
		}
		return d
	}
	for k := int32(1); ; k++ {
		// Repeatedly strip vertices with alive-degree < k.
		for {
			removed := false
			for v := 0; v < n; v++ {
				if alive[v] && degree(v) < int(k) {
					alive[v] = false
					removed = true
				}
			}
			if !removed {
				break
			}
		}
		any := false
		for v := 0; v < n; v++ {
			if alive[v] {
				core[v] = k
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

func TestKCoreKnownShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int32 // uniform coreness
	}{
		{"complete", graph.Complete(8), 7},
		{"cycle", graph.Cycle(12), 2},
		{"tree", graph.RandomTree(50, 3), 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := KCore(tc.g, Config{Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			for v, c := range res.Core {
				if c != tc.want {
					t.Fatalf("core[%d] = %d, want %d", v, c, tc.want)
				}
			}
		})
	}
}

func TestKCoreMatchesMatulaBeck(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(60, 180, seed)
		res, err := KCore(g, Config{Workers: 4})
		if err != nil {
			return false
		}
		var ops seq.Ops
		want := seq.KCore(g, &ops)
		for v := range want {
			if res.Core[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatulaBeckMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(25, 60, seed)
		var ops seq.Ops
		got := seq.KCore(g, &ops)
		want := bruteCoreness(g)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKCoreCliquePlusTail(t *testing.T) {
	// K5 with a pendant path: clique coreness 4, path coreness 1.
	g := graph.New(8, false)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(6, 7)
	res, err := KCore(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{4, 4, 4, 4, 4, 1, 1, 1}
	for v := range want {
		if res.Core[v] != want[v] {
			t.Fatalf("core = %v, want %v", res.Core, want)
		}
	}
	if res.Degeneracy != 4 {
		t.Fatalf("degeneracy = %d", res.Degeneracy)
	}
}

func TestKCoreEmptyAndSingleton(t *testing.T) {
	res, err := KCore(graph.New(3, false), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Core {
		if c != 0 {
			t.Fatalf("isolated vertex coreness %d", c)
		}
	}
}
