package vc

import (
	"math"
	"testing"

	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	"vcgraph/internal/runtime"
)

// Combiner equivalence: a combiner is a pure network optimization — it
// shrinks h (the per-worker message volume the BSP model charges) but
// must not change what any vertex computes or when the run terminates.
// These tests pin that contract for the three Table 1 algorithms that
// admit one, across worker counts and both partitioners, so a
// regression in sender-side combining (grouping, lane order, raw-count
// bookkeeping) shows up as a result or superstep-count difference.
//
// Every run pins Mode=push: a combiner also unlocks the pull path,
// whose whole point is to change the wire-level accounting (broadcasts
// stop being materialized as messages), which would trip the raw-count
// comparisons below. Push/pull equivalence has its own suite in
// direction_test.go.

var equivCases = []struct {
	name    string
	workers int
	part    pregel.Partitioner
}{
	{"w1-hash", 1, pregel.PartitionHash},
	{"w2-hash", 2, pregel.PartitionHash},
	{"w8-hash", 8, pregel.PartitionHash},
	{"w1-range", 1, pregel.PartitionRange},
	{"w2-range", 2, pregel.PartitionRange},
	{"w8-range", 8, pregel.PartitionRange},
}

func TestCombinerEquivalenceSSSP(t *testing.T) {
	g := graph.PreferentialAttachment(300, 3, 5)
	graph.RandomWeights(g, 7)
	for _, tc := range equivCases {
		t.Run(tc.name, func(t *testing.T) {
			with, err := SSSP(g, 0, Config{Workers: tc.workers, Partition: tc.part})
			if err != nil {
				t.Fatal(err)
			}
			without, err := SSSP(g, 0, Config{Workers: tc.workers, Partition: tc.part, NoCombiner: true})
			if err != nil {
				t.Fatal(err)
			}
			// Min is exactly associative and commutative on float64, so
			// the distances must match bit for bit.
			for v := range with.Dist {
				if with.Dist[v] != without.Dist[v] {
					t.Fatalf("vertex %d: dist %v with combiner, %v without", v, with.Dist[v], without.Dist[v])
				}
			}
			if a, b := with.Stats.NumSupersteps(), without.Stats.NumSupersteps(); a != b {
				t.Fatalf("supersteps %d with combiner, %d without", a, b)
			}
			if with.Stats.TotalMessages != without.Stats.TotalMessages {
				t.Fatalf("raw message counts differ: %d vs %d (combiner must not change raw Stats)",
					with.Stats.TotalMessages, without.Stats.TotalMessages)
			}
		})
	}
}

func TestCombinerEquivalenceHashMin(t *testing.T) {
	g := graph.WattsStrogatz(400, 2, 0.1, 9)
	for _, tc := range equivCases {
		t.Run(tc.name, func(t *testing.T) {
			with, err := HashMinCC(g, Config{Workers: tc.workers, Partition: tc.part, Mode: runtime.DirectionPush})
			if err != nil {
				t.Fatal(err)
			}
			without, err := HashMinCC(g, Config{Workers: tc.workers, Partition: tc.part, NoCombiner: true, Mode: runtime.DirectionPush})
			if err != nil {
				t.Fatal(err)
			}
			for v := range with.Color {
				if with.Color[v] != without.Color[v] {
					t.Fatalf("vertex %d: label %d with combiner, %d without", v, with.Color[v], without.Color[v])
				}
			}
			if a, b := with.Stats.NumSupersteps(), without.Stats.NumSupersteps(); a != b {
				t.Fatalf("supersteps %d with combiner, %d without", a, b)
			}
			if with.Stats.TotalMessages != without.Stats.TotalMessages {
				t.Fatalf("raw message counts differ: %d vs %d", with.Stats.TotalMessages, without.Stats.TotalMessages)
			}
		})
	}
}

// PageRank's sum combiner regroups float64 additions (sum is
// associative only up to rounding), so ranks are compared within an
// epsilon while superstep counts and raw message totals stay exact.
// The check drives the engine directly to control the combiner.
func TestCombinerEquivalencePageRank(t *testing.T) {
	g := graph.PreferentialAttachment(300, 3, 5)
	run := func(workers int, part pregel.Partitioner, combine bool) (*pregel.Result[prValue], error) {
		cfg := pregel.Config[float64]{Workers: workers, Partition: part, Mode: runtime.DirectionPush}
		if combine {
			cfg.Combiner = func(a, b float64) float64 { return a + b }
		}
		eng := pregel.NewEngine[prValue, float64](g, &prProgram{n: g.N(), alpha: 0.85, k: 20}, cfg)
		return eng.Run()
	}
	for _, tc := range equivCases {
		t.Run(tc.name, func(t *testing.T) {
			with, err := run(tc.workers, tc.part, true)
			if err != nil {
				t.Fatal(err)
			}
			without, err := run(tc.workers, tc.part, false)
			if err != nil {
				t.Fatal(err)
			}
			for v := range with.Values {
				a, b := with.Values[v].rank, without.Values[v].rank
				if math.Abs(a-b) > 1e-12 {
					t.Fatalf("vertex %d: rank %v with combiner, %v without (Δ=%g)", v, a, b, math.Abs(a-b))
				}
			}
			if a, b := with.Supersteps, without.Supersteps; a != b {
				t.Fatalf("supersteps %d with combiner, %d without", a, b)
			}
			if with.Stats.TotalMessages != without.Stats.TotalMessages {
				t.Fatalf("raw message counts differ: %d vs %d", with.Stats.TotalMessages, without.Stats.TotalMessages)
			}
			if with.Stats.InboxDeliveries >= without.Stats.InboxDeliveries {
				t.Fatalf("combiner did not reduce inbox placements: %d vs %d",
					with.Stats.InboxDeliveries, without.Stats.InboxDeliveries)
			}
		})
	}
}
