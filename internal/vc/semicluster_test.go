package vc

import (
	"testing"

	"vcgraph/internal/graph"
)

func TestPageRankConvergeMatchesFixedK(t *testing.T) {
	g := graph.PreferentialAttachment(500, 3, 4)
	conv, iters, err := PageRankConverge(g, 0.85, 1e-12, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A long fixed-K run reaches the same fixpoint.
	fixed, err := PageRank(g, 0.85, 200, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range fixed.Ranks {
		if !almostEqual(conv.Ranks[v], fixed.Ranks[v], 1e-8) {
			t.Fatalf("vertex %d: converge=%v fixed=%v", v, conv.Ranks[v], fixed.Ranks[v])
		}
	}
	if iters < 10 || iters > 220 {
		t.Fatalf("converged in %d supersteps; implausible", iters)
	}
}

func TestPageRankConvergeTightensWithEps(t *testing.T) {
	g := graph.PreferentialAttachment(300, 2, 8)
	_, loose, err := PageRankConverge(g, 0.85, 1e-3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, tight, err := PageRankConverge(g, 0.85, 1e-10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tight <= loose {
		t.Fatalf("tight eps %d supersteps <= loose %d", tight, loose)
	}
}

// twoCliques builds two K4s joined by one light bridge, with heavy
// intra-clique edges — semi-clustering must surface a clique.
func twoCliques() *graph.Graph {
	g := graph.New(8, false)
	for base := graph.VertexID(0); base <= 4; base += 4 {
		for i := graph.VertexID(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddWeightedEdge(base+i, base+j, 10)
			}
		}
	}
	g.AddWeightedEdge(3, 4, 1) // bridge
	g.SortAdjacency()
	return g
}

func TestSemiClusteringFindsCliques(t *testing.T) {
	g := twoCliques()
	res, err := SemiClustering(g, SemiClusterConfig{CMax: 3, MMax: 4, Iterations: 8}, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) == 0 {
		t.Fatal("no clusters found")
	}
	best := res.Top[0]
	if len(best.Members) != 4 {
		t.Fatalf("best cluster %v (score %v), want a 4-clique", best.Members, best.Score)
	}
	// Must be one of the two cliques.
	lo, hi := best.Members[0], best.Members[3]
	if !((lo == 0 && hi == 3) || (lo == 4 && hi == 7)) {
		t.Fatalf("best cluster %v is not a clique", best.Members)
	}
	// Its score: I=60 (6 edges of weight 10), B=1 (cliques touch the
	// bridge... only cluster {0..3} or {4..7} has B=1), score=(60-0.5)/6.
	if !almostEqual(best.Score, (60-0.5*1)/6, 1e-12) {
		t.Fatalf("score = %v", best.Score)
	}
}

func TestSemiClusteringInvariants(t *testing.T) {
	g := graph.RandomConnected(60, 180, 5)
	graph.RandomWeights(g, 6)
	sc := SemiClusterConfig{CMax: 2, MMax: 4, Iterations: 6}
	res, err := SemiClustering(g, sc, Config{Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v, clusters := range res.PerVertex {
		if len(clusters) == 0 || len(clusters) > sc.CMax {
			t.Fatalf("vertex %d holds %d clusters", v, len(clusters))
		}
		for _, c := range clusters {
			if len(c.Members) == 0 || len(c.Members) > sc.MMax {
				t.Fatalf("cluster size %d out of bounds", len(c.Members))
			}
			for i := 1; i < len(c.Members); i++ {
				if c.Members[i] <= c.Members[i-1] {
					t.Fatalf("members not sorted/unique: %v", c.Members)
				}
			}
		}
	}
	// Top list is sorted by score, deduplicated.
	for i := 1; i < len(res.Top); i++ {
		if res.Top[i].Score > res.Top[i-1].Score {
			t.Fatal("top clusters not sorted by score")
		}
	}
}

func TestSemiClusteringDeterministicAcrossWorkers(t *testing.T) {
	g := graph.RandomConnected(40, 100, 9)
	graph.RandomWeights(g, 10)
	sc := SemiClusterConfig{Iterations: 5}
	a, err := SemiClustering(g, sc, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SemiClustering(g, sc, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Top) != len(b.Top) {
		t.Fatalf("top sizes differ: %d vs %d", len(a.Top), len(b.Top))
	}
	for i := range a.Top {
		if a.Top[i].key() != b.Top[i].key() {
			t.Fatalf("top[%d] differs: %v vs %v", i, a.Top[i].Members, b.Top[i].Members)
		}
	}
}

func TestSemiClusterScoreFormula(t *testing.T) {
	// A triangle with unit weights, clusters up to 3 members: the full
	// triangle scores (3 - 0.5*0)/3 = 1; any pair scores (1-0.5*2)/1 = 0.
	g := graph.New(3, false)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	res, err := SemiClustering(g, SemiClusterConfig{CMax: 4, MMax: 3, Iterations: 6}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Top[0]
	if len(best.Members) != 3 || !almostEqual(best.Score, 1, 1e-12) {
		t.Fatalf("best = %v score %v, want the full triangle at score 1", best.Members, best.Score)
	}
}

func TestSemiClusterMMaxRespected(t *testing.T) {
	g := graph.Complete(8)
	res, err := SemiClustering(g, SemiClusterConfig{CMax: 2, MMax: 3, Iterations: 6}, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Top {
		if len(c.Members) > 3 {
			t.Fatalf("cluster %v exceeds MMax", c.Members)
		}
	}
}
