package vc

import (
	"testing"

	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
	"vcgraph/internal/seq"
)

// Cross-algorithm consistency: independent implementations that answer
// overlapping questions must agree with each other, not only with
// their own baselines.

func TestHashMinAndSVAgree(t *testing.T) {
	for _, seed := range []int64{1, 4, 9} {
		g := graph.Random(250, 300, seed)
		a, err := HashMinCC(g, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SVCC(g, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.Color {
			if a.Color[v] != b.Color[v] {
				t.Fatalf("seed %d vertex %d: hashmin=%d sv=%d", seed, v, a.Color[v], b.Color[v])
			}
		}
	}
}

func TestDiameterConsistentWithSSSPOnUnitWeights(t *testing.T) {
	g := graph.RandomConnected(100, 300, 7) // unit weights
	diam, err := Diameter(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sssp, err := SSSP(g, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range sssp.Dist {
		if int32(sssp.Dist[v]) != diam.Dist[v][0] {
			t.Fatalf("vertex %d: sssp=%v flood=%d", v, sssp.Dist[v], diam.Dist[v][0])
		}
	}
}

func TestAPSPSymmetricOnUndirected(t *testing.T) {
	g := graph.RandomConnected(80, 200, 3)
	res, err := Diameter(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if res.Dist[u][v] != res.Dist[v][u] {
				t.Fatalf("asymmetry: d(%d,%d)=%d d(%d,%d)=%d",
					u, v, res.Dist[u][v], v, u, res.Dist[v][u])
			}
		}
	}
}

func TestMCSTWeightMatchesAllThreeBaselines(t *testing.T) {
	g := graph.RandomConnected(150, 500, 8)
	graph.RandomWeights(g, 9)
	res, err := MCST(g, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var o1, o2, o3 seq.Ops
	_, prim := seq.MSTPrim(g, &o1)
	_, kruskal := seq.MSTKruskal(g, &o2)
	_, radix := seq.MSTKruskalRadix(g, &o3)
	for name, w := range map[string]float64{"prim": prim, "kruskal": kruskal, "radix": radix} {
		if !almostEqual(res.Weight, w, 1e-12) {
			t.Fatalf("vc=%v %s=%v", res.Weight, name, w)
		}
	}
}

func TestSpanningForestConnectsLikeComponents(t *testing.T) {
	g := graph.Random(200, 180, 6)
	sv, err := SVCC(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	uf := seq.NewUnionFind(g.N())
	for _, e := range sv.TreeEdges {
		uf.Union(e.U, e.V)
	}
	for v := 0; v < g.N(); v++ {
		if uf.Find(VertexID(v)) != uf.Find(sv.Color[v]) {
			t.Fatalf("forest does not connect %d to its color %d", v, sv.Color[v])
		}
	}
}

func TestSCCRefinesWCC(t *testing.T) {
	g := graph.RandomDirected(150, 450, 5)
	scc, err := SCC(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wcc, err := WCC(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Vertices in the same SCC are necessarily in the same WCC.
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if scc.Comp[u] == scc.Comp[v] && wcc.Color[u] != wcc.Color[v] {
				t.Fatalf("SCC joins %d,%d but WCC separates them", u, v)
			}
		}
	}
}

func TestBCCComponentsPartitionEdges(t *testing.T) {
	g := graph.RandomConnected(120, 170, 11)
	res, err := BCC(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EdgeComp) != g.M() {
		t.Fatalf("labeled %d of %d edges", len(res.EdgeComp), g.M())
	}
	seen := map[int]bool{}
	for _, c := range res.EdgeComp {
		if c < 0 || c >= res.NumComponents {
			t.Fatalf("label %d out of range [0,%d)", c, res.NumComponents)
		}
		seen[c] = true
	}
	if len(seen) != res.NumComponents {
		t.Fatalf("%d labels used, NumComponents=%d", len(seen), res.NumComponents)
	}
}

func TestBetweennessSumIdentity(t *testing.T) {
	// Σ_v bc(v) over all sources equals Σ_{s≠t} (avg internal path
	// length) — cross-check against the seq implementation's total
	// rather than per-vertex only.
	g := graph.RandomConnected(70, 210, 13)
	res, err := Betweenness(g, nil, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ops seq.Ops
	want := seq.Betweenness(g, nil, &ops)
	var sumGot, sumWant float64
	for v := range want {
		sumGot += res.BC[v]
		sumWant += want[v]
	}
	if !almostEqual(sumGot, sumWant, 1e-9) {
		t.Fatalf("total betweenness %v vs %v", sumGot, sumWant)
	}
}

func TestEulerTourFeedsTraversal(t *testing.T) {
	// The traversal pipeline must be consistent with interval nesting:
	// for any parent p and child c, pre(p) < pre(c) and post(c) < post(p).
	tr := graph.RandomTree(120, 17)
	res, err := PrePostOrder(tr, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var ops seq.Ops
	_, parent := seq.BFS(tr, 0, &ops)
	for v := 1; v < tr.N(); v++ {
		p := parent[v]
		// BFS parent is not necessarily the DFS parent, but ancestors
		// in the tree are the same set; check only direct tree edges.
		if res.Pre[p] > res.Pre[v] == (res.Post[p] > res.Post[v]) {
			t.Fatalf("edge (%d,%d): pre %d,%d post %d,%d violate nesting",
				p, v, res.Pre[p], res.Pre[v], res.Post[p], res.Post[v])
		}
	}
}

// --- Fault tolerance through the vc layer ---

func TestAlgorithmsSurviveInjectedFailure(t *testing.T) {
	g := graph.Path(128)
	clean, err := HashMinCC(g, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := HashMinCC(g, Config{Workers: 3, CheckpointEvery: 16, Faults: rt.PlanOf(rt.Crash(40))})
	if err != nil {
		t.Fatal(err)
	}
	for v := range clean.Color {
		if clean.Color[v] != recovered.Color[v] {
			t.Fatalf("vertex %d: clean=%d recovered=%d", v, clean.Color[v], recovered.Color[v])
		}
	}
	// Recovery re-executes work: the recovered run cannot be shorter.
	if recovered.Stats.NumSupersteps() < clean.Stats.NumSupersteps() {
		t.Fatal("recovered run shorter than clean run")
	}
}

func TestSVSurvivesInjectedFailureWithMasterState(t *testing.T) {
	// S-V has no Snapshotter; its master state (roundChanged, edges) is
	// rebuilt from aggregators... it is NOT, so checkpointing S-V would
	// need Snapshotter support. Verify instead that SSSP (stateless
	// master) recovers exactly.
	g := graph.Grid(12, 12)
	graph.RandomWeights(g, 3)
	clean, err := SSSP(g, 0, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := SSSP(g, 0, Config{Workers: 2, CheckpointEvery: 8, Faults: rt.PlanOf(rt.Crash(20))})
	if err != nil {
		t.Fatal(err)
	}
	for v := range clean.Dist {
		if !almostEqual(clean.Dist[v], rec.Dist[v], 1e-12) {
			t.Fatalf("vertex %d: %v vs %v", v, clean.Dist[v], rec.Dist[v])
		}
	}
}

func TestSuperstepCapSurfacesAsError(t *testing.T) {
	g := graph.Path(512)
	if _, err := HashMinCC(g, Config{MaxSupersteps: 10}); err == nil {
		t.Fatal("expected superstep-cap error")
	}
	if _, err := Diameter(graph.Path(64), Config{MaxSupersteps: 5}); err == nil {
		t.Fatal("expected superstep-cap error")
	}
}

// TestWorkerInvarianceAcrossAlgorithms pins that worker count never
// changes results for the deterministic integer-valued algorithms.
func TestWorkerInvarianceAcrossAlgorithms(t *testing.T) {
	und := graph.RandomConnected(150, 400, 31)
	dir := graph.RandomDirected(120, 480, 32)
	tr := graph.RandomTree(100, 33)

	t.Run("diameter", func(t *testing.T) {
		a, err := Diameter(und, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Diameter(und, Config{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.Ecc {
			if a.Ecc[v] != b.Ecc[v] {
				t.Fatalf("ecc[%d] differs", v)
			}
		}
	})
	t.Run("scc", func(t *testing.T) {
		a, err := SCC(dir, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SCC(dir, Config{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.Comp {
			if a.Comp[v] != b.Comp[v] {
				t.Fatalf("comp[%d] differs", v)
			}
		}
	})
	t.Run("bcc", func(t *testing.T) {
		a, err := BCC(und, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := BCC(und, Config{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if a.NumComponents != b.NumComponents {
			t.Fatalf("components differ: %d vs %d", a.NumComponents, b.NumComponents)
		}
	})
	t.Run("traversal", func(t *testing.T) {
		a, err := PrePostOrder(tr, 0, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := PrePostOrder(tr, 0, Config{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.Pre {
			if a.Pre[v] != b.Pre[v] || a.Post[v] != b.Post[v] {
				t.Fatalf("traversal numbers differ at %d", v)
			}
		}
	})
	t.Run("kcore", func(t *testing.T) {
		a, err := KCore(und, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := KCore(und, Config{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.Core {
			if a.Core[v] != b.Core[v] {
				t.Fatalf("core[%d] differs", v)
			}
		}
	})
	t.Run("triangles", func(t *testing.T) {
		a, err := Triangles(und, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Triangles(und, Config{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if a.Total != b.Total {
			t.Fatalf("totals differ: %d vs %d", a.Total, b.Total)
		}
	})
	t.Run("mcst", func(t *testing.T) {
		w := und.Clone()
		graph.RandomWeights(w, 34)
		a, err := MCST(w, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := MCST(w, Config{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if a.Weight != b.Weight || len(a.Edges) != len(b.Edges) {
			t.Fatalf("MST differs: %v/%d vs %v/%d", a.Weight, len(a.Edges), b.Weight, len(b.Edges))
		}
	})
}
