package vc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
)

// --- Betweenness ---

func TestBetweennessMatchesBrandes(t *testing.T) {
	cases := map[string]*graph.Graph{
		"random": graph.RandomConnected(80, 240, 3),
		"path":   graph.Path(30),
		"star":   graph.Star(20),
		"grid":   graph.Grid(6, 7),
		"cycle":  graph.Cycle(25),
		"sparse": graph.Random(60, 70, 9),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			res, err := Betweenness(g, nil, Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			var ops seq.Ops
			want := seq.Betweenness(g, nil, &ops)
			for v := range want {
				if !almostEqual(res.BC[v], want[v], 1e-9) {
					t.Fatalf("bc[%d]: vc=%v brandes=%v", v, res.BC[v], want[v])
				}
			}
		})
	}
}

func TestBetweennessPathCenter(t *testing.T) {
	// On a path of 5, the middle vertex lies on 2*(2*3-1)... just use
	// the known closed form: vertex i on P_n has bc = 2*i*(n-1-i).
	g := graph.Path(7)
	res, err := Betweenness(g, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		want := 2 * float64(i) * float64(6-i)
		if !almostEqual(res.BC[i], want, 1e-9) {
			t.Fatalf("bc[%d] = %v, want %v", i, res.BC[i], want)
		}
	}
}

func TestBetweennessSampledSources(t *testing.T) {
	g := graph.RandomConnected(60, 180, 5)
	sources := []VertexID{0, 7, 13}
	res, err := Betweenness(g, sources, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ops seq.Ops
	want := seq.Betweenness(g, sources, &ops)
	for v := range want {
		if !almostEqual(res.BC[v], want[v], 1e-9) {
			t.Fatalf("bc[%d]: vc=%v brandes=%v", v, res.BC[v], want[v])
		}
	}
}

// --- Simulation family ---

var simAlphabet = []string{"A", "B", "C"}

// randomQuery builds a small connected directed labeled query graph.
func randomQuery(nq int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	q := graph.New(nq, true)
	q.Labels = make([]string, nq)
	for i := range q.Labels {
		q.Labels[i] = simAlphabet[rng.Intn(len(simAlphabet))]
	}
	// Weak connectivity: attach each node to an earlier one in a random
	// direction, plus a few extra edges.
	for i := 1; i < nq; i++ {
		j := graph.VertexID(rng.Intn(i))
		if rng.Intn(2) == 0 {
			q.AddEdge(j, graph.VertexID(i))
		} else {
			q.AddEdge(graph.VertexID(i), j)
		}
	}
	for k := 0; k < nq/2; k++ {
		a, b := graph.VertexID(rng.Intn(nq)), graph.VertexID(rng.Intn(nq))
		if a != b {
			q.AddEdge(a, b)
		}
	}
	q.EnsureIn()
	q.SortAdjacency()
	return q
}

func labeledData(n, m int, seed int64) *graph.Graph {
	g := graph.RandomDirected(n, m, seed)
	graph.RandomLabels(g, simAlphabet, seed+1)
	return g
}

func simEqual(got []uint64, want [][]bool) bool {
	for qi := range want {
		for u := range want[qi] {
			if (got[u]&(1<<uint(qi)) != 0) != want[qi][u] {
				return false
			}
		}
	}
	return true
}

func TestGraphSimulationMatchesHHK(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		g := labeledData(120, 500, seed)
		q := randomQuery(4, seed+20)
		res, err := GraphSimulation(g, q, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		var ops seq.Ops
		want := seq.GraphSimulation(g, q, &ops)
		if !simEqual(res.Match, want) {
			t.Fatalf("seed %d: relation mismatch", seed)
		}
	}
}

func TestDualSimulationMatchesMa(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		g := labeledData(120, 500, seed)
		q := randomQuery(4, seed+30)
		res, err := DualSimulation(g, q, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		var ops seq.Ops
		want := seq.DualSimulation(g, q, &ops)
		if !simEqual(res.Match, want) {
			t.Fatalf("seed %d: relation mismatch", seed)
		}
	}
}

func TestDualTightensGraphSimulation(t *testing.T) {
	g := labeledData(150, 700, 7)
	q := randomQuery(5, 71)
	gs, err := GraphSimulation(g, q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := DualSimulation(g, q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for u := range ds.Match {
		if ds.Match[u]&^gs.Match[u] != 0 {
			t.Fatalf("dual sim admits matches graph sim rejects at vertex %d", u)
		}
	}
}

func TestStrongSimulationMatchesMa(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := labeledData(80, 240, seed)
		q := randomQuery(3, seed+40)
		res, err := StrongSimulation(g, q, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		var ops seq.Ops
		wantCenters, _ := seq.StrongSimulation(g, q, &ops)
		for v := range wantCenters {
			if res.Centers[v] != wantCenters[v] {
				t.Fatalf("seed %d vertex %d: vc=%v seq=%v", seed, v, res.Centers[v], wantCenters[v])
			}
		}
	}
}

func TestStrongTightensDual(t *testing.T) {
	g := labeledData(60, 200, 11)
	q := randomQuery(3, 53)
	res, err := StrongSimulation(g, q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range res.Centers {
		if c && res.Dual[v] == 0 {
			t.Fatalf("vertex %d is a center without a dual match", v)
		}
	}
}

func TestSimulationRejectsBadInputs(t *testing.T) {
	und := graph.Path(4)
	q := randomQuery(3, 1)
	if _, err := GraphSimulation(und, q, Config{}); err == nil {
		t.Fatal("expected error on undirected data graph")
	}
	big := graph.New(65, true)
	big.Labels = make([]string, 65)
	g := labeledData(10, 20, 1)
	if _, err := GraphSimulation(g, big, Config{}); err == nil {
		t.Fatal("expected error on oversized query")
	}
}

func TestSimulationQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := labeledData(40, 150, seed)
		q := randomQuery(3, seed^0x5bf03635)
		res, err := DualSimulation(g, q, Config{Workers: 2})
		if err != nil {
			return false
		}
		var ops seq.Ops
		return simEqual(res.Match, seq.DualSimulation(g, q, &ops))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBetweennessSharedMatchesPerSource(t *testing.T) {
	cases := map[string]*graph.Graph{
		"random": graph.RandomConnected(80, 240, 3),
		"grid":   graph.Grid(7, 8),
		"path":   graph.Path(30),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			res, err := Betweenness(g, nil, Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			shared, err := BetweennessShared(g, nil, Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			for v := range res.BC {
				if !almostEqual(res.BC[v], shared.BC[v], 1e-9) {
					t.Fatalf("bc[%d]: per-source=%v shared=%v", v, res.BC[v], shared.BC[v])
				}
			}
		})
	}
}

func TestBetweennessSharedCutsSupersteps(t *testing.T) {
	// Superstep sharing: Σ_s 2δ_s collapses to max_s 2δ_s.
	g := graph.Grid(12, 12)
	sources := []VertexID{0, 17, 65, 100, 120, 143, 80, 40}
	per, err := Betweenness(g, sources, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := BetweennessShared(g, sources, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Stats.NumSupersteps()*4 > per.Stats.NumSupersteps() {
		t.Fatalf("shared %d supersteps vs per-source %d: expected >4x reduction",
			shared.Stats.NumSupersteps(), per.Stats.NumSupersteps())
	}
	for v := range per.BC {
		if !almostEqual(per.BC[v], shared.BC[v], 1e-9) {
			t.Fatalf("bc[%d] differs", v)
		}
	}
}

func TestBetweennessSharedQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(40, 100, seed)
		sources := []VertexID{0, 7, 13, 21}
		a, err := Betweenness(g, sources, Config{Workers: 2})
		if err != nil {
			return false
		}
		b, err := BetweennessShared(g, sources, Config{Workers: 3})
		if err != nil {
			return false
		}
		for v := range a.BC {
			if !almostEqual(a.BC[v], b.BC[v], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
