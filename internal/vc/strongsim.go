package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	"vcgraph/internal/seq"
)

// Strong simulation (Table 1 row 20), after Fard et al. / Ma et al.:
// first compute the maximum dual simulation globally, then every
// candidate center w gathers its ball of radius diameter(Q) by flooding
// edge and match-set records outward for d_Q rounds, and locally
// re-runs dual-simulation refinement inside the ball; w matches iff it
// survives in the ball-local relation. The multi-hop neighborhood
// collection is exactly the communication/memory blow-up the paper
// flags for subgraph-flavored workloads in the vertex-centric model
// (§3.8): message and state volume grow with ball sizes, not degrees.

// StrongSimResult holds the strong-simulation output: Centers[w] is
// true iff the ball around w admits a dual simulation of Q containing
// w, plus the global dual relation used for pruning.
type StrongSimResult struct {
	Centers []bool
	Dual    []uint64
	Stats   *bsp.Stats
}

type ssRecord struct {
	IsEdge bool
	A, B   VertexID // directed edge A->B, or vertex A
	Set    uint64   // vertex record: A's dual matchSet
}

type ssValue struct {
	records map[ssRecord]bool
	fresh   []ssRecord
	center  bool
}

type ssMsg struct {
	Recs []ssRecord
}

type ssProgram struct {
	q    *graph.Graph
	dq   int
	dual []uint64
}

func (p *ssProgram) Init(g *graph.Graph, id VertexID) ssValue {
	v := ssValue{records: make(map[ssRecord]bool)}
	self := ssRecord{A: id, Set: p.dual[id]}
	v.records[self] = true
	v.fresh = append(v.fresh, self)
	for _, e := range g.Out[id] {
		r := ssRecord{IsEdge: true, A: id, B: e.Dst}
		v.records[r] = true
		v.fresh = append(v.fresh, r)
	}
	return v
}

func (p *ssProgram) Compute(ctx *pregel.Context[ssValue, ssMsg], msgs []ssMsg) {
	v := ctx.Value()
	s := ctx.Superstep()
	if s < p.dq {
		// Flood rounds: absorb incoming records, forward only the new
		// ones (delta flooding), over the undirected neighborhood.
		var next []ssRecord
		for _, m := range msgs {
			for _, r := range m.Recs {
				ctx.Charge(1)
				if !v.records[r] {
					v.records[r] = true
					next = append(next, r)
				}
			}
		}
		if s > 0 {
			v.fresh = next
		}
		if len(v.fresh) > 0 {
			out := ssMsg{Recs: v.fresh}
			sent := make(map[VertexID]bool)
			for _, e := range ctx.OutEdges() {
				if !sent[e.Dst] {
					sent[e.Dst] = true
					ctx.SendTo(e.Dst, out)
					ctx.Charge(int64(len(v.fresh)))
				}
			}
			for _, e := range ctx.InEdges() {
				if !sent[e.Dst] {
					sent[e.Dst] = true
					ctx.SendTo(e.Dst, out)
					ctx.Charge(int64(len(v.fresh)))
				}
			}
		}
		return // stay active: every vertex runs the final evaluation step
	}
	// Final superstep: absorb the last wave, then evaluate locally.
	for _, m := range msgs {
		for _, r := range m.Recs {
			ctx.Charge(1)
			v.records[r] = true
		}
	}
	if p.dual[ctx.ID()] != 0 {
		v.center = p.evaluateBall(ctx)
	}
	v.fresh = nil
	ctx.VoteToHalt()
}

// evaluateBall rebuilds the collected neighborhood, restricts it to the
// ball of radius dq around this vertex, and runs dual-simulation
// refinement inside it.
func (p *ssProgram) evaluateBall(ctx *pregel.Context[ssValue, ssMsg]) bool {
	v := ctx.Value()
	// Local BFS over the undirected skeleton of collected edges.
	und := make(map[VertexID][]VertexID)
	for r := range v.records {
		if r.IsEdge {
			und[r.A] = append(und[r.A], r.B)
			und[r.B] = append(und[r.B], r.A)
			ctx.Charge(1)
		}
	}
	dist := map[VertexID]int{ctx.ID(): 0}
	queue := []VertexID{ctx.ID()}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == p.dq {
			continue
		}
		for _, w := range und[u] {
			ctx.Charge(1)
			if _, ok := dist[w]; !ok {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	// Ball-restricted relation and directed adjacency.
	sets := make(map[VertexID]uint64)
	for r := range v.records {
		if !r.IsEdge {
			if _, ok := dist[r.A]; ok {
				sets[r.A] = r.Set
			}
		}
	}
	out := make(map[VertexID][]VertexID)
	in := make(map[VertexID][]VertexID)
	for r := range v.records {
		if r.IsEdge {
			if _, ok := dist[r.A]; !ok {
				continue
			}
			if _, ok := dist[r.B]; !ok {
				continue
			}
			out[r.A] = append(out[r.A], r.B)
			in[r.B] = append(in[r.B], r.A)
		}
	}
	// Dual refinement to fixpoint inside the ball.
	for changed := true; changed; {
		changed = false
		for u, set := range sets {
			for qi := 0; qi < p.q.N(); qi++ {
				bit := uint64(1) << uint(qi)
				if set&bit == 0 {
					continue
				}
				ok := true
				for _, qe := range p.q.Out[qi] {
					ctx.Charge(1)
					found := false
					for _, w := range out[u] {
						if sets[w]&(1<<uint(qe.Dst)) != 0 {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if ok {
					for _, qe := range p.q.In[qi] {
						ctx.Charge(1)
						found := false
						for _, w := range in[u] {
							if sets[w]&(1<<uint(qe.Dst)) != 0 {
								found = true
								break
							}
						}
						if !found {
							ok = false
							break
						}
					}
				}
				if !ok {
					set &^= bit
					changed = true
				}
			}
			sets[u] = set
		}
	}
	return sets[ctx.ID()] != 0
}

func (p *ssProgram) StateUnits(v *ssValue) int64 { return int64(1 + len(v.records)) }

// StrongSimulation computes the strong-simulation match centers of
// query q in data graph g. It chains a DualSimulation run with the
// ball-gathering run and merges their statistics.
func StrongSimulation(g, q *graph.Graph, cfg Config) (*StrongSimResult, error) {
	if err := checkSimInputs(g, q); err != nil {
		return nil, err
	}
	dualRes, err := DualSimulation(g, q, cfg)
	if err != nil {
		return nil, err
	}
	dq := int(seq.QueryDiameter(q))
	prog := &ssProgram{q: q, dq: dq, dual: dualRes.Match}
	eng := pregel.NewEngine[ssValue, ssMsg](g, prog, engineCfg[ssMsg](cfg))
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &StrongSimResult{
		Centers: make([]bool, g.N()),
		Dual:    dualRes.Match,
		Stats:   MergeStats(dualRes.Stats, res.Stats),
	}
	for v, val := range res.Values {
		out.Centers[v] = val.center
	}
	return out, nil
}
