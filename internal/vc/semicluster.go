package vc

import (
	"fmt"
	"sort"
	"strings"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Semi-clustering, the fourth example algorithm of the Pregel paper
// [12] §5.4 (included here to complete the paper's algorithm set):
// a semi-cluster is a small vertex set scored by
//
//	S_c = (I_c − f_B·B_c) / (V_c(V_c−1)/2)
//
// where I_c is the weight of edges inside the cluster, B_c the weight
// of edges crossing its boundary, and f_B the boundary penalty. Every
// vertex maintains its C_max best clusters; each superstep it ships
// them to its neighbors, which try to add themselves (up to M_max
// members), re-score, and keep the best. The process runs a fixed
// number of iterations.

// SemiClusterConfig holds the algorithm parameters (zero values pick
// the defaults in parentheses).
type SemiClusterConfig struct {
	CMax       int     // clusters kept per vertex (2)
	MMax       int     // max members per cluster (4)
	FBoundary  float64 // boundary edge penalty f_B (0.5)
	Iterations int     // supersteps of exchange (10)
}

func (c *SemiClusterConfig) defaults() {
	if c.CMax <= 0 {
		c.CMax = 2
	}
	if c.MMax <= 0 {
		c.MMax = 4
	}
	if c.FBoundary == 0 {
		c.FBoundary = 0.5
	}
	if c.Iterations <= 0 {
		c.Iterations = 10
	}
}

// SemiCluster is one scored cluster.
type SemiCluster struct {
	Members []VertexID // sorted
	I, B    float64
	Score   float64
}

func (c SemiCluster) key() string {
	var b strings.Builder
	for _, m := range c.Members {
		fmt.Fprintf(&b, "%d,", m)
	}
	return b.String()
}

func (c SemiCluster) contains(v VertexID) bool {
	i := sort.Search(len(c.Members), func(i int) bool { return c.Members[i] >= v })
	return i < len(c.Members) && c.Members[i] == v
}

func scoreOf(i, b, fB float64, size int) float64 {
	den := float64(size*(size-1)) / 2
	if den < 1 {
		den = 1
	}
	return (i - fB*b) / den
}

// SemiClusterResult holds each vertex's best clusters and the global
// top clusters (deduplicated, best first).
type SemiClusterResult struct {
	PerVertex [][]SemiCluster
	Top       []SemiCluster
	Stats     *bsp.Stats
}

type scValue struct {
	clusters []SemiCluster
}

type scMsg struct {
	Clusters []SemiCluster
}

type scProgram struct {
	p SemiClusterConfig
}

func (p *scProgram) Init(g *graph.Graph, id VertexID) scValue {
	var b float64
	for _, e := range g.Out[id] {
		b += e.W
	}
	c := SemiCluster{Members: []VertexID{id}, B: b}
	c.Score = scoreOf(c.I, c.B, p.p.FBoundary, 1)
	return scValue{clusters: []SemiCluster{c}}
}

// join returns cluster c extended with v, rescored using v's adjacency.
func (p *scProgram) join(ctx *pregel.Context[scValue, scMsg], c SemiCluster, v VertexID) SemiCluster {
	nc := SemiCluster{
		Members: make([]VertexID, len(c.Members), len(c.Members)+1),
		I:       c.I,
		B:       c.B,
	}
	copy(nc.Members, c.Members)
	nc.Members = append(nc.Members, v)
	sort.Slice(nc.Members, func(i, j int) bool { return nc.Members[i] < nc.Members[j] })
	for _, e := range ctx.OutEdges() {
		ctx.Charge(1)
		if c.contains(e.Dst) {
			// Previously a boundary edge of c (counted when e.Dst
			// joined); now internal.
			nc.I += e.W
			nc.B -= e.W
		} else {
			nc.B += e.W
		}
	}
	nc.Score = scoreOf(nc.I, nc.B, p.p.FBoundary, len(nc.Members))
	return nc
}

func (p *scProgram) Compute(ctx *pregel.Context[scValue, scMsg], msgs []scMsg) {
	v := ctx.Value()
	if ctx.Superstep() >= p.p.Iterations {
		ctx.VoteToHalt()
		return
	}
	if ctx.Superstep() > 0 {
		seen := map[string]bool{}
		for _, c := range v.clusters {
			seen[c.key()] = true
		}
		merged := append([]SemiCluster(nil), v.clusters...)
		for _, m := range msgs {
			for _, c := range m.Clusters {
				ctx.Charge(int64(len(c.Members)))
				if !c.contains(ctx.ID()) && len(c.Members) < p.p.MMax {
					c = p.join(ctx, c, ctx.ID())
				}
				if k := c.key(); !seen[k] {
					seen[k] = true
					merged = append(merged, c)
				}
			}
		}
		sort.Slice(merged, func(i, j int) bool {
			if merged[i].Score != merged[j].Score {
				return merged[i].Score > merged[j].Score
			}
			return merged[i].key() < merged[j].key()
		})
		if len(merged) > p.p.CMax {
			merged = merged[:p.p.CMax]
		}
		v.clusters = merged
	}
	ctx.SendToNeighbors(scMsg{Clusters: v.clusters})
}

func (p *scProgram) StateUnits(v *scValue) int64 {
	var units int64
	for _, c := range v.clusters {
		units += int64(len(c.Members)) + 3
	}
	return units
}

// SemiClustering runs the Pregel semi-clustering algorithm on a
// weighted undirected graph.
func SemiClustering(g *graph.Graph, sc SemiClusterConfig, cfg Config) (*SemiClusterResult, error) {
	sc.defaults()
	prog := &scProgram{p: sc}
	ecfg := engineCfg[scMsg](cfg)
	if ecfg.MaxSupersteps == 0 {
		ecfg.MaxSupersteps = sc.Iterations + 4
	}
	eng := pregel.NewEngine[scValue, scMsg](g, prog, ecfg)
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &SemiClusterResult{PerVertex: make([][]SemiCluster, g.N()), Stats: res.Stats}
	seen := map[string]bool{}
	for v, val := range res.Values {
		out.PerVertex[v] = val.clusters
		for _, c := range val.clusters {
			if k := c.key(); !seen[k] {
				seen[k] = true
				out.Top = append(out.Top, c)
			}
		}
	}
	sort.Slice(out.Top, func(i, j int) bool {
		if out.Top[i].Score != out.Top[j].Score {
			return out.Top[i].Score > out.Top[j].Score
		}
		return out.Top[i].key() < out.Top[j].key()
	})
	return out, nil
}
