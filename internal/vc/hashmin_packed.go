package vc

import (
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Packed-state Hash-Min (Config.PackedState): the same message flow as
// hashMinProgram — superstep-0 structural fold then monotone min
// relaxation — with the component labels held in a bit-packed
// StateStore instead of the engine's value array (the vertex value is
// empty). A label is a vertex ID in [0, n), so it needs ⌈log₂ n⌉ bits
// rather than a 64-bit value slot. Because every send, halt vote, and
// work charge is issued under exactly the same conditions as the dense
// program, a packed run is byte-identical to the dense one — the
// differential suite holds the two together across the whole
// engine×direction×fault matrix.

type hashMinPackedProgram struct {
	labels StateStore
	// seed warm-starts from exported labels, as in hashMinProgram.
	seed []VertexID
}

func newHashMinPackedProgram(n int, seed []VertexID) *hashMinPackedProgram {
	domain := uint64(n)
	if domain == 0 {
		domain = 1
	}
	return &hashMinPackedProgram{labels: NewPackedInts(n, domain), seed: seed}
}

func (p *hashMinPackedProgram) initLabel(id VertexID) uint64 {
	if p.seed != nil {
		return uint64(p.seed[id])
	}
	return uint64(id)
}

func (p *hashMinPackedProgram) Init(g *graph.Graph, id VertexID) struct{} {
	p.labels.Set(int(id), p.initLabel(id))
	return struct{}{}
}

func (p *hashMinPackedProgram) Compute(ctx *pregel.Context[struct{}, VertexID], msgs []VertexID) {
	id := ctx.ID()
	min := VertexID(p.labels.Get(int(id)))
	if ctx.Superstep() == 0 {
		// min over {v} ∪ neighbors(v), then broadcast.
		ctx.ForEachOut(func(dst VertexID, w float64) {
			ctx.Charge(1)
			if dst < min {
				min = dst
			}
		})
		p.labels.Set(int(id), uint64(min))
		ctx.SendToNeighbors(min)
		ctx.VoteToHalt()
		return
	}
	u := min
	for _, m := range msgs {
		if m < u {
			u = m
		}
	}
	if u < min {
		p.labels.Set(int(id), uint64(u))
		ctx.SendToNeighbors(u)
	}
	ctx.VoteToHalt()
}

func (p *hashMinPackedProgram) StateUnits(v *struct{}) int64 { return 1 }

// FinishSerially mirrors hashMinProgram.FinishSerially over the packed
// store (the FCS optimization, Config.FCS).
func (p *hashMinPackedProgram) FinishSerially(fc *pregel.FinishContext[struct{}, VertexID]) int64 {
	var work int64
	queue := make([]VertexID, 0, len(fc.Active()))
	for _, v := range fc.Active() {
		min := VertexID(p.labels.Get(int(v)))
		for _, m := range fc.Inbox(v) {
			work++
			if m < min {
				min = m
			}
		}
		p.labels.Set(int(v), uint64(min))
		queue = append(queue, v)
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		label := VertexID(p.labels.Get(int(v)))
		fc.ForEachOut(v, func(dst VertexID, _ float64) {
			work++
			if label < VertexID(p.labels.Get(int(dst))) {
				p.labels.Set(int(dst), uint64(label))
				queue = append(queue, dst)
			}
		})
	}
	return work
}

// Snapshot/Restore implement pregel.Snapshotter: the engine's
// checkpoints clone only the (empty) value array, so the store rides
// along here. Restore(nil) is the pristine restart.
func (p *hashMinPackedProgram) Snapshot() any { return p.labels.Clone() }

func (p *hashMinPackedProgram) Restore(s any) {
	if s == nil {
		for v := 0; v < p.labels.Len(); v++ {
			p.labels.Set(v, p.initLabel(VertexID(v)))
		}
		return
	}
	p.labels.CopyFrom(s.(StateStore))
}
