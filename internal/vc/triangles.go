package vc

import (
	"sort"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Triangle counting and local clustering coefficients: the paper's
// §3.8 names these as workloads that need a subgraph-centric view and
// are therefore awkward in the vertex-centric model — every vertex
// must learn (part of) its neighbors' adjacency, so message volume is
// Σ_v d(v)² rather than O(m). This module implements the standard
// degree-ordered neighborhood-exchange algorithm so the blow-up can be
// measured (see the X.01 extension experiment in internal/core).
//
// Protocol (two supersteps, undirected input):
//   - rank vertices by (degree, ID); orient each edge from lower to
//     higher rank;
//   - superstep 0: every vertex sends its higher-ranked neighbor list
//     to each higher-ranked neighbor;
//   - superstep 1: vertex w receiving u's list over edge (u,w) counts
//     the intersection with its own higher-ranked adjacency — each hit
//     closes a triangle exactly once.
//
// Per-triangle credit is then folded back to all three corners for the
// clustering coefficient.

// TriangleResult holds per-vertex triangle counts, the global triangle
// count, and local clustering coefficients.
type TriangleResult struct {
	PerVertex  []int64
	Total      int64
	Clustering []float64
	Stats      *bsp.Stats
}

type triMsg struct {
	From   VertexID
	Higher []VertexID
}

type triValue struct {
	higher    []VertexID // neighbors ranked above this vertex
	triangles int64
}

type triProgram struct {
	rank []int32
}

func (p *triProgram) less(a, b VertexID) bool { return p.rank[a] < p.rank[b] }

func (p *triProgram) Init(g *graph.Graph, id VertexID) triValue {
	var higher []VertexID
	for _, dst := range g.CSR().Out(id) {
		if p.less(id, dst) {
			higher = append(higher, dst)
		}
	}
	sort.Slice(higher, func(i, j int) bool { return higher[i] < higher[j] })
	return triValue{higher: higher}
}

func (p *triProgram) Compute(ctx *pregel.Context[triValue, triMsg], msgs []triMsg) {
	v := ctx.Value()
	switch ctx.Superstep() {
	case 0:
		// Ship this vertex's higher-adjacency to every higher neighbor.
		for _, w := range v.higher {
			ctx.SendTo(w, triMsg{From: ctx.ID(), Higher: v.higher})
			ctx.Charge(int64(len(v.higher)))
		}
		return // stay active to count at superstep 1
	case 1:
		mine := v.higher
		for _, m := range msgs {
			ctx.Charge(int64(len(m.Higher) + len(mine)))
			// Sorted-merge intersection of m.Higher with mine: each hit
			// x closes the triangle (m.From, me, x). Credit the pivot
			// (lowest-ranked corner, m.From) by telling it; me and x
			// count locally on receipt at superstep 2.
			i, j := 0, 0
			for i < len(m.Higher) && j < len(mine) {
				switch {
				case m.Higher[i] == mine[j]:
					v.triangles++
					ctx.SendTo(m.From, triMsg{From: ctx.ID()})
					ctx.SendTo(mine[j], triMsg{From: ctx.ID()})
					i++
					j++
				case m.Higher[i] < mine[j]:
					i++
				default:
					j++
				}
			}
		}
		ctx.VoteToHalt()
	default:
		// Triangle credits for the other two corners.
		v.triangles += int64(len(msgs))
		ctx.VoteToHalt()
	}
}

func (p *triProgram) StateUnits(v *triValue) int64 { return int64(1 + len(v.higher)) }

// Triangles counts triangles of an undirected graph in the
// vertex-centric model. Message volume is Θ(Σ d(v)²) in the worst case
// — the §3.8 communication overhead — while the sequential baseline
// touches each adjacency intersection once.
func Triangles(g *graph.Graph, cfg Config) (*TriangleResult, error) {
	n := g.N()
	// Degree ranking (degeneracy-style orientation bounds the shipped
	// lists by the graph's arboricity in the good case).
	order := make([]VertexID, n)
	for i := range order {
		order[i] = VertexID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	rank := make([]int32, n)
	for i, v := range order {
		rank[v] = int32(i)
	}
	prog := &triProgram{rank: rank}
	eng := pregel.NewEngine[triValue, triMsg](g, prog, engineCfg[triMsg](cfg))
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &TriangleResult{
		PerVertex:  make([]int64, n),
		Clustering: make([]float64, n),
		Stats:      res.Stats,
	}
	for v, val := range res.Values {
		out.PerVertex[v] = val.triangles
		out.Total += val.triangles
	}
	out.Total /= 3 // each triangle credited at all three corners
	for v := 0; v < n; v++ {
		d := g.Degree(VertexID(v))
		if d >= 2 {
			out.Clustering[v] = 2 * float64(out.PerVertex[v]) / float64(d*(d-1))
		}
	}
	return out, nil
}
