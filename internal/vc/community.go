package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Community detection by synchronous label propagation — one of the
// workloads §3.8 lists as an open question for vertex-centric systems
// ("modularity optimization for community detection"). This is the
// straightforward Pregel formulation: every vertex repeatedly adopts
// the most frequent label among its neighbors (ties to the smallest
// label). Synchronous updates can oscillate on bipartite-ish
// structures, so the run is capped at maxRounds and also stops at the
// first fixpoint — both behaviours are part of what makes the workload
// awkward in this model, and the harness measures them.

// CommunityResult holds the final label per vertex and the modularity
// of the induced partition.
type CommunityResult struct {
	Label      []VertexID
	Modularity float64
	Rounds     int
	Stats      *bsp.Stats
}

type lpaValue struct {
	label VertexID
}

type lpaProgram struct {
	maxRounds int
}

func (p *lpaProgram) Init(g *graph.Graph, id VertexID) lpaValue {
	return lpaValue{label: id}
}

func (p *lpaProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	if mc.Superstep() == 0 {
		return
	}
	changed, _ := mc.Agg("changed").(bool)
	if !changed && mc.Superstep() > 1 {
		mc.Halt()
		return
	}
	if mc.Superstep() > p.maxRounds {
		mc.Halt()
	}
}

func (p *lpaProgram) Compute(ctx *pregel.Context[lpaValue, VertexID], msgs []VertexID) {
	v := ctx.Value()
	if ctx.Superstep() == 0 {
		ctx.SendToNeighbors(v.label)
		return
	}
	if len(msgs) > 0 {
		counts := make(map[VertexID]int, len(msgs))
		best, bestN := v.label, 0
		for _, m := range msgs {
			counts[m]++
			c := counts[m]
			if c > bestN || (c == bestN && m < best) {
				best, bestN = m, c
			}
		}
		ctx.Charge(int64(len(msgs)))
		if best != v.label {
			v.label = best
			ctx.Aggregate("changed", true)
		}
	}
	// Labels are rebroadcast every round (neighbors need the current
	// histogram even if this vertex did not change).
	ctx.SendToNeighbors(v.label)
}

func (p *lpaProgram) StateUnits(v *lpaValue) int64 { return 1 }

// LabelPropagation runs synchronous LPA for at most maxRounds rounds
// (0 = default 32) and reports the partition with its modularity.
func LabelPropagation(g *graph.Graph, maxRounds int, cfg Config) (*CommunityResult, error) {
	if maxRounds <= 0 {
		maxRounds = 32
	}
	prog := &lpaProgram{maxRounds: maxRounds}
	ecfg := engineCfg[VertexID](cfg)
	if ecfg.MaxSupersteps == 0 {
		ecfg.MaxSupersteps = maxRounds + 8
	}
	eng := pregel.NewEngine[lpaValue, VertexID](g, prog, ecfg)
	eng.RegisterAggregator("changed", pregel.BoolOr())
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &CommunityResult{
		Label:  make([]VertexID, g.N()),
		Rounds: res.Supersteps,
		Stats:  res.Stats,
	}
	for v, val := range res.Values {
		out.Label[v] = val.label
	}
	out.Modularity = Modularity(g, out.Label)
	return out, nil
}

// Modularity computes Newman's modularity Q of a partition of an
// undirected graph: Q = Σ_c (e_c/m − (deg_c/2m)²), where e_c is the
// number of intra-community edges and deg_c the community's total
// degree.
func Modularity(g *graph.Graph, label []VertexID) float64 {
	m := float64(g.M())
	if m == 0 {
		return 0
	}
	intra := map[VertexID]float64{}
	deg := map[VertexID]float64{}
	for u := range g.Out {
		deg[label[u]] += float64(len(g.Out[u]))
		for _, e := range g.Out[u] {
			if VertexID(u) < e.Dst && label[u] == label[e.Dst] {
				intra[label[u]]++
			}
		}
	}
	var q float64
	for _, ec := range intra {
		q += ec / m
	}
	for _, dc := range deg {
		q -= (dc / (2 * m)) * (dc / (2 * m))
	}
	return q
}
