package vc

import (
	"sort"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Personalized PageRank by Monte Carlo random walks — the engine
// behind link prediction, one of the workloads §3.8(4) lists as an
// open question for vertex-centric systems. The Pregel formulation is
// natural and message-heavy: every walk is a message; each superstep
// every in-flight walk either terminates at its current vertex (with
// the restart probability) or forwards itself to a uniformly random
// neighbor. The fraction of walks terminating at v estimates the
// personalized PageRank ppr_s(v) for walk lengths ~ Geometric(c).

// PPRResult holds the estimated personalized PageRank scores for one
// source.
type PPRResult struct {
	Scores []float64 // sums to ~1 over reachable vertices
	Walks  int
	Stats  *bsp.Stats
}

type pprValue struct {
	ended int64
}

type pprProgram struct {
	src     VertexID
	walks   int
	restart float64
	maxLen  int
}

func (p *pprProgram) Init(g *graph.Graph, id VertexID) pprValue { return pprValue{} }

func (p *pprProgram) Compute(ctx *pregel.Context[pprValue, int8], msgs []int8) {
	v := ctx.Value()
	rng := ctx.Rand()
	walkCount := len(msgs)
	if ctx.Superstep() == 0 {
		if ctx.ID() != p.src {
			ctx.VoteToHalt()
			return
		}
		walkCount = p.walks
	}
	adj := ctx.OutEdges()
	for i := 0; i < walkCount; i++ {
		// Terminate with the restart probability, at a dangling vertex,
		// or when the walk hits the length cap (superstep bound).
		if len(adj) == 0 || ctx.Superstep() >= p.maxLen || rng.Float64() < p.restart {
			v.ended++
			continue
		}
		ctx.SendTo(adj[rng.Intn(len(adj))].Dst, 0)
	}
	ctx.VoteToHalt()
}

func (p *pprProgram) StateUnits(v *pprValue) int64 { return 1 }

// PersonalizedPageRank estimates ppr from src with `walks` random
// walks and restart probability c (typical 0.15). Deterministic for a
// given Config.Seed.
func PersonalizedPageRank(g *graph.Graph, src VertexID, walks int, c float64, cfg Config) (*PPRResult, error) {
	if walks <= 0 {
		walks = 10000
	}
	prog := &pprProgram{src: src, walks: walks, restart: c, maxLen: 128}
	ecfg := engineCfg[int8](cfg)
	if ecfg.MaxSupersteps == 0 {
		ecfg.MaxSupersteps = prog.maxLen + 8
	}
	eng := pregel.NewEngine[pprValue, int8](g, prog, ecfg)
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &PPRResult{Scores: make([]float64, g.N()), Walks: walks, Stats: res.Stats}
	for v, val := range res.Values {
		out.Scores[v] = float64(val.ended) / float64(walks)
	}
	return out, nil
}

// LinkPrediction ranks the non-neighbors of src by personalized
// PageRank — the classic PPR link predictor — returning the top k
// candidate endpoints.
func LinkPrediction(g *graph.Graph, src VertexID, k, walks int, cfg Config) ([]VertexID, *PPRResult, error) {
	ppr, err := PersonalizedPageRank(g, src, walks, 0.15, cfg)
	if err != nil {
		return nil, nil, err
	}
	existing := map[VertexID]bool{src: true}
	for _, e := range g.Out[src] {
		existing[e.Dst] = true
	}
	type cand struct {
		v VertexID
		s float64
	}
	var cands []cand
	for v, s := range ppr.Scores {
		if s > 0 && !existing[VertexID(v)] {
			cands = append(cands, cand{VertexID(v), s})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].v < cands[j].v
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]VertexID, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].v
	}
	return out, ppr, nil
}
