package vc

import (
	"errors"
	"reflect"
	"testing"

	"vcgraph/internal/async"
	"vcgraph/internal/graph"
)

func asyncCC(t *testing.T, g *graph.Graph) []VertexID {
	t.Helper()
	labels, _, err := async.ConnectedComponents(g, async.Config{})
	if err != nil {
		t.Fatalf("async CC: %v", err)
	}
	return labels
}

func asyncSSSP(t *testing.T, g *graph.Graph, src VertexID) []float64 {
	t.Helper()
	dist, _, err := async.SSSP(g, src, async.Config{})
	if err != nil {
		t.Fatalf("async SSSP: %v", err)
	}
	return dist
}

func mustMutate(t *testing.T, g *graph.Graph, muts ...graph.Mutation) {
	t.Helper()
	if _, err := g.ApplyMutations(muts); err != nil {
		t.Fatalf("ApplyMutations: %v", err)
	}
}

func ins(u, v VertexID, w float64) graph.Mutation {
	return graph.Mutation{Op: graph.InsertEdge, U: u, V: v, W: w}
}

func del(u, v VertexID) graph.Mutation {
	return graph.Mutation{Op: graph.DeleteEdge, U: u, V: v}
}

// TestIncrementalCCInsertDelete exercises the two structural directions:
// an insert merging two components, and the delete splitting them again
// (the case hash-min alone cannot repair — labels must be re-seeded).
func TestIncrementalCCInsertDelete(t *testing.T) {
	g := graph.New(6, false)
	for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		g.AddEdge(e[0], e[1])
	}
	st, _, err := IncrementalCC(g, nil, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cold {
		t.Fatal("first run with no prior state should be cold")
	}
	if got := asyncCC(t, g); !reflect.DeepEqual(st.Labels, got) {
		t.Fatalf("cold labels %v != from-scratch %v", st.Labels, got)
	}

	mustMutate(t, g, ins(2, 3, 1))
	st2, _, err := IncrementalCC(g, st, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cold {
		t.Fatal("run with valid prior state should be warm")
	}
	if got := asyncCC(t, g); !reflect.DeepEqual(st2.Labels, got) {
		t.Fatalf("after insert: incremental %v != from-scratch %v", st2.Labels, got)
	}

	mustMutate(t, g, del(2, 3))
	st3, _, err := IncrementalCC(g, st2, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Cold {
		t.Fatal("expected warm run after delete")
	}
	if got := asyncCC(t, g); !reflect.DeepEqual(st3.Labels, got) {
		t.Fatalf("after delete: incremental %v != from-scratch %v", st3.Labels, got)
	}
	if st3.Labels[3] != 3 || st3.Labels[0] != 0 {
		t.Fatalf("split not repaired: %v", st3.Labels)
	}
}

// TestIncrementalCCOutOfBandMutation: a mutation outside ApplyMutations
// poisons the log, so the next incremental run must detect the missing
// history and fall back to a cold recompute — and still be right.
func TestIncrementalCCOutOfBandMutation(t *testing.T) {
	g := graph.RandomConnected(16, 24, 5)
	st, _, err := IncrementalCC(g, nil, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 9) // bypasses the mutation log
	st2, _, err := IncrementalCC(g, st, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cold {
		t.Fatal("out-of-band mutation must force a cold run")
	}
	if got := asyncCC(t, g); !reflect.DeepEqual(st2.Labels, got) {
		t.Fatalf("cold fallback labels %v != from-scratch %v", st2.Labels, got)
	}
}

// TestIncrementalSSSPDeleteLengthens covers the hard direction for a
// label-correcting algorithm: deletions that lengthen distances and
// disconnect vertices, which only work via the invalidation closure.
func TestIncrementalSSSPDeleteLengthens(t *testing.T) {
	g := graph.New(4, false)
	g.AddWeightedEdge(0, 1, 1)
	g.AddWeightedEdge(1, 2, 1)
	g.AddWeightedEdge(0, 2, 1) // shortcut: dist[2] = 1
	g.AddWeightedEdge(2, 3, 1)
	st, _, err := IncrementalSSSP(g, 0, nil, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0, 1, 1, 2}; !reflect.DeepEqual(st.Dist, want) {
		t.Fatalf("cold dist %v, want %v", st.Dist, want)
	}

	// Deleting the shortcut lengthens 2 and 3.
	mustMutate(t, g, del(0, 2))
	st2, _, err := IncrementalSSSP(g, 0, st, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cold {
		t.Fatal("expected warm run")
	}
	if want := []float64{0, 1, 2, 3}; !reflect.DeepEqual(st2.Dist, want) {
		t.Fatalf("after shortcut delete: %v, want %v", st2.Dist, want)
	}
	if got := asyncSSSP(t, g, 0); !reflect.DeepEqual(st2.Dist, got) {
		t.Fatalf("incremental %v != from-scratch %v", st2.Dist, got)
	}

	// Disconnect vertex 3 entirely: its distance must match the async
	// engine's unreachable sentinel bit-for-bit.
	mustMutate(t, g, del(2, 3))
	st3, _, err := IncrementalSSSP(g, 0, st2, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Dist[3] != incInf {
		t.Fatalf("disconnected vertex dist = %v, want sentinel", st3.Dist[3])
	}
	if got := asyncSSSP(t, g, 0); !reflect.DeepEqual(st3.Dist, got) {
		t.Fatalf("incremental %v != from-scratch %v", st3.Dist, got)
	}

	// Reconnect cheaper than ever.
	mustMutate(t, g, ins(0, 3, 0.5))
	st4, _, err := IncrementalSSSP(g, 0, st3, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := asyncSSSP(t, g, 0); !reflect.DeepEqual(st4.Dist, got) {
		t.Fatalf("incremental %v != from-scratch %v", st4.Dist, got)
	}
	if st4.Dist[3] != 0.5 {
		t.Fatalf("dist[3] = %v, want 0.5", st4.Dist[3])
	}
}

// TestIncrementalSSSPSourceChange: prior state for a different source
// must not be reused.
func TestIncrementalSSSPSourceChange(t *testing.T) {
	g := graph.RandomConnected(12, 20, 7)
	graph.RandomWeights(g, 7)
	st, _, err := IncrementalSSSP(g, 0, nil, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st2, _, err := IncrementalSSSP(g, 3, st, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cold {
		t.Fatal("prior state for source 0 reused for source 3")
	}
	if got := asyncSSSP(t, g, 3); !reflect.DeepEqual(st2.Dist, got) {
		t.Fatalf("incremental %v != from-scratch %v", st2.Dist, got)
	}
}

// TestIncrementalDirectedRejected: the worklist update rules for CC and
// SSSP pull over out-spans, which is only the full neighborhood on
// undirected graphs.
func TestIncrementalDirectedRejected(t *testing.T) {
	g := graph.New(3, true)
	g.AddEdge(0, 1)
	if _, _, err := IncrementalCC(g, nil, IncConfig{}); !errors.Is(err, ErrIncrementalDirected) {
		t.Fatalf("CC on directed graph: err = %v", err)
	}
	if _, _, err := IncrementalSSSP(g, 0, nil, IncConfig{}); !errors.Is(err, ErrIncrementalDirected) {
		t.Fatalf("SSSP on directed graph: err = %v", err)
	}
}

// TestIncrementalPageRankWarmEqualsCold: the memoized warm start must be
// byte-identical to a cold fixed-K recompute on the mutated graph, and
// must do strictly less gather work.
func TestIncrementalPageRankWarmEqualsCold(t *testing.T) {
	const alpha, k = 0.85, 15
	g := graph.RandomConnected(48, 120, 11)
	cold, _, err := IncrementalPageRank(g, alpha, k, nil, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Cold {
		t.Fatal("first run should be cold")
	}

	// Mutate: one insert, one delete of a known base edge.
	c := g.Pin()
	var du, dv VertexID
	found := false
	c.ForEachOut(2, func(v VertexID, _ float64) {
		if !found {
			du, dv, found = 2, v, true
		}
	})
	g.Unpin(c)
	if !found {
		t.Fatal("vertex 2 has no edges")
	}
	mustMutate(t, g, ins(0, 40, 1), del(du, dv))

	warm, wst, err := IncrementalPageRank(g, alpha, k, cold, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cold {
		t.Fatal("expected warm run")
	}
	scratch, cst, err := IncrementalPageRank(g, alpha, k, nil, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Hist, scratch.Hist) {
		t.Fatal("warm history differs from cold recompute")
	}
	if wst.TotalWork >= cst.TotalWork {
		t.Fatalf("warm run gathered %d edges, cold %d: no incremental savings", wst.TotalWork, cst.TotalWork)
	}
}

// TestIncrementalPageRankParamMismatch: changed alpha or K invalidates
// the memoized history.
func TestIncrementalPageRankParamMismatch(t *testing.T) {
	g := graph.RandomConnected(20, 40, 13)
	st, _, err := IncrementalPageRank(g, 0.85, 10, nil, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mustMutate(t, g, ins(0, 10, 1))
	for _, tc := range []struct {
		name  string
		alpha float64
		k     int
	}{{"alpha", 0.9, 10}, {"k", 0.85, 12}} {
		got, _, err := IncrementalPageRank(g, tc.alpha, tc.k, st, IncConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Cold {
			t.Errorf("%s mismatch reused stale history", tc.name)
		}
	}
}

// TestIncrementalPageRankDirected: PageRank has no undirected
// restriction — the warm path must track directed in/out asymmetry.
func TestIncrementalPageRankDirected(t *testing.T) {
	const alpha, k = 0.85, 12
	g := graph.New(8, true)
	for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}, {6, 0}, {7, 6}, {3, 7}} {
		g.AddEdge(e[0], e[1])
	}
	cold, _, err := IncrementalPageRank(g, alpha, k, nil, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mustMutate(t, g, ins(1, 5, 1), del(2, 3))
	warm, _, err := IncrementalPageRank(g, alpha, k, cold, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cold {
		t.Fatal("expected warm run")
	}
	scratch, _, err := IncrementalPageRank(g, alpha, k, nil, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Hist, scratch.Hist) {
		t.Fatal("directed warm history differs from cold recompute")
	}
}

// TestIncrementalWorkSavings: on a larger graph with a small delta, the
// warm CC/SSSP runs must update far fewer vertices than cold runs.
func TestIncrementalWorkSavings(t *testing.T) {
	g := graph.RandomConnected(400, 1200, 17)
	graph.RandomWeights(g, 17)
	cc, ccCold, err := IncrementalCC(g, nil, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ss, ssCold, err := IncrementalSSSP(g, 0, nil, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mustMutate(t, g, ins(5, 300, 2))
	cc2, ccWarm, err := IncrementalCC(g, cc, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ss2, ssWarm, err := IncrementalSSSP(g, 0, ss, IncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cc2.Cold || ss2.Cold {
		t.Fatal("expected warm runs")
	}
	if got := asyncCC(t, g); !reflect.DeepEqual(cc2.Labels, got) {
		t.Fatal("warm CC wrong")
	}
	if got := asyncSSSP(t, g, 0); !reflect.DeepEqual(ss2.Dist, got) {
		t.Fatal("warm SSSP wrong")
	}
	if w, c := ccWarm.TotalWork, ccCold.TotalWork; w*4 >= c {
		t.Errorf("warm CC did %d updates vs cold %d: expected <25%%", w, c)
	}
	if w, c := ssWarm.TotalWork, ssCold.TotalWork; w*4 >= c {
		t.Errorf("warm SSSP did %d updates vs cold %d: expected <25%%", w, c)
	}
}
