package vc

import (
	"reflect"
	"testing"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	rt "vcgraph/internal/runtime"
)

// --- CloneValue: a checkpoint must not alias the live run ---
//
// Each case builds a value with populated reference fields, clones it,
// then mutates the ORIGINAL in place. If CloneValue shallow-copied, the
// mutation shows through the clone and the checkpoint is corrupted.

func TestCloneValueDeepCopies(t *testing.T) {
	t.Run("diameter", func(t *testing.T) {
		p := &diamProgram{n: 3}
		orig := diamValue{dist: []int32{0, 2, -1}, seen: 2, ecc: 2}
		c := p.CloneValue(orig)
		orig.dist[1] = 99
		if c.dist[1] != 2 || c.seen != 2 || c.ecc != 2 {
			t.Fatalf("clone aliased original: %+v", c)
		}
	})
	t.Run("betweenness-batch", func(t *testing.T) {
		p := &bcBatchProgram{sources: []VertexID{0, 1}}
		orig := bcBatchValue{
			dist: []int32{0, 3}, sigma: []float64{1, 2},
			delta: []float64{0.5, 0}, pending: []int32{1, 0}, done: []bool{true, false},
		}
		c := p.CloneValue(orig)
		orig.dist[0], orig.sigma[0], orig.delta[0], orig.pending[0], orig.done[0] = 9, 9, 9, 9, false
		if c.dist[0] != 0 || c.sigma[0] != 1 || c.delta[0] != 0.5 || c.pending[0] != 1 || !c.done[0] {
			t.Fatalf("clone aliased original: %+v", c)
		}
	})
	t.Run("bipartite-matching", func(t *testing.T) {
		p := &bpmProgram{nl: 2}
		orig := bpmValue{match: graph.NoVertex, candidates: []VertexID{3, 4}}
		c := p.CloneValue(orig)
		orig.candidates[0] = 7
		if c.candidates[0] != 3 {
			t.Fatal("clone aliased candidates")
		}
	})
	t.Run("triangles", func(t *testing.T) {
		p := &triProgram{}
		orig := triValue{higher: []VertexID{5, 6}, triangles: 1}
		c := p.CloneValue(orig)
		orig.higher[0] = 9
		if c.higher[0] != 5 || c.triangles != 1 {
			t.Fatal("clone aliased higher-neighbor list")
		}
	})
	t.Run("simulation", func(t *testing.T) {
		p := &simProgram{}
		orig := simValue{set: 3, childSets: map[VertexID]uint64{1: 2}, parentSets: map[VertexID]uint64{2: 4}}
		c := p.CloneValue(orig)
		orig.childSets[1] = 99
		orig.parentSets[2] = 99
		if c.childSets[1] != 2 || c.parentSets[2] != 4 || c.set != 3 {
			t.Fatal("clone aliased simulation maps")
		}
	})
	t.Run("euler", func(t *testing.T) {
		orig := eulerValue{succ: map[VertexID]VertexID{1: 2}}
		c := eulerProgram{}.CloneValue(orig)
		orig.succ[1] = 9
		if c.succ[1] != 2 {
			t.Fatal("clone aliased successor map")
		}
	})
	t.Run("kcore", func(t *testing.T) {
		orig := kcoreValue{est: 4, nbrEst: map[VertexID]int32{1: 3}}
		c := kcoreProgram{}.CloneValue(orig)
		orig.nbrEst[1] = 9
		if c.nbrEst[1] != 3 || c.est != 4 {
			t.Fatal("clone aliased neighbor-estimate map")
		}
	})
	t.Run("mcst", func(t *testing.T) {
		p := &mcstProgram{}
		orig := mcstValue{edges: []mcstEdge{{Dst: 1, W: 2, OrigU: 0, OrigV: 1}}, pointer: 0, super: 0}
		c := p.CloneValue(orig)
		orig.edges[0].W = 99
		if c.edges[0].W != 2 {
			t.Fatal("clone aliased contracted edge list")
		}
	})
	t.Run("semicluster", func(t *testing.T) {
		p := &scProgram{}
		orig := scValue{clusters: []SemiCluster{{Members: []VertexID{0, 1}, I: 1, Score: 0.5}}}
		c := p.CloneValue(orig)
		orig.clusters[0].Members[0] = 9
		orig.clusters[0].I = 9
		if c.clusters[0].Members[0] != 0 || c.clusters[0].I != 1 {
			t.Fatal("clone aliased cluster members")
		}
	})
	t.Run("strongsim", func(t *testing.T) {
		p := &ssProgram{}
		rec := ssRecord{IsEdge: true, A: 1, B: 2}
		orig := ssValue{records: map[ssRecord]bool{rec: true}, fresh: []ssRecord{rec}, center: true}
		c := p.CloneValue(orig)
		orig.records[ssRecord{A: 9}] = true
		orig.fresh[0] = ssRecord{A: 9}
		if len(c.records) != 1 || c.fresh[0] != rec || !c.center {
			t.Fatal("clone aliased record set")
		}
	})
}

// --- Snapshotter: master state must rewind with the vertices ---

func TestSnapshotterRoundTrip(t *testing.T) {
	t.Run("sv", func(t *testing.T) {
		p := &svProgram{roundChanged: true,
			edges:     [][2]VertexID{{0, 1}},
			snapshots: [][]VertexID{{0, 0}}}
		snap := p.Snapshot()
		p.roundChanged = false
		p.edges = append(p.edges, [2]VertexID{2, 3})
		p.snapshots = nil
		p.Restore(snap)
		if !p.roundChanged || len(p.edges) != 1 || len(p.snapshots) != 1 {
			t.Fatalf("restore lost state: %+v", p)
		}
		// The same generation may be restored twice: mutating after the
		// first restore must not leak into the stored snapshot.
		p.edges[0] = [2]VertexID{8, 9}
		p.Restore(snap)
		if p.edges[0] != [2]VertexID{0, 1} {
			t.Fatal("snapshot aliased restored state")
		}
		p.Restore(nil)
		if p.roundChanged || p.edges != nil || p.snapshots != nil {
			t.Fatalf("Restore(nil) did not reset: %+v", p)
		}
	})
	t.Run("mcst", func(t *testing.T) {
		p := &mcstProgram{phase: 2, picked: []pickedEdge{{U: 0, V: 1, W: 3}}}
		snap := p.Snapshot()
		p.phase = 0
		p.picked = append(p.picked, pickedEdge{U: 4, V: 5})
		p.Restore(snap)
		if p.phase != 2 || len(p.picked) != 1 {
			t.Fatalf("restore lost state: %+v", p)
		}
		p.picked[0].W = 99
		p.Restore(snap)
		if p.picked[0].W != 3 {
			t.Fatal("snapshot aliased restored state")
		}
		p.Restore(nil)
		if p.phase != 0 || p.picked != nil {
			t.Fatalf("Restore(nil) did not reset: %+v", p)
		}
	})
	t.Run("int-phase-programs", func(t *testing.T) {
		type intSnap interface {
			Snapshot() any
			Restore(any)
		}
		cases := []struct {
			name string
			prog intSnap
			set  func(int)
			get  func() int
		}{}
		bc := &bcProgram{}
		cases = append(cases, struct {
			name string
			prog intSnap
			set  func(int)
			get  func() int
		}{"bc", bc, func(v int) { bc.mode = v }, func() int { return bc.mode }})
		bcb := &bcBatchProgram{}
		cases = append(cases, struct {
			name string
			prog intSnap
			set  func(int)
			get  func() int
		}{"bcBatch", bcb, func(v int) { bcb.mode = v }, func() int { return bcb.mode }})
		mwm := &mwmProgram{}
		cases = append(cases, struct {
			name string
			prog intSnap
			set  func(int)
			get  func() int
		}{"mwm", mwm, func(v int) { mwm.phase = v }, func() int { return mwm.phase }})
		bpm := &bpmProgram{}
		cases = append(cases, struct {
			name string
			prog intSnap
			set  func(int)
			get  func() int
		}{"bpm", bpm, func(v int) { bpm.phase = v }, func() int { return bpm.phase }})
		mis := &misProgram{}
		cases = append(cases, struct {
			name string
			prog intSnap
			set  func(int)
			get  func() int
		}{"mis", mis, func(v int) { mis.phase = v }, func() int { return mis.phase }})
		scc := &sccProgram{}
		cases = append(cases, struct {
			name string
			prog intSnap
			set  func(int)
			get  func() int
		}{"scc", scc, func(v int) { scc.phase = v }, func() int { return scc.phase }})
		for _, tc := range cases {
			tc.set(2)
			snap := tc.prog.Snapshot()
			tc.set(5)
			tc.prog.Restore(snap)
			if tc.get() != 2 {
				t.Fatalf("%s: restore got %d, want 2", tc.name, tc.get())
			}
			tc.prog.Restore(nil)
			if tc.get() != 0 {
				t.Fatalf("%s: Restore(nil) got %d, want 0", tc.name, tc.get())
			}
		}
	})
	t.Run("coloring", func(t *testing.T) {
		p := &colProgram{phase: 1, c: 3}
		snap := p.Snapshot()
		p.phase, p.c = 2, 7
		p.Restore(snap)
		if p.phase != 1 || p.c != 3 {
			t.Fatalf("restore lost state: %+v", p)
		}
		p.Restore(nil)
		if p.phase != 0 || p.c != 0 {
			t.Fatalf("Restore(nil) did not reset: %+v", p)
		}
	})
	t.Run("hits", func(t *testing.T) {
		p := &hitsProgram{k: 5, norm: 1.25}
		snap := p.Snapshot()
		p.norm = 9
		p.Restore(snap)
		if p.norm != 1.25 || p.k != 5 {
			t.Fatalf("restore lost state: %+v", p)
		}
		p.Restore(nil)
		if p.norm != 0 || p.k != 5 {
			t.Fatalf("Restore(nil) touched config or kept norm: %+v", p)
		}
	})
}

// --- End-to-end: crash + rollback must reproduce the clean run ---
//
// Every algorithm audited for checkpoint aliasing runs twice: once
// clean, once with a checkpoint every 2 supersteps and a crash at
// superstep 3 (one past a checkpoint boundary, so the rollback has real
// work to redo). The recovered run must produce byte-identical payloads.
// Before the CloneValue/Snapshotter implementations in checkpointing.go
// these diverged (aliased checkpoints, master state marching ahead).

func TestCrashRecoveryMatchesCleanRun(t *testing.T) {
	cases := []struct {
		name    string
		crashAt int // 0 = superstep 3 (one past a checkpoint boundary)
		run     func(cfg Config) (any, *bsp.Stats, error)
	}{
		{name: "diameter", run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := Diameter(graph.Grid(6, 6), cfg)
			if err != nil {
				return nil, nil, err
			}
			return struct {
				Ecc  []int32
				D    int32
				Dist [][]int32
			}{res.Ecc, res.Diameter, res.Dist}, res.Stats, nil
		}},
		{name: "kcore", run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := KCore(graph.Random(80, 200, 5), cfg)
			if err != nil {
				return nil, nil, err
			}
			return struct {
				Core []int32
				D    int32
			}{res.Core, res.Degeneracy}, res.Stats, nil
		}},
		{name: "triangles", run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := Triangles(graph.Random(60, 150, 7), cfg)
			if err != nil {
				return nil, nil, err
			}
			return struct {
				Per   []int64
				Total int64
				Clust []float64
			}{res.PerVertex, res.Total, res.Clustering}, res.Stats, nil
		}},
		{name: "semiclustering", run: func(cfg Config) (any, *bsp.Stats, error) {
			g := graph.RandomConnected(60, 180, 5)
			graph.RandomWeights(g, 6)
			res, err := SemiClustering(g, SemiClusterConfig{CMax: 2, MMax: 4, Iterations: 6}, cfg)
			if err != nil {
				return nil, nil, err
			}
			return struct {
				Per [][]SemiCluster
				Top []SemiCluster
			}{res.PerVertex, res.Top}, res.Stats, nil
		}},
		{name: "mcst", run: func(cfg Config) (any, *bsp.Stats, error) {
			g := graph.RandomConnected(120, 400, 1)
			graph.RandomWeights(g, 51)
			res, err := MCST(g, cfg)
			if err != nil {
				return nil, nil, err
			}
			return struct {
				Edges  []graph.UndirectedEdge
				Weight float64
			}{res.Edges, res.Weight}, res.Stats, nil
		}},
		{name: "svcc", run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := SVCC(graph.Random(100, 150, 3), cfg)
			if err != nil {
				return nil, nil, err
			}
			return struct {
				Color []VertexID
				Tree  []graph.UndirectedEdge
			}{res.Color, res.TreeEdges}, res.Stats, nil
		}},
		{name: "scc", run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := SCC(graph.RandomDirected(80, 240, 4), cfg)
			if err != nil {
				return nil, nil, err
			}
			return res.Comp, res.Stats, nil
		}},
		{name: "hits", run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := HITS(graph.RandomDirected(80, 240, 4), 10, cfg)
			if err != nil {
				return nil, nil, err
			}
			return struct{ Hub, Auth []float64 }{res.Hub, res.Auth}, res.Stats, nil
		}},
		{name: "bipartite-matching", run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := BipartiteMatching(graph.RandomBipartite(40, 35, 150, 2), 40, cfg)
			if err != nil {
				return nil, nil, err
			}
			return res.Match, res.Stats, nil
		}},
		{name: "max-weight-matching", run: func(cfg Config) (any, *bsp.Stats, error) {
			g := graph.Random(80, 200, 6)
			graph.RandomWeights(g, 7)
			res, err := MaxWeightMatching(g, cfg)
			if err != nil {
				return nil, nil, err
			}
			return struct {
				Match  []VertexID
				Weight float64
			}{res.Match, res.Weight}, res.Stats, nil
		}},
		{name: "mis", run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := MaximalIndependentSet(graph.Random(100, 300, 8), cfg)
			if err != nil {
				return nil, nil, err
			}
			return struct {
				In   []bool
				Size int
			}{res.InSet, res.Size}, res.Stats, nil
		}},
		{name: "coloring", run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := ColoringMIS(graph.Random(100, 300, 9), cfg)
			if err != nil {
				return nil, nil, err
			}
			return struct {
				Colors []int
				K      int
			}{res.Colors, res.K}, res.Stats, nil
		}},
		// EulerTour converges in O(1) supersteps: crash before the first
		// checkpoint exists, exercising the fresh-restart path.
		{name: "euler", crashAt: 1, run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := EulerTour(graph.RandomTree(120, 17), cfg)
			if err != nil {
				return nil, nil, err
			}
			return res.Succ, res.Stats, nil
		}},
		// listrank was named in the aliasing audit: its V is plain
		// (sum, pred) and the program slices are read-only inputs, so
		// no CloneValue is needed — this case pins that conclusion.
		{name: "listrank", run: func(cfg Config) (any, *bsp.Stats, error) {
			const n = 200
			pred := make([]VertexID, n)
			val := make([]int64, n)
			pred[0] = graph.NoVertex
			for i := 1; i < n; i++ {
				pred[i] = VertexID(i - 1)
				val[i] = int64(i)
			}
			res, err := ListRank(pred, val, cfg)
			if err != nil {
				return nil, nil, err
			}
			return res.Sum, res.Stats, nil
		}},
		{name: "graph-simulation", run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := GraphSimulation(labeledData(120, 500, 1), randomQuery(4, 31), cfg)
			if err != nil {
				return nil, nil, err
			}
			return res.Match, res.Stats, nil
		}},
		{name: "strong-simulation", run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := StrongSimulation(labeledData(80, 240, 1), randomQuery(3, 41), cfg)
			if err != nil {
				return nil, nil, err
			}
			return struct {
				Centers []bool
				Dual    []uint64
			}{res.Centers, res.Dual}, res.Stats, nil
		}},
		{name: "betweenness-shared", run: func(cfg Config) (any, *bsp.Stats, error) {
			res, err := BetweennessShared(graph.Grid(8, 8), []VertexID{0, 7, 21, 42, 63}, cfg)
			if err != nil {
				return nil, nil, err
			}
			return res.BC, res.Stats, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			clean, cleanStats, err := tc.run(Config{Workers: 3, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if cleanStats.Recovery.Faulted() {
				t.Fatalf("clean run reported faults: %+v", cleanStats.Recovery)
			}
			crashAt := tc.crashAt
			if crashAt == 0 {
				crashAt = 3
			}
			got, stats, err := tc.run(Config{Workers: 3, Seed: 5,
				CheckpointEvery: 2, Faults: rt.PlanOf(rt.Crash(crashAt))})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, clean) {
				t.Fatalf("recovered run diverged from clean run\nclean: %+v\ngot:   %+v", clean, got)
			}
			rec := stats.Recovery
			if rec.Rollbacks == 0 || rec.RedoneSupersteps == 0 || rec.CheckpointsSaved == 0 {
				t.Fatalf("crash did not exercise recovery: %+v", rec)
			}
		})
	}
}
