package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// MatchingResult holds a matching as mutual pointers (NoVertex =
// unmatched) plus its total weight.
type MatchingResult struct {
	Match  []VertexID
	Weight float64
	Stats  *bsp.Stats
}

// --- Maximum weight matching (Table 1 row 13) ---
//
// The vertex-centric Preis-style algorithm of Salihoglu & Widom: in
// each round every free vertex points at its locally heaviest incident
// edge; mutually pointing pairs match (locally dominant edges), matched
// vertices announce themselves, and neighbors drop them. K rounds of
// O(m) work; the sequential comparator runs in O(m).

const (
	mwmPropose = iota
	mwmMatch
	mwmClean
)

const (
	mwmMsgProp int8 = iota
	mwmMsgMatched
)

type mwmMsg struct {
	Kind int8
	From VertexID
}

type mwmValue struct {
	match  VertexID
	target VertexID // current round's locally heaviest neighbor
	w      float64  // weight of the matched edge
}

type mwmProgram struct {
	phase int
}

func (p *mwmProgram) Init(g *graph.Graph, id VertexID) mwmValue {
	return mwmValue{match: graph.NoVertex, target: graph.NoVertex}
}

func (p *mwmProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	if mc.Superstep() > 0 {
		switch p.phase {
		case mwmPropose:
			p.phase = mwmMatch
		case mwmMatch:
			p.phase = mwmClean
		case mwmClean:
			if live, _ := mc.Agg("live").(int64); live == 0 {
				mc.Halt()
				return
			}
			p.phase = mwmPropose
		}
	}
	mc.SetGlobal("phase", p.phase)
}

func (p *mwmProgram) Compute(ctx *pregel.Context[mwmValue, mwmMsg], msgs []mwmMsg) {
	v := ctx.Value()
	switch ctx.Global("phase").(int) {
	case mwmPropose:
		if v.match != graph.NoVertex {
			return
		}
		adj := ctx.OutEdges()
		ctx.Charge(int64(len(adj)))
		v.target = graph.NoVertex
		var bw float64
		for _, e := range adj {
			if v.target == graph.NoVertex || e.W > bw || (e.W == bw && e.Dst < v.target) {
				v.target, bw = e.Dst, e.W
			}
		}
		if v.target != graph.NoVertex {
			v.w = bw
			ctx.SendTo(v.target, mwmMsg{Kind: mwmMsgProp, From: ctx.ID()})
		}
	case mwmMatch:
		if v.match != graph.NoVertex {
			return
		}
		for _, m := range msgs {
			if m.Kind == mwmMsgProp && m.From == v.target {
				v.match = v.target
				ctx.SendToNeighbors(mwmMsg{Kind: mwmMsgMatched, From: ctx.ID()})
				break
			}
		}
	case mwmClean:
		if len(msgs) > 0 {
			gone := make(map[VertexID]bool, len(msgs))
			for _, m := range msgs {
				if m.Kind == mwmMsgMatched {
					gone[m.From] = true
				}
			}
			adj := ctx.OutEdges()
			kept := make([]graph.Edge, 0, len(adj))
			for _, e := range adj {
				if !gone[e.Dst] {
					kept = append(kept, e)
				}
			}
			ctx.Charge(int64(len(adj)))
			ctx.SetOutEdges(kept)
		}
		if v.match == graph.NoVertex && len(ctx.OutEdges()) > 0 {
			ctx.Aggregate("live", int64(1))
		}
	}
}

func (p *mwmProgram) StateUnits(v *mwmValue) int64 { return 3 }

// MaxWeightMatching computes a 1/2-approximate maximum weight matching
// by repeated locally-heaviest-edge selection. With distinct weights
// the result equals the sequential greedy-by-weight matching.
func MaxWeightMatching(g *graph.Graph, cfg Config) (*MatchingResult, error) {
	prog := &mwmProgram{}
	eng := pregel.NewEngine[mwmValue, mwmMsg](g, prog, engineCfg[mwmMsg](cfg))
	eng.RegisterAggregator("live", pregel.SumInt64())
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &MatchingResult{Match: make([]VertexID, g.N()), Stats: res.Stats}
	for v, val := range res.Values {
		out.Match[v] = val.match
		if val.match != graph.NoVertex && VertexID(v) < val.match {
			out.Weight += val.w
		}
	}
	return out, nil
}

// --- Bipartite maximal matching (Table 1 row 14) ---
//
// The four-phase randomized algorithm from the Pregel paper: free left
// vertices request, free right vertices grant one request, left
// vertices accept one grant, right vertices confirm. O(log n) expected
// rounds with random grants; BPPA (per the paper) but asymptotically
// more work than the sequential greedy scan.

const (
	bpmRequest = iota
	bpmGrant
	bpmAccept
	bpmConfirm
)

const (
	bpmMsgReq int8 = iota
	bpmMsgGrant
	bpmMsgBusy
	bpmMsgAccept
)

type bpmMsg struct {
	Kind int8
	From VertexID
}

type bpmValue struct {
	match      VertexID
	candidates []VertexID // left side: right neighbors not known matched
}

type bpmProgram struct {
	nl    int
	phase int
}

func (p *bpmProgram) Init(g *graph.Graph, id VertexID) bpmValue {
	v := bpmValue{match: graph.NoVertex}
	if int(id) < p.nl {
		v.candidates = g.Neighbors(id)
	}
	return v
}

func (p *bpmProgram) left(id VertexID) bool { return int(id) < p.nl }

func (p *bpmProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	if mc.Superstep() > 0 {
		switch p.phase {
		case bpmRequest:
			if reqs, _ := mc.Agg("requests").(int64); reqs == 0 {
				mc.Halt()
				return
			}
			p.phase = bpmGrant
		case bpmGrant:
			p.phase = bpmAccept
		case bpmAccept:
			p.phase = bpmConfirm
		case bpmConfirm:
			p.phase = bpmRequest
		}
	}
	mc.SetGlobal("phase", p.phase)
}

func (p *bpmProgram) Compute(ctx *pregel.Context[bpmValue, bpmMsg], msgs []bpmMsg) {
	v := ctx.Value()
	switch ctx.Global("phase").(int) {
	case bpmRequest:
		if !p.left(ctx.ID()) || v.match != graph.NoVertex {
			return
		}
		for _, u := range v.candidates {
			ctx.SendTo(u, bpmMsg{Kind: bpmMsgReq, From: ctx.ID()})
		}
		if len(v.candidates) > 0 {
			ctx.Aggregate("requests", int64(len(v.candidates)))
		}
	case bpmGrant:
		if p.left(ctx.ID()) {
			return
		}
		var requesters []VertexID
		for _, m := range msgs {
			if m.Kind == bpmMsgReq {
				requesters = append(requesters, m.From)
			}
		}
		if len(requesters) == 0 {
			return
		}
		if v.match != graph.NoVertex {
			for _, r := range requesters {
				ctx.SendTo(r, bpmMsg{Kind: bpmMsgBusy, From: ctx.ID()})
			}
			return
		}
		chosen := requesters[ctx.Rand().Intn(len(requesters))]
		ctx.SendTo(chosen, bpmMsg{Kind: bpmMsgGrant, From: ctx.ID()})
	case bpmAccept:
		if !p.left(ctx.ID()) {
			return
		}
		busy := make(map[VertexID]bool)
		var grants []VertexID
		for _, m := range msgs {
			switch m.Kind {
			case bpmMsgBusy:
				busy[m.From] = true
			case bpmMsgGrant:
				grants = append(grants, m.From)
			}
		}
		if len(busy) > 0 {
			kept := v.candidates[:0]
			for _, u := range v.candidates {
				if !busy[u] {
					kept = append(kept, u)
				}
			}
			v.candidates = kept
		}
		if len(grants) > 0 && v.match == graph.NoVertex {
			chosen := grants[ctx.Rand().Intn(len(grants))]
			v.match = chosen
			ctx.SendTo(chosen, bpmMsg{Kind: bpmMsgAccept, From: ctx.ID()})
		}
	case bpmConfirm:
		if p.left(ctx.ID()) {
			return
		}
		for _, m := range msgs {
			if m.Kind == bpmMsgAccept {
				v.match = m.From
			}
		}
	}
}

func (p *bpmProgram) StateUnits(v *bpmValue) int64 { return int64(1 + len(v.candidates)) }

// BipartiteMatching computes a maximal matching of a bipartite graph
// whose left side is the ID range [0, nl).
func BipartiteMatching(g *graph.Graph, nl int, cfg Config) (*MatchingResult, error) {
	if !g.IsBipartition(nl) {
		return nil, errNotBipartite
	}
	prog := &bpmProgram{nl: nl}
	eng := pregel.NewEngine[bpmValue, bpmMsg](g, prog, engineCfg[bpmMsg](cfg))
	eng.RegisterAggregator("requests", pregel.SumInt64())
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &MatchingResult{Match: make([]VertexID, g.N()), Stats: res.Stats}
	for v, val := range res.Values {
		out.Match[v] = val.match
		if val.match != graph.NoVertex && VertexID(v) < val.match {
			out.Weight++
		}
	}
	return out, nil
}
