package vc

import (
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Packed-state k-core (Config.PackedState): the dense program's
// per-vertex nbrEst map — the dominant memory term, ~50 bytes per
// directed edge — becomes a single bit-packed edge-slot store: entry
// offs[v]+i holds the last estimate received from v's i-th
// out-neighbor, at ⌈log₂(Δ+1)⌉ bits. The coreness bounds themselves
// live in a second packed store. The message flow (superstep-0
// optimistic init + broadcast, then h-index recomputation on receipt)
// is exactly the dense program's, so runs are byte-identical — but the
// slot store indexes estimates by adjacency position where the dense
// map keys them by neighbor ID, so the two agree only on simple
// graphs (the map dedupes parallel edges; the adjacency does not).

type kcorePackedValue struct {
	// deg mirrors the dense program's len(nbrEst) so StateUnits — and
	// with it the state-balance metric — stays identical.
	deg int32
}

type kcorePackedProgram struct {
	est         StateStore // coreness bound per vertex, domain Δ+1
	slots       StateStore // per-out-edge-slot neighbor estimate, domain Δ+1
	offs        []int64    // per-vertex base index into slots
	pristineEst StateStore // Init-time est for checkpoint-free restarts
}

func newKCorePackedProgram(g *graph.Graph) *kcorePackedProgram {
	n := g.N()
	offs := make([]int64, n+1)
	maxDeg := 0
	for v := 0; v < n; v++ {
		d := g.Degree(VertexID(v))
		offs[v+1] = offs[v] + int64(d)
		if d > maxDeg {
			maxDeg = d
		}
	}
	domain := uint64(maxDeg) + 1
	p := &kcorePackedProgram{
		est:   NewPackedInts(n, domain),
		slots: NewPackedInts(int(offs[n]), domain),
		offs:  offs,
	}
	for v := 0; v < n; v++ {
		p.est.Set(v, uint64(g.Degree(VertexID(v))))
	}
	p.pristineEst = p.est.Clone()
	return p
}

func (p *kcorePackedProgram) Init(g *graph.Graph, id VertexID) kcorePackedValue {
	return kcorePackedValue{deg: int32(g.Degree(id))}
}

// slotIndex returns the adjacency position of neighbor `from` in v's
// out-edges (−1 when absent, e.g. a stray redelivery).
func slotIndex(ctx *pregel.Context[kcorePackedValue, kcoreMsg], from VertexID) int {
	idx, i := -1, 0
	ctx.ForEachOut(func(dst VertexID, _ float64) {
		if idx < 0 && dst == from {
			idx = i
		}
		i++
	})
	return idx
}

// hIndexSlots is hIndex over the slot range [base, base+deg).
func (p *kcorePackedProgram) hIndexSlots(own int32, base int64, deg int32) int32 {
	counts := make([]int32, own+1)
	for i := int64(0); i < int64(deg); i++ {
		e := int32(p.slots.Get(int(base + i)))
		if e > own {
			e = own
		}
		if e > 0 {
			counts[e]++
		}
	}
	var cum int32
	for k := own; k >= 1; k-- {
		cum += counts[k]
		if cum >= k {
			return k
		}
	}
	return 0
}

func (p *kcorePackedProgram) Compute(ctx *pregel.Context[kcorePackedValue, kcoreMsg], msgs []kcoreMsg) {
	id := ctx.ID()
	base := p.offs[id]
	if ctx.Superstep() == 0 {
		// Until a neighbor reports, assume the most optimistic bound.
		deg := uint64(ctx.Degree())
		i := base
		ctx.ForEachOut(func(dst VertexID, _ float64) {
			p.slots.Set(int(i), deg)
			i++
		})
		ctx.SendToNeighbors(kcoreMsg{From: id, Est: int32(p.est.Get(int(id)))})
		return // everyone re-evaluates at superstep 1
	}
	for _, m := range msgs {
		if idx := slotIndex(ctx, m.From); idx >= 0 {
			p.slots.Set(int(base+int64(idx)), uint64(m.Est))
		}
	}
	deg := ctx.Value().deg
	ctx.Charge(int64(deg))
	own := int32(p.est.Get(int(id)))
	if newEst := p.hIndexSlots(own, base, deg); newEst < own {
		p.est.Set(int(id), uint64(newEst))
		ctx.SendToNeighbors(kcoreMsg{From: id, Est: newEst})
	}
	ctx.VoteToHalt()
}

func (p *kcorePackedProgram) StateUnits(v *kcorePackedValue) int64 { return int64(1 + v.deg) }

// kcorePackedSnap is one checkpoint generation of the program-private
// stores.
type kcorePackedSnap struct {
	est   StateStore
	slots StateStore
}

// Snapshot/Restore implement pregel.Snapshotter (the dense program
// carries its state in the value array and rides the engine's
// CloneValue path instead). Restore(nil) resets to the Init-time
// bounds; the slot store needs no reset because the superstep-0
// restart rewrites every slot.
func (p *kcorePackedProgram) Snapshot() any {
	return kcorePackedSnap{est: p.est.Clone(), slots: p.slots.Clone()}
}

func (p *kcorePackedProgram) Restore(s any) {
	if s == nil {
		p.est.CopyFrom(p.pristineEst)
		return
	}
	snap := s.(kcorePackedSnap)
	p.est.CopyFrom(snap.est)
	p.slots.CopyFrom(snap.slots)
}
