package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Double-sweep diameter estimation: the linear-time alternative the
// exact algorithm of row 1 is benchmarked against in practice (and the
// spirit of the Roditty–Williams approximation the paper cites as the
// sequential comparator). Two BFS waves — from a start vertex, then
// from the farthest vertex found — yield a lower bound on the diameter
// that is exact on trees and usually tight on real graphs, in O(δ)
// supersteps and O(m) work per sweep instead of O(mn) total.

// DoubleSweepResult holds the diameter lower bound and the endpoints
// of the witnessing path.
type DoubleSweepResult struct {
	LowerBound int32
	From, To   VertexID
	Stats      *bsp.Stats
}

type dsValue struct{ dist int32 }

type dsProgram struct{ src VertexID }

func (p *dsProgram) Init(g *graph.Graph, id VertexID) dsValue {
	if id == p.src {
		return dsValue{dist: 0}
	}
	return dsValue{dist: -1}
}

func (p *dsProgram) Compute(ctx *pregel.Context[dsValue, int32], msgs []int32) {
	v := ctx.Value()
	if ctx.Superstep() == 0 {
		if ctx.ID() == p.src {
			ctx.SendToNeighbors(1)
		}
		ctx.VoteToHalt()
		return
	}
	if v.dist == -1 && len(msgs) > 0 {
		v.dist = msgs[0]
		ctx.SendToNeighbors(v.dist + 1)
	}
	ctx.VoteToHalt()
}

func (p *dsProgram) StateUnits(v *dsValue) int64 { return 1 }

// bfsWave runs one BFS sweep and returns distances plus the farthest
// reached vertex (ties to the smallest ID).
func bfsWave(g *graph.Graph, src VertexID, cfg Config) ([]int32, VertexID, *bsp.Stats, error) {
	prog := &dsProgram{src: src}
	ecfg := engineCfg[int32](cfg)
	ecfg.Combiner = func(a, b int32) int32 {
		if a < b {
			return a
		}
		return b
	}
	eng := pregel.NewEngine[dsValue, int32](g, prog, ecfg)
	res, err := eng.Run()
	if err != nil {
		return nil, graph.NoVertex, nil, err
	}
	dist := make([]int32, g.N())
	far := src
	for v, val := range res.Values {
		dist[v] = val.dist
		if val.dist > dist[far] || (val.dist == dist[far] && VertexID(v) < far) {
			far = VertexID(v)
		}
	}
	return dist, far, res.Stats, nil
}

// DoubleSweepDiameter estimates the diameter with two BFS sweeps from
// start (default: vertex 0 when start is NoVertex).
func DoubleSweepDiameter(g *graph.Graph, start VertexID, cfg Config) (*DoubleSweepResult, error) {
	if g.N() == 0 {
		return &DoubleSweepResult{From: graph.NoVertex, To: graph.NoVertex, Stats: &bsp.Stats{}}, nil
	}
	if start == graph.NoVertex {
		start = 0
	}
	_, a, st1, err := bfsWave(g, start, cfg)
	if err != nil {
		return nil, err
	}
	dist, b, st2, err := bfsWave(g, a, cfg)
	if err != nil {
		return nil, err
	}
	return &DoubleSweepResult{
		LowerBound: dist[b],
		From:       a,
		To:         b,
		Stats:      MergeStats(st1, st2),
	}, nil
}
