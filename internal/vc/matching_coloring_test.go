package vc

import (
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
)

// --- Coloring ---

func checkColoring(t *testing.T, g *graph.Graph, res *ColoringResult) {
	t.Helper()
	if !seq.IsProperColoring(g, res.Colors) {
		t.Fatal("not a proper coloring")
	}
	// Per-phase MIS property: every vertex colored c' must, for each
	// color c < c', have a neighbor colored c (else the phase-c MIS was
	// not maximal over the then-uncolored vertices).
	for v := range g.Out {
		for c := 0; c < res.Colors[v]; c++ {
			found := false
			for _, e := range g.Out[v] {
				if res.Colors[e.Dst] == c {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("vertex %d (color %d) has no neighbor with color %d: phase-%d set was not maximal",
					v, res.Colors[v], c, c)
			}
		}
	}
}

func TestColoringMIS(t *testing.T) {
	cases := map[string]*graph.Graph{
		"random":   graph.Random(200, 600, 3),
		"path":     graph.Path(100),
		"complete": graph.Complete(15),
		"star":     graph.Star(30),
		"cycle":    graph.Cycle(31),
		"isolated": graph.New(12, false),
		"grid":     graph.Grid(9, 9),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			res, err := ColoringMIS(g, Config{Workers: 4, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			checkColoring(t, g, res)
		})
	}
}

func TestColoringCompleteGraphUsesNColors(t *testing.T) {
	res, err := ColoringMIS(graph.Complete(12), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 12 {
		t.Fatalf("K = %d, want 12 on K_12 (the paper's worst case K = O(n))", res.K)
	}
}

func TestColoringDeterministicAcrossWorkers(t *testing.T) {
	g := graph.Random(150, 400, 7)
	a, err := ColoringMIS(g, Config{Workers: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ColoringMIS(g, Config{Workers: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatalf("vertex %d colored %d vs %d depending on workers", v, a.Colors[v], b.Colors[v])
		}
	}
}

func TestColoringQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(60, 150, seed)
		res, err := ColoringMIS(g, Config{Workers: 2, Seed: seed})
		if err != nil {
			return false
		}
		return seq.IsProperColoring(g, res.Colors)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- Maximum weight matching ---

func TestMaxWeightMatchingEqualsGreedyDistinctWeights(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := graph.Random(150, 500, seed)
		graph.RandomWeights(g, seed+40)
		res, err := MaxWeightMatching(g, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		var ops seq.Ops
		want, wantW := seq.GreedyMaxWeightMatching(g, &ops)
		if !almostEqual(res.Weight, wantW, 1e-12) {
			t.Fatalf("seed %d: weight %v, want %v", seed, res.Weight, wantW)
		}
		for v := range want {
			if res.Match[v] != want[v] {
				t.Fatalf("seed %d vertex %d: vc=%d greedy=%d", seed, v, res.Match[v], want[v])
			}
		}
	}
}

func TestMaxWeightMatchingMaximal(t *testing.T) {
	g := graph.Random(120, 300, 8)
	graph.RandomWeights(g, 13)
	res, err := MaxWeightMatching(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.IsMaximalMatching(g, res.Match) {
		t.Fatal("matching not maximal")
	}
}

func TestMaxWeightMatchingHalfApprox(t *testing.T) {
	// Against the PGA baseline both are 1/2-approximations; the greedy
	// one (== VC result) is never worse than half of twice PGA... just
	// sanity-check both are valid and within 2x of each other.
	g := graph.Random(100, 400, 4)
	graph.RandomWeights(g, 91)
	res, err := MaxWeightMatching(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var ops seq.Ops
	_, pgaW := seq.MaxWeightMatchingPGA(g, &ops)
	if res.Weight*2 < pgaW || pgaW*2 < res.Weight {
		t.Fatalf("weights implausibly far apart: vc=%v pga=%v", res.Weight, pgaW)
	}
}

func TestMaxWeightMatchingEmptyAndTiny(t *testing.T) {
	res, err := MaxWeightMatching(graph.New(3, false), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Match {
		if m != graph.NoVertex {
			t.Fatal("match on empty graph")
		}
	}
	g := graph.Path(2)
	res, err = MaxWeightMatching(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Match[0] != 1 || res.Match[1] != 0 {
		t.Fatalf("P2 match = %v", res.Match)
	}
}

func TestMaxWeightMatchingQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(50, 120, seed)
		graph.RandomWeights(g, seed+7)
		res, err := MaxWeightMatching(g, Config{Workers: 3})
		if err != nil {
			return false
		}
		var ops seq.Ops
		_, wantW := seq.GreedyMaxWeightMatching(g, &ops)
		return almostEqual(res.Weight, wantW, 1e-9) && seq.IsMaximalMatching(g, res.Match)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- Bipartite matching ---

func TestBipartiteMatchingMaximal(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		g := graph.RandomBipartite(80, 70, 400, seed)
		res, err := BipartiteMatching(g, 80, Config{Workers: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !seq.IsMaximalMatching(g, res.Match) {
			t.Fatalf("seed %d: not a maximal matching", seed)
		}
		// Matches must respect sides.
		for v, m := range res.Match {
			if m != graph.NoVertex && (v < 80) == (int(m) < 80) {
				t.Fatalf("match (%d,%d) within one side", v, m)
			}
		}
	}
}

func TestBipartiteMatchingPerfectOnCompleteBipartite(t *testing.T) {
	g := graph.RandomBipartite(20, 20, 400, 1) // complete K_{20,20}
	res, err := BipartiteMatching(g, 20, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range res.Match {
		if m == graph.NoVertex {
			t.Fatalf("vertex %d unmatched in complete bipartite graph", v)
		}
	}
}

func TestBipartiteMatchingRejectsNonBipartite(t *testing.T) {
	if _, err := BipartiteMatching(graph.Cycle(5), 2, Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestBipartiteMatchingSizeComparableToGreedy(t *testing.T) {
	g := graph.RandomBipartite(100, 100, 500, 9)
	res, err := BipartiteMatching(g, 100, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var ops seq.Ops
	greedy := seq.GreedyBipartiteMatching(g, 100, &ops)
	gSize := 0
	vSize := 0
	for v := 0; v < 100; v++ {
		if greedy[v] != graph.NoVertex {
			gSize++
		}
		if res.Match[v] != graph.NoVertex {
			vSize++
		}
	}
	// Two maximal matchings are within a factor 2 of each other.
	if 2*vSize < gSize || 2*gSize < vSize {
		t.Fatalf("sizes implausible: vc=%d greedy=%d", vSize, gSize)
	}
}
