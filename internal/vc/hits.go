package vc

import (
	"math"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// HITS (hubs and authorities, Kleinberg): the other classic
// eigenvector ranking next to PageRank, and a natural demonstration of
// Pregel aggregators — each half-iteration needs the global L2 norm of
// the scores, which the master computes from a sum aggregator and
// publishes as a global. One HITS iteration spans four supersteps:
//
//	0: hubs send their score along out-edges (authority gathering)
//	1: authorities sum, aggregate the squared norm
//	2: authorities send normalized scores along in-edges (hub gathering)
//	3: hubs sum, aggregate the squared norm
//
// K iterations on a directed graph.

// HITSResult holds the hub and authority scores (L2-normalized).
type HITSResult struct {
	Hub, Auth []float64
	Stats     *bsp.Stats
}

type hitsValue struct {
	hub, auth float64
}

type hitsProgram struct {
	k int
	// master state
	norm float64
}

func (p *hitsProgram) Init(g *graph.Graph, id VertexID) hitsValue {
	return hitsValue{hub: 1, auth: 1}
}

func (p *hitsProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	phase := mc.Superstep() % 4
	if phase == 2 || phase == 0 {
		if sq, ok := mc.Agg("norm").(float64); ok && sq > 0 {
			p.norm = math.Sqrt(sq)
		} else {
			p.norm = 1
		}
	}
	mc.SetGlobal("norm", p.norm)
	if mc.Superstep() >= 4*p.k {
		mc.Halt()
	}
}

func (p *hitsProgram) Compute(ctx *pregel.Context[hitsValue, float64], msgs []float64) {
	v := ctx.Value()
	switch ctx.Superstep() % 4 {
	case 0:
		// Normalize hubs from the previous iteration's norm, then push
		// hub scores to out-neighbors.
		if n := ctx.Global("norm").(float64); n > 0 {
			v.hub /= n
		}
		for _, e := range ctx.OutEdges() {
			ctx.SendTo(e.Dst, v.hub)
		}
	case 1:
		v.auth = 0
		for _, m := range msgs {
			v.auth += m
		}
		ctx.Aggregate("norm", v.auth*v.auth)
	case 2:
		if n := ctx.Global("norm").(float64); n > 0 {
			v.auth /= n
		}
		for _, e := range ctx.InEdges() {
			ctx.SendTo(e.Dst, v.auth)
		}
	case 3:
		v.hub = 0
		for _, m := range msgs {
			v.hub += m
		}
		ctx.Aggregate("norm", v.hub*v.hub)
	}
}

func (p *hitsProgram) StateUnits(v *hitsValue) int64 { return 2 }

// HITS runs k iterations of hub/authority scoring on a directed graph.
func HITS(g *graph.Graph, k int, cfg Config) (*HITSResult, error) {
	if !g.Directed {
		return nil, errNotDirected
	}
	g.EnsureIn()
	prog := &hitsProgram{k: k}
	ecfg := engineCfg[float64](cfg)
	if ecfg.MaxSupersteps == 0 {
		ecfg.MaxSupersteps = 4*k + 8
	}
	eng := pregel.NewEngine[hitsValue, float64](g, prog, ecfg)
	eng.RegisterAggregator("norm", pregel.SumFloat64())
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &HITSResult{
		Hub:   make([]float64, g.N()),
		Auth:  make([]float64, g.N()),
		Stats: res.Stats,
	}
	// Final normalization to unit L2 for both vectors.
	var hs, as float64
	for _, val := range res.Values {
		hs += val.hub * val.hub
		as += val.auth * val.auth
	}
	hn, an := math.Sqrt(hs), math.Sqrt(as)
	if hn == 0 {
		hn = 1
	}
	if an == 0 {
		an = 1
	}
	for v, val := range res.Values {
		out.Hub[v] = val.hub / hn
		out.Auth[v] = val.auth / an
	}
	return out, nil
}
