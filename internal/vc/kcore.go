package vc

import (
	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// k-core decomposition, the distributed algorithm of Montresor et al.:
// every vertex maintains a coreness upper bound, initially its degree,
// and repeatedly lowers it to the largest k such that at least k
// neighbors still claim a bound ≥ k (a local h-index over the
// neighbors' estimates). The estimates decrease monotonically and
// converge to the exact coreness. A natural fit for the vertex-centric
// model — included as an extension beyond Table 1 to round out the
// workload set the paper's §3.8 discusses.

// KCoreResult holds the coreness of every vertex and the degeneracy
// (maximum coreness).
type KCoreResult struct {
	Core       []int32
	Degeneracy int32
	Stats      *bsp.Stats
}

type kcoreMsg struct {
	From VertexID
	Est  int32
}

type kcoreValue struct {
	est    int32
	nbrEst map[VertexID]int32
}

type kcoreProgram struct{}

func (kcoreProgram) Init(g *graph.Graph, id VertexID) kcoreValue {
	return kcoreValue{est: int32(g.Degree(id))}
}

// hIndex returns the largest k such that at least k of the capped
// neighbor estimates are ≥ k.
func hIndex(own int32, ests map[VertexID]int32) int32 {
	counts := make([]int32, own+1)
	for _, e := range ests {
		if e > own {
			e = own
		}
		if e > 0 {
			counts[e]++
		}
	}
	var cum int32
	for k := own; k >= 1; k-- {
		cum += counts[k]
		if cum >= k {
			return k
		}
	}
	return 0
}

func (kcoreProgram) Compute(ctx *pregel.Context[kcoreValue, kcoreMsg], msgs []kcoreMsg) {
	v := ctx.Value()
	if ctx.Superstep() == 0 {
		v.nbrEst = make(map[VertexID]int32, ctx.OutDegree())
		// Until a neighbor reports, assume the most optimistic bound.
		deg := int32(ctx.Degree())
		ctx.ForEachOut(func(dst VertexID, _ float64) {
			v.nbrEst[dst] = deg
		})
		ctx.SendToNeighbors(kcoreMsg{From: ctx.ID(), Est: v.est})
		return // everyone re-evaluates at superstep 1
	}
	for _, m := range msgs {
		v.nbrEst[m.From] = m.Est
	}
	ctx.Charge(int64(len(v.nbrEst)))
	if newEst := hIndex(v.est, v.nbrEst); newEst < v.est {
		v.est = newEst
		ctx.SendToNeighbors(kcoreMsg{From: ctx.ID(), Est: v.est})
	}
	ctx.VoteToHalt()
}

func (kcoreProgram) StateUnits(v *kcoreValue) int64 { return int64(1 + len(v.nbrEst)) }

// KCore computes the coreness of every vertex of an undirected graph.
func KCore(g *graph.Graph, cfg Config) (*KCoreResult, error) {
	return PrepareKCore(g, cfg)()
}

// PrepareKCore is the job-scoped form of KCore: the engine is
// constructed (and the snapshot pinned) now, under whatever lock the
// caller holds; the returned closure runs lock-free.
func PrepareKCore(g *graph.Graph, cfg Config) func() (*KCoreResult, error) {
	if cfg.PackedState {
		prog := newKCorePackedProgram(g)
		eng := pregel.NewEngine[kcorePackedValue, kcoreMsg](g, prog, engineCfg[kcoreMsg](cfg))
		return func() (*KCoreResult, error) {
			res, err := eng.Run()
			if err != nil {
				return nil, err
			}
			out := &KCoreResult{Core: make([]int32, g.N()), Stats: res.Stats}
			for v := range res.Values {
				est := int32(prog.est.Get(v))
				out.Core[v] = est
				if est > out.Degeneracy {
					out.Degeneracy = est
				}
			}
			return out, nil
		}
	}
	eng := pregel.NewEngine[kcoreValue, kcoreMsg](g, kcoreProgram{}, engineCfg[kcoreMsg](cfg))
	return func() (*KCoreResult, error) {
		res, err := eng.Run()
		if err != nil {
			return nil, err
		}
		out := &KCoreResult{Core: make([]int32, g.N()), Stats: res.Stats}
		for v, val := range res.Values {
			out.Core[v] = val.est
			if val.est > out.Degeneracy {
				out.Degeneracy = val.est
			}
		}
		return out, nil
	}
}
