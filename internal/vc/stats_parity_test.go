package vc

import (
	"errors"
	"fmt"
	"testing"

	"vcgraph/internal/async"
	"vcgraph/internal/blockcentric"
	"vcgraph/internal/bsp"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	"vcgraph/internal/runtime"
)

// Cross-engine stats parity: all four engines now price supersteps
// through the shared runtime.Driver, so where the models guarantee
// identical schedules the measured per-superstep accounting must agree
// — across engines for fixed-iteration PageRank, and across worker
// counts within one engine for SSSP.

func parityGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.PreferentialAttachment(600, 3, 7)
	graph.RandomWeights(g, 13)
	return g
}

// perStep extracts one schedule-invariant number per superstep.
func perStep(st *bsp.Stats, f func(bsp.SuperstepStats) int64) []int64 {
	out := make([]int64, len(st.Supersteps))
	for i, ss := range st.Supersteps {
		out[i] = f(ss)
	}
	return out
}

func sumOf(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// TestStatsParityPageRank runs fixed-K PageRank through the two
// synchronous message-passing engines at several worker counts. The
// schedule is fully determined by K: every vertex computes in every one
// of the K+1 supersteps and sends one share per out-edge in the first K,
// regardless of engine or partitioning. Supersteps, per-step active
// vertices, and per-step message totals must agree exactly.
func TestStatsParityPageRank(t *testing.T) {
	g := parityGraph(t)
	n := int64(g.N())
	const k = 8

	runs := map[string]*bsp.Stats{}
	for _, w := range []int{1, 4} {
		// Pin push: under auto, pregel's dense PageRank supersteps pull
		// and stop materializing broadcasts, so the wire-level Sent
		// totals this parity check compares against blockcentric would
		// (correctly) drop to the boundary-only count.
		res, err := PageRank(g, 0.85, k, Config{Workers: w, Mode: runtime.DirectionPush})
		if err != nil {
			t.Fatalf("pregel workers=%d: %v", w, err)
		}
		runs[fmt.Sprintf("pregel/w%d", w)] = res.Stats
	}
	for _, b := range []int{2, 4} {
		// Pin push here too: under auto, blocks whose traffic is mostly
		// intra-block reroute it around the wire, and Sent would
		// (correctly) drop to the boundary-only count.
		res, err := blockcentric.PageRank(g, 0.85, k, blockcentric.Config{Blocks: b, Mode: runtime.DirectionPush})
		if err != nil {
			t.Fatalf("blockcentric blocks=%d: %v", b, err)
		}
		runs[fmt.Sprintf("blockcentric/b%d", b)] = res.Stats
	}

	var refSent []int64
	for name, st := range runs {
		if got := st.NumSupersteps(); got != k+1 {
			t.Fatalf("%s: supersteps = %d, want %d", name, got, k+1)
		}
		for i, ss := range st.Supersteps {
			if ss.ActiveVertices() != n {
				t.Errorf("%s: superstep %d active = %d, want %d", name, i, ss.ActiveVertices(), n)
			}
		}
		sent := perStep(st, func(ss bsp.SuperstepStats) int64 { return sumOf(ss.Sent) })
		if refSent == nil {
			refSent = sent
			continue
		}
		for i := range sent {
			if sent[i] != refSent[i] {
				t.Errorf("%s: superstep %d total sent = %d, want %d", name, i, sent[i], refSent[i])
			}
		}
	}
}

// TestStatsParitySSSP checks that within one synchronous engine the
// per-superstep totals are invariant under the worker count: the
// frontier each superstep is a property of the graph, not the
// partitioning, so superstep count, per-step active vertices, per-step
// message totals, and per-step work totals must all match between 1 and
// 4 workers.
func TestStatsParitySSSP(t *testing.T) {
	g := parityGraph(t)

	check := func(t *testing.T, name string, a, b *bsp.Stats) {
		t.Helper()
		if a.NumSupersteps() != b.NumSupersteps() {
			t.Fatalf("%s: supersteps %d vs %d", name, a.NumSupersteps(), b.NumSupersteps())
		}
		for _, dim := range []struct {
			what string
			f    func(bsp.SuperstepStats) int64
		}{
			{"active", func(ss bsp.SuperstepStats) int64 { return ss.ActiveVertices() }},
			{"sent", func(ss bsp.SuperstepStats) int64 { return sumOf(ss.Sent) }},
			{"work", func(ss bsp.SuperstepStats) int64 { return sumOf(ss.Work) }},
		} {
			pa, pb := perStep(a, dim.f), perStep(b, dim.f)
			for i := range pa {
				if pa[i] != pb[i] {
					t.Errorf("%s: superstep %d total %s = %d vs %d", name, i, dim.what, pa[i], pb[i])
				}
			}
		}
	}

	p1, err := SSSP(g, 0, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p4, err := SSSP(g, 0, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	check(t, "pregel w1 vs w4", p1.Stats, p4.Stats)

	_, g1, err := gas.SSSP(g, 0, gas.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, g4, err := gas.SSSP(g, 0, gas.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	check(t, "gas w1 vs w4", g1.Stats, g4.Stats)
}

// TestStatsParityPartitioners checks that partitioning is
// results-invisible: for every partitioner in {hash, range,
// degree-balanced} and several worker counts, a synchronous engine must
// produce identical verdicts (output values), identical superstep
// counts, and identical per-superstep active/sent/work totals — the
// schedule is a property of the graph and algorithm, not of vertex
// placement. Only the per-worker balance (MaxWork) may differ, which is
// the whole point of choosing a partitioner.
func TestStatsParityPartitioners(t *testing.T) {
	g := parityGraph(t)

	parts := []struct {
		name string
		p    pregel.Partitioner
	}{
		{"hash", pregel.PartitionHash},
		{"range", pregel.PartitionRange},
		{"degree", pregel.PartitionDegreeBalanced},
	}

	checkTotals := func(t *testing.T, name string, ref, got *bsp.Stats) {
		t.Helper()
		if ref.NumSupersteps() != got.NumSupersteps() {
			t.Fatalf("%s: supersteps %d, want %d", name, got.NumSupersteps(), ref.NumSupersteps())
		}
		for _, dim := range []struct {
			what string
			f    func(bsp.SuperstepStats) int64
		}{
			{"active", func(ss bsp.SuperstepStats) int64 { return ss.ActiveVertices() }},
			{"sent", func(ss bsp.SuperstepStats) int64 { return sumOf(ss.Sent) }},
			{"work", func(ss bsp.SuperstepStats) int64 { return sumOf(ss.Work) }},
		} {
			pr, pg := perStep(ref, dim.f), perStep(got, dim.f)
			for i := range pr {
				if pg[i] != pr[i] {
					t.Errorf("%s: superstep %d total %s = %d, want %d", name, i, dim.what, pg[i], pr[i])
				}
			}
		}
	}

	t.Run("pregel/sssp", func(t *testing.T) {
		ref, err := SSSP(g, 0, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range parts {
			for _, w := range []int{2, 4} {
				res, err := SSSP(g, 0, Config{Workers: w, Partition: pt.p})
				if err != nil {
					t.Fatalf("%s/w%d: %v", pt.name, w, err)
				}
				name := fmt.Sprintf("%s/w%d", pt.name, w)
				for v := range res.Dist {
					if res.Dist[v] != ref.Dist[v] {
						t.Fatalf("%s: dist[%d] = %v, want %v", name, v, res.Dist[v], ref.Dist[v])
					}
				}
				checkTotals(t, name, ref.Stats, res.Stats)
			}
		}
	})

	t.Run("pregel/hashmin", func(t *testing.T) {
		ref, err := HashMinCC(g, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range parts {
			res, err := HashMinCC(g, Config{Workers: 3, Partition: pt.p})
			if err != nil {
				t.Fatalf("%s: %v", pt.name, err)
			}
			for v := range res.Color {
				if res.Color[v] != ref.Color[v] {
					t.Fatalf("%s: component[%d] = %v, want %v", pt.name, v, res.Color[v], ref.Color[v])
				}
			}
			checkTotals(t, pt.name, ref.Stats, res.Stats)
		}
	})

	t.Run("gas/sssp", func(t *testing.T) {
		refDist, refStats, err := gas.SSSP(g, 0, gas.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range parts {
			for _, w := range []int{2, 4} {
				dist, st, err := gas.SSSP(g, 0, gas.Config{Workers: w, Partition: pt.p})
				if err != nil {
					t.Fatalf("%s/w%d: %v", pt.name, w, err)
				}
				name := fmt.Sprintf("%s/w%d", pt.name, w)
				for v := range dist {
					if dist[v] != refDist[v] {
						t.Fatalf("%s: dist[%d] = %v, want %v", name, v, dist[v], refDist[v])
					}
				}
				checkTotals(t, name, refStats.Stats, st.Stats)
			}
		}
	})
}

// TestDriverMeasuredAccounting checks the driver-populated measured
// fields for every engine: per superstep MaxWork/MaxComm/Cost must equal
// the w, h, and max(w, g·h, L) recomputed from the raw slices, and the
// run's MeasuredTime/MeasuredTPP must equal the model-derived totals
// exactly (superstep costs are integers, so the incremental float64 sum
// is exact).
func TestDriverMeasuredAccounting(t *testing.T) {
	g := parityGraph(t)

	stats := map[string]*bsp.Stats{}
	if res, err := SSSP(g, 0, Config{Workers: 3}); err != nil {
		t.Fatal(err)
	} else {
		stats["pregel/sssp"] = res.Stats
	}
	if res, err := PageRank(g, 0.85, 6, Config{Workers: 3}); err != nil {
		t.Fatal(err)
	} else {
		stats["pregel/pagerank"] = res.Stats
	}
	if _, res, err := gas.SSSP(g, 0, gas.Config{Workers: 2}); err != nil {
		t.Fatal(err)
	} else {
		stats["gas/sssp"] = res.Stats
	}
	if _, res, err := gas.PageRank(g, 0.85, 1e-7, gas.Config{Workers: 2}); err != nil {
		t.Fatal(err)
	} else {
		stats["gas/pagerank"] = res.Stats
	}
	if res, err := blockcentric.SSSP(g, 0, blockcentric.Config{Blocks: 3}); err != nil {
		t.Fatal(err)
	} else {
		stats["blockcentric/sssp"] = res.Stats
	}
	if res, err := blockcentric.PageRank(g, 0.85, 6, blockcentric.Config{Blocks: 3}); err != nil {
		t.Fatal(err)
	} else {
		stats["blockcentric/pagerank"] = res.Stats
	}
	if _, res, err := async.SSSP(g, 0, async.Config{}); err != nil {
		t.Fatal(err)
	} else {
		stats["async/sssp"] = res.Stats
	}
	if _, res, err := async.PageRank(g, 0.85, 1e-7, async.Config{}); err != nil {
		t.Fatal(err)
	} else {
		stats["async/pagerank"] = res.Stats
	}

	for name, st := range stats {
		if st.NumSupersteps() == 0 {
			t.Fatalf("%s: no supersteps recorded", name)
		}
		for i, ss := range st.Supersteps {
			if ss.MaxWork != ss.W() {
				t.Errorf("%s: superstep %d MaxWork = %d, want %d", name, i, ss.MaxWork, ss.W())
			}
			if ss.MaxComm != ss.H() {
				t.Errorf("%s: superstep %d MaxComm = %d, want %d", name, i, ss.MaxComm, ss.H())
			}
			if want := bsp.DefaultModel.SuperstepTime(ss); ss.Cost != want {
				t.Errorf("%s: superstep %d Cost = %g, want %g", name, i, ss.Cost, want)
			}
		}
		if want := bsp.DefaultModel.Time(st); st.MeasuredTime != want {
			t.Errorf("%s: MeasuredTime = %g, want %g", name, st.MeasuredTime, want)
		}
		if want := bsp.DefaultModel.TimeProcessor(st); st.MeasuredTPP() != want {
			t.Errorf("%s: MeasuredTPP = %g, want %g", name, st.MeasuredTPP(), want)
		}
	}
}

// TestCapSentinelCrossesEngines checks that every engine's cap error
// unwraps to the one shared sentinel, so callers can errors.Is a cap
// regardless of which engine produced it.
func TestCapSentinelCrossesEngines(t *testing.T) {
	g := parityGraph(t)

	_, pregelErr := SSSP(g, 0, Config{MaxSupersteps: 1})
	_, _, gasErr := gas.SSSP(g, 0, gas.Config{MaxIterations: 1})
	_, bcErr := blockcentric.SSSP(g, 0, blockcentric.Config{MaxSupersteps: 1})
	_, _, asyncErr := async.SSSP(g, 0, async.Config{MaxUpdates: 1})

	for name, err := range map[string]error{
		"pregel":       pregelErr,
		"gas":          gasErr,
		"blockcentric": bcErr,
		"async":        asyncErr,
	} {
		if err == nil {
			t.Fatalf("%s: expected a cap error", name)
		}
		if !errors.Is(err, bsp.ErrSuperstepCap) {
			t.Errorf("%s: %v does not unwrap to bsp.ErrSuperstepCap", name, err)
		}
		// The per-engine re-exports alias the same sentinel, so a cap
		// from one engine satisfies errors.Is against another's name.
		if !errors.Is(err, gas.ErrIterationCap) || !errors.Is(err, async.ErrUpdateCap) {
			t.Errorf("%s: %v does not cross-match the engine aliases", name, err)
		}
	}
}
