// Package vc implements the twenty vertex-centric graph algorithms
// benchmarked in Table 1 of "Vertex-Centric Graph Processing: The Good,
// the Bad, and the Ugly" (EDBT 2017), each on top of the
// internal/pregel engine and each returning the engine's BSP
// instrumentation so internal/core can compute the paper's metrics.
package vc

import (
	"context"
	"errors"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	"vcgraph/internal/runtime"
)

// errNotDirected guards algorithms that require directed input.
var errNotDirected = errors.New("vc: algorithm requires a directed graph")

// errNotBipartite guards BipartiteMatching against non-bipartite input.
var errNotBipartite = errors.New("vc: graph is not bipartite for the given left-side size")

// errTooManySources guards BetweennessShared's int16 source tags.
var errTooManySources = errors.New("vc: superstep sharing supports at most 32768 sources")

// VertexID aliases graph.VertexID.
type VertexID = graph.VertexID

// Config carries the engine knobs shared by every algorithm.
type Config struct {
	// Workers is the number of BSP workers (the P in P·T). 0 = default.
	Workers int
	// MaxSupersteps caps each engine run. 0 = engine default.
	MaxSupersteps int
	// Seed drives the randomized algorithms (Luby MIS, bipartite
	// matching). 0 = 1.
	Seed int64
	// NoCombiner disables message combiners in the algorithms that use
	// one (Hash-Min, SSSP, fixed-K PageRank, double sweep). Used by the
	// combiner ablation to measure the network volume combiners save.
	// It also disables the pull path, which requires a combiner.
	NoCombiner bool
	// Mode selects the direction-optimizing message path: push, pull,
	// or auto (the zero value; pull dense supersteps when the
	// algorithm has a combiner). See pregel.Config.Mode.
	Mode runtime.DirectionMode
	// PullThreshold overrides the auto-mode frontier density threshold
	// (fraction of n; <= 0 means runtime.DefaultPullThreshold).
	PullThreshold float64
	// CheckpointEvery/FullSnapshotEvery/Faults pass through to the
	// engine's fault tolerance and fault injection (see pregel.Config
	// and runtime.FaultPlan). FullSnapshotEvery > 1 turns the
	// checkpoints between full snapshots into dirty-set deltas.
	CheckpointEvery   int
	FullSnapshotEvery int
	Faults            *runtime.FaultPlan
	// Partition picks the vertex-to-worker assignment (nil = hash).
	Partition pregel.Partitioner
	// FCS enables finishing-computations-serially with the given
	// active-vertex threshold for algorithms that support it (Hash-Min).
	FCS int
	// PackedState selects the bit-packed vertex-state variant for the
	// small-domain algorithms that have one (Hash-Min CC, k-core,
	// coloring): per-vertex state lives in a PackedInts store at
	// ⌈log₂ domain⌉ bits per entry instead of a full value slot. The
	// message flow is unchanged, so packed runs are byte-identical to
	// dense ones (see the differential suite). K-core additionally
	// assumes a simple graph: its dense variant dedupes parallel edges
	// through a map, its packed variant through the adjacency itself.
	PackedState bool
	// Ctx, Pool, and Job pass through to the engine's job-scoped
	// runtime: Ctx aborts the run at the next superstep barrier, Pool
	// leases workers from a shared pool, and Job binds the run to a
	// scheduler-admitted job handle (see runtime.DriverConfig).
	Ctx  context.Context
	Pool *runtime.Pool
	Job  *runtime.Job
}

func engineCfg[M any](c Config) pregel.Config[M] {
	return pregel.Config[M]{
		Workers:           c.Workers,
		MaxSupersteps:     c.MaxSupersteps,
		Seed:              c.Seed,
		CheckpointEvery:   c.CheckpointEvery,
		FullSnapshotEvery: c.FullSnapshotEvery,
		Faults:            c.Faults,
		Partition:         c.Partition,
		FCSThreshold:      c.FCS,
		Mode:              c.Mode,
		PullThreshold:     c.PullThreshold,
		Ctx:               c.Ctx,
		Pool:              c.Pool,
		Job:               c.Job,
	}
}

// MergeStats combines the statistics of a multi-stage pipeline (several
// engine runs chained into one logical algorithm): superstep sequences
// concatenate, per-vertex balance maxima take the max, totals add.
func MergeStats(parts ...*bsp.Stats) *bsp.Stats {
	out := &bsp.Stats{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if p.Workers > out.Workers {
			out.Workers = p.Workers
		}
		if p.N > out.N {
			out.N = p.N
		}
		out.Supersteps = append(out.Supersteps, p.Supersteps...)
		if p.MaxStatePerDeg > out.MaxStatePerDeg {
			out.MaxStatePerDeg = p.MaxStatePerDeg
		}
		if p.MaxComputePerDeg > out.MaxComputePerDeg {
			out.MaxComputePerDeg = p.MaxComputePerDeg
		}
		if p.MaxSentPerDeg > out.MaxSentPerDeg {
			out.MaxSentPerDeg = p.MaxSentPerDeg
		}
		if p.MaxRecvPerDeg > out.MaxRecvPerDeg {
			out.MaxRecvPerDeg = p.MaxRecvPerDeg
		}
		out.TotalMessages += p.TotalMessages
		out.HeapInuseDelta += p.HeapInuseDelta
		out.TotalAllocDelta += p.TotalAllocDelta
		out.TotalWork += p.TotalWork
		out.MeasuredTime += p.MeasuredTime
		out.Recovery.Add(p.Recovery)
	}
	return out
}
