package vc

import (
	"sort"

	"vcgraph/internal/bsp"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
)

// Minimum cost spanning tree (Table 1 row 11): the vertex-centric
// Boruvka of Salihoglu & Widom. Each Boruvka iteration runs the three
// phases of §3.5 — Min-Edge-Picking, Super-vertex Finding (mutual-pick
// cycle detection + simple pointer jumping), and
// Edge-Cleaning-and-Relabeling (sub-vertices ship their relabeled edge
// lists to their super-vertex, which keeps the lightest edge per
// neighbor) — and halves the number of live vertices, so there are
// O(log n) iterations of O(δ) supersteps each. Super-vertices receive
// entire merged edge lists, far more than d(v) messages: the workload
// imbalance that disqualifies the algorithm from BPPA.

// MCSTResult holds the minimum spanning forest found by vertex-centric
// Boruvka.
type MCSTResult struct {
	Edges  []graph.UndirectedEdge
	Weight float64
	Stats  *bsp.Stats
}

const (
	mcstPick = iota
	mcstCycle
	mcstJumpReq
	mcstJumpReply
	mcstExchange
	mcstRelabel
	mcstMerge
)

const (
	mcPing int8 = iota
	mcJReq
	mcJRep
	mcSuper
	mcEdge
)

type mcstEdge struct {
	Dst          VertexID // neighbor in the current contracted graph
	W            float64
	OrigU, OrigV VertexID
}

type mcstMsg struct {
	Kind    int8
	From    VertexID
	Pointer VertexID
	IsRoot  bool
	Super   VertexID
	Edge    mcstEdge
}

type pickedEdge struct {
	U, V VertexID
	W    float64
}

type mcstValue struct {
	done    bool
	edges   []mcstEdge
	pointer VertexID
	isRoot  bool
	settled bool
	super   VertexID
}

type mcstProgram struct {
	phase  int
	picked []pickedEdge
}

func (p *mcstProgram) Init(g *graph.Graph, id VertexID) mcstValue {
	v := mcstValue{pointer: id, super: id}
	for _, e := range g.Out[id] {
		v.edges = append(v.edges, mcstEdge{Dst: e.Dst, W: e.W, OrigU: id, OrigV: e.Dst})
	}
	return v
}

func (p *mcstProgram) BeforeSuperstep(mc *pregel.MasterContext) {
	if mc.Superstep() > 0 {
		if picks, ok := mc.Agg("picked").([]pickedEdge); ok {
			p.picked = append(p.picked, picks...)
		}
		switch p.phase {
		case mcstPick:
			p.phase = mcstCycle
		case mcstCycle:
			p.phase = mcstJumpReq
		case mcstJumpReq:
			if unsettled, _ := mc.Agg("unsettled").(int64); unsettled == 0 {
				p.phase = mcstExchange
			} else {
				p.phase = mcstJumpReply
			}
		case mcstJumpReply:
			p.phase = mcstJumpReq
		case mcstExchange:
			p.phase = mcstRelabel
		case mcstRelabel:
			p.phase = mcstMerge
		case mcstMerge:
			if live, _ := mc.Agg("live").(int64); live == 0 {
				mc.Halt()
				return
			}
			p.phase = mcstPick
		}
	}
	mc.SetGlobal("phase", p.phase)
}

func (p *mcstProgram) Compute(ctx *pregel.Context[mcstValue, mcstMsg], msgs []mcstMsg) {
	v := ctx.Value()
	if v.done {
		return
	}
	switch ctx.Global("phase").(int) {
	case mcstPick:
		ctx.Charge(int64(len(v.edges)))
		if len(v.edges) == 0 {
			v.done = true // finished component (or isolated vertex)
			return
		}
		best := v.edges[0]
		for _, e := range v.edges[1:] {
			if e.W < best.W || (e.W == best.W && e.Dst < best.Dst) {
				best = e
			}
		}
		v.pointer = best.Dst
		v.isRoot = false
		v.settled = false
		v.super = graph.NoVertex
		u, w := best.OrigU, best.OrigV
		if u > w {
			u, w = w, u
		}
		ctx.Aggregate("picked", pickedEdge{U: u, V: w, W: best.W})
		ctx.SendTo(v.pointer, mcstMsg{Kind: mcPing, From: ctx.ID()})
	case mcstCycle:
		for _, m := range msgs {
			if m.Kind == mcPing && m.From == v.pointer && ctx.ID() < v.pointer {
				// Mutual pick: the smaller endpoint becomes the super-vertex.
				v.isRoot = true
				v.pointer = ctx.ID()
				v.super = ctx.ID()
				v.settled = true
			}
		}
	case mcstJumpReq:
		for _, m := range msgs {
			if m.Kind != mcJRep {
				continue
			}
			if m.IsRoot {
				v.super = v.pointer
				v.settled = true
			} else {
				v.pointer = m.Pointer
			}
		}
		if !v.settled {
			ctx.SendTo(v.pointer, mcstMsg{Kind: mcJReq, From: ctx.ID()})
			ctx.Aggregate("unsettled", int64(1))
		}
	case mcstJumpReply:
		for _, m := range msgs {
			if m.Kind == mcJReq {
				ctx.SendTo(m.From, mcstMsg{Kind: mcJRep, Pointer: v.pointer, IsRoot: v.isRoot})
			}
		}
	case mcstExchange:
		for _, e := range v.edges {
			ctx.SendTo(e.Dst, mcstMsg{Kind: mcSuper, From: ctx.ID(), Super: v.super})
		}
	case mcstRelabel:
		superOf := make(map[VertexID]VertexID, len(msgs))
		for _, m := range msgs {
			if m.Kind == mcSuper {
				superOf[m.From] = m.Super
			}
		}
		ctx.Charge(int64(len(v.edges)))
		kept := v.edges[:0]
		for _, e := range v.edges {
			e.Dst = superOf[e.Dst]
			if e.Dst == v.super {
				continue // self-loop after contraction
			}
			kept = append(kept, e)
		}
		v.edges = kept
		if !v.isRoot {
			for _, e := range v.edges {
				ctx.SendTo(v.super, mcstMsg{Kind: mcEdge, Edge: e})
			}
			v.edges = nil
			v.done = true
		}
	case mcstMerge:
		if !v.isRoot {
			return
		}
		lightest := make(map[VertexID]mcstEdge, len(v.edges)+len(msgs))
		add := func(e mcstEdge) {
			cur, ok := lightest[e.Dst]
			if !ok || e.W < cur.W || (e.W == cur.W && (e.OrigU < cur.OrigU || (e.OrigU == cur.OrigU && e.OrigV < cur.OrigV))) {
				lightest[e.Dst] = e
			}
		}
		for _, e := range v.edges {
			add(e)
		}
		for _, m := range msgs {
			if m.Kind == mcEdge {
				add(m.Edge)
			}
		}
		v.edges = v.edges[:0]
		for _, e := range lightest {
			v.edges = append(v.edges, e)
		}
		sort.Slice(v.edges, func(i, j int) bool { return v.edges[i].Dst < v.edges[j].Dst })
		ctx.Charge(int64(len(v.edges)))
		if len(v.edges) == 0 {
			v.done = true
			return
		}
		ctx.Aggregate("live", int64(1))
	}
}

func (p *mcstProgram) StateUnits(v *mcstValue) int64 { return int64(4 + len(v.edges)) }

// MCST computes a minimum spanning forest of a weighted undirected
// graph with vertex-centric Boruvka. Ties are broken by destination and
// original edge IDs, so the result is deterministic; with distinct
// weights it is the unique MST.
func MCST(g *graph.Graph, cfg Config) (*MCSTResult, error) {
	prog := &mcstProgram{}
	ecfg := engineCfg[mcstMsg](cfg)
	if ecfg.MaxSupersteps == 0 {
		ecfg.MaxSupersteps = 1 + 40*(bitsLen(g.N())+2)*(bitsLen(g.N())+2)
	}
	eng := pregel.NewEngine[mcstValue, mcstMsg](g, prog, ecfg)
	eng.RegisterAggregator("picked", pregel.Collect[pickedEdge]())
	eng.RegisterAggregator("unsettled", pregel.SumInt64())
	eng.RegisterAggregator("live", pregel.SumInt64())
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	// Mutual picks report the same edge twice: deduplicate.
	seen := make(map[[2]VertexID]bool, len(prog.picked))
	out := &MCSTResult{Stats: res.Stats}
	for _, pe := range prog.picked {
		k := [2]VertexID{pe.U, pe.V}
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Edges = append(out.Edges, graph.UndirectedEdge{U: pe.U, V: pe.V, W: pe.W})
		out.Weight += pe.W
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		if out.Edges[i].U != out.Edges[j].U {
			return out.Edges[i].U < out.Edges[j].U
		}
		return out.Edges[i].V < out.Edges[j].V
	})
	return out, nil
}

// bitsLen returns the bit length of n (≈ log2 n + 1).
func bitsLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}
