package vc

import (
	"math"
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// --- PageRank ---

func TestPageRankMatchesPowerIteration(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random":    graph.Random(200, 800, 7),
		"path":      graph.Path(50),
		"star":      graph.Star(40),
		"powerlaw":  graph.PreferentialAttachment(150, 3, 9),
		"directed":  graph.RandomDirected(120, 600, 11),
		"singleton": graph.New(1, false),
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			res, err := PageRank(g, 0.85, 30, Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			var ops seq.Ops
			want := seq.PageRank(g, 0.85, 30, &ops)
			for v := range want {
				if !almostEqual(res.Ranks[v], want[v], 1e-9) {
					t.Fatalf("vertex %d: vc=%v seq=%v", v, res.Ranks[v], want[v])
				}
			}
		})
	}
}

func TestPageRankSuperstepCount(t *testing.T) {
	g := graph.Random(100, 300, 3)
	res, err := PageRank(g, 0.85, 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// K send supersteps + 1 final halting superstep.
	if got := res.Stats.NumSupersteps(); got != 11 {
		t.Fatalf("supersteps = %d, want 11", got)
	}
}

func TestPageRankRanksSumToOneOnRegularGraph(t *testing.T) {
	// No dangling vertices on a cycle, so rank mass is conserved.
	g := graph.Cycle(64)
	res, err := PageRank(g, 0.85, 40, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Fatalf("ranks sum to %v, want 1", sum)
	}
}

// --- SSSP ---

func TestSSSPMatchesDijkstra(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := graph.RandomConnected(150, 500, seed)
		graph.RandomWeights(g, seed+100)
		res, err := SSSP(g, 0, Config{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		var ops seq.Ops
		want := seq.Dijkstra(g, 0, &ops)
		for v := range want {
			if !almostEqual(res.Dist[v], want[v], 1e-12) {
				t.Fatalf("seed %d vertex %d: vc=%v dijkstra=%v", seed, v, res.Dist[v], want[v])
			}
		}
	}
}

func TestSSSPDisconnected(t *testing.T) {
	g := graph.New(4, false)
	g.AddEdge(0, 1)
	// 2 and 3 isolated / pair
	g.AddEdge(2, 3)
	res, err := SSSP(g, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[1] != 1 || !math.IsInf(res.Dist[2], 1) || !math.IsInf(res.Dist[3], 1) {
		t.Fatalf("dist = %v", res.Dist)
	}
}

func TestSSSPQuickAgainstBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(40, 100, seed)
		graph.RandomWeights(g, seed+1)
		res, err := SSSP(g, 0, Config{Workers: 2})
		if err != nil {
			return false
		}
		var ops seq.Ops
		want := seq.BellmanFord(g, 0, &ops)
		for v := range want {
			if !almostEqual(res.Dist[v], want[v], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- Hash-Min CC ---

func TestHashMinMatchesBFSComponents(t *testing.T) {
	cases := map[string]*graph.Graph{
		"random-sparse": graph.Random(300, 350, 5),
		"path":          graph.Path(200),
		"disconnected":  graph.Random(100, 60, 8),
		"star":          graph.Star(50),
		"empty-edges":   graph.New(10, false),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			res, err := HashMinCC(g, Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			var ops seq.Ops
			want := seq.Components(g, &ops)
			for v := range want {
				if res.Color[v] != want[v] {
					t.Fatalf("vertex %d: vc=%d seq=%d", v, res.Color[v], want[v])
				}
			}
		})
	}
}

func TestHashMinSuperstepsTrackDiameter(t *testing.T) {
	// On a path graph Hash-Min needs Θ(n) supersteps: the paper's
	// witness that the algorithm is not BPPA.
	g := graph.Path(64)
	res, err := HashMinCC(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ss := res.Stats.NumSupersteps(); ss < 60 {
		t.Fatalf("supersteps = %d, want ~n on a path", ss)
	}
}

func TestHashMinQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(60, 80, seed)
		res, err := HashMinCC(g, Config{Workers: 2})
		if err != nil {
			return false
		}
		var ops seq.Ops
		want := seq.Components(g, &ops)
		for v := range want {
			if res.Color[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- Diameter / APSP ---

func TestDiameterMatchesBFS(t *testing.T) {
	cases := map[string]*graph.Graph{
		"random":  graph.RandomConnected(120, 400, 4),
		"path":    graph.Path(40),
		"cycle":   graph.Cycle(31),
		"grid":    graph.Grid(8, 9),
		"star":    graph.Star(25),
		"tree":    graph.RandomTree(80, 6),
		"k5":      graph.Complete(5),
		"trivial": graph.New(1, false),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			res, err := Diameter(g, Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			var ops seq.Ops
			wantEcc := seq.Eccentricities(g, &ops)
			var wantDiam int32
			for v, e := range wantEcc {
				if e > wantDiam {
					wantDiam = e
				}
				if res.Ecc[v] != e {
					t.Fatalf("ecc[%d]: vc=%d seq=%d", v, res.Ecc[v], e)
				}
			}
			if res.Diameter != wantDiam {
				t.Fatalf("diameter: vc=%d seq=%d", res.Diameter, wantDiam)
			}
		})
	}
}

func TestDiameterSuperstepsEqualDiameterPlusTwo(t *testing.T) {
	// Supersteps: 1 originate + δ propagation + 1 final empty round.
	g := graph.Path(30)
	res, err := Diameter(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Stats.NumSupersteps(), int(res.Diameter)+2; got != want {
		t.Fatalf("supersteps = %d, want %d (δ=%d)", got, want, res.Diameter)
	}
}

func TestAPSPMatrixMatchesBFS(t *testing.T) {
	g := graph.RandomConnected(60, 150, 12)
	res, err := Diameter(g, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ops seq.Ops
	want := seq.APSPUnweighted(g, &ops)
	for u := range want {
		for v := range want[u] {
			// res.Dist[v][u] = distance from u to v; undirected so symmetric.
			if res.Dist[v][u] != want[u][v] {
				t.Fatalf("dist(%d,%d): vc=%d bfs=%d", u, v, res.Dist[v][u], want[u][v])
			}
		}
	}
}

func TestDiameterStateGrowsWithN(t *testing.T) {
	// The history set makes per-vertex state Θ(n): BPPA property P1
	// must fail, which CheckBPPA detects via ratio growth.
	small, err := Diameter(graph.RandomConnected(50, 120, 3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Diameter(graph.RandomConnected(400, 960, 3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if large.Stats.MaxStatePerDeg <= small.Stats.MaxStatePerDeg*1.45 {
		t.Fatalf("state ratio did not grow: small=%v large=%v",
			small.Stats.MaxStatePerDeg, large.Stats.MaxStatePerDeg)
	}
}
