package vc

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"vcgraph/internal/async"
	"vcgraph/internal/blockcentric"
	"vcgraph/internal/bsp"
	"vcgraph/internal/gas"
	"vcgraph/internal/graph"
	"vcgraph/internal/pregel"
	rt "vcgraph/internal/runtime"
	"vcgraph/internal/seq"
)

// Differential fault-injection suite: every workload runs on all four
// engines across worker counts and fault plans, and each faulted run
// must produce output byte-identical to the engine's fault-free run on
// the same configuration — which in turn must agree with the
// sequential oracle. Checkpoint/rollback is only correct if recovery
// is invisible in the output and visible in Stats.Recovery.

// engineCell is one engine × parallelism configuration of a workload.
// run executes it under the given fault plan and checkpoint interval
// and returns the output values (a comparable slice) plus stats.
type engineCell struct {
	name string
	// epochSaves marks engines that checkpoint after the barrier's
	// fault check (the asynchronous engine), which shifts which save a
	// corruption event lands on; see corruptPlan.
	epochSaves bool
	run        func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error)
}

// faultCase is a fault plan plus what its firing must leave in
// Stats.Recovery.
type faultCase struct {
	name  string
	ck    int
	plan  func(cell engineCell) *rt.FaultPlan
	check func(t *testing.T, r bsp.Recovery)
}

func faultCases() []faultCase {
	return []faultCase{
		{
			// Crash with no checkpoint: recovery is a fresh restart.
			name: "crash-fresh", ck: 0,
			plan: func(engineCell) *rt.FaultPlan { return rt.PlanOf(rt.Crash(1)) },
			check: func(t *testing.T, r bsp.Recovery) {
				if r.Rollbacks == 0 || r.RedoneSupersteps == 0 {
					t.Errorf("crash without checkpoint: rollbacks=%d redone=%d, want both > 0", r.Rollbacks, r.RedoneSupersteps)
				}
			},
		},
		{
			// Crash with checkpoints: rollback to the last snapshot.
			name: "crash-checkpointed", ck: 2,
			plan: func(engineCell) *rt.FaultPlan { return rt.PlanOf(rt.Crash(3)) },
			check: func(t *testing.T, r bsp.Recovery) {
				if r.Rollbacks == 0 || r.CheckpointsSaved == 0 {
					t.Errorf("checkpointed crash: rollbacks=%d saved=%d, want both > 0", r.Rollbacks, r.CheckpointsSaved)
				}
			},
		},
		{
			// A message batch lost in transit forces a rollback.
			name: "drop-lane", ck: 2,
			plan: func(engineCell) *rt.FaultPlan { return rt.PlanOf(rt.DropLane(1, 0, 0)) },
			check: func(t *testing.T, r bsp.Recovery) {
				if r.DroppedLanes == 0 || r.Rollbacks == 0 {
					t.Errorf("dropped lane: dropped=%d rollbacks=%d, want both > 0", r.DroppedLanes, r.Rollbacks)
				}
			},
		},
		{
			// A duplicated batch is detected (or idempotently absorbed)
			// without a rollback.
			name: "dup-lane", ck: 0,
			plan: func(engineCell) *rt.FaultPlan { return rt.PlanOf(rt.DupLane(1, 0, 0)) },
			check: func(t *testing.T, r bsp.Recovery) {
				if r.DuplicatedLanes == 0 {
					t.Errorf("duplicated lane not detected: %+v", r)
				}
				if r.Rollbacks != 0 {
					t.Errorf("duplicate delivery forced a rollback: %+v", r)
				}
			},
		},
		{
			// The newest checkpoint is silently corrupt; recovery must
			// fall back to the previous generation (or a fresh start).
			name: "corrupt-checkpoint", ck: 1,
			plan: func(cell engineCell) *rt.FaultPlan {
				if cell.epochSaves {
					// Saves happen after the crash check at each epoch
					// barrier, so the newest save a crash at barrier 3
					// sees is the step-2 one.
					return rt.PlanOf(rt.CorruptCheckpoint(2), rt.Crash(3))
				}
				// Barrier engines save checkpoint k at the end of
				// superstep k-1, so crash(3) reads save(3).
				return rt.PlanOf(rt.CorruptCheckpoint(3), rt.Crash(3))
			},
			check: func(t *testing.T, r bsp.Recovery) {
				if r.CorruptedCheckpoints == 0 || r.Rollbacks == 0 {
					t.Errorf("corrupt checkpoint: corrupted=%d rollbacks=%d, want both > 0", r.CorruptedCheckpoints, r.Rollbacks)
				}
			},
		},
	}
}

// runDifferential drives one workload's cells through the fault-case
// matrix plus seeded random plans: the fault-free baseline must match
// the oracle, and every faulted run must match the baseline exactly.
func runDifferential(t *testing.T, cells []engineCell, checkOracle func(t *testing.T, cell string, values any)) {
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			base, stats, err := cell.run(0, nil)
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			if stats.Recovery.Faulted() {
				t.Fatalf("fault-free run reports recovery activity: %+v", stats.Recovery)
			}
			checkOracle(t, cell.name, base)

			for _, fc := range faultCases() {
				t.Run(fc.name, func(t *testing.T) {
					got, st, err := cell.run(fc.ck, fc.plan(cell))
					if err != nil {
						t.Fatalf("faulted run: %v", err)
					}
					if !reflect.DeepEqual(got, base) {
						t.Fatalf("faulted output differs from fault-free run\nrecovery: %+v", st.Recovery)
					}
					fc.check(t, st.Recovery)
				})
			}

			// Seeded random plans: whatever mix a seed generates, the
			// output must not change.
			for seed := int64(1); seed <= 4; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					got, st, err := cell.run(2, rt.NewFaultPlan(seed))
					if err != nil {
						t.Fatalf("seeded run: %v", err)
					}
					if !reflect.DeepEqual(got, base) {
						t.Fatalf("seed %d output differs from fault-free run\nrecovery: %+v", seed, st.Recovery)
					}
				})
			}
		})
	}
}

func TestDifferentialConnectedComponents(t *testing.T) {
	g := graph.Grid(12, 12) // diameter 22: every fault plan fires
	var cells []engineCell
	for _, p := range []struct {
		name string
		part pregel.Partitioner
	}{{"hash", nil}, {"range", pregel.PartitionRange}} {
		for _, w := range []int{1, 3} {
			part, w := p.part, w
			cells = append(cells, engineCell{
				name: fmt.Sprintf("pregel/%s/w%d", p.name, w),
				run: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
					res, err := HashMinCC(g, Config{Workers: w, Partition: part, CheckpointEvery: ck, Faults: plan})
					if err != nil {
						return nil, nil, err
					}
					return res.Color, res.Stats, nil
				},
			})
		}
	}
	for _, w := range []int{1, 3} {
		w := w
		cells = append(cells, engineCell{
			name: fmt.Sprintf("gas/w%d", w),
			run: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				labels, res, err := gas.ConnectedComponents(g, gas.Config{Workers: w, CheckpointEvery: ck, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return labels, res.Stats, nil
			},
		})
	}
	cells = append(cells, engineCell{
		name: "async", epochSaves: true,
		run: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
			labels, res, err := async.ConnectedComponents(g, async.Config{CheckpointEvery: ck, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return labels, res.Stats, nil
		},
	})
	for _, b := range []int{2, 3} {
		b := b
		cells = append(cells, engineCell{
			name: fmt.Sprintf("blockcentric/b%d", b),
			run: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				res, err := blockcentric.ConnectedComponents(g, blockcentric.Config{Blocks: b, CheckpointEvery: ck, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return res.Color, res.Stats, nil
			},
		})
	}

	var ops seq.Ops
	want := seq.Components(g, &ops)
	runDifferential(t, cells, func(t *testing.T, cell string, values any) {
		got := values.([]VertexID)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s disagrees with sequential oracle", cell)
		}
	})
}

func TestDifferentialSSSP(t *testing.T) {
	g := graph.Grid(12, 12)
	graph.RandomWeights(g, 3)
	const src = 0
	var cells []engineCell
	for _, w := range []int{1, 3} {
		w := w
		cells = append(cells, engineCell{
			name: fmt.Sprintf("pregel/w%d", w),
			run: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				res, err := SSSP(g, src, Config{Workers: w, CheckpointEvery: ck, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return res.Dist, res.Stats, nil
			},
		})
		cells = append(cells, engineCell{
			name: fmt.Sprintf("gas/w%d", w),
			run: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				dist, res, err := gas.SSSP(g, src, gas.Config{Workers: w, CheckpointEvery: ck, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return dist, res.Stats, nil
			},
		})
	}
	cells = append(cells, engineCell{
		name: "async", epochSaves: true,
		run: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
			dist, res, err := async.SSSP(g, src, async.Config{CheckpointEvery: ck, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return dist, res.Stats, nil
		},
	})
	for _, b := range []int{2, 3} {
		b := b
		cells = append(cells, engineCell{
			name: fmt.Sprintf("blockcentric/b%d", b),
			run: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				res, err := blockcentric.SSSP(g, src, blockcentric.Config{Blocks: b, CheckpointEvery: ck, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return res.Dist, res.Stats, nil
			},
		})
	}

	var ops seq.Ops
	want := seq.Dijkstra(g, src, &ops)
	runDifferential(t, cells, func(t *testing.T, cell string, values any) {
		got := values.([]float64)
		// Distances are sums along shortest paths, added in path order
		// in every engine, so even the floats agree exactly.
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s disagrees with Dijkstra", cell)
		}
	})
}

func TestDifferentialPageRank(t *testing.T) {
	g := graph.RandomConnected(120, 360, 9)
	const alpha, k = 0.85, 20
	var cells []engineCell
	for _, w := range []int{1, 3} {
		w := w
		cells = append(cells, engineCell{
			name: fmt.Sprintf("pregel/w%d", w),
			run: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				res, err := PageRank(g, alpha, k, Config{Workers: w, CheckpointEvery: ck, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return res.Ranks, res.Stats, nil
			},
		})
		cells = append(cells, engineCell{
			name: fmt.Sprintf("gas/w%d", w),
			run: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				// Pin push: this matrix asserts that scatter-batch
				// transit faults fire, and adaptive PageRank's
				// iterations are dense enough that auto mode would
				// pull every one of them, leaving no batch in transit
				// to drop. Pull-mode fault replay is covered in
				// direction_test.go.
				ranks, res, err := gas.PageRank(g, alpha, 1e-10, gas.Config{Workers: w, CheckpointEvery: ck, Faults: plan, Mode: rt.DirectionPush})
				if err != nil {
					return nil, nil, err
				}
				return ranks, res.Stats, nil
			},
		})
	}
	cells = append(cells, engineCell{
		name: "async", epochSaves: true,
		run: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
			ranks, res, err := async.PageRank(g, alpha, 1e-10, async.Config{CheckpointEvery: ck, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return ranks, res.Stats, nil
		},
	})
	for _, b := range []int{2, 3} {
		b := b
		cells = append(cells, engineCell{
			name: fmt.Sprintf("blockcentric/b%d", b),
			run: func(ck int, plan *rt.FaultPlan) (any, *bsp.Stats, error) {
				res, err := blockcentric.PageRank(g, alpha, k, blockcentric.Config{Blocks: b, CheckpointEvery: ck, Faults: plan})
				if err != nil {
					return nil, nil, err
				}
				return res.Ranks, res.Stats, nil
			},
		})
	}

	var ops seq.Ops
	want := seq.PageRank(g, alpha, 300, &ops) // effectively converged
	wantK := seq.PageRank(g, alpha, k, &ops)
	runDifferential(t, cells, func(t *testing.T, cell string, values any) {
		got := values.([]float64)
		// Fixed-K engines compare against K power iterations (same
		// schedule, different float summation order); convergence-based
		// engines compare against the fixpoint.
		ref, tol := want, 1e-6
		if strings.HasPrefix(cell, "pregel") || strings.HasPrefix(cell, "blockcentric") {
			ref, tol = wantK, 1e-9
		}
		for v := range got {
			if math.Abs(got[v]-ref[v]) > tol {
				t.Fatalf("%s vertex %d: %v vs oracle %v", cell, v, got[v], ref[v])
			}
		}
	})
}
