package vc

import (
	"reflect"
	"testing"

	"vcgraph/internal/async"
	"vcgraph/internal/graph"
)

// FuzzMutationScript drives the evolving-graph stack end to end from
// raw bytes: the input decodes to a sequence of mutation batches
// (inserts with derived weights, deletes that may or may not exist —
// invalid batches must be rejected atomically), and after every applied
// batch the incrementally maintained CC/SSSP/PageRank answers are
// differentially checked against from-scratch runs on the mutated
// graph. Any divergence — a wrong seed set, a delta-overlay
// enumeration mismatch, a stale memoized rank — is a crash the fuzzer
// can minimize.
func FuzzMutationScript(f *testing.F) {
	f.Add(int64(1), []byte{2, 0, 1, 5, 1, 3, 9, 4, 2, 2})
	f.Add(int64(3), []byte{1, 7, 3, 3, 0, 2, 2, 5, 5, 8, 8, 1, 1, 0})
	f.Add(int64(9), []byte{0, 1, 1, 2, 4, 4, 6, 6, 3, 1, 2, 3, 0, 0, 0, 5})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		const n, k = 14, 6
		g := graph.RandomConnected(n, 24, seed)
		graph.RandomWeights(g, seed+1)
		g.RebuildEvery = 5 // cross rebuild boundaries often
		var (
			ccSt *IncCCState
			ssSt *IncSSSPState
			prSt *IncPRState
		)
		check := func() {
			var err error
			ccSt, _, err = IncrementalCC(g, ccSt, IncConfig{})
			if err != nil {
				t.Fatalf("incremental CC: %v", err)
			}
			labels, _, err := async.ConnectedComponents(g, async.Config{})
			if err != nil {
				t.Fatalf("async CC: %v", err)
			}
			if !reflect.DeepEqual(ccSt.Labels, labels) {
				t.Fatalf("incremental CC %v != from-scratch %v", ccSt.Labels, labels)
			}
			ssSt, _, err = IncrementalSSSP(g, 0, ssSt, IncConfig{})
			if err != nil {
				t.Fatalf("incremental SSSP: %v", err)
			}
			dist, _, err := async.SSSP(g, 0, async.Config{})
			if err != nil {
				t.Fatalf("async SSSP: %v", err)
			}
			if !reflect.DeepEqual(ssSt.Dist, dist) {
				t.Fatalf("incremental SSSP %v != from-scratch %v", ssSt.Dist, dist)
			}
			prSt, _, err = IncrementalPageRank(g, 0.85, k, prSt, IncConfig{})
			if err != nil {
				t.Fatalf("incremental PageRank: %v", err)
			}
			scratch, _, err := IncrementalPageRank(g, 0.85, k, nil, IncConfig{})
			if err != nil {
				t.Fatalf("cold PageRank: %v", err)
			}
			if !reflect.DeepEqual(prSt.Hist, scratch.Hist) {
				t.Fatal("incremental PageRank differs from cold recompute")
			}
		}
		check() // cold baselines
		off, batches := 0, 0
		for off+3 <= len(script) && batches < 8 {
			size := 1 + int(script[off]%3)
			off++
			var muts []graph.Mutation
			for j := 0; j < size && off+3 <= len(script); j++ {
				op, bu, bv := script[off], script[off+1], script[off+2]
				off += 3
				u, v := VertexID(int(bu)%n), VertexID(int(bv)%n)
				if op%2 == 0 {
					muts = append(muts, graph.Mutation{Op: graph.InsertEdge, U: u, V: v, W: 0.25 + float64(op%8)})
				} else {
					muts = append(muts, graph.Mutation{Op: graph.DeleteEdge, U: u, V: v})
				}
			}
			if len(muts) == 0 {
				break
			}
			epoch := g.Epoch()
			if _, err := g.ApplyMutations(muts); err != nil {
				// Rejected batches must be atomic: no epoch bump, no
				// partial application visible to the next query.
				if g.Epoch() != epoch {
					t.Fatalf("rejected batch bumped epoch: %v", err)
				}
				continue
			}
			batches++
			check()
		}
	})
}
