package vc

import (
	"math"
	"testing"

	"vcgraph/internal/graph"
	"vcgraph/internal/plan"
	"vcgraph/internal/runtime"
)

// dec builds a scripted decision for the differential tests.
func dec(step int, engine, partition, mode string) plan.Decision {
	return plan.Decision{Step: step, Plan: plan.Plan{Engine: engine, Partition: partition, Mode: mode}}
}

func partFor(engine string) string {
	if engine == plan.EngineBlockcentric {
		return plan.PartitionRange
	}
	return plan.PartitionHash
}

// autoCCGraph: a 48-cycle-free chain 1-2-...-47 closed onto vertex 0
// at the far end, plus an isolated vertex 48. The minimum label (0)
// sits at the end of the chain, so every engine needs many barriers:
// label propagation runs against the FIFO sweep order (async) and
// across all range blocks (block-centric).
func autoCCGraph() *graph.Graph {
	g := graph.New(49, false)
	for i := graph.VertexID(1); i < 47; i++ {
		g.AddEdge(i, i+1)
	}
	g.AddEdge(47, 0)
	return g
}

// autoSSSPGraph: the same long-diameter shape with varied weights.
func autoSSSPGraph() *graph.Graph {
	g := graph.New(48, false)
	for i := graph.VertexID(1); i < 47; i++ {
		g.AddWeightedEdge(i, i+1, float64(i%5+1)/2)
	}
	g.AddWeightedEdge(47, 0, 0.5)
	g.AddWeightedEdge(1, 30, 9.25)
	return g
}

// autoPRGraph: a directed ring with chords and a dangling vertex
// (13's ring edge removed), so ranks are non-uniform and the dangling
// leak is exercised.
func autoPRGraph() *graph.Graph {
	g := graph.New(30, true)
	for i := graph.VertexID(0); i < 30; i++ {
		if i == 13 {
			continue // dangling
		}
		g.AddEdge(i, (i+1)%30)
	}
	g.AddEdge(0, 5)
	g.AddEdge(0, 9)
	g.AddEdge(7, 2)
	g.AddEdge(21, 4)
	return g
}

// TestAutoHandoffDifferentialCC forces a mid-run engine switch at a
// barrier for every ordered engine pair and demands byte-identical
// labels to the native run. Pairs involving the sequential async
// engine run with a worker share of 1.
func TestAutoHandoffDifferentialCC(t *testing.T) {
	g := autoCCGraph()
	want, err := HashMinCC(g, Config{Workers: 1})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	engines := []string{plan.EnginePregel, plan.EngineGAS, plan.EngineBlockcentric, plan.EngineAsync}
	for _, e1 := range engines {
		for _, e2 := range engines {
			if e1 == e2 {
				continue
			}
			name := e1 + "->" + e2
			t.Run(name, func(t *testing.T) {
				ccfg := Config{Workers: 4}
				if e1 == plan.EngineAsync || e2 == plan.EngineAsync {
					ccfg.CheckpointEvery = 16 // short async epochs: more barriers
				}
				cfg := AutoConfig{
					Config: ccfg,
					Script: []plan.Decision{
						dec(0, e1, partFor(e1), "auto"),
						dec(2, e2, partFor(e2), "auto"),
					},
				}
				res, ar, err := HashMinCCAuto(g, cfg)
				if err != nil {
					t.Fatalf("auto: %v", err)
				}
				if ar.Segments != 2 || len(ar.Decisions) != 2 {
					t.Fatalf("switch did not fire: %d segments, %d decisions", ar.Segments, len(ar.Decisions))
				}
				for v := range want.Color {
					if res.Color[v] != want.Color[v] {
						t.Fatalf("color[%d] = %d, want %d", v, res.Color[v], want.Color[v])
					}
				}
			})
		}
	}
}

// TestAutoHandoffDifferentialSSSP is the SSSP half of the matrix:
// distances must be byte-identical (min-relaxation is exact float
// arithmetic) including +Inf for the unreachable vertex 0's island —
// and the async sentinel must be normalized away at the boundary.
func TestAutoHandoffDifferentialSSSP(t *testing.T) {
	g := autoSSSPGraph()
	src := graph.VertexID(0)
	want, err := SSSP(g, src, Config{Workers: 1})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	engines := []string{plan.EnginePregel, plan.EngineGAS, plan.EngineBlockcentric, plan.EngineAsync}
	for _, e1 := range engines {
		for _, e2 := range engines {
			if e1 == e2 {
				continue
			}
			name := e1 + "->" + e2
			t.Run(name, func(t *testing.T) {
				ccfg := Config{Workers: 4}
				if e1 == plan.EngineAsync || e2 == plan.EngineAsync {
					ccfg.CheckpointEvery = 16
				}
				cfg := AutoConfig{
					Config: ccfg,
					Script: []plan.Decision{
						dec(0, e1, partFor(e1), "auto"),
						dec(2, e2, partFor(e2), "auto"),
					},
				}
				res, ar, err := SSSPAuto(g, src, cfg)
				if err != nil {
					t.Fatalf("auto: %v", err)
				}
				if ar.Segments != 2 {
					t.Fatalf("switch did not fire: %d segments", ar.Segments)
				}
				for v := range want.Dist {
					if res.Dist[v] != want.Dist[v] && !(math.IsInf(res.Dist[v], 1) && math.IsInf(want.Dist[v], 1)) {
						t.Fatalf("dist[%d] = %v, want %v", v, res.Dist[v], want.Dist[v])
					}
				}
			})
		}
	}
}

// TestAutoHandoffDifferentialPageRank covers the canonical fold-order
// family: single-worker pregel, gas (any worker count), and
// block-centric push over a range partition produce bit-identical
// fixed-K ranks, so a forced switch between them must too — including
// the fold bookkeeping that splits k across segments.
func TestAutoHandoffDifferentialPageRank(t *testing.T) {
	g := autoPRGraph()
	const alpha, k = 0.85, 20
	want, err := PageRank(g, alpha, k, Config{Workers: 1})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	type cell struct {
		name    string
		workers int
		script  []plan.Decision
	}
	family := []string{plan.EnginePregel, plan.EngineGAS, plan.EngineBlockcentric}
	var cells []cell
	for _, e1 := range family {
		for _, e2 := range family {
			if e1 == e2 {
				continue
			}
			cells = append(cells, cell{
				name:    e1 + "->" + e2 + "/w1",
				workers: 1,
				script: []plan.Decision{
					dec(0, e1, partFor(e1), "auto"),
					dec(3, e2, partFor(e2), "auto"),
				},
			})
		}
	}
	// gas and block-centric fold in globally ascending source order at
	// any worker count; check one parallel cell each way.
	cells = append(cells,
		cell{name: "gas->blockcentric/w4", workers: 4, script: []plan.Decision{
			dec(0, plan.EngineGAS, "hash", "auto"),
			dec(3, plan.EngineBlockcentric, "range", "auto"),
		}},
		cell{name: "blockcentric->gas/w4", workers: 4, script: []plan.Decision{
			dec(0, plan.EngineBlockcentric, "range", "auto"),
			dec(3, plan.EngineGAS, "hash", "auto"),
		}},
	)
	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			res, ar, err := PageRankAuto(g, alpha, k, AutoConfig{Config: Config{Workers: c.workers}, Script: c.script})
			if err != nil {
				t.Fatalf("auto: %v", err)
			}
			if ar.Segments != 2 {
				t.Fatalf("switch did not fire: %d segments", ar.Segments)
			}
			for v := range want.Ranks {
				if res.Ranks[v] != want.Ranks[v] {
					t.Fatalf("rank[%d] = %v, want %v (diff %g)", v, res.Ranks[v], want.Ranks[v], res.Ranks[v]-want.Ranks[v])
				}
			}
		})
	}
	// Multi-worker pregel folds per-lane, which reorders the sum:
	// tolerance comparison only.
	t.Run("pregel->gas/w4-tolerance", func(t *testing.T) {
		res, ar, err := PageRankAuto(g, alpha, k, AutoConfig{Config: Config{Workers: 4}, Script: []plan.Decision{
			dec(0, plan.EnginePregel, "hash", "auto"),
			dec(3, plan.EngineGAS, "hash", "auto"),
		}})
		if err != nil {
			t.Fatalf("auto: %v", err)
		}
		if ar.Segments != 2 {
			t.Fatalf("switch did not fire: %d segments", ar.Segments)
		}
		for v := range want.Ranks {
			if d := math.Abs(res.Ranks[v] - want.Ranks[v]); d > 1e-12 {
				t.Fatalf("rank[%d] off by %g", v, d)
			}
		}
	})
}

// TestAutoDoubleHandoffPageRank chains two switches (three segments)
// through the whole canonical family and still demands bit-identical
// ranks.
func TestAutoDoubleHandoffPageRank(t *testing.T) {
	g := autoPRGraph()
	const alpha, k = 0.85, 20
	want, err := PageRank(g, alpha, k, Config{Workers: 1})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	res, ar, err := PageRankAuto(g, alpha, k, AutoConfig{Config: Config{Workers: 1}, Script: []plan.Decision{
		dec(0, plan.EnginePregel, "hash", "auto"),
		dec(3, plan.EngineGAS, "hash", "auto"),
		dec(9, plan.EngineBlockcentric, "range", "auto"),
	}})
	if err != nil {
		t.Fatalf("auto: %v", err)
	}
	if ar.Segments != 3 {
		t.Fatalf("expected 3 segments, got %d", ar.Segments)
	}
	for v := range want.Ranks {
		if res.Ranks[v] != want.Ranks[v] {
			t.Fatalf("rank[%d] = %v, want %v", v, res.Ranks[v], want.Ranks[v])
		}
	}
}

// TestAutoHandoffUnderFaults injects crashes and lane faults into both
// segments of a forced switch; recovery must keep the results exact.
func TestAutoHandoffUnderFaults(t *testing.T) {
	faults := runtime.PlanOf(runtime.Crash(1), runtime.DupLane(2, 1, 0), runtime.DropLane(3, 0, 1))
	for _, pair := range [][2]string{
		{plan.EnginePregel, plan.EngineBlockcentric},
		{plan.EngineGAS, plan.EngineBlockcentric},
		{plan.EngineBlockcentric, plan.EnginePregel},
	} {
		t.Run("cc/"+pair[0]+"->"+pair[1], func(t *testing.T) {
			g := autoCCGraph()
			want, err := HashMinCC(g, Config{Workers: 1})
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			res, ar, err := HashMinCCAuto(g, AutoConfig{
				Config: Config{Workers: 4, CheckpointEvery: 2, Faults: faults},
				Script: []plan.Decision{
					dec(0, pair[0], partFor(pair[0]), "auto"),
					dec(2, pair[1], partFor(pair[1]), "auto"),
				},
			})
			if err != nil {
				t.Fatalf("auto: %v", err)
			}
			if ar.Segments != 2 {
				t.Fatalf("switch did not fire: %d segments", ar.Segments)
			}
			for v := range want.Color {
				if res.Color[v] != want.Color[v] {
					t.Fatalf("color[%d] = %d, want %d", v, res.Color[v], want.Color[v])
				}
			}
		})
		t.Run("sssp/"+pair[0]+"->"+pair[1], func(t *testing.T) {
			g := autoSSSPGraph()
			want, err := SSSP(g, 0, Config{Workers: 1})
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			res, ar, err := SSSPAuto(g, 0, AutoConfig{
				Config: Config{Workers: 4, CheckpointEvery: 2, Faults: faults},
				Script: []plan.Decision{
					dec(0, pair[0], partFor(pair[0]), "auto"),
					dec(2, pair[1], partFor(pair[1]), "auto"),
				},
			})
			if err != nil {
				t.Fatalf("auto: %v", err)
			}
			if ar.Segments != 2 {
				t.Fatalf("switch did not fire: %d segments", ar.Segments)
			}
			for v := range want.Dist {
				if res.Dist[v] != want.Dist[v] && !(math.IsInf(res.Dist[v], 1) && math.IsInf(want.Dist[v], 1)) {
					t.Fatalf("dist[%d] = %v, want %v", v, res.Dist[v], want.Dist[v])
				}
			}
		})
	}
}

// TestAutoPlannerInitialCC: on a regular chain (skew ~1) the planner
// must start block-centric, and the result must match the native run.
func TestAutoPlannerInitialCC(t *testing.T) {
	g := autoCCGraph()
	want, err := HashMinCC(g, Config{Workers: 1})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	res, ar, err := HashMinCCAuto(g, AutoConfig{Config: Config{Workers: 4}})
	if err != nil {
		t.Fatalf("auto: %v", err)
	}
	if got := ar.Decisions[0].Plan.Engine; got != plan.EngineBlockcentric {
		t.Fatalf("initial engine = %q, want blockcentric (skew %.2f)", got, ar.GraphStats.Skew)
	}
	for v := range want.Color {
		if res.Color[v] != want.Color[v] {
			t.Fatalf("color[%d] = %d, want %d", v, res.Color[v], want.Color[v])
		}
	}
}

// TestAutoPlannerMidRunSwitch: a hub-and-tail graph starts on pregel
// (high skew) but the long unweighted tail keeps the frontier narrow,
// so the planner must hand off to block-centric mid-run — and the
// distances must still be exact.
func TestAutoPlannerMidRunSwitch(t *testing.T) {
	g := graph.New(160, false)
	for i := graph.VertexID(0); i < 119; i++ {
		g.AddEdge(i, i+1)
	}
	for i := graph.VertexID(120); i < 160; i++ {
		g.AddEdge(0, i)
	}
	want, err := SSSP(g, 0, Config{Workers: 1})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	res, ar, err := SSSPAuto(g, 0, AutoConfig{
		Config:  Config{Workers: 4},
		Planner: &plan.Planner{Every: 4},
	})
	if err != nil {
		t.Fatalf("auto: %v", err)
	}
	if got := ar.Decisions[0].Plan.Engine; got != plan.EnginePregel {
		t.Fatalf("initial engine = %q, want pregel (skew %.2f)", got, ar.GraphStats.Skew)
	}
	if len(ar.Decisions) != 2 || ar.Decisions[1].Plan.Engine != plan.EngineBlockcentric {
		t.Fatalf("expected a mid-run handoff to blockcentric, got %+v", ar.Decisions)
	}
	if ar.Decisions[1].Step <= 0 {
		t.Fatalf("handoff step = %d, want > 0", ar.Decisions[1].Step)
	}
	for v := range want.Dist {
		if res.Dist[v] != want.Dist[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, res.Dist[v], want.Dist[v])
		}
	}
}

// TestAutoPageRankPlanner: the planner keeps fixed-K PageRank on one
// engine (FixedK rules out switching) — GAS, whose gather-side folds
// sit in the canonical fold-order family — and the run matches the
// native pregel ranks at a single worker bit-for-bit.
func TestAutoPageRankPlanner(t *testing.T) {
	g := autoPRGraph()
	const alpha, k = 0.85, 15
	want, err := PageRank(g, alpha, k, Config{Workers: 1})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	res, ar, err := PageRankAuto(g, alpha, k, AutoConfig{Config: Config{Workers: 1}})
	if err != nil {
		t.Fatalf("auto: %v", err)
	}
	if ar.Segments != 1 || len(ar.Decisions) != 1 {
		t.Fatalf("fixed-K run must not switch: %d segments, %+v", ar.Segments, ar.Decisions)
	}
	if got := ar.Decisions[0].Plan.Engine; got != plan.EngineGAS {
		t.Fatalf("initial engine = %q, want gas", got)
	}
	for v := range want.Ranks {
		if res.Ranks[v] != want.Ranks[v] {
			t.Fatalf("rank[%d] = %v, want %v", v, res.Ranks[v], want.Ranks[v])
		}
	}
}
