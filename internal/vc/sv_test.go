package vc

import (
	"math"
	"testing"
	"testing/quick"

	"vcgraph/internal/graph"
	"vcgraph/internal/seq"
)

func checkColors(t *testing.T, g *graph.Graph, got []VertexID) {
	t.Helper()
	var ops seq.Ops
	want := seq.Components(g, &ops)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: vc=%d seq=%d", v, got[v], want[v])
		}
	}
}

// checkSpanningForest verifies the edge set is a spanning forest of g:
// real edges, acyclic, exactly n - #components of them, and connecting
// each component.
func checkSpanningForest(t *testing.T, g *graph.Graph, edges []graph.UndirectedEdge) {
	t.Helper()
	var ops seq.Ops
	comps := seq.Components(g, &ops)
	distinct := make(map[VertexID]bool)
	for _, c := range comps {
		distinct[c] = true
	}
	if want := g.N() - len(distinct); len(edges) != want {
		t.Fatalf("forest has %d edges, want %d", len(edges), want)
	}
	real := make(map[[2]VertexID]bool)
	for _, e := range g.UndirectedEdges() {
		real[[2]VertexID{e.U, e.V}] = true
	}
	uf := seq.NewUnionFind(g.N())
	for _, e := range edges {
		if !real[[2]VertexID{e.U, e.V}] {
			t.Fatalf("edge (%d,%d) not in graph", e.U, e.V)
		}
		if !uf.Union(e.U, e.V) {
			t.Fatalf("edge (%d,%d) closes a cycle", e.U, e.V)
		}
	}
	for v := range comps {
		if uf.Find(VertexID(v)) != uf.Find(comps[v]) {
			t.Fatalf("vertex %d not connected to its component color %d", v, comps[v])
		}
	}
}

func TestSVCCMatchesBFS(t *testing.T) {
	cases := map[string]*graph.Graph{
		"random":       graph.Random(300, 700, 5),
		"path":         graph.Path(128),
		"cycle":        graph.Cycle(99),
		"star":         graph.Star(64),
		"disconnected": graph.Random(200, 120, 8),
		"grid":         graph.Grid(10, 12),
		"isolated":     graph.New(7, false),
		"complete":     graph.Complete(20),
		"powerlaw":     graph.PreferentialAttachment(200, 2, 13),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			res, err := SVCC(g, Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			checkColors(t, g, res.Color)
			checkSpanningForest(t, g, res.TreeEdges)
		})
	}
}

func TestSVCCLogSupersteps(t *testing.T) {
	// On a path (diameter n-1), Hash-Min needs Θ(n) supersteps but S-V
	// needs O(log n) rounds of constant supersteps.
	small, err := SVCC(graph.Path(256), Config{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := SVCC(graph.Path(4096), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 16x size: expect ~4 extra rounds (~4·19 supersteps), far below 16x.
	ratio := float64(large.Stats.NumSupersteps()) / float64(small.Stats.NumSupersteps())
	logRatio := math.Log2(4096) / math.Log2(256)
	if ratio > logRatio*2 {
		t.Fatalf("supersteps grew %vx (small=%d large=%d); want ~log growth %v",
			ratio, small.Stats.NumSupersteps(), large.Stats.NumSupersteps(), logRatio)
	}
}

func TestSVCCRootImbalance(t *testing.T) {
	// A star's center becomes the parent of all leaves: some vertex
	// receives far more than d(v) messages... but on a star the center
	// IS high degree. Use a path: the min vertex ends up parenting many
	// vertices while having degree <= 2.
	res, err := SVCC(graph.Path(512), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxRecvPerDeg < 4 {
		t.Fatalf("expected workload imbalance (recv/deg >> 1), got %v", res.Stats.MaxRecvPerDeg)
	}
}

func TestSVCCQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(80, 100, seed)
		res, err := SVCC(g, Config{Workers: 3})
		if err != nil {
			return false
		}
		var ops seq.Ops
		want := seq.Components(g, &ops)
		for v := range want {
			if res.Color[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWCCDirected(t *testing.T) {
	for _, seed := range []int64{3, 6} {
		g := graph.RandomDirected(150, 300, seed)
		res, err := WCC(g, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		checkColors(t, g.Underlying(), res.Color)
	}
}

func TestSpanningForestDeterministic(t *testing.T) {
	g := graph.Random(120, 240, 21)
	a, err := SVCC(g, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SVCC(g, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.TreeEdges) != len(b.TreeEdges) {
		t.Fatalf("worker count changed forest size: %d vs %d", len(a.TreeEdges), len(b.TreeEdges))
	}
	for i := range a.TreeEdges {
		if a.TreeEdges[i] != b.TreeEdges[i] {
			t.Fatalf("worker count changed forest edge %d: %v vs %v", i, a.TreeEdges[i], b.TreeEdges[i])
		}
	}
}
